// Package ata's root benchmarks regenerate, one testing.B target per
// figure, the measurements behind the paper's evaluation — at a reduced
// default scale so `go test -bench=.` finishes quickly. The cmd/hta-bench
// and cmd/hta-live CLIs run the same sweeps at arbitrary scale with full
// table output.
//
//	BenchmarkFig2a*     response time vs |T| (HTA-APP vs HTA-GRE)
//	BenchmarkFig2b      objective value comparison (reported as metrics)
//	BenchmarkFig2c*     response time vs |W|
//	BenchmarkFig3*      response time vs task diversity (#groups)
//	BenchmarkFig5Session  one simulated online work session per strategy
//	BenchmarkAblation*  design-choice ablations from DESIGN.md
package ata

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/lsap"
	"github.com/htacs/ata/internal/matching"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/workload"
)

// benchInstance builds a paper-shaped instance: numTasks tasks over
// numGroups AMT-like groups, numWorkers synthetic workers, Xmax = 20.
func benchInstance(b *testing.B, numTasks, numGroups, numWorkers int) *core.Instance {
	b.Helper()
	gen, err := workload.NewGenerator(workload.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	perGroup := numTasks / numGroups
	if perGroup < 1 {
		perGroup = 1
	}
	tasks := gen.Tasks(numGroups, perGroup)
	workers := gen.Workers(numWorkers)
	in, err := core.NewInstance(tasks, workers, 20, metric.Jaccard{})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func runSolver(b *testing.B, in *core.Instance, solve func(*core.Instance, ...solver.Option) (*solver.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var lastObjective float64
	for i := 0; i < b.N; i++ {
		res, err := solve(in, solver.WithRand(rand.New(rand.NewSource(int64(i)))))
		if err != nil {
			b.Fatal(err)
		}
		lastObjective = res.Objective
	}
	b.ReportMetric(lastObjective, "objective")
}

// runSolverParallel is runSolver with the cached diversity kernel enabled.
// A fresh instance is built (off the clock) every iteration so each measured
// solve pays the full precompute — the honest single-shot comparison against
// the serial rows, with no warm cache carried between iterations.
func runSolverParallel(b *testing.B, numTasks, numGroups, numWorkers int, solve func(*core.Instance, ...solver.Option) (*solver.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var lastObjective float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		in := benchInstance(b, numTasks, numGroups, numWorkers)
		b.StartTimer()
		res, err := solve(in, solver.WithParallelism(-1), solver.WithRand(rand.New(rand.NewSource(int64(i)))))
		if err != nil {
			b.Fatal(err)
		}
		lastObjective = res.Objective
	}
	b.ReportMetric(lastObjective, "objective")
}

// BenchmarkFig2a: the |T| sweep of Figure 2a at 1/10 the paper's sizes
// (paper: 4,000–10,000 tasks, 200 workers, 200 groups). The *-parallel rows
// run the same solve with the cached diversity kernel on all cores; the
// reported objective is identical by construction.
func BenchmarkFig2a(b *testing.B) {
	for _, numTasks := range []int{400, 700, 1000} {
		in := benchInstance(b, numTasks, 20, 20)
		b.Run(fmt.Sprintf("app/tasks=%d", numTasks), func(b *testing.B) {
			runSolver(b, in, solver.HTAAPP)
		})
		b.Run(fmt.Sprintf("app-parallel/tasks=%d", numTasks), func(b *testing.B) {
			runSolverParallel(b, numTasks, 20, 20, solver.HTAAPP)
		})
		b.Run(fmt.Sprintf("gre/tasks=%d", numTasks), func(b *testing.B) {
			runSolver(b, in, solver.HTAGRE)
		})
		b.Run(fmt.Sprintf("gre-parallel/tasks=%d", numTasks), func(b *testing.B) {
			runSolverParallel(b, numTasks, 20, 20, solver.HTAGRE)
		})
	}
}

// BenchmarkDiversityPrecompute: the tentpole kernel in isolation — filling
// the packed lower-triangular distance matrix serially vs with all cores.
// Instance construction runs off the clock; every iteration fills a cold
// cache.
func BenchmarkDiversityPrecompute(b *testing.B) {
	for _, numTasks := range []int{500, 1000, 2000} {
		for _, cfg := range []struct {
			name string
			p    int
		}{{"serial", 1}, {"parallel", -1}} {
			b.Run(fmt.Sprintf("%s/tasks=%d", cfg.name, numTasks), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					in := benchInstance(b, numTasks, 20, 20)
					b.StartTimer()
					in.Precompute(cfg.p)
				}
			})
		}
	}
}

// BenchmarkFig2b: same sweep, but the reported "objective" metric is the
// figure's payload — HTA-GRE should be within a few percent of HTA-APP.
func BenchmarkFig2b(b *testing.B) {
	in := benchInstance(b, 800, 20, 20)
	b.Run("app", func(b *testing.B) { runSolver(b, in, solver.HTAAPP) })
	b.Run("gre", func(b *testing.B) { runSolver(b, in, solver.HTAGRE) })
}

// BenchmarkFig2c: the |W| sweep of Figure 2c (paper: 30–350 workers at
// |T| = 8,000).
func BenchmarkFig2c(b *testing.B) {
	for _, numWorkers := range []int{5, 20, 35} {
		in := benchInstance(b, 800, 20, numWorkers)
		b.Run(fmt.Sprintf("app/workers=%d", numWorkers), func(b *testing.B) {
			runSolver(b, in, solver.HTAAPP)
		})
		b.Run(fmt.Sprintf("gre/workers=%d", numWorkers), func(b *testing.B) {
			runSolver(b, in, solver.HTAGRE)
		})
	}
}

// BenchmarkFig3: the task-diversity sweep of Figure 3 (paper: 10–10,000
// groups at |T| = 10,000, |W| = 300).
func BenchmarkFig3(b *testing.B) {
	for _, numGroups := range []int{2, 20, 200, 1000} {
		in := benchInstance(b, 1000, numGroups, 30)
		b.Run(fmt.Sprintf("app/groups=%d", numGroups), func(b *testing.B) {
			runSolver(b, in, solver.HTAAPP)
		})
		b.Run(fmt.Sprintf("gre/groups=%d", numGroups), func(b *testing.B) {
			runSolver(b, in, solver.HTAGRE)
		})
	}
}

// BenchmarkFig5Session: one simulated online work session per strategy
// (Figures 5a–5c are aggregates of 20 of these).
func BenchmarkFig5Session(b *testing.B) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	corpus := gen.Tasks(22, 40)
	for _, strat := range []crowd.Strategy{crowd.StrategyGRE, crowd.StrategyRel, crowd.StrategyDiv} {
		b.Run(string(strat), func(b *testing.B) {
			params := crowd.DefaultParams()
			sim, err := crowd.NewSimulator(params, corpus)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var completed int
			for i := 0; i < b.N; i++ {
				res, err := sim.RunSession(strat, sim.NewWorker(fmt.Sprintf("w%d", i)))
				if err != nil {
					b.Fatal(err)
				}
				completed = res.Completed
			}
			b.ReportMetric(float64(completed), "tasks/session")
		})
	}
}

// BenchmarkLSAP times the three auxiliary-LSAP solvers over an (n, |W|)
// grid of clique-structured profit matrices shaped like the real HTA
// auxiliary problem: |W| worker-clique column classes of n/|W| columns
// each. All three run through a reused lsap.Workspace, so steady-state
// iterations report 0 allocs/op — the adaptive-loop contract PR 2 added.
// dense is the O(n³) Hungarian, classed the O(n²·|W|) class-collapsed
// exact solver, greedy the ½-approximation.
func BenchmarkLSAP(b *testing.B) {
	for _, n := range []int{200, 400, 1000} {
		for _, numWorkers := range []int{10, 50} {
			xmax := n / numWorkers
			nc := numWorkers + 1
			classOf := make([]int, n)
			for j := range classOf {
				if q := j / xmax; q < numWorkers {
					classOf[j] = q
				} else {
					classOf[j] = numWorkers
				}
			}
			r := rand.New(rand.NewSource(1))
			profits := make([][]float64, n)
			for i := range profits {
				profits[i] = make([]float64, nc)
				for c := 0; c < numWorkers; c++ {
					profits[i][c] = r.Float64() * 5
				}
			}
			costs := lsap.NewBlock(classOf, profits)
			caps := make([]int, nc)
			for _, cl := range classOf {
				caps[cl]++
			}
			name := fmt.Sprintf("n=%d/workers=%d", n, numWorkers)
			b.Run("dense/"+name, func(b *testing.B) {
				if n >= 1000 && testing.Short() {
					b.Skip("cubic Hungarian at n=1000")
				}
				ws := lsap.NewWorkspace()
				lsap.HungarianWS(costs, ws)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lsap.HungarianWS(costs, ws)
				}
			})
			b.Run("classed/"+name, func(b *testing.B) {
				ws := lsap.NewWorkspace()
				if _, err := lsap.HungarianClassedWS(costs, caps, ws); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := lsap.HungarianClassedWS(costs, caps, ws); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run("greedy/"+name, func(b *testing.B) {
				ws := lsap.NewWorkspace()
				lsap.GreedyWS(costs, 1, ws)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					lsap.GreedyWS(costs, 1, ws)
				}
			})
		}
	}
}

// BenchmarkAblationLSAP isolates the APP→GRE design choice: the exact
// Hungarian vs the ½-approximate greedy on the same auxiliary LSAP sizes.
func BenchmarkAblationLSAP(b *testing.B) {
	for _, n := range []int{200, 400} {
		r := rand.New(rand.NewSource(1))
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = r.Float64()
			}
		}
		costs := lsap.NewDense(rows)
		b.Run(fmt.Sprintf("hungarian/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lsap.Hungarian(costs)
			}
		})
		b.Run(fmt.Sprintf("greedy/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				lsap.Greedy(costs)
			}
		})
	}
}

// BenchmarkAblationMatching compares the two ½-approximate matchers for
// the diversity matching M_B: edge-sorting greedy vs memory-light suitor.
func BenchmarkAblationMatching(b *testing.B) {
	in := benchInstance(b, 600, 30, 10)
	n := in.NumTasks()
	b.Run("greedysort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matching.GreedySort(n, in.Diversity)
		}
	})
	b.Run("suitor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matching.Suitor(n, in.Diversity)
		}
	})
	b.Run("pathgrowing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matching.PathGrowing(n, in.Diversity)
		}
	})
	b.Run("blossom-exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			matching.Blossom(n, in.Diversity)
		}
	})
}

// BenchmarkAblationFlip measures the random pairwise flip (Lines 12–16 of
// Algorithm 1) on vs off — the flip is what the expected approximation
// factor rests on, at negligible cost.
func BenchmarkAblationFlip(b *testing.B) {
	in := benchInstance(b, 600, 30, 15)
	b.Run("with-flip", func(b *testing.B) { runSolver(b, in, solver.HTAGRE) })
	b.Run("without-flip", func(b *testing.B) {
		runSolver(b, in, func(in *core.Instance, opts ...solver.Option) (*solver.Result, error) {
			return solver.HTAGRE(in, append(opts, solver.WithoutFlip())...)
		})
	})
}

// BenchmarkAblationBlockCosts contrasts the implicit column-classed LSAP
// costs against a fully materialized dense matrix of the same profits —
// the representation that lets the solvers run at 10k tasks in O(|T|·|W|)
// memory.
func BenchmarkAblationBlockCosts(b *testing.B) {
	in := benchInstance(b, 500, 25, 10)
	// Build the dense equivalent once via a probe GRE run's cost structure:
	// f[k][l] reproduced through the public pipeline is not exposed, so we
	// approximate the comparison by timing GRE (block costs inside) against
	// GRE preceded by a dense |T|² materialization of pairwise diversities.
	b.Run("block", func(b *testing.B) { runSolver(b, in, solver.HTAGRE) })
	b.Run("dense-materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := in.NumTasks()
			dense := make([]float64, n*n)
			for k := 0; k < n; k++ {
				for l := k + 1; l < n; l++ {
					d := in.Diversity(k, l)
					dense[k*n+l], dense[l*n+k] = d, d
				}
			}
			_ = dense
			if _, err := solver.HTAGRE(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}
