// Package ata reproduces "Task Relevance and Diversity as Worker
// Motivation in Crowdsourcing" (Pilourdault, Amer-Yahia, Basu Roy, Lee —
// ICDE 2018): the HTA problem, the HTA-APP (¼) and HTA-GRE (⅛)
// approximation algorithms with their substrates, an adaptive assignment
// engine, an HTTP crowdsourcing platform, a behavioural crowd simulator,
// and a harness regenerating every figure of the paper's evaluation.
//
// The root package carries only documentation, the per-figure benchmarks
// (bench_test.go) and cross-module integration tests; the implementation
// lives under internal/ and the executables under cmd/. See README.md for
// the map, DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package ata
