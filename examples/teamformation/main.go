// Team formation: the paper's future-work extension (Section VII) —
// collaborative tasks that need whole teams of workers with complementary
// skills and good social fit. The example staffs two collaborative tasks
// from a pool of six workers and shows the coverage / relevance / affinity
// breakdown behind each team.
package main

import (
	"fmt"
	"log"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/teams"
	"github.com/htacs/ata/internal/workload"
)

func main() {
	const universe = 100
	kw := func(idx ...int) *bitset.Set { return bitset.FromIndices(universe, idx...) }
	name := func(set *bitset.Set) string {
		out := ""
		for i, k := range set.Indices() {
			if i > 0 {
				out += ","
			}
			out += workload.Keyword(k)
		}
		return out
	}

	// Two collaborative micro-projects: a bilingual audio-transcription
	// batch (needs audio + English + Spanish skills) and a data-labeling
	// pipeline (image + tagging + classification).
	collab := []*teams.CollabTask{
		{Task: &core.Task{ID: "transcribe", Keywords: kw(2, 1, 20)}, TeamSize: 3},
		{Task: &core.Task{ID: "label", Keywords: kw(4, 5, 8)}, TeamSize: 2},
	}

	workers := []*core.Worker{
		{ID: "ana", Alpha: 0.5, Beta: 0.5, Keywords: kw(2, 1)},   // audio+english
		{ID: "bo", Alpha: 0.5, Beta: 0.5, Keywords: kw(20, 1)},   // spanish+english
		{ID: "cy", Alpha: 0.5, Beta: 0.5, Keywords: kw(2, 20)},   // audio+spanish
		{ID: "dee", Alpha: 0.5, Beta: 0.5, Keywords: kw(4, 5)},   // image+tagging
		{ID: "eli", Alpha: 0.5, Beta: 0.5, Keywords: kw(8, 4)},   // classification+image
		{ID: "fay", Alpha: 0.5, Beta: 0.5, Keywords: kw(60, 61)}, // unrelated skills
	}

	p, err := teams.NewProblem(collab, workers, metric.Jaccard{}, teams.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	a := teams.Greedy(p)
	if err := a.Validate(p); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("total team motivation: %.3f\n\n", p.Objective(a))
	for t, team := range a.Teams {
		task := collab[t]
		fmt.Printf("task %q (needs %d workers, skills: %s)\n",
			task.Task.ID, task.TeamSize, name(task.Task.Keywords))
		if len(team) == 0 {
			fmt.Println("  — unstaffed (not enough workers)")
			continue
		}
		for _, m := range team {
			fmt.Printf("  %-4s (%s)\n", workers[m].ID, name(workers[m].Keywords))
		}
		fmt.Printf("  coverage %.2f · relevance %.2f · affinity %.2f → score %.3f\n\n",
			p.Coverage(t, team), p.Relevance(t, team), p.Affinity(team), p.Score(t, team))
	}
}
