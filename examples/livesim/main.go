// Live-study miniature: a small-scale rerun of the paper's online
// experiment (Figure 5). Three strategies assign micro-tasks to simulated
// workers in timed sessions; the program prints the quality / throughput /
// retention comparison and the same significance tests the paper reports.
// For the full 20-sessions-per-strategy study, use cmd/hta-live.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/workload"
)

func main() {
	// The paper's live tasks came from a CrowdFlower release with 22 kinds
	// of micro-tasks; the generator mirrors that structure.
	gen, err := workload.NewGenerator(workload.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	corpus := gen.Tasks(22, 40)

	params := crowd.DefaultParams()
	params.SessionMinutes = 15 // shortened sessions for a quick demo
	sim, err := crowd.NewSimulator(params, corpus)
	if err != nil {
		log.Fatal(err)
	}
	study, err := sim.RunStudy(crowd.Strategies, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("strategy      sessions  completed  quality%  mean-minutes")
	for _, s := range crowd.Strategies {
		t := study.Total(s)
		fmt.Printf("%-12s  %8d  %9d  %7.1f  %12.1f\n",
			s, t.Sessions, t.Completed, t.QualityPercent, t.MeanDuration)
	}

	if z, err := study.CompareQuality(crowd.StrategyDiv, crowd.StrategyRel); err == nil {
		fmt.Printf("\nquality DIV vs REL: two-proportions Z = %.2f (one-sided p = %.3f)\n",
			z.Z, z.POneSided)
	}
	if u, err := study.CompareRetention(crowd.StrategyGRE, crowd.StrategyRel); err == nil {
		fmt.Printf("retention GRE vs REL: Mann-Whitney U = %.0f (one-sided p = %.3f)\n",
			u.U, u.POneSided)
	}

	fmt.Fprintln(os.Stdout, "\nshortened sessions mute the dropout differences; run cmd/hta-live for")
	fmt.Fprintln(os.Stdout, "the paper's full 30-minute study, where the adaptive strategy trades a")
	fmt.Fprintln(os.Stdout, "little of DIV's quality for the best throughput and retention (Fig. 5).")
}
