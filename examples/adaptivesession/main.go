// Adaptive session: the paper's core loop (Section III) on one worker. The
// worker secretly prefers diverse tasks; we watch the engine's (α, β)
// estimates converge toward that preference across iterations, purely from
// observing which tasks the worker completes first.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/workload"
)

func main() {
	gen, err := workload.NewGenerator(workload.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:             8,
		ExtraRandomTasks: 2,
		Rand:             rand.New(rand.NewSource(7)),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.AddTasks(gen.Tasks(40, 6)...); err != nil {
		log.Fatal(err)
	}
	worker := gen.Workers(1)[0]
	state, err := engine.AddWorker(worker)
	if err != nil {
		log.Fatal(err)
	}

	dist := metric.Jaccard{}
	fmt.Println("iteration  assigned  α(diversity)  β(relevance)  observations")
	for iter := 0; iter < 6; iter++ {
		sets, err := engine.NextIteration()
		if err != nil {
			log.Fatal(err)
		}
		display := sets[worker.ID]

		// The simulated human: always completes the task with the highest
		// marginal diversity against what they already did — a pure
		// diversity-seeker (latent α = 1).
		for len(state.Completed) < len(display) {
			var best *core.Task
			bestGain := -1.0
			for _, cand := range display {
				done := false
				for _, c := range state.Completed {
					if c.ID == cand.ID {
						done = true
						break
					}
				}
				if done {
					continue
				}
				var gain float64
				for _, c := range state.Completed {
					gain += dist.Distance(cand.Keywords, c.Keywords)
				}
				if gain > bestGain {
					bestGain, best = gain, cand
				}
			}
			if err := engine.Complete(worker.ID, best.ID); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%9d  %8d  %12.3f  %12.3f  %12d\n",
			iter+1, len(display), state.Alpha(), state.Beta(), state.Observations())
	}
	fmt.Println("\nthe α estimate climbs toward the worker's latent diversity preference;")
	fmt.Println("the next HTA-GRE assignment weights task diversity accordingly.")
}
