// Platform walkthrough: runs the Figure-4 assignment service on a local
// port and drives it over real HTTP with two worker clients — register
// with keywords, receive a task set, complete tasks, get re-assigned, and
// read the platform stats with the learned (α, β) per worker.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/platform"
	"github.com/htacs/ata/internal/workload"
)

func main() {
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:             5,
		ExtraRandomTasks: 2,
		Rand:             rand.New(rand.NewSource(3)),
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := platform.NewServer(platform.ServerConfig{
		Engine:            engine,
		Universe:          100,
		ReassignPerWorker: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, srv); err != nil {
			log.Print(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("assignment service at", base)

	client := platform.NewClient(base, nil)

	// The requester loads a workload.
	gen, err := workload.NewGenerator(workload.Config{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.AddTasks(gen.Tasks(30, 4)); err != nil {
		log.Fatal(err)
	}

	// Two workers join with their keyword interests (≥ 6 required).
	for _, reg := range []struct {
		id string
		kw []int
	}{
		{"ada", []int{0, 1, 2, 3, 4, 5}},
		{"lin", []int{6, 7, 8, 9, 10, 11}},
	} {
		tasks, err := client.Register(reg.id, reg.kw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s registered, first set:", reg.id)
		for _, t := range tasks {
			fmt.Printf(" %s", t.ID)
		}
		fmt.Println()
	}

	// Each worker completes tasks; the service re-assigns adaptively.
	for round := 0; round < 6; round++ {
		for _, id := range []string{"ada", "lin"} {
			tasks, err := client.Tasks(id)
			if err != nil {
				log.Fatal(err)
			}
			var next string
			for _, t := range tasks {
				if !t.Done {
					next = t.ID
					break
				}
			}
			if next == "" {
				continue
			}
			resp, err := client.Complete(id, next)
			if err != nil {
				log.Fatal(err)
			}
			if resp.Reassigned {
				fmt.Printf("round %d: %s completed %s -> new iteration (α=%.2f β=%.2f)\n",
					round, id, next, resp.Alpha, resp.Beta)
			}
		}
	}

	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplatform after %d iterations, %d tasks still in pool:\n",
		stats.Iteration, stats.PoolSize)
	for _, w := range stats.Workers {
		fmt.Printf("  %-4s completed %2d tasks, learned α=%.2f β=%.2f\n",
			w.ID, w.Completed, w.Alpha, w.Beta)
	}
}
