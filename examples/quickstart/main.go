// Quickstart: build a small HTA instance and solve it with both paper
// algorithms, HTA-APP (¼-approx, Hungarian inside) and HTA-GRE (⅛-approx,
// greedy inside), then compare objectives and timings.
package main

import (
	"fmt"
	"log"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
)

func main() {
	const universe = 16 // keyword universe: 16 keywords, indices 0..15

	// Tasks are keyword vectors. Here: two audio-transcription tasks
	// (keywords 0,1), two image-tagging tasks (2,3), two sentiment tasks
	// (4,5) and two survey tasks (6,7).
	kinds := [][]int{{0, 1}, {0, 1}, {2, 3}, {2, 3}, {4, 5}, {4, 5}, {6, 7}, {6, 7}}
	tasks := make([]*core.Task, len(kinds))
	for i, kw := range kinds {
		tasks[i] = &core.Task{
			ID:       fmt.Sprintf("t%d", i),
			Keywords: bitset.FromIndices(universe, kw...),
		}
	}

	// Two workers: alice prefers diverse work (α = 0.8), bob prefers
	// relevant work (β = 0.8) and is interested in audio + sentiment.
	alice := &core.Worker{
		ID: "alice", Alpha: 0.8, Beta: 0.2,
		Keywords: bitset.FromIndices(universe, 2, 3),
	}
	bob := &core.Worker{
		ID: "bob", Alpha: 0.2, Beta: 0.8,
		Keywords: bitset.FromIndices(universe, 0, 1, 4, 5),
	}

	in, err := core.NewInstance(tasks, []*core.Worker{alice, bob}, 3, metric.Jaccard{})
	if err != nil {
		log.Fatal(err)
	}

	for _, solve := range []func(*core.Instance, ...solver.Option) (*solver.Result, error){
		solver.HTAAPP, solver.HTAGRE,
	} {
		res, err := solve(in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: objective %.3f (matching %v, assignment step %v)\n",
			res.Algorithm, res.Objective, res.MatchingTime, res.LSAPTime)
		for q, set := range res.Assignment.Sets {
			w := in.Workers[q]
			fmt.Printf("  %-5s (α=%.1f) gets:", w.ID, w.Alpha)
			for _, k := range set {
				fmt.Printf(" %s", in.Tasks[k].ID)
			}
			fmt.Printf("   motiv = %.3f\n", in.Motiv(q, set))
		}
	}
}
