// Streaming assignment: the paper's future-work deployment mode (§VII) —
// tasks and workers arrive over time and every event gets an immediate
// decision instead of a batch solve. The example replays a morning on a
// small platform: workers come and go, tasks trickle in, and the assigner
// keeps every active set within Xmax while maximizing marginal motivation.
package main

import (
	"fmt"
	"log"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

func main() {
	assigner, err := stream.NewAssigner(stream.Config{Xmax: 3, BufferLimit: 64})
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(workload.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	tasks := gen.Tasks(12, 3)
	workers := gen.Workers(3)

	// 08:00 — two workers clock in before any tasks exist.
	for _, w := range workers[:2] {
		if _, err := assigner.AddWorker(w); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("08:00  %s and %s online, buffer %d\n",
		workers[0].ID, workers[1].ID, assigner.BufferLen())

	// 08:05 — the first task batch arrives; each task is routed on arrival.
	for _, t := range tasks[:8] {
		who, err := assigner.OfferTask(t)
		if err != nil {
			log.Fatal(err)
		}
		if who == "" {
			who = "(buffered)"
		}
		fmt.Printf("08:05  task %-12s -> %s\n", t.ID, who)
	}

	// 08:20 — a completion frees a slot, which pulls from the buffer.
	active, err := assigner.Active(workers[0].ID)
	if err != nil {
		log.Fatal(err)
	}
	pulled, err := assigner.Complete(workers[0].ID, active[0])
	if err != nil {
		log.Fatal(err)
	}
	if pulled != nil {
		fmt.Printf("08:20  %s finished %s, pulled %s from the buffer\n",
			workers[0].ID, active[0], pulled.ID)
	}

	// 08:30 — a third worker arrives and drains the rest of the buffer.
	assigned, err := assigner.AddWorker(workers[2])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("08:30  %s online, immediately received %d buffered tasks\n",
		workers[2].ID, len(assigned))

	// 08:45 — a worker leaves; unfinished tasks go back for reassignment.
	if _, err := assigner.RemoveWorker(workers[1].ID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("08:45  %s left, buffer back to %d task(s)\n",
		workers[1].ID, assigner.BufferLen())

	fmt.Printf("\ncurrent streaming objective (Σ motiv over active sets): %.3f\n",
		assigner.Objective())
	for _, w := range []*core.Worker{workers[0], workers[2]} {
		ids, err := assigner.Active(w.ID)
		if err != nil {
			log.Fatal(err)
		}
		done, _ := assigner.Completed(w.ID)
		fmt.Printf("  %s: active %v, completed %d\n", w.ID, ids, done)
	}
}
