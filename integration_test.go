package ata

// End-to-end integration tests wiring the subsystems together the way the
// deployed system does: workload generation → HTTP platform → adaptive
// engine → solvers → statistics. Unit tests live next to each package;
// these tests only assert cross-module behaviour.

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/platform"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/stats"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

// TestEndToEndPlatformSession drives a complete worker session over HTTP:
// generated workload, registration, completions with adaptive
// reassignment, and final platform statistics.
func TestEndToEndPlatformSession(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:             4,
		ExtraRandomTasks: 1,
		Rand:             rand.New(rand.NewSource(21)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := platform.NewServer(platform.ServerConfig{
		Engine: engine, Universe: 100, ReassignPerWorker: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := platform.NewClient(ts.URL, ts.Client())

	if err := client.AddTasks(gen.Tasks(25, 4)); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.Register("human", []int{0, 1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 5 {
		t.Fatalf("display set = %d, want Xmax+extra = 5", len(tasks))
	}

	completed := 0
	reassignments := 0
	for round := 0; round < 12; round++ {
		var next string
		for _, task := range tasks {
			if !task.Done {
				next = task.ID
				break
			}
		}
		if next == "" {
			fresh, err := client.Tasks("human")
			if err != nil {
				t.Fatal(err)
			}
			tasks = fresh
			continue
		}
		resp, err := client.Complete("human", next)
		if err != nil {
			t.Fatal(err)
		}
		completed++
		if resp.Reassigned {
			reassignments++
		}
		tasks = resp.Tasks
	}
	if completed < 10 {
		t.Fatalf("completed only %d tasks", completed)
	}
	if reassignments == 0 {
		t.Fatal("the assignment service never re-assigned")
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers[0].Completed != completed {
		t.Fatalf("platform counted %d completions, client made %d", st.Workers[0].Completed, completed)
	}
	if a, b := st.Workers[0].Alpha, st.Workers[0].Beta; a <= 0 || b <= 0 || a+b < 0.99 {
		t.Fatalf("learned weights look wrong: α=%g β=%g", a, b)
	}
}

// TestEndToEndStrategyComparison runs a miniature of the paper's online
// study and checks the load-bearing finding with the paper's own
// statistical test: the diversity-only strategy answers significantly more
// questions correctly than the relevance-only one.
func TestEndToEndStrategyComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("study-scale simulation")
	}
	gen, err := workload.NewGenerator(workload.Config{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := crowd.NewSimulator(crowd.DefaultParams(), gen.Tasks(22, 40))
	if err != nil {
		t.Fatal(err)
	}
	study, err := sim.RunStudy([]crowd.Strategy{crowd.StrategyDiv, crowd.StrategyRel}, 12)
	if err != nil {
		t.Fatal(err)
	}
	z, err := study.CompareQuality(crowd.StrategyDiv, crowd.StrategyRel)
	if err != nil {
		t.Fatal(err)
	}
	if z.Z <= 0 {
		t.Fatalf("DIV not above REL in quality (Z = %g)", z.Z)
	}
	if z.POneSided > 0.1 {
		t.Errorf("DIV vs REL quality not significant: p = %g", z.POneSided)
	}
}

// TestEndToEndStreamingMirrorsBatch feeds identical workloads to the
// streaming assigner and the batch solver and sanity-checks that both
// produce feasible, comparable assignments.
func TestEndToEndStreamingMirrorsBatch(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 27, Universe: 64})
	if err != nil {
		t.Fatal(err)
	}
	tasks := gen.Tasks(40, 3)
	workers := gen.Workers(8)
	const xmax = 6

	assigner, err := stream.NewAssigner(stream.Config{Xmax: xmax})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		clone := *w
		if _, err := assigner.AddWorker(&clone); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		if _, err := assigner.OfferTask(task); err != nil {
			t.Fatal(err)
		}
	}

	in, err := core.NewInstance(tasks, workers, xmax, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := solver.HTAGRE(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.Assignment.Validate(in); err != nil {
		t.Fatal(err)
	}
	if streamObj := assigner.Objective(); streamObj <= 0 || batch.Objective <= 0 {
		t.Fatalf("degenerate objectives: stream %g batch %g", streamObj, batch.Objective)
	}
}

// TestEndToEndSignificanceMachinery replays the paper's reported headline
// numbers through our statistics package: 81.9% vs 75.5% quality on about
// a third of 1,137 graded questions each lands near the paper's 0.06
// significance level, and 65% is significantly below 75.5%.
func TestEndToEndSignificanceMachinery(t *testing.T) {
	third := 1137 / 3
	div, gre, rel := int(0.819*float64(third)), int(0.755*float64(third)), int(0.65*float64(third))
	divVsGre, err := stats.TwoProportionZTest(div, third, gre, third)
	if err != nil {
		t.Fatal(err)
	}
	if divVsGre.POneSided < 0.01 || divVsGre.POneSided > 0.12 {
		t.Errorf("DIV vs GRE p = %g, paper reports ≈0.06", divVsGre.POneSided)
	}
	greVsRel, err := stats.TwoProportionZTest(gre, third, rel, third)
	if err != nil {
		t.Fatal(err)
	}
	if greVsRel.POneSided > 0.01 {
		t.Errorf("GRE vs REL p = %g, paper reports 0.01", greVsRel.POneSided)
	}
}
