// Package question models graded micro-task content: the paper's live
// tasks carried one or more questions each (4,473 questions over 2,715
// completed tasks) and crowdwork quality (Figure 5a) is the share of
// answers matching CrowdFlower's ground truth. The platform keeps the
// ground truth server-side in a Bank; workers only ever see the prompt and
// options.
package question

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/workload"
)

// Question is one graded item attached to a task.
type Question struct {
	ID     string
	TaskID string
	Prompt string
	// Options are the answer choices shown to the worker.
	Options []string
	// Answer is the index of the ground-truth option. It must never be
	// serialized toward workers.
	Answer int
}

// Validate checks structural sanity.
func (q Question) Validate() error {
	if q.ID == "" || q.TaskID == "" {
		return errors.New("question: empty ID or task ID")
	}
	if len(q.Options) < 2 {
		return fmt.Errorf("question: %q has %d options, need >= 2", q.ID, len(q.Options))
	}
	if q.Answer < 0 || q.Answer >= len(q.Options) {
		return fmt.Errorf("question: %q ground truth %d out of range", q.ID, q.Answer)
	}
	return nil
}

// Bank holds the questions and ground truth for a task corpus.
type Bank struct {
	byID   map[string]Question
	byTask map[string][]string // task ID → question IDs, in insertion order
}

// NewBank returns an empty bank.
func NewBank() *Bank {
	return &Bank{byID: make(map[string]Question), byTask: make(map[string][]string)}
}

// Add validates and stores a question.
func (b *Bank) Add(q Question) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if _, dup := b.byID[q.ID]; dup {
		return fmt.Errorf("question: duplicate id %q", q.ID)
	}
	b.byID[q.ID] = q
	b.byTask[q.TaskID] = append(b.byTask[q.TaskID], q.ID)
	return nil
}

// Len returns the number of questions in the bank.
func (b *Bank) Len() int { return len(b.byID) }

// ForTask returns the questions of a task (ground truth included; callers
// exposing them to workers must strip Answer).
func (b *Bank) ForTask(taskID string) []Question {
	ids := b.byTask[taskID]
	out := make([]Question, 0, len(ids))
	for _, id := range ids {
		out = append(out, b.byID[id])
	}
	return out
}

// ErrUnknownQuestion is returned when grading an unknown ID.
var ErrUnknownQuestion = errors.New("question: unknown question")

// Grade scores one answer against the ground truth.
func (b *Bank) Grade(questionID string, answer int) (bool, error) {
	q, ok := b.byID[questionID]
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrUnknownQuestion, questionID)
	}
	return answer == q.Answer, nil
}

// prompts used by the synthetic generator, keyed by question style.
var promptStyles = []struct {
	format  string
	options []string
}{
	{"Does this task involve %q?", []string{"yes", "no"}},
	{"Is %q the main topic of this task?", []string{"yes", "no", "partly"}},
	{"How relevant is %q to this task?", []string{"not at all", "somewhat", "very"}},
}

// Generate synthesizes a question bank for a task corpus, with
// meanPerTask questions per task on average (the paper's ratio is
// 4,473/2,715 ≈ 1.65). Prompts are built from the tasks' own keywords so
// simulated workers can be graded against a consistent ground truth.
func Generate(tasks []*core.Task, meanPerTask float64, seed int64) (*Bank, error) {
	if meanPerTask <= 0 {
		return nil, fmt.Errorf("question: meanPerTask = %g", meanPerTask)
	}
	rng := rand.New(rand.NewSource(seed))
	bank := NewBank()
	for _, t := range tasks {
		if t == nil || t.Keywords == nil {
			return nil, errors.New("question: task without keywords")
		}
		n := int(meanPerTask)
		if rng.Float64() < meanPerTask-float64(n) {
			n++
		}
		if n == 0 {
			n = 1
		}
		kws := t.Keywords.Indices()
		for qi := 0; qi < n; qi++ {
			style := promptStyles[rng.Intn(len(promptStyles))]
			var kw int
			if len(kws) > 0 && rng.Intn(2) == 0 {
				kw = kws[rng.Intn(len(kws))] // about the task's own content
			} else {
				kw = rng.Intn(t.Keywords.Len()) // possibly a distractor
			}
			// Ground truth: for yes/no styles, "yes" iff the keyword is
			// actually on the task; for the 3-option style map presence to
			// the strongest option.
			var answer int
			present := kw < t.Keywords.Len() && t.Keywords.Contains(kw)
			switch len(style.options) {
			case 2:
				if present {
					answer = 0
				} else {
					answer = 1
				}
			default:
				if present {
					answer = len(style.options) - 1
				} else {
					answer = 0
				}
			}
			q := Question{
				ID:      fmt.Sprintf("%s-q%d", t.ID, qi),
				TaskID:  t.ID,
				Prompt:  fmt.Sprintf(style.format, workload.Keyword(kw)),
				Options: style.options,
				Answer:  answer,
			}
			if err := bank.Add(q); err != nil {
				return nil, err
			}
		}
	}
	return bank, nil
}
