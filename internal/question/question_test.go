package question

import (
	"errors"
	"strings"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/workload"
)

func TestQuestionValidate(t *testing.T) {
	good := Question{ID: "q1", TaskID: "t1", Prompt: "?", Options: []string{"a", "b"}, Answer: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid question rejected: %v", err)
	}
	cases := []Question{
		{TaskID: "t", Options: []string{"a", "b"}},                      // no ID
		{ID: "q", Options: []string{"a", "b"}},                          // no task
		{ID: "q", TaskID: "t", Options: []string{"a"}},                  // one option
		{ID: "q", TaskID: "t", Options: []string{"a", "b"}, Answer: 2},  // truth out of range
		{ID: "q", TaskID: "t", Options: []string{"a", "b"}, Answer: -1}, // negative truth
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, q)
		}
	}
}

func TestBankAddAndLookup(t *testing.T) {
	b := NewBank()
	q1 := Question{ID: "q1", TaskID: "t1", Prompt: "?", Options: []string{"y", "n"}, Answer: 0}
	q2 := Question{ID: "q2", TaskID: "t1", Prompt: "??", Options: []string{"y", "n"}, Answer: 1}
	for _, q := range []Question{q1, q2} {
		if err := b.Add(q); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Add(q1); err == nil {
		t.Error("duplicate accepted")
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	got := b.ForTask("t1")
	if len(got) != 2 || got[0].ID != "q1" || got[1].ID != "q2" {
		t.Fatalf("ForTask = %+v", got)
	}
	if len(b.ForTask("missing")) != 0 {
		t.Error("unknown task returned questions")
	}
}

func TestGrade(t *testing.T) {
	b := NewBank()
	if err := b.Add(Question{ID: "q", TaskID: "t", Prompt: "?", Options: []string{"y", "n"}, Answer: 1}); err != nil {
		t.Fatal(err)
	}
	if ok, err := b.Grade("q", 1); err != nil || !ok {
		t.Fatalf("correct answer graded (%v, %v)", ok, err)
	}
	if ok, err := b.Grade("q", 0); err != nil || ok {
		t.Fatalf("wrong answer graded (%v, %v)", ok, err)
	}
	if _, err := b.Grade("ghost", 0); !errors.Is(err, ErrUnknownQuestion) {
		t.Fatalf("err = %v", err)
	}
}

func TestGenerate(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tasks := gen.Tasks(10, 5)
	bank, err := Generate(tasks, 1.65, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Mean 1.65 over 50 tasks: expect between 50 and 2×50 questions.
	if bank.Len() < 50 || bank.Len() > 120 {
		t.Fatalf("generated %d questions for 50 tasks", bank.Len())
	}
	for _, task := range tasks {
		qs := bank.ForTask(task.ID)
		if len(qs) < 1 {
			t.Fatalf("task %s has no questions", task.ID)
		}
		for _, q := range qs {
			if err := q.Validate(); err != nil {
				t.Fatalf("generated invalid question: %v", err)
			}
			if !strings.Contains(q.Prompt, `"`) {
				t.Fatalf("prompt lacks keyword reference: %q", q.Prompt)
			}
			// Ground truth must be consistent with the task's keywords: a
			// diligent oracle that reads the task can always answer right.
			// (Checked implicitly by Generate's construction; spot-check
			// that the answer index is within options.)
			if q.Answer < 0 || q.Answer >= len(q.Options) {
				t.Fatalf("bad ground truth: %+v", q)
			}
		}
	}
	if _, err := Generate(tasks, 0, 1); err == nil {
		t.Error("zero meanPerTask accepted")
	}
	if _, err := Generate(nil, 1, 1); err != nil {
		t.Errorf("empty corpus rejected: %v", err)
	}
	if _, err := Generate([]*core.Task{nil}, 1, 1); err == nil {
		t.Error("nil task accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tasks := gen.Tasks(4, 3)
	a, err := Generate(tasks, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(tasks, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic generation: %d vs %d", a.Len(), b.Len())
	}
	for _, task := range tasks {
		qa, qb := a.ForTask(task.ID), b.ForTask(task.ID)
		for i := range qa {
			if qa[i].Prompt != qb[i].Prompt || qa[i].Answer != qb[i].Answer {
				t.Fatalf("question %d differs across runs", i)
			}
		}
	}
}
