package par

import (
	"sync/atomic"
	"testing"
)

// covered verifies fn receives each index exactly once and returns the
// per-index visit counts.
func covered(t *testing.T, n, p int, weight func(i int) int) {
	t.Helper()
	hits := make([]int32, n)
	DoWeighted(n, p, weight, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			return
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("n=%d p=%d: index %d visited %d times", n, p, i, h)
		}
	}
}

func TestDoCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1001} {
		for _, p := range []int{-1, 0, 1, 2, 3, 8, 200} {
			covered(t, n, p, nil)
		}
	}
}

func TestDoWeightedTriangular(t *testing.T) {
	tri := func(i int) int { return i }
	for _, n := range []int{1, 2, 10, 500} {
		for _, p := range []int{1, 2, 4, 7} {
			covered(t, n, p, tri)
		}
	}
}

func TestDoWeightedBalances(t *testing.T) {
	// Triangular weights over 1000 rows split 4 ways: every chunk should
	// carry a non-trivial share of the ~500k total weight, unlike a naive
	// equal-length split where the first quarter holds only 1/16.
	n, p := 1000, 4
	var chunks [][2]int
	DoWeighted(n, 1, nil, func(lo, hi int) {}) // warmup no-op
	bounds := chunkBounds(n, p, func(i int) int { return i })
	total := n * (n - 1) / 2
	for c := 0; c+1 < len(bounds); c++ {
		w := 0
		for i := bounds[c]; i < bounds[c+1]; i++ {
			w += i
		}
		if w < total/(2*p) || w > total*2/p {
			t.Fatalf("chunk %d [%d,%d) weight %d not within [%d,%d]",
				c, bounds[c], bounds[c+1], w, total/(2*p), total*2/p)
		}
		chunks = append(chunks, [2]int{bounds[c], bounds[c+1]})
	}
	if len(chunks) != p {
		t.Fatalf("got %d chunks, want %d", len(chunks), p)
	}
}

func TestNResolves(t *testing.T) {
	if N(3) != 3 || N(1) != 1 {
		t.Fatal("N must pass through positive values")
	}
	if N(0) < 1 || N(-2) < 1 {
		t.Fatal("N must resolve non-positive values to at least 1")
	}
}

// DoMin must still cover every index exactly once while capping fan-out so
// no chunk shrinks below the minimum grain (the gate that keeps small rows
// off the scheduler entirely).
func TestDoMinGrainGate(t *testing.T) {
	for _, tc := range []struct{ n, min, p int }{
		{0, 100, 4}, {1, 100, 4}, {99, 100, 8}, {100, 100, 8},
		{250, 100, 8}, {1000, 100, 3}, {1000, 1, 4}, {5000, 2048, 0},
	} {
		hits := make([]int32, tc.n)
		var chunks int32
		DoMin(tc.n, tc.min, tc.p, func(lo, hi int) {
			atomic.AddInt32(&chunks, 1)
			if hi-lo < tc.min && (lo != 0 || hi != tc.n) {
				t.Errorf("n=%d min=%d p=%d: chunk [%d,%d) below grain", tc.n, tc.min, tc.p, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d min=%d p=%d: index %d visited %d times", tc.n, tc.min, tc.p, i, h)
			}
		}
		if tc.min > 1 && tc.n >= tc.min {
			if max := int32(tc.n / tc.min); chunks > max {
				t.Fatalf("n=%d min=%d p=%d: %d chunks exceeds cap %d", tc.n, tc.min, tc.p, chunks, max)
			}
		}
	}
}
