// Package par provides the tiny data-parallel scaffolding shared by the
// distance kernel and the solver pipeline: splitting an index range into
// contiguous chunks and running them on a bounded number of goroutines
// (stdlib sync only).
//
// Everything in this repository that is parallelized writes to disjoint,
// position-determined slots of a preallocated slice, so the helpers here
// need no channels and no locks — only a WaitGroup barrier. Parallelism
// changes *when* a value is computed, never *what* is computed, which is
// what lets the solvers guarantee bit-identical results to the serial path.
package par

import (
	"runtime"
	"sync"
)

// N resolves a parallelism request: p >= 1 is taken literally, anything
// else (0, negative) means runtime.NumCPU().
func N(p int) int {
	if p >= 1 {
		return p
	}
	return runtime.NumCPU()
}

// Do splits [0, n) into at most p contiguous chunks of near-equal length
// and runs fn(lo, hi) for each, concurrently when p > 1. fn must only
// touch state owned by its chunk. Do returns after every chunk completes.
func Do(n, p int, fn func(lo, hi int)) {
	DoWeighted(n, p, nil, fn)
}

// DoMin is Do with a minimum chunk grain: the goroutine count is capped
// so every chunk covers at least min indices, degenerating to a plain
// serial call when n < 2·min. Fan-out costs a goroutine spawn and a
// barrier (microseconds); kernels over rows of cheap elements only win
// when each chunk amortizes that, so callers pass the break-even grain
// and DoMin keeps small inputs off the scheduler entirely.
func DoMin(n, min, p int, fn func(lo, hi int)) {
	if min > 1 {
		if maxP := n / min; maxP < 1 {
			p = 1
		} else if pp := N(p); pp > maxP {
			p = maxP
		}
	}
	Do(n, p, fn)
}

// DoWeighted is Do with per-index costs: chunk boundaries are chosen so
// each chunk carries roughly 1/p of Σ weight(i). A nil weight means
// uniform cost. Triangular workloads (row k of a lower-triangular matrix
// has k entries) pass weight(k) = k so the first rows don't starve the
// goroutine that owns them.
func DoWeighted(n, p int, weight func(i int) int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p = N(p)
	if p > n {
		p = n
	}
	if p == 1 {
		fn(0, n)
		return
	}
	bounds := chunkBounds(n, p, weight)
	var wg sync.WaitGroup
	for c := 0; c+1 < len(bounds); c++ {
		lo, hi := bounds[c], bounds[c+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// chunkBounds returns p+1 ascending cut points over [0, n] balancing the
// total weight per chunk.
func chunkBounds(n, p int, weight func(i int) int) []int {
	bounds := make([]int, 0, p+1)
	bounds = append(bounds, 0)
	if weight == nil {
		for c := 1; c < p; c++ {
			bounds = append(bounds, c*n/p)
		}
		return append(bounds, n)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	acc, next := 0, 1
	for i := 0; i < n && next < p; i++ {
		acc += weight(i)
		// Cut after index i once this chunk holds its share.
		if acc*p >= total*next {
			bounds = append(bounds, i+1)
			next++
		}
	}
	for len(bounds) < p {
		bounds = append(bounds, n)
	}
	return append(bounds, n)
}
