package schedule

import (
	"math"
	"sync"
	"testing"
)

func TestForecasterColdIsReactive(t *testing.T) {
	f := NewForecaster(ForecastConfig{})
	if got := f.PredictedBacklog(7, 10); got != 7 {
		t.Fatalf("cold forecaster predicted %v, want the raw backlog 7", got)
	}
}

func TestForecasterConvergesToSteadyRate(t *testing.T) {
	f := NewForecaster(ForecastConfig{Alpha: 0.3, Guard: 2})
	for i := 0; i < 50; i++ {
		f.RecordArrivals(10)
		f.RecordCompletions(4)
		f.Tick()
	}
	arr, sigma, comp := f.Rates()
	if math.Abs(arr-10) > 1e-6 {
		t.Errorf("arrival mean = %v, want 10", arr)
	}
	if math.Abs(comp-4) > 1e-6 {
		t.Errorf("completion mean = %v, want 4", comp)
	}
	if sigma > 1e-6 {
		t.Errorf("steady stream sigma = %v, want ~0", sigma)
	}
	// Net +6/tick over 5 ticks from a backlog of 3.
	if got, want := f.PredictedBacklog(3, 5), 33.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("PredictedBacklog = %v, want %v", got, want)
	}
}

func TestForecasterBurstinessGuardRaisesForecast(t *testing.T) {
	steady := NewForecaster(ForecastConfig{Alpha: 0.3, Guard: 2})
	bursty := NewForecaster(ForecastConfig{Alpha: 0.3, Guard: 2})
	// Same mean arrival rate (5/tick), wildly different variance.
	for i := 0; i < 60; i++ {
		steady.RecordArrivals(5)
		if i%2 == 0 {
			bursty.RecordArrivals(10)
		}
		steady.Tick()
		bursty.Tick()
	}
	s := steady.PredictedBacklog(0, 10)
	b := bursty.PredictedBacklog(0, 10)
	if b <= s {
		t.Fatalf("bursty forecast %v not above steady %v despite equal means", b, s)
	}
	_, sigma, _ := bursty.Rates()
	if sigma < 1 {
		t.Fatalf("bursty sigma = %v, want >= 1", sigma)
	}
}

func TestForecasterDrainingFloorsAtZero(t *testing.T) {
	f := NewForecaster(ForecastConfig{})
	for i := 0; i < 20; i++ {
		f.RecordArrivals(1)
		f.RecordCompletions(10)
		f.Tick()
	}
	if got := f.PredictedBacklog(5, 100); got != 0 {
		t.Fatalf("draining shard predicted %v, want 0", got)
	}
}

func TestForecasterConcurrentRecords(t *testing.T) {
	f := NewForecaster(ForecastConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.RecordArrivals(1)
				f.RecordCompletions(1)
			}
		}()
	}
	wg.Wait()
	f.Tick()
	arr, _, comp := f.Rates()
	if arr != 8000 || comp != 8000 {
		t.Fatalf("first tick folded (%v, %v), want (8000, 8000)", arr, comp)
	}
}

func TestWindowTrackerDeclaredWins(t *testing.T) {
	tr := NewWindowTracker(WindowConfig{})
	tr.Arrive("w1", 100)
	tr.Declare("w1", 500)
	if got := tr.DepartureEstimate("w1"); got != 500 {
		t.Fatalf("declared estimate = %d, want 500", got)
	}
	tr.Declare("w1", 0)
	if got := tr.DepartureEstimate("w1"); got != 0 {
		t.Fatalf("cleared declaration estimate = %d, want 0 (unknown)", got)
	}
}

func TestWindowTrackerLearnsMeanSession(t *testing.T) {
	tr := NewWindowTracker(WindowConfig{Alpha: 0.5, MinSessions: 2})
	// Two sessions of 100 then 200: mean = 100 + 0.5*(200-100) = 150.
	tr.Arrive("w1", 0)
	tr.Depart("w1", 100)
	if got := tr.DepartureEstimate("w1"); got != 0 {
		t.Fatalf("absent worker estimate = %d, want 0", got)
	}
	tr.Arrive("w1", 1000)
	// Only one completed session so far: below MinSessions, unknown.
	if got := tr.DepartureEstimate("w1"); got != 0 {
		t.Fatalf("single-session estimate = %d, want 0 (below MinSessions)", got)
	}
	tr.Depart("w1", 1200)
	tr.Arrive("w1", 5000)
	if got, want := tr.DepartureEstimate("w1"), int64(5150); got != want {
		t.Fatalf("learned estimate = %d, want %d", got, want)
	}
	if got := tr.Sessions("w1"); got != 2 {
		t.Fatalf("sessions = %d, want 2", got)
	}
}

func TestWindowTrackerDepartClearsDeclaration(t *testing.T) {
	tr := NewWindowTracker(WindowConfig{MinSessions: 100})
	tr.Arrive("w1", 0)
	tr.Declare("w1", 900)
	tr.Depart("w1", 50)
	tr.Arrive("w1", 100)
	if got := tr.DepartureEstimate("w1"); got != 0 {
		t.Fatalf("stale declaration survived departure: estimate = %d, want 0", got)
	}
}

func TestWindowTrackerForget(t *testing.T) {
	tr := NewWindowTracker(WindowConfig{})
	tr.Arrive("w1", 0)
	tr.Arrive("w2", 0)
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	tr.Forget("w1")
	if tr.Len() != 1 {
		t.Fatalf("len after forget = %d, want 1", tr.Len())
	}
}

func TestWindowTrackerConcurrent(t *testing.T) {
	tr := NewWindowTracker(WindowConfig{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := string(rune('a' + g))
			for i := int64(0); i < 500; i++ {
				tr.Arrive(id, i*10)
				tr.Depart(id, i*10+5)
				tr.DepartureEstimate(id)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 8 {
		t.Fatalf("len = %d, want 8", tr.Len())
	}
}
