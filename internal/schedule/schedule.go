// Package schedule is the predictive scheduling layer: a per-shard demand
// forecaster and a worker availability-window tracker, both stdlib-only.
//
// The forecaster turns the reactive watermark rebalancer into a predictive
// one: instead of waiting for backlog to breach a threshold, each shard
// maintains an EWMA of its arrival and completion rates plus an EWMA of the
// squared arrival deviation (a burstiness guard), and projects its backlog
// a horizon ahead. The steal loop acts on the projection, moving work
// *before* the queue forms (DATA-WA's demand-prediction argument applied
// to our shard topology).
//
// The window tracker answers "when will this worker leave?". Workers may
// declare an availability window explicitly; absent a declaration the
// tracker learns a per-worker mean session length from observed
// arrive/depart churn and estimates departure as arrival + mean. The
// router uses the estimate to avoid pinning deadline-imminent work to a
// worker who is about to walk away with it.
//
// Both types take explicit timestamps (or none at all) rather than reading
// the wall clock, so deterministic replays and tests can drive time.
package schedule

import (
	"math"
	"sync"
	"sync/atomic"
)

// ForecastConfig tunes a Forecaster. The zero value selects the defaults.
type ForecastConfig struct {
	// Alpha is the EWMA smoothing factor in (0, 1]. Larger values track
	// bursts faster but forget the steady state sooner. Default 0.3.
	Alpha float64
	// Guard scales the arrival-rate standard deviation added on top of
	// the mean when projecting backlog: effective = mean + Guard·σ.
	// It is what makes the forecast conservative under bursty arrivals —
	// a steady stream has σ≈0 and the guard adds nothing. Default 2.
	Guard float64
}

func (c ForecastConfig) withDefaults() ForecastConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.Guard < 0 {
		c.Guard = 0
	} else if c.Guard == 0 {
		c.Guard = 2
	}
	return c
}

// Forecaster tracks one shard's demand. Arrival/completion events are
// recorded lock-free from the hot path; Tick folds the window counts into
// the EWMAs once per forecast interval (called from the steal loop's
// ticker goroutine, so folds never race each other).
type Forecaster struct {
	arrivals    atomic.Int64
	completions atomic.Int64

	mu       sync.Mutex
	cfg      ForecastConfig
	ticks    int64
	arrMean  float64 // EWMA of arrivals per tick
	arrVar   float64 // EWMA of squared arrival deviation
	compMean float64 // EWMA of completions per tick
}

// NewForecaster returns a Forecaster with the given config (zero value =
// defaults).
func NewForecaster(cfg ForecastConfig) *Forecaster {
	return &Forecaster{cfg: cfg.withDefaults()}
}

// RecordArrivals counts n tasks arriving at the shard since the last Tick.
func (f *Forecaster) RecordArrivals(n int) {
	if n > 0 {
		f.arrivals.Add(int64(n))
	}
}

// RecordCompletions counts n tasks completed at the shard since the last
// Tick.
func (f *Forecaster) RecordCompletions(n int) {
	if n > 0 {
		f.completions.Add(int64(n))
	}
}

// Tick folds the counts accumulated since the previous Tick into the rate
// EWMAs. Call it at a fixed cadence; rates are expressed per tick.
func (f *Forecaster) Tick() {
	a := float64(f.arrivals.Swap(0))
	c := float64(f.completions.Swap(0))
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ticks == 0 {
		// Seed the EWMAs with the first observation instead of decaying
		// up from zero, so the forecast is live from the second tick.
		f.arrMean, f.compMean, f.arrVar = a, c, 0
		f.ticks = 1
		return
	}
	alpha := f.cfg.Alpha
	d := a - f.arrMean
	f.arrMean += alpha * d
	// Exponentially weighted variance (West 1979 incremental form):
	// unchanged arrivals decay it toward zero, bursts inflate it.
	f.arrVar = (1 - alpha) * (f.arrVar + alpha*d*d)
	f.compMean += alpha * (c - f.compMean)
	f.ticks++
}

// Ticks returns how many folds have happened. Zero means the forecaster
// has no data and PredictedBacklog degrades to the current backlog (the
// reactive behaviour).
func (f *Forecaster) Ticks() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ticks
}

// Rates returns the current per-tick arrival mean, arrival standard
// deviation, and completion mean.
func (f *Forecaster) Rates() (arrival, sigma, completion float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.arrMean, math.Sqrt(f.arrVar), f.compMean
}

// PredictedBacklog projects the backlog horizonTicks ahead:
//
//	predicted = max(0, backlog + (mean + Guard·σ − completions)·horizon)
//
// With no observations yet it returns the backlog unchanged, so a cold
// forecaster is exactly the reactive rebalancer.
func (f *Forecaster) PredictedBacklog(backlog int, horizonTicks float64) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ticks == 0 || horizonTicks <= 0 {
		return float64(backlog)
	}
	eff := f.arrMean + f.cfg.Guard*math.Sqrt(f.arrVar)
	net := eff - f.compMean
	p := float64(backlog) + net*horizonTicks
	if p < 0 {
		return 0
	}
	return p
}

// WindowConfig tunes a WindowTracker. The zero value selects the defaults.
type WindowConfig struct {
	// Alpha is the EWMA smoothing factor for learned session durations,
	// in (0, 1]. Default 0.3.
	Alpha float64
	// MinSessions is how many completed sessions a worker needs before
	// the learned estimate is trusted. Below it DepartureEstimate
	// returns 0 (unknown) unless the worker declared a window. Default 2.
	MinSessions int
}

func (c WindowConfig) withDefaults() WindowConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.MinSessions <= 0 {
		c.MinSessions = 2
	}
	return c
}

// WindowTracker estimates per-worker availability windows. Declared
// windows always win; otherwise it learns a mean session duration from
// arrive/depart observations. All timestamps are caller-supplied (UnixNano
// by convention, but any monotone int64 clock works).
type WindowTracker struct {
	mu  sync.Mutex
	cfg WindowConfig
	w   map[string]*windowState
}

type windowState struct {
	declaredUntil int64 // 0 = none declared
	arrivedAt     int64
	present       bool
	meanSession   float64 // EWMA of observed session durations
	sessions      int
}

// NewWindowTracker returns a WindowTracker with the given config (zero
// value = defaults).
func NewWindowTracker(cfg WindowConfig) *WindowTracker {
	return &WindowTracker{cfg: cfg.withDefaults(), w: make(map[string]*windowState)}
}

func (t *WindowTracker) state(id string) *windowState {
	ws := t.w[id]
	if ws == nil {
		ws = &windowState{}
		t.w[id] = ws
	}
	return ws
}

// Declare records an explicit availability-window end for the worker.
// until == 0 clears the declaration, falling back to the learned estimate.
func (t *WindowTracker) Declare(id string, until int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state(id).declaredUntil = until
}

// Arrive records the worker joining at time at.
func (t *WindowTracker) Arrive(id string, at int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ws := t.state(id)
	ws.present = true
	ws.arrivedAt = at
}

// Depart records the worker leaving at time at, folding the observed
// session duration into the worker's mean.
func (t *WindowTracker) Depart(id string, at int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ws := t.w[id]
	if ws == nil || !ws.present {
		return
	}
	ws.present = false
	if d := float64(at - ws.arrivedAt); d > 0 {
		if ws.sessions == 0 {
			ws.meanSession = d
		} else {
			ws.meanSession += t.cfg.Alpha * (d - ws.meanSession)
		}
		ws.sessions++
	}
	// A declared window is one session's promise, not a permanent fact:
	// departure consumes it.
	ws.declaredUntil = 0
}

// DepartureEstimate returns the estimated instant the worker leaves:
// the declared window end if one is set, else arrival + learned mean
// session once MinSessions sessions have been observed. Zero means
// unknown — callers must treat unknown as "no constraint", never as
// "departing now".
func (t *WindowTracker) DepartureEstimate(id string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	ws := t.w[id]
	if ws == nil {
		return 0
	}
	if ws.declaredUntil > 0 {
		return ws.declaredUntil
	}
	if ws.present && ws.sessions >= t.cfg.MinSessions {
		return ws.arrivedAt + int64(ws.meanSession)
	}
	return 0
}

// Sessions returns how many completed sessions have been observed for the
// worker.
func (t *WindowTracker) Sessions(id string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ws := t.w[id]; ws != nil {
		return ws.sessions
	}
	return 0
}

// Forget drops all state for the worker (e.g. after a permanent
// deregistration), so the map cannot grow without bound across a long
// churn trace of one-shot workers.
func (t *WindowTracker) Forget(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.w, id)
}

// Len returns the number of tracked workers.
func (t *WindowTracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.w)
}
