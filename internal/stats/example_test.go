package stats_test

import (
	"fmt"

	"github.com/htacs/ata/internal/stats"
)

// ExampleTwoProportionZTest reruns the kind of comparison the paper makes
// on crowdwork quality.
func ExampleTwoProportionZTest() {
	// Strategy A answered 310/379 questions correctly, strategy B 286/379.
	res, err := stats.TwoProportionZTest(310, 379, 286, 379)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("Z = %.2f, one-sided p = %.3f\n", res.Z, res.POneSided)
	// Output:
	// Z = 2.13, one-sided p = 0.017
}

// ExampleMannWhitneyU compares per-session completed-task counts, as the
// paper does for throughput.
func ExampleMannWhitneyU() {
	a := []float64{40, 38, 36, 35, 33}
	b := []float64{30, 29, 28, 27, 26}
	res, err := stats.MannWhitneyU(a, b)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("U = %.0f, one-sided p = %.3f\n", res.U, res.POneSided)
	// Output:
	// U = 25, one-sided p = 0.005
}
