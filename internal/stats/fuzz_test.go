package stats

import (
	"math"
	"testing"
)

// FuzzMannWhitneyU feeds arbitrary float pairs through the U test and
// checks it never panics, never returns out-of-range p-values, and stays
// antisymmetric.
func FuzzMannWhitneyU(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(-5.0, 5.0, 1e300, -1e300)
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2 float64) {
		for _, v := range []float64{a1, a2, b1, b2} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("NaN/Inf inputs are out of contract")
			}
		}
		a := []float64{a1, a2}
		b := []float64{b1, b2}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			return // insufficient data (e.g. all tied) is a valid outcome
		}
		if res.POneSided < 0 || res.POneSided > 1 || res.PTwoSided < 0 || res.PTwoSided > 1.0000001 {
			t.Fatalf("p-values out of range: %+v", res)
		}
		rev, err := MannWhitneyU(b, a)
		if err != nil {
			t.Fatalf("reverse direction errored: %v", err)
		}
		if math.Abs(res.Z+rev.Z) > 1e-9 {
			t.Fatalf("Z not antisymmetric: %g vs %g", res.Z, rev.Z)
		}
	})
}

// FuzzTwoProportionZTest checks the Z test over arbitrary counts.
func FuzzTwoProportionZTest(f *testing.F) {
	f.Add(10, 20, 5, 20)
	f.Add(0, 1, 1, 1)
	f.Add(-1, 5, 2, 5)
	f.Fuzz(func(t *testing.T, x1, n1, x2, n2 int) {
		res, err := TwoProportionZTest(x1, n1, x2, n2)
		if err != nil {
			return
		}
		if math.IsNaN(res.Z) || res.POneSided < 0 || res.POneSided > 0.5000001 {
			t.Fatalf("bad result for (%d/%d, %d/%d): %+v", x1, n1, x2, n2, res)
		}
	})
}
