// Package stats implements the statistical machinery of the paper's online
// evaluation (Section V-C): the two-proportions Z-test used on crowdwork
// quality, the Mann-Whitney U test used on per-session completed-task
// counts and session durations, and survival curves for worker retention.
// Only the normal approximations are implemented, which is what the paper's
// sample sizes (20 sessions per strategy, ~1,100 graded questions) call
// for.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a test cannot run on the sample.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean; 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator); 0 for
// samples smaller than 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %g outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// normalCDF is the standard normal cumulative distribution function.
func normalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// ZTestResult reports a Z statistic with its one- and two-sided p-values.
type ZTestResult struct {
	Z         float64
	POneSided float64 // P(Z' >= |Z|): evidence that the higher proportion is truly higher
	PTwoSided float64
}

// TwoProportionZTest compares success proportions x1/n1 and x2/n2 using the
// pooled two-proportions Z-test, as the paper does for the share of correct
// answers per strategy ("the significance level is 0.06 using
// two-proportions Z-test").
func TwoProportionZTest(x1, n1, x2, n2 int) (ZTestResult, error) {
	if n1 <= 0 || n2 <= 0 {
		return ZTestResult{}, fmt.Errorf("%w: n1=%d n2=%d", ErrInsufficientData, n1, n2)
	}
	if x1 < 0 || x1 > n1 || x2 < 0 || x2 > n2 {
		return ZTestResult{}, fmt.Errorf("stats: counts out of range: %d/%d, %d/%d", x1, n1, x2, n2)
	}
	p1 := float64(x1) / float64(n1)
	p2 := float64(x2) / float64(n2)
	pooled := float64(x1+x2) / float64(n1+n2)
	se := math.Sqrt(pooled * (1 - pooled) * (1/float64(n1) + 1/float64(n2)))
	if se == 0 {
		return ZTestResult{}, fmt.Errorf("%w: zero variance (pooled p = %g)", ErrInsufficientData, pooled)
	}
	z := (p1 - p2) / se
	abs := math.Abs(z)
	return ZTestResult{
		Z:         z,
		POneSided: 1 - normalCDF(abs),
		PTwoSided: 2 * (1 - normalCDF(abs)),
	}, nil
}

// UTestResult reports a Mann-Whitney U test.
type UTestResult struct {
	U         float64 // U statistic of the first sample
	Z         float64 // normal approximation with tie correction
	POneSided float64
	PTwoSided float64
}

// MannWhitneyU compares two independent samples with the Mann-Whitney U
// test (normal approximation with tie correction), as the paper does for
// completed tasks per session and session durations. Both samples need at
// least one observation; the approximation is reasonable for n1+n2 ≥ ~12,
// which the paper's 20-session samples satisfy.
func MannWhitneyU(a, b []float64) (UTestResult, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return UTestResult{}, fmt.Errorf("%w: n1=%d n2=%d", ErrInsufficientData, n1, n2)
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie groups; accumulate tie correction Σ(t³−t).
	n := n1 + n2
	ranks := make([]float64, n)
	var tieCorrection float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		// Ranks i+1..j share the midrank.
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	mu := float64(n1) * float64(n2) / 2
	nf := float64(n)
	variance := (float64(n1) * float64(n2) / 12) * (nf + 1 - tieCorrection/(nf*(nf-1)))
	if variance <= 0 {
		return UTestResult{}, fmt.Errorf("%w: all observations tied", ErrInsufficientData)
	}
	z := (u1 - mu) / math.Sqrt(variance)
	abs := math.Abs(z)
	return UTestResult{
		U:         u1,
		Z:         z,
		POneSided: 1 - normalCDF(abs),
		PTwoSided: 2 * (1 - normalCDF(abs)),
	}, nil
}

// SurvivalPoint is one step of a survival curve.
type SurvivalPoint struct {
	Time     float64 // duration threshold
	Fraction float64 // fraction of sessions strictly longer than Time... see SurvivalCurve
}

// SurvivalCurve returns, for each time in grid, the fraction of durations
// that are ≥ that time — the paper's Figure 5c ("% of sessions that ended
// after x minutes"). grid must be sorted ascending.
func SurvivalCurve(durations []float64, grid []float64) []SurvivalPoint {
	out := make([]SurvivalPoint, len(grid))
	n := float64(len(durations))
	for i, g := range grid {
		alive := 0
		for _, d := range durations {
			if d >= g {
				alive++
			}
		}
		frac := 0.0
		if n > 0 {
			frac = float64(alive) / n
		}
		out[i] = SurvivalPoint{Time: g, Fraction: frac}
	}
	return out
}
