package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "Mean")
	approx(t, StdDev(xs), 2.138089935, 1e-6, "StdDev") // sample stddev
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/tiny samples should give 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, c.want, 1e-12, "Quantile")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("Quantile(nil) err = %v", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q accepted")
	}
	// Interpolation between order statistics.
	got, err := Quantile([]float64{0, 10}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, 2.5, 1e-12, "interpolated quantile")
}

func TestTwoProportionZTestKnown(t *testing.T) {
	// Textbook example: 60/100 vs 45/100. pooled = 0.525,
	// se = sqrt(0.525*0.475*0.02) ≈ 0.070623, z ≈ 2.1240.
	res, err := TwoProportionZTest(60, 100, 45, 100)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Z, 2.1240, 1e-3, "Z")
	approx(t, res.PTwoSided, 0.0337, 2e-3, "two-sided p")
	approx(t, res.POneSided, 0.0168, 1e-3, "one-sided p")
}

// TestPaperQualityComparison reruns the paper's own test: GRE-DIV answered
// 81.9% of its share of 1,137 graded questions correctly vs GRE's 75.5%,
// at significance ~0.06 — i.e. a one-sided p in the vicinity of 0.05–0.07
// for roughly equal thirds of the sample.
func TestPaperQualityComparison(t *testing.T) {
	n := 1137 / 3
	div := int(0.819 * float64(n))
	gre := int(0.755 * float64(n))
	res, err := TwoProportionZTest(div, n, gre, n)
	if err != nil {
		t.Fatal(err)
	}
	if res.POneSided < 0.01 || res.POneSided > 0.12 {
		t.Errorf("one-sided p = %g, expected near the paper's 0.06", res.POneSided)
	}
}

func TestTwoProportionZTestErrors(t *testing.T) {
	if _, err := TwoProportionZTest(1, 0, 1, 5); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v", err)
	}
	if _, err := TwoProportionZTest(6, 5, 1, 5); err == nil {
		t.Error("x1 > n1 accepted")
	}
	if _, err := TwoProportionZTest(0, 5, 0, 5); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("zero-variance err = %v", err)
	}
}

func TestMannWhitneyUKnown(t *testing.T) {
	// Distinct samples with a clear shift.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{6, 7, 8, 9, 10}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Errorf("U = %g, want 0 (complete separation)", res.U)
	}
	if res.POneSided > 0.01 {
		t.Errorf("p = %g, want < 0.01 for complete separation", res.POneSided)
	}
	// Symmetry: swapping samples flips the sign of Z.
	rev, err := MannWhitneyU(b, a)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, rev.Z, -res.Z, 1e-9, "Z antisymmetry")
}

func TestMannWhitneyUWithTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{2, 3, 3, 4}
	res, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: ranks of sorted [1,2,2,2,3,3,3,4] with midranks
	// [1, 3, 3, 3, 6, 6, 6, 8]; R1 = 1+3+3+6 = 13; U1 = 13 − 10 = 3.
	approx(t, res.U, 3, 1e-9, "U with ties")
	if res.PTwoSided < 0 || res.PTwoSided > 1 {
		t.Errorf("p = %g out of range", res.PTwoSided)
	}
}

func TestMannWhitneyUErrors(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v", err)
	}
	if _, err := MannWhitneyU([]float64{2, 2}, []float64{2, 2}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("all-tied err = %v", err)
	}
}

func TestMannWhitneyUNullDistribution(t *testing.T) {
	// Under H0 (same distribution), one-sided p should be < 0.05 roughly 5%
	// of the time. Loose bound to keep the test stable.
	r := rand.New(rand.NewSource(99))
	rejections := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		a := make([]float64, 20)
		b := make([]float64, 20)
		for j := range a {
			a[j] = r.NormFloat64()
			b[j] = r.NormFloat64()
		}
		res, err := MannWhitneyU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.POneSided < 0.05 {
			rejections++
		}
	}
	rate := float64(rejections) / trials
	if rate > 0.20 {
		t.Errorf("null rejection rate %.2f far above nominal", rate)
	}
}

func TestSurvivalCurve(t *testing.T) {
	durations := []float64{5, 10, 15, 30}
	grid := []float64{0, 10, 20, 30, 40}
	curve := SurvivalCurve(durations, grid)
	want := []float64{1, 0.75, 0.25, 0.25, 0}
	for i, p := range curve {
		if p.Time != grid[i] {
			t.Errorf("point %d time = %g", i, p.Time)
		}
		approx(t, p.Fraction, want[i], 1e-12, "survival fraction")
	}
	empty := SurvivalCurve(nil, grid)
	for _, p := range empty {
		if p.Fraction != 0 {
			t.Errorf("empty curve fraction = %g", p.Fraction)
		}
	}
}

func TestQuickSurvivalMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		durations := make([]float64, 1+r.Intn(30))
		for i := range durations {
			durations[i] = r.Float64() * 30
		}
		grid := []float64{0, 5, 10, 15, 20, 25, 30}
		curve := SurvivalCurve(durations, grid)
		for i := 1; i < len(curve); i++ {
			if curve[i].Fraction > curve[i-1].Fraction {
				return false
			}
		}
		return curve[0].Fraction == 1 // all durations >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickZTestSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n1, n2 := 5+r.Intn(100), 5+r.Intn(100)
		x1, x2 := r.Intn(n1+1), r.Intn(n2+1)
		a, errA := TwoProportionZTest(x1, n1, x2, n2)
		b, errB := TwoProportionZTest(x2, n2, x1, n1)
		if errA != nil || errB != nil {
			return errors.Is(errA, ErrInsufficientData) == errors.Is(errB, ErrInsufficientData)
		}
		return math.Abs(a.Z+b.Z) < 1e-9 && math.Abs(a.PTwoSided-b.PTwoSided) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
