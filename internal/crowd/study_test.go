package crowd

import (
	"testing"
)

func TestQualification(t *testing.T) {
	q := DefaultQualification()
	cases := []struct {
		hits int
		rate float64
		want bool
	}{
		{100, 0.80, true},
		{5000, 0.99, true},
		{99, 0.99, false},
		{500, 0.79, false},
		{0, 0, false},
	}
	for _, c := range cases {
		cand := &Candidate{ApprovedHITs: c.hits, ApprovalRate: c.rate}
		if got := cand.Qualifies(q); got != c.want {
			t.Errorf("Qualifies(%d hits, %.2f rate) = %v, want %v", c.hits, c.rate, got, c.want)
		}
	}
}

func TestNewCandidatePopulation(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 31))
	qualified := 0
	const n = 200
	for i := 0; i < n; i++ {
		c := sim.NewCandidate("c")
		if c.SimWorker == nil || c.Worker.Keywords == nil {
			t.Fatal("candidate without worker")
		}
		if c.Qualifies(DefaultQualification()) {
			qualified++
		}
	}
	// Roughly a quarter of the population should fail, with slack.
	if qualified < n/2 || qualified == n {
		t.Fatalf("%d/%d candidates qualified; expected a filtered majority", qualified, n)
	}
}

func TestRunFilteredStudyConfigValidation(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 32))
	if _, err := sim.RunFilteredStudy(Strategies, StudyConfig{SessionsTarget: 0}); err == nil {
		t.Error("zero target accepted")
	}
	if _, err := sim.RunFilteredStudy(Strategies, StudyConfig{SessionsTarget: 2, OvertimeRate: 1.5}); err == nil {
		t.Error("overtime rate > 1 accepted")
	}
}

func TestRunFilteredStudyPipeline(t *testing.T) {
	p := shortParams()
	p.ReassignAfter = 5
	sim := newSim(t, p, liveCorpus(t, 33))
	cfg := StudyConfig{
		SessionsTarget: 5,
		Qualification:  DefaultQualification(),
		OvertimeRate:   0.3, // high rate so the overtime filter demonstrably fires
	}
	study, err := sim.RunFilteredStudy([]Strategy{StrategyGRE, StrategyRel}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyGRE, StrategyRel} {
		counts := study.Filters[strat]
		if counts.Recruited == 0 {
			t.Fatalf("%s: no candidates recruited", strat)
		}
		if counts.Selected > cfg.SessionsTarget {
			t.Fatalf("%s: selected %d > target %d", strat, counts.Selected, cfg.SessionsTarget)
		}
		if counts.Selected != len(study.Sessions[strat]) {
			t.Fatalf("%s: counts.Selected %d != sessions %d", strat, counts.Selected, len(study.Sessions[strat]))
		}
		if counts.Unqualified+counts.Overtime+counts.Incomplete+counts.Valid != counts.Recruited {
			t.Fatalf("%s: filter counts do not add up: %+v", strat, counts)
		}
		if counts.Unqualified == 0 {
			t.Errorf("%s: qualification filter never fired over %d recruits", strat, counts.Recruited)
		}
		if counts.Overtime == 0 {
			t.Errorf("%s: overtime filter never fired at rate %.2f", strat, cfg.OvertimeRate)
		}
		// Selection keeps the sessions with the most completions: the list
		// must be sorted non-increasing by Completed.
		sessions := study.Sessions[strat]
		for i := 1; i < len(sessions); i++ {
			if sessions[i].Completed > sessions[i-1].Completed {
				t.Fatalf("%s: sessions not ranked by completions", strat)
			}
		}
		// No overtime session can leak through: durations obey the limit.
		for _, sess := range sessions {
			if sess.DurationMinutes > p.SessionMinutes+1e-9 {
				t.Fatalf("%s: overtime session selected (%.1f min)", strat, sess.DurationMinutes)
			}
		}
	}
	// The aggregate API still works on the filtered study.
	tot := study.Total(StrategyGRE)
	if tot.Sessions != len(study.Sessions[StrategyGRE]) {
		t.Fatalf("totals inconsistent: %+v", tot)
	}
}

func TestRunFilteredStudyTopNSelection(t *testing.T) {
	p := shortParams()
	sim := newSim(t, p, liveCorpus(t, 34))
	cfg := StudyConfig{SessionsTarget: 3, Qualification: Qualification{}, OvertimeRate: 0}
	study, err := sim.RunFilteredStudy([]Strategy{StrategyDiv}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := study.Filters[StrategyDiv]
	if counts.Unqualified != 0 {
		t.Fatalf("empty qualification still filtered %d", counts.Unqualified)
	}
	if counts.Valid < cfg.SessionsTarget {
		t.Skipf("only %d valid sessions; selection not exercised", counts.Valid)
	}
	if len(study.Sessions[StrategyDiv]) != cfg.SessionsTarget {
		t.Fatalf("selected %d, want %d", len(study.Sessions[StrategyDiv]), cfg.SessionsTarget)
	}
}
