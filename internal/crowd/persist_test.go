package crowd

import (
	"bytes"
	"strings"
	"testing"
)

func TestSessionRoundTrip(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 61))
	study, err := sim.RunStudy([]Strategy{StrategyGRE, StrategyDiv}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.WriteSessions(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSessions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyGRE, StrategyDiv} {
		orig, restored := study.Sessions[strat], back.Sessions[strat]
		if len(restored) != len(orig) {
			t.Fatalf("%s: %d sessions restored, want %d", strat, len(restored), len(orig))
		}
		for i := range orig {
			a, b := orig[i], restored[i]
			if a.WorkerID != b.WorkerID || a.Completed != b.Completed ||
				a.Correct != b.Correct || a.DurationMinutes != b.DurationMinutes {
				t.Fatalf("%s session %d differs after round trip", strat, i)
			}
			if len(a.Events) != len(b.Events) {
				t.Fatalf("%s session %d lost events", strat, i)
			}
		}
		// Aggregates agree too.
		ta, tb := study.Total(strat), back.Total(strat)
		if ta != tb {
			t.Fatalf("%s totals differ: %+v vs %+v", strat, ta, tb)
		}
	}
}

func TestReadSessionsRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"truncated":    `{"Strategy":"hta-gre"`,
		"no strategy":  `{"WorkerID":"w"}`,
		"inconsistent": `{"Strategy":"hta-gre","Completed":3,"Events":[]}`,
		"bad counts":   `{"Strategy":"hta-gre","Questions":1,"Correct":2}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadSessions(strings.NewReader(payload)); err == nil {
				t.Fatal("garbage accepted")
			}
		})
	}
	if study, err := ReadSessions(strings.NewReader("")); err != nil || len(study.Sessions) != 0 {
		t.Fatalf("empty archive: %v", err)
	}
}
