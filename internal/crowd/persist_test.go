package crowd

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestSessionRoundTrip(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 61))
	study, err := sim.RunStudy([]Strategy{StrategyGRE, StrategyDiv}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.WriteSessions(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSessions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyGRE, StrategyDiv} {
		orig, restored := study.Sessions[strat], back.Sessions[strat]
		if len(restored) != len(orig) {
			t.Fatalf("%s: %d sessions restored, want %d", strat, len(restored), len(orig))
		}
		for i := range orig {
			a, b := orig[i], restored[i]
			if a.WorkerID != b.WorkerID || a.Completed != b.Completed ||
				a.Correct != b.Correct || a.DurationMinutes != b.DurationMinutes {
				t.Fatalf("%s session %d differs after round trip", strat, i)
			}
			if len(a.Events) != len(b.Events) {
				t.Fatalf("%s session %d lost events", strat, i)
			}
		}
		// Aggregates agree too.
		ta, tb := study.Total(strat), back.Total(strat)
		if ta != tb {
			t.Fatalf("%s totals differ: %+v vs %+v", strat, ta, tb)
		}
	}
}

func TestReadSessionsRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"truncated":    `{"Strategy":"hta-gre"`,
		"no strategy":  `{"WorkerID":"w"}`,
		"inconsistent": `{"Strategy":"hta-gre","Completed":3,"Events":[]}`,
		"bad counts":   `{"Strategy":"hta-gre","Questions":1,"Correct":2}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadSessions(strings.NewReader(payload)); err == nil {
				t.Fatal("garbage accepted")
			}
		})
	}
	if study, err := ReadSessions(strings.NewReader("")); err != nil || len(study.Sessions) != 0 {
		t.Fatalf("empty archive: %v", err)
	}
}

// TestReadSessionsCorruption hardens ReadSessions against damaged archives:
// truncation at every byte offset of a real archive must yield either a
// valid prefix or an error — never a panic — and decode failures must wrap
// the underlying json error so callers can errors.As into it.
func TestReadSessionsCorruption(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 61))
	study, err := sim.RunStudy([]Strategy{StrategyGRE}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.WriteSessions(&buf); err != nil {
		t.Fatal(err)
	}
	archive := buf.Bytes()
	full, err := ReadSessions(bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	total := len(full.Sessions[StrategyGRE])

	for cut := 0; cut < len(archive); cut++ {
		got, err := ReadSessions(bytes.NewReader(archive[:cut]))
		if err != nil {
			continue // corruption detected — the acceptable outcome
		}
		// A clean parse of a truncated archive is only legal when the cut
		// lands exactly after a complete JSON value (a '}' or the newline
		// that follows it), and then it yields a prefix of the sessions.
		if n := len(got.Sessions[StrategyGRE]); n > total {
			t.Fatalf("cut=%d: parsed %d sessions from prefix, full archive has %d", cut, n, total)
		}
		if cut > 0 && archive[cut-1] != '\n' && archive[cut-1] != '}' {
			t.Fatalf("cut=%d: truncation mid-value parsed cleanly", cut)
		}
	}

	// Bit-flip corruption inside the JSON must surface as a wrapped json
	// error, not a panic or a silent partial result.
	flipped := append([]byte(nil), archive...)
	flipped[len(flipped)/2] = 0x00
	if _, err := ReadSessions(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupted archive accepted")
	}

	var syn *json.SyntaxError
	if _, err := ReadSessions(strings.NewReader("\x00\x01garbage{{{")); err == nil {
		t.Fatal("binary garbage accepted")
	} else if !errors.As(err, &syn) {
		t.Fatalf("garbage error does not wrap *json.SyntaxError: %v", err)
	}
}
