package crowd

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteSessions streams a study's sessions as JSON lines (one session per
// line, strategy included), the archival format consumed by cmd/hta-report
// and by external analysis tooling.
func (r *StudyResult) WriteSessions(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, strat := range Strategies {
		for _, sess := range r.Sessions[strat] {
			if err := enc.Encode(sess); err != nil {
				return fmt.Errorf("crowd: encoding session %s/%s: %w", strat, sess.WorkerID, err)
			}
		}
	}
	// Strategies outside the canonical three (e.g. random baseline runs)
	// are appended afterwards.
	for strat, sessions := range r.Sessions {
		if strat == StrategyGRE || strat == StrategyRel || strat == StrategyDiv {
			continue
		}
		for _, sess := range sessions {
			if err := enc.Encode(sess); err != nil {
				return fmt.Errorf("crowd: encoding session %s/%s: %w", strat, sess.WorkerID, err)
			}
		}
	}
	return nil
}

// ReadSessions parses a session archive back into a StudyResult.
func ReadSessions(r io.Reader) (*StudyResult, error) {
	dec := json.NewDecoder(r)
	out := &StudyResult{Sessions: make(map[Strategy][]*SessionResult)}
	n := 0
	for {
		var sess SessionResult
		if err := dec.Decode(&sess); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("crowd: decoding session %d: %w", n, err)
		}
		if sess.Strategy == "" {
			return nil, fmt.Errorf("crowd: session %d has no strategy", n)
		}
		if sess.Correct > sess.Questions || sess.Completed != len(sess.Events) {
			return nil, fmt.Errorf("crowd: session %d is inconsistent", n)
		}
		copied := sess
		out.Sessions[sess.Strategy] = append(out.Sessions[sess.Strategy], &copied)
		n++
	}
}
