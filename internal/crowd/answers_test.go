package crowd

import (
	"math"
	"math/rand"
	"testing"
)

// TestAnswerOptionDistribution: the draw matches the one-coin model —
// P(truth) = pCorrect, and the wrong options split the rest evenly.
func TestAnswerOptionDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const options, truth, p, n = 4, 2, 0.7, 40000
	counts := make([]int, options)
	for i := 0; i < n; i++ {
		counts[AnswerOption(rng, p, truth, options)]++
	}
	if got := float64(counts[truth]) / n; math.Abs(got-p) > 0.02 {
		t.Fatalf("P(truth) = %.3f, want ~%.2f", got, p)
	}
	wrongEach := (1 - p) / float64(options-1)
	for l, c := range counts {
		if l == truth {
			continue
		}
		if got := float64(c) / n; math.Abs(got-wrongEach) > 0.02 {
			t.Fatalf("P(option %d) = %.3f, want ~%.3f", l, got, wrongEach)
		}
	}
}

func TestAnswerOptionEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if got := AnswerOption(rng, 1, 3, 4); got != 3 {
			t.Fatalf("pCorrect=1 answered %d", got)
		}
		if got := AnswerOption(rng, 0, 3, 4); got == 3 {
			t.Fatal("pCorrect=0 answered the truth")
		}
		if got := AnswerOption(rng, 2.5, 1, 4); got != 1 {
			t.Fatalf("clamped pCorrect>1 answered %d", got)
		}
	}
	// Degenerate inputs pass through rather than panic.
	if got := AnswerOption(rng, 0.5, 0, 1); got != 0 {
		t.Fatalf("options=1: %d", got)
	}
	if got := AnswerOption(rng, 0.5, -1, 4); got != -1 {
		t.Fatalf("negative truth: %d", got)
	}
}
