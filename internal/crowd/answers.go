package crowd

import "math/rand"

// AnswerOption draws the categorical answer a worker gives to an
// L-option task whose correct option is truth: the truth with
// probability pCorrect (clamped to [0, 1]), otherwise a uniform draw
// over the L-1 wrong options. This is the bridge between the session
// simulation's per-task correctness probability (Params.BaseAccuracy
// plus the engagement and relevance terms, times SimWorker.Skill) and
// the quality layer's vote alphabet: feeding these draws into
// quality.Tracker.Submit reproduces a one-coin worker with accuracy
// pCorrect exactly — the model the EM aggregator assumes.
func AnswerOption(rng *rand.Rand, pCorrect float64, truth, options int) int {
	if options < 2 || truth < 0 || truth >= options {
		return truth
	}
	if pCorrect < 0 {
		pCorrect = 0
	}
	if pCorrect > 1 {
		pCorrect = 1
	}
	if rng.Float64() < pCorrect {
		return truth
	}
	// Uniform over the wrong options: draw from L-1 slots and skip past
	// the truth so every wrong option is equally likely.
	wrong := rng.Intn(options - 1)
	if wrong >= truth {
		wrong++
	}
	return wrong
}
