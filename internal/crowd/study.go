package crowd

import (
	"errors"
	"fmt"
	"sort"
)

// This file reproduces the *selection pipeline* of the paper's online
// experiment (Section V-C), not just its sessions. The paper:
//
//   - recruited only workers with ≥ 100 approved HITs and an approval rate
//     above 80 %;
//   - published 160 HITs, then filtered 12 where workers did not observe
//     the allotted 30 minutes ("some stayed several hours") and 53 where
//     workers did not complete at least one iteration;
//   - to make strategies comparable, selected the 20 work sessions with
//     the highest number of completed tasks in each strategy.
//
// RunFilteredStudy models all three stages over the simulated crowd.

// Qualification is the AMT-style recruitment filter.
type Qualification struct {
	// MinApprovedHITs is the minimum prior approved work (paper: 100).
	MinApprovedHITs int
	// MinApprovalRate is the minimum historical approval rate (paper: 0.80).
	MinApprovalRate float64
}

// DefaultQualification matches the paper's recruitment requirements.
func DefaultQualification() Qualification {
	return Qualification{MinApprovedHITs: 100, MinApprovalRate: 0.80}
}

// Candidate is a recruited worker with an AMT-style track record.
type Candidate struct {
	*SimWorker
	ApprovedHITs int
	ApprovalRate float64
}

// Qualifies reports whether the candidate passes the filter.
func (c *Candidate) Qualifies(q Qualification) bool {
	return c.ApprovedHITs >= q.MinApprovedHITs && c.ApprovalRate >= q.MinApprovalRate
}

// NewCandidate draws a worker with a synthetic track record. Roughly a
// quarter of the population fails the paper's requirements.
func (s *Simulator) NewCandidate(id string) *Candidate {
	w := s.NewWorker(id)
	c := &Candidate{SimWorker: w}
	if s.rng.Float64() < 0.15 {
		c.ApprovedHITs = s.rng.Intn(100) // too little history
	} else {
		c.ApprovedHITs = 100 + s.rng.Intn(5000)
	}
	if s.rng.Float64() < 0.12 {
		c.ApprovalRate = 0.5 + 0.3*s.rng.Float64() // below the bar
	} else {
		c.ApprovalRate = 0.80 + 0.2*s.rng.Float64()
	}
	return c
}

// StudyConfig drives RunFilteredStudy.
type StudyConfig struct {
	// SessionsTarget is the number of valid sessions to keep per strategy
	// (paper: 20).
	SessionsTarget int
	// Qualification filters recruits before they enter a session.
	Qualification Qualification
	// OvertimeRate is the probability that a worker ignores the HIT time
	// limit (the paper filtered 12 of 160 such HITs ≈ 0.075).
	OvertimeRate float64
	// MaxAttempts bounds recruiting per strategy, like a HIT budget.
	// Defaults to 4× SessionsTarget.
	MaxAttempts int
}

// DefaultStudyConfig mirrors the paper's numbers.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		SessionsTarget: 20,
		Qualification:  DefaultQualification(),
		OvertimeRate:   0.075,
	}
}

// FilterCounts records what the pipeline discarded, per strategy.
type FilterCounts struct {
	Recruited   int // candidates drawn
	Unqualified int // failed the AMT qualification
	Overtime    int // did not observe the allotted time
	Incomplete  int // did not complete at least one iteration
	Valid       int // sessions entering the top-N selection
	Selected    int // sessions kept (≤ SessionsTarget)
}

// FilteredStudy is the outcome of the full pipeline.
type FilteredStudy struct {
	*StudyResult
	Filters map[Strategy]FilterCounts
}

// RunFilteredStudy runs the recruitment → session → filtering → selection
// pipeline for each strategy. A session is "overtime" when the simulated
// worker ignores the time limit (it is run with triple the session budget
// and then discarded, as the paper discarded such HITs); it is
// "incomplete" when the worker quit before finishing one assignment
// iteration. Valid sessions are ranked by completed tasks and the top
// SessionsTarget are kept.
func (s *Simulator) RunFilteredStudy(strategies []Strategy, cfg StudyConfig) (*FilteredStudy, error) {
	if cfg.SessionsTarget < 1 {
		return nil, errors.New("crowd: SessionsTarget must be >= 1")
	}
	if cfg.OvertimeRate < 0 || cfg.OvertimeRate >= 1 {
		return nil, fmt.Errorf("crowd: OvertimeRate = %g outside [0,1)", cfg.OvertimeRate)
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 4 * cfg.SessionsTarget
	}
	out := &FilteredStudy{
		StudyResult: &StudyResult{Sessions: make(map[Strategy][]*SessionResult)},
		Filters:     make(map[Strategy]FilterCounts),
	}
	for _, strat := range strategies {
		var counts FilterCounts
		var valid []*SessionResult
		for attempt := 0; attempt < cfg.MaxAttempts && counts.Valid < cfg.MaxAttempts; attempt++ {
			if len(valid) >= cfg.SessionsTarget*2 {
				break // enough material for the top-N cut
			}
			counts.Recruited++
			cand := s.NewCandidate(fmt.Sprintf("%s-c%03d", strat, attempt))
			if !cand.Qualifies(cfg.Qualification) {
				counts.Unqualified++
				continue
			}
			overtime := s.rng.Float64() < cfg.OvertimeRate
			res, err := s.runPossiblyOvertime(strat, cand.SimWorker, overtime)
			if err != nil {
				return nil, err
			}
			if overtime {
				counts.Overtime++
				continue
			}
			// "Did not complete at least one iteration": quit before
			// finishing the first assigned batch.
			if res.DroppedOut && res.Completed < s.params.ReassignAfter {
				counts.Incomplete++
				continue
			}
			counts.Valid++
			valid = append(valid, res)
		}
		// Comparable strategies: keep the SessionsTarget sessions with the
		// most completed tasks.
		sort.SliceStable(valid, func(i, j int) bool {
			return valid[i].Completed > valid[j].Completed
		})
		if len(valid) > cfg.SessionsTarget {
			valid = valid[:cfg.SessionsTarget]
		}
		counts.Selected = len(valid)
		out.Sessions[strat] = valid
		out.Filters[strat] = counts
	}
	return out, nil
}

// runPossiblyOvertime runs one session; when overtime is set the worker
// ignores the time limit (tripled budget), modelling the HITs the paper
// had to discard.
func (s *Simulator) runPossiblyOvertime(strat Strategy, w *SimWorker, overtime bool) (*SessionResult, error) {
	if !overtime {
		return s.RunSession(strat, w)
	}
	saved := s.params.SessionMinutes
	s.params.SessionMinutes = saved * 3
	defer func() { s.params.SessionMinutes = saved }()
	return s.RunSession(strat, w)
}
