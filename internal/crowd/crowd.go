// Package crowd simulates the paper's online deployment (Section V-C): 30
// minute work sessions in which a crowd worker completes micro-tasks
// assigned by one of the strategies HTA-GRE (adaptive), HTA-GRE-DIV
// (diversity only), HTA-GRE-REL (relevance only) or Random, while the
// platform measures crowdwork quality, task throughput and worker
// retention (Figures 5a–5c).
//
// The paper's experiment used 58 live AMT workers; we cannot hire humans,
// so SimWorker is a behavioural model whose three response channels are the
// very mechanisms the paper reports or conjectures:
//
//   - Engagement and boredom. Monotonous stretches (low diversity against
//     the recent-work window) build boredom; answer accuracy decays with
//     it. This is the paper's explanation for HTA-GRE-REL's poor and
//     decaying quality ("providing relevant tasks only may induce
//     boredom").
//   - Switch overhead. Time per task grows with the task's novelty against
//     recent work ("too much diversity results in overhead in choosing
//     tasks"), which is why the paper's diversity-only strategy loses on
//     throughput despite winning on quality.
//   - Dropout. The per-task hazard of abandoning the session grows with
//     boredom and with deviation from a comfortable novelty level in
//     either direction — motivation as *balance*, the paper's premise —
//     ramping up over the session; this yields Figure 5c's retention
//     ordering with the adaptive strategy on top.
//
// Each session runs a real adaptive.Engine with the real solvers — only the
// human is simulated.
package crowd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/stats"
)

// Strategy identifies the assignment policy of a work session.
type Strategy string

// The strategies compared in Section V-C, plus the Random baseline.
const (
	StrategyGRE    Strategy = "hta-gre"
	StrategyDiv    Strategy = "hta-gre-div"
	StrategyRel    Strategy = "hta-gre-rel"
	StrategyRandom Strategy = "random"
)

// Strategies lists the three strategies of Figure 5 in paper order.
var Strategies = []Strategy{StrategyGRE, StrategyRel, StrategyDiv}

// solveFunc returns the adaptive-engine solver for a strategy. The live
// strategies replay the paper's deployed pipeline literally — including
// its deterministic LSAP tie behaviour (solver.WithoutTaskShuffle): the
// monotony that relevance-only workers experience in the paper partly
// stems from tied profits serving runs of same-group tasks, and the
// simulation reproduces that system as deployed. The shuffle improvement
// is evaluated separately (hta-bench -fig obj).
func (s Strategy) solveFunc() (adaptive.SolveFunc, error) {
	literal := func(solve adaptive.SolveFunc) adaptive.SolveFunc {
		return func(in *core.Instance, opts ...solver.Option) (*solver.Result, error) {
			return solve(in, append(opts, solver.WithoutTaskShuffle())...)
		}
	}
	switch s {
	case StrategyGRE:
		return literal(solver.HTAGRE), nil
	case StrategyDiv:
		return literal(solver.HTAGREDiv), nil
	case StrategyRel:
		return literal(solver.HTAGRERel), nil
	case StrategyRandom:
		return func(in *core.Instance, opts ...solver.Option) (*solver.Result, error) {
			cfg := rand.New(rand.NewSource(int64(in.NumTasks())*7919 + int64(in.NumWorkers())))
			return solver.Random(in, cfg), nil
		}, nil
	}
	return nil, fmt.Errorf("crowd: unknown strategy %q", s)
}

// Params are the behavioural and platform constants of the simulation.
// Defaults (DefaultParams) are calibrated so the aggregate curves match the
// shape of Figures 5a–5c.
type Params struct {
	// SessionMinutes is the HIT time limit (the paper required HITs to be
	// completed within 30 minutes).
	SessionMinutes float64
	// Xmax is the solver capacity per iteration (paper: 15).
	Xmax int
	// DisplayExtra is the number of additional random tasks shown
	// (paper: 5, "to avoid falling into a silo").
	DisplayExtra int
	// ReassignAfter triggers a new assignment iteration once the worker
	// has completed this many tasks of the current display set.
	ReassignAfter int

	// BaseTaskSeconds is the intrinsic time per micro-task; the effective
	// time adds DivOverheadSeconds scaled by the chosen task's novelty
	// against the recent-work window — switching topics costs re-reading
	// instructions and re-orienting (the paper's "overhead in choosing
	// tasks" under high diversity).
	BaseTaskSeconds    float64
	DivOverheadSeconds float64

	// NoveltyWindow is how many recent tasks define the monotony context.
	NoveltyWindow int

	// BaseAccuracy + EngagementGain·engagement + RelevanceGain·rel(t,w)
	// is the probability of answering a question correctly, where
	// engagement = 1/(1+boredom).
	BaseAccuracy   float64
	EngagementGain float64
	RelevanceGain  float64

	// Boredom rises by BoredomRate·(NoveltyThreshold − novelty) after each
	// task (novelty = mean diversity of the task to the NoveltyWindow most
	// recently completed ones) and is clamped to [0, BoredomCap].
	BoredomRate      float64
	NoveltyThreshold float64
	BoredomCap       float64

	// Per-task dropout hazard:
	// (HazardBase + HazardBoredom·boredom + HazardFlow·|novelty−ideal(w)|
	//  + HazardMismatch·(1−rel)) · (1 + HazardRamp·(elapsed/SessionMinutes)²),
	// where ideal(w) = 0.25 + 0.6·TrueAlpha is the worker's own preferred
	// novelty level. The flow term encodes the paper's hypothesis directly:
	// motivation is a per-worker *balance* of diversity and relevance, and
	// only an adaptive strategy can serve each worker's own balance —
	// one-size-fits-all diversity overshoots relevance-seekers, pure
	// relevance undershoots diversity-seekers. The boredom term adds the
	// attrition of sustained monotony and the mismatch term the attrition
	// of working far from one's competences.
	HazardBase     float64
	HazardBoredom  float64
	HazardFlow     float64
	HazardMismatch float64
	HazardRamp     float64
	// BoredomGrace is the boredom level below which boredom does not yet
	// drive dropout (mild tedium lowers accuracy before it makes workers
	// leave); the hazard's boredom term uses max(0, boredom−BoredomGrace).
	BoredomGrace float64

	// QuestionsPerTask is the mean number of graded questions per task
	// (the paper asked 4,473 questions over 2,715 tasks ≈ 1.65).
	QuestionsPerTask float64

	// PoolPerSession is how many tasks are drawn from the corpus for each
	// session's engine.
	PoolPerSession int

	// Parallelism is forwarded to adaptive.Config.Parallelism: 0 keeps the
	// legacy serial solver path, > 0 enables the cached diversity kernel
	// with that many goroutines per session engine, < 0 uses all CPUs.
	// Session outcomes are bit-identical either way.
	Parallelism int

	// Seed drives all randomness.
	Seed int64
}

// DefaultParams returns the calibrated defaults.
func DefaultParams() Params {
	return Params{
		SessionMinutes:     30,
		Xmax:               15,
		DisplayExtra:       5,
		ReassignAfter:      10,
		BaseTaskSeconds:    24,
		DivOverheadSeconds: 22,
		NoveltyWindow:      4,
		BaseAccuracy:       0.44,
		EngagementGain:     0.36,
		RelevanceGain:      0.05,
		BoredomRate:        0.65,
		NoveltyThreshold:   0.60,
		BoredomCap:         3.5,
		HazardBase:         0.001,
		HazardBoredom:      0.006,
		HazardFlow:         0.024,
		HazardMismatch:     0.002,
		HazardRamp:         4,
		BoredomGrace:       0.5,
		QuestionsPerTask:   1.65,
		PoolPerSession:     600,
		Seed:               1,
	}
}

func (p Params) validate() error {
	switch {
	case p.SessionMinutes <= 0:
		return errors.New("crowd: SessionMinutes must be positive")
	case p.Xmax < 1:
		return errors.New("crowd: Xmax must be >= 1")
	case p.ReassignAfter < 1:
		return errors.New("crowd: ReassignAfter must be >= 1")
	case p.BaseTaskSeconds <= 0:
		return errors.New("crowd: BaseTaskSeconds must be positive")
	case p.NoveltyWindow < 1:
		return errors.New("crowd: NoveltyWindow must be >= 1")
	case p.PoolPerSession < p.Xmax+p.DisplayExtra:
		return errors.New("crowd: PoolPerSession smaller than one display set")
	case p.QuestionsPerTask <= 0:
		return errors.New("crowd: QuestionsPerTask must be positive")
	}
	return nil
}

// SimWorker is one simulated crowd worker.
type SimWorker struct {
	// Worker holds the expressed keyword interests shown to the platform.
	Worker *core.Worker
	// TrueAlpha is the latent diversity preference driving task choice;
	// the adaptive engine never sees it directly.
	TrueAlpha float64
	// Skill scales accuracy (multiplies the final probability).
	Skill float64
	// Speed scales time per task (1 = nominal).
	Speed float64
}

// TaskEvent records one completed task.
type TaskEvent struct {
	Minute    float64 // completion time from session start
	TaskID    string
	Questions int
	Correct   int
}

// SessionResult is one simulated work session.
type SessionResult struct {
	Strategy        Strategy
	WorkerID        string
	DurationMinutes float64
	DroppedOut      bool // true if the worker quit before the time limit
	Completed       int
	Questions       int
	Correct         int
	// Earnings is the sum of completed task rewards in dollars (the paper
	// paid per task, $0.01–$0.12, reporting a $0.064 average under GRE).
	Earnings float64
	Events   []TaskEvent
	// FinalAlpha is the engine's α estimate at session end (adaptive runs).
	FinalAlpha float64
	// Diagnostics averaged over completed tasks: novelty (diversity to the
	// previous task), the displayed set's mean pairwise diversity, the
	// task–worker relevance, and the boredom level at completion time.
	MeanNovelty   float64
	MeanOptionDiv float64
	MeanRelevance float64
	MeanBoredom   float64
}

// Simulator runs sessions against a task corpus.
type Simulator struct {
	params Params
	corpus []*core.Task
	dist   metric.Distance
	rng    *rand.Rand
}

// NewSimulator validates parameters and captures the task corpus, which
// must contain at least PoolPerSession tasks with keyword vectors.
func NewSimulator(params Params, corpus []*core.Task) (*Simulator, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(corpus) < params.PoolPerSession {
		return nil, fmt.Errorf("crowd: corpus has %d tasks, need >= %d", len(corpus), params.PoolPerSession)
	}
	for i, t := range corpus {
		if t == nil || t.Keywords == nil {
			return nil, fmt.Errorf("crowd: corpus task %d lacks keywords", i)
		}
	}
	return &Simulator{
		params: params,
		corpus: corpus,
		dist:   metric.Jaccard{},
		rng:    rand.New(rand.NewSource(params.Seed)),
	}, nil
}

// NewWorker draws a simulated worker. The paper's platform asked workers to
// choose at least 6 keywords from the vocabulary describing its 22 kinds of
// tasks — so expressed interests are the keywords of a few task kinds, not
// arbitrary words. We mirror that: the worker's keyword vector is the union
// of the keywords of two task groups drawn from the corpus. Latent
// diversity preference, skill and speed vary across the population.
func (s *Simulator) NewWorker(id string) *SimWorker {
	universe := s.corpus[0].Keywords.Len()
	kw := bitset.New(universe)
	kw.UnionWith(s.corpus[s.rng.Intn(len(s.corpus))].Keywords)
	// Idiosyncratic interests beyond the home task kind, to reach the
	// platform's 6-keyword minimum.
	for kw.Count() < 6 {
		kw.Add(s.rng.Intn(universe))
	}
	kw.Add(s.rng.Intn(universe))
	w := &core.Worker{ID: id, Keywords: kw}
	return &SimWorker{
		Worker:    w,
		TrueAlpha: 0.25 + 0.5*s.rng.Float64(),
		Skill:     0.92 + 0.16*s.rng.Float64(),
		Speed:     0.85 + 0.3*s.rng.Float64(),
	}
}

// RunSession simulates one 30-minute work session under the strategy.
func (s *Simulator) RunSession(strategy Strategy, worker *SimWorker) (*SessionResult, error) {
	return s.runSessionSeeded(strategy, worker, s.rng.Int63())
}

// runSessionSeeded is the session body; it draws nothing from s.rng and
// mutates no simulator state, so seeded sessions may run concurrently.
func (s *Simulator) runSessionSeeded(strategy Strategy, worker *SimWorker, seed int64) (*SessionResult, error) {
	solve, err := strategy.solveFunc()
	if err != nil {
		return nil, err
	}
	p := s.params
	rng := rand.New(rand.NewSource(seed))

	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:                   p.Xmax,
		Solve:                  solve,
		ExtraRandomTasks:       p.DisplayExtra,
		Rand:                   rng,
		DisableRandomColdStart: strategy != StrategyGRE,
		Parallelism:            p.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	pool := s.samplePool(rng)
	if err := engine.AddTasks(pool...); err != nil {
		return nil, err
	}
	ws, err := engine.AddWorker(worker.Worker)
	if err != nil {
		return nil, err
	}

	res := &SessionResult{Strategy: strategy, WorkerID: worker.Worker.ID}
	var elapsed float64 // minutes
	var boredom float64

	var sumNovelty, sumOptionDiv, sumRel, sumBoredom float64
	completedInIter := 0

	display, err := engine.NextIteration()
	if err != nil {
		return nil, err
	}
	current := display[worker.Worker.ID]

	for elapsed < p.SessionMinutes {
		remaining := notCompleted(current, ws.Completed)
		if len(remaining) == 0 {
			sets, err := engine.NextIteration()
			if err != nil {
				return nil, err
			}
			current = sets[worker.Worker.ID]
			completedInIter = 0
			remaining = current
			if len(remaining) == 0 {
				break // pool exhausted
			}
		}

		task := s.chooseTask(rng, worker, remaining, ws.Completed)

		// Novelty of this task against the recent-work window. The window
		// (rather than only the previous task) is what makes alternating
		// between two topics still feel monotonous.
		novelty := p.NoveltyThreshold // neutral before any history
		if n := len(ws.Completed); n > 0 {
			win := ws.Completed[max(0, n-p.NoveltyWindow):]
			var sum float64
			for _, c := range win {
				sum += s.dist.Distance(task.Keywords, c.Keywords)
			}
			novelty = sum / float64(len(win))
		}

		// Time to complete: intrinsic cost + topic-switch overhead.
		optionDiv := s.meanPairwiseDiversity(remaining)
		seconds := worker.Speed * (p.BaseTaskSeconds + p.DivOverheadSeconds*novelty)
		seconds *= 0.85 + 0.3*rng.Float64()
		elapsed += seconds / 60
		if elapsed > p.SessionMinutes {
			break // ran out of HIT time mid-task; task not submitted
		}

		// Boredom dynamics: monotony builds it, novelty relieves it.
		boredom += p.BoredomRate * (p.NoveltyThreshold - novelty)
		boredom = math.Max(0, math.Min(p.BoredomCap, boredom))
		engagement := 1 / (1 + boredom)

		// Grade the task's questions.
		rel := metric.Relevance(s.dist, task.Keywords, worker.Worker.Keywords)
		pCorrect := worker.Skill * (p.BaseAccuracy + p.EngagementGain*engagement + p.RelevanceGain*rel)
		pCorrect = math.Max(0.05, math.Min(0.98, pCorrect))
		questions := 1
		if rng.Float64() < p.QuestionsPerTask-1 {
			questions = 2
		}
		correct := 0
		for q := 0; q < questions; q++ {
			if rng.Float64() < pCorrect {
				correct++
			}
		}

		if err := engine.Complete(worker.Worker.ID, task.ID); err != nil {
			return nil, err
		}

		completedInIter++
		sumNovelty += novelty
		sumOptionDiv += optionDiv
		sumRel += rel
		sumBoredom += boredom
		res.Completed++
		res.Questions += questions
		res.Correct += correct
		res.Earnings += task.Reward
		res.Events = append(res.Events, TaskEvent{
			Minute: elapsed, TaskID: task.ID, Questions: questions, Correct: correct,
		})

		// Dropout hazard.
		ramp := 1 + p.HazardRamp*math.Pow(elapsed/p.SessionMinutes, 2)
		ideal := 0.25 + 0.6*worker.TrueAlpha
		hazard := (p.HazardBase + p.HazardBoredom*math.Max(0, boredom-p.BoredomGrace) +
			p.HazardFlow*math.Abs(novelty-ideal) + p.HazardMismatch*(1-rel)) * ramp
		if rng.Float64() < hazard {
			res.DroppedOut = true
			break
		}

		// Assignment service: re-assign after enough completions.
		if completedInIter >= p.ReassignAfter {
			sets, err := engine.NextIteration()
			if err != nil {
				return nil, err
			}
			current = sets[worker.Worker.ID]
			completedInIter = 0
		}
	}
	if elapsed > p.SessionMinutes {
		elapsed = p.SessionMinutes
	}
	res.DurationMinutes = elapsed
	res.FinalAlpha = ws.Alpha()
	if res.Completed > 0 {
		n := float64(res.Completed)
		res.MeanNovelty = sumNovelty / n
		res.MeanOptionDiv = sumOptionDiv / n
		res.MeanRelevance = sumRel / n
		res.MeanBoredom = sumBoredom / n
	}
	return res, nil
}

// samplePool draws PoolPerSession distinct tasks from the corpus.
func (s *Simulator) samplePool(rng *rand.Rand) []*core.Task {
	idx := rng.Perm(len(s.corpus))[:s.params.PoolPerSession]
	pool := make([]*core.Task, len(idx))
	for i, j := range idx {
		// Clone with a session-unique ID so engines never collide.
		t := *s.corpus[j]
		t.ID = fmt.Sprintf("%s#%d", t.ID, i)
		pool[i] = &t
	}
	return pool
}

// chooseTask models the worker's own selection among displayed tasks: a
// mix of marginal diversity and relevance weighted by the latent
// preference, plus noise. This is the signal the adaptive engine learns
// (α, β) from.
func (s *Simulator) chooseTask(rng *rand.Rand, worker *SimWorker, remaining []*core.Task, completed []*core.Task) *core.Task {
	var best *core.Task
	bestU := math.Inf(-1)
	// Normalize marginal diversity by the count of completed tasks.
	norm := float64(len(completed))
	for _, t := range remaining {
		var marg float64
		if norm > 0 {
			for _, c := range completed {
				marg += s.dist.Distance(t.Keywords, c.Keywords)
			}
			marg /= norm
		}
		rel := metric.Relevance(s.dist, t.Keywords, worker.Worker.Keywords)
		u := worker.TrueAlpha*marg + (1-worker.TrueAlpha)*rel + 0.15*rng.Float64()
		if u > bestU {
			bestU, best = u, t
		}
	}
	return best
}

func (s *Simulator) meanPairwiseDiversity(tasks []*core.Task) float64 {
	if len(tasks) < 2 {
		return 0
	}
	var sum float64
	var n int
	for i := 1; i < len(tasks); i++ {
		for j := 0; j < i; j++ {
			sum += s.dist.Distance(tasks[i].Keywords, tasks[j].Keywords)
			n++
		}
	}
	return sum / float64(n)
}

func notCompleted(display []*core.Task, completed []*core.Task) []*core.Task {
	done := make(map[string]bool, len(completed))
	for _, t := range completed {
		done[t.ID] = true
	}
	var out []*core.Task
	for _, t := range display {
		if !done[t.ID] {
			out = append(out, t)
		}
	}
	return out
}

// StudyResult aggregates sessions per strategy, mirroring the paper's
// 20-sessions-per-strategy comparison.
type StudyResult struct {
	Sessions map[Strategy][]*SessionResult
}

// RunStudy simulates sessionsPer sessions for each strategy, each with a
// fresh simulated worker. Workers and session seeds are drawn sequentially
// from the simulator's stream (so results are identical run to run), then
// the independent sessions execute in parallel across CPUs.
func (s *Simulator) RunStudy(strategies []Strategy, sessionsPer int) (*StudyResult, error) {
	if sessionsPer < 1 {
		return nil, errors.New("crowd: sessionsPer must be >= 1")
	}
	type job struct {
		strat  Strategy
		index  int
		worker *SimWorker
		seed   int64
	}
	jobs := make([]job, 0, len(strategies)*sessionsPer)
	for _, strat := range strategies {
		for i := 0; i < sessionsPer; i++ {
			w := s.NewWorker(fmt.Sprintf("%s-w%02d", strat, i))
			jobs = append(jobs, job{strat: strat, index: i, worker: w, seed: s.rng.Int63()})
		}
	}
	results := make([]*SessionResult, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, runtime.NumCPU())
	var wg sync.WaitGroup
	for j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[j], errs[j] = s.runSessionSeeded(jobs[j].strat, jobs[j].worker, jobs[j].seed)
		}(j)
	}
	wg.Wait()
	out := &StudyResult{Sessions: make(map[Strategy][]*SessionResult)}
	for j, res := range results {
		if errs[j] != nil {
			return nil, fmt.Errorf("crowd: session %d of %s: %w", jobs[j].index, jobs[j].strat, errs[j])
		}
		out.Sessions[jobs[j].strat] = append(out.Sessions[jobs[j].strat], res)
	}
	return out, nil
}

// QualityCurve returns the cumulative percentage of correctly answered
// questions by each minute of the grid (Figure 5a).
func (r *StudyResult) QualityCurve(strategy Strategy, grid []float64) []float64 {
	out := make([]float64, len(grid))
	for i, g := range grid {
		var correct, total int
		for _, sess := range r.Sessions[strategy] {
			for _, ev := range sess.Events {
				if ev.Minute <= g {
					correct += ev.Correct
					total += ev.Questions
				}
			}
		}
		if total > 0 {
			out[i] = 100 * float64(correct) / float64(total)
		}
	}
	return out
}

// ThroughputCurve returns the cumulative number of completed tasks across
// all sessions by each minute of the grid (Figure 5b).
func (r *StudyResult) ThroughputCurve(strategy Strategy, grid []float64) []int {
	out := make([]int, len(grid))
	for i, g := range grid {
		n := 0
		for _, sess := range r.Sessions[strategy] {
			for _, ev := range sess.Events {
				if ev.Minute <= g {
					n++
				}
			}
		}
		out[i] = n
	}
	return out
}

// RetentionCurve returns the fraction of sessions still running at each
// minute of the grid (Figure 5c).
func (r *StudyResult) RetentionCurve(strategy Strategy, grid []float64) []stats.SurvivalPoint {
	durations := r.Durations(strategy)
	return stats.SurvivalCurve(durations, grid)
}

// Durations returns the session lengths in minutes.
func (r *StudyResult) Durations(strategy Strategy) []float64 {
	sessions := r.Sessions[strategy]
	out := make([]float64, len(sessions))
	for i, s := range sessions {
		out[i] = s.DurationMinutes
	}
	return out
}

// CompletedCounts returns completed tasks per session.
func (r *StudyResult) CompletedCounts(strategy Strategy) []float64 {
	sessions := r.Sessions[strategy]
	out := make([]float64, len(sessions))
	for i, s := range sessions {
		out[i] = float64(s.Completed)
	}
	return out
}

// Totals summarizes one strategy.
type Totals struct {
	Sessions       int
	Completed      int
	Questions      int
	Correct        int
	QualityPercent float64
	MeanDuration   float64
	MeanPerSession float64
	// MeanTaskReward is the average dollar reward of a completed task.
	MeanTaskReward float64
	// MeanEarnings is the average per-session worker earnings in dollars.
	MeanEarnings float64
}

// Total aggregates a strategy's sessions.
func (r *StudyResult) Total(strategy Strategy) Totals {
	t := Totals{}
	var dur, earnings float64
	for _, s := range r.Sessions[strategy] {
		t.Sessions++
		t.Completed += s.Completed
		t.Questions += s.Questions
		t.Correct += s.Correct
		dur += s.DurationMinutes
		earnings += s.Earnings
	}
	if t.Questions > 0 {
		t.QualityPercent = 100 * float64(t.Correct) / float64(t.Questions)
	}
	if t.Sessions > 0 {
		t.MeanDuration = dur / float64(t.Sessions)
		t.MeanPerSession = float64(t.Completed) / float64(t.Sessions)
		t.MeanEarnings = earnings / float64(t.Sessions)
	}
	if t.Completed > 0 {
		t.MeanTaskReward = earnings / float64(t.Completed)
	}
	return t
}

// CompareQuality runs the two-proportions Z-test on correct answers of a
// vs b, as in the paper's quality comparisons.
func (r *StudyResult) CompareQuality(a, b Strategy) (stats.ZTestResult, error) {
	ta, tb := r.Total(a), r.Total(b)
	return stats.TwoProportionZTest(ta.Correct, ta.Questions, tb.Correct, tb.Questions)
}

// CompareThroughput runs the Mann-Whitney U test on per-session completed
// task counts.
func (r *StudyResult) CompareThroughput(a, b Strategy) (stats.UTestResult, error) {
	return stats.MannWhitneyU(r.CompletedCounts(a), r.CompletedCounts(b))
}

// CompareRetention runs the Mann-Whitney U test on session durations.
func (r *StudyResult) CompareRetention(a, b Strategy) (stats.UTestResult, error) {
	return stats.MannWhitneyU(r.Durations(a), r.Durations(b))
}
