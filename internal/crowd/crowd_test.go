package crowd

import (
	"strings"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/workload"
)

// liveCorpus mirrors the live experiment's structure: 22 kinds of tasks
// (CrowdFlower), many tasks per kind.
func liveCorpus(t testing.TB, seed int64) []*core.Task {
	t.Helper()
	g, err := workload.NewGenerator(workload.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g.Tasks(22, 40)
}

func newSim(t testing.TB, params Params, corpus []*core.Task) *Simulator {
	t.Helper()
	sim, err := NewSimulator(params, corpus)
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	return sim
}

func TestParamsValidation(t *testing.T) {
	corpus := liveCorpus(t, 1)
	bad := []func(*Params){
		func(p *Params) { p.SessionMinutes = 0 },
		func(p *Params) { p.Xmax = 0 },
		func(p *Params) { p.ReassignAfter = 0 },
		func(p *Params) { p.BaseTaskSeconds = 0 },
		func(p *Params) { p.NoveltyWindow = 0 },
		func(p *Params) { p.PoolPerSession = 5 },
		func(p *Params) { p.QuestionsPerTask = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if _, err := NewSimulator(p, corpus); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	small := corpus[:10]
	if _, err := NewSimulator(DefaultParams(), small); err == nil {
		t.Error("corpus smaller than pool accepted")
	}
}

func TestUnknownStrategy(t *testing.T) {
	sim := newSim(t, DefaultParams(), liveCorpus(t, 2))
	w := sim.NewWorker("w")
	if _, err := sim.RunSession(Strategy("bogus"), w); err == nil ||
		!strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("err = %v", err)
	}
}

func TestNewWorkerShape(t *testing.T) {
	sim := newSim(t, DefaultParams(), liveCorpus(t, 3))
	for i := 0; i < 20; i++ {
		w := sim.NewWorker("w")
		if w.Worker.Keywords.Count() < 6 {
			t.Fatalf("worker has %d keywords, platform requires >= 6", w.Worker.Keywords.Count())
		}
		if w.TrueAlpha < 0.25 || w.TrueAlpha > 0.75 {
			t.Fatalf("TrueAlpha = %g outside population range", w.TrueAlpha)
		}
		if w.Skill <= 0 || w.Speed <= 0 {
			t.Fatalf("non-positive skill/speed: %+v", w)
		}
	}
}

func TestSessionInvariants(t *testing.T) {
	sim := newSim(t, DefaultParams(), liveCorpus(t, 4))
	for _, strat := range []Strategy{StrategyGRE, StrategyDiv, StrategyRel, StrategyRandom} {
		res, err := sim.RunSession(strat, sim.NewWorker("w-"+string(strat)))
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if res.DurationMinutes < 0 || res.DurationMinutes > sim.params.SessionMinutes+1e-9 {
			t.Fatalf("%s: duration %g outside session budget", strat, res.DurationMinutes)
		}
		if res.Completed != len(res.Events) {
			t.Fatalf("%s: Completed %d != %d events", strat, res.Completed, len(res.Events))
		}
		if res.Correct > res.Questions {
			t.Fatalf("%s: more correct answers than questions", strat)
		}
		prevMinute := 0.0
		seen := map[string]bool{}
		for _, ev := range res.Events {
			if ev.Minute < prevMinute {
				t.Fatalf("%s: events out of order", strat)
			}
			prevMinute = ev.Minute
			if seen[ev.TaskID] {
				t.Fatalf("%s: task %s completed twice", strat, ev.TaskID)
			}
			seen[ev.TaskID] = true
			if ev.Correct > ev.Questions || ev.Questions < 1 || ev.Questions > 2 {
				t.Fatalf("%s: bad event %+v", strat, ev)
			}
		}
	}
}

// shortParams shrinks sessions so study-level tests stay fast.
func shortParams() Params {
	p := DefaultParams()
	p.SessionMinutes = 12
	p.PoolPerSession = 300
	return p
}

func TestRunStudyShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full study is slow")
	}
	corpus := liveCorpus(t, 42)
	sim := newSim(t, DefaultParams(), corpus)
	study, err := sim.RunStudy(Strategies, 20)
	if err != nil {
		t.Fatal(err)
	}
	gre, rel, div := study.Total(StrategyGRE), study.Total(StrategyRel), study.Total(StrategyDiv)

	// Figure 5a: quality ordering DIV > GRE > REL, with REL clearly behind.
	if !(div.QualityPercent > gre.QualityPercent && gre.QualityPercent > rel.QualityPercent) {
		t.Errorf("quality ordering: div %.1f, gre %.1f, rel %.1f — want div > gre > rel",
			div.QualityPercent, gre.QualityPercent, rel.QualityPercent)
	}
	if div.QualityPercent-rel.QualityPercent < 5 {
		t.Errorf("div-rel quality gap %.1f too small", div.QualityPercent-rel.QualityPercent)
	}

	// Figure 5b: adaptive GRE completes the most tasks overall.
	if !(gre.Completed > rel.Completed && gre.Completed > div.Completed) {
		t.Errorf("throughput: gre %d, rel %d, div %d — want gre highest",
			gre.Completed, rel.Completed, div.Completed)
	}

	// Figure 5c: GRE has the best retention (longest mean session), REL the
	// worst.
	if !(gre.MeanDuration > rel.MeanDuration) {
		t.Errorf("retention: gre %.1f min not above rel %.1f min", gre.MeanDuration, rel.MeanDuration)
	}
	if !(div.MeanDuration > rel.MeanDuration) {
		t.Errorf("retention: div %.1f min not above rel %.1f min", div.MeanDuration, rel.MeanDuration)
	}

	// The boredom mechanism must actually fire for REL and stay quiet for DIV.
	var relBoredom, divBoredom float64
	for _, s := range study.Sessions[StrategyRel] {
		relBoredom += s.MeanBoredom
	}
	for _, s := range study.Sessions[StrategyDiv] {
		divBoredom += s.MeanBoredom
	}
	if relBoredom <= divBoredom {
		t.Errorf("boredom: rel %.2f not above div %.2f", relBoredom, divBoredom)
	}
}

func TestEarningsTracking(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 71))
	study, err := sim.RunStudy([]Strategy{StrategyGRE}, 4)
	if err != nil {
		t.Fatal(err)
	}
	tot := study.Total(StrategyGRE)
	if tot.Completed == 0 {
		t.Fatal("no completions")
	}
	// Task rewards are generated in the paper's micro-task range
	// ($0.01–$0.12), so the mean must land inside it.
	if tot.MeanTaskReward < 0.01 || tot.MeanTaskReward > 0.13 {
		t.Fatalf("mean task reward $%.3f outside micro-task range", tot.MeanTaskReward)
	}
	if tot.MeanEarnings <= 0 {
		t.Fatalf("mean session earnings $%.3f", tot.MeanEarnings)
	}
	var sum float64
	for _, sess := range study.Sessions[StrategyGRE] {
		if sess.Earnings < 0 {
			t.Fatal("negative session earnings")
		}
		sum += sess.Earnings
	}
	if got := sum / float64(tot.Sessions); got != tot.MeanEarnings {
		t.Fatalf("MeanEarnings %g != recomputed %g", tot.MeanEarnings, got)
	}
}

func TestStudyCurvesConsistent(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 7))
	study, err := sim.RunStudy([]Strategy{StrategyGRE}, 4)
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{3, 6, 9, 12}
	th := study.ThroughputCurve(StrategyGRE, grid)
	for i := 1; i < len(th); i++ {
		if th[i] < th[i-1] {
			t.Fatalf("throughput curve not monotone: %v", th)
		}
	}
	total := study.Total(StrategyGRE)
	if th[len(th)-1] != total.Completed {
		t.Fatalf("curve end %d != total completed %d", th[len(th)-1], total.Completed)
	}
	q := study.QualityCurve(StrategyGRE, grid)
	for _, v := range q {
		if v < 0 || v > 100 {
			t.Fatalf("quality %% out of range: %v", q)
		}
	}
	ret := study.RetentionCurve(StrategyGRE, grid)
	for i := 1; i < len(ret); i++ {
		if ret[i].Fraction > ret[i-1].Fraction {
			t.Fatalf("retention curve not monotone: %v", ret)
		}
	}
}

func TestCompareTests(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 8))
	study, err := sim.RunStudy([]Strategy{StrategyGRE, StrategyRel}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.CompareQuality(StrategyGRE, StrategyRel); err != nil {
		t.Errorf("CompareQuality: %v", err)
	}
	if _, err := study.CompareThroughput(StrategyGRE, StrategyRel); err != nil {
		t.Errorf("CompareThroughput: %v", err)
	}
	if _, err := study.CompareRetention(StrategyGRE, StrategyRel); err != nil {
		t.Errorf("CompareRetention: %v", err)
	}
}

func TestRunStudyValidatesCount(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 9))
	if _, err := sim.RunStudy(Strategies, 0); err == nil {
		t.Fatal("sessionsPer = 0 accepted")
	}
}

func TestAdaptiveAlphaIsLearned(t *testing.T) {
	sim := newSim(t, shortParams(), liveCorpus(t, 10))
	res, err := sim.RunSession(StrategyGRE, sim.NewWorker("w"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed > 5 && res.FinalAlpha == 0.5 {
		t.Error("adaptive session never updated α from the prior")
	}
	if res.FinalAlpha < 0 || res.FinalAlpha > 1 {
		t.Errorf("FinalAlpha = %g", res.FinalAlpha)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	corpus := liveCorpus(t, 11)
	p := shortParams()
	run := func() *SessionResult {
		sim := newSim(t, p, corpus)
		res, err := sim.RunSession(StrategyGRE, sim.NewWorker("w"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Correct != b.Correct || a.DurationMinutes != b.DurationMinutes {
		t.Fatalf("same seed, different sessions: %+v vs %+v", a, b)
	}
}
