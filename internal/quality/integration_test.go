package quality_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/quality"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

// These tests wire the quality tracker to the sharded assignment engine
// the way the platform does — replicated task IDs, trust pushed into the
// engine on gold grades — and check the two conservation laws hold
// together under concurrency (run with -race) and across snapshots.

const integK = 3 // answers per logical task

func integEngine(t *testing.T, shards int) *shard.Engine {
	t.Helper()
	e, err := shard.New(shard.Config{
		Shards:        shards,
		StealInterval: -1,
		Registry:      obs.NewRegistry(),
		Stream:        stream.Config{Xmax: 3, BufferLimit: 4096, WithTrust: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// TestEngineTrackerConservationUnderConcurrency drives concurrent
// offerers (each logical task replicated K times), completers that turn
// every engine completion into a tracker vote, and trust pushes on every
// gold grade. At quiescence both invariants must hold:
//
//	engine:  submitted == active + completed + buffered + dropped
//	tracker: answers == K·resolved + pending
//
// even though quarantines reject votes mid-flight and replicas race.
func TestEngineTrackerConservationUnderConcurrency(t *testing.T) {
	e := integEngine(t, 4)
	tr, err := quality.New(quality.Config{
		K: integK, Options: 4, GoldRate: 0.2, GoldSalt: 5,
		QuarantineFloor: 0.35, MinGold: 4,
		Metrics: quality.NewMetrics(obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.NewGenerator(workload.Config{Universe: 64, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	workers := gen.Workers(16)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}

	const offerers, logicalEach = 3, 60
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Offerers: each logical task is observed once by the tracker (gold
	// marking is idempotent and replica-agnostic) and offered to the
	// engine K times under replica IDs, exactly as POST /api/tasks does.
	// Task lists are drawn up front — the generator is not goroutine-safe.
	perOfferer := make([][]*core.Task, offerers)
	for g := range perOfferer {
		perOfferer[g] = gen.Tasks(logicalEach/4+1, 4)[:logicalEach]
	}
	for g := 0; g < offerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, task := range perOfferer[g] {
				id := fmt.Sprintf("o%d-%04d", g, i)
				tr.ObserveTask(id)
				for j := 0; j < integK; j++ {
					cp := *task
					cp.ID = quality.ReplicaID(id, j)
					if _, err := e.OfferTask(&cp); err != nil && !errors.Is(err, stream.ErrBufferFull) {
						t.Errorf("offerer %d: %v", g, err)
						return
					}
				}
			}
		}(g)
	}

	// Completers: complete an active replica, submit the vote for its
	// logical task, and on a trust update push the new value into the
	// engine — the same loop handleSubmitAnswer runs. Spammy options make
	// some workers fail gold checks and get quarantined mid-run.
	var pollers sync.WaitGroup
	for c := 0; c < 3; c++ {
		pollers.Add(1)
		go func(c int) {
			defer pollers.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				wid := workers[rng.Intn(len(workers))].ID
				active, err := e.Active(wid)
				if err != nil || len(active) == 0 {
					continue
				}
				taskID := active[rng.Intn(len(active))]
				if _, err := e.Complete(wid, taskID); err != nil {
					continue
				}
				// Workers w00..w04 answer at random (spammers); the rest
				// always answer 1, matching nothing in particular but
				// consistent enough to survive gold checks sometimes.
				opt := 1
				if wid < "w05" || rng.Intn(10) == 0 {
					opt = rng.Intn(4)
				}
				res, serr := tr.Submit(wid, taskID, opt)
				if serr != nil {
					// Quarantined, duplicate (another replica of the same
					// logical task), or already resolved: all expected.
					if !errors.Is(serr, quality.ErrQuarantined) &&
						!errors.Is(serr, quality.ErrDuplicateVote) &&
						!errors.Is(serr, quality.ErrTaskResolved) {
						t.Errorf("submit: %v", serr)
						return
					}
					continue
				}
				if res.TrustUpdated {
					if _, terr := e.SetTrust(wid, res.Trust); terr != nil {
						t.Errorf("set trust: %v", terr)
						return
					}
				}
			}
		}(c)
	}

	wg.Wait()
	close(stop)
	pollers.Wait()

	est := e.Stats()
	if want := int64(offerers * logicalEach * integK); est.Submitted != want {
		t.Fatalf("engine submitted %d, want %d", est.Submitted, want)
	}
	if !est.Conserved() {
		t.Fatalf("engine conservation violated: %+v", est)
	}
	qst := tr.Stats()
	if !qst.Conserved() {
		t.Fatalf("tracker conservation violated: answers=%d k=%d resolved=%d pending=%d",
			qst.AnswersSubmitted, qst.K, qst.TasksResolved, qst.PendingPartial)
	}
	if qst.AnswersSubmitted == 0 {
		t.Fatal("no votes landed — the completer loop never fed the tracker")
	}
	// Trust pushed into the engine must mirror the tracker's view for
	// every graded worker, including quarantined ones at exactly 0.
	for _, rep := range tr.Reputations() {
		if rep.GoldSeen == 0 {
			continue
		}
		got, err := e.Trust(rep.Worker)
		if err != nil {
			t.Fatalf("engine trust %s: %v", rep.Worker, err)
		}
		if got != rep.Trust {
			t.Fatalf("worker %s: engine trust %v, tracker trust %v", rep.Worker, got, rep.Trust)
		}
	}
}

// TestEngineTrackerSnapshotRoundTripAcrossShardCounts snapshots both
// halves mid-aggregation — partial answer sets, gold tallies, a
// quarantined worker — and restores the engine at a different shard
// count. Reputation must be bit-identical and the engine's per-worker
// trust must survive the re-shard.
func TestEngineTrackerSnapshotRoundTripAcrossShardCounts(t *testing.T) {
	e := integEngine(t, 2)
	cfg := quality.Config{
		K: integK, Options: 4, GoldRate: 0.25, GoldSalt: 11,
		QuarantineFloor: 0.4, MinGold: 3,
	}
	tr, err := quality.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.NewGenerator(workload.Config{Universe: 64, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	workers := gen.Workers(10)
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i, task := range gen.Tasks(40, 4)[:120] {
		id := fmt.Sprintf("t%03d", i)
		tr.ObserveTask(id)
		for j := 0; j < integK; j++ {
			cp := *task
			cp.ID = quality.ReplicaID(id, j)
			if _, err := e.OfferTask(&cp); err != nil && !errors.Is(err, stream.ErrBufferFull) {
				t.Fatal(err)
			}
		}
	}
	// Drive a partial pass: complete and vote on roughly half the load so
	// the snapshot catches tasks mid-aggregation.
	for round := 0; round < 40; round++ {
		for _, w := range workers {
			active, err := e.Active(w.ID)
			if err != nil || len(active) == 0 {
				continue
			}
			taskID := active[0]
			if _, err := e.Complete(w.ID, taskID); err != nil {
				continue
			}
			opt := 1
			if w.ID <= workers[2].ID { // three spammers
				opt = rng.Intn(4)
			}
			res, serr := tr.Submit(w.ID, taskID, opt)
			if serr != nil {
				continue
			}
			if res.TrustUpdated {
				if _, err := e.SetTrust(w.ID, res.Trust); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if tr.Stats().PendingPartial == 0 {
		t.Fatal("test wants a mid-aggregation snapshot but nothing is pending")
	}

	var ebuf, qbuf bytes.Buffer
	if err := e.Snapshot(&ebuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.Snapshot(&qbuf); err != nil {
		t.Fatal(err)
	}

	// Restore the engine at 5 shards instead of 2; the tracker has no
	// shard count, so restore is symmetric.
	e2, err := shard.Restore(bytes.NewReader(ebuf.Bytes()), shard.Config{
		Shards:        5,
		StealInterval: -1,
		Registry:      obs.NewRegistry(),
		Stream:        stream.Config{Xmax: 3, BufferLimit: 4096, WithTrust: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e2.Close)
	tr2, err := quality.Restore(bytes.NewReader(qbuf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	repA, repB := tr.Reputations(), tr2.Reputations()
	if len(repA) == 0 || len(repA) != len(repB) {
		t.Fatalf("reputation counts: %d vs %d", len(repA), len(repB))
	}
	quarantined := 0
	for i := range repA {
		if repA[i] != repB[i] {
			t.Fatalf("reputation diverged after restore: %+v vs %+v", repA[i], repB[i])
		}
		if repA[i].Quarantined {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Fatal("test wants at least one quarantined worker in the snapshot")
	}
	for _, w := range workers {
		before, err1 := e.Trust(w.ID)
		after, err2 := e2.Trust(w.ID)
		if err1 != nil || err2 != nil {
			t.Fatalf("trust %s: %v / %v", w.ID, err1, err2)
		}
		if before != after {
			t.Fatalf("worker %s: trust %v before restore, %v after", w.ID, before, after)
		}
	}
	if !e2.Stats().Conserved() {
		t.Fatalf("restored engine not conserved: %+v", e2.Stats())
	}
	if !tr2.Stats().Conserved() {
		t.Fatalf("restored tracker not conserved: %+v", tr2.Stats())
	}
}
