package quality

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

func newTracker(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrackerResolvesAtK(t *testing.T) {
	tr := newTracker(t, Config{K: 3, Options: 4})
	for i, w := range []string{"w0", "w1", "w2"} {
		res, err := tr.Submit(w, "t1", 2)
		if err != nil {
			t.Fatal(err)
		}
		if wantResolved := i == 2; res.Resolved != wantResolved {
			t.Fatalf("vote %d: resolved=%v", i, res.Resolved)
		}
	}
	ans := tr.Answers()
	if len(ans) != 1 || ans[0].TaskID != "t1" || ans[0].Option != 2 {
		t.Fatalf("answers = %+v", ans)
	}
	if st := tr.Stats(); !st.Conserved() || st.TasksResolved != 1 || st.PendingPartial != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Replica IDs map onto the same logical task.
	if _, err := tr.Submit("w3", "t1~r0", 1); !errors.Is(err, ErrTaskResolved) {
		t.Fatalf("vote on resolved task via replica ID: %v", err)
	}
}

func TestTrackerRejectsDuplicatesAndBadOptions(t *testing.T) {
	tr := newTracker(t, Config{K: 2, Options: 4})
	if _, err := tr.Submit("w0", "t1", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Submit("w0", "t1~r1", 1); !errors.Is(err, ErrDuplicateVote) {
		t.Fatalf("duplicate (worker, logical task): %v", err)
	}
	if _, err := tr.Submit("w0", "t2", 4); err == nil {
		t.Fatal("out-of-range option accepted")
	}
	if _, err := tr.Submit("", "t2", 0); err == nil {
		t.Fatal("empty worker accepted")
	}
	if st := tr.Stats(); st.AnswersSubmitted != 1 || !st.Conserved() {
		t.Fatalf("rejections leaked into accounting: %+v", st)
	}
}

func TestGoldGradingAndQuarantine(t *testing.T) {
	tr := newTracker(t, Config{
		K: 2, Options: 4, QuarantineFloor: 0.4, MinGold: 3,
	})
	for i := 0; i < 5; i++ {
		if err := tr.AddGold(fmt.Sprintf("g%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// A spammer always answers 3: graded wrong every time, quarantined at
	// the MinGold-th grade once accuracy (0+1)/(3+2)=0.2 < 0.4.
	var res SubmitResult
	var err error
	for i := 0; i < 3; i++ {
		res, err = tr.Submit("spammer", fmt.Sprintf("g%d", i), 3)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Gold || res.Correct {
			t.Fatalf("grade %d: %+v", i, res)
		}
	}
	if !res.Quarantined || res.Trust != 0 {
		t.Fatalf("after 3 wrong golds: %+v", res)
	}
	if _, err := tr.Submit("spammer", "t-normal", 0); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined submit: %v", err)
	}
	// An honest worker stays clear and its trust tracks its accuracy.
	for i := 0; i < 4; i++ {
		res, err = tr.Submit("honest", fmt.Sprintf("g%d", i), 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	if res.Quarantined || res.Trust <= 0.5 {
		t.Fatalf("honest worker: %+v", res)
	}
	rep, ok := tr.Reputation("spammer")
	if !ok || !rep.Quarantined || rep.GoldSeen != 3 || rep.GoldCorrect != 0 {
		t.Fatalf("spammer reputation: %+v", rep)
	}
	st := tr.Stats()
	if st.Quarantined != 1 || st.GoldGraded != 7 || st.AnswersSubmitted != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if !st.Conserved() {
		t.Fatalf("gold answers broke conservation: %+v", st)
	}
}

func TestAutoGoldIsDeterministicFraction(t *testing.T) {
	tr := newTracker(t, Config{K: 1, Options: 4, GoldRate: 0.25, GoldSalt: 7})
	tr2 := newTracker(t, Config{K: 1, Options: 4, GoldRate: 0.25, GoldSalt: 7})
	gold := 0
	const n = 2000
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("g%04d-t%03d", i/100, i%100)
		tr.ObserveTask(id)
		tr2.ObserveTask(id + "~r1") // replica observation agrees
		a1, ok1 := tr.GoldAnswer(id)
		a2, ok2 := tr2.GoldAnswer(id)
		if ok1 != ok2 || a1 != a2 {
			t.Fatalf("task %s: gold marking diverged across trackers/replicas", id)
		}
		if ok1 {
			gold++
			if a1 < 0 || a1 >= 4 {
				t.Fatalf("task %s: gold answer %d", id, a1)
			}
		}
	}
	if frac := float64(gold) / n; frac < 0.20 || frac > 0.30 {
		t.Fatalf("auto-gold fraction %.3f, want ~0.25", frac)
	}
}

func TestTrackerConservationUnderRandomLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr := newTracker(t, Config{
		K: 3, Options: 4, GoldRate: 0.2, QuarantineFloor: 0.35, MinGold: 4,
	})
	for i := 0; i < 200; i++ {
		tr.ObserveTask(fmt.Sprintf("t%03d", i))
	}
	for ev := 0; ev < 5000; ev++ {
		w := fmt.Sprintf("w%02d", rng.Intn(25))
		task := fmt.Sprintf("t%03d", rng.Intn(200))
		_, err := tr.Submit(w, task, rng.Intn(4))
		if err != nil && !errors.Is(err, ErrQuarantined) &&
			!errors.Is(err, ErrDuplicateVote) && !errors.Is(err, ErrTaskResolved) {
			t.Fatal(err)
		}
		if ev%500 == 0 {
			if st := tr.Stats(); !st.Conserved() {
				t.Fatalf("event %d: conservation broken: %+v", ev, st)
			}
		}
	}
	if st := tr.Stats(); !st.Conserved() {
		t.Fatalf("final conservation broken: %+v", st)
	}
}

// TestTrackerSnapshotRoundTrip: snapshot mid-aggregation (partial votes,
// gold tallies, a quarantined worker), restore, and require bit-identical
// reputation and answers — re-snapshotting must reproduce the document
// byte for byte.
func TestTrackerSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := Config{K: 3, Options: 4, GoldRate: 0.25, QuarantineFloor: 0.4, MinGold: 3, Method: MethodEM}
	tr := newTracker(t, cfg)
	for i := 0; i < 80; i++ {
		tr.ObserveTask(fmt.Sprintf("t%03d", i))
	}
	for ev := 0; ev < 1200; ev++ {
		tr.Submit(fmt.Sprintf("w%02d", rng.Intn(15)), fmt.Sprintf("t%03d", rng.Intn(80)), rng.Intn(4)) //nolint:errcheck
	}
	var buf bytes.Buffer
	if err := tr.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := restored.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot → restore → snapshot is not byte-identical")
	}
	repA, repB := tr.Reputations(), restored.Reputations()
	if len(repA) == 0 || len(repA) != len(repB) {
		t.Fatalf("reputation counts: %d vs %d", len(repA), len(repB))
	}
	for i := range repA {
		if repA[i] != repB[i] {
			t.Fatalf("reputation diverged: %+v vs %+v", repA[i], repB[i])
		}
	}
	ansA, ansB := tr.Answers(), restored.Answers()
	if len(ansA) != len(ansB) {
		t.Fatalf("answer counts: %d vs %d", len(ansA), len(ansB))
	}
	for i := range ansA {
		if ansA[i] != ansB[i] {
			t.Fatalf("answer diverged: %+v vs %+v", ansA[i], ansB[i])
		}
	}
	if !restored.Stats().Conserved() {
		t.Fatalf("restored stats not conserved: %+v", restored.Stats())
	}
	// K mismatch is rejected, not silently re-interpreted.
	if _, err := Restore(bytes.NewReader(buf.Bytes()), Config{K: 5, Options: 4}); err == nil {
		t.Fatal("k mismatch accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: -1}, {Options: 1}, {GoldRate: 1.5}, {GoldRate: -0.1},
		{QuarantineFloor: 2}, {Method: "bogus"},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := ParseMethod("EM"); err != nil {
		t.Fatal("case-insensitive method parse failed")
	}
	if got := LogicalID("t42~r3"); got != "t42" {
		t.Fatalf("LogicalID = %q", got)
	}
	if got := ReplicaID("t42", 3); got != "t42~r3" {
		t.Fatalf("ReplicaID = %q", got)
	}
}

func TestTrustDecayOverIdleTime(t *testing.T) {
	// Nonzero epoch: UnixNano 0 is the "never seen" sentinel.
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	tr := newTracker(t, Config{
		K: 2, Options: 4, TrustDecay: 10 * time.Second, Now: clock,
	})
	for i := 0; i < 4; i++ {
		if err := tr.AddGold(fmt.Sprintf("g%d", i), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Submit("w1", fmt.Sprintf("g%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Four correct grades: accuracy (4+1)/(4+2) = 5/6; no idle yet.
	rep, ok := tr.Reputation("w1")
	if !ok {
		t.Fatal("unknown worker")
	}
	acc := 5.0 / 6.0
	if math.Abs(rep.Trust-acc) > 1e-9 {
		t.Fatalf("fresh trust = %g, want accuracy %g", rep.Trust, acc)
	}

	// One time constant of idleness: trust relaxes toward the 0.5 prior.
	now = now.Add(10 * time.Second)
	rep, _ = tr.Reputation("w1")
	want := 0.5 + (acc-0.5)*math.Exp(-1)
	if math.Abs(rep.Trust-want) > 1e-9 {
		t.Fatalf("idle trust = %g, want %g", rep.Trust, want)
	}
	if math.Abs(rep.Accuracy-acc) > 1e-9 {
		t.Fatalf("accuracy must not decay: %g", rep.Accuracy)
	}

	// Long idleness converges to the prior, never crossing it.
	now = now.Add(time.Hour)
	rep, _ = tr.Reputation("w1")
	if math.Abs(rep.Trust-0.5) > 1e-6 {
		t.Fatalf("stale trust = %g, want ~0.5", rep.Trust)
	}

	// lastSeen survives a snapshot: the restored tracker decays the same.
	var buf bytes.Buffer
	if err := tr.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := Restore(&buf, Config{TrustDecay: 10 * time.Second, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	rrep, _ := rt.Reputation("w1")
	if math.Abs(rrep.Trust-rep.Trust) > 1e-9 {
		t.Fatalf("restored trust = %g, want %g", rrep.Trust, rep.Trust)
	}

	// Decay off (the default): the same history keeps full trust forever.
	plain := newTracker(t, Config{K: 2, Options: 4, Now: clock})
	for i := 0; i < 4; i++ {
		if err := plain.AddGold(fmt.Sprintf("g%d", i), 1); err != nil {
			t.Fatal(err)
		}
		if _, err := plain.Submit("w1", fmt.Sprintf("g%d", i), 1); err != nil {
			t.Fatal(err)
		}
	}
	now = now.Add(24 * time.Hour)
	prep, _ := plain.Reputation("w1")
	if math.Abs(prep.Trust-acc) > 1e-9 {
		t.Fatalf("decay-off trust = %g, want %g", prep.Trust, acc)
	}
}
