// Package quality is the answer-quality and worker-trust layer: the half
// of a crowdsourcing system the paper leaves out. The assignment engine
// decides *who gets which task*; this package decides *whether the
// answers coming back are any good* (Hettiachchi et al.'s survey argues
// the two are inseparable). It provides:
//
//   - redundant answer collection: each task gathers k answers before it
//     is considered resolved;
//   - aggregation: plain majority vote, accuracy-weighted vote (log-odds
//     weights from per-worker accuracy estimates), and an EM-style
//     one-coin Dawid–Skene estimator that learns worker accuracies and
//     item posteriors jointly — all stdlib-only;
//   - gold-standard injection: a configurable fraction of tasks carry a
//     known answer, grading drives an online per-worker accuracy
//     estimate;
//   - reputation: the accuracy estimate becomes a trust score that
//     multiplies into the streaming marginal-gain objective (relevance ×
//     diversity × trust, stream.Config.WithTrust) and quarantines
//     workers whose gold accuracy drops below a floor.
//
// Determinism contract: every aggregation function canonicalizes its
// input (votes sorted by worker ID within a task, tasks processed in
// sorted ID order) before any floating-point accumulation, so shuffling
// workers or answers yields bit-identical posteriors — a property test
// pins this down.
package quality

import (
	"fmt"
	"math"
	"sort"
)

// Vote is one worker's answer to one task.
type Vote struct {
	Worker string `json:"worker"`
	Option int    `json:"option"`
}

// sortVotes orders votes canonically: by worker ID, then option. All
// aggregation folds run over this order, which is what makes them
// permutation-invariant bit-for-bit.
func sortVotes(votes []Vote) []Vote {
	out := append([]Vote(nil), votes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Option < out[j].Option
	})
	return out
}

// Majority returns the plurality option and its vote count. Ties break
// toward the lowest option index, so the result is deterministic. options
// bounds the alphabet; votes outside [0, options) are ignored.
func Majority(votes []Vote, options int) (option, count int) {
	if options < 1 {
		return -1, 0
	}
	counts := make([]int, options)
	for _, v := range votes {
		if v.Option >= 0 && v.Option < options {
			counts[v.Option]++
		}
	}
	best, bestN := -1, 0
	for l, n := range counts {
		if n > bestN {
			best, bestN = l, n
		}
	}
	return best, bestN
}

// Weighted returns the accuracy-weighted winner: each vote carries the
// log-odds weight log((L-1)·acc/(1-acc)) of its worker's accuracy
// estimate (acc from the accuracy map, defaultAcc when absent), clamped
// away from 0 and 1. With equal accuracies every weight is equal and the
// winner degrades to the plain majority — the property tests pin this.
// Ties break toward the lowest option index.
func Weighted(votes []Vote, options int, acc map[string]float64, defaultAcc float64) (option int, weight float64) {
	if options < 1 {
		return -1, 0
	}
	sums := make([]float64, options)
	for _, v := range sortVotes(votes) {
		if v.Option < 0 || v.Option >= options {
			continue
		}
		a, ok := acc[v.Worker]
		if !ok {
			a = defaultAcc
		}
		sums[v.Option] += logOdds(a, options)
	}
	best, bestW := -1, math.Inf(-1)
	for l, s := range sums {
		if s > bestW {
			best, bestW = l, s
		}
	}
	if best >= 0 && sums[best] == 0 {
		// All-zero weights (every accuracy at chance): fall back to counts
		// so a resolved task still gets a deterministic answer.
		best, _ = Majority(votes, options)
		return best, 0
	}
	return best, bestW
}

// logOdds is the weight of one vote from a worker with accuracy a over an
// alphabet of L options, clamped to keep the weight finite.
func logOdds(a float64, options int) float64 {
	const eps = 1e-6
	if a < eps {
		a = eps
	}
	if a > 1-eps {
		a = 1 - eps
	}
	return math.Log(float64(options-1) * a / (1 - a))
}

// TaskVotes is one task's collected answers, the unit of EM aggregation.
type TaskVotes struct {
	TaskID string `json:"task_id"`
	Votes  []Vote `json:"votes"`
}

// EMConfig parameterizes the Dawid–Skene-lite estimator.
type EMConfig struct {
	// Iters is the number of M-step (accuracy re-estimation) rounds. One
	// E-step always runs, so Iters = 0 computes posteriors from InitAcc
	// alone — with every worker at the same above-chance accuracy that is
	// exactly the majority vote, ties included (tested). Default 20.
	Iters int
	// InitAcc seeds every worker's accuracy (default 0.7).
	InitAcc float64
	// PriorCorrect/PriorTotal add a Laplace prior to the M-step so a
	// worker seen on few tasks is not driven to 0 or 1. Defaults 1 and 2.
	PriorCorrect float64
	PriorTotal   float64
	// Tol stops iterating early when no accuracy moved by more than this
	// (default 1e-9).
	Tol float64
}

func (c *EMConfig) defaults() {
	if c.Iters == 0 {
		c.Iters = 20
	}
	if c.Iters < 0 {
		c.Iters = 0
	}
	if c.InitAcc == 0 {
		c.InitAcc = 0.7
	}
	if c.PriorCorrect == 0 {
		c.PriorCorrect = 1
	}
	if c.PriorTotal == 0 {
		c.PriorTotal = 2
	}
	if c.Tol == 0 {
		c.Tol = 1e-9
	}
}

// EMResult is the estimator's output: per-task option posteriors (rows
// sum to 1) and per-worker accuracy estimates.
type EMResult struct {
	// Posteriors[taskID][l] = P(truth = l | votes). Every row is a valid
	// distribution: finite, non-negative, summing to 1 within 1e-9 (the
	// fuzz target asserts this for arbitrary vote matrices).
	Posteriors map[string][]float64
	// Accuracy[worker] is the converged one-coin accuracy estimate.
	Accuracy map[string]float64
}

// Aggregate runs the one-coin Dawid–Skene EM over a batch of tasks:
//
//	E-step: P_i(l) ∝ Π_votes [acc_w if vote = l else (1-acc_w)/(L-1)]
//	M-step: acc_w = (Σ_i P_i(vote_wi) + priorC) / (n_w + priorT)
//
// computed in log space (posteriors normalized by log-sum-exp) so no
// vote matrix can overflow to NaN/Inf. Input order does not matter: the
// batch is canonicalized (tasks by ID, votes by worker) before any
// arithmetic, so permutations yield bit-identical results.
func Aggregate(tasks []TaskVotes, options int, cfg EMConfig) (*EMResult, error) {
	if options < 2 {
		return nil, fmt.Errorf("quality: options = %d, need >= 2", options)
	}
	cfg.defaults()

	// Canonicalize: tasks in ID order, votes in worker order, out-of-range
	// votes dropped. Duplicate task IDs merge their vote lists.
	merged := make(map[string][]Vote, len(tasks))
	ids := make([]string, 0, len(tasks))
	for _, tv := range tasks {
		if _, ok := merged[tv.TaskID]; !ok {
			ids = append(ids, tv.TaskID)
		}
		for _, v := range tv.Votes {
			if v.Option >= 0 && v.Option < options {
				merged[tv.TaskID] = append(merged[tv.TaskID], v)
			}
		}
	}
	sort.Strings(ids)
	canon := make([]TaskVotes, len(ids))
	workerSet := map[string]struct{}{}
	for i, id := range ids {
		canon[i] = TaskVotes{TaskID: id, Votes: sortVotes(merged[id])}
		for _, v := range canon[i].Votes {
			workerSet[v.Worker] = struct{}{}
		}
	}
	workers := make([]string, 0, len(workerSet))
	for w := range workerSet {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	widx := make(map[string]int, len(workers))
	for i, w := range workers {
		widx[w] = i
	}

	acc := make([]float64, len(workers))
	for i := range acc {
		acc[i] = clampAcc(cfg.InitAcc)
	}
	post := make([][]float64, len(canon))
	for i := range post {
		post[i] = make([]float64, options)
	}
	logp := make([]float64, options)

	estep := func() {
		for i, tv := range canon {
			for l := range logp {
				logp[l] = 0
			}
			// Accumulate per-option log-odds deltas instead of full
			// log-likelihoods: P(l) ∝ Π [a_w if vote=l else (1-a_w)/(L-1)]
			// factors into a common base (identical for every l, cancelled
			// by normalization) times exp(Σ_{votes for l} logOdds(a_w)).
			// Summing only the deltas keeps ties exact: options backed by
			// equally-accurate vote sets get bit-identical scores, so the
			// argmax tie rule (lowest index) matches Majority's instead of
			// being decided by float addition order.
			for _, v := range tv.Votes {
				a := acc[widx[v.Worker]]
				logp[v.Option] += math.Log(a) - math.Log((1-a)/float64(options-1))
			}
			// Normalize via log-sum-exp: subtract the max so the largest
			// exponent is 0 and the sum cannot overflow or vanish.
			maxL := logp[0]
			for _, v := range logp[1:] {
				if v > maxL {
					maxL = v
				}
			}
			var z float64
			for l := 0; l < options; l++ {
				post[i][l] = math.Exp(logp[l] - maxL)
				z += post[i][l]
			}
			for l := 0; l < options; l++ {
				post[i][l] /= z
			}
		}
	}

	estep()
	for it := 0; it < cfg.Iters; it++ {
		// M-step: fold each worker's posterior mass in canonical task
		// order (tasks ascending, votes sorted within).
		sumP := make([]float64, len(workers))
		n := make([]float64, len(workers))
		for i, tv := range canon {
			for _, v := range tv.Votes {
				k := widx[v.Worker]
				sumP[k] += post[i][v.Option]
				n[k]++
			}
		}
		moved := 0.0
		for k := range workers {
			na := clampAcc((sumP[k] + cfg.PriorCorrect) / (n[k] + cfg.PriorTotal))
			if d := math.Abs(na - acc[k]); d > moved {
				moved = d
			}
			acc[k] = na
		}
		estep()
		if moved <= cfg.Tol {
			break
		}
	}

	res := &EMResult{
		Posteriors: make(map[string][]float64, len(canon)),
		Accuracy:   make(map[string]float64, len(workers)),
	}
	for i, tv := range canon {
		res.Posteriors[tv.TaskID] = post[i]
	}
	for k, w := range workers {
		res.Accuracy[w] = acc[k]
	}
	return res, nil
}

// clampAcc keeps an accuracy estimate strictly inside (0, 1) so its log
// odds stay finite.
func clampAcc(a float64) float64 {
	const eps = 1e-6
	if a < eps {
		return eps
	}
	if a > 1-eps {
		return 1 - eps
	}
	return a
}

// ArgMax returns the index of the largest posterior entry, ties toward
// the lowest index — the same tie rule Majority uses.
func ArgMax(p []float64) int {
	best, bestV := -1, math.Inf(-1)
	for l, v := range p {
		if v > bestV {
			best, bestV = l, v
		}
	}
	return best
}
