package quality

import "github.com/htacs/ata/internal/obs"

// Metrics are the quality layer's instruments. The accounting mirrors the
// tracker's conservation law (Stats.Conserved): every accepted non-gold
// answer either sits in a pending partial set or has been consumed by a
// resolution, so at quiescence
//
//	Answers = K · Consensus + Pending.
type Metrics struct {
	// Answers counts accepted non-gold answers (duplicates, late votes on
	// resolved tasks, and quarantined submitters are rejected first).
	Answers *obs.Counter
	// Consensus counts tasks that collected their k-th answer.
	Consensus *obs.Counter
	// Gold counts gold answers graded against ground truth.
	Gold *obs.Counter
	// Quarantines counts workers quarantined for low gold accuracy.
	Quarantines *obs.Counter
	// Pending gauges the votes currently held on unresolved tasks.
	Pending *obs.Gauge
	// Quarantined gauges the workers currently quarantined.
	Quarantined *obs.Gauge
}

// NewMetrics registers the quality instruments on r (obs.Default() when
// nil).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		r = obs.Default()
	}
	return &Metrics{
		Answers: r.Counter("hta_quality_answers_total",
			"non-gold answers accepted toward consensus"),
		Consensus: r.Counter("hta_quality_consensus_total",
			"tasks resolved by collecting their k-th answer"),
		Gold: r.Counter("hta_quality_gold_total",
			"gold answers graded against known ground truth"),
		Quarantines: r.Counter("hta_quality_quarantines_total",
			"workers quarantined for gold accuracy below the floor"),
		Pending: r.Gauge("hta_quality_pending_votes",
			"answers held on tasks that have not reached k votes"),
		Quarantined: r.Gauge("hta_quality_quarantined_workers",
			"workers currently quarantined"),
	}
}
