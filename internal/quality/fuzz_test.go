package quality

import (
	"math"
	"testing"
)

// FuzzAggregate feeds arbitrary vote matrices (decoded from raw bytes)
// through the EM estimator and asserts the structural contract: it never
// errors on options >= 2, posteriors contain no NaN/Inf, every row sums
// to 1, and accuracies stay strictly inside (0, 1). Run by CI alongside
// the obs/lsap fuzzers.
func FuzzAggregate(f *testing.F) {
	f.Add([]byte{3, 2, 0, 1, 1, 0, 2, 1}, uint8(10))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, iters uint8) {
		if len(data) == 0 {
			return
		}
		// Decode: first byte fixes the option count, then (task, worker,
		// option) triples. Out-of-range options are intentionally kept —
		// Aggregate must drop them, not die on them.
		options := 2 + int(data[0]%6)
		var batch []TaskVotes
		tasks := map[byte]int{}
		for i := 1; i+2 < len(data); i += 3 {
			tid := data[i] % 16
			idx, ok := tasks[tid]
			if !ok {
				idx = len(batch)
				tasks[tid] = idx
				batch = append(batch, TaskVotes{TaskID: string(rune('A' + tid))})
			}
			batch[idx].Votes = append(batch[idx].Votes, Vote{
				Worker: string(rune('a' + data[i+1]%24)),
				Option: int(data[i+2]) - 2, // can be negative or past options
			})
		}
		res, err := Aggregate(batch, options, EMConfig{Iters: int(iters % 32)})
		if err != nil {
			t.Fatalf("Aggregate errored on valid options=%d: %v", options, err)
		}
		for id, p := range res.Posteriors {
			if len(p) != options {
				t.Fatalf("task %s: %d posterior entries, want %d", id, len(p), options)
			}
			var sum float64
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("task %s: posterior entry %v", id, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("task %s: posterior sums to %v", id, sum)
			}
		}
		for w, a := range res.Accuracy {
			if !(a > 0 && a < 1) {
				t.Fatalf("worker %s: accuracy %v outside (0, 1)", w, a)
			}
		}
	})
}
