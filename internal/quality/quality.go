package quality

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/htacs/ata/internal/ops"
)

// Method selects the consensus rule applied to resolved tasks.
type Method string

const (
	MethodMajority Method = "majority"
	MethodWeighted Method = "weighted"
	MethodEM       Method = "em"
)

// ParseMethod maps a flag string onto a Method.
func ParseMethod(s string) (Method, error) {
	switch Method(strings.ToLower(s)) {
	case MethodMajority:
		return MethodMajority, nil
	case MethodWeighted:
		return MethodWeighted, nil
	case MethodEM:
		return MethodEM, nil
	}
	return "", fmt.Errorf("quality: unknown aggregation method %q (majority|weighted|em)", s)
}

// Config parameterizes a Tracker.
type Config struct {
	// K is the redundancy: answers collected before a task resolves
	// (default 1 — no redundancy).
	K int
	// Options is the answer alphabet size L (default 4).
	Options int
	// Method is the consensus rule (default MethodWeighted).
	Method Method
	// GoldRate auto-marks this fraction of observed tasks as gold probes
	// with a synthesized deterministic answer (0 disables; explicit
	// AddGold still works). The marking is a pure hash of (GoldSalt,
	// task ID), so every replica, node and restart agrees on which tasks
	// are gold.
	GoldRate float64
	// GoldSalt seeds the auto-gold hash (default 1).
	GoldSalt uint64
	// QuarantineFloor quarantines a worker whose gold accuracy estimate
	// drops below it after MinGold graded answers (0 disables).
	QuarantineFloor float64
	// MinGold is the graded answers required before the floor can fire
	// (default 5).
	MinGold int
	// PriorCorrect/PriorTotal form the Laplace prior on the accuracy
	// estimate: acc = (correct + PriorCorrect) / (seen + PriorTotal).
	// Defaults 1 and 2, so an unseen worker starts at 0.5.
	PriorCorrect float64
	PriorTotal   float64
	// TrustDecay is the time constant of exponential reputation decay
	// over a worker's idle time: trust relaxes from the accuracy estimate
	// toward the prior as trust = prior + (acc − prior)·e^(−idle/τ), so a
	// long-absent worker's reputation — good or bad — carries less weight
	// when they return. 0 disables decay (the default: trust never goes
	// stale). Quarantine is unaffected: a quarantined worker stays at 0.
	TrustDecay time.Duration
	// Now is the clock idle time is measured against (default time.Now).
	// Injectable for tests; only read when TrustDecay > 0.
	Now func() time.Time
	// EM tunes the Dawid–Skene estimator when Method is MethodEM.
	EM EMConfig
	// Metrics receives the quality instruments; nil registers on
	// obs.Default().
	Metrics *Metrics
	// Journal receives quarantine transition events. Defaults to
	// ops.Default().
	Journal *ops.Journal
}

func (c *Config) defaults() error {
	if c.K == 0 {
		c.K = 1
	}
	if c.K < 1 {
		return fmt.Errorf("quality: K = %d, must be >= 1", c.K)
	}
	if c.Options == 0 {
		c.Options = 4
	}
	if c.Options < 2 {
		return fmt.Errorf("quality: Options = %d, must be >= 2", c.Options)
	}
	if c.Method == "" {
		c.Method = MethodWeighted
	}
	if _, err := ParseMethod(string(c.Method)); err != nil {
		return err
	}
	if c.GoldRate < 0 || c.GoldRate > 1 || math.IsNaN(c.GoldRate) {
		return fmt.Errorf("quality: GoldRate = %v, must be in [0, 1]", c.GoldRate)
	}
	if c.GoldSalt == 0 {
		c.GoldSalt = 1
	}
	if c.QuarantineFloor < 0 || c.QuarantineFloor > 1 || math.IsNaN(c.QuarantineFloor) {
		return fmt.Errorf("quality: QuarantineFloor = %v, must be in [0, 1]", c.QuarantineFloor)
	}
	if c.MinGold == 0 {
		c.MinGold = 5
	}
	if c.PriorCorrect == 0 {
		c.PriorCorrect = 1
	}
	if c.PriorTotal == 0 {
		c.PriorTotal = 2
	}
	if c.TrustDecay < 0 {
		return fmt.Errorf("quality: TrustDecay = %v, must be >= 0", c.TrustDecay)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(nil)
	}
	if c.Journal == nil {
		c.Journal = ops.Default()
	}
	return nil
}

// Submission errors. The platform maps them onto HTTP statuses.
var (
	// ErrQuarantined rejects answers from a quarantined worker.
	ErrQuarantined = errors.New("quality: worker is quarantined")
	// ErrDuplicateVote rejects a second answer by the same worker to the
	// same logical task (retried requests must dedup upstream via the
	// idempotency key; this is the semantic backstop).
	ErrDuplicateVote = errors.New("quality: duplicate answer for this task")
	// ErrTaskResolved rejects answers to a task that already collected
	// its k votes.
	ErrTaskResolved = errors.New("quality: task already resolved")
)

// taskState is one logical task's collected answers.
type taskState struct {
	gold       bool
	goldAnswer int
	resolved   bool
	votes      []Vote
	voted      map[string]struct{} // workers who answered (gold or not)
}

// workerStats is one worker's online reputation state.
type workerStats struct {
	answers     int64 // accepted non-gold answers
	goldSeen    int64
	goldCorrect int64
	quarantined bool
	lastSeen    int64 // UnixNano of the last accepted answer; 0 = never
}

// Tracker is the online quality state machine: it collects redundant
// answers, grades gold probes, maintains per-worker reputation, and
// quarantines persistent spammers. All methods are safe for concurrent
// use.
type Tracker struct {
	mu  sync.Mutex
	cfg Config

	tasks   map[string]*taskState
	workers map[string]*workerStats

	answersSubmitted int64 // accepted non-gold answers
	tasksResolved    int64
	pendingPartial   int64 // votes held on unresolved non-gold tasks
	goldGraded       int64
	quarantinedNow   int64
}

// New validates the configuration and builds an empty tracker.
func New(cfg Config) (*Tracker, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	return &Tracker{
		cfg:     cfg,
		tasks:   make(map[string]*taskState),
		workers: make(map[string]*workerStats),
	}, nil
}

// K returns the configured redundancy.
func (tr *Tracker) K() int { return tr.cfg.K }

// Options returns the configured answer alphabet size.
func (tr *Tracker) Options() int { return tr.cfg.Options }

// Method returns the configured consensus rule.
func (tr *Tracker) Method() Method { return tr.cfg.Method }

// LogicalID strips the replica suffix the platform appends when
// redundancy replicates an uploaded task into k assignment copies
// ("t42~r0" → "t42"). IDs without a suffix pass through unchanged.
func LogicalID(taskID string) string {
	if i := strings.IndexByte(taskID, '~'); i >= 0 {
		return taskID[:i]
	}
	return taskID
}

// ReplicaID names the j-th assignment copy of a logical task.
func ReplicaID(taskID string, j int) string {
	return fmt.Sprintf("%s~r%d", taskID, j)
}

// fnv1a64 is the same FNV-1a the shard ring uses, inlined so the package
// stays dependency-free.
func fnv1a64(seed uint64, s string) uint64 {
	h := uint64(14695981039346656037) ^ seed*uint64(1099511628211)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// fmix64 finalizer: short keys otherwise band (see shard.HashKey).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ObserveTask notes an uploaded logical task and applies the auto-gold
// rule: a GoldRate fraction of task IDs (by deterministic hash) become
// gold probes with a synthesized answer. Idempotent; explicit AddGold
// marks survive.
func (tr *Tracker) ObserveTask(taskID string) {
	if tr.cfg.GoldRate <= 0 {
		return
	}
	id := LogicalID(taskID)
	h := fnv1a64(tr.cfg.GoldSalt, id)
	if float64(h>>11)/float64(1<<53) >= tr.cfg.GoldRate {
		return
	}
	ans := int(fnv1a64(tr.cfg.GoldSalt+0x9e3779b9, id) % uint64(tr.cfg.Options))
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.addGoldLocked(id, ans)
}

// AddGold marks a logical task as a gold probe with the known answer.
func (tr *Tracker) AddGold(taskID string, answer int) error {
	if answer < 0 || answer >= tr.cfg.Options {
		return fmt.Errorf("quality: gold answer %d outside [0, %d)", answer, tr.cfg.Options)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.addGoldLocked(LogicalID(taskID), answer)
	return nil
}

func (tr *Tracker) addGoldLocked(id string, answer int) {
	ts := tr.tasks[id]
	if ts == nil {
		ts = &taskState{voted: make(map[string]struct{})}
		tr.tasks[id] = ts
	}
	if !ts.gold {
		ts.gold = true
		ts.goldAnswer = answer
	}
}

// GoldAnswer returns the known answer of a gold task. ok is false for
// non-gold (or unknown) tasks.
func (tr *Tracker) GoldAnswer(taskID string) (answer int, ok bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ts := tr.tasks[LogicalID(taskID)]
	if ts == nil || !ts.gold {
		return 0, false
	}
	return ts.goldAnswer, true
}

// IsGold reports whether the task is a gold probe.
func (tr *Tracker) IsGold(taskID string) bool {
	_, ok := tr.GoldAnswer(taskID)
	return ok
}

// SubmitResult reports the fate of one answer.
type SubmitResult struct {
	// TaskID is the logical task the answer counted toward.
	TaskID string `json:"task_id"`
	// Gold is true when the task was a gold probe; Correct then reports
	// the grade. Gold answers never count toward consensus.
	Gold    bool `json:"gold"`
	Correct bool `json:"correct"`
	// Resolved is true when this answer was the task's k-th: consensus
	// is now available from Answers.
	Resolved bool `json:"resolved"`
	// Accuracy and Trust are the worker's post-update reputation;
	// TrustUpdated is true when they changed (gold grades only), i.e.
	// when the caller should push Trust into the assignment engine.
	Accuracy     float64 `json:"accuracy"`
	Trust        float64 `json:"trust"`
	TrustUpdated bool    `json:"trust_updated"`
	// Quarantined reports the worker's post-update quarantine state.
	Quarantined bool `json:"quarantined"`
}

// Submit records one answer. Gold tasks are graded against ground truth
// and update the worker's reputation (and possibly quarantine); regular
// tasks accumulate toward the k-vote consensus. Rejections: quarantined
// workers (ErrQuarantined), second answers to the same logical task
// (ErrDuplicateVote), answers to resolved tasks (ErrTaskResolved), and
// out-of-range options.
func (tr *Tracker) Submit(workerID, taskID string, option int) (SubmitResult, error) {
	if workerID == "" || taskID == "" {
		return SubmitResult{}, errors.New("quality: empty worker or task ID")
	}
	if option < 0 || option >= tr.cfg.Options {
		return SubmitResult{}, fmt.Errorf("quality: option %d outside [0, %d)", option, tr.cfg.Options)
	}
	id := LogicalID(taskID)
	tr.mu.Lock()
	defer tr.mu.Unlock()

	ws := tr.workers[workerID]
	if ws == nil {
		ws = &workerStats{}
		tr.workers[workerID] = ws
	}
	if ws.quarantined {
		return SubmitResult{TaskID: id, Quarantined: true}, ErrQuarantined
	}
	ts := tr.tasks[id]
	if ts == nil {
		ts = &taskState{voted: make(map[string]struct{})}
		tr.tasks[id] = ts
	}
	if _, dup := ts.voted[workerID]; dup {
		return SubmitResult{TaskID: id}, ErrDuplicateVote
	}
	if ts.resolved {
		return SubmitResult{TaskID: id}, ErrTaskResolved
	}

	res := SubmitResult{TaskID: id}
	ts.voted[workerID] = struct{}{}
	ts.votes = append(ts.votes, Vote{Worker: workerID, Option: option})
	if tr.cfg.TrustDecay > 0 {
		ws.lastSeen = tr.cfg.Now().UnixNano()
	}
	if ts.gold {
		ws.goldSeen++
		res.Gold = true
		res.Correct = option == ts.goldAnswer
		if res.Correct {
			ws.goldCorrect++
		}
		tr.goldGraded++
		tr.cfg.Metrics.Gold.Inc()
		res.TrustUpdated = true
		if !ws.quarantined && tr.cfg.QuarantineFloor > 0 &&
			ws.goldSeen >= int64(tr.cfg.MinGold) &&
			tr.accuracyLocked(ws) < tr.cfg.QuarantineFloor {
			ws.quarantined = true
			tr.quarantinedNow++
			tr.cfg.Metrics.Quarantines.Inc()
			tr.cfg.Metrics.Quarantined.Set(float64(tr.quarantinedNow))
			tr.cfg.Journal.Emit(ops.EventQuarantine, "",
				"worker", workerID,
				"accuracy", strconv.FormatFloat(tr.accuracyLocked(ws), 'g', 4, 64),
				"gold_seen", strconv.FormatInt(ws.goldSeen, 10))
		}
	} else {
		ws.answers++
		tr.answersSubmitted++
		tr.pendingPartial++
		tr.cfg.Metrics.Answers.Inc()
		if len(ts.votes) >= tr.cfg.K {
			ts.resolved = true
			tr.tasksResolved++
			tr.pendingPartial -= int64(len(ts.votes))
			tr.cfg.Metrics.Consensus.Inc()
			res.Resolved = true
		}
		tr.cfg.Metrics.Pending.Set(float64(tr.pendingPartial))
	}
	res.Accuracy = tr.accuracyLocked(ws)
	res.Quarantined = ws.quarantined
	res.Trust = tr.trustLocked(ws)
	return res, nil
}

// accuracyLocked is the Laplace-smoothed gold accuracy estimate.
func (tr *Tracker) accuracyLocked(ws *workerStats) float64 {
	return (float64(ws.goldCorrect) + tr.cfg.PriorCorrect) /
		(float64(ws.goldSeen) + tr.cfg.PriorTotal)
}

// trustLocked maps reputation onto the multiplier fed into the
// assignment objective: the accuracy estimate (0 for quarantined workers,
// which the streaming assigner treats as "assign nothing"), relaxed
// toward the prior by Config.TrustDecay over the worker's idle time.
func (tr *Tracker) trustLocked(ws *workerStats) float64 {
	if ws.quarantined {
		return 0
	}
	acc := tr.accuracyLocked(ws)
	if tr.cfg.TrustDecay <= 0 || ws.lastSeen == 0 {
		return acc
	}
	idle := tr.cfg.Now().UnixNano() - ws.lastSeen
	if idle <= 0 {
		return acc
	}
	prior := tr.cfg.PriorCorrect / tr.cfg.PriorTotal
	return prior + (acc-prior)*math.Exp(-float64(idle)/float64(tr.cfg.TrustDecay))
}

// Reputation is one worker's public trust state.
type Reputation struct {
	Worker      string  `json:"worker"`
	Answers     int64   `json:"answers"`
	GoldSeen    int64   `json:"gold_seen"`
	GoldCorrect int64   `json:"gold_correct"`
	Accuracy    float64 `json:"accuracy"`
	Trust       float64 `json:"trust"`
	Quarantined bool    `json:"quarantined"`
}

// Reputation returns the worker's trust state; ok is false when the
// worker has never submitted an answer.
func (tr *Tracker) Reputation(workerID string) (Reputation, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ws := tr.workers[workerID]
	if ws == nil {
		return Reputation{}, false
	}
	return tr.reputationLocked(workerID, ws), true
}

func (tr *Tracker) reputationLocked(id string, ws *workerStats) Reputation {
	acc := tr.accuracyLocked(ws)
	return Reputation{
		Worker: id, Answers: ws.answers,
		GoldSeen: ws.goldSeen, GoldCorrect: ws.goldCorrect,
		Accuracy: acc, Trust: tr.trustLocked(ws),
		Quarantined: ws.quarantined,
	}
}

// Reputations returns every known worker's trust state in worker-ID
// order — the restore path replays these into the assignment engine.
func (tr *Tracker) Reputations() []Reputation {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ids := make([]string, 0, len(tr.workers))
	for id := range tr.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Reputation, len(ids))
	for i, id := range ids {
		out[i] = tr.reputationLocked(id, tr.workers[id])
	}
	return out
}

// ResolvedAnswer is one task's consensus under the configured method.
type ResolvedAnswer struct {
	TaskID string `json:"task_id"`
	Option int    `json:"option"`
	// Confidence is method-dependent: vote fraction (majority), weight
	// fraction (weighted), or posterior probability (em).
	Confidence float64 `json:"confidence"`
	Votes      int     `json:"votes"`
}

// Answers aggregates every resolved task under the configured method and
// returns the consensus list in task-ID order. Weighted and EM use the
// *current* accuracy estimates, so consensus sharpens as gold evidence
// accumulates — calling again after more gold may flip low-margin tasks.
func (tr *Tracker) Answers() []ResolvedAnswer {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ids := make([]string, 0, len(tr.tasks))
	for id, ts := range tr.tasks {
		if ts.resolved && !ts.gold {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]ResolvedAnswer, 0, len(ids))
	switch tr.cfg.Method {
	case MethodEM:
		batch := make([]TaskVotes, len(ids))
		for i, id := range ids {
			batch[i] = TaskVotes{TaskID: id, Votes: tr.tasks[id].votes}
		}
		res, err := Aggregate(batch, tr.cfg.Options, tr.cfg.EM)
		if err != nil {
			return nil
		}
		for _, id := range ids {
			p := res.Posteriors[id]
			l := ArgMax(p)
			out = append(out, ResolvedAnswer{
				TaskID: id, Option: l, Confidence: p[l],
				Votes: len(tr.tasks[id].votes),
			})
		}
	case MethodWeighted:
		acc := make(map[string]float64, len(tr.workers))
		for id, ws := range tr.workers {
			acc[id] = tr.accuracyLocked(ws)
		}
		defaultAcc := tr.cfg.PriorCorrect / tr.cfg.PriorTotal
		for _, id := range ids {
			votes := tr.tasks[id].votes
			l, w := Weighted(votes, tr.cfg.Options, acc, defaultAcc)
			conf := 0.0
			var total float64
			for _, v := range sortVotes(votes) {
				a, ok := acc[v.Worker]
				if !ok {
					a = defaultAcc
				}
				total += math.Abs(logOdds(a, tr.cfg.Options))
			}
			if total > 0 && w > 0 {
				conf = w / total
			}
			out = append(out, ResolvedAnswer{
				TaskID: id, Option: l, Confidence: conf, Votes: len(votes),
			})
		}
	default: // MethodMajority
		for _, id := range ids {
			votes := tr.tasks[id].votes
			l, n := Majority(votes, tr.cfg.Options)
			out = append(out, ResolvedAnswer{
				TaskID: id, Option: l,
				Confidence: float64(n) / float64(len(votes)),
				Votes:      len(votes),
			})
		}
	}
	return out
}

// Stats is the tracker's accounting snapshot.
type Stats struct {
	K                int   `json:"k"`
	AnswersSubmitted int64 `json:"answers_submitted"`
	TasksResolved    int64 `json:"tasks_resolved"`
	PendingPartial   int64 `json:"pending_partial"`
	GoldGraded       int64 `json:"gold_graded"`
	Quarantined      int64 `json:"quarantined"`
	Workers          int   `json:"workers"`
}

// Conserved reports the answer-flow conservation law: every accepted
// non-gold answer is either pending on a partial task or was consumed by
// a k-vote resolution.
func (s Stats) Conserved() bool {
	return s.AnswersSubmitted == int64(s.K)*s.TasksResolved+s.PendingPartial
}

// Stats returns the current accounting. Exact at any moment — the
// tracker mutates under one lock.
func (tr *Tracker) Stats() Stats {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return Stats{
		K:                tr.cfg.K,
		AnswersSubmitted: tr.answersSubmitted,
		TasksResolved:    tr.tasksResolved,
		PendingPartial:   tr.pendingPartial,
		GoldGraded:       tr.goldGraded,
		Quarantined:      tr.quarantinedNow,
		Workers:          len(tr.workers),
	}
}
