package quality

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randBatch builds a random vote matrix: nt tasks, nw workers, each
// worker answering each task with probability p.
func randBatch(rng *rand.Rand, nt, nw, options int, p float64) []TaskVotes {
	batch := make([]TaskVotes, nt)
	for i := range batch {
		batch[i].TaskID = fmt.Sprintf("t%03d", i)
		for w := 0; w < nw; w++ {
			if rng.Float64() < p {
				batch[i].Votes = append(batch[i].Votes, Vote{
					Worker: fmt.Sprintf("w%03d", w), Option: rng.Intn(options),
				})
			}
		}
	}
	return batch
}

// shuffleBatch returns a deep permutation: task order and the vote order
// within every task are both shuffled.
func shuffleBatch(rng *rand.Rand, batch []TaskVotes) []TaskVotes {
	out := make([]TaskVotes, len(batch))
	for i, j := range rng.Perm(len(batch)) {
		votes := append([]Vote(nil), batch[j].Votes...)
		rng.Shuffle(len(votes), func(a, b int) { votes[a], votes[b] = votes[b], votes[a] })
		out[i] = TaskVotes{TaskID: batch[j].TaskID, Votes: votes}
	}
	return out
}

// TestAggregatePermutationInvariant pins the determinism contract:
// shuffling tasks and votes yields bit-identical posteriors and
// accuracies, not merely close ones.
func TestAggregatePermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		options := 2 + rng.Intn(4)
		batch := randBatch(rng, 1+rng.Intn(20), 1+rng.Intn(12), options, 0.6)
		ref, err := Aggregate(batch, options, EMConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for perm := 0; perm < 4; perm++ {
			got, err := Aggregate(shuffleBatch(rng, batch), options, EMConfig{})
			if err != nil {
				t.Fatal(err)
			}
			for id, p := range ref.Posteriors {
				q, ok := got.Posteriors[id]
				if !ok {
					t.Fatalf("trial %d: permuted run lost task %s", trial, id)
				}
				for l := range p {
					if p[l] != q[l] { // bit-identical, not approximately equal
						t.Fatalf("trial %d task %s option %d: %v != %v after shuffle",
							trial, id, l, p[l], q[l])
					}
				}
			}
			for w, a := range ref.Accuracy {
				if got.Accuracy[w] != a {
					t.Fatalf("trial %d worker %s: accuracy %v != %v after shuffle",
						trial, w, got.Accuracy[w], a)
				}
			}
		}
	}
}

// TestAggregateEqualAccuracyDegradesToMajority: with zero M-steps every
// worker keeps the same InitAcc, so the posterior argmax must be exactly
// the majority winner on every task (count ties may legitimately differ —
// both rules break toward the lowest option index, and with equal
// per-vote evidence the posterior ranking equals the count ranking).
func TestAggregateEqualAccuracyDegradesToMajority(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		options := 2 + rng.Intn(4)
		batch := randBatch(rng, 1+rng.Intn(15), 1+rng.Intn(10), options, 0.7)
		res, err := Aggregate(batch, options, EMConfig{Iters: -1, InitAcc: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		for _, tv := range batch {
			if len(tv.Votes) == 0 {
				continue
			}
			want, _ := Majority(tv.Votes, options)
			if got := ArgMax(res.Posteriors[tv.TaskID]); got != want {
				t.Fatalf("trial %d task %s: EM argmax %d, majority %d (votes %v)",
					trial, tv.TaskID, got, want, tv.Votes)
			}
		}
	}
}

// TestWeightedEqualAccuracyDegradesToMajority: equal accuracy estimates
// give every vote the same log-odds weight, so the weighted winner is the
// majority winner.
func TestWeightedEqualAccuracyDegradesToMajority(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		options := 2 + rng.Intn(4)
		nv := 1 + rng.Intn(12)
		votes := make([]Vote, nv)
		acc := map[string]float64{}
		for i := range votes {
			w := fmt.Sprintf("w%02d", i)
			votes[i] = Vote{Worker: w, Option: rng.Intn(options)}
			acc[w] = 0.8
		}
		want, _ := Majority(votes, options)
		got, _ := Weighted(votes, options, acc, 0.8)
		if got != want {
			t.Fatalf("trial %d: weighted %d, majority %d (votes %v)", trial, got, want, votes)
		}
	}
}

// TestWeightedPrefersAccurateWorker: two accurate workers must outvote
// three at chance-level accuracy even though they are the count minority.
func TestWeightedPrefersAccurateWorker(t *testing.T) {
	votes := []Vote{
		{Worker: "good1", Option: 0},
		{Worker: "good2", Option: 0},
		{Worker: "bad1", Option: 1},
		{Worker: "bad2", Option: 1},
		{Worker: "bad3", Option: 1},
	}
	acc := map[string]float64{
		"good1": 0.95, "good2": 0.95,
		"bad1": 0.52, "bad2": 0.52, "bad3": 0.52,
	}
	if got, _ := Weighted(votes, 2, acc, 0.5); got != 0 {
		t.Fatalf("weighted winner %d, want the accurate minority's option 0", got)
	}
	if got, _ := Majority(votes, 2); got != 1 {
		t.Fatalf("majority winner %d, want 1 (sanity: the count majority)", got)
	}
}

// TestAggregateRecoversTruthFromSpammyCrowd: EM with gold-free input
// should still beat majority on a crowd where 40% answer uniformly at
// random — the core claim the pr8 benchmark measures end to end.
func TestAggregateRecoversTruthFromSpammyCrowd(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const options, nt, nw = 4, 120, 30
	truth := make([]int, nt)
	for i := range truth {
		truth[i] = rng.Intn(options)
	}
	batch := make([]TaskVotes, nt)
	for i := range batch {
		batch[i].TaskID = fmt.Sprintf("t%03d", i)
		for w := 0; w < nw; w++ {
			var opt int
			if w < nw*4/10 { // spammer: uniform noise
				opt = rng.Intn(options)
			} else if rng.Float64() < 0.85 { // honest, 85% accurate
				opt = truth[i]
			} else {
				opt = rng.Intn(options)
			}
			batch[i].Votes = append(batch[i].Votes, Vote{Worker: fmt.Sprintf("w%03d", w), Option: opt})
		}
	}
	res, err := Aggregate(batch, options, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var emOK, majOK int
	for i, tv := range batch {
		if ArgMax(res.Posteriors[tv.TaskID]) == truth[i] {
			emOK++
		}
		if m, _ := Majority(tv.Votes, options); m == truth[i] {
			majOK++
		}
	}
	if emOK < majOK {
		t.Fatalf("EM accuracy %d/%d below majority %d/%d", emOK, nt, majOK, nt)
	}
	if emOK < nt*9/10 {
		t.Fatalf("EM accuracy %d/%d, want >= 90%% on this easy instance", emOK, nt)
	}
}

// TestAggregatePosteriorsAreDistributions: the structural contract the
// fuzzer also checks — finite entries, each row summing to 1.
func TestAggregatePosteriorsAreDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	batch := randBatch(rng, 30, 15, 3, 0.5)
	res, err := Aggregate(batch, 3, EMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for id, p := range res.Posteriors {
		var sum float64
		for _, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("task %s: invalid posterior entry %v", id, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("task %s: posterior sums to %v", id, sum)
		}
	}
	for w, a := range res.Accuracy {
		if a <= 0 || a >= 1 || math.IsNaN(a) {
			t.Fatalf("worker %s: accuracy %v outside (0, 1)", w, a)
		}
	}
}

func TestMajorityEdgeCases(t *testing.T) {
	if opt, n := Majority(nil, 4); opt != -1 || n != 0 {
		t.Fatalf("empty votes: (%d, %d)", opt, n)
	}
	if opt, _ := Majority([]Vote{{Worker: "w", Option: 9}}, 4); opt != -1 {
		t.Fatalf("out-of-range-only votes: %d", opt)
	}
	// Tie between 0 and 2 breaks toward the lowest index.
	votes := []Vote{{Worker: "a", Option: 2}, {Worker: "b", Option: 0}}
	if opt, _ := Majority(votes, 3); opt != 0 {
		t.Fatalf("tie broke to %d, want 0", opt)
	}
	if _, err := Aggregate(nil, 1, EMConfig{}); err == nil {
		t.Fatal("options=1 accepted")
	}
}
