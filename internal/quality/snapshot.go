package quality

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Wire format for Tracker snapshots. Deterministic: tasks and workers are
// written in sorted ID order with votes in arrival order, so two snapshots
// of the same state are byte-identical regardless of map iteration.
type trackerSnap struct {
	Version          int          `json:"version"`
	K                int          `json:"k"`
	Options          int          `json:"options"`
	AnswersSubmitted int64        `json:"answers_submitted"`
	TasksResolved    int64        `json:"tasks_resolved"`
	PendingPartial   int64        `json:"pending_partial"`
	GoldGraded       int64        `json:"gold_graded"`
	Tasks            []taskSnap   `json:"tasks"`
	Workers          []workerSnap `json:"workers"`
}

type taskSnap struct {
	ID         string `json:"id"`
	Gold       bool   `json:"gold,omitempty"`
	GoldAnswer int    `json:"gold_answer,omitempty"`
	Resolved   bool   `json:"resolved,omitempty"`
	Votes      []Vote `json:"votes,omitempty"`
}

type workerSnap struct {
	ID          string `json:"id"`
	Answers     int64  `json:"answers"`
	GoldSeen    int64  `json:"gold_seen"`
	GoldCorrect int64  `json:"gold_correct"`
	Quarantined bool   `json:"quarantined,omitempty"`
	// LastSeen (UnixNano of the last accepted answer) feeds the idle
	// trust decay; omitted when decay never recorded it, so pre-decay
	// snapshots serialize identically.
	LastSeen int64 `json:"last_seen,omitempty"`
}

const trackerSnapVersion = 1

// Snapshot writes the tracker's full state — partial answer sets, gold
// marks, per-worker gold tallies, quarantine flags — as deterministic
// JSON. Restoring it round-trips reputation bit-identically.
func (tr *Tracker) Snapshot(w io.Writer) error {
	tr.mu.Lock()
	snap := trackerSnap{
		Version:          trackerSnapVersion,
		K:                tr.cfg.K,
		Options:          tr.cfg.Options,
		AnswersSubmitted: tr.answersSubmitted,
		TasksResolved:    tr.tasksResolved,
		PendingPartial:   tr.pendingPartial,
		GoldGraded:       tr.goldGraded,
	}
	for id, ts := range tr.tasks {
		snap.Tasks = append(snap.Tasks, taskSnap{
			ID: id, Gold: ts.gold, GoldAnswer: ts.goldAnswer,
			Resolved: ts.resolved,
			Votes:    append([]Vote(nil), ts.votes...),
		})
	}
	for id, ws := range tr.workers {
		snap.Workers = append(snap.Workers, workerSnap{
			ID: id, Answers: ws.answers,
			GoldSeen: ws.goldSeen, GoldCorrect: ws.goldCorrect,
			Quarantined: ws.quarantined, LastSeen: ws.lastSeen,
		})
	}
	tr.mu.Unlock()
	sort.Slice(snap.Tasks, func(i, j int) bool { return snap.Tasks[i].ID < snap.Tasks[j].ID })
	sort.Slice(snap.Workers, func(i, j int) bool { return snap.Workers[i].ID < snap.Workers[j].ID })
	enc := json.NewEncoder(w)
	return enc.Encode(&snap)
}

// Restore rebuilds a tracker from a Snapshot stream under a fresh
// configuration. K and Options must match the snapshot (changing either
// mid-flight would break the conservation law and gold grading); every
// other knob — method, floors, gold rate — may differ.
func Restore(r io.Reader, cfg Config) (*Tracker, error) {
	var snap trackerSnap
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("quality: decode snapshot: %w", err)
	}
	if snap.Version != trackerSnapVersion {
		return nil, fmt.Errorf("quality: snapshot version %d, want %d", snap.Version, trackerSnapVersion)
	}
	if cfg.K == 0 {
		cfg.K = snap.K
	}
	if cfg.Options == 0 {
		cfg.Options = snap.Options
	}
	tr, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if tr.cfg.K != snap.K {
		return nil, fmt.Errorf("quality: snapshot has k=%d, config wants k=%d", snap.K, tr.cfg.K)
	}
	if tr.cfg.Options != snap.Options {
		return nil, fmt.Errorf("quality: snapshot has options=%d, config wants %d", snap.Options, tr.cfg.Options)
	}
	tr.answersSubmitted = snap.AnswersSubmitted
	tr.tasksResolved = snap.TasksResolved
	tr.pendingPartial = snap.PendingPartial
	tr.goldGraded = snap.GoldGraded
	for _, t := range snap.Tasks {
		ts := &taskState{
			gold: t.Gold, goldAnswer: t.GoldAnswer, resolved: t.Resolved,
			votes: append([]Vote(nil), t.Votes...),
			voted: make(map[string]struct{}, len(t.Votes)),
		}
		for _, v := range t.Votes {
			ts.voted[v.Worker] = struct{}{}
		}
		tr.tasks[t.ID] = ts
	}
	for _, w := range snap.Workers {
		tr.workers[w.ID] = &workerStats{
			answers: w.Answers, goldSeen: w.GoldSeen,
			goldCorrect: w.GoldCorrect, quarantined: w.Quarantined,
			lastSeen: w.LastSeen,
		}
		if w.Quarantined {
			tr.quarantinedNow++
		}
	}
	tr.cfg.Metrics.Pending.Set(float64(tr.pendingPartial))
	tr.cfg.Metrics.Quarantined.Set(float64(tr.quarantinedNow))
	return tr, nil
}
