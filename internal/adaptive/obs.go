package adaptive

import (
	"math"
	"sync"

	"github.com/htacs/ata/internal/obs"
)

// Metrics are the engine's instruments. Engines sharing a Metrics (the
// default: every engine without Config.Metrics shares the process-wide
// set on obs.Default()) aggregate into the same series; tests and
// multi-engine simulations that need isolation pass NewMetrics over a
// private registry.
type Metrics struct {
	// IterationSeconds times NextIteration end to end — the latency the
	// paper's Section V-A background-assignment claim is about.
	IterationSeconds *obs.Histogram
	// Iterations counts completed NextIteration calls.
	Iterations *obs.Counter
	// PoolSize tracks the tasks still available after the last iteration.
	PoolSize *obs.Gauge
	// AlphaMean/BetaMean are the mean (α, β) over all registered workers
	// after the most recent weight refresh — the adaptive state at a
	// glance.
	AlphaMean *obs.Gauge
	BetaMean  *obs.Gauge
	// AlphaDrift accumulates |Δα| over every weight refresh: how far the
	// learned preferences have moved in total. A live system settles to a
	// near-flat drift rate once estimates converge; a persistent slope
	// means the population (or a bug) keeps shifting the weights.
	AlphaDrift *obs.Counter
	// Completions counts Complete calls that recorded an observation.
	Completions *obs.Counter
}

// NewMetrics registers the engine instruments on r (obs.Default() when
// nil).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		r = obs.Default()
	}
	return &Metrics{
		IterationSeconds: r.Histogram("hta_adaptive_iteration_seconds",
			"NextIteration latency", obs.DurationBuckets()),
		Iterations: r.Counter("hta_adaptive_iterations_total",
			"assignment iterations completed"),
		PoolSize: r.Gauge("hta_adaptive_pool_size",
			"tasks remaining in the assignment pool"),
		AlphaMean: r.Gauge("hta_adaptive_alpha_mean",
			"mean diversity weight alpha over registered workers"),
		BetaMean: r.Gauge("hta_adaptive_beta_mean",
			"mean relevance weight beta over registered workers"),
		AlphaDrift: r.Counter("hta_adaptive_alpha_drift_total",
			"cumulative absolute alpha movement across weight refreshes"),
		Completions: r.Counter("hta_adaptive_completions_total",
			"task completions recorded by the engine"),
	}
}

var (
	defaultMetricsOnce sync.Once
	defaultMetrics     *Metrics
)

// sharedMetrics lazily builds the process-wide instrument set, so merely
// importing the package does not register anything.
func sharedMetrics() *Metrics {
	defaultMetricsOnce.Do(func() { defaultMetrics = NewMetrics(obs.Default()) })
	return defaultMetrics
}

// publishWeightGauges refreshes the alpha/beta mean gauges from the
// current worker population.
func (e *Engine) publishWeightGauges() {
	if len(e.order) == 0 {
		return
	}
	var sumA, sumB float64
	for _, id := range e.order {
		w := e.workers[id].Worker
		sumA += w.Alpha
		sumB += w.Beta
	}
	n := float64(len(e.order))
	e.metrics.AlphaMean.Set(sumA / n)
	e.metrics.BetaMean.Set(sumB / n)
}

// recordDrift accumulates the absolute alpha movement of one refresh.
func (e *Engine) recordDrift(oldAlpha, newAlpha float64) {
	e.metrics.AlphaDrift.Add(math.Abs(newAlpha - oldAlpha))
}
