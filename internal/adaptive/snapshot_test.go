package adaptive

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// buildBusyEngine creates an engine mid-experiment: two workers, one
// iteration done, some completions recorded.
func buildBusyEngine(t *testing.T) *Engine {
	t.Helper()
	r := rand.New(rand.NewSource(15))
	e := newEngine(t, Config{Xmax: 4, ExtraRandomTasks: 1, Rand: r})
	if err := e.AddTasks(genTasks(r, 40)...); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"w1", "w2"} {
		if _, err := e.AddWorker(genWorker(id, 1, 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	sets, err := e.NextIteration()
	if err != nil {
		t.Fatal(err)
	}
	for wid, set := range sets {
		for i, task := range set {
			if i == 2 {
				break
			}
			if err := e.Complete(wid, task.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.SetAvailable("w2", false); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSnapshotRoundTrip(t *testing.T) {
	e := buildBusyEngine(t)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(bytes.NewReader(buf.Bytes()), Config{Xmax: 4, ExtraRandomTasks: 1, Rand: rand.New(rand.NewSource(99))})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Iteration() != e.Iteration() {
		t.Fatalf("iteration %d != %d", restored.Iteration(), e.Iteration())
	}
	if restored.PoolSize() != e.PoolSize() {
		t.Fatalf("pool %d != %d", restored.PoolSize(), e.PoolSize())
	}
	for _, id := range []string{"w1", "w2"} {
		orig, err := e.Worker(id)
		if err != nil {
			t.Fatal(err)
		}
		back, err := restored.Worker(id)
		if err != nil {
			t.Fatal(err)
		}
		if back.Alpha() != orig.Alpha() || back.Beta() != orig.Beta() {
			t.Fatalf("%s: weights (%g,%g) != (%g,%g)", id, back.Alpha(), back.Beta(), orig.Alpha(), orig.Beta())
		}
		if back.TotalCompleted != orig.TotalCompleted {
			t.Fatalf("%s: completed %d != %d", id, back.TotalCompleted, orig.TotalCompleted)
		}
		if back.Available != orig.Available {
			t.Fatalf("%s: availability mismatch", id)
		}
		if len(back.Assigned) != len(orig.Assigned) || len(back.Completed) != len(orig.Completed) {
			t.Fatalf("%s: assignment state mismatch", id)
		}
		if back.Observations() != orig.Observations() {
			t.Fatalf("%s: observations %d != %d", id, back.Observations(), orig.Observations())
		}
	}
}

// TestSnapshotRestoredEngineStillWorks verifies a restored engine can keep
// operating: completing a previously-assigned task and running the next
// iteration.
func TestSnapshotRestoredEngineStillWorks(t *testing.T) {
	e := buildBusyEngine(t)
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf, Config{Xmax: 4, ExtraRandomTasks: 1, Rand: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := restored.Worker("w1")
	if err != nil {
		t.Fatal(err)
	}
	// Complete a not-yet-done assigned task.
	var pending string
	for _, task := range ws.Assigned {
		done := false
		for _, c := range ws.Completed {
			if c.ID == task.ID {
				done = true
				break
			}
		}
		if !done {
			pending = task.ID
			break
		}
	}
	if pending == "" {
		t.Fatal("no pending task after restore")
	}
	if err := restored.Complete("w1", pending); err != nil {
		t.Fatalf("Complete on restored engine: %v", err)
	}
	sets, err := restored.NextIteration()
	if err != nil {
		t.Fatalf("NextIteration on restored engine: %v", err)
	}
	if len(sets["w1"]) == 0 {
		t.Fatal("restored engine assigned nothing")
	}
}

func TestRestoreRejectsCorruptSnapshots(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"bad version":     `{"version": 99}`,
		"bad universe":    `{"version":1,"pool":[{"id":"t","universe":0,"keywords":[]}]}`,
		"bad keyword":     `{"version":1,"pool":[{"id":"t","universe":4,"keywords":[9]}]}`,
		"unknown done id": `{"version":1,"workers":[{"id":"w","universe":4,"keywords":[1],"completed":["ghost"]}]}`,
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := Restore(strings.NewReader(payload), Config{Xmax: 2})
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
		})
	}
}
