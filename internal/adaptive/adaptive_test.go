package adaptive

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
)

const universe = 32

func genTasks(r *rand.Rand, n int) []*core.Task {
	tasks := make([]*core.Task, n)
	for i := range tasks {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(5) == 0 {
				kw.Add(k)
			}
		}
		if kw.Count() == 0 {
			kw.Add(r.Intn(universe))
		}
		tasks[i] = &core.Task{ID: fmt.Sprintf("t%d", i), Keywords: kw}
	}
	return tasks
}

func genWorker(id string, kw ...int) *core.Worker {
	return &core.Worker{ID: id, Keywords: bitset.FromIndices(universe, kw...)}
}

func newEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	cases := []struct {
		cfg Config
		sub string
	}{
		{Config{Xmax: 0}, "Xmax"},
		{Config{Xmax: 3, ExtraRandomTasks: -1}, "ExtraRandomTasks"},
		{Config{Xmax: 3, InitialAlpha: 1.5}, "InitialAlpha"},
	}
	for _, c := range cases {
		if _, err := NewEngine(c.cfg); err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("cfg %+v: err = %v, want substring %q", c.cfg, err, c.sub)
		}
	}
}

func TestAddTasksAndWorkersValidation(t *testing.T) {
	e := newEngine(t, Config{Xmax: 2})
	if err := e.AddTasks(&core.Task{ID: "", Keywords: bitset.New(4)}); err == nil {
		t.Error("empty task ID accepted")
	}
	if err := e.AddTasks(&core.Task{ID: "a", Keywords: bitset.New(4)}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTasks(&core.Task{ID: "a", Keywords: bitset.New(4)}); err == nil {
		t.Error("duplicate task ID accepted")
	}
	if _, err := e.AddWorker(&core.Worker{ID: ""}); err == nil {
		t.Error("worker without keywords/ID accepted")
	}
	if _, err := e.AddWorker(genWorker("w1", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddWorker(genWorker("w1", 1)); err == nil {
		t.Error("duplicate worker accepted")
	}
	if _, err := e.Worker("nope"); err == nil {
		t.Error("unknown worker lookup succeeded")
	}
}

func TestColdStartAssignsRandomXmax(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	e := newEngine(t, Config{Xmax: 4, Rand: r})
	if err := e.AddTasks(genTasks(r, 20)...); err != nil {
		t.Fatal(err)
	}
	ws, err := e.AddWorker(genWorker("w1", 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	sets, err := e.NextIteration()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets["w1"]) != 4 {
		t.Fatalf("cold start assigned %d tasks, want Xmax=4", len(sets["w1"]))
	}
	if e.PoolSize() != 16 {
		t.Fatalf("pool = %d, want 16 (assigned tasks dropped)", e.PoolSize())
	}
	if ws.Alpha() != 0.5 || ws.Beta() != 0.5 {
		t.Fatalf("prior weights = (%g,%g), want (0.5,0.5)", ws.Alpha(), ws.Beta())
	}
}

func TestExtraRandomTasks(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	e := newEngine(t, Config{Xmax: 3, ExtraRandomTasks: 2, Rand: r})
	if err := e.AddTasks(genTasks(r, 30)...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddWorker(genWorker("w1", 1)); err != nil {
		t.Fatal(err)
	}
	sets, err := e.NextIteration()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets["w1"]) != 5 {
		t.Fatalf("display set = %d tasks, want Xmax+extra = 5", len(sets["w1"]))
	}
	if e.PoolSize() != 25 {
		t.Fatalf("pool = %d, want 25", e.PoolSize())
	}
}

func TestTasksNeverReassigned(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	e := newEngine(t, Config{Xmax: 3, Rand: r})
	if err := e.AddTasks(genTasks(r, 30)...); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"w1", "w2"} {
		if _, err := e.AddWorker(genWorker(id, 1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]int{}
	for iter := 0; iter < 4; iter++ {
		sets, err := e.NextIteration()
		if err != nil {
			t.Fatal(err)
		}
		for wid, set := range sets {
			for _, task := range set {
				seen[task.ID]++
				if seen[task.ID] > 1 {
					t.Fatalf("iteration %d: task %s reassigned (worker %s)", iter, task.ID, wid)
				}
			}
		}
	}
}

func TestCompleteValidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	e := newEngine(t, Config{Xmax: 3, Rand: r})
	if err := e.AddTasks(genTasks(r, 10)...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddWorker(genWorker("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := e.Complete("ghost", "t0"); err == nil {
		t.Error("unknown worker accepted")
	}
	sets, err := e.NextIteration()
	if err != nil {
		t.Fatal(err)
	}
	assigned := sets["w1"][0].ID
	if err := e.Complete("w1", "not-assigned"); err == nil {
		t.Error("unassigned task accepted")
	}
	if err := e.Complete("w1", assigned); err != nil {
		t.Fatal(err)
	}
	if err := e.Complete("w1", assigned); err == nil {
		t.Error("double completion accepted")
	}
	ws, _ := e.Worker("w1")
	if ws.TotalCompleted != 1 {
		t.Fatalf("TotalCompleted = %d", ws.TotalCompleted)
	}
}

// TestWeightsConvergeToDiversitySeeker: a worker who always picks the most
// diverse remaining task should see its α estimate rise above β.
func TestWeightsConvergeToDiversitySeeker(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	e := newEngine(t, Config{Xmax: 6, Rand: r})
	if err := e.AddTasks(genTasks(r, 120)...); err != nil {
		t.Fatal(err)
	}
	ws, err := e.AddWorker(genWorker("w1", 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	dist := metric.Jaccard{}
	for iter := 0; iter < 6; iter++ {
		sets, err := e.NextIteration()
		if err != nil {
			t.Fatal(err)
		}
		set := sets["w1"]
		// Complete all tasks, always choosing the max-marginal-diversity one.
		for len(ws.Completed) < len(set) {
			var best *core.Task
			bestGain := -1.0
			for _, u := range set {
				if containsTask(ws.Completed, u.ID) {
					continue
				}
				var g float64
				for _, c := range ws.Completed {
					g += dist.Distance(u.Keywords, c.Keywords)
				}
				if g > bestGain {
					bestGain, best = g, u
				}
			}
			if err := e.Complete("w1", best.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ws.Alpha() <= ws.Beta() {
		t.Fatalf("diversity-seeker estimates α=%g β=%g, want α > β", ws.Alpha(), ws.Beta())
	}
	if ws.Observations() == 0 {
		t.Fatal("no observations collected")
	}
}

// TestWeightsConvergeToRelevanceSeeker: a worker who always picks the most
// relevant remaining task should see β rise above α.
func TestWeightsConvergeToRelevanceSeeker(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	e := newEngine(t, Config{Xmax: 6, Rand: r})
	if err := e.AddTasks(genTasks(r, 120)...); err != nil {
		t.Fatal(err)
	}
	ws, err := e.AddWorker(genWorker("w1", 1, 2, 3, 4, 5))
	if err != nil {
		t.Fatal(err)
	}
	dist := metric.Jaccard{}
	for iter := 0; iter < 6; iter++ {
		sets, err := e.NextIteration()
		if err != nil {
			t.Fatal(err)
		}
		set := sets["w1"]
		for len(ws.Completed) < len(set) {
			var best *core.Task
			bestRel := -1.0
			for _, u := range set {
				if containsTask(ws.Completed, u.ID) {
					continue
				}
				if rel := metric.Relevance(dist, u.Keywords, ws.Worker.Keywords); rel > bestRel {
					bestRel, best = rel, u
				}
			}
			if err := e.Complete("w1", best.ID); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ws.Beta() <= ws.Alpha() {
		t.Fatalf("relevance-seeker estimates α=%g β=%g, want β > α", ws.Alpha(), ws.Beta())
	}
}

func TestWeightsStayNormalized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	e := newEngine(t, Config{Xmax: 5, Rand: r})
	if err := e.AddTasks(genTasks(r, 60)...); err != nil {
		t.Fatal(err)
	}
	ws, err := e.AddWorker(genWorker("w1", 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 4; iter++ {
		sets, err := e.NextIteration()
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range sets["w1"] {
			if err := e.Complete("w1", task.ID); err != nil {
				t.Fatal(err)
			}
			a, b := ws.Alpha(), ws.Beta()
			if a < 0 || b < 0 || math.Abs(a+b-1) > 1e-9 {
				t.Fatalf("weights (%g,%g) not normalized", a, b)
			}
		}
	}
}

func TestUnavailableWorkerSkipped(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	e := newEngine(t, Config{Xmax: 3, Rand: r})
	if err := e.AddTasks(genTasks(r, 20)...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddWorker(genWorker("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddWorker(genWorker("w2", 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.SetAvailable("w2", false); err != nil {
		t.Fatal(err)
	}
	sets, err := e.NextIteration()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sets["w2"]; ok {
		t.Fatal("unavailable worker received tasks")
	}
	if len(sets["w1"]) == 0 {
		t.Fatal("available worker received nothing")
	}
	if err := e.SetAvailable("ghost", false); err == nil {
		t.Error("SetAvailable on unknown worker succeeded")
	}
}

func TestPoolExhaustion(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	e := newEngine(t, Config{Xmax: 5, Rand: r})
	if err := e.AddTasks(genTasks(r, 7)...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddWorker(genWorker("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.NextIteration(); err != nil {
		t.Fatal(err)
	}
	// Second iteration: only 2 tasks left.
	sets, err := e.NextIteration()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets["w1"]) != 2 {
		t.Fatalf("got %d tasks, want the 2 remaining", len(sets["w1"]))
	}
	// Third iteration: nothing left; must not error.
	sets, err = e.NextIteration()
	if err != nil {
		t.Fatal(err)
	}
	if len(sets["w1"]) != 0 {
		t.Fatalf("got %d tasks from an empty pool", len(sets["w1"]))
	}
	if e.Iteration() != 3 {
		t.Fatalf("Iteration = %d, want 3", e.Iteration())
	}
}

func TestCustomSolverIsUsed(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	called := 0
	custom := func(in *core.Instance, opts ...solver.Option) (*solver.Result, error) {
		called++
		return solver.HTAGRE(in, opts...)
	}
	e := newEngine(t, Config{Xmax: 3, Solve: custom, Rand: r})
	if err := e.AddTasks(genTasks(r, 30)...); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddWorker(genWorker("w1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.NextIteration(); err != nil { // cold start, no solve
		t.Fatal(err)
	}
	if _, err := e.NextIteration(); err != nil { // warm, solve
		t.Fatal(err)
	}
	if called != 1 {
		t.Fatalf("custom solver called %d times, want 1", called)
	}
}

// TestFirstCompletionYieldsNoDiversityObservation: marginal diversity of
// the first task is 0/0 and must be skipped, while relevance (if any
// remaining task has positive relevance) may be observed.
func TestFirstCompletionGainAccounting(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	e := newEngine(t, Config{Xmax: 4, Rand: r})
	if err := e.AddTasks(genTasks(r, 12)...); err != nil {
		t.Fatal(err)
	}
	ws, err := e.AddWorker(genWorker("w1", 0, 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	sets, err := e.NextIteration()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Complete("w1", sets["w1"][0].ID); err != nil {
		t.Fatal(err)
	}
	if len(ws.divGains) != 0 {
		t.Fatalf("first completion produced %d diversity observations, want 0", len(ws.divGains))
	}
}
