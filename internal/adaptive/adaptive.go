// Package adaptive implements the paper's adaptive task assignment loop
// (Section III): task assignment is a series of iterations; between
// iterations the engine observes which tasks each worker completed, turns
// those observations into normalized marginal gains in diversity and
// relevance, re-estimates the worker's motivation weights (α, β), and
// solves a fresh HTA instance over the remaining task pool. Once assigned,
// a task is dropped from subsequent iterations.
//
// The engine is deliberately agnostic about what triggers an iteration —
// the paper notes this is orthogonal to the problem. Callers (the platform
// service, the crowd simulator, the examples) decide when to call
// NextIteration.
package adaptive

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/lsap"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/trace"
)

// SolveFunc solves one HTA instance. solver.HTAGRE is the default, matching
// the paper's deployment choice (Section V-C: "we hence choose not to
// deploy HTA-APP").
type SolveFunc func(in *core.Instance, opts ...solver.Option) (*solver.Result, error)

// Config parameterizes an Engine.
type Config struct {
	// Xmax is the per-worker capacity (constraint C1).
	Xmax int
	// Dist is the diversity metric; defaults to Jaccard.
	Dist metric.Distance
	// Solve is the assignment algorithm; defaults to solver.HTAGRE.
	Solve SolveFunc
	// ExtraRandomTasks are appended to each worker's solver assignment at
	// every iteration — the paper displays Xmax=15 optimized plus 5 random
	// tasks "to avoid falling into a silo" (Section V-C).
	ExtraRandomTasks int
	// InitialAlpha is the α prior used before any observation; β is its
	// complement. Defaults to 0.5.
	InitialAlpha float64
	// Rand drives cold-start and extra-task sampling and the solver's flip
	// step. Defaults to a fixed seed of 1.
	Rand *rand.Rand
	// DisableRandomColdStart makes even a worker's first assignment go
	// through the solver. The paper's random cold start exists because
	// HTA-GRE has no (α, β) estimates yet; the non-adaptive strategies
	// (DIV, REL) ignore the estimates and need no cold start.
	DisableRandomColdStart bool
	// Parallelism enables the cached diversity kernel across iterations:
	// > 0 uses that many goroutines, < 0 uses runtime.NumCPU(), 0 (the
	// zero value) keeps the legacy serial path. With the kernel on, the
	// engine retains the pairwise distance matrix between NextIteration
	// calls — pairs whose tasks both survive in the pool are carried
	// forward, assigned tasks drop out by omission — and passes
	// solver.WithParallelism to the configured Solve. Assignments are
	// bit-identical to the serial path.
	Parallelism int
	// Metrics receives the engine's telemetry (iteration latency, pool
	// size, α/β drift). Nil uses the process-wide instruments on
	// obs.Default(); pass NewMetrics over a private registry for
	// isolation.
	Metrics *Metrics
	// Logger receives structured debug logs (iteration summaries, weight
	// re-estimations), trace-correlated when the caller passes a traced
	// context to the Ctx entry points. Nil disables logging.
	Logger *slog.Logger
}

// WorkerState tracks one worker across iterations.
type WorkerState struct {
	// Worker carries the current (α, β) estimates; Keywords are the
	// worker's expressed interests.
	Worker *core.Worker
	// Assigned is the task set displayed in the current iteration.
	Assigned []*core.Task
	// Completed lists the tasks of Assigned finished so far, in order.
	Completed []*core.Task
	// TotalCompleted counts completions across all iterations.
	TotalCompleted int
	// Available marks the worker as present (assignable) this iteration.
	Available bool

	divGains []float64 // normalized marginal diversity gains, one per usable observation
	relGains []float64 // normalized relevance gains
	started  bool      // has received at least one assignment
}

// Alpha returns the current diversity-preference estimate.
func (ws *WorkerState) Alpha() float64 { return ws.Worker.Alpha }

// Beta returns the current relevance-preference estimate.
func (ws *WorkerState) Beta() float64 { return ws.Worker.Beta }

// Observations returns how many usable gain observations have been
// collected for this worker.
func (ws *WorkerState) Observations() int { return len(ws.divGains) }

// Engine runs the adaptive assignment loop over a task pool.
type Engine struct {
	cfg       Config
	pool      []*core.Task // available (never-assigned) tasks, insertion order
	inPool    map[string]int
	workers   map[string]*WorkerState
	order     []string // worker registration order, for deterministic instances
	iteration int
	kernel    *core.DistKernel // cross-iteration distance cache; nil when Parallelism == 0
	lsapWS    *lsap.Workspace  // scratch reused by every iteration's LSAP solve
	metrics   *Metrics
	// KernelReused/KernelComputed accumulate the pair counts the kernel
	// carried forward vs computed fresh across all iterations — the
	// incremental-invalidation win reported by the iteration benches.
	KernelReused   int
	KernelComputed int
}

// NewEngine validates the configuration and returns an empty engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Xmax < 1 {
		return nil, fmt.Errorf("adaptive: Xmax = %d, must be >= 1", cfg.Xmax)
	}
	if cfg.ExtraRandomTasks < 0 {
		return nil, fmt.Errorf("adaptive: ExtraRandomTasks = %d", cfg.ExtraRandomTasks)
	}
	if cfg.Dist == nil {
		cfg.Dist = metric.Jaccard{}
	}
	if cfg.Solve == nil {
		cfg.Solve = solver.HTAGRE
	}
	if cfg.InitialAlpha < 0 || cfg.InitialAlpha > 1 {
		return nil, fmt.Errorf("adaptive: InitialAlpha = %g outside [0,1]", cfg.InitialAlpha)
	}
	if cfg.InitialAlpha == 0 {
		cfg.InitialAlpha = 0.5
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.New(rand.NewSource(1))
	}
	e := &Engine{
		cfg:     cfg,
		inPool:  make(map[string]int),
		workers: make(map[string]*WorkerState),
		// One workspace for the engine's lifetime: iterations solve
		// same-shaped LSAPs back to back, so the scratch (and result)
		// buffers reach steady state after the first and every later
		// solve allocates nothing. NextIteration runs are sequential,
		// matching the workspace's single-goroutine contract.
		lsapWS: lsap.NewWorkspace(),
	}
	e.metrics = cfg.Metrics
	if e.metrics == nil {
		e.metrics = sharedMetrics()
	}
	if cfg.Parallelism != 0 {
		e.kernel = core.NewDistKernel()
	}
	return e, nil
}

// Iteration returns the number of completed NextIteration calls.
func (e *Engine) Iteration() int { return e.iteration }

// PoolSize returns the number of tasks still available for assignment.
func (e *Engine) PoolSize() int { return len(e.pool) }

// AddTasks adds tasks to the pool. Task IDs must be unique and non-empty.
func (e *Engine) AddTasks(tasks ...*core.Task) error {
	for _, t := range tasks {
		if t == nil || t.Keywords == nil {
			return errors.New("adaptive: nil task or keywords")
		}
		if t.ID == "" {
			return errors.New("adaptive: task with empty ID")
		}
		if _, dup := e.inPool[t.ID]; dup {
			return fmt.Errorf("adaptive: duplicate task id %q", t.ID)
		}
		e.inPool[t.ID] = len(e.pool)
		e.pool = append(e.pool, t)
	}
	return nil
}

// AddWorker registers a worker. The worker's α/β are initialized to the
// engine prior; its keyword vector must be set. New workers are available.
func (e *Engine) AddWorker(w *core.Worker) (*WorkerState, error) {
	if w == nil || w.Keywords == nil {
		return nil, errors.New("adaptive: nil worker or keywords")
	}
	if w.ID == "" {
		return nil, errors.New("adaptive: worker with empty ID")
	}
	if _, dup := e.workers[w.ID]; dup {
		return nil, fmt.Errorf("adaptive: duplicate worker id %q", w.ID)
	}
	w.Alpha = e.cfg.InitialAlpha
	w.Beta = 1 - e.cfg.InitialAlpha
	ws := &WorkerState{Worker: w, Available: true}
	e.workers[w.ID] = ws
	e.order = append(e.order, w.ID)
	return ws, nil
}

// Worker returns the state of a registered worker.
func (e *Engine) Worker(id string) (*WorkerState, error) {
	ws, ok := e.workers[id]
	if !ok {
		return nil, fmt.Errorf("adaptive: unknown worker %q", id)
	}
	return ws, nil
}

// Workers returns all registered worker states in registration order.
func (e *Engine) Workers() []*WorkerState {
	out := make([]*WorkerState, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.workers[id])
	}
	return out
}

// SetAvailable marks a worker present or absent for upcoming iterations
// (the paper's W^i is the set of workers available at iteration i).
func (e *Engine) SetAvailable(id string, available bool) error {
	ws, err := e.Worker(id)
	if err != nil {
		return err
	}
	ws.Available = available
	return nil
}

// Complete records that the worker finished the given task from its current
// assignment and collects the marginal-gain observation of Section III:
//
//	gain_div(t_j) = Σ_{k<j} d(t_j, t_k), normalized by the maximum such
//	gain achievable with any not-yet-completed assigned task;
//	gain_rel(t_j) = rel(t_j, w), normalized likewise.
//
// Observations with a zero normalizer (e.g. the first completed task of an
// assignment, whose marginal diversity is always 0) are skipped — there is
// no signal in them.
func (e *Engine) Complete(workerID, taskID string) error {
	return e.CompleteCtx(context.Background(), workerID, taskID)
}

// CompleteCtx is Complete with trace propagation: the marginal-gain
// computation and (α, β) re-estimation run under an "adaptive.reestimate"
// span joined to ctx's trace, and the engine's Logger (if any) emits a
// trace-correlated debug line with the refreshed weights.
func (e *Engine) CompleteCtx(ctx context.Context, workerID, taskID string) error {
	ws, err := e.Worker(workerID)
	if err != nil {
		return err
	}
	var task *core.Task
	for _, t := range ws.Assigned {
		if t.ID == taskID {
			task = t
			break
		}
	}
	if task == nil {
		return fmt.Errorf("adaptive: task %q is not assigned to worker %q", taskID, workerID)
	}
	for _, t := range ws.Completed {
		if t.ID == taskID {
			return fmt.Errorf("adaptive: task %q already completed by worker %q", taskID, workerID)
		}
	}

	// Marginal gains of the chosen task against the completed prefix.
	_, reSpan := trace.Start(ctx, "adaptive.reestimate",
		trace.Str("worker", workerID), trace.Str("task", taskID))
	gainDiv := e.marginalDiversity(task, ws.Completed)
	gainRel := metric.Relevance(e.cfg.Dist, task.Keywords, ws.Worker.Keywords)

	// Normalizers: the best gains any remaining assigned task could have
	// brought (the paper's T^{i−1}_w \ {t_1,…,t_{j−1}}).
	var maxDiv, maxRel float64
	for _, u := range ws.Assigned {
		if containsTask(ws.Completed, u.ID) {
			continue
		}
		if g := e.marginalDiversity(u, ws.Completed); g > maxDiv {
			maxDiv = g
		}
		if r := metric.Relevance(e.cfg.Dist, u.Keywords, ws.Worker.Keywords); r > maxRel {
			maxRel = r
		}
	}
	if maxDiv > 0 {
		ws.divGains = append(ws.divGains, gainDiv/maxDiv)
	}
	if maxRel > 0 {
		ws.relGains = append(ws.relGains, gainRel/maxRel)
	}

	ws.Completed = append(ws.Completed, task)
	ws.TotalCompleted++
	e.refreshWeights(ws)
	reSpan.SetAttrs(
		trace.Float("alpha", ws.Worker.Alpha),
		trace.Float("beta", ws.Worker.Beta),
		trace.Int("observations", ws.Observations()))
	reSpan.End()
	if e.cfg.Logger != nil {
		e.cfg.Logger.LogAttrs(ctx, slog.LevelDebug, "adaptive: reestimated weights",
			slog.String("worker", workerID), slog.String("task", taskID),
			slog.Float64("alpha", ws.Worker.Alpha), slog.Float64("beta", ws.Worker.Beta),
			slog.Int("observations", ws.Observations()))
	}
	e.metrics.Completions.Inc()
	return nil
}

func (e *Engine) marginalDiversity(t *core.Task, completed []*core.Task) float64 {
	var g float64
	for _, c := range completed {
		g += e.cfg.Dist.Distance(t.Keywords, c.Keywords)
	}
	return g
}

func containsTask(list []*core.Task, id string) bool {
	for _, t := range list {
		if t.ID == id {
			return true
		}
	}
	return false
}

// refreshWeights recomputes (α, β) as the averages of the collected
// normalized gains, rescaled to sum to 1. With no usable observations the
// prior is kept.
func (e *Engine) refreshWeights(ws *WorkerState) {
	if len(ws.divGains) == 0 && len(ws.relGains) == 0 {
		return
	}
	oldAlpha := ws.Worker.Alpha
	ws.Worker.Alpha = mean(ws.divGains)
	ws.Worker.Beta = mean(ws.relGains)
	ws.Worker.NormalizeWeights()
	e.recordDrift(oldAlpha, ws.Worker.Alpha)
	e.publishWeightGauges()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// NextIteration runs one assignment round: cold-start workers (first
// assignment) receive Xmax random tasks; the rest are served by the
// configured HTA solver over the remaining pool. Every worker additionally
// receives ExtraRandomTasks random tasks. Assigned tasks leave the pool
// permanently. It returns the per-worker display sets.
func (e *Engine) NextIteration() (map[string][]*core.Task, error) {
	return e.NextIterationCtx(context.Background())
}

// NextIterationCtx is NextIteration with trace propagation: the round
// runs under an "adaptive.iteration" span joined to ctx's trace, the
// cross-iteration kernel precompute gets its own child span, and the
// context flows into the solver (solver.WithContext) so the trace shows
// the full endpoint → iteration → solver-phase hierarchy.
func (e *Engine) NextIterationCtx(ctx context.Context) (map[string][]*core.Task, error) {
	ctx, iterSpan := trace.Start(ctx, "adaptive.iteration",
		trace.Int("iteration", e.iteration), trace.Int("pool", len(e.pool)))
	defer iterSpan.End()
	span := obs.StartSpan(e.metrics.IterationSeconds)
	var cold, warm []*WorkerState
	for _, id := range e.order {
		ws := e.workers[id]
		if !ws.Available {
			continue
		}
		if ws.started || e.cfg.DisableRandomColdStart {
			warm = append(warm, ws)
			ws.started = true
		} else {
			cold = append(cold, ws)
		}
	}
	out := make(map[string][]*core.Task)

	// Cold start: random Xmax tasks (Section V-C).
	for _, ws := range cold {
		set := e.popRandom(e.cfg.Xmax)
		ws.Assigned = set
		ws.Completed = nil
		ws.started = true
		out[ws.Worker.ID] = set
	}

	// Warm workers: solve HTA over the current pool.
	if len(warm) > 0 && len(e.pool) > 0 {
		workers := make([]*core.Worker, len(warm))
		for i, ws := range warm {
			workers[i] = ws.Worker
		}
		tasks := append([]*core.Task(nil), e.pool...)
		in, err := core.NewInstance(tasks, workers, e.cfg.Xmax, e.cfg.Dist)
		if err != nil {
			return nil, fmt.Errorf("adaptive: building instance: %w", err)
		}
		solveOpts := []solver.Option{
			solver.WithContext(ctx), solver.WithRand(e.cfg.Rand), solver.WithWorkspace(e.lsapWS),
		}
		if e.kernel != nil {
			// Materialize this iteration's distance matrix, carrying
			// forward every pair whose tasks both survive from the last
			// iteration; assigned tasks dropped out of the pool and are
			// invalidated simply by not being carried forward.
			_, preSpan := trace.Start(ctx, "adaptive.precompute")
			reused, computed := e.kernel.Precompute(in, e.cfg.Parallelism)
			preSpan.SetAttrs(trace.Int("reused", reused), trace.Int("computed", computed))
			preSpan.End()
			e.KernelReused += reused
			e.KernelComputed += computed
			solveOpts = append(solveOpts, solver.WithParallelism(e.cfg.Parallelism))
		}
		res, err := e.cfg.Solve(in, solveOpts...)
		if err != nil {
			return nil, fmt.Errorf("adaptive: solving iteration %d: %w", e.iteration, err)
		}
		for i, ws := range warm {
			set := make([]*core.Task, 0, len(res.Assignment.Sets[i]))
			for _, k := range res.Assignment.Sets[i] {
				set = append(set, tasks[k])
			}
			for _, t := range set {
				e.removeFromPool(t.ID)
			}
			ws.Assigned = set
			ws.Completed = nil
			out[ws.Worker.ID] = set
		}
	} else {
		for _, ws := range warm {
			ws.Assigned = nil
			ws.Completed = nil
			out[ws.Worker.ID] = nil
		}
	}

	// Anti-silo extras for everyone assigned this round.
	if e.cfg.ExtraRandomTasks > 0 {
		for _, ws := range append(cold, warm...) {
			extra := e.popRandom(e.cfg.ExtraRandomTasks)
			ws.Assigned = append(ws.Assigned, extra...)
			out[ws.Worker.ID] = ws.Assigned
		}
	}

	e.iteration++
	span.End()
	iterSpan.SetAttrs(
		trace.Int("cold", len(cold)), trace.Int("warm", len(warm)),
		trace.Int("pool_after", len(e.pool)))
	e.metrics.Iterations.Inc()
	e.metrics.PoolSize.Set(float64(len(e.pool)))
	e.publishWeightGauges()
	if e.cfg.Logger != nil {
		e.cfg.Logger.LogAttrs(ctx, slog.LevelDebug, "adaptive: iteration complete",
			slog.Int("iteration", e.iteration), slog.Int("cold", len(cold)),
			slog.Int("warm", len(warm)), slog.Int("pool", len(e.pool)))
	}
	return out, nil
}

// popRandom removes and returns up to n random tasks from the pool.
func (e *Engine) popRandom(n int) []*core.Task {
	if n > len(e.pool) {
		n = len(e.pool)
	}
	out := make([]*core.Task, 0, n)
	for i := 0; i < n; i++ {
		idx := e.cfg.Rand.Intn(len(e.pool))
		t := e.pool[idx]
		out = append(out, t)
		e.removeByIndex(idx)
	}
	return out
}

func (e *Engine) removeFromPool(id string) {
	idx, ok := e.inPool[id]
	if !ok {
		return
	}
	e.removeByIndex(idx)
}

func (e *Engine) removeByIndex(idx int) {
	t := e.pool[idx]
	last := len(e.pool) - 1
	e.pool[idx] = e.pool[last]
	e.inPool[e.pool[idx].ID] = idx
	e.pool = e.pool[:last]
	delete(e.inPool, t.ID)
}
