package adaptive

import (
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
)

func parallelTestFixtures(t *testing.T, seed int64) ([]*core.Task, []*core.Worker) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	const universe = 24
	tasks := make([]*core.Task, 60)
	for i := range tasks {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(3) == 0 {
				kw.Add(k)
			}
		}
		tasks[i] = &core.Task{ID: string(rune('a'+i%26)) + string(rune('0'+i/26)), Keywords: kw}
	}
	workers := make([]*core.Worker, 3)
	for q := range workers {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(3) == 0 {
				kw.Add(k)
			}
		}
		workers[q] = &core.Worker{ID: string(rune('A' + q)), Keywords: kw}
	}
	return tasks, workers
}

func runIterations(t *testing.T, parallelism int, iterations int) (*Engine, []map[string][]*core.Task) {
	t.Helper()
	tasks, workers := parallelTestFixtures(t, 83)
	e, err := NewEngine(Config{
		Xmax:                   4,
		Rand:                   rand.New(rand.NewSource(9)),
		DisableRandomColdStart: true,
		Parallelism:            parallelism,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTasks(tasks...); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		if _, err := e.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	var rounds []map[string][]*core.Task
	for i := 0; i < iterations; i++ {
		out, err := e.NextIteration()
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, out)
	}
	return e, rounds
}

// TestEngineParallelParity: with the cross-iteration kernel on, every
// iteration's assignments must be identical to the serial engine's.
func TestEngineParallelParity(t *testing.T) {
	_, serial := runIterations(t, 0, 4)
	for _, p := range []int{1, 4} {
		engine, got := runIterations(t, p, 4)
		for i := range serial {
			for id, set := range serial[i] {
				gotSet := got[i][id]
				if len(gotSet) != len(set) {
					t.Fatalf("p=%d iteration %d worker %s: %d tasks, want %d",
						p, i, id, len(gotSet), len(set))
				}
				for j := range set {
					if gotSet[j].ID != set[j].ID {
						t.Fatalf("p=%d iteration %d worker %s task %d: %q, want %q",
							p, i, id, j, gotSet[j].ID, set[j].ID)
					}
				}
			}
		}
		if engine.KernelComputed == 0 {
			t.Fatalf("p=%d: kernel computed no pairs over 4 iterations", p)
		}
		if engine.KernelReused == 0 {
			t.Fatalf("p=%d: kernel reused no pairs — cross-iteration carry-forward is dead", p)
		}
	}
}

// TestEngineSerialHasNoKernel: the zero-value config must keep the legacy
// path, with no kernel allocated and no accounting.
func TestEngineSerialHasNoKernel(t *testing.T) {
	engine, _ := runIterations(t, 0, 2)
	if engine.kernel != nil {
		t.Fatal("serial engine allocated a kernel")
	}
	if engine.KernelReused != 0 || engine.KernelComputed != 0 {
		t.Fatal("serial engine accumulated kernel stats")
	}
}
