package adaptive

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
)

// Snapshot/Restore persist an engine's full state as JSON so a platform
// (cmd/hta-server) can survive restarts mid-experiment without losing the
// task pool, the per-worker (α, β) estimates or the in-flight assignments.
// Configuration (Xmax, solver, distance) is not part of the snapshot — it
// belongs to the process, and Restore takes a Config as usual.

type taskSnap struct {
	ID       string  `json:"id"`
	Group    string  `json:"group,omitempty"`
	Reward   float64 `json:"reward,omitempty"`
	Universe int     `json:"universe"`
	Keywords []int   `json:"keywords"`
}

type workerSnap struct {
	ID        string     `json:"id"`
	Universe  int        `json:"universe"`
	Keywords  []int      `json:"keywords"`
	Alpha     float64    `json:"alpha"`
	Beta      float64    `json:"beta"`
	Available bool       `json:"available"`
	Started   bool       `json:"started"`
	Total     int        `json:"total_completed"`
	DivGains  []float64  `json:"div_gains,omitempty"`
	RelGains  []float64  `json:"rel_gains,omitempty"`
	Assigned  []taskSnap `json:"assigned,omitempty"`
	Completed []string   `json:"completed,omitempty"` // IDs within Assigned
}

type engineSnap struct {
	Version   int          `json:"version"`
	Iteration int          `json:"iteration"`
	Pool      []taskSnap   `json:"pool"`
	Workers   []workerSnap `json:"workers"`
}

const snapshotVersion = 1

func snapTask(t *core.Task) taskSnap {
	return taskSnap{
		ID: t.ID, Group: t.Group, Reward: t.Reward,
		Universe: t.Keywords.Len(), Keywords: t.Keywords.Indices(),
	}
}

func (ts taskSnap) task() (*core.Task, error) {
	if ts.Universe < 1 {
		return nil, fmt.Errorf("adaptive: snapshot task %q has universe %d", ts.ID, ts.Universe)
	}
	for _, k := range ts.Keywords {
		if k < 0 || k >= ts.Universe {
			return nil, fmt.Errorf("adaptive: snapshot task %q keyword %d out of range", ts.ID, k)
		}
	}
	return &core.Task{
		ID: ts.ID, Group: ts.Group, Reward: ts.Reward,
		Keywords: bitset.FromIndices(ts.Universe, ts.Keywords...),
	}, nil
}

// Snapshot writes the engine state as a single JSON document.
func (e *Engine) Snapshot(w io.Writer) error {
	snap := engineSnap{Version: snapshotVersion, Iteration: e.iteration}
	for _, t := range e.pool {
		snap.Pool = append(snap.Pool, snapTask(t))
	}
	for _, id := range e.order {
		ws := e.workers[id]
		wsnap := workerSnap{
			ID:        ws.Worker.ID,
			Universe:  ws.Worker.Keywords.Len(),
			Keywords:  ws.Worker.Keywords.Indices(),
			Alpha:     ws.Worker.Alpha,
			Beta:      ws.Worker.Beta,
			Available: ws.Available,
			Started:   ws.started,
			Total:     ws.TotalCompleted,
			DivGains:  ws.divGains,
			RelGains:  ws.relGains,
		}
		for _, t := range ws.Assigned {
			wsnap.Assigned = append(wsnap.Assigned, snapTask(t))
		}
		for _, t := range ws.Completed {
			wsnap.Completed = append(wsnap.Completed, t.ID)
		}
		snap.Workers = append(snap.Workers, wsnap)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("adaptive: encoding snapshot: %w", err)
	}
	return nil
}

// Restore rebuilds an engine from a snapshot, using the given runtime
// configuration (solver, distance, Xmax, randomness).
func Restore(r io.Reader, cfg Config) (*Engine, error) {
	var snap engineSnap
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("adaptive: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("adaptive: unsupported snapshot version %d", snap.Version)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	e.iteration = snap.Iteration
	for _, ts := range snap.Pool {
		t, err := ts.task()
		if err != nil {
			return nil, err
		}
		if err := e.AddTasks(t); err != nil {
			return nil, err
		}
	}
	for _, wsnap := range snap.Workers {
		if wsnap.Universe < 1 {
			return nil, fmt.Errorf("adaptive: snapshot worker %q has universe %d", wsnap.ID, wsnap.Universe)
		}
		for _, k := range wsnap.Keywords {
			if k < 0 || k >= wsnap.Universe {
				return nil, fmt.Errorf("adaptive: snapshot worker %q keyword %d out of range", wsnap.ID, k)
			}
		}
		worker := &core.Worker{
			ID:       wsnap.ID,
			Keywords: bitset.FromIndices(wsnap.Universe, wsnap.Keywords...),
		}
		ws, err := e.AddWorker(worker)
		if err != nil {
			return nil, err
		}
		// AddWorker resets the weights to the prior; restore the estimates.
		worker.Alpha, worker.Beta = wsnap.Alpha, wsnap.Beta
		ws.Available = wsnap.Available
		ws.started = wsnap.Started
		ws.TotalCompleted = wsnap.Total
		ws.divGains = wsnap.DivGains
		ws.relGains = wsnap.RelGains
		byID := make(map[string]*core.Task, len(wsnap.Assigned))
		for _, ts := range wsnap.Assigned {
			t, err := ts.task()
			if err != nil {
				return nil, err
			}
			ws.Assigned = append(ws.Assigned, t)
			byID[t.ID] = t
		}
		for _, id := range wsnap.Completed {
			t, ok := byID[id]
			if !ok {
				return nil, fmt.Errorf("adaptive: snapshot worker %q completed unknown task %q", wsnap.ID, id)
			}
			ws.Completed = append(ws.Completed, t)
		}
	}
	return e, nil
}
