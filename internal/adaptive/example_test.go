package adaptive_test

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
)

// ExampleEngine runs the paper's adaptive loop for one worker: a cold-start
// assignment, completions that feed the (α, β) estimator, and a second,
// solver-driven iteration.
func ExampleEngine() {
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax: 3,
		Rand: rand.New(rand.NewSource(7)),
	})
	if err != nil {
		log.Fatal(err)
	}
	const universe = 16
	for i := 0; i < 12; i++ {
		task := &core.Task{
			ID:       fmt.Sprintf("t%02d", i),
			Keywords: bitset.FromIndices(universe, i%8, 8+(i%4)),
		}
		if err := engine.AddTasks(task); err != nil {
			log.Fatal(err)
		}
	}
	state, err := engine.AddWorker(&core.Worker{
		ID: "ada", Keywords: bitset.FromIndices(universe, 0, 8),
	})
	if err != nil {
		log.Fatal(err)
	}

	sets, err := engine.NextIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 1: %d tasks (cold start)\n", len(sets["ada"]))
	for _, task := range sets["ada"] {
		if err := engine.Complete("ada", task.ID); err != nil {
			log.Fatal(err)
		}
	}
	sets, err = engine.NextIteration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 2: %d tasks (HTA-GRE with learned weights)\n", len(sets["ada"]))
	fmt.Printf("weights normalized: %v\n", state.Alpha()+state.Beta() > 0.99)
	// Output:
	// iteration 1: 3 tasks (cold start)
	// iteration 2: 3 tasks (HTA-GRE with learned weights)
	// weights normalized: true
}
