// Package stream implements online (streaming) motivation-aware task
// assignment — the deployment mode the paper's conclusion names as future
// work: "task assignment ... needs to be streamed and will depend on the
// availability of workers".
//
// Unlike the iteration engine (package adaptive), which solves a full HTA
// instance over a pooled batch, the streaming Assigner makes an immediate
// decision per event:
//
//   - a task arrives → it goes to the worker with the largest marginal
//     motivation gain among those with free capacity, or into a bounded
//     buffer when everyone is full;
//   - a worker completes a task → the freed slot pulls the buffered task
//     with the best marginal gain for that worker;
//   - a worker arrives → it drains the buffer up to Xmax;
//   - a worker departs → its active (never-started) tasks return to the
//     buffer for reassignment. This deliberately relaxes the batch model's
//     "once assigned, dropped" rule, which exists to keep iterations
//     disjoint, not to waste work on an abandoned queue.
//
// The marginal gain is the same quantity the batch objective sums
// (Equation 3 of the paper, incrementally):
//
//	Δ(q, k) = 2·α_q·Σ_{t∈active(q)} d(k, t) + β_q·(TR_q + |active(q)|·rel(q, k))
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/trace"
)

// Config parameterizes an Assigner.
type Config struct {
	// Xmax caps each worker's active set (constraint C1).
	Xmax int
	// BufferLimit caps the number of unassigned tasks held for later;
	// OfferTask rejects arrivals beyond it. Defaults to 1024.
	BufferLimit int
	// Dist is the diversity metric; defaults to Jaccard.
	Dist metric.Distance
	// Parallelism bounds the goroutines pricing buffer-sized distance
	// rows (metric.RowP): 1 (the default when 0) keeps the hot path
	// strictly serial and allocation-free; > 1 fans wide rows out and
	// trades a per-event goroutine barrier for latency on very deep
	// buffers; < 0 means all cores. Results are bit-identical either
	// way.
	Parallelism int
	// Metrics receives the assigner's telemetry (queue depth, delivery and
	// drop counters, drain batch sizes). Nil uses the process-wide
	// instruments on obs.Default(); pass NewMetrics over a private
	// registry for isolation.
	Metrics *Metrics
	// WithTrust multiplies each worker's per-worker trust score (SetTrust,
	// default 1.0) into the marginal gain, extending the objective to
	// relevance × diversity × trust. A worker with trust 0 is quarantined:
	// it receives no new tasks at all. Off by default — the scoring path is
	// then bit-identical to a trust-free assigner.
	WithTrust bool
	// DeadlineAware turns on predictive scheduling semantics (deadline.go):
	// buffered tasks whose deadline falls within UrgencyHorizon are pulled
	// earliest-deadline-first (gain breaks ties) ahead of the pure
	// best-gain order, and routing avoids pinning a deadlined task to a
	// worker whose availability window (SetWindow) closes before the
	// deadline. Off by default; the default paths are then bit-identical
	// to a deadline-free assigner, and tasks without deadlines are
	// unaffected either way.
	DeadlineAware bool
	// UrgencyHorizon is how far ahead of Now a deadline must fall to make
	// a buffered task urgent, in the units of the Now clock (nanoseconds
	// by default). Defaults to 30s. Only read when DeadlineAware is on.
	UrgencyHorizon int64
	// Now supplies the clock urgency decisions compare deadlines against.
	// Defaults to time.Now().UnixNano; deterministic replays inject a
	// logical clock. Expiry never reads it — ExpireDue takes an explicit
	// timestamp.
	Now func() int64
}

// workerState is one worker's streaming state plus its slice of the
// incremental gain cache (see cache.go for the invariants).
type workerState struct {
	worker *core.Worker
	active []*core.Task // currently assigned, not yet completed
	sumRel float64      // Σ rel(t, w) over active
	done   int          // completed count
	trust  float64      // reputation multiplier; 0 = quarantined (Config.WithTrust)
	window int64        // availability-window end (SetWindow); 0 = unknown

	// Gain cache: rel[i] = rel(buffer[i], worker); rows[s][i] =
	// d(buffer[i], active[s]). Both stay aligned with the assigner's
	// buffer; pullBest folds the rows in slot order on the fly.
	activePack bitset.Pack
	activeKw   func(i int) *bitset.Set
	rel        []float64
	rows       [][]float64
}

// Assigner is the streaming decision-maker. It is not safe for concurrent
// use; wrap it in a mutex (as the platform server does for the batch
// engine) when events arrive from multiple goroutines.
type Assigner struct {
	cfg     Config
	workers map[string]*workerState
	order   []string
	states  []*workerState // aligned with order: hot loops iterate this, never the map
	buffer  []*core.Task
	seen    map[string]bool // task IDs ever accepted, to reject duplicates
	metrics *Metrics

	// deadlined counts buffered tasks with a non-zero deadline, maintained
	// by the buffer mutators (cache.go), so the deadline-aware paths can
	// bail to the unordered fast path when the buffer carries no deadlines.
	deadlined int

	// Packed mirrors and scratch for the gain cache (cache.go): bufPack
	// mirrors buffer keywords, wkrPack the registered workers' keywords in
	// arrival order. The closures adapt metric.Row's generic fallback to
	// the mirrored slices and are built once, so hot-path kernel calls
	// allocate nothing.
	bufPack  bitset.Pack
	wkrPack  bitset.Pack
	bufKw    func(i int) *bitset.Set
	workerKw func(i int) *bitset.Set
	rowPool  [][]float64
	scratchA []float64
	scratchW []float64

	// backlogN and freeCapN mirror len(buffer) and Σ_q (Xmax −
	// |active(q)|) atomically so other goroutines — the sharded engine's
	// steal watermark in particular — can peek at load without a mailbox
	// round-trip. They are exact at the Assigner's quiescent points; a
	// concurrent reader may observe a value one mutation stale, which is
	// fine for load estimation and never for correctness decisions.
	backlogN atomic.Int64
	freeCapN atomic.Int64
}

// NewAssigner validates the configuration.
func NewAssigner(cfg Config) (*Assigner, error) {
	if cfg.Xmax < 1 {
		return nil, fmt.Errorf("stream: Xmax = %d, must be >= 1", cfg.Xmax)
	}
	if cfg.BufferLimit == 0 {
		cfg.BufferLimit = 1024
	}
	if cfg.BufferLimit < 0 {
		return nil, fmt.Errorf("stream: BufferLimit = %d", cfg.BufferLimit)
	}
	if cfg.Dist == nil {
		cfg.Dist = metric.Jaccard{}
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.UrgencyHorizon == 0 {
		cfg.UrgencyHorizon = int64(30 * time.Second)
	}
	if cfg.UrgencyHorizon < 0 {
		return nil, fmt.Errorf("stream: UrgencyHorizon = %d", cfg.UrgencyHorizon)
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	m := cfg.Metrics
	if m == nil {
		m = defaultMetrics()
	}
	a := &Assigner{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		seen:    make(map[string]bool),
		metrics: m,
	}
	a.bufKw = func(i int) *bitset.Set { return a.buffer[i].Keywords }
	a.workerKw = func(i int) *bitset.Set { return a.states[i].worker.Keywords }
	return a, nil
}

// BufferLen returns the number of tasks waiting for a free slot.
func (a *Assigner) BufferLen() int { return len(a.buffer) }

// Backlog is BufferLen readable from any goroutine: it loads an atomic
// mirror of the buffer length instead of touching the slice. The sharded
// engine's work-stealing watermark polls it without serializing through
// the owning shard's mailbox.
func (a *Assigner) Backlog() int { return int(a.backlogN.Load()) }

// FreeCapacity returns Σ over workers of (Xmax − |active|) — the number
// of task slots that could accept work right now. Like Backlog it reads
// an atomic mirror and is safe for concurrent readers; treat the value as
// a load estimate, not a reservation.
func (a *Assigner) FreeCapacity() int { return int(a.freeCapN.Load()) }

// NumWorkers returns how many workers are registered.
func (a *Assigner) NumWorkers() int { return len(a.workers) }

// ActiveCount returns the total number of currently assigned tasks across
// all workers.
func (a *Assigner) ActiveCount() int {
	n := 0
	for _, ws := range a.workers {
		n += len(ws.active)
	}
	return n
}

// WorkerIDs returns the registered worker IDs in arrival order.
func (a *Assigner) WorkerIDs() []string {
	return append([]string(nil), a.order...)
}

// Active returns the IDs of the tasks currently assigned to the worker.
func (a *Assigner) Active(workerID string) ([]string, error) {
	ws, ok := a.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("stream: unknown worker %q", workerID)
	}
	out := make([]string, len(ws.active))
	for i, t := range ws.active {
		out[i] = t.ID
	}
	return out, nil
}

// ActiveTasks returns the tasks currently assigned to the worker. The
// slice is a copy; the tasks are shared.
func (a *Assigner) ActiveTasks(workerID string) ([]*core.Task, error) {
	ws, ok := a.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("stream: unknown worker %q", workerID)
	}
	return append([]*core.Task(nil), ws.active...), nil
}

// Worker returns the registered worker record.
func (a *Assigner) Worker(workerID string) (*core.Worker, error) {
	ws, ok := a.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("stream: unknown worker %q", workerID)
	}
	return ws.worker, nil
}

// AddWorker registers a worker and immediately drains the buffer into its
// free capacity, best-marginal-gain first. Returns the tasks assigned.
func (a *Assigner) AddWorker(w *core.Worker) ([]*core.Task, error) {
	if w == nil || w.Keywords == nil {
		return nil, errors.New("stream: nil worker or keywords")
	}
	if w.ID == "" {
		return nil, errors.New("stream: worker with empty ID")
	}
	if _, dup := a.workers[w.ID]; dup {
		return nil, fmt.Errorf("stream: duplicate worker %q", w.ID)
	}
	ws := &workerState{worker: w, trust: 1}
	ws.activeKw = func(i int) *bitset.Set { return ws.active[i].Keywords }
	a.workers[w.ID] = ws
	a.order = append(a.order, w.ID)
	a.states = append(a.states, ws)
	a.wkrPack.Append(w.Keywords)
	// Seed the gain cache over the existing backlog: one packed row gives
	// rel(buffer[i], w); there are no rows yet (empty active set).
	if nb := len(a.buffer); nb > 0 {
		ws.rel = make([]float64, nb)
		metric.RowP(a.cfg.Dist, w.Keywords, &a.bufPack, a.bufKw, ws.rel, a.cfg.Parallelism)
		for i := range ws.rel {
			ws.rel[i] = 1 - ws.rel[i]
		}
	}
	a.freeCapN.Add(int64(a.cfg.Xmax))
	var assigned []*core.Task
	for len(ws.active) < a.cfg.Xmax {
		t := a.pullBest(ws)
		if t == nil {
			break
		}
		assigned = append(assigned, t)
	}
	if len(assigned) > 0 {
		a.metrics.DrainBatch.Observe(float64(len(assigned)))
	}
	return assigned, nil
}

// AddWorkerCtx is AddWorker with trace annotation: the buffer drain into
// the new worker is recorded as an instantaneous event with the
// post-drain queue depth.
func (a *Assigner) AddWorkerCtx(ctx context.Context, w *core.Worker) ([]*core.Task, error) {
	assigned, err := a.AddWorker(w)
	if err == nil {
		trace.Event(ctx, "stream.add_worker",
			trace.Str("worker", w.ID), trace.Int("drained", len(assigned)),
			trace.Int("queue_depth", len(a.buffer)))
	}
	return assigned, err
}

// RemoveWorker deregisters a worker; its unfinished active tasks return to
// the buffer (subject to the buffer limit; overflow tasks are dropped and
// returned so the caller can decide their fate).
func (a *Assigner) RemoveWorker(id string) (dropped []*core.Task, err error) {
	ws, ok := a.workers[id]
	if !ok {
		return nil, fmt.Errorf("stream: unknown worker %q", id)
	}
	delete(a.workers, id)
	a.freeCapN.Add(-int64(a.cfg.Xmax - len(ws.active)))
	for i, oid := range a.order {
		if oid == id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			copy(a.states[i:], a.states[i+1:])
			a.states[len(a.states)-1] = nil
			a.states = a.states[:len(a.states)-1]
			a.wkrPack.RemoveAt(i)
			break
		}
	}
	a.releaseWorkerCache(ws)
	// Requeue through bufferAppend so the surviving workers' caches gain
	// entries for the returned tasks (the departed worker is already out
	// of a.order and gets none).
	for _, t := range ws.active {
		if len(a.buffer) < a.cfg.BufferLimit {
			a.bufferAppend(t)
			a.metrics.Requeued.Inc()
		} else {
			dropped = append(dropped, t)
			a.metrics.Dropped.Inc()
		}
	}
	a.syncQueueGauge()
	return dropped, nil
}

// ErrBufferFull is returned when a task arrives and neither a slot nor
// buffer space is available.
var ErrBufferFull = errors.New("stream: task buffer full")

// OfferTask routes an arriving task: to the best worker with capacity, or
// into the buffer. It returns the assigned worker's ID, or "" if buffered.
func (a *Assigner) OfferTask(t *core.Task) (string, error) {
	if t == nil || t.Keywords == nil {
		return "", errors.New("stream: nil task or keywords")
	}
	if t.ID == "" {
		return "", errors.New("stream: task with empty ID")
	}
	if a.seen[t.ID] {
		return "", fmt.Errorf("stream: duplicate task %q", t.ID)
	}
	a.metrics.Submitted.Inc()
	bestQ, _, bestRel := a.bestFree(t)
	a.seen[t.ID] = true
	if bestQ == "" {
		if len(a.buffer) >= a.cfg.BufferLimit {
			delete(a.seen, t.ID)
			a.metrics.Dropped.Inc()
			return "", ErrBufferFull
		}
		a.bufferAppend(t)
		a.syncQueueGauge()
		return "", nil
	}
	a.assign(a.workers[bestQ], t, bestRel)
	return bestQ, nil
}

// OfferTaskCtx is OfferTask with trace annotation: when ctx carries a
// sampled trace, the routing decision is recorded as an instantaneous
// event with the post-decision queue depth. A buffered task shows
// worker=""; a full buffer still returns ErrBufferFull.
func (a *Assigner) OfferTaskCtx(ctx context.Context, t *core.Task) (string, error) {
	workerID, err := a.OfferTask(t)
	if err == nil {
		trace.Event(ctx, "stream.offer",
			trace.Str("task", t.ID), trace.Str("worker", workerID),
			trace.Bool("buffered", workerID == ""),
			trace.Int("queue_depth", len(a.buffer)))
	}
	return workerID, err
}

// Complete marks an active task finished; the freed slot immediately pulls
// the best buffered task for that worker, which is returned (nil if the
// buffer is empty).
func (a *Assigner) Complete(workerID, taskID string) (*core.Task, error) {
	ws, ok := a.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("stream: unknown worker %q", workerID)
	}
	idx := -1
	for i, t := range ws.active {
		if t.ID == taskID {
			idx = i
			break
		}
	}
	if idx == -1 {
		return nil, fmt.Errorf("stream: task %q is not active for worker %q", taskID, workerID)
	}
	ws.sumRel -= metric.Relevance(a.cfg.Dist, ws.active[idx].Keywords, ws.worker.Keywords)
	a.removeActive(ws, idx)
	ws.done++
	a.freeCapN.Add(1)
	a.metrics.Completed.Inc()
	return a.pullBest(ws), nil
}

// CompleteCtx is Complete with trace annotation: the completion (and any
// buffered task the freed slot pulled) is recorded as an instantaneous
// event with the post-dequeue queue depth.
func (a *Assigner) CompleteCtx(ctx context.Context, workerID, taskID string) (*core.Task, error) {
	next, err := a.Complete(workerID, taskID)
	if err == nil {
		pulled := ""
		if next != nil {
			pulled = next.ID
		}
		trace.Event(ctx, "stream.complete",
			trace.Str("worker", workerID), trace.Str("task", taskID),
			trace.Str("pulled", pulled), trace.Int("queue_depth", len(a.buffer)))
	}
	return next, err
}

// Objective returns the current total motivation over all active sets —
// the streaming analogue of the batch objective, useful for comparing the
// online decisions against an offline solve on the same data.
func (a *Assigner) Objective() float64 {
	var total float64
	for _, id := range a.order {
		ws := a.workers[id]
		w := ws.worker
		var td float64
		for i := 1; i < len(ws.active); i++ {
			for j := 0; j < i; j++ {
				td += a.cfg.Dist.Distance(ws.active[i].Keywords, ws.active[j].Keywords)
			}
		}
		if len(ws.active) > 0 {
			total += 2*w.Alpha*td + w.Beta*float64(len(ws.active)-1)*ws.sumRel
		}
	}
	return total
}

// Completed returns how many tasks the worker has finished.
func (a *Assigner) Completed(workerID string) (int, error) {
	ws, ok := a.workers[workerID]
	if !ok {
		return 0, fmt.Errorf("stream: unknown worker %q", workerID)
	}
	return ws.done, nil
}

// bestFree picks the registered worker with free capacity that maximizes
// the marginal gain for t. Primary criterion: marginal motivation gain.
// Ties — in particular the first task of an empty set, whose singleton
// motiv is 0 by Equation 3 — break toward the more relevant worker, so
// cold workers start from work that matches their interests. Returns
// ("", ...) when no worker has a free slot. OfferTask, TryAssign and
// BestGain all route through this one selection rule, which is what makes
// the 1-shard engine event-for-event identical to the bare Assigner.
//
// Under Config.DeadlineAware a deadlined task first tries only workers
// whose availability window (if known) outlasts the deadline — pinning
// imminent work to a worker about to depart just bounces it back at
// departure, possibly past the deadline. If every free worker is
// departing too soon the filter is dropped rather than leaving the task
// unplaced.
func (a *Assigner) bestFree(t *core.Task) (id string, gain, rel float64) {
	if a.cfg.DeadlineAware && t.Deadline > 0 {
		if id, gain, rel = a.bestFreeScan(t, t.Deadline); id != "" {
			return id, gain, rel
		}
	}
	return a.bestFreeScan(t, 0)
}

// bestFreeScan is bestFree's selection loop. avoidBefore > 0 additionally
// skips workers whose known availability window ends before that instant.
func (a *Assigner) bestFreeScan(t *core.Task, avoidBefore int64) (id string, gain, rel float64) {
	bestQ, bestGain, bestRel := "", -1.0, -1.0
	for i, wid := range a.order {
		ws := a.states[i]
		if len(ws.active) >= a.cfg.Xmax {
			continue
		}
		if a.cfg.WithTrust && ws.trust <= 0 {
			continue // quarantined: never a candidate
		}
		if avoidBefore > 0 && ws.window > 0 && ws.window < avoidBefore {
			continue // departing before the task's deadline
		}
		g, r := a.scoreFresh(ws, t)
		if a.cfg.WithTrust {
			g *= ws.trust
		}
		if g > bestGain+1e-12 || (g > bestGain-1e-12 && r > bestRel) {
			bestQ, bestGain, bestRel = wid, g, r
		}
	}
	return bestQ, bestGain, bestRel
}

// BestGain scores t against this assigner's workers without mutating any
// state: the scatter half of the sharded engine's routing protocol. It
// returns the best marginal gain and the relevance tiebreak among workers
// with free capacity; ok is false when every worker is full (the gain
// values are then meaningless).
func (a *Assigner) BestGain(t *core.Task) (gain, rel float64, ok bool) {
	id, gain, rel := a.bestFree(t)
	return gain, rel, id != ""
}

// TryAssign assigns t to the best free worker under the same selection
// rule as OfferTask, but never buffers on failure and does not consult
// the duplicate-task set — in the sharded engine deduplication is global
// (the router's job), and a task rejected here will be committed to
// another shard. Returns ("", false) when no worker has a free slot.
func (a *Assigner) TryAssign(t *core.Task) (string, bool) {
	if t == nil || t.Keywords == nil || t.ID == "" {
		return "", false
	}
	id, _, rel := a.bestFree(t)
	if id == "" {
		return "", false
	}
	a.seen[t.ID] = true
	a.assign(a.workers[id], t, rel)
	return id, true
}

// BufferTask parks t in the buffer without attempting assignment — the
// commit half of a routing decision that picked this shard as the least
// loaded. Like TryAssign it skips the local duplicate check (global dedup
// is the caller's job; a stolen task may legitimately return to a shard
// that has seen it before). Returns ErrBufferFull beyond the limit.
func (a *Assigner) BufferTask(t *core.Task) error {
	if t == nil || t.Keywords == nil || t.ID == "" {
		return errors.New("stream: nil task or keywords")
	}
	if len(a.buffer) >= a.cfg.BufferLimit {
		return ErrBufferFull
	}
	a.seen[t.ID] = true
	a.bufferAppend(t)
	a.syncQueueGauge()
	return nil
}

// Buffered returns a copy of the buffer contents in order — snapshotting
// reads it; the tasks themselves are shared.
func (a *Assigner) Buffered() []*core.Task {
	if len(a.buffer) == 0 {
		return nil
	}
	return a.BufferedInto(nil)
}

// BufferedInto appends the buffer contents, in order, to dst and returns
// the extended slice — the allocation-free form of Buffered for callers
// that hold a reusable scratch slice (the snapshot path).
func (a *Assigner) BufferedInto(dst []*core.Task) []*core.Task {
	return append(dst, a.buffer...)
}

// TakeBuffered removes and returns up to n buffered tasks, oldest first —
// the donor half of cross-shard work stealing. The caller owns the
// returned tasks and must re-home them (TryAssign/BufferTask on another
// shard); they are gone from this assigner's accounting.
func (a *Assigner) TakeBuffered(n int) []*core.Task {
	if n <= 0 || len(a.buffer) == 0 {
		return nil
	}
	return a.TakeBufferedInto(n, nil)
}

// TakeBufferedInto is TakeBuffered appending into a caller-supplied
// scratch slice, so a steal moves tasks without allocating a fresh return
// slice per transfer. The donor slots are nilled in one pass as part of
// the order-preserving drop.
func (a *Assigner) TakeBufferedInto(n int, dst []*core.Task) []*core.Task {
	if n <= 0 || len(a.buffer) == 0 {
		return dst
	}
	if n > len(a.buffer) {
		n = len(a.buffer)
	}
	dst = append(dst, a.buffer[:n]...)
	a.bufferDropFront(n)
	a.syncQueueGauge()
	return dst
}

// ForceAssign places t directly on the named worker, bypassing the
// selection rule — snapshot restore uses it to re-materialize active sets
// exactly as they were. Capacity (C1) is still enforced.
func (a *Assigner) ForceAssign(workerID string, t *core.Task) error {
	if t == nil || t.Keywords == nil || t.ID == "" {
		return errors.New("stream: nil task or keywords")
	}
	ws, ok := a.workers[workerID]
	if !ok {
		return fmt.Errorf("stream: unknown worker %q", workerID)
	}
	if len(ws.active) >= a.cfg.Xmax {
		return fmt.Errorf("stream: worker %q is at capacity", workerID)
	}
	a.seen[t.ID] = true
	a.assign(ws, t, metric.Relevance(a.cfg.Dist, t.Keywords, ws.worker.Keywords))
	return nil
}

// RestoreDone seeds the worker's completion counter — snapshot restore
// only; n must be non-negative.
func (a *Assigner) RestoreDone(workerID string, n int) error {
	if n < 0 {
		return fmt.Errorf("stream: negative done count %d", n)
	}
	ws, ok := a.workers[workerID]
	if !ok {
		return fmt.Errorf("stream: unknown worker %q", workerID)
	}
	ws.done += n
	return nil
}

// Trust returns the worker's current trust multiplier (1.0 until SetTrust
// changes it; 0 means quarantined under Config.WithTrust).
func (a *Assigner) Trust(workerID string) (float64, error) {
	ws, ok := a.workers[workerID]
	if !ok {
		return 0, fmt.Errorf("stream: unknown worker %q", workerID)
	}
	return ws.trust, nil
}

// SetTrust updates the worker's trust multiplier. trust must be finite
// and >= 0; 0 quarantines the worker (no new assignments while
// Config.WithTrust is on — its current active set is untouched, matching
// the quality layer's "quarantine blocks future work, keeps collected
// votes" rule). Lifting a quarantine (0 → positive) drains the buffer
// into the worker's free capacity exactly like AddWorker, and the tasks
// assigned by that drain are returned. Without WithTrust the value is
// stored (and round-trips through snapshots) but does not affect scoring.
func (a *Assigner) SetTrust(workerID string, trust float64) ([]*core.Task, error) {
	if trust < 0 || !isFinite(trust) {
		return nil, fmt.Errorf("stream: trust %v, must be finite and >= 0", trust)
	}
	ws, ok := a.workers[workerID]
	if !ok {
		return nil, fmt.Errorf("stream: unknown worker %q", workerID)
	}
	wasQuarantined := ws.trust <= 0
	ws.trust = trust
	if !a.cfg.WithTrust || !wasQuarantined || trust <= 0 {
		return nil, nil
	}
	var assigned []*core.Task
	for len(ws.active) < a.cfg.Xmax {
		t := a.pullBest(ws)
		if t == nil {
			break
		}
		assigned = append(assigned, t)
	}
	if len(assigned) > 0 {
		a.metrics.DrainBatch.Observe(float64(len(assigned)))
	}
	return assigned, nil
}

// isFinite reports x is neither NaN nor ±Inf without importing math.
func isFinite(x float64) bool { return x-x == 0 }

// marginalGain is Δ(q, k) from the package comment.
func (a *Assigner) marginalGain(ws *workerState, t *core.Task) float64 {
	var sumDiv float64
	for _, u := range ws.active {
		sumDiv += a.cfg.Dist.Distance(t.Keywords, u.Keywords)
	}
	rel := metric.Relevance(a.cfg.Dist, t.Keywords, ws.worker.Keywords)
	w := ws.worker
	return 2*w.Alpha*sumDiv + w.Beta*(ws.sumRel+float64(len(ws.active))*rel)
}

// pullBest removes and assigns the buffered task with the best marginal
// gain for the worker; nil when the buffer is empty or the worker is full.
//
// This is the lazily-repaired score index at work: instead of re-running
// marginalGain per buffered task (an O(|active|) distance loop each), the
// scan folds the worker's cached divSum and rel columns with two scalars —
// pure arithmetic over flat float64 slices. A heap would not help here:
// assigning the pulled task changes every remaining gain for this worker
// (divSum shifts non-uniformly), so keys go stale after every pop and the
// repaired scan is the cheapest correct structure.
func (a *Assigner) pullBest(ws *workerState) *core.Task {
	if len(a.buffer) == 0 || len(ws.active) >= a.cfg.Xmax {
		return nil
	}
	// A quarantined worker's freed slot pulls nothing. (When trust is
	// positive it needs no gain scaling here: a constant per-worker factor
	// cannot change which buffered task wins this worker's argmax.)
	if a.cfg.WithTrust && ws.trust <= 0 {
		return nil
	}
	// Deadlines in the buffer under DeadlineAware divert to the
	// earliest-feasible-first scan (deadline.go); a deadline-free buffer
	// stays on the unrolled fast path below, whose decisions the ordered
	// scan reproduces exactly when no task is urgent.
	if a.cfg.DeadlineAware && a.deadlined > 0 {
		return a.pullBestDeadline(ws)
	}
	// The fold below adds the cached rows in slot order — the order
	// marginalGain sums in — and hoists 2α and β without regrouping the
	// gain expression, so rounding is identical to a from-scratch
	// recompute. The common row counts are unrolled (reslicing the rows
	// to len(rel) lets the compiler drop their bounds checks): with Xmax
	// in the single digits this scan is the hottest loop in the package.
	w := ws.worker
	twoAlpha, beta := 2*w.Alpha, w.Beta
	sumRel, n := ws.sumRel, float64(len(ws.active))
	rel := ws.rel
	bestI, bestGain := -1, -1.0
	switch len(ws.rows) {
	case 0:
		for i, rl := range rel {
			if g := twoAlpha*0 + beta*(sumRel+n*rl); g > bestGain {
				bestI, bestGain = i, g
			}
		}
	case 1:
		r0 := ws.rows[0][:len(rel)]
		for i, rl := range rel {
			if g := twoAlpha*r0[i] + beta*(sumRel+n*rl); g > bestGain {
				bestI, bestGain = i, g
			}
		}
	case 2:
		r0, r1 := ws.rows[0][:len(rel)], ws.rows[1][:len(rel)]
		for i, rl := range rel {
			if g := twoAlpha*(r0[i]+r1[i]) + beta*(sumRel+n*rl); g > bestGain {
				bestI, bestGain = i, g
			}
		}
	case 3:
		r0, r1, r2 := ws.rows[0][:len(rel)], ws.rows[1][:len(rel)], ws.rows[2][:len(rel)]
		for i, rl := range rel {
			if g := twoAlpha*(r0[i]+r1[i]+r2[i]) + beta*(sumRel+n*rl); g > bestGain {
				bestI, bestGain = i, g
			}
		}
	default:
		rows := ws.rows
		for i, rl := range rel {
			var ds float64
			for _, r := range rows {
				ds += r[i]
			}
			if g := twoAlpha*ds + beta*(sumRel+n*rl); g > bestGain {
				bestI, bestGain = i, g
			}
		}
	}
	t := a.buffer[bestI]
	relT := ws.rel[bestI]
	a.bufferSwapRemove(bestI)
	a.syncQueueGauge()
	a.assign(ws, t, relT)
	return t
}

// assign commits t to the worker: the cache gains an active slot (one
// packed row over the remaining buffer) and sumRel extends by the cached
// relevance, which is bit-identical to recomputing it.
func (a *Assigner) assign(ws *workerState, t *core.Task, rel float64) {
	a.addActive(ws, t)
	ws.sumRel += rel
	a.freeCapN.Add(-1)
	a.metrics.Delivered.Inc()
}
