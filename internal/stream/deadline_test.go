package stream

import (
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
)

// dtask is task() with a deadline attached.
func dtask(id string, deadline int64, kw ...int) *core.Task {
	t := task(id, kw...)
	t.Deadline = deadline
	return t
}

// logicalClock returns a Now func reading a mutable instant.
func logicalClock(now *int64) func() int64 {
	return func() int64 { return *now }
}

func TestExpireDueRemovesAndCounts(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	a := mustAssigner(t, Config{Xmax: 1, Metrics: m})
	// No workers: everything buffers.
	for _, tk := range []*core.Task{
		dtask("t1", 100, 0), dtask("t2", 200, 1), task("t3", 2), dtask("t4", 50, 3),
	} {
		if _, err := a.OfferTask(tk); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.DeadlinedBuffered(); got != 3 {
		t.Fatalf("DeadlinedBuffered = %d, want 3", got)
	}
	expired := a.ExpireDue(100)
	if len(expired) != 2 {
		t.Fatalf("expired %d tasks, want 2 (t1, t4)", len(expired))
	}
	ids := map[string]bool{}
	for _, tk := range expired {
		ids[tk.ID] = true
	}
	if !ids["t1"] || !ids["t4"] {
		t.Fatalf("expired %v, want t1 and t4", ids)
	}
	if a.BufferLen() != 2 || a.DeadlinedBuffered() != 1 {
		t.Fatalf("buffer = %d (deadlined %d), want 2 (1)", a.BufferLen(), a.DeadlinedBuffered())
	}
	if got := m.Expired.Value(); got != 2 {
		t.Fatalf("Expired metric = %v, want 2", got)
	}
	// Expired IDs stay in the duplicate set.
	if _, err := a.OfferTask(dtask("t1", 900, 0)); err == nil {
		t.Fatal("resubmitting an expired ID succeeded")
	}
	// Nothing due → no-op fast path.
	if again := a.ExpireDue(100); again != nil {
		t.Fatalf("second ExpireDue returned %v, want nil", again)
	}
}

func TestDeadlinePullEarliestFirstGainTiebreak(t *testing.T) {
	now := int64(1000)
	a := mustAssigner(t, Config{
		Xmax: 4, DeadlineAware: true, UrgencyHorizon: 500, Now: logicalClock(&now),
	})
	// Buffer before any worker exists. t-late has the best relevance for
	// the worker, but t-soon's deadline is earlier; both are urgent.
	if _, err := a.OfferTask(dtask("t-late", 1400, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(dtask("t-soon", 1200, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(task("t-none", 0, 1)); err != nil {
		t.Fatal(err)
	}
	assigned, err := a.AddWorker(wrk("w1", 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) != 3 {
		t.Fatalf("drained %d tasks, want 3", len(assigned))
	}
	// Urgent EDF first (t-soon, then t-late), undeadlined last.
	if assigned[0].ID != "t-soon" || assigned[1].ID != "t-late" || assigned[2].ID != "t-none" {
		t.Fatalf("pull order = %s, %s, %s; want t-soon, t-late, t-none",
			assigned[0].ID, assigned[1].ID, assigned[2].ID)
	}
}

func TestDeadlinePullSkipsExpired(t *testing.T) {
	now := int64(1000)
	a := mustAssigner(t, Config{
		Xmax: 2, DeadlineAware: true, UrgencyHorizon: 500, Now: logicalClock(&now),
	})
	if _, err := a.OfferTask(dtask("t-dead", 900, 0)); err != nil {
		t.Fatal(err)
	}
	assigned, err := a.AddWorker(wrk("w1", 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) != 0 {
		t.Fatalf("pulled %d tasks, want 0 (only buffered task is past deadline)", len(assigned))
	}
	if got := a.ExpireDue(now); len(got) != 1 || got[0].ID != "t-dead" {
		t.Fatalf("ExpireDue = %v, want [t-dead]", got)
	}
}

func TestWindowAvoidsDepartingWorker(t *testing.T) {
	now := int64(0)
	a := mustAssigner(t, Config{
		Xmax: 1, DeadlineAware: true, UrgencyHorizon: 1000, Now: logicalClock(&now),
	})
	// w-leaving matches the task perfectly but departs at 500; w-staying is
	// a worse match with no known window.
	if _, err := a.AddWorker(wrk("w-leaving", 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddWorker(wrk("w-staying", 0, 5, 6)); err != nil {
		t.Fatal(err)
	}
	if err := a.SetWindow("w-leaving", 500); err != nil {
		t.Fatal(err)
	}
	if w, _ := a.Window("w-leaving"); w != 500 {
		t.Fatalf("Window = %d, want 500", w)
	}
	q, err := a.OfferTask(dtask("t1", 800, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if q != "w-staying" {
		t.Fatalf("deadlined task pinned to %q, want w-staying (w-leaving departs first)", q)
	}
	// Fallback: when every free worker departs before the deadline, the
	// task must still place rather than sit unassigned.
	q, err = a.OfferTask(dtask("t2", 800, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if q != "w-leaving" {
		t.Fatalf("fallback pinned to %q, want w-leaving (only free worker)", q)
	}
	// Undeadlined tasks ignore windows entirely.
	if err := a.SetWindow("w-staying", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete("w-leaving", "t2"); err != nil {
		t.Fatal(err)
	}
	q, err = a.OfferTask(task("t3", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if q != "w-leaving" {
		t.Fatalf("undeadlined task pinned to %q, want w-leaving (best gain)", q)
	}
}

// TestDeadlineAwareNoDeadlinesBitIdentical drives two assigners — flag on
// and flag off — through the same random deadline-free event stream and
// requires identical decisions at every step: the flag alone must not
// change behaviour.
func TestDeadlineAwareNoDeadlinesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := mustAssigner(t, Config{Xmax: 3, BufferLimit: 64})
	aware := mustAssigner(t, Config{Xmax: 3, BufferLimit: 64, DeadlineAware: true})
	for w := 0; w < 4; w++ {
		id := "w" + string(rune('a'+w))
		kw := []int{rng.Intn(32), rng.Intn(32), rng.Intn(32)}
		wb := wrk(id, 0.5, kw...)
		wa := wrk(id, 0.5, kw...)
		if _, err := base.AddWorker(wb); err != nil {
			t.Fatal(err)
		}
		if _, err := aware.AddWorker(wa); err != nil {
			t.Fatal(err)
		}
	}
	active := map[string][]string{} // worker -> active task IDs (mirrors both)
	for i := 0; i < 500; i++ {
		if rng.Intn(3) < 2 {
			id := "t" + itoa(i)
			kw := []int{rng.Intn(32), rng.Intn(32)}
			q1, err1 := base.OfferTask(task(id, kw...))
			q2, err2 := aware.OfferTask(task(id, kw...))
			if q1 != q2 || (err1 == nil) != (err2 == nil) {
				t.Fatalf("event %d: offer diverged: (%q, %v) vs (%q, %v)", i, q1, err1, q2, err2)
			}
			if q1 != "" {
				active[q1] = append(active[q1], id)
			}
		} else {
			// Complete a random active task.
			var ids []string
			for w, ts := range active {
				if len(ts) > 0 {
					ids = append(ids, w)
				}
			}
			if len(ids) == 0 {
				continue
			}
			w := ids[rng.Intn(len(ids))]
			tid := active[w][0]
			active[w] = active[w][1:]
			n1, err1 := base.Complete(w, tid)
			n2, err2 := aware.Complete(w, tid)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("event %d: complete diverged: %v vs %v", i, err1, err2)
			}
			if (n1 == nil) != (n2 == nil) || (n1 != nil && n1.ID != n2.ID) {
				t.Fatalf("event %d: pull diverged: %v vs %v", i, n1, n2)
			}
			if n1 != nil {
				active[w] = append(active[w], n1.ID)
			}
		}
	}
}

// TestDeadlinePressureDoesNotStarveUndeadlined floods the assigner with a
// continuous stream of urgent deadlined tasks while a handful of
// undeadlined tasks wait, and asserts every undeadlined task is delivered
// once the urgent pressure clears a slot — urgency delays, never starves,
// because urgent work either ships or expires by its own deadline.
func TestDeadlinePressureDoesNotStarveUndeadlined(t *testing.T) {
	now := int64(0)
	a := mustAssigner(t, Config{
		Xmax: 1, BufferLimit: 256, DeadlineAware: true,
		UrgencyHorizon: 1 << 60, Now: logicalClock(&now),
	})
	if _, err := a.AddWorker(wrk("w1", 0.5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	plain := map[string]bool{}
	delivered := map[string]bool{}
	for i := 0; i < 5; i++ {
		id := "plain" + itoa(i)
		plain[id] = true
		q, err := a.OfferTask(task(id, 0, 1))
		if err != nil {
			t.Fatal(err)
		}
		if q != "" {
			delivered[id] = true
		}
	}
	mark := func(tk *core.Task) {
		if tk != nil {
			delivered[tk.ID] = true
		}
	}
	// The worker's slot is occupied by the first plain task already? No:
	// Xmax=1 and the first offer above went to the free slot.
	urgent := 0
	for round := 0; round < 400; round++ {
		now += 10
		// Keep urgent pressure on: two new urgent tasks per completion.
		for j := 0; j < 2; j++ {
			id := "urgent" + itoa(urgent)
			urgent++
			if _, err := a.OfferTask(dtask(id, now+300, 0, 1)); err != nil {
				t.Fatal(err)
			}
		}
		a.ExpireDue(now)
		// Complete whatever is active, pulling the next task.
		acts, _ := a.Active("w1")
		for _, tid := range acts {
			next, err := a.Complete("w1", tid)
			if err != nil {
				t.Fatal(err)
			}
			mark(next)
		}
	}
	// Drain: stop offering, let the backlog clear.
	for i := 0; i < 300; i++ {
		now += 10
		a.ExpireDue(now)
		acts, _ := a.Active("w1")
		for _, tid := range acts {
			next, err := a.Complete("w1", tid)
			if err != nil {
				t.Fatal(err)
			}
			mark(next)
		}
	}
	for id := range plain {
		if !delivered[id] {
			// The first plain task was assigned directly, never "pulled".
			if acts, _ := a.Active("w1"); len(acts) == 1 && acts[0] == id {
				continue
			}
			t.Errorf("undeadlined task %s starved (never delivered)", id)
		}
	}
}

// itoa is strconv.Itoa for small non-negative ints without the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
