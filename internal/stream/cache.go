package stream

// The incremental gain cache: the zero-allocation machinery that turns
// pullBest from an O(|buffer|·|active|) distance rescan per freed slot
// into an O(|buffer|) arithmetic scan, and OfferTask scoring from
// per-pair interface dispatch into packed-row kernels.
//
// Δ(q, k) = 2α·Σ_{u∈active(q)} d(k,u) + β·(TR_q + |active(q)|·rel(q,k))
// decomposes into terms with different lifetimes:
//
//   - rel(q, k) never changes while k sits in the buffer → cached once
//     per (worker, buffered task) on insertion;
//   - Σ d(k, u) changes only when *that worker's* active set changes →
//     cached as one distance row per active slot (rows[s][i] = d(buffer[i],
//     active[s])); pullBest folds the ≤Xmax row streams in slot order on
//     the fly, so slot removal is O(1) (a float sum cannot be un-added
//     exactly, and an eagerly maintained fold would need a full rebuild
//     per removal);
//   - TR_q (sumRel) and |active(q)| are per-worker scalars the assigner
//     already maintains.
//
// Exactness invariant: every cached value is bit-identical to a
// from-scratch recompute. Rows hold the same floats Distance returns
// (metric.Row's contract) and are folded left-to-right in active-slot
// order — the same order marginalGain sums in — so the cached scan makes
// exactly the decisions the uncached scan would, epsilon tie-breaks
// included. A property test pins cached == recomputed under random ops.
//
// The cache assumes d is symmetric (a metric axiom VerifyMetric checks):
// rows are filled from whichever side of the pair is the shared operand.
//
// Allocation discipline: row slices come from a free list, pack mirrors
// and per-worker slices shrink by truncation and regrow into retained
// capacity, so steady-state offer/complete traffic allocates nothing
// (enforced by testing.AllocsPerRun in alloc_test.go).

import (
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
)

// getRow hands out a row slice of length n from the free list.
func (a *Assigner) getRow(n int) []float64 {
	if k := len(a.rowPool); k > 0 {
		r := a.rowPool[k-1]
		a.rowPool[k-1] = nil
		a.rowPool = a.rowPool[:k-1]
		if cap(r) < n {
			return make([]float64, n, 2*n)
		}
		return r[:n]
	}
	return make([]float64, n)
}

// putRow returns a row slice to the free list.
func (a *Assigner) putRow(r []float64) {
	a.rowPool = append(a.rowPool, r[:0])
}

// growScratch returns scratch resized to exactly n, reusing capacity.
func growScratch(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n, 2*n)
	}
	return s[:n]
}

// bufferAppend adds t to the buffer and extends every worker's cache:
// one packed-row call prices t against all workers (rel) and one small
// row per worker prices it against that worker's active set (the
// per-slot rows).
func (a *Assigner) bufferAppend(t *core.Task) {
	a.buffer = append(a.buffer, t)
	a.bufPack.Append(t.Keywords)
	if t.Deadline > 0 {
		a.deadlined++
	}
	if len(a.order) == 0 {
		return
	}
	a.scratchW = growScratch(a.scratchW, len(a.order))
	metric.Row(a.cfg.Dist, t.Keywords, &a.wkrPack, a.workerKw, a.scratchW)
	for k, ws := range a.states {
		ws.rel = append(ws.rel, 1-a.scratchW[k])
		if n := len(ws.active); n > 0 {
			a.scratchA = growScratch(a.scratchA, n)
			metric.Row(a.cfg.Dist, t.Keywords, &ws.activePack, ws.activeKw, a.scratchA)
			for s := 0; s < n; s++ {
				ws.rows[s] = append(ws.rows[s], a.scratchA[s])
			}
		}
	}
}

// bufferSwapRemove evicts buffer index i by moving the last entry into its
// slot — the pull-side removal — and mirrors the move through the pack and
// every worker's cache columns.
func (a *Assigner) bufferSwapRemove(i int) {
	last := len(a.buffer) - 1
	if a.buffer[i].Deadline > 0 {
		a.deadlined--
	}
	a.buffer[i] = a.buffer[last]
	a.buffer[last] = nil
	a.buffer = a.buffer[:last]
	a.bufPack.SwapRemove(i)
	for _, ws := range a.states {
		ws.rel[i] = ws.rel[last]
		ws.rel = ws.rel[:last]
		for s, r := range ws.rows {
			r[i] = r[last]
			ws.rows[s] = r[:last]
		}
	}
}

// bufferDropFront removes the first k buffered tasks in order — the donor
// side of TakeBuffered — nilling the vacated slots in one pass and
// mirroring the shift through every cache column.
func (a *Assigner) bufferDropFront(k int) {
	rest := len(a.buffer) - k
	for _, t := range a.buffer[:k] {
		if t.Deadline > 0 {
			a.deadlined--
		}
	}
	copy(a.buffer, a.buffer[k:])
	for i := rest; i < len(a.buffer); i++ {
		a.buffer[i] = nil
	}
	a.buffer = a.buffer[:rest]
	a.bufPack.DropFront(k)
	for _, ws := range a.states {
		copy(ws.rel, ws.rel[k:])
		ws.rel = ws.rel[:rest]
		for s, r := range ws.rows {
			copy(r, r[k:])
			ws.rows[s] = r[:rest]
		}
	}
}

// addActive appends t as the worker's newest active slot: one packed row
// over the buffer becomes the slot's cache row.
func (a *Assigner) addActive(ws *workerState, t *core.Task) {
	row := a.getRow(len(a.buffer))
	metric.RowP(a.cfg.Dist, t.Keywords, &a.bufPack, a.bufKw, row, a.cfg.Parallelism)
	ws.rows = append(ws.rows, row)
	ws.activePack.Append(t.Keywords)
	ws.active = append(ws.active, t)
}

// removeActive drops active slot idx (order-preserving, matching the
// active slice): the slot's row goes back to the free list and the later
// rows shift down — no sums to repair, since pullBest folds on read.
func (a *Assigner) removeActive(ws *workerState, idx int) {
	ws.activePack.RemoveAt(idx)
	a.putRow(ws.rows[idx])
	copy(ws.rows[idx:], ws.rows[idx+1:])
	ws.rows[len(ws.rows)-1] = nil
	ws.rows = ws.rows[:len(ws.rows)-1]
	ws.active = append(ws.active[:idx], ws.active[idx+1:]...)
}

// releaseWorkerCache returns a departing worker's rows to the free list.
func (a *Assigner) releaseWorkerCache(ws *workerState) {
	for s, r := range ws.rows {
		a.putRow(r)
		ws.rows[s] = nil
	}
	ws.rows = nil
	ws.rel = nil
}

// scoreFresh prices a task that is not in the buffer (an arriving offer)
// against one worker: the same Δ(q, k) the cache stores, computed through
// the pack kernel over the worker's active set in slot order.
func (a *Assigner) scoreFresh(ws *workerState, t *core.Task) (gain, rel float64) {
	var sumDiv float64
	if n := len(ws.active); n > 0 {
		a.scratchA = growScratch(a.scratchA, n)
		metric.Row(a.cfg.Dist, t.Keywords, &ws.activePack, ws.activeKw, a.scratchA)
		for _, v := range a.scratchA {
			sumDiv += v
		}
	}
	rel = metric.Relevance(a.cfg.Dist, t.Keywords, ws.worker.Keywords)
	w := ws.worker
	return 2*w.Alpha*sumDiv + w.Beta*(ws.sumRel+float64(len(ws.active))*rel), rel
}
