package stream

import (
	"fmt"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/workload"
)

// newSteadyAssigner builds the saturated steady state the alloc tests
// measure: every worker at capacity and the buffer filled to depth, with
// one slot of headroom for the offer-then-evict transient.
func newSteadyAssigner(t *testing.T, nWorkers, xmax, depth int) *Assigner {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAssigner(Config{
		Xmax:        xmax,
		BufferLimit: depth + 1,
		Metrics:     NewMetrics(obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range gen.Workers(nWorkers) {
		if _, err := a.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	fill := nWorkers*xmax + depth
	for _, tk := range gen.Tasks(fill/8+2, 8)[:fill] {
		if _, err := a.OfferTask(tk); err != nil {
			t.Fatal(err)
		}
	}
	if a.BufferLen() < depth || a.FreeCapacity() != 0 {
		t.Fatalf("fill: depth %d free %d", a.BufferLen(), a.FreeCapacity())
	}
	return a
}

// supplyTasks pre-creates n tasks (reusing buffered keyword sets, so no
// allocation is attributable to the tasks themselves) and prewarms the
// duplicate filter with their IDs.
func supplyTasks(a *Assigner, prefix string, n int) []*core.Task {
	tasks := make([]*core.Task, n)
	for i := range tasks {
		tasks[i] = &core.Task{ID: fmt.Sprintf("%s-%d", prefix, i), Keywords: a.buffer[i%a.BufferLen()].Keywords}
	}
	prewarmSeen(a, tasks)
	return tasks
}

// TestOfferTaskSteadyStateAllocFree pins the buffered-arrival path to zero
// allocations: once the pack mirrors, scratch rows and the duplicate
// filter have grown to working size, pricing a task against every worker
// and appending it to every cache column must not touch the heap.
func TestOfferTaskSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	const depth, runs, warm = 256, 200, 8
	a := newSteadyAssigner(t, 16, 4, depth)
	tasks := supplyTasks(a, "alloc-offer", warm+runs+1)
	next := 0
	step := func() {
		if _, err := a.OfferTask(tasks[next]); err != nil {
			t.Fatal(err)
		}
		next++
		a.bufferSwapRemove(len(a.buffer) - 1)
	}
	for i := 0; i < warm; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(runs, step); avg != 0 {
		t.Fatalf("OfferTask steady state allocates %.2f per op, want 0", avg)
	}
}

// TestCompleteTaskSteadyStateAllocFree pins the complete-and-pull path —
// drop an active slot, fold the cached rows over the whole backlog, pull
// the winner, then restore depth with a buffered offer — to zero
// allocations in steady state.
func TestCompleteTaskSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	const depth, runs = 256, 200
	a := newSteadyAssigner(t, 16, 4, depth)
	warm := len(a.order) // one full round so every worker's rows recycle once
	tasks := supplyTasks(a, "alloc-complete", warm+runs+1)
	next := 0
	step := func() {
		id := a.order[next%len(a.order)]
		ws := a.workers[id]
		pulled, err := a.Complete(id, ws.active[0].ID)
		if err != nil {
			t.Fatal(err)
		}
		if pulled == nil {
			t.Fatal("empty buffer mid-run")
		}
		if _, err := a.OfferTask(tasks[next]); err != nil {
			t.Fatal(err)
		}
		next++
	}
	for i := 0; i < warm; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(runs, step); avg != 0 {
		t.Fatalf("Complete+Offer steady state allocates %.2f per op, want 0", avg)
	}
}

// TestBestGainAllocFree pins the read-only scatter probe to zero
// allocations — it is called once per shard per offer by the router, so
// even one allocation would multiply across the fleet.
func TestBestGainAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	a := newSteadyAssigner(t, 16, 4, 256)
	tk := &core.Task{ID: "alloc-probe", Keywords: a.buffer[0].Keywords}
	if avg := testing.AllocsPerRun(200, func() { a.BestGain(tk) }); avg != 0 {
		t.Fatalf("BestGain allocates %.2f per op, want 0", avg)
	}
}
