package stream

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/workload"
)

// checkCache compares every cached value against a from-scratch recompute
// and fails on the first mismatch. Equality is exact (==, not epsilon):
// the gain cache's contract is bit-identical floats, so the cached scan
// provably makes the same decisions — including the 1e-12 tie-breaks — as
// the uncached one.
func checkCache(t *testing.T, a *Assigner, when string) {
	t.Helper()
	for k, ws := range a.states {
		if a.workers[a.order[k]] != ws {
			t.Fatalf("%s: states[%d] out of sync with order/workers", when, k)
		}
		if len(ws.rel) != len(a.buffer) {
			t.Fatalf("%s: worker %s rel has %d entries, buffer %d", when, a.order[k], len(ws.rel), len(a.buffer))
		}
		if len(ws.rows) != len(ws.active) {
			t.Fatalf("%s: worker %s has %d rows for %d active", when, a.order[k], len(ws.rows), len(ws.active))
		}
		for i, tk := range a.buffer {
			if want := metric.Relevance(a.cfg.Dist, tk.Keywords, ws.worker.Keywords); ws.rel[i] != want {
				t.Fatalf("%s: worker %s rel[%d] = %v, recompute %v", when, a.order[k], i, ws.rel[i], want)
			}
			for s, u := range ws.active {
				if want := a.cfg.Dist.Distance(tk.Keywords, u.Keywords); ws.rows[s][i] != want {
					t.Fatalf("%s: worker %s rows[%d][%d] = %v, recompute %v", when, a.order[k], s, i, ws.rows[s][i], want)
				}
			}
			// The cached scan's gain, folded exactly as pullBest folds it,
			// must equal marginalGain's from-scratch sum.
			var ds float64
			for _, r := range ws.rows {
				ds += r[i]
			}
			w := ws.worker
			g := 2*w.Alpha*ds + w.Beta*(ws.sumRel+float64(len(ws.active))*ws.rel[i])
			if want := a.marginalGain(ws, tk); g != want {
				t.Fatalf("%s: worker %s cached gain for buffer[%d] = %v, marginalGain %v", when, a.order[k], i, g, want)
			}
		}
	}
}

// TestCacheSurvivesWorkerChurnMidBacklog is the invalidation case the
// cache must get right with a deep backlog in play: a worker departs with
// active tasks, which requeue through the buffer; surviving workers'
// caches must grow exact columns for them, and a re-arriving worker must
// seed a fresh cache over the whole backlog.
func TestCacheSurvivesWorkerChurnMidBacklog(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 2, BufferLimit: 64, Metrics: NewMetrics(obs.NewRegistry())})
	for i := 0; i < 4; i++ {
		if _, err := a.AddWorker(wrk(fmt.Sprintf("w%d", i), 0.5, i, i+3, i+7)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := a.OfferTask(task(fmt.Sprintf("t%d", i), i%11, (i+5)%17, (i+9)%23)); err != nil {
			t.Fatal(err)
		}
	}
	checkCache(t, a, "after fill")

	// Depart a loaded worker: its active tasks return to the buffer.
	if len(a.workers["w1"].active) == 0 {
		t.Fatal("w1 has no active tasks; workload does not exercise requeue")
	}
	if _, err := a.RemoveWorker("w1"); err != nil {
		t.Fatal(err)
	}
	checkCache(t, a, "after departure requeue")

	// Re-arrival drains the backlog into the new worker and must seed its
	// rel cache over the remaining buffer.
	if _, err := a.AddWorker(wrk("w1b", 0.3, 1, 2, 12)); err != nil {
		t.Fatal(err)
	}
	checkCache(t, a, "after re-arrival drain")
}

// TestCacheAfterForceAssignAndRestore pins the snapshot-restore path:
// ForceAssign bypasses the selection rule but must still build the active
// rows, so a later Complete pulls exactly what a fresh assigner would.
func TestCacheAfterForceAssignAndRestore(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 3, BufferLimit: 32, Metrics: NewMetrics(obs.NewRegistry())})
	if _, err := a.AddWorker(wrk("q", 0.6, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.ForceAssign("q", task(fmt.Sprintf("restored%d", i), i, i+4, i+8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.RestoreDone("q", 5); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := a.BufferTask(task(fmt.Sprintf("buf%d", i), i+2, i+9, i+17)); err != nil {
			t.Fatal(err)
		}
	}
	checkCache(t, a, "after restore")

	next, err := a.Complete("q", "restored1")
	if err != nil {
		t.Fatal(err)
	}
	if next == nil {
		t.Fatal("no pull from a non-empty buffer")
	}
	checkCache(t, a, "after complete on restored state")
}

// TestCachedGainsMatchRecomputeUnderRandomOps is the property test behind
// the whole cache design: under a random interleaving of offers,
// completes, arrivals, departures and steals, every cached rel, row and
// folded gain stays bitwise equal to a from-scratch recompute.
func TestCachedGainsMatchRecomputeUnderRandomOps(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	a := mustAssigner(t, Config{Xmax: 3, BufferLimit: 48, Metrics: NewMetrics(obs.NewRegistry())})
	pool := gen.Workers(12)
	present := make(map[string]*core.Worker)
	taskN := 0
	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // offer
			kws := gen.Tasks(1, 4)
			tk := kws[0]
			tk.ID = fmt.Sprintf("p%d", taskN)
			taskN++
			if _, err := a.OfferTask(tk); err != nil && err != ErrBufferFull {
				t.Fatalf("step %d: offer: %v", step, err)
			}
		case op < 7: // complete a random active task
			if len(a.order) == 0 {
				continue
			}
			id := a.order[rng.Intn(len(a.order))]
			ws := a.workers[id]
			if len(ws.active) == 0 {
				continue
			}
			if _, err := a.Complete(id, ws.active[rng.Intn(len(ws.active))].ID); err != nil {
				t.Fatalf("step %d: complete: %v", step, err)
			}
		case op < 8: // worker arrives
			w := pool[rng.Intn(len(pool))]
			if _, here := present[w.ID]; here {
				continue
			}
			if _, err := a.AddWorker(w); err != nil {
				t.Fatalf("step %d: add: %v", step, err)
			}
			present[w.ID] = w
		case op < 9: // worker departs mid-backlog
			if len(a.order) == 0 {
				continue
			}
			id := a.order[rng.Intn(len(a.order))]
			if _, err := a.RemoveWorker(id); err != nil {
				t.Fatalf("step %d: remove: %v", step, err)
			}
			delete(present, id)
		default: // steal-shaped drain from the buffer front
			a.TakeBufferedInto(1+rng.Intn(3), nil)
		}
		checkCache(t, a, fmt.Sprintf("step %d", step))
	}
}
