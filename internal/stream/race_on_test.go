//go:build race

package stream

// raceEnabled reports whether the race detector is instrumenting this
// build; allocation-count tests skip under it.
const raceEnabled = true
