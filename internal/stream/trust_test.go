package stream

import (
	"math"
	"testing"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
)

func trustWorker(id string, universe int, kw ...int) *core.Worker {
	return &core.Worker{ID: id, Alpha: 0.5, Beta: 0.5,
		Keywords: bitset.FromIndices(universe, kw...)}
}

func trustTask(id string, universe int, kw ...int) *core.Task {
	return &core.Task{ID: id, Keywords: bitset.FromIndices(universe, kw...)}
}

// TestWithTrustBiasesRouting: two workers equally placed except for
// trust — the trusted one must win the offer, because trust multiplies
// the marginal gain.
func TestWithTrustBiasesRouting(t *testing.T) {
	a, err := NewAssigner(Config{Xmax: 2, WithTrust: true, Metrics: NewMetrics(obs.NewRegistry())})
	if err != nil {
		t.Fatal(err)
	}
	// Identical keyword profiles: without trust the tie would break by
	// relevance (equal) and then arrival order.
	if _, err := a.AddWorker(trustWorker("w-low", 16, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddWorker(trustWorker("w-high", 16, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Seed both with one active task so marginal gains are positive.
	if _, err := a.OfferTask(trustTask("seed1", 16, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(trustTask("seed2", 16, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetTrust("w-low", 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetTrust("w-high", 0.9); err != nil {
		t.Fatal(err)
	}
	wid, err := a.OfferTask(trustTask("probe", 16, 0, 1, 5))
	if err != nil {
		t.Fatal(err)
	}
	if wid != "w-high" {
		t.Fatalf("offer went to %q, want the higher-trust worker", wid)
	}
}

// TestQuarantineBlocksAssignmentAndLiftDrains: a trust-0 worker receives
// nothing — offers buffer rather than assign, completions pull nothing —
// and lifting the quarantine drains the backlog like a fresh AddWorker.
func TestQuarantineBlocksAssignmentAndLiftDrains(t *testing.T) {
	a, err := NewAssigner(Config{Xmax: 2, WithTrust: true, Metrics: NewMetrics(obs.NewRegistry())})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddWorker(trustWorker("w0", 16, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(trustTask("t-before", 16, 0, 3)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetTrust("w0", 0); err != nil {
		t.Fatal(err)
	}
	// New offers must buffer: the only worker is quarantined.
	for _, id := range []string{"t1", "t2"} {
		wid, err := a.OfferTask(trustTask(id, 16, 0, 2))
		if err != nil {
			t.Fatal(err)
		}
		if wid != "" {
			t.Fatalf("task %s assigned to quarantined worker %q", id, wid)
		}
	}
	// Completing the pre-quarantine task frees a slot, but the freed slot
	// must not pull from the buffer.
	next, err := a.Complete("w0", "t-before")
	if err != nil {
		t.Fatal(err)
	}
	if next != nil {
		t.Fatalf("quarantined worker pulled %q from the buffer", next.ID)
	}
	if v, _ := a.Trust("w0"); v != 0 {
		t.Fatalf("Trust = %v, want 0", v)
	}
	// Lifting the quarantine drains the buffer up to Xmax.
	drained, err := a.SetTrust("w0", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(drained) != 2 {
		t.Fatalf("lift drained %d tasks, want 2", len(drained))
	}
	if v, _ := a.Trust("w0"); v != 0.8 {
		t.Fatalf("Trust = %v, want 0.8", v)
	}
}

// TestTrustOffPathIsUnaffected: without WithTrust the stored trust value
// must not change routing — the trust-free configuration stays
// bit-identical to the pre-trust assigner.
func TestTrustOffPathIsUnaffected(t *testing.T) {
	a, err := NewAssigner(Config{Xmax: 1, Metrics: NewMetrics(obs.NewRegistry())})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddWorker(trustWorker("w0", 16, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.SetTrust("w0", 0); err != nil {
		t.Fatal(err)
	}
	// Trust 0 without WithTrust: the worker still gets the offer.
	wid, err := a.OfferTask(trustTask("t0", 16, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if wid != "w0" {
		t.Fatalf("offer went to %q; trust must be inert without WithTrust", wid)
	}
}

func TestSetTrustValidation(t *testing.T) {
	a, err := NewAssigner(Config{Xmax: 1, WithTrust: true, Metrics: NewMetrics(obs.NewRegistry())})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddWorker(trustWorker("w0", 16, 0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := a.SetTrust("w0", bad); err == nil {
			t.Fatalf("SetTrust(%v) accepted", bad)
		}
	}
	if _, err := a.SetTrust("ghost", 1); err == nil {
		t.Fatal("SetTrust on unknown worker accepted")
	}
	if _, err := a.Trust("ghost"); err == nil {
		t.Fatal("Trust on unknown worker accepted")
	}
}
