package stream

import (
	"errors"
	"testing"

	"github.com/htacs/ata/internal/core"
)

// Tests for the sharding support surface: the lock-free load accessors
// (Backlog, FreeCapacity) and the routing primitives (BestGain,
// TryAssign, BufferTask, TakeBuffered, Buffered, ForceAssign,
// RestoreDone) the shard engine composes the bare assigner from.

func TestBacklogAndFreeCapacityTrackState(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 2, BufferLimit: 4})
	if a.Backlog() != 0 || a.FreeCapacity() != 0 {
		t.Fatalf("fresh assigner: backlog %d free %d", a.Backlog(), a.FreeCapacity())
	}
	if _, err := a.AddWorker(wrk("w1", 0.5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if a.FreeCapacity() != 2 {
		t.Fatalf("free = %d after adding Xmax=2 worker", a.FreeCapacity())
	}
	for i, id := range []string{"t1", "t2", "t3"} {
		if _, err := a.OfferTask(task(id, 0, 1)); err != nil {
			t.Fatal(err)
		}
		wantFree, wantBacklog := 2-(i+1), 0
		if wantFree < 0 {
			wantFree, wantBacklog = 0, i+1-2
		}
		if a.FreeCapacity() != wantFree || a.Backlog() != wantBacklog {
			t.Fatalf("after offer %d: free %d backlog %d, want %d %d",
				i+1, a.FreeCapacity(), a.Backlog(), wantFree, wantBacklog)
		}
	}
	// Complete frees a slot and the pull refills it from the buffer.
	if _, err := a.Complete("w1", "t1"); err != nil {
		t.Fatal(err)
	}
	if a.FreeCapacity() != 0 || a.Backlog() != 0 {
		t.Fatalf("after complete+pull: free %d backlog %d", a.FreeCapacity(), a.Backlog())
	}
	// RemoveWorker requeues active tasks and retires the worker's slots.
	if _, err := a.RemoveWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if a.FreeCapacity() != 0 || a.Backlog() != 2 {
		t.Fatalf("after removal: free %d backlog %d, want 0 2", a.FreeCapacity(), a.Backlog())
	}
}

func TestBestGainReadOnly(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 1})
	if _, _, ok := a.BestGain(task("t1", 0)); ok {
		t.Fatal("BestGain ok with no workers")
	}
	if _, err := a.AddWorker(wrk("w1", 0.5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	gain1, rel1, ok := a.BestGain(task("t1", 0, 1))
	if !ok {
		t.Fatal("BestGain not ok with a free worker")
	}
	// Scoring twice must not mutate anything.
	gain2, rel2, _ := a.BestGain(task("t1", 0, 1))
	if gain1 != gain2 || rel1 != rel2 {
		t.Fatalf("BestGain not idempotent: (%g,%g) then (%g,%g)", gain1, rel1, gain2, rel2)
	}
	if n, _ := a.Active("w1"); len(n) != 0 {
		t.Fatal("BestGain assigned a task")
	}
	if _, err := a.OfferTask(task("tfill", 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := a.BestGain(task("t2", 0)); ok {
		t.Fatal("BestGain ok with every worker full")
	}
}

func TestTryAssignSkipsBufferAndDupCheck(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 1, BufferLimit: 4})
	if _, ok := a.TryAssign(task("t1", 0)); ok {
		t.Fatal("TryAssign succeeded with no workers")
	}
	if a.Backlog() != 0 {
		t.Fatal("failed TryAssign buffered the task")
	}
	if _, err := a.AddWorker(wrk("w1", 0.5, 0)); err != nil {
		t.Fatal(err)
	}
	wid, ok := a.TryAssign(task("t1", 0))
	if !ok || wid != "w1" {
		t.Fatalf("TryAssign = %q, %v", wid, ok)
	}
	// Same selection rule as OfferTask is pinned by the shard engine's
	// determinism test; here pin the no-dup-check contract: a task this
	// assigner has already seen (stolen away and stolen back) is accepted.
	if _, err := a.Complete("w1", "t1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.TryAssign(task("t1", 0)); !ok {
		t.Fatal("TryAssign rejected a previously seen task")
	}
}

func TestBufferTaskParksWithoutAssigning(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 1, BufferLimit: 2})
	if _, err := a.AddWorker(wrk("w1", 0.5, 0)); err != nil {
		t.Fatal(err)
	}
	// Worker has a free slot, but BufferTask must park regardless — the
	// router already decided this shard only takes the task as backlog.
	if err := a.BufferTask(task("t1", 0)); err != nil {
		t.Fatal(err)
	}
	if n, _ := a.Active("w1"); len(n) != 0 {
		t.Fatal("BufferTask assigned the task")
	}
	if a.Backlog() != 1 {
		t.Fatalf("backlog %d", a.Backlog())
	}
	if err := a.BufferTask(task("t2", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.BufferTask(task("t3", 0)); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("over-limit BufferTask: %v, want ErrBufferFull", err)
	}
	if err := a.BufferTask(nil); err == nil {
		t.Fatal("nil task accepted")
	}
}

func TestTakeBufferedOldestFirst(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 1, BufferLimit: 8})
	for _, id := range []string{"t1", "t2", "t3", "t4"} {
		if err := a.BufferTask(task(id, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.TakeBuffered(0); got != nil {
		t.Fatalf("TakeBuffered(0) = %v", got)
	}
	got := a.TakeBuffered(2)
	if len(got) != 2 || got[0].ID != "t1" || got[1].ID != "t2" {
		t.Fatalf("TakeBuffered(2) = %v, want [t1 t2]", taskIDList(got))
	}
	if a.Backlog() != 2 {
		t.Fatalf("backlog %d after taking 2 of 4", a.Backlog())
	}
	rest := a.Buffered()
	if len(rest) != 2 || rest[0].ID != "t3" || rest[1].ID != "t4" {
		t.Fatalf("remaining buffer = %v, want [t3 t4]", taskIDList(rest))
	}
	// Taking more than available drains without panicking.
	if got := a.TakeBuffered(10); len(got) != 2 {
		t.Fatalf("TakeBuffered(10) returned %d of 2", len(got))
	}
	if a.Backlog() != 0 || a.BufferLen() != 0 {
		t.Fatal("buffer not empty after full drain")
	}
}

func taskIDList(tasks []*core.Task) []string {
	out := make([]string, len(tasks))
	for i, t := range tasks {
		out[i] = t.ID
	}
	return out
}

func TestForceAssignAndRestoreDone(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 2})
	if err := a.ForceAssign("ghost", task("t1", 0)); err == nil {
		t.Fatal("ForceAssign to unknown worker accepted")
	}
	if _, err := a.AddWorker(wrk("w1", 0.5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	// ForceAssign bypasses selection but not capacity (C1).
	if err := a.ForceAssign("w1", task("t1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := a.ForceAssign("w1", task("t2", 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.ForceAssign("w1", task("t3", 2)); err == nil {
		t.Fatal("ForceAssign past Xmax accepted")
	}
	active, _ := a.Active("w1")
	if len(active) != 2 {
		t.Fatalf("active = %v", active)
	}
	if err := a.RestoreDone("w1", 7); err != nil {
		t.Fatal(err)
	}
	if n, _ := a.Completed("w1"); n != 7 {
		t.Fatalf("Completed = %d, want 7", n)
	}
	if err := a.RestoreDone("w1", -1); err == nil {
		t.Fatal("negative done accepted")
	}
	if err := a.RestoreDone("ghost", 1); err == nil {
		t.Fatal("RestoreDone on unknown worker accepted")
	}
	// The objective after a ForceAssign restore equals the objective the
	// same assignments produce through the normal path.
	b := mustAssigner(t, Config{Xmax: 2})
	if _, err := b.AddWorker(wrk("w1", 0.5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OfferTask(task("t1", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.OfferTask(task("t2", 1)); err != nil {
		t.Fatal(err)
	}
	if ao, bo := a.Objective(), b.Objective(); ao != bo {
		t.Fatalf("restored objective %g != organic objective %g", ao, bo)
	}
}
