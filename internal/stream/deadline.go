package stream

// Deadline and availability-window semantics — the streaming half of the
// predictive scheduling subsystem (internal/schedule holds the forecaster
// and window learner; this file holds what the Assigner itself must know).
//
// Three rules, all gated on Config.DeadlineAware so the default assigner
// stays bit-identical to the deadline-free one:
//
//   - expiry: a buffered task whose deadline has passed is worthless;
//     ExpireDue removes it, counts it (Metrics.Expired), and returns it so
//     the caller can journal it — expired work is conserved, never
//     silently dropped. Active tasks never expire: once handed to a
//     worker the platform honours the assignment.
//   - ordering: a freed slot pulls the urgent task (deadline within
//     UrgencyHorizon of Now) with the earliest deadline, gain breaking
//     ties, before falling back to the pure best-gain scan. Undeadlined
//     tasks always compete in the fallback, and urgency is transient by
//     construction (an urgent task ships or expires by its deadline), so
//     deadline pressure delays undeadlined work but cannot starve it —
//     the property test pins this.
//   - windows: SetWindow records when a worker is expected to depart;
//     routing prefers not to pin a deadlined task to a worker whose
//     window closes before the deadline (bestFree's avoid pass), and the
//     ordered pull prefers assignments the worker can hold through the
//     deadline, with the same never-unplaceable fallback.

import (
	"fmt"

	"github.com/htacs/ata/internal/core"
)

// SetWindow records the instant the worker is expected to depart — a
// declared availability window or a learned estimate
// (schedule.WindowTracker). until = 0 clears it (unknown, no constraint).
// The value is advisory: it biases routing under Config.DeadlineAware and
// is otherwise inert, exactly like trust without WithTrust.
func (a *Assigner) SetWindow(workerID string, until int64) error {
	ws, ok := a.workers[workerID]
	if !ok {
		return fmt.Errorf("stream: unknown worker %q", workerID)
	}
	if until < 0 {
		return fmt.Errorf("stream: negative window end %d", until)
	}
	ws.window = until
	return nil
}

// Window returns the worker's recorded availability-window end (0 =
// unknown).
func (a *Assigner) Window(workerID string) (int64, error) {
	ws, ok := a.workers[workerID]
	if !ok {
		return 0, fmt.Errorf("stream: unknown worker %q", workerID)
	}
	return ws.window, nil
}

// DeadlinedBuffered returns how many buffered tasks carry a deadline.
func (a *Assigner) DeadlinedBuffered() int { return a.deadlined }

// ExpireDue removes every buffered task whose deadline is at or before
// now and returns them, oldest buffer position first. The caller owns the
// expired tasks — the sharded engine journals and counts them so the
// conservation law (submitted = delivered + dropped + expired + backlog)
// still balances. Tasks stay in the duplicate set: an expired ID cannot
// be resubmitted. Works regardless of DeadlineAware — calling it is
// opt-in by itself.
func (a *Assigner) ExpireDue(now int64) []*core.Task {
	if a.deadlined == 0 {
		return nil
	}
	var out []*core.Task
	for i := 0; i < len(a.buffer); {
		t := a.buffer[i]
		if t.Deadline > 0 && t.Deadline <= now {
			out = append(out, t)
			// Swap-remove pulls the last entry into slot i; re-examine it
			// before advancing.
			a.bufferSwapRemove(i)
			continue
		}
		i++
	}
	if len(out) > 0 {
		a.metrics.Expired.Add(float64(len(out)))
		a.syncQueueGauge()
	}
	return out
}

// pullBestDeadline is pullBest's ordered scan, entered only when
// DeadlineAware is set and the buffer holds at least one deadlined task.
// One pass tracks three candidates:
//
//  1. the earliest-deadline urgent task the worker can hold through its
//     deadline (window unknown or closing after it), gain breaking ties;
//  2. the earliest-deadline urgent task ignoring the window — used when
//     no window-feasible urgent task exists, because a risky assignment
//     beats certain expiry;
//  3. the best-gain task over everything not yet expired — the plain
//     pullBest rule, serving undeadlined and non-urgent work.
//
// Already-expired tasks are never assigned; they wait for ExpireDue.
func (a *Assigner) pullBestDeadline(ws *workerState) *core.Task {
	now := a.cfg.Now()
	urgentBefore := now + a.cfg.UrgencyHorizon
	var (
		featI, anyI, gainI    = -1, -1, -1
		featD, anyD           int64
		featG, anyG, gainBest = 0.0, 0.0, -1.0
	)
	for i, t := range a.buffer {
		d := t.Deadline
		if d > 0 && d <= now {
			continue // expired: ExpireDue's business, not assignable
		}
		g := a.cachedGain(ws, i)
		if d > 0 && d <= urgentBefore {
			if anyI == -1 || d < anyD || (d == anyD && g > anyG) {
				anyI, anyD, anyG = i, d, g
			}
			if ws.window == 0 || ws.window >= d {
				if featI == -1 || d < featD || (d == featD && g > featG) {
					featI, featD, featG = i, d, g
				}
			}
		}
		if g > gainBest {
			gainI, gainBest = i, g
		}
	}
	bestI := featI
	if bestI == -1 {
		bestI = anyI
	}
	if bestI == -1 {
		bestI = gainI
	}
	if bestI == -1 {
		return nil // everything buffered is already past its deadline
	}
	t := a.buffer[bestI]
	relT := ws.rel[bestI]
	a.bufferSwapRemove(bestI)
	a.syncQueueGauge()
	a.assign(ws, t, relT)
	return t
}

// cachedGain folds the worker's cached columns for buffer index i — the
// same slot-order sum pullBest's unrolled scan computes, one index at a
// time.
func (a *Assigner) cachedGain(ws *workerState, i int) float64 {
	var ds float64
	for _, r := range ws.rows {
		ds += r[i]
	}
	w := ws.worker
	return 2*w.Alpha*ds + w.Beta*(ws.sumRel+float64(len(ws.active))*ws.rel[i])
}
