package stream_test

import (
	"fmt"
	"log"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/stream"
)

// ExampleAssigner routes two arriving tasks: one to the worker with a free
// slot and matching interests, the next into the buffer once capacity is
// exhausted.
func ExampleAssigner() {
	a, err := stream.NewAssigner(stream.Config{Xmax: 1})
	if err != nil {
		log.Fatal(err)
	}
	worker := &core.Worker{ID: "ada", Alpha: 0.5, Beta: 0.5, Keywords: bitset.FromIndices(8, 0, 1)}
	if _, err := a.AddWorker(worker); err != nil {
		log.Fatal(err)
	}

	first := &core.Task{ID: "t1", Keywords: bitset.FromIndices(8, 0)}
	who, err := a.OfferTask(first)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("t1 ->", who)

	second := &core.Task{ID: "t2", Keywords: bitset.FromIndices(8, 1)}
	who, err = a.OfferTask(second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t2 -> buffered=%v\n", who == "")

	// Completing t1 frees the slot; the buffer drains immediately.
	pulled, err := a.Complete("ada", "t1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after completion, ada works on", pulled.ID)
	// Output:
	// t1 -> ada
	// t2 -> buffered=true
	// after completion, ada works on t2
}
