package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/htacs/ata/internal/obs"
)

// TestQueueGaugeTracksBacklogConcurrent is the property test of the
// satellite checklist: under concurrent producers and consumers (the
// Assigner wrapped in a mutex, per its documented contract) the queue
// gauge equals the actual backlog at every quiescent observation, and
// once the buffer is drained the drop counter equals submitted −
// delivered.
func TestQueueGaugeTracksBacklogConcurrent(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	a := mustAssigner(t, Config{Xmax: 2, BufferLimit: 16, Metrics: m})
	for i := 0; i < 3; i++ {
		if _, err := a.AddWorker(wrk(fmt.Sprintf("w%d", i), 0.5, i, i+1, i+2)); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	const producers, perProducer = 4, 200
	var workers, observer sync.WaitGroup
	stop := make(chan struct{})

	// Observer: under the lock every point is quiescent, so the gauge must
	// equal the real backlog on each check.
	observer.Add(1)
	go func() {
		defer observer.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			gauge, backlog := m.QueueDepth.Value(), a.BufferLen()
			mu.Unlock()
			if int(gauge) != backlog {
				t.Errorf("queue gauge = %v, backlog = %d", gauge, backlog)
				return
			}
			runtime.Gosched()
		}
	}()

	// Producers offer unique tasks; full-buffer rejections are expected.
	for p := 0; p < producers; p++ {
		workers.Add(1)
		go func(p int) {
			defer workers.Done()
			for i := 0; i < perProducer; i++ {
				mu.Lock()
				_, err := a.OfferTask(task(fmt.Sprintf("p%d-t%d", p, i), p%8, i%8, (p+i)%8))
				mu.Unlock()
				if err != nil && !errors.Is(err, ErrBufferFull) {
					t.Errorf("OfferTask: %v", err)
					return
				}
			}
		}(p)
	}

	// Consumers complete random active tasks, freeing slots that pull
	// from the buffer.
	for c := 0; c < 2; c++ {
		workers.Add(1)
		go func(c int) {
			defer workers.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < 300; i++ {
				w := fmt.Sprintf("w%d", rng.Intn(3))
				mu.Lock()
				if active, err := a.Active(w); err == nil && len(active) > 0 {
					if _, err := a.Complete(w, active[rng.Intn(len(active))]); err != nil {
						t.Errorf("Complete: %v", err)
					}
				}
				mu.Unlock()
				runtime.Gosched()
			}
		}(c)
	}

	workers.Wait()
	close(stop)
	observer.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Drain the backlog completely: fresh workers with ample capacity.
	drainCfgWorkers := 0
	for a.BufferLen() > 0 {
		if _, err := a.AddWorker(wrk(fmt.Sprintf("drain%d", drainCfgWorkers), 0.5, 1, 2, 3)); err != nil {
			t.Fatal(err)
		}
		drainCfgWorkers++
		if drainCfgWorkers > 1000 {
			t.Fatal("buffer refuses to drain")
		}
	}
	if got := int(m.QueueDepth.Value()); got != 0 {
		t.Fatalf("drained queue gauge = %d, want 0", got)
	}

	// Conservation law: with no worker removal, every submitted task was
	// either delivered exactly once or dropped at offer time.
	submitted, delivered, dropped := m.Submitted.Value(), m.Delivered.Value(), m.Dropped.Value()
	if submitted != float64(producers*perProducer) {
		t.Fatalf("submitted = %v, want %d", submitted, producers*perProducer)
	}
	if dropped != submitted-delivered {
		t.Fatalf("dropped = %v, want submitted − delivered = %v", dropped, submitted-delivered)
	}
	if m.Requeued.Value() != 0 {
		t.Fatalf("requeued = %v without worker removal", m.Requeued.Value())
	}
}

// TestRemovalAccounting pins the worker-churn flows: RemoveWorker requeues
// unfinished tasks up to the buffer limit and drops the overflow, with the
// counters and the queue gauge tracking exactly.
func TestRemovalAccounting(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	a := mustAssigner(t, Config{Xmax: 4, BufferLimit: 2, Metrics: m})
	if _, err := a.AddWorker(wrk("w1", 0.5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := a.OfferTask(task(fmt.Sprintf("t%d", i), i, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Delivered.Value(); got != 4 {
		t.Fatalf("delivered = %v, want 4", got)
	}

	dropped, err := a.RemoveWorker("w1")
	if err != nil {
		t.Fatal(err)
	}
	// 4 active tasks, buffer holds 2 → 2 requeued, 2 dropped.
	if len(dropped) != 2 {
		t.Fatalf("RemoveWorker returned %d dropped, want 2", len(dropped))
	}
	if got := m.Requeued.Value(); got != 2 {
		t.Fatalf("requeued = %v, want 2", got)
	}
	if got := m.Dropped.Value(); got != 2 {
		t.Fatalf("dropped = %v, want 2", got)
	}
	if got, backlog := int(m.QueueDepth.Value()), a.BufferLen(); got != backlog || got != 2 {
		t.Fatalf("queue gauge = %d, backlog = %d, want 2", got, backlog)
	}

	// A new worker re-delivers the requeued tasks: delivery counter moves,
	// gauge returns to zero.
	assigned, err := a.AddWorker(wrk("w2", 0.5, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) != 2 {
		t.Fatalf("drain assigned %d, want 2", len(assigned))
	}
	if got := m.Delivered.Value(); got != 6 {
		t.Fatalf("delivered = %v, want 6 (4 + 2 re-deliveries)", got)
	}
	if got := int(m.QueueDepth.Value()); got != 0 {
		t.Fatalf("queue gauge = %d, want 0", got)
	}
	// Drain batch histogram saw one batch of size 2.
	snap := m.DrainBatch.Snapshot()
	if snap.Count != 1 || snap.Sum != 2 {
		t.Fatalf("drain batch snapshot = %+v, want one batch of 2", snap)
	}
}

// TestOfferRejectionCounts pins the drop counter on ErrBufferFull
// rejections and checks rejected IDs stay offerable.
func TestOfferRejectionCounts(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	a := mustAssigner(t, Config{Xmax: 1, BufferLimit: 1, Metrics: m})
	// No workers: first offer buffers, second bounces.
	if q, err := a.OfferTask(task("t1", 1)); err != nil || q != "" {
		t.Fatalf("offer t1 = %q, %v", q, err)
	}
	if _, err := a.OfferTask(task("t2", 2)); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("offer t2 err = %v, want ErrBufferFull", err)
	}
	if m.Submitted.Value() != 2 || m.Dropped.Value() != 1 {
		t.Fatalf("submitted/dropped = %v/%v, want 2/1", m.Submitted.Value(), m.Dropped.Value())
	}
	// The rejected ID must remain offerable after capacity frees up: the
	// new worker's single slot drains t1, so the re-offer buffers.
	if _, err := a.AddWorker(wrk("w1", 0.5, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if q, err := a.OfferTask(task("t2", 2)); err != nil || q != "" {
		t.Fatalf("re-offer t2 = %q, %v; want buffered", q, err)
	}
	if got := m.Submitted.Value(); got != 3 {
		t.Fatalf("submitted = %v, want 3", got)
	}
}
