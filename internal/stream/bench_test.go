package stream

import (
	"fmt"
	"testing"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/workload"
)

// benchShape mirrors the pr5 sweep's single-shard point: a worker pool
// saturated at Xmax and a deep backlog, so Complete pays a full pullBest
// scan and Offer lands in the buffer. The benchmarks below measure the
// three hot-path entry points separately on that steady state.
const (
	benchWorkers = 56
	benchXmax    = 4
	benchBuffer  = 2048
)

// newBenchAssigner builds a saturated assigner: every worker at capacity,
// the buffer filled to depth. Returns the assigner, the workers, and a
// task supply for the benchmark loop (IDs disjoint from the fill).
func newBenchAssigner(b *testing.B, depth int) (*Assigner, []*core.Worker, []*core.Task) {
	b.Helper()
	gen, err := workload.NewGenerator(workload.Config{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	a, err := NewAssigner(Config{
		Xmax: benchXmax,
		// One slot of headroom: the offer benchmark holds the buffer at
		// depth by evicting after each timed offer, which transiently
		// needs depth+1.
		BufferLimit: depth + 1,
		Metrics:     NewMetrics(obs.NewRegistry()),
	})
	if err != nil {
		b.Fatal(err)
	}
	workers := gen.Workers(benchWorkers)
	for _, w := range workers {
		if _, err := a.AddWorker(w); err != nil {
			b.Fatal(err)
		}
	}
	fill := benchWorkers*benchXmax + depth
	supply := gen.Tasks(fill/8+b.N/8+2, 8)
	for _, t := range supply[:fill] {
		if _, err := a.OfferTask(t); err != nil {
			b.Fatal(err)
		}
	}
	if a.BufferLen() < depth || a.FreeCapacity() != 0 {
		b.Fatalf("fill: depth %d free %d", a.BufferLen(), a.FreeCapacity())
	}
	return a, workers, supply[fill:]
}

// BenchmarkBestGain scores one task against every worker read-only — the
// scatter half of the sharded routing protocol.
func BenchmarkBestGain(b *testing.B) {
	a, _, supply := newBenchAssigner(b, benchBuffer)
	t := supply[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.BestGain(t)
	}
}

// BenchmarkOfferTask measures the buffered-arrival path at constant
// depth: every worker is full, so each offer prices the task against all
// workers and appends a column to every cache. The just-added column is
// swap-removed between iterations (cheap: last-slot eviction) to hold
// the depth at 2048.
func BenchmarkOfferTask(b *testing.B) {
	a, _, _ := newBenchAssigner(b, benchBuffer)
	tasks := make([]*core.Task, b.N)
	for i := range tasks {
		tasks[i] = &core.Task{ID: fmt.Sprintf("bench-offer-%d", i), Keywords: a.buffer[0].Keywords}
	}
	prewarmSeen(a, tasks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.OfferTask(tasks[i]); err != nil {
			b.Fatal(err)
		}
		a.bufferSwapRemove(len(a.buffer) - 1)
	}
}

// BenchmarkCompleteTask measures the complete-dominated steady state the
// pr5 sweep replays: each iteration completes one active task (the freed
// slot pulls the best of 2048 buffered candidates) and offers a fresh
// task to restore the depth — one Complete + one buffered Offer per op.
func BenchmarkCompleteTask(b *testing.B) {
	a, workers, _ := newBenchAssigner(b, benchBuffer)
	tasks := make([]*core.Task, b.N)
	for i := range tasks {
		tasks[i] = &core.Task{ID: fmt.Sprintf("bench-complete-%d", i), Keywords: a.buffer[i%benchBuffer].Keywords}
	}
	prewarmSeen(a, tasks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := workers[i%len(workers)]
		ws := a.workers[w.ID]
		pulled, err := a.Complete(w.ID, ws.active[0].ID)
		if err != nil {
			b.Fatal(err)
		}
		if pulled == nil {
			b.Fatal("empty buffer mid-benchmark")
		}
		if _, err := a.OfferTask(tasks[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// prewarmSeen grows the duplicate filter to its final size before timing
// so steady-state inserts reuse map cells instead of triggering growth.
func prewarmSeen(a *Assigner, tasks []*core.Task) {
	for _, t := range tasks {
		a.seen[t.ID] = true
	}
	for _, t := range tasks {
		delete(a.seen, t.ID)
	}
}
