package stream

import (
	"sync"

	"github.com/htacs/ata/internal/obs"
)

// Metrics are the streaming assigner's instruments. The accounting model
// is a task-flow conservation law the property tests pin down:
//
//	Submitted  = every well-formed OfferTask attempt (duplicates and nil
//	             tasks error out before counting);
//	Delivered  = every hand-off of a task to a worker (direct offer,
//	             buffer pull on Complete/AddWorker, including
//	             re-deliveries of requeued tasks);
//	Dropped    = offers rejected with ErrBufferFull plus active tasks
//	             discarded on RemoveWorker when the buffer is full;
//	Requeued   = active tasks returned to the buffer on RemoveWorker;
//	Expired    = buffered tasks removed by ExpireDue after their deadline
//	             passed (never silently: the tasks are returned to the
//	             caller for journaling).
//
// With no worker churn, once the buffer drains: Dropped + Expired =
// Submitted − Delivered. QueueDepth always equals BufferLen().
type Metrics struct {
	QueueDepth *obs.Gauge
	Submitted  *obs.Counter
	Delivered  *obs.Counter
	Dropped    *obs.Counter
	Requeued   *obs.Counter
	Completed  *obs.Counter
	Expired    *obs.Counter
	// DrainBatch is the number of tasks handed to a newly arrived worker
	// out of the buffer — the batch-size distribution of AddWorker.
	DrainBatch *obs.Histogram
}

// NewMetrics registers the streaming instruments on r (obs.Default() when
// nil).
func NewMetrics(r *obs.Registry) *Metrics {
	return NewMetricsLabeled(r)
}

// NewMetricsLabeled registers the streaming instruments with a constant
// label set attached to every series — the sharded engine passes
// shard="K" so each of its per-shard Assigners writes its own series.
//
// This fixes an inconsistency the sharded engine exposed: defaultMetrics
// hands every Assigner in the process the *same* unlabeled instruments,
// so two assigners sharing them turn QueueDepth into last-writer-wins
// noise (counters merely aggregate, which is defensible; a shared gauge
// is not). Multi-assigner deployments must isolate series by label.
func NewMetricsLabeled(r *obs.Registry, labels ...obs.Label) *Metrics {
	if r == nil {
		r = obs.Default()
	}
	return &Metrics{
		QueueDepth: r.Gauge("hta_stream_queue_depth",
			"tasks buffered waiting for a free worker slot", labels...),
		Submitted: r.Counter("hta_stream_tasks_submitted_total",
			"well-formed task offers (accepted or rejected)", labels...),
		Delivered: r.Counter("hta_stream_tasks_delivered_total",
			"task hand-offs to workers (including re-deliveries after requeue)", labels...),
		Dropped: r.Counter("hta_stream_tasks_dropped_total",
			"tasks lost to a full buffer (offer rejections + removal overflow)", labels...),
		Requeued: r.Counter("hta_stream_tasks_requeued_total",
			"active tasks returned to the buffer by RemoveWorker", labels...),
		Completed: r.Counter("hta_stream_tasks_completed_total",
			"task completions recorded", labels...),
		Expired: r.Counter("hta_stream_tasks_expired_total",
			"buffered tasks expired past their deadline by ExpireDue", labels...),
		DrainBatch: r.Histogram("hta_stream_drain_batch_size",
			"buffered tasks drained per arriving worker", obs.SizeBuckets(), labels...),
	}
}

var (
	sharedOnce    sync.Once
	sharedMetrics *Metrics
)

// defaultMetrics lazily builds the process-wide instrument set.
func defaultMetrics() *Metrics {
	sharedOnce.Do(func() { sharedMetrics = NewMetrics(obs.Default()) })
	return sharedMetrics
}

// syncQueueGauge publishes the current backlog, both to the obs gauge and
// to the atomic mirror behind Backlog(). Called after every buffer
// mutation; the Assigner is single-goroutine by contract, so both views
// are exact at every quiescent point. The atomic store is unconditional —
// Backlog feeds the steal watermark, which must keep working with obs
// disabled.
func (a *Assigner) syncQueueGauge() {
	a.backlogN.Store(int64(len(a.buffer)))
	a.metrics.QueueDepth.Set(float64(len(a.buffer)))
}
