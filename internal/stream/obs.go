package stream

import (
	"sync"

	"github.com/htacs/ata/internal/obs"
)

// Metrics are the streaming assigner's instruments. The accounting model
// is a task-flow conservation law the property tests pin down:
//
//	Submitted  = every well-formed OfferTask attempt (duplicates and nil
//	             tasks error out before counting);
//	Delivered  = every hand-off of a task to a worker (direct offer,
//	             buffer pull on Complete/AddWorker, including
//	             re-deliveries of requeued tasks);
//	Dropped    = offers rejected with ErrBufferFull plus active tasks
//	             discarded on RemoveWorker when the buffer is full;
//	Requeued   = active tasks returned to the buffer on RemoveWorker.
//
// With no worker churn, once the buffer drains: Dropped = Submitted −
// Delivered. QueueDepth always equals BufferLen().
type Metrics struct {
	QueueDepth *obs.Gauge
	Submitted  *obs.Counter
	Delivered  *obs.Counter
	Dropped    *obs.Counter
	Requeued   *obs.Counter
	Completed  *obs.Counter
	// DrainBatch is the number of tasks handed to a newly arrived worker
	// out of the buffer — the batch-size distribution of AddWorker.
	DrainBatch *obs.Histogram
}

// NewMetrics registers the streaming instruments on r (obs.Default() when
// nil).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		r = obs.Default()
	}
	return &Metrics{
		QueueDepth: r.Gauge("hta_stream_queue_depth",
			"tasks buffered waiting for a free worker slot"),
		Submitted: r.Counter("hta_stream_tasks_submitted_total",
			"well-formed task offers (accepted or rejected)"),
		Delivered: r.Counter("hta_stream_tasks_delivered_total",
			"task hand-offs to workers (including re-deliveries after requeue)"),
		Dropped: r.Counter("hta_stream_tasks_dropped_total",
			"tasks lost to a full buffer (offer rejections + removal overflow)"),
		Requeued: r.Counter("hta_stream_tasks_requeued_total",
			"active tasks returned to the buffer by RemoveWorker"),
		Completed: r.Counter("hta_stream_tasks_completed_total",
			"task completions recorded"),
		DrainBatch: r.Histogram("hta_stream_drain_batch_size",
			"buffered tasks drained per arriving worker", obs.SizeBuckets()),
	}
}

var (
	sharedOnce    sync.Once
	sharedMetrics *Metrics
)

// defaultMetrics lazily builds the process-wide instrument set.
func defaultMetrics() *Metrics {
	sharedOnce.Do(func() { sharedMetrics = NewMetrics(obs.Default()) })
	return sharedMetrics
}

// syncQueueGauge publishes the current backlog. Called after every buffer
// mutation; the Assigner is single-goroutine by contract, so the gauge is
// exact at every quiescent point.
func (a *Assigner) syncQueueGauge() {
	a.metrics.QueueDepth.Set(float64(len(a.buffer)))
}
