package stream

import (
	"context"
	"testing"

	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/trace"
)

// TestCtxVariantsAnnotateTrace: the Ctx entry points record queue-depth
// events on a sampled trace and stay silent on a plain context.
func TestCtxVariantsAnnotateTrace(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 1, BufferLimit: 4, Metrics: NewMetrics(obs.NewRegistry())})
	rec := trace.NewRecorder(4, 1)
	ctx, root := rec.Start(context.Background(), "root")

	if _, err := a.AddWorkerCtx(ctx, wrk("w1", 0.5, 1)); err != nil {
		t.Fatal(err)
	}
	// First offer fills w1's single slot; second buffers.
	if _, err := a.OfferTaskCtx(ctx, task("t1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTaskCtx(ctx, task("t2", 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CompleteCtx(ctx, "w1", "t1"); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans := rec.Snapshot(0)[0].Spans()
	names := map[string]int{}
	var depths []int64
	for _, sd := range spans[1:] {
		names[sd.Name]++
		for _, at := range sd.Attrs {
			if at.Key == "queue_depth" {
				depths = append(depths, at.Value().(int64))
			}
		}
	}
	if names["stream.add_worker"] != 1 || names["stream.offer"] != 2 || names["stream.complete"] != 1 {
		t.Fatalf("event counts = %v", names)
	}
	// add_worker drains nothing (depth 0); offers leave depth 0 then 1;
	// the completion pulls t2 back out (depth 0).
	want := []int64{0, 0, 1, 0}
	if len(depths) != len(want) {
		t.Fatalf("queue depths = %v, want %v", depths, want)
	}
	for i, d := range depths {
		if d != want[i] {
			t.Fatalf("queue depths = %v, want %v", depths, want)
		}
	}

	// An untraced context records nothing and changes no behavior.
	if _, err := a.OfferTaskCtx(context.Background(), task("t3", 3)); err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Snapshot(0)[0].Spans()); got != 5 {
		t.Fatalf("untraced call appended a span: %d spans", got)
	}
}
