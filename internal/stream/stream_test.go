package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/workload"
)

func mustAssigner(t *testing.T, cfg Config) *Assigner {
	t.Helper()
	a, err := NewAssigner(cfg)
	if err != nil {
		t.Fatalf("NewAssigner: %v", err)
	}
	return a
}

func task(id string, kw ...int) *core.Task {
	return &core.Task{ID: id, Keywords: bitset.FromIndices(32, kw...)}
}

func wrk(id string, alpha float64, kw ...int) *core.Worker {
	return &core.Worker{ID: id, Alpha: alpha, Beta: 1 - alpha, Keywords: bitset.FromIndices(32, kw...)}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewAssigner(Config{Xmax: 0}); err == nil {
		t.Error("zero Xmax accepted")
	}
	if _, err := NewAssigner(Config{Xmax: 2, BufferLimit: -1}); err == nil {
		t.Error("negative buffer accepted")
	}
}

func TestOfferAssignsToFreeWorker(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 2})
	if _, err := a.AddWorker(wrk("w1", 0.5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	q, err := a.OfferTask(task("t1", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if q != "w1" {
		t.Fatalf("assigned to %q, want w1", q)
	}
	active, err := a.Active("w1")
	if err != nil || len(active) != 1 || active[0] != "t1" {
		t.Fatalf("active = %v, %v", active, err)
	}
}

func TestOfferPrefersHigherMarginalGain(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 3})
	// rel-seeker whose interests match the task exactly vs a mismatched one.
	if _, err := a.AddWorker(wrk("match", 0.1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddWorker(wrk("other", 0.1, 9, 10)); err != nil {
		t.Fatal(err)
	}
	// Seed both with one task so the relevance term is live (|active| > 0).
	if _, err := a.OfferTask(task("seed", 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(task("seed2", 21)); err != nil {
		t.Fatal(err)
	}
	q, err := a.OfferTask(task("t", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if q != "match" {
		t.Fatalf("task routed to %q, want the matching relevance-seeker", q)
	}
}

func TestBufferingAndPullOnComplete(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 1})
	if _, err := a.AddWorker(wrk("w1", 0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if q, err := a.OfferTask(task("t1", 0)); err != nil || q != "w1" {
		t.Fatalf("first offer: %q, %v", q, err)
	}
	// Worker full: next task buffers.
	q, err := a.OfferTask(task("t2", 1))
	if err != nil {
		t.Fatal(err)
	}
	if q != "" || a.BufferLen() != 1 {
		t.Fatalf("expected buffering, got worker %q buffer %d", q, a.BufferLen())
	}
	// Completion frees the slot and pulls t2.
	pulled, err := a.Complete("w1", "t1")
	if err != nil {
		t.Fatal(err)
	}
	if pulled == nil || pulled.ID != "t2" || a.BufferLen() != 0 {
		t.Fatalf("pulled = %v, buffer %d", pulled, a.BufferLen())
	}
	if n, _ := a.Completed("w1"); n != 1 {
		t.Fatalf("completed = %d", n)
	}
}

func TestBufferLimit(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 1, BufferLimit: 1})
	if _, err := a.AddWorker(wrk("w1", 0.5, 0)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"t1", "t2"} { // t1 assigned, t2 buffered
		if _, err := a.OfferTask(task(id, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.OfferTask(task("t3", 0)); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("err = %v, want ErrBufferFull", err)
	}
	// A rejected task may be re-offered later.
	if _, err := a.Complete("w1", "t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(task("t3", 0)); err != nil {
		t.Fatalf("re-offer after rejection: %v", err)
	}
}

func TestDuplicateRejection(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 2})
	if _, err := a.AddWorker(wrk("w1", 0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddWorker(wrk("w1", 0.5, 1)); err == nil {
		t.Error("duplicate worker accepted")
	}
	if _, err := a.OfferTask(task("t1", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(task("t1", 1)); err == nil {
		t.Error("duplicate task accepted")
	}
}

func TestWorkerArrivalDrainsBuffer(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 2})
	for i := 0; i < 3; i++ {
		if _, err := a.OfferTask(task(fmt.Sprintf("t%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if a.BufferLen() != 3 {
		t.Fatalf("buffer = %d, want 3", a.BufferLen())
	}
	assigned, err := a.AddWorker(wrk("w1", 0.5, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned) != 2 || a.BufferLen() != 1 {
		t.Fatalf("assigned %d, buffer %d; want 2 and 1", len(assigned), a.BufferLen())
	}
}

func TestWorkerDepartureReturnsTasks(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 2, BufferLimit: 1})
	if _, err := a.AddWorker(wrk("w1", 0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(task("t1", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.OfferTask(task("t2", 1)); err != nil {
		t.Fatal(err)
	}
	dropped, err := a.RemoveWorker("w1")
	if err != nil {
		t.Fatal(err)
	}
	// Two active tasks, buffer capacity 1: one returns, one is dropped.
	if a.BufferLen() != 1 || len(dropped) != 1 {
		t.Fatalf("buffer %d dropped %d, want 1 and 1", a.BufferLen(), len(dropped))
	}
	if _, err := a.RemoveWorker("w1"); err == nil {
		t.Error("double removal accepted")
	}
	if _, err := a.Active("w1"); err == nil {
		t.Error("Active on removed worker succeeded")
	}
}

func TestCompleteValidation(t *testing.T) {
	a := mustAssigner(t, Config{Xmax: 2})
	if _, err := a.Complete("ghost", "t"); err == nil {
		t.Error("unknown worker accepted")
	}
	if _, err := a.AddWorker(wrk("w1", 0.5, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Complete("w1", "missing"); err == nil {
		t.Error("inactive task accepted")
	}
}

func TestCapacityInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := mustAssigner(t, Config{Xmax: 3, BufferLimit: 10_000})
	gen, err := workload.NewGenerator(workload.Config{Seed: 3, Universe: 32})
	if err != nil {
		t.Fatal(err)
	}
	workers := gen.Workers(5)
	for _, w := range workers {
		if _, err := a.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	tasks := gen.Tasks(20, 10)
	for i, task := range tasks {
		if _, err := a.OfferTask(task); err != nil {
			t.Fatal(err)
		}
		// Random completions keep slots churning.
		if i%3 == 0 {
			w := workers[r.Intn(len(workers))]
			if active, _ := a.Active(w.ID); len(active) > 0 {
				if _, err := a.Complete(w.ID, active[r.Intn(len(active))]); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, w := range workers {
			active, err := a.Active(w.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(active) > 3 {
				t.Fatalf("worker %s over capacity: %d", w.ID, len(active))
			}
		}
	}
	if a.Objective() < 0 {
		t.Fatal("negative objective")
	}
}

// TestStreamVsOfflineGRE: on the same tasks and workers, the streaming
// assigner's objective should reach a reasonable fraction of the offline
// HTA-GRE objective (it decides per-arrival with no lookahead).
func TestStreamVsOfflineGRE(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{Seed: 9, Universe: 64})
	if err != nil {
		t.Fatal(err)
	}
	tasks := gen.Tasks(30, 4)
	workers := gen.Workers(6)
	const xmax = 5

	a := mustAssigner(t, Config{Xmax: xmax})
	for _, w := range workers {
		clone := *w
		if _, err := a.AddWorker(&clone); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		if _, err := a.OfferTask(task); err != nil {
			t.Fatal(err)
		}
	}
	streamObj := a.Objective()

	in, err := core.NewInstance(tasks, workers, xmax, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := solver.HTAGRE(in)
	if err != nil {
		t.Fatal(err)
	}
	if streamObj < 0.4*offline.Objective {
		t.Errorf("streaming objective %g below 40%% of offline GRE %g", streamObj, offline.Objective)
	}
}
