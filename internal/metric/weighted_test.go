package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htacs/ata/internal/bitset"
)

func TestNewWeightedJaccardValidation(t *testing.T) {
	if _, err := NewWeightedJaccard(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewWeightedJaccard([]float64{1, -0.1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewWeightedJaccard([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewWeightedJaccard([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestWeightedJaccardUniformEqualsPlain(t *testing.T) {
	uniform := make([]float64, 20)
	for i := range uniform {
		uniform[i] = 1
	}
	wj, err := NewWeightedJaccard(uniform)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	var j Jaccard
	for trial := 0; trial < 50; trial++ {
		a, b := randomSample(r, 2, 20)[0], randomSample(r, 2, 20)[1]
		if got, want := wj.Distance(a, b), j.Distance(a, b); math.Abs(got-want) > 1e-12 {
			t.Fatalf("uniform weighted %g != plain %g", got, want)
		}
	}
}

func TestWeightedJaccardEmphasis(t *testing.T) {
	// Keyword 0 weighs 10, keyword 1 weighs 1. Sharing only the heavy
	// keyword must yield a much smaller distance than sharing only the
	// light one.
	wj, err := NewWeightedJaccard([]float64{10, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	shareHeavy := wj.Distance(set(3, 0, 1), set(3, 0, 2)) // share 0 (w=10), diff 1,2 (w=1 each)
	shareLight := wj.Distance(set(3, 1, 0), set(3, 1, 2)) // share 1 (w=1), diff 0,2 (w=10, 1)
	if shareHeavy >= shareLight {
		t.Fatalf("sharing the heavy keyword (%g) should beat sharing the light one (%g)",
			shareHeavy, shareLight)
	}
}

func TestWeightedJaccardOutOfVocabulary(t *testing.T) {
	wj, err := NewWeightedJaccard([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	// Keywords beyond the weight vector fall back to weight 1.
	d := wj.Distance(set(4, 0, 3), set(4, 0))
	want := 1 - 2.0/3.0 // inter = {0}: 2; union = {0,3}: 2+1
	if math.Abs(d-want) > 1e-12 {
		t.Fatalf("distance = %g, want %g", d, want)
	}
}

func TestWeightedJaccardIsMetric(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	weights := make([]float64, 30)
	for i := range weights {
		weights[i] = r.Float64() * 3
	}
	weights[0] = 1 // ensure positivity
	wj, err := NewWeightedJaccard(weights)
	if err != nil {
		t.Fatal(err)
	}
	if !wj.Metric() {
		t.Fatal("Metric() = false")
	}
	sample := randomSample(r, 20, 30)
	if v := VerifyMetric(wj, sample, 1e-9); v != nil {
		t.Fatalf("weighted Jaccard violates metric axioms: %v", v)
	}
}

func TestIDFWeights(t *testing.T) {
	corpus := []*bitset.Set{
		set(4, 0, 1), set(4, 0, 2), set(4, 0, 3), set(4, 0),
	}
	w, err := IDFWeights(4, corpus)
	if err != nil {
		t.Fatal(err)
	}
	// Keyword 0 appears everywhere → minimum weight; keyword 3 once.
	if !(w[0] < w[1] && w[1] == w[2] && w[2] == w[3]) {
		t.Fatalf("weights = %v, want ubiquitous keyword lightest", w)
	}
	for _, v := range w {
		if v <= 0 {
			t.Fatalf("non-positive IDF weight: %v", w)
		}
	}
	if _, err := IDFWeights(0, corpus); err == nil {
		t.Error("zero universe accepted")
	}
	if _, err := IDFWeights(4, []*bitset.Set{nil}); err == nil {
		t.Error("nil document accepted")
	}
}

func TestIDFPipeline(t *testing.T) {
	// End-to-end: IDF weights from a corpus feed the weighted distance.
	r := rand.New(rand.NewSource(7))
	corpus := randomSample(r, 40, 25)
	w, err := IDFWeights(25, corpus)
	if err != nil {
		t.Fatal(err)
	}
	wj, err := NewWeightedJaccard(w)
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyMetric(wj, corpus[:12], 1e-9); v != nil {
		t.Fatalf("IDF-weighted Jaccard violates metric axioms: %v", v)
	}
}

func TestCosineKnown(t *testing.T) {
	var c Cosine
	if got := c.Distance(set(4, 0, 1), set(4, 0, 1)); math.Abs(got) > 1e-12 {
		t.Errorf("identical sets: %g", got)
	}
	if got := c.Distance(set(4, 0), set(4, 1)); got != 1 {
		t.Errorf("disjoint sets: %g", got)
	}
	if got := c.Distance(set(4), set(4)); got != 0 {
		t.Errorf("both empty: %g", got)
	}
	if got := c.Distance(set(4), set(4, 1)); got != 1 {
		t.Errorf("one empty: %g", got)
	}
	// 45°-style case: |a|=1, |b|=2, share 1 → 1 − 1/√2.
	if got, want := c.Distance(set(4, 0), set(4, 0, 1)), 1-1/math.Sqrt2; math.Abs(got-want) > 1e-12 {
		t.Errorf("overlap case: %g, want %g", got, want)
	}
	if c.Metric() {
		t.Error("cosine distance must not claim to be a metric")
	}
}

func TestQuickWeightedJaccardRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64() * 5
		}
		weights[r.Intn(n)] += 0.1
		wj, err := NewWeightedJaccard(weights)
		if err != nil {
			return false
		}
		s := randomSample(r, 2, n)
		d := wj.Distance(s[0], s[1])
		sym := wj.Distance(s[1], s[0])
		return d >= 0 && d <= 1 && math.Abs(d-sym) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
