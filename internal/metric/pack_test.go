package metric

import (
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/bitset"
)

func randKw(rng *rand.Rand, n int) *bitset.Set {
	s := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			s.Add(i)
		}
	}
	return s
}

// Every PackDistancer must be bit-identical to its pairwise Distance — the
// contract the streaming gain cache depends on. Mixed capacities exercise
// the Jaccard zero-padding path; uniform ones the capacity-checked pair.
func TestDistancePackBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	uniform := make([]*bitset.Set, 40)
	var uniformPack bitset.Pack
	for i := range uniform {
		uniform[i] = randKw(rng, 128)
		uniformPack.Append(uniform[i])
	}
	mixed := make([]*bitset.Set, 40)
	var mixedPack bitset.Pack
	for i := range mixed {
		mixed[i] = randKw(rng, 16+rng.Intn(180))
		mixedPack.Append(mixed[i])
	}
	from := randKw(rng, 128)
	out := make([]float64, 40)
	for _, tc := range []struct {
		d    Distance
		sets []*bitset.Set
		pack *bitset.Pack
	}{
		{Jaccard{}, uniform, &uniformPack},
		{Jaccard{}, mixed, &mixedPack},
		{Hamming{}, uniform, &uniformPack},
		{Euclidean{}, uniform, &uniformPack},
		{Dice{}, uniform, &uniformPack}, // no pack kernel: exercises the fallback
	} {
		Row(tc.d, from, tc.pack, func(i int) *bitset.Set { return tc.sets[i] }, out)
		for i, s := range tc.sets {
			if want := tc.d.Distance(from, s); out[i] != want {
				t.Fatalf("%s: member %d: Row %v != Distance %v", tc.d.Name(), i, out[i], want)
			}
		}
	}
}

func TestDistancePackCapacityPanics(t *testing.T) {
	var p bitset.Pack
	p.Append(bitset.New(32))
	out := make([]float64, 1)
	for _, d := range []PackDistancer{Hamming{}, Euclidean{}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on mismatched pack capacity", d.Name())
				}
			}()
			d.DistancePack(bitset.New(64), &p, out)
		}()
	}
}

// RowP must produce the same floats as Row in every chunking: above and
// below the fan-out break-even, kernel and pairwise fallback, any p. The
// chunks write disjoint out ranges, so this is exact equality, not
// tolerance.
func TestRowPMatchesRow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 100, 2*rowGrain - 1, 2*rowGrain + 157} {
		sets := make([]*bitset.Set, n)
		var pack bitset.Pack
		for i := range sets {
			sets[i] = randKw(rng, 128)
			pack.Append(sets[i])
		}
		from := randKw(rng, 128)
		want := make([]float64, n)
		got := make([]float64, n)
		at := func(i int) *bitset.Set { return sets[i] }
		for _, d := range []Distance{Jaccard{}, Dice{}} {
			Row(d, from, &pack, at, want)
			for _, p := range []int{1, 2, 3, 8, 0} {
				for i := range got {
					got[i] = -1
				}
				RowP(d, from, &pack, at, got, p)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s n=%d p=%d: member %d: RowP %v != Row %v", d.Name(), n, p, i, got[i], want[i])
					}
				}
			}
		}
	}
}
