// Package metric provides the distance functions used to measure task
// diversity and task relevance (Section II of the paper).
//
// The paper's approximation guarantees require the pairwise task distance
// d(·,·) to be a metric — in particular to satisfy the triangle inequality
// (Section IV). Jaccard distance on keyword sets is the paper's default and
// is a metric; the package also offers normalized Hamming and Euclidean
// distances over indicator vectors, and (as a documented non-metric
// counterexample, useful for tests) the Dice distance. VerifyMetric can
// empirically check metric properties of any Distance on a sample.
package metric

import (
	"fmt"
	"math"

	"github.com/htacs/ata/internal/bitset"
)

// Distance measures dissimilarity between two keyword sets in [0, 1].
type Distance interface {
	// Distance returns d(a, b) ∈ [0, 1].
	Distance(a, b *bitset.Set) float64
	// Metric reports whether the function is a true metric (satisfies the
	// triangle inequality). The HTA approximation factors only hold for
	// metric distances; solvers consult this to warn callers.
	Metric() bool
	// Name identifies the distance for logs and experiment output.
	Name() string
}

// RowDistancer is implemented by distances that can compute a whole row of
// distances from one set to many in a single call. The diversity kernel
// (core.Instance.Precompute) uses it to fill triangular rows of its cached
// distance matrix without per-pair interface dispatch, and with single-pass
// set aggregates where the distance allows (Jaccard). Implementations MUST
// produce bit-identical values to calling Distance pair by pair — callers
// rely on cached and direct paths being interchangeable.
type RowDistancer interface {
	Distance
	// DistanceRow stores d(from, to[i]) into out[i] for every i.
	// len(out) must be >= len(to).
	DistanceRow(from *bitset.Set, to []*bitset.Set, out []float64)
}

// Jaccard is the paper's default distance: d(a,b) = 1 − |a∩b| / |a∪b|.
// Two empty sets are at distance 0 by convention. Jaccard distance is a
// metric (Besicovitch 1926, cited as [19] in the paper).
type Jaccard struct{}

// Distance implements Distance.
func (Jaccard) Distance(a, b *bitset.Set) float64 {
	union := a.UnionCount(b)
	if union == 0 {
		return 0
	}
	return 1 - float64(a.IntersectionCount(b))/float64(union)
}

// DistanceRow implements RowDistancer with a single pass over each pair's
// words (intersection and union counted together).
func (Jaccard) DistanceRow(from *bitset.Set, to []*bitset.Set, out []float64) {
	for i, b := range to {
		inter, union := from.IntersectionUnionCount(b)
		if union == 0 {
			out[i] = 0
			continue
		}
		out[i] = 1 - float64(inter)/float64(union)
	}
}

// Metric implements Distance. Jaccard distance satisfies the triangle
// inequality, so this is true.
func (Jaccard) Metric() bool { return true }

// Name implements Distance.
func (Jaccard) Name() string { return "jaccard" }

// Hamming is the normalized Hamming distance |a △ b| / R over indicator
// vectors of capacity R. It is a metric (it is the L1 distance scaled by a
// constant). Sets must share the same capacity.
type Hamming struct{}

// Distance implements Distance.
func (Hamming) Distance(a, b *bitset.Set) float64 {
	n := a.Len()
	if b.Len() != n {
		panic(fmt.Sprintf("metric: Hamming over mismatched capacities %d and %d", n, b.Len()))
	}
	if n == 0 {
		return 0
	}
	return float64(a.SymmetricDifferenceCount(b)) / float64(n)
}

// DistanceRow implements RowDistancer.
func (h Hamming) DistanceRow(from *bitset.Set, to []*bitset.Set, out []float64) {
	for i, b := range to {
		out[i] = h.Distance(from, b)
	}
}

// Metric implements Distance.
func (Hamming) Metric() bool { return true }

// Name implements Distance.
func (Hamming) Name() string { return "hamming" }

// Euclidean is the normalized Euclidean distance between indicator vectors:
// sqrt(|a △ b|) / sqrt(R). For 0/1 vectors the squared L2 distance equals the
// Hamming distance, so this is sqrt(Hamming); it is a metric.
type Euclidean struct{}

// Distance implements Distance.
func (Euclidean) Distance(a, b *bitset.Set) float64 {
	n := a.Len()
	if b.Len() != n {
		panic(fmt.Sprintf("metric: Euclidean over mismatched capacities %d and %d", n, b.Len()))
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(float64(a.SymmetricDifferenceCount(b)) / float64(n))
}

// DistanceRow implements RowDistancer.
func (e Euclidean) DistanceRow(from *bitset.Set, to []*bitset.Set, out []float64) {
	for i, b := range to {
		out[i] = e.Distance(from, b)
	}
}

// Metric implements Distance.
func (Euclidean) Metric() bool { return true }

// Name implements Distance.
func (Euclidean) Name() string { return "euclidean" }

// Dice is the Sørensen–Dice distance 1 − 2|a∩b| / (|a|+|b|). It is NOT a
// metric (it violates the triangle inequality), and is included to let tests
// and experiments demonstrate that the solvers detect non-metric distances.
type Dice struct{}

// Distance implements Distance.
func (Dice) Distance(a, b *bitset.Set) float64 {
	den := a.Count() + b.Count()
	if den == 0 {
		return 0
	}
	return 1 - 2*float64(a.IntersectionCount(b))/float64(den)
}

// Metric implements Distance. Dice distance violates the triangle
// inequality, so this is false.
func (Dice) Metric() bool { return false }

// Name implements Distance.
func (Dice) Name() string { return "dice" }

// ByName returns the built-in distance with the given Name.
func ByName(name string) (Distance, error) {
	switch name {
	case "jaccard":
		return Jaccard{}, nil
	case "hamming":
		return Hamming{}, nil
	case "euclidean":
		return Euclidean{}, nil
	case "dice":
		return Dice{}, nil
	case "cosine":
		return Cosine{}, nil
	}
	return nil, fmt.Errorf("metric: unknown distance %q", name)
}

// Violation describes a detected breach of a metric axiom.
type Violation struct {
	Axiom   string // "symmetry", "identity", "triangle", "range"
	Detail  string
	A, B, C int // indices into the sample that exhibit the breach (C = -1 if unused)
}

func (v Violation) String() string {
	return fmt.Sprintf("%s violated at (%d,%d,%d): %s", v.Axiom, v.A, v.B, v.C, v.Detail)
}

// VerifyMetric exhaustively checks the metric axioms of d over the sample:
// d ∈ [0,1], d(x,x) = 0, symmetry, and the triangle inequality, with
// tolerance eps for floating-point slack. It returns the first violation
// found, or nil if the sample exhibits none. Cost is O(n³) in the sample
// size; intended for tests and preflight validation of custom distances.
func VerifyMetric(d Distance, sample []*bitset.Set, eps float64) *Violation {
	n := len(sample)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = d.Distance(sample[i], sample[j])
		}
	}
	for i := 0; i < n; i++ {
		if dist[i][i] > eps {
			return &Violation{Axiom: "identity", Detail: fmt.Sprintf("d(x,x) = %g", dist[i][i]), A: i, B: i, C: -1}
		}
		for j := 0; j < n; j++ {
			if dist[i][j] < -eps || dist[i][j] > 1+eps {
				return &Violation{Axiom: "range", Detail: fmt.Sprintf("d = %g outside [0,1]", dist[i][j]), A: i, B: j, C: -1}
			}
			if math.Abs(dist[i][j]-dist[j][i]) > eps {
				return &Violation{Axiom: "symmetry", Detail: fmt.Sprintf("d(a,b)=%g d(b,a)=%g", dist[i][j], dist[j][i]), A: i, B: j, C: -1}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				if dist[i][k] > dist[i][j]+dist[j][k]+eps {
					return &Violation{
						Axiom:  "triangle",
						Detail: fmt.Sprintf("d(i,k)=%g > d(i,j)+d(j,k)=%g", dist[i][k], dist[i][j]+dist[j][k]),
						A:      i, B: j, C: k,
					}
				}
			}
		}
	}
	return nil
}

// Relevance returns rel(t, w) = 1 − d(t, w): how well a task's keyword
// requirements match a worker's expressed interests (Section II).
func Relevance(d Distance, task, worker *bitset.Set) float64 {
	return 1 - d.Distance(task, worker)
}
