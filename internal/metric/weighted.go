package metric

import (
	"fmt"
	"math"

	"github.com/htacs/ata/internal/bitset"
)

// The paper allows d(·,·) to be "any distance function ... as long as it is
// a metric". Plain Jaccard treats every keyword equally, but AMT keyword
// popularity is heavily skewed — "survey" carries far less signal than
// "entity resolution". WeightedJaccard generalizes the default distance to
// per-keyword weights (typically IDF computed from a task corpus):
//
//	d(a, b) = 1 − Σ_{k∈a∩b} w_k / Σ_{k∈a∪b} w_k
//
// which remains a metric for non-negative weights (it is the Jaccard
// distance of the weighted multiset measure, a member of the same
// Steinhaus-transform family as plain Jaccard).

// WeightedJaccard is a weighted Jaccard distance over keyword indices.
type WeightedJaccard struct {
	weights []float64
}

// NewWeightedJaccard validates weights (non-negative, at least one
// positive) and returns the distance. The weight slice is copied.
func NewWeightedJaccard(weights []float64) (*WeightedJaccard, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("metric: empty weight vector")
	}
	positive := false
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("metric: invalid weight %g at index %d", w, i)
		}
		if w > 0 {
			positive = true
		}
	}
	if !positive {
		return nil, fmt.Errorf("metric: all weights are zero")
	}
	return &WeightedJaccard{weights: append([]float64(nil), weights...)}, nil
}

// IDFWeights computes inverse-document-frequency weights from a corpus of
// keyword sets over a universe of the given size:
//
//	w_k = ln((1 + N) / (1 + df_k)) + 1
//
// (the smoothed IDF variant, always positive). Keywords that appear in
// every document get weight 1; absent keywords get the maximum.
func IDFWeights(universe int, corpus []*bitset.Set) ([]float64, error) {
	if universe < 1 {
		return nil, fmt.Errorf("metric: universe = %d", universe)
	}
	df := make([]int, universe)
	for i, doc := range corpus {
		if doc == nil {
			return nil, fmt.Errorf("metric: corpus document %d is nil", i)
		}
		for _, k := range doc.Indices() {
			if k < universe {
				df[k]++
			}
		}
	}
	n := float64(len(corpus))
	weights := make([]float64, universe)
	for k := range weights {
		weights[k] = math.Log((1+n)/(1+float64(df[k]))) + 1
	}
	return weights, nil
}

// Distance implements Distance.
func (wj *WeightedJaccard) Distance(a, b *bitset.Set) float64 {
	var inter, union float64
	// Iterate the union via indices of both sets.
	seen := make(map[int]bool)
	for _, k := range a.Indices() {
		w := wj.weight(k)
		union += w
		if k < b.Len() && b.Contains(k) {
			inter += w
		}
		seen[k] = true
	}
	for _, k := range b.Indices() {
		if !seen[k] {
			union += wj.weight(k)
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - inter/union
}

func (wj *WeightedJaccard) weight(k int) float64 {
	if k < len(wj.weights) {
		return wj.weights[k]
	}
	return 1 // out-of-vocabulary keywords get neutral weight
}

// Metric implements Distance. Weighted Jaccard with non-negative weights
// satisfies the triangle inequality.
func (wj *WeightedJaccard) Metric() bool { return true }

// Name implements Distance.
func (wj *WeightedJaccard) Name() string { return "weighted-jaccard" }

// Cosine is the cosine distance 1 − cos(a, b) over indicator vectors.
// It is NOT a metric (the triangle inequality fails in general — the
// angular distance would be, but the paper's normalization conventions use
// [0,1] dissimilarities), so solvers reject it unless explicitly allowed.
type Cosine struct{}

// Distance implements Distance.
func (Cosine) Distance(a, b *bitset.Set) float64 {
	na, nb := a.Count(), b.Count()
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return 1
	}
	dot := float64(a.IntersectionCount(b))
	return 1 - dot/math.Sqrt(float64(na)*float64(nb))
}

// Metric implements Distance.
func (Cosine) Metric() bool { return false }

// Name implements Distance.
func (Cosine) Name() string { return "cosine" }
