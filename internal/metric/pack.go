package metric

import (
	"fmt"
	"math"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/par"
)

// PackDistancer is implemented by distances that can score one set against
// every member of a bitset.Pack in a single flat-memory sweep. It is the
// row primitive behind the streaming engine's incremental gain cache: one
// DistancePack call prices an arriving task against a whole buffer (or a
// worker's whole active set) without per-pair interface dispatch or
// pointer chasing.
//
// Implementations MUST produce bit-identical values to calling Distance
// against the *Set each member was appended from — the gain cache stores
// these rows and the cached-vs-recomputed equality property test holds the
// two paths to exact equality.
type PackDistancer interface {
	Distance
	// DistancePack stores d(from, pack[i]) into out[i] for every i.
	// len(out) must be >= pack.Len().
	DistancePack(from *bitset.Set, pack *bitset.Pack, out []float64)
}

// DistancePack implements PackDistancer: one flat intersection walk, then
// unions by the exact integer identity |a∪b| = |a|+|b|−|a∩b| over the
// pack's cached popcounts — the same integers the two-pass count
// produces, so the resulting floats are bit-identical to Distance.
func (Jaccard) DistancePack(from *bitset.Set, pack *bitset.Pack, out []float64) {
	pack.IntersectionCountsRow(from, out)
	fo := from.Count()
	for i, n := 0, pack.Len(); i < n; i++ {
		inter := int(out[i])
		union := fo + pack.OnesAt(i) - inter
		if union == 0 {
			out[i] = 0
			continue
		}
		out[i] = 1 - float64(inter)/float64(union)
	}
}

// DistancePack implements PackDistancer: symmetric differences via
// |a△b| = |a|+|b|−2|a∩b| over one intersection walk. Capacity mismatches
// panic exactly as the pairwise path does.
func (Hamming) DistancePack(from *bitset.Set, pack *bitset.Pack, out []float64) {
	n := from.Len()
	pack.IntersectionCountsRow(from, out)
	fo := from.Count()
	for i, m := 0, pack.Len(); i < m; i++ {
		if pack.LenAt(i) != n {
			panic(fmt.Sprintf("metric: Hamming over mismatched capacities %d and %d", pack.LenAt(i), n))
		}
		if n == 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(fo+pack.OnesAt(i)-2*int(out[i])) / float64(n)
	}
}

// DistancePack implements PackDistancer. Capacity mismatches panic exactly
// as the pairwise path does.
func (e Euclidean) DistancePack(from *bitset.Set, pack *bitset.Pack, out []float64) {
	n := from.Len()
	pack.IntersectionCountsRow(from, out)
	fo := from.Count()
	for i, m := 0, pack.Len(); i < m; i++ {
		if pack.LenAt(i) != n {
			panic(fmt.Sprintf("metric: Euclidean over mismatched capacities %d and %d", pack.LenAt(i), n))
		}
		if n == 0 {
			out[i] = 0
			continue
		}
		out[i] = math.Sqrt(float64(fo+pack.OnesAt(i)-2*int(out[i])) / float64(n))
	}
}

// Row fills out[i] = d(from, pack[i]), preferring the PackDistancer kernel
// and falling back to pairwise Distance calls over sets(i) for distances
// without pack support (sets(i) must return the *Set member i was appended
// from). Both paths are bit-identical by contract, so callers may cache
// rows from either and interchange them with direct Distance calls.
func Row(d Distance, from *bitset.Set, pack *bitset.Pack, sets func(i int) *bitset.Set, out []float64) {
	if pd, ok := d.(PackDistancer); ok {
		pd.DistancePack(from, pack, out)
		return
	}
	for i, n := 0, pack.Len(); i < n; i++ {
		out[i] = d.Distance(from, sets(i))
	}
}

// rowGrain is the break-even chunk size for RowP: a packed member costs a
// few nanoseconds, so chunks below ~2k members spend more on goroutine
// fan-out than they save.
const rowGrain = 2048

// RowP is Row with the pack split into contiguous chunks priced by up to
// p goroutines (p <= 0 means all cores, par.N). Each chunk is a zero-copy
// Pack.Slice view writing its own out[lo:hi] — disjoint slots, so the
// values are the same floats Row stores, in every chunking (the usual
// bit-identical parallelism contract; see package par). Rows below the
// fan-out break-even run serially, so callers can use RowP
// unconditionally.
func RowP(d Distance, from *bitset.Set, pack *bitset.Pack, sets func(i int) *bitset.Set, out []float64, p int) {
	n := pack.Len()
	if p == 1 || n < 2*rowGrain {
		// Serial fast path, decided before any closure is built: the
		// chunk closures below escape through par and would cost one
		// heap allocation per call, which the assigner's zero-alloc
		// hot path cannot afford.
		Row(d, from, pack, sets, out)
		return
	}
	pd, packed := d.(PackDistancer)
	if !packed {
		// The pairwise fallback is interface-dispatch bound, not
		// memory bound; chunk it all the same.
		par.DoMin(n, rowGrain, p, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = d.Distance(from, sets(i))
			}
		})
		return
	}
	par.DoMin(n, rowGrain, p, func(lo, hi int) {
		view := pack.Slice(lo, hi)
		pd.DistancePack(from, &view, out[lo:hi])
	})
}
