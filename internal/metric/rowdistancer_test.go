package metric

import (
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/bitset"
)

// TestDistanceRowBitIdentical is the RowDistancer contract: the batch path
// must return the exact float64 of the per-pair Distance for every metric
// that implements it.
func TestDistanceRowBitIdentical(t *testing.T) {
	metrics := []Distance{Jaccard{}, Hamming{}, Euclidean{}}
	r := rand.New(rand.NewSource(97))
	for _, m := range metrics {
		rd, ok := m.(RowDistancer)
		if !ok {
			t.Fatalf("%s does not implement RowDistancer", m.Name())
		}
		for trial := 0; trial < 20; trial++ {
			universe := 1 + r.Intn(150)
			from := bitset.New(universe)
			for i := 0; i < universe; i++ {
				if r.Intn(3) == 0 {
					from.Add(i)
				}
			}
			to := make([]*bitset.Set, r.Intn(20))
			for j := range to {
				s := bitset.New(universe)
				for i := 0; i < universe; i++ {
					if r.Intn(4) == 0 {
						s.Add(i)
					}
				}
				to[j] = s
			}
			out := make([]float64, len(to))
			rd.DistanceRow(from, to, out)
			for j, s := range to {
				if want := m.Distance(from, s); out[j] != want {
					t.Fatalf("%s trial %d: DistanceRow[%d] = %v, want %v", m.Name(), trial, j, out[j], want)
				}
			}
		}
	}
}

// TestDistanceRowEmptySets covers the union == 0 edge of Jaccard's batch
// path, which must mirror the per-pair convention (distance 0).
func TestDistanceRowEmptySets(t *testing.T) {
	empty := bitset.New(8)
	out := make([]float64, 2)
	Jaccard{}.DistanceRow(empty, []*bitset.Set{bitset.New(8), bitset.FromIndices(8, 1)}, out)
	if want := (Jaccard{}).Distance(empty, bitset.New(8)); out[0] != want {
		t.Errorf("empty-vs-empty: got %v, want %v", out[0], want)
	}
	if want := (Jaccard{}).Distance(empty, bitset.FromIndices(8, 1)); out[1] != want {
		t.Errorf("empty-vs-nonempty: got %v, want %v", out[1], want)
	}
}
