package metric_test

import (
	"fmt"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/metric"
)

// ExampleJaccard computes the paper's default task diversity.
func ExampleJaccard() {
	transcription := bitset.FromIndices(8, 0, 1, 2) // audio, english, news
	tagging := bitset.FromIndices(8, 2, 3)          // news, tagging
	var d metric.Jaccard
	fmt.Printf("d = %.2f\n", d.Distance(transcription, tagging))
	fmt.Printf("rel = %.2f\n", metric.Relevance(d, transcription, tagging))
	// Output:
	// d = 0.75
	// rel = 0.25
}

// ExampleVerifyMetric shows how a custom distance is vetted before use:
// the approximation guarantees of the HTA solvers require a true metric.
func ExampleVerifyMetric() {
	sample := []*bitset.Set{
		bitset.FromIndices(4, 1),
		bitset.FromIndices(4, 1, 2),
		bitset.FromIndices(4, 2),
	}
	if v := metric.VerifyMetric(metric.Jaccard{}, sample, 1e-9); v == nil {
		fmt.Println("jaccard: ok")
	}
	if v := metric.VerifyMetric(metric.Dice{}, sample, 1e-9); v != nil {
		fmt.Println("dice:", v.Axiom, "violated")
	}
	// Output:
	// jaccard: ok
	// dice: triangle violated
}
