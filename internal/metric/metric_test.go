package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htacs/ata/internal/bitset"
)

func set(n int, idx ...int) *bitset.Set { return bitset.FromIndices(n, idx...) }

func TestJaccardKnownValues(t *testing.T) {
	cases := []struct {
		a, b *bitset.Set
		want float64
	}{
		{set(8, 0, 1), set(8, 0, 1), 0},
		{set(8, 0, 1), set(8, 2, 3), 1},
		{set(8, 0, 1, 2), set(8, 1, 2, 3), 0.5},
		{set(8), set(8), 0},            // empty vs empty
		{set(8), set(8, 1), 1},         // empty vs nonempty
		{set(8, 0), set(8, 0, 1), 0.5}, // subset
	}
	var j Jaccard
	for i, c := range cases {
		if got := j.Distance(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Jaccard(%v,%v) = %g, want %g", i, c.a, c.b, got, c.want)
		}
	}
}

func TestHammingKnownValues(t *testing.T) {
	var h Hamming
	if got := h.Distance(set(4, 0, 1), set(4, 1, 2)); got != 0.5 {
		t.Errorf("Hamming = %g, want 0.5", got)
	}
	if got := h.Distance(set(4), set(4)); got != 0 {
		t.Errorf("Hamming empty = %g, want 0", got)
	}
}

func TestEuclideanKnownValues(t *testing.T) {
	var e Euclidean
	if got := e.Distance(set(4, 0, 1), set(4, 1, 2)); math.Abs(got-math.Sqrt(0.5)) > 1e-12 {
		t.Errorf("Euclidean = %g, want sqrt(0.5)", got)
	}
}

func TestMismatchedCapacityPanics(t *testing.T) {
	for _, d := range []Distance{Hamming{}, Euclidean{}} {
		t.Run(d.Name(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			d.Distance(set(4, 0), set(8, 0))
		})
	}
}

func TestDiceNotClaimedMetric(t *testing.T) {
	if (Dice{}).Metric() {
		t.Fatal("Dice must report Metric() = false")
	}
	for _, d := range []Distance{Jaccard{}, Hamming{}, Euclidean{}} {
		if !d.Metric() {
			t.Errorf("%s must report Metric() = true", d.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"jaccard", "hamming", "euclidean", "dice", "cosine"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if d.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, d.Name())
		}
	}
	if _, err := ByName("manhattan"); err == nil {
		t.Error("ByName(manhattan) should fail")
	}
}

func randomSample(r *rand.Rand, count, universe int) []*bitset.Set {
	sample := make([]*bitset.Set, count)
	for i := range sample {
		s := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(3) == 0 {
				s.Add(k)
			}
		}
		sample[i] = s
	}
	return sample
}

func TestVerifyMetricAcceptsMetrics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sample := randomSample(r, 25, 40)
	for _, d := range []Distance{Jaccard{}, Hamming{}, Euclidean{}} {
		if v := VerifyMetric(d, sample, 1e-9); v != nil {
			t.Errorf("%s: unexpected violation: %v", d.Name(), v)
		}
	}
}

func TestVerifyMetricCatchesDice(t *testing.T) {
	// Classic triangle violation for Dice: a={1}, b={1,2}, c={2}.
	sample := []*bitset.Set{set(4, 1), set(4, 1, 2), set(4, 2)}
	v := VerifyMetric(Dice{}, sample, 1e-9)
	if v == nil {
		t.Fatal("VerifyMetric(Dice) found no violation, want triangle violation")
	}
	if v.Axiom != "triangle" {
		t.Fatalf("violation axiom = %q, want triangle (%v)", v.Axiom, v)
	}
	if v.String() == "" {
		t.Fatal("violation string empty")
	}
}

func TestVerifyMetricCatchesAsymmetry(t *testing.T) {
	v := VerifyMetric(asymmetric{}, []*bitset.Set{set(4, 0), set(4, 1, 2)}, 1e-9)
	if v == nil || v.Axiom != "symmetry" {
		t.Fatalf("violation = %v, want symmetry", v)
	}
}

// asymmetric is a deliberately broken Distance for VerifyMetric tests.
type asymmetric struct{}

func (asymmetric) Distance(a, b *bitset.Set) float64 {
	if a.Count() < b.Count() {
		return 0.2
	}
	if a.Count() > b.Count() {
		return 0.7
	}
	return 0
}
func (asymmetric) Metric() bool { return false }
func (asymmetric) Name() string { return "asymmetric" }

func TestRelevance(t *testing.T) {
	// rel(t,w) = 1 − Jaccard(t,w); Table I values are produced this way in
	// the original platform, sanity-check the complement identity here.
	task, worker := set(8, 0, 1, 2), set(8, 1, 2, 3)
	if got := Relevance(Jaccard{}, task, worker); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Relevance = %g, want 0.5", got)
	}
}

func TestQuickJaccardTriangle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSample(r, 3, 1+r.Intn(60))
		var j Jaccard
		ab, bc, ac := j.Distance(s[0], s[1]), j.Distance(s[1], s[2]), j.Distance(s[0], s[2])
		return ac <= ab+bc+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistancesInRange(t *testing.T) {
	ds := []Distance{Jaccard{}, Hamming{}, Euclidean{}, Dice{}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomSample(r, 2, 1+r.Intn(100))
		for _, d := range ds {
			v := d.Distance(s[0], s[1])
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
