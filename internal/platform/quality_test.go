package platform

import (
	"net/http/httptest"
	"testing"

	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/quality"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

// newQualityServer wires the full quality stack the way hta-server does:
// a trust-aware sharded engine, a tracker with redundancy k, and the
// answer endpoints on top. The tracker is returned so tests can assert
// on accounting directly.
func newQualityServer(t *testing.T, k int, qcfg quality.Config) (*shard.Engine, *quality.Tracker, *httptest.Server, *Client) {
	t.Helper()
	eng, err := shard.New(shard.Config{
		Shards:        2,
		StealInterval: -1,
		Registry:      obs.NewRegistry(),
		Stream:        stream.Config{Xmax: 3, BufferLimit: 256, WithTrust: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	qcfg.K = k
	tr, err := quality.New(qcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Shards:   eng,
		Universe: universe,
		Quality:  tr,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return eng, tr, ts, NewClient(ts.URL, ts.Client())
}

// TestQualityEndToEnd walks the whole surface: uploads replicate k-fold,
// answers resolve at k, GET /api/answers reports the consensus, the
// reputation endpoint tracks gold grades, and a quarantine propagates to
// both the HTTP status (403) and the engine's trust multiplier.
func TestQualityEndToEnd(t *testing.T) {
	const k = 2
	eng, tr, _, client := newQualityServer(t, k, quality.Config{
		Options: 4, QuarantineFloor: 0.4, MinGold: 3,
	})

	g, err := workload.NewGenerator(workload.Config{Seed: 3, Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	const logical = 10
	if err := client.AddTasks(g.Tasks(logical/5+1, 5)[:logical]); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Submitted != logical*k {
		t.Fatalf("upload submitted %d engine tasks, want %d (k-fold replication)", st.Submitted, logical*k)
	}

	// Two honest workers answer the same logical task once each — the
	// second vote resolves it.
	for _, w := range []string{"w-a", "w-b"} {
		if _, err := client.Register(w, sixKeywords(0)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := client.SubmitAnswer("w-a", "task-0000", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resolved {
		t.Fatalf("first of %d votes resolved the task: %+v", k, res)
	}
	// Replica IDs are accepted and collapse onto the logical task.
	res, err = client.SubmitAnswer("w-b", quality.ReplicaID("task-0000", 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolved {
		t.Fatalf("vote %d did not resolve: %+v", k, res)
	}
	// The same worker voting again on any replica is a conflict.
	if _, err := client.SubmitAnswer("w-a", "task-0000", 1); !IsAnswerConflict(err) {
		t.Fatalf("duplicate vote: %v", err)
	}

	view, err := client.Answers()
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Answers) != 1 || view.Answers[0].TaskID != "task-0000" || view.Answers[0].Option != 2 {
		t.Fatalf("answers view: %+v", view.Answers)
	}
	if !view.Stats.Conserved() {
		t.Fatalf("served stats not conserved: %+v", view.Stats)
	}

	// Gold grading over the API: a spammer fails three known-answer tasks
	// and is quarantined — the next submit is 403 and the engine's trust
	// multiplier drops to zero.
	for _, id := range []string{"g0", "g1", "g2"} {
		if err := tr.AddGold(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Register("w-spam", sixKeywords(6)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"g0", "g1", "g2"} {
		if _, err := client.SubmitAnswer("w-spam", id, 3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.SubmitAnswer("w-spam", "task-0001", 0); err == nil || IsAnswerConflict(err) {
		t.Fatalf("quarantined submit: %v, want a 403 rejection", err)
	}
	rep, err := client.Reputation("w-spam")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Quarantined || rep.GoldSeen != 3 || rep.GoldCorrect != 0 || rep.EngineTrust != 0 {
		t.Fatalf("spammer reputation: %+v", rep)
	}
	if trust, err := eng.Trust("w-spam"); err != nil || trust != 0 {
		t.Fatalf("engine trust after quarantine: %v, %v", trust, err)
	}
	if _, err := client.Reputation("w-ghost"); err == nil {
		t.Fatal("reputation of unknown worker did not 404")
	}
}

// TestAnswersRetryIsIdempotentGET pins the retry contract for the read
// side: GET /api/answers is always retryable (no idempotency key needed),
// so a plain WithRetry client recovers from transient 500s and the
// repeated reads change nothing.
func TestAnswersRetryIsIdempotentGET(t *testing.T) {
	_, tr, ts, seed := newQualityServer(t, 1, quality.Config{Options: 4})
	if _, err := seed.Register("w0", sixKeywords(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := seed.SubmitAnswer("w0", "t0", 2); err != nil {
		t.Fatal(err)
	}

	flaky, calls := flakyHandler(2, ts.Config.Handler)
	fs := httptest.NewServer(flaky)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client(), fastRetry(4))

	view, err := client.Answers()
	if err != nil {
		t.Fatalf("Answers through 2 transient 500s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(view.Answers) != 1 || view.Answers[0].Option != 2 {
		t.Fatalf("retried read returned %+v", view.Answers)
	}
	if st := tr.Stats(); st.AnswersSubmitted != 1 {
		t.Fatalf("retried GETs perturbed the tracker: %+v", st)
	}
}

// TestSubmitAnswerRetryNeverDoubleCounts is the regression the
// idempotency layer exists for: the first POST /api/answers applies but
// its response is lost; the keyed retry must replay the stored response
// instead of re-submitting — a re-submit would either 409 (duplicate
// vote) or, at k>1, count the same worker twice toward consensus.
func TestSubmitAnswerRetryNeverDoubleCounts(t *testing.T) {
	_, tr, ts, seed := newQualityServer(t, 2, quality.Config{Options: 4})
	if _, err := seed.Register("w0", sixKeywords(0)); err != nil {
		t.Fatal(err)
	}

	lossy, calls := lostResponseHandler(1, ts.Config.Handler)
	fs := httptest.NewServer(lossy)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client(), fastRetry(4), WithIdempotency())

	res, err := client.SubmitAnswer("w0", "t-retry", 1)
	if err != nil {
		t.Fatalf("keyed SubmitAnswer through a lost response: %v", err)
	}
	if res.Resolved {
		t.Fatalf("single vote at k=2 resolved: %+v", res)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (apply + replay)", got)
	}
	st := tr.Stats()
	if st.AnswersSubmitted != 1 || st.PendingPartial != 1 {
		t.Fatalf("retried answer double-counted: %+v", st)
	}
	if !st.Conserved() {
		t.Fatalf("conservation broken by retry: %+v", st)
	}

	// Sanity check the counter-factual: an unkeyed client re-sending the
	// same vote is refused as a conflict, proving the keyed path was the
	// replay and not a lucky duplicate acceptance.
	bare := NewClient(fs.URL, fs.Client())
	if _, err := bare.SubmitAnswer("w0", "t-retry", 1); !IsAnswerConflict(err) {
		t.Fatalf("unkeyed duplicate: %v, want 409 conflict", err)
	}
	if st := tr.Stats(); st.AnswersSubmitted != 1 {
		t.Fatalf("conflict leaked into accounting: %+v", st)
	}
}
