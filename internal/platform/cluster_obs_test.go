package platform

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/htacs/ata/internal/cluster"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/quality"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/trace"
)

// obsCluster is a full-stack in-process cluster for the observability
// e2e tests: each node runs a shard engine, the cluster RPC plane, AND
// the public platform surface on one listener (exactly what hta-server
// -node mounts), fronted by a gateway serving the same public surface.
// Every component gets isolated registries/tracers/journals so the
// federation genuinely crosses "process" boundaries.
type obsCluster struct {
	gw      *cluster.Gateway
	gwSrv   *httptest.Server
	nodeSrv []*httptest.Server
}

func newObsCluster(t *testing.T, n int) *obsCluster {
	t.Helper()
	tc := &obsCluster{}
	specs := make([]cluster.PeerSpec, 0, n)
	for i := 0; i < n; i++ {
		reg := obs.NewRegistry()
		tracer := trace.NewRecorder(64, 1)
		journal := ops.NewJournal(64)
		eng, err := shard.New(shard.Config{
			Shards:        2,
			StealInterval: -1,
			Stream:        stream.Config{Xmax: 4, BufferLimit: 64},
			Registry:      reg,
			Tracer:        tracer,
			Journal:       journal,
		})
		if err != nil {
			t.Fatalf("node %d engine: %v", i, err)
		}
		t.Cleanup(func() { eng.Close() })
		name := "n" + string(rune('0'+i))
		node, err := cluster.NewNode(cluster.NodeConfig{
			Name: name, Engine: eng, Tracer: tracer, Registry: reg, Journal: journal,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		srv, err := NewServer(ServerConfig{
			Shards: eng, Universe: 64, Metrics: reg, Tracer: tracer, Journal: journal,
		})
		if err != nil {
			t.Fatalf("node %d server: %v", i, err)
		}
		outer := http.NewServeMux()
		outer.Handle("/cluster/", node)
		outer.Handle("/", srv)
		hs := httptest.NewServer(outer)
		t.Cleanup(hs.Close)
		tc.nodeSrv = append(tc.nodeSrv, hs)
		specs = append(specs, cluster.PeerSpec{Name: name, URL: hs.URL})
	}
	gwReg := obs.NewRegistry()
	gwTracer := trace.NewRecorder(64, 1)
	gwJournal := ops.NewJournal(64)
	gw, err := cluster.NewGateway(cluster.GatewayConfig{
		Peers:              specs,
		HeartbeatInterval:  -1,
		FailAfter:          1,
		RetryBackoff:       time.Millisecond,
		Registry:           gwReg,
		Tracer:             gwTracer,
		Journal:            gwJournal,
		FederationInterval: -1, // every read re-federates (no cache staleness in tests)
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	t.Cleanup(func() { gw.Close() })
	tc.gw = gw
	gwSrv, err := NewServer(ServerConfig{
		Shards: gw, Universe: 64, Metrics: gwReg, Tracer: gwTracer, Journal: gwJournal,
	})
	if err != nil {
		t.Fatalf("gateway server: %v", err)
	}
	tc.gwSrv = httptest.NewServer(gwSrv)
	t.Cleanup(tc.gwSrv.Close)
	return tc
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestClusterStitchedTrace proves the tentpole end to end: one sampled
// public request on the gateway yields a single distributed trace whose
// gateway RPC span and node-side apply span share the trace ID, with the
// remote span parented under the RPC span that carried it.
func TestClusterStitchedTrace(t *testing.T) {
	tc := newObsCluster(t, 3)
	resp, err := http.Post(tc.gwSrv.URL+"/api/workers", "application/json",
		strings.NewReader(`{"id":"w1","keywords":[1,2,3,4,5,6]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: HTTP %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	if traceID == "" {
		t.Fatal("register response carries no X-Trace-Id")
	}

	// The root span ends moments after the response is written; poll.
	deadline := time.Now().Add(5 * time.Second)
	var lastErr string
	for time.Now().Before(deadline) {
		code, body := httpGet(t, tc.gwSrv.URL+"/debug/trace?cluster=1&format=wire&n=0")
		if code != http.StatusOK {
			t.Fatalf("cluster trace: HTTP %d", code)
		}
		traces, err := trace.ReadWire(strings.NewReader(string(body)))
		if err != nil {
			t.Fatalf("parse wire traces: %v", err)
		}
		var wt *trace.WireTrace
		for i := range traces {
			if traces[i].TraceID == traceID {
				wt = &traces[i]
				break
			}
		}
		if wt == nil {
			lastErr = "trace " + traceID + " not yet stitched"
			time.Sleep(20 * time.Millisecond)
			continue
		}
		var root, rpc, apply *trace.WireSpan
		for i := range wt.Spans {
			sp := &wt.Spans[i]
			switch sp.Name {
			case "POST /api/workers":
				root = sp
			case "cluster.rpc":
				rpc = sp
			case "node.apply":
				apply = sp
			}
		}
		if root == nil || rpc == nil || apply == nil {
			lastErr = "stitched trace incomplete"
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if got := root.Attrs["node"]; got != "gateway" {
			t.Fatalf("root span node attr = %v", got)
		}
		if got := rpc.Attrs["node"]; got != "gateway" {
			t.Fatalf("rpc span node attr = %v", got)
		}
		nodeAttr, _ := apply.Attrs["node"].(string)
		if !strings.HasPrefix(nodeAttr, "n") {
			t.Fatalf("apply span node attr = %v", apply.Attrs["node"])
		}
		if apply.Parent != rpc.ID {
			t.Fatalf("apply parent %s, want rpc span %s", apply.Parent, rpc.ID)
		}
		if rpc.Parent != root.ID {
			t.Fatalf("rpc parent %s, want root span %s", rpc.Parent, root.ID)
		}
		return
	}
	t.Fatalf("stitched trace never appeared: %s", lastErr)
}

// TestClusterFederatedMetrics exercises the federated /metrics surface:
// per-node labels in the Prometheus text, and counter rollups equal to
// the per-node sum in the snapshot form.
func TestClusterFederatedMetrics(t *testing.T) {
	tc := newObsCluster(t, 3)
	resp, err := http.Post(tc.gwSrv.URL+"/api/workers", "application/json",
		strings.NewReader(`{"id":"w1","keywords":[1,2,3,4,5,6]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	code, body := httpGet(t, tc.gwSrv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	text := string(body)
	for _, want := range []string{`node="n0"`, `node="n1"`, `node="n2"`, `node="gateway"`, "hta_build_info", "# TYPE"} {
		if !strings.Contains(text, want) {
			t.Fatalf("federated /metrics missing %q:\n%.2000s", want, text)
		}
	}
	if !strings.Contains(text, "hta_uptime_seconds") {
		t.Fatal("federated /metrics missing hta_uptime_seconds")
	}

	// ?local=1 bypasses federation: no per-node labels from members.
	_, localBody := httpGet(t, tc.gwSrv.URL+"/metrics?local=1")
	if strings.Contains(string(localBody), `node="n0"`) {
		t.Fatal("?local=1 still federated")
	}

	code, body = httpGet(t, tc.gwSrv.URL+"/metrics?format=snapshot")
	if code != http.StatusOK {
		t.Fatalf("snapshot form: HTTP %d", code)
	}
	snap, err := obs.ReadSnapshot(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("parse merged snapshot: %v", err)
	}
	checked := false
	for _, f := range snap.Families {
		if f.Type != obs.TypeCounter {
			continue
		}
		// For every rollup series (no node label) the per-node series with
		// matching remaining labels must sum to it.
		for _, s := range f.Series {
			if _, ok := s.Labels[obs.NodeLabel]; ok || s.Value == nil {
				continue
			}
			var sum float64
			for _, p := range f.Series {
				if _, ok := p.Labels[obs.NodeLabel]; !ok || p.Value == nil {
					continue
				}
				match := true
				for k, v := range s.Labels {
					if p.Labels[k] != v {
						match = false
						break
					}
				}
				if match && len(p.Labels) == len(s.Labels)+1 {
					sum += *p.Value
				}
			}
			if sum != *s.Value {
				t.Fatalf("family %s rollup %v != per-node sum %v", f.Name, *s.Value, sum)
			}
			checked = true
		}
	}
	if !checked {
		t.Fatal("no counter rollups found in merged snapshot")
	}
}

// TestClusterFailoverEvents induces a node failure and checks that the
// journal surfaces it (with the right node ID) through the gateway's
// merged /api/events, and that the verbose health score reacts.
func TestClusterFailoverEvents(t *testing.T) {
	tc := newObsCluster(t, 3)
	tc.nodeSrv[2].Close() // n2 goes dark
	tc.gw.CheckHealth(context.Background())

	code, body := httpGet(t, tc.gwSrv.URL+"/api/events")
	if code != http.StatusOK {
		t.Fatalf("/api/events: HTTP %d", code)
	}
	events, err := ops.ReadEvents(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var failover, repartition bool
	for _, ev := range events {
		if ev.Type == ops.EventFailover && ev.Node == "n2" {
			failover = true
		}
		if ev.Type == ops.EventRepartition && ev.Node == "n2" {
			repartition = true
		}
	}
	if !failover || !repartition {
		t.Fatalf("failover=%v repartition=%v in %+v", failover, repartition, events)
	}

	code, body = httpGet(t, tc.gwSrv.URL+"/healthz?verbose=1")
	if code != http.StatusOK {
		t.Fatalf("verbose healthz: HTTP %d", code)
	}
	var h ops.Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("verbose healthz body: %v\n%s", err, body)
	}
	if h.Score >= 1 || h.Events < 2 {
		t.Fatalf("health did not register the failover: %+v", h)
	}
	if h.Status != "ok" && h.Status != "degraded" && h.Status != "critical" {
		t.Fatalf("health status %q", h.Status)
	}
}

// TestObsRoutesLocal pins the satellite surface on a single-process
// streaming deployment: X-Trace-Id on the quality endpoints, build info
// and uptime in /metrics, the local journal at /api/events, and the
// verbose health score.
func TestObsRoutesLocal(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := trace.NewRecorder(16, 1)
	journal := ops.NewJournal(16)
	eng, err := shard.New(shard.Config{
		Shards: 1, Stream: stream.Config{Xmax: 4, BufferLimit: 64, WithTrust: true},
		Registry: reg, Tracer: tracer, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	qt, err := quality.New(quality.Config{K: 1, Metrics: quality.NewMetrics(reg), Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Shards: eng, Universe: 16, Quality: qt,
		Metrics: reg, Tracer: tracer, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := post("/api/workers", `{"id":"w1","keywords":[1,2,3,4,5,6]}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: HTTP %d", resp.StatusCode)
	}
	if resp := post("/api/tasks", `{"tasks":[{"id":"t1","reward":1,"keywords":[1]}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("add task: HTTP %d", resp.StatusCode)
	}

	// Satellite: the quality endpoints echo the sampled trace ID.
	resp := post("/api/answers", `{"worker":"w1","task_id":"t1","option":0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit answer: HTTP %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("POST /api/answers: no X-Trace-Id")
	}
	rep, err := http.Get(ts.URL + "/api/workers/w1/reputation")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rep.Body)
	rep.Body.Close()
	if rep.StatusCode != http.StatusOK || rep.Header.Get("X-Trace-Id") == "" {
		t.Fatalf("reputation: HTTP %d, X-Trace-Id %q", rep.StatusCode, rep.Header.Get("X-Trace-Id"))
	}

	code, body := httpGet(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	text := string(body)
	if !strings.Contains(text, `hta_build_info{go_version="`) || !strings.Contains(text, `version="dev"`) {
		t.Fatalf("/metrics missing build info:\n%.1000s", text)
	}
	if !strings.Contains(text, "hta_uptime_seconds") {
		t.Fatal("/metrics missing uptime")
	}

	journal.Emit(ops.EventQuarantine, "local", "worker", "w9")
	code, body = httpGet(t, ts.URL+"/api/events")
	if code != http.StatusOK {
		t.Fatalf("/api/events: HTTP %d", code)
	}
	events, err := ops.ReadEvents(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range events {
		if ev.Type == ops.EventQuarantine && ev.Attrs["worker"] == "w9" {
			found = true
		}
	}
	if !found {
		t.Fatalf("journal event not served: %+v", events)
	}

	code, body = httpGet(t, ts.URL+"/healthz?verbose=1")
	var h ops.Health
	if code != http.StatusOK || json.Unmarshal(body, &h) != nil || h.Status == "" {
		t.Fatalf("verbose healthz: HTTP %d %s", code, body)
	}

	// /debug/trace stays mounted in non-cluster mode (pprof rides along).
	code, _ = httpGet(t, ts.URL+"/debug/trace?format=wire&n=0")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace: HTTP %d", code)
	}
	code, _ = httpGet(t, ts.URL+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof: HTTP %d", code)
	}
}
