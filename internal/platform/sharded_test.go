package platform

import (
	"bytes"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/question"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

func newShardedServer(t *testing.T, shards, numTasks int) (*shard.Engine, *Client) {
	t.Helper()
	eng, err := shard.New(shard.Config{
		Shards:        shards,
		StealInterval: -1,
		Registry:      obs.NewRegistry(),
		Stream:        stream.Config{Xmax: 3, BufferLimit: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, err := NewServer(ServerConfig{
		Shards:   eng,
		Universe: universe,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	if numTasks > 0 {
		g, err := workload.NewGenerator(workload.Config{Seed: 3, Universe: universe})
		if err != nil {
			t.Fatal(err)
		}
		if err := client.AddTasks(g.Tasks(numTasks/5+1, 5)[:numTasks]); err != nil {
			t.Fatal(err)
		}
	}
	return eng, client
}

func TestShardedServerConfigValidation(t *testing.T) {
	eng, err := shard.New(shard.Config{
		Shards: 1, Registry: obs.NewRegistry(), Stream: stream.Config{Xmax: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	batch, _ := adaptive.NewEngine(adaptive.Config{Xmax: 3})
	if _, err := NewServer(ServerConfig{Engine: batch, Shards: eng, Universe: 10}); err == nil {
		t.Error("both engines accepted")
	}
	if _, err := NewServer(ServerConfig{Shards: eng}); err == nil {
		t.Error("zero universe accepted")
	}
	bank := question.NewBank()
	if _, err := NewServer(ServerConfig{Shards: eng, Universe: 10, Questions: bank}); err == nil {
		t.Error("questions accepted in sharded mode")
	}
}

// TestShardedWorkflow drives the full worker loop over the sharded
// backend: upload → register (drains backlog) → complete (pulls) →
// leave (requeues) → stats conserve globally.
func TestShardedWorkflow(t *testing.T) {
	eng, client := newShardedServer(t, 4, 0)

	// Upload before any workers: everything buffers.
	g, err := workload.NewGenerator(workload.Config{Seed: 5, Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	tasks := g.Tasks(4, 5)
	if err := client.AddTasks(tasks); err != nil {
		t.Fatal(err)
	}
	if got := eng.BufferLen(); got != 20 {
		t.Fatalf("buffered %d of 20 uploaded tasks", got)
	}

	// Register: the new worker drains up to Xmax=3 tasks immediately.
	first, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Fatalf("register drained %d tasks, want Xmax=3", len(first))
	}
	got, err := client.Tasks("w1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Tasks returned %d, want 3", len(got))
	}

	// Complete: frees a slot, which pulls from the worker's shard buffer.
	res, err := client.Complete("w1", got[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 3 {
		t.Fatalf("after complete: %d active, want 3 (slot refilled from backlog)", len(res.Tasks))
	}
	if !res.Reassigned {
		t.Fatal("Reassigned = false though a buffered task was pulled")
	}
	for _, v := range res.Tasks {
		if v.ID == got[0].ID {
			t.Fatal("completed task still in display set")
		}
	}

	// Unknown worker and stale task IDs map to 404.
	if _, err := client.Tasks("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown worker: %v", err)
	}
	if _, err := client.Complete("w1", got[0].ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("completing a finished task: %v", err)
	}

	// Stats: conservation must hold over the HTTP surface.
	st, err := client.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Conserved {
		t.Fatalf("conservation violated: %+v", st.Stats)
	}
	if st.Shards != 4 || st.Submitted != 20 || st.Completed != 1 {
		t.Fatalf("stats: %+v", st.Stats)
	}
	if len(st.WorkerSet) != 1 || st.WorkerSet[0].Completed != 1 {
		t.Fatalf("worker set: %+v", st.WorkerSet)
	}

	// Leave: active tasks requeue (buffer has room → none dropped).
	if err := client.Leave("w1"); err != nil {
		t.Fatal(err)
	}
	st, err = client.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active != 0 || !st.Conserved {
		t.Fatalf("after leave: %+v", st.Stats)
	}
}

func TestShardedRegisterValidation(t *testing.T) {
	_, client := newShardedServer(t, 2, 0)
	if _, err := client.Register("w1", []int{1, 2, 3}); err == nil {
		t.Error("fewer than 6 keywords accepted")
	}
	if _, err := client.Register("w1", []int{0, 1, 2, 3, 4, universe}); err == nil {
		t.Error("out-of-universe keyword accepted")
	}
	if _, err := client.Register("w1", sixKeywords(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Register("w1", sixKeywords(0)); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate registration: %v", err)
	}
}

func TestShardedAddTasksReportsDrops(t *testing.T) {
	eng, err := shard.New(shard.Config{
		Shards: 2, StealInterval: -1, Registry: obs.NewRegistry(),
		Stream: stream.Config{Xmax: 1, BufferLimit: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srv, err := NewServer(ServerConfig{Shards: eng, Universe: universe, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	if _, err := client.Register("w1", sixKeywords(0)); err != nil {
		t.Fatal(err)
	}
	g, _ := workload.NewGenerator(workload.Config{Seed: 9, Universe: universe})
	// 1 slot + 2 buffer spaces, 6 tasks → 1 assigned, 2 buffered, 3 dropped.
	if err := client.AddTasks(g.Tasks(2, 3)); err != nil {
		t.Fatal(err)
	}
	st, err := client.ShardStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Active != 1 || st.Buffered != 2 || st.Dropped != 3 || !st.Conserved {
		t.Fatalf("batch fate: %+v", st.Stats)
	}
}

// TestShardedSnapshotMergesShards: the server-level snapshot is the
// consistent merge of per-shard snapshots and round-trips through
// shard.Restore.
func TestShardedSnapshotMergesShards(t *testing.T) {
	eng, client := newShardedServer(t, 3, 30)
	for _, id := range []string{"w1", "w2", "w3"} {
		if _, err := client.Register(id, sixKeywords(rand.Intn(20))); err != nil {
			t.Fatal(err)
		}
	}
	srvSnap := func() *bytes.Buffer {
		var buf bytes.Buffer
		// Find the server through the engine-agnostic surface: rebuild a
		// Server around the same engine to call Snapshot, mirroring what
		// the hta-server shutdown path does.
		srv, err := NewServer(ServerConfig{Shards: eng, Universe: universe, Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}()
	restored, err := shard.Restore(srvSnap, shard.Config{
		Shards: 3, StealInterval: -1, Registry: obs.NewRegistry(),
		Stream: stream.Config{Xmax: 3, BufferLimit: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	want, got := eng.Stats(), restored.Stats()
	if want.Submitted != got.Submitted || want.Active != got.Active ||
		want.Buffered != got.Buffered || !got.Conserved() {
		t.Fatalf("snapshot round trip drifted:\n want %+v\n got  %+v", want, got)
	}
}
