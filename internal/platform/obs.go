package platform

import (
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/trace"
)

// statusRecorder captures the response code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps one endpoint handler with the serving telemetry:
// request counter by endpoint+code, latency histogram by endpoint, the
// shared in-flight gauge, and — when the request wins the tracer's
// sampling draw — a root span propagated through the request context into
// the engine and solver, with the trace ID echoed in X-Trace-Id so a
// client can pull its own trace from /debug/trace. The endpoint label is
// the mux pattern, so path parameters ({id}) do not explode the series
// cardinality.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	reg := s.cfg.Metrics
	latency := reg.Histogram("hta_http_request_seconds",
		"request latency by endpoint", obs.DurationBuckets(), obs.L("endpoint", endpoint))
	inFlight := reg.Gauge("hta_http_in_flight", "requests currently being served")
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		ctx, span := s.cfg.Tracer.Start(r.Context(), endpoint,
			trace.Str("method", r.Method), trace.Str("path", r.URL.Path))
		if ctx != r.Context() {
			// Propagate even an unsampled decision: the sentinel in ctx
			// keeps downstream layers from opening fresh roots of their own.
			r = r.WithContext(ctx)
		}
		if span.Recorded() {
			w.Header().Set("X-Trace-Id", span.TraceID().String())
		}
		inFlight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		span.SetAttrs(trace.Int("code", rec.status))
		span.End()
		latency.Observe(elapsed.Seconds())
		inFlight.Add(-1)
		reg.Counter("hta_http_requests_total", "requests served by endpoint and status code",
			obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(rec.status))).Inc()
		if s.cfg.Logger != nil {
			s.cfg.Logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("endpoint", endpoint), slog.Int("code", rec.status),
				slog.Duration("duration", elapsed))
		}
	}
}

// draining flips when the process enters graceful shutdown; /healthz
// reports 503 from then on so load balancers stop routing here while
// in-flight assignments finish.
type drainState struct {
	flag atomic.Bool
}

// SetDraining marks the server as (un)draining; /healthz returns 503 while
// set. Safe to call from a signal handler goroutine.
func (s *Server) SetDraining(v bool) { s.drain.flag.Store(v) }

// Ready reports whether the server is accepting new work (not draining).
func (s *Server) Ready() bool { return !s.drain.flag.Load() }
