package platform

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/trace"
)

// Version identifies the build in hta_build_info; override at link time
// with -ldflags "-X github.com/htacs/ata/internal/platform.Version=v1.2".
var Version = "dev"

// processStart anchors hta_uptime_seconds.
var processStart = time.Now()

// ClusterObserver is the cluster-wide observability surface a streaming
// backend may implement; the gateway does. The platform detects it
// structurally (no cluster import) and, when present, serves federated
// views: /metrics merged across members, /debug/trace?cluster=1 stitched
// from every retention ring, /api/events as one timeline.
type ClusterObserver interface {
	ClusterTraces(ctx context.Context, n int) []trace.WireTrace
	ClusterEvents(ctx context.Context) []ops.Event
	FederatedSnapshot(ctx context.Context) obs.Snapshot
}

// The journal stays import-free of trace; the platform closes the loop so
// events recorded under a sampled request carry its trace ID.
func init() {
	ops.IDFromContext = func(ctx context.Context) string {
		if sc, ok := trace.SpanContextFromContext(ctx); ok && sc.Valid() {
			return sc.TraceID.String()
		}
		return ""
	}
}

// registerObsRoutes mounts the observability surface: /metrics, /healthz,
// /api/events, /debug/trace and pprof. A backend implementing
// ClusterObserver gets the federated forms; everything else serves the
// process-local views.
func (s *Server) registerObsRoutes(mux *http.ServeMux) {
	reg := s.cfg.Metrics
	reg.Gauge("hta_build_info",
		"build metadata carried in labels; the value is always 1",
		obs.L("version", Version), obs.L("go_version", runtime.Version())).Set(1)
	uptime := reg.Gauge("hta_uptime_seconds", "seconds since process start")

	co, _ := s.cfg.Shards.(ClusterObserver)

	localMetrics := reg.Handler()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		uptime.Set(time.Since(processStart).Seconds())
		q := r.URL.Query()
		if co != nil && q.Get("local") == "" {
			snap := co.FederatedSnapshot(r.Context())
			if q.Get("format") == "snapshot" {
				w.Header().Set("Content-Type", "application/json")
				_ = snap.WriteJSON(w)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = snap.WritePrometheus(w)
			return
		}
		localMetrics.ServeHTTP(w, r)
	})

	plainHealthz := obs.HealthzHandler(s.Ready)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("verbose") == "" {
			plainHealthz.ServeHTTP(w, r)
			return
		}
		var events []ops.Event
		if co != nil {
			events = co.ClusterEvents(r.Context())
		} else {
			events = s.cfg.Journal.Snapshot(0)
		}
		h := ops.ScoreWith(events, time.Now(), s.cfg.Health)
		status := http.StatusOK
		if !s.Ready() {
			h.Status = "draining"
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, h)
	})

	localEvents := s.cfg.Journal.Handler()
	mux.HandleFunc("GET /api/events", func(w http.ResponseWriter, r *http.Request) {
		if co != nil && r.URL.Query().Get("local") == "" {
			w.Header().Set("Content-Type", "application/json")
			_ = ops.WriteEvents(w, co.ClusterEvents(r.Context()))
			return
		}
		localEvents.ServeHTTP(w, r)
	})

	if co == nil {
		trace.RegisterDebug(mux, s.cfg.Tracer)
		return
	}
	localTrace := s.cfg.Tracer.Handler()
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("cluster") == "" {
			localTrace.ServeHTTP(w, r)
			return
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "trace: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		stitched := co.ClusterTraces(r.Context(), n)
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "wire" {
			_ = trace.WriteWire(w, stitched)
			return
		}
		_ = trace.WriteChromeWire(w, stitched)
	})
	trace.RegisterPprof(mux)
}
