package platform

import (
	"bytes"
	"container/list"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"net/http"
	"sync"
	"sync/atomic"
)

// Idempotency keys let clients retry mutating requests safely. The
// platform's default contract is strict: mutations get exactly one
// attempt, because a lost response leaves the client unable to tell
// "never applied" from "applied, reply lost", and replaying would
// double-count the event. A client constructed WithIdempotency opts out
// of that restriction by attaching a unique X-Idempotency-Key header to
// every mutating request; the server remembers each key's response and
// replays it on a retry instead of re-applying the mutation — the same
// contract the cluster RPC layer gets from frame-ID replay dedup.

// idempotencyHeader carries the client's per-request key.
const idempotencyHeader = "X-Idempotency-Key"

// idemEntry is one remembered response.
type idemEntry struct {
	status int
	header http.Header
	body   []byte
}

// idemCache is the bounded keyed response store: key → response,
// FIFO-evicted, with in-progress tracking so two concurrent requests
// carrying the same key apply once and answer twice.
type idemCache struct {
	mu    sync.Mutex
	cap   int
	done  map[string]*idemEntry
	infly map[string]chan struct{}
	order *list.List // keys in completion order
}

func newIdemCache(capacity int) *idemCache {
	return &idemCache{
		cap:   capacity,
		done:  make(map[string]*idemEntry, capacity),
		infly: make(map[string]chan struct{}),
		order: list.New(),
	}
}

func (c *idemCache) begin(key string) (*idemEntry, <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.done[key]; ok {
		return e, nil
	}
	if ch, ok := c.infly[key]; ok {
		return nil, ch
	}
	c.infly[key] = make(chan struct{})
	return nil, nil
}

func (c *idemCache) commit(key string, e *idemEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.infly[key]; ok {
		close(ch)
		delete(c.infly, key)
	}
	if _, ok := c.done[key]; !ok {
		c.done[key] = e
		c.order.PushBack(key)
		for c.order.Len() > c.cap {
			old := c.order.Remove(c.order.Front()).(string)
			delete(c.done, old)
		}
	}
}

func (c *idemCache) abort(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.infly[key]; ok {
		close(ch)
		delete(c.infly, key)
	}
}

// idemRecorder buffers a handler's response so it can be both sent and
// remembered.
type idemRecorder struct {
	http.ResponseWriter
	status int
	body   bytes.Buffer
}

func (r *idemRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *idemRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	r.body.Write(p)
	return r.ResponseWriter.Write(p)
}

// idempotent wraps a mutating handler with keyed replay: requests without
// the header pass straight through; keyed requests are applied once and
// their response replayed to every retry of the same key. Responses with
// 5xx status are not remembered — the handler failed, and a retry should
// re-execute, which matches the client's retry-on-5xx policy.
func (s *Server) idempotent(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get(idempotencyHeader)
		if key == "" {
			h(w, r)
			return
		}
		for {
			cached, inflight := s.idem.begin(key)
			if cached != nil {
				for k, vs := range cached.header {
					w.Header()[k] = vs
				}
				w.WriteHeader(cached.status)
				_, _ = w.Write(cached.body)
				return
			}
			if inflight == nil {
				break
			}
			// A concurrent request with the same key is mid-application:
			// wait for it, then loop to replay its recorded response (or
			// apply ourselves if it aborted on a 5xx).
			<-inflight
		}
		rec := &idemRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status >= 500 {
			s.idem.abort(key)
			return
		}
		s.idem.commit(key, &idemEntry{
			status: rec.status,
			header: rec.Header().Clone(),
			body:   append([]byte(nil), rec.body.Bytes()...),
		})
	}
}

// WithIdempotency opts the client into safe mutation retries: every
// mutating request carries a fresh idempotency key, and transient
// failures (network errors, 5xx) are retried under the client's
// RetryPolicy — the server deduplicates by key, so a retry whose first
// attempt was applied replays the recorded response instead of
// double-applying. Combine with WithRetry; without a policy the option
// only adds the header.
func WithIdempotency() ClientOption {
	return func(c *Client) {
		c.idempotent = true
		var prefix [8]byte
		if _, err := rand.Read(prefix[:]); err == nil {
			c.idemPrefix = hex.EncodeToString(prefix[:])
		} else {
			c.idemPrefix = "fallback"
		}
	}
}

// newIdempotencyKey mints a unique key: a random per-client prefix plus a
// counter — unique across clients without per-request entropy reads.
func (c *Client) newIdempotencyKey() string {
	var seq [8]byte
	binary.LittleEndian.PutUint64(seq[:], c.idemSeq.Add(1))
	return c.idemPrefix + hex.EncodeToString(seq[:])
}

// idemState is embedded in Client.
type idemState struct {
	idempotent bool
	idemPrefix string
	idemSeq    atomic.Uint64
}
