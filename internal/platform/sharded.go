package platform

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/cluster"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/quality"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
)

// Sharded-streaming handlers: the same HTTP surface as the batch handlers
// in platform.go, served from a StreamBackend. Every request is one
// streaming event — there are no global iterations, no server-side
// completion counters, and no server mutex: the backend serializes
// internally and requests touching different shards proceed in parallel.

// StreamBackend is the streaming-engine surface the sharded handlers
// drive. Two implementations exist: the in-process *shard.Engine, and the
// multi-node *cluster.Gateway, which serves the identical protocol by
// routing ops across a ring of hta-server nodes — so a single binary
// flag, not a different API, decides whether the deployment is one
// process or a cluster.
type StreamBackend interface {
	OfferTaskCtx(ctx context.Context, t *core.Task) (string, error)
	AddWorkerCtx(ctx context.Context, w *core.Worker) ([]*core.Task, error)
	RemoveWorkerCtx(ctx context.Context, id string) ([]*core.Task, error)
	CompleteCtx(ctx context.Context, workerID, taskID string) (*core.Task, error)
	ActiveTasks(workerID string) ([]*core.Task, error)
	Worker(workerID string) (*core.Worker, error)
	Completed(workerID string) (int, error)
	// SetTrust/Trust carry the quality layer's reputation multiplier into
	// the assignment objective (stream.Config.WithTrust); 0 quarantines.
	SetTrust(workerID string, trust float64) ([]*core.Task, error)
	Trust(workerID string) (float64, error)
	// SetWindow/Window carry the predictive layer's availability-window
	// end (UnixNano; 0 = unknown, clears); advisory routing bias under
	// stream.Config.DeadlineAware.
	SetWindow(workerID string, until int64) error
	Window(workerID string) (int64, error)
	WorkerIDs() []string
	Stats() shard.Stats
	Objective() float64
	Snapshot(w io.Writer) error
}

var (
	_ StreamBackend = (*shard.Engine)(nil)
	_ StreamBackend = (*cluster.Gateway)(nil)
)

// AddTasksResult is the response of POST /api/tasks in sharded mode: the
// fate of the offered batch. With redundancy each uploaded task becomes
// Replicas assignment copies, so Assigned+Buffered+Dropped =
// len(tasks)·Replicas.
type AddTasksResult struct {
	Assigned int `json:"assigned"`
	Buffered int `json:"buffered"`
	Dropped  int `json:"dropped"`
	Replicas int `json:"replicas,omitempty"`
}

func (s *Server) handleShardAddTasks(w http.ResponseWriter, r *http.Request) {
	var req addTasksRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: bad request: %w", err))
		return
	}
	tasks := make([]*core.Task, 0, len(req.Tasks))
	for _, t := range req.Tasks {
		for _, k := range t.Keywords {
			if k < 0 || k >= s.cfg.Universe {
				writeErr(w, http.StatusBadRequest,
					fmt.Errorf("platform: task %q keyword %d outside universe", t.ID, k))
				return
			}
		}
		if t.DeadlineMS < 0 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("platform: task %q deadline_ms %d is negative", t.ID, t.DeadlineMS))
			return
		}
		tasks = append(tasks, &core.Task{
			ID: t.ID, Group: t.Group, Reward: t.Reward,
			Keywords: bitset.FromIndices(s.cfg.Universe, t.Keywords...),
			Deadline: t.DeadlineMS * int64(time.Millisecond),
		})
	}
	res := AddTasksResult{}
	if s.cfg.Redundancy > 1 {
		res.Replicas = s.cfg.Redundancy
	}
	for _, t := range tasks {
		if s.cfg.Quality != nil {
			// Logical registration: applies the auto-gold rule before any
			// replica can be answered.
			s.cfg.Quality.ObserveTask(t.ID)
		}
		for j := 0; j < s.cfg.Redundancy; j++ {
			replica := t
			if s.cfg.Redundancy > 1 {
				// Copies share the keyword set (read-only); the "~" replica
				// suffix is outside the generator ID alphabet, so logical
				// IDs round-trip via quality.LogicalID.
				cp := *t
				cp.ID = quality.ReplicaID(t.ID, j)
				replica = &cp
			}
			wid, err := s.cfg.Shards.OfferTaskCtx(r.Context(), replica)
			switch {
			case err == nil && wid != "":
				res.Assigned++
			case err == nil:
				res.Buffered++
			case errors.Is(err, stream.ErrBufferFull):
				// Counted by the engine; the batch keeps going — parity with
				// a task intake that sheds load instead of failing wholesale.
				res.Dropped++
			case errors.Is(err, shard.ErrClosed):
				writeErr(w, http.StatusServiceUnavailable, err)
				return
			default:
				writeErr(w, http.StatusBadRequest, err)
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleShardRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: bad request: %w", err))
		return
	}
	if len(req.Keywords) < 6 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("platform: worker must choose at least 6 keywords, got %d", len(req.Keywords)))
		return
	}
	for _, k := range req.Keywords {
		if k < 0 || k >= s.cfg.Universe {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: keyword %d outside universe", k))
			return
		}
	}
	if req.WindowMS < 0 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("platform: window_ms %d is negative", req.WindowMS))
		return
	}
	worker := &core.Worker{
		ID: req.ID, Alpha: 0.5, Beta: 0.5,
		Keywords: bitset.FromIndices(s.cfg.Universe, req.Keywords...),
	}
	assigned, err := s.cfg.Shards.AddWorkerCtx(r.Context(), worker)
	if err != nil {
		writeErr(w, shardErrStatus(err, http.StatusConflict), err)
		return
	}
	if req.WindowMS > 0 {
		// Advisory: the worker registered fine; if it raced its own
		// departure the declaration has nothing to bias any more.
		_ = s.cfg.Shards.SetWindow(worker.ID, req.WindowMS*int64(time.Millisecond))
	}
	views := make([]TaskView, 0, len(assigned))
	for _, t := range assigned {
		views = append(views, shardTaskView(t))
	}
	writeJSON(w, http.StatusCreated, views)
}

func (s *Server) handleShardTasks(w http.ResponseWriter, r *http.Request) {
	active, err := s.cfg.Shards.ActiveTasks(r.PathValue("id"))
	if err != nil {
		writeErr(w, shardErrStatus(err, http.StatusNotFound), err)
		return
	}
	views := make([]TaskView, 0, len(active))
	for _, t := range active {
		views = append(views, shardTaskView(t))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleShardComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req completeRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: bad request: %w", err))
		return
	}
	if len(req.Answers) > 0 {
		if s.cfg.Quality != nil {
			writeErr(w, http.StatusBadRequest, errors.New("platform: submit answers via POST /api/answers"))
		} else {
			writeErr(w, http.StatusBadRequest, errors.New("platform: this deployment has no graded questions"))
		}
		return
	}
	next, err := s.cfg.Shards.CompleteCtx(r.Context(), id, req.TaskID)
	if err != nil {
		status := http.StatusConflict
		if strings.Contains(err.Error(), "unknown worker") || strings.Contains(err.Error(), "not active") {
			status = http.StatusNotFound
		}
		writeErr(w, shardErrStatus(err, status), err)
		return
	}
	wk, werr := s.cfg.Shards.Worker(id)
	active, aerr := s.cfg.Shards.ActiveTasks(id)
	if werr != nil || aerr != nil {
		// The worker left between the completion and the read-back; the
		// completion itself stands.
		writeJSON(w, http.StatusOK, CompleteResponse{Reassigned: next != nil})
		return
	}
	views := make([]TaskView, 0, len(active))
	for _, t := range active {
		views = append(views, shardTaskView(t))
	}
	writeJSON(w, http.StatusOK, CompleteResponse{
		// In streaming mode "reassigned" means the freed slot pulled a
		// buffered task, so the display set changed beyond the removal.
		Reassigned: next != nil,
		Alpha:      wk.Alpha,
		Beta:       wk.Beta,
		Tasks:      views,
	})
}

func (s *Server) handleShardLeave(w http.ResponseWriter, r *http.Request) {
	dropped, err := s.cfg.Shards.RemoveWorkerCtx(r.Context(), r.PathValue("id"))
	if err != nil {
		writeErr(w, shardErrStatus(err, http.StatusNotFound), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"left": true, "dropped": len(dropped)})
}

// ShardStatsView is the wire form of GET /api/stats in sharded mode: the
// engine's conservation accounting plus the per-worker picture.
type ShardStatsView struct {
	shard.Stats
	Objective float64      `json:"objective"`
	Conserved bool         `json:"conserved"`
	WorkerSet []WorkerView `json:"worker_set"`
}

func (s *Server) handleShardStats(w http.ResponseWriter, r *http.Request) {
	view := ShardStatsView{
		Stats:     s.cfg.Shards.Stats(),
		Objective: s.cfg.Shards.Objective(),
	}
	view.Conserved = view.Stats.Conserved()
	for _, id := range s.cfg.Shards.WorkerIDs() {
		wk, err := s.cfg.Shards.Worker(id)
		if err != nil {
			continue // departed between listing and read
		}
		done, _ := s.cfg.Shards.Completed(id)
		view.WorkerSet = append(view.WorkerSet, WorkerView{
			ID: id, Alpha: wk.Alpha, Beta: wk.Beta,
			Completed: done, Available: true,
		})
	}
	writeJSON(w, http.StatusOK, view)
}

// windowRequest is the body of POST /api/workers/{id}/window: an
// availability-window declaration after registration (absolute Unix
// milliseconds; 0 clears it).
type windowRequest struct {
	WindowMS int64 `json:"window_ms"`
}

func (s *Server) handleShardWindow(w http.ResponseWriter, r *http.Request) {
	var req windowRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: bad request: %w", err))
		return
	}
	if req.WindowMS < 0 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("platform: window_ms %d is negative", req.WindowMS))
		return
	}
	id := r.PathValue("id")
	if err := s.cfg.Shards.SetWindow(id, req.WindowMS*int64(time.Millisecond)); err != nil {
		writeErr(w, shardErrStatus(err, http.StatusNotFound), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"worker": id, "window_ms": req.WindowMS})
}

// shardTaskView renders a streaming task (always pending: completions
// leave the active set immediately).
func shardTaskView(t *core.Task) TaskView {
	return TaskView{
		ID: t.ID, Group: t.Group, Reward: t.Reward,
		Keywords:   t.Keywords.Indices(),
		DeadlineMS: t.Deadline / int64(time.Millisecond),
	}
}

// shardErrStatus maps engine errors onto HTTP statuses, with a fallback
// for the endpoint-specific default. Cluster routing failures (a node
// mid-failover, or no live nodes) are 503s: the condition is transient
// from the client's point of view — retry after the ring re-partitions.
func shardErrStatus(err error, fallback int) int {
	if errors.Is(err, shard.ErrClosed) {
		return http.StatusServiceUnavailable
	}
	if errors.Is(err, stream.ErrBufferFull) {
		return http.StatusInsufficientStorage
	}
	if errors.Is(err, cluster.ErrPeerDown) || errors.Is(err, cluster.ErrNoNodes) {
		return http.StatusServiceUnavailable
	}
	return fallback
}

// ShardStats fetches the sharded deployment's statistics. Only valid
// against a server running with ServerConfig.Shards.
func (c *Client) ShardStats() (*ShardStatsView, error) {
	var out ShardStatsView
	if err := c.do(http.MethodGet, "/api/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
