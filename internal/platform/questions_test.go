package platform

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/question"
	"github.com/htacs/ata/internal/workload"
)

// newGradedServer builds a platform with a question bank over its corpus.
func newGradedServer(t *testing.T) (*Client, *question.Bank) {
	t.Helper()
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax: 4, Rand: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGenerator(workload.Config{Seed: 2, Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	tasks := g.Tasks(8, 5)
	bank, err := question.Generate(tasks, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Engine: engine, Universe: universe, Questions: bank,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	if err := client.AddTasks(tasks); err != nil {
		t.Fatal(err)
	}
	return client, bank
}

func TestQuestionsShownWithoutGroundTruth(t *testing.T) {
	client, bank := newGradedServer(t)
	tasks, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, task := range tasks {
		want := bank.ForTask(task.ID)
		if len(task.Questions) != len(want) {
			t.Fatalf("task %s shows %d questions, bank has %d", task.ID, len(task.Questions), len(want))
		}
		for i, qv := range task.Questions {
			seen++
			if qv.ID != want[i].ID || qv.Prompt == "" || len(qv.Options) < 2 {
				t.Fatalf("malformed question view %+v", qv)
			}
		}
	}
	if seen == 0 {
		t.Fatal("no questions displayed")
	}
}

func TestGradedCompletion(t *testing.T) {
	client, bank := newGradedServer(t)
	tasks, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	task := tasks[0]
	// Answer everything correctly using the bank (the test plays oracle).
	var answers []Answer
	for _, q := range bank.ForTask(task.ID) {
		answers = append(answers, Answer{QuestionID: q.ID, Option: q.Answer})
	}
	resp, err := client.CompleteWithAnswers("w1", task.ID, answers)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Graded != len(answers) || resp.Correct != len(answers) {
		t.Fatalf("graded %d correct %d, want %d each", resp.Graded, resp.Correct, len(answers))
	}

	// Second task: answer everything wrong.
	task2 := tasks[1]
	answers = answers[:0]
	for _, q := range bank.ForTask(task2.ID) {
		wrong := (q.Answer + 1) % len(q.Options)
		answers = append(answers, Answer{QuestionID: q.ID, Option: wrong})
	}
	resp, err = client.CompleteWithAnswers("w1", task2.ID, answers)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Correct != 0 {
		t.Fatalf("wrong answers graded correct: %+v", resp)
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Graded == 0 || stats.Correct == 0 || stats.Correct >= stats.Graded {
		t.Fatalf("stats quality counters off: %+v", stats)
	}
	if stats.QualityPercent <= 0 || stats.QualityPercent >= 100 {
		t.Fatalf("quality%% = %g", stats.QualityPercent)
	}
}

func TestGradingValidation(t *testing.T) {
	client, bank := newGradedServer(t)
	tasks, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	taskA, taskB := tasks[0], tasks[1]
	// Answer a question of task B while completing task A.
	qB := bank.ForTask(taskB.ID)[0]
	_, err = client.CompleteWithAnswers("w1", taskA.ID, []Answer{{QuestionID: qB.ID, Option: 0}})
	if err == nil || !strings.Contains(err.Error(), "does not belong") {
		t.Fatalf("cross-task answer accepted: %v", err)
	}
	// Unknown question ID.
	_, err = client.CompleteWithAnswers("w1", taskA.ID, []Answer{{QuestionID: "ghost", Option: 0}})
	if err == nil {
		t.Fatal("unknown question accepted")
	}
	// The failed gradings must not have completed the task.
	if _, err := client.Complete("w1", taskA.ID); err != nil {
		t.Fatalf("task A should still be completable: %v", err)
	}
}

func TestAnswersRejectedWithoutBank(t *testing.T) {
	_, client := newTestServer(t, 20) // no question bank
	tasks, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.CompleteWithAnswers("w1", tasks[0].ID, []Answer{{QuestionID: "q", Option: 0}})
	if err == nil || !strings.Contains(err.Error(), "no graded questions") {
		t.Fatalf("err = %v", err)
	}
}
