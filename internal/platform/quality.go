package platform

import (
	"errors"
	"fmt"
	"net/http"
	"strings"

	"github.com/htacs/ata/internal/quality"
)

// Quality-layer handlers: the answer/reputation surface of the streaming
// modes. All three endpoints go through ServerConfig.Quality (the
// tracker), so the single-engine, sharded, and cluster StreamBackends
// serve them identically by construction — the backend is only touched
// to push reputation changes into the assignment objective (SetTrust).

// SubmitAnswerRequest is the body of POST /api/answers.
type SubmitAnswerRequest struct {
	Worker string `json:"worker"`
	TaskID string `json:"task_id"`
	Option int    `json:"option"`
}

func (s *Server) handleSubmitAnswer(w http.ResponseWriter, r *http.Request) {
	var req SubmitAnswerRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: bad request: %w", err))
		return
	}
	res, err := s.cfg.Quality.Submit(req.Worker, req.TaskID, req.Option)
	if err != nil {
		writeErr(w, answerErrStatus(err), err)
		return
	}
	if res.TrustUpdated {
		// A gold grade moved the worker's reputation: push the new trust
		// multiplier into the assignment engine (0 = quarantined, assign
		// nothing). Best-effort — the worker may have departed, and the
		// next grade pushes again.
		_, _ = s.cfg.Shards.SetTrust(req.Worker, res.Trust)
	}
	writeJSON(w, http.StatusOK, res)
}

// answerErrStatus maps quality-layer rejections onto HTTP statuses.
// ErrDuplicateVote and ErrTaskResolved are conflicts (409): a retried
// request that lost its response in flight hits them, which is why
// clients built WithIdempotency dedup POST /api/answers by key instead
// (the replayed response then reports the original outcome).
func answerErrStatus(err error) int {
	switch {
	case errors.Is(err, quality.ErrQuarantined):
		return http.StatusForbidden
	case errors.Is(err, quality.ErrDuplicateVote), errors.Is(err, quality.ErrTaskResolved):
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

// AnswersView is the body of GET /api/answers: the consensus list under
// the tracker's configured aggregation method plus the conservation
// accounting.
type AnswersView struct {
	Method  quality.Method           `json:"method"`
	Answers []quality.ResolvedAnswer `json:"answers"`
	Stats   quality.Stats            `json:"stats"`
}

func (s *Server) handleAnswers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, AnswersView{
		Method:  s.cfg.Quality.Method(),
		Answers: s.cfg.Quality.Answers(),
		Stats:   s.cfg.Quality.Stats(),
	})
}

// ReputationView is the body of GET /api/workers/{id}/reputation: the
// tracker's reputation record plus the trust multiplier the assignment
// engine currently applies (they agree except in the instant between a
// gold grade and its SetTrust push, or when the worker departed).
type ReputationView struct {
	quality.Reputation
	EngineTrust float64 `json:"engine_trust"`
}

func (s *Server) handleReputation(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rep, ok := s.cfg.Quality.Reputation(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("platform: no answers from worker %q", id))
		return
	}
	view := ReputationView{Reputation: rep, EngineTrust: rep.Trust}
	if t, err := s.cfg.Shards.Trust(id); err == nil {
		view.EngineTrust = t
	}
	writeJSON(w, http.StatusOK, view)
}

// SubmitAnswer submits one answer to a task (replica IDs from the
// assigned task views are fine — the server strips the suffix). Safe to
// retry on clients built WithIdempotency: the server dedups by key.
func (c *Client) SubmitAnswer(worker, taskID string, option int) (*quality.SubmitResult, error) {
	var out quality.SubmitResult
	err := c.do(http.MethodPost, "/api/answers",
		SubmitAnswerRequest{Worker: worker, TaskID: taskID, Option: option}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Answers fetches the aggregated consensus for every resolved task.
func (c *Client) Answers() (*AnswersView, error) {
	var out AnswersView
	if err := c.do(http.MethodGet, "/api/answers", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reputation fetches a worker's trust state.
func (c *Client) Reputation(workerID string) (*ReputationView, error) {
	var out ReputationView
	if err := c.do(http.MethodGet, "/api/workers/"+workerID+"/reputation", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// IsAnswerConflict reports whether the error is the server rejecting a
// duplicate or late answer (HTTP 409) — benign for at-least-once
// submitters: the answer is already counted or the task already resolved.
func IsAnswerConflict(err error) bool {
	return err != nil && strings.Contains(err.Error(), "(HTTP 409)")
}
