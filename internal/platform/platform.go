// Package platform exposes the paper's crowdsourcing workflow (Figure 4)
// as an HTTP service: workers register with their keywords, receive their
// assigned task set T_w, and notify the platform as they complete tasks;
// an assignment service monitors all workers at once and decides when a new
// assignment iteration must occur. The decision rule follows the paper's
// rationale: (i) keep the system stable by not re-assigning too frequently,
// (ii) gather enough completions to estimate each worker's (α, β), and
// (iii) define the set of available workers W^i per iteration.
//
// The package contains both the Server (an http.Handler) and a typed
// Client, so the examples and tests can run the full loop in-process with
// net/http/httptest or across real sockets.
package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/quality"
	"github.com/htacs/ata/internal/question"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/trace"
)

// ServerConfig parameterizes the assignment service.
type ServerConfig struct {
	// Engine is the adaptive (batch-iteration) assignment engine to drive.
	// Exactly one of Engine and Shards must be set.
	Engine *adaptive.Engine
	// Shards serves the same HTTP API from a streaming backend instead:
	// registrations, completions and departures become immediate
	// per-event decisions routed across shard actors, with no global
	// iterations. Tasks uploaded via POST /api/tasks are offered to the
	// stream one by one. Graded questions are not supported in this mode.
	// The backend is either an in-process *shard.Engine or a
	// *cluster.Gateway fronting a ring of hta-server nodes.
	Shards StreamBackend
	// Universe is the keyword universe size workers' vectors live in.
	Universe int
	// ReassignPerWorker triggers a new iteration once some worker has
	// completed this many tasks of its current set (default 10).
	ReassignPerWorker int
	// ReassignTotal triggers a new iteration once this many completions
	// accumulated since the last one (default 25).
	ReassignTotal int
	// Quality attaches the answer-quality and trust layer to the streaming
	// modes (requires Shards): POST /api/answers collects redundant
	// answers, gold probes grade workers online, and reputation changes
	// are pushed into the backend via SetTrust so the assignment objective
	// becomes relevance × diversity × trust. See internal/quality.
	Quality *quality.Tracker
	// Redundancy replicates each task uploaded via POST /api/tasks into k
	// assignment copies ("id~r0" … "id~rk-1") so k distinct workers answer
	// it. Defaults to Quality.K() when Quality is set (they must agree —
	// the tracker resolves a task at its k-th answer), else 1.
	Redundancy int
	// Questions optionally attaches graded content: workers see prompts
	// and options with their tasks, submit answers on completion, and the
	// platform grades them against the bank's ground truth — the paper's
	// quality measurement (Figure 5a).
	Questions *question.Bank
	// Metrics is the registry the server instruments itself on and exposes
	// at GET /metrics. Defaults to obs.Default(), which also carries the
	// solver/engine/stream telemetry — one scrape sees the whole pipeline.
	Metrics *obs.Registry
	// MaxBodyBytes bounds every request body (http.MaxBytesReader);
	// oversized bodies fail the JSON decode with HTTP 400. Default 8 MiB
	// (a 10k-task upload is ~1 MiB); negative disables the limit.
	MaxBodyBytes int64
	// IdempotencyCache bounds the keyed response-replay store backing
	// clients built WithIdempotency: the last N mutation responses are
	// kept per server, FIFO-evicted. Default 4096; negative disables the
	// keyed-replay path entirely (the header is then ignored).
	IdempotencyCache int
	// Tracer records request-scoped traces: every endpoint opens a root
	// span (subject to the recorder's sampling), propagated through the
	// engine into the solver phases, and sampled responses carry an
	// X-Trace-Id header. The retained traces are served at GET
	// /debug/trace alongside net/http/pprof. Defaults to trace.Default(),
	// which is disabled until given a sampling rate.
	Tracer *trace.Recorder
	// Logger emits one structured, trace-correlated line per request
	// (endpoint, status, duration) plus the engine's debug logs. Nil
	// disables request logging.
	Logger *slog.Logger
	// Journal is the operational event journal served at GET /api/events
	// and scored by GET /healthz?verbose=1. Defaults to ops.Default(), the
	// process-wide journal the shard and quality layers record into.
	Journal *ops.Journal
	// Health tunes the verbose-healthz scoring (window and per-event
	// penalty weights). Zero value = ops defaults.
	Health ops.HealthConfig
}

// Server implements the assignment service. All handlers serialize on a
// single mutex: the engine itself is not concurrency-safe and assignment
// iterations must be atomic with respect to worker arrivals.
//
// Iterations are global (the paper solves HTA over all available workers at
// once), so a completion by one worker can refresh every worker's display
// set. A client holding a stale set will get HTTP 404 when completing a
// task that is no longer assigned; it should refetch via Tasks and
// continue — exactly what a browser-based worker UI does when the platform
// pushes a new page of tasks.
type Server struct {
	mu  sync.Mutex
	cfg ServerConfig

	sinceIteration int            // completions since the last iteration
	perWorker      map[string]int // completions per worker since their last assignment
	graded         int            // questions graded so far
	correct        int            // of which answered correctly
	mux            *http.ServeMux
	drain          drainState
	idem           *idemCache
}

// NewServer validates the configuration and builds the HTTP handler.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Engine == nil && cfg.Shards == nil {
		return nil, errors.New("platform: nil engine")
	}
	if cfg.Engine != nil && cfg.Shards != nil {
		return nil, errors.New("platform: exactly one of Engine and Shards may be set")
	}
	if cfg.Shards != nil && cfg.Questions != nil {
		return nil, errors.New("platform: graded questions are not supported with the sharded streaming engine")
	}
	if cfg.Quality != nil && cfg.Shards == nil {
		return nil, errors.New("platform: the quality layer requires the streaming backend (Shards)")
	}
	if cfg.Quality != nil {
		if cfg.Redundancy == 0 {
			cfg.Redundancy = cfg.Quality.K()
		}
		if cfg.Redundancy != cfg.Quality.K() {
			return nil, fmt.Errorf("platform: Redundancy = %d but the quality tracker resolves at k = %d",
				cfg.Redundancy, cfg.Quality.K())
		}
	}
	if cfg.Redundancy == 0 {
		cfg.Redundancy = 1
	}
	if cfg.Redundancy < 1 {
		return nil, fmt.Errorf("platform: Redundancy = %d", cfg.Redundancy)
	}
	if cfg.Redundancy > 1 && cfg.Shards == nil {
		return nil, errors.New("platform: redundancy requires the streaming backend (Shards)")
	}
	if cfg.Universe < 1 {
		return nil, fmt.Errorf("platform: Universe = %d", cfg.Universe)
	}
	if cfg.ReassignPerWorker == 0 {
		cfg.ReassignPerWorker = 10
	}
	if cfg.ReassignTotal == 0 {
		cfg.ReassignTotal = 25
	}
	if cfg.ReassignPerWorker < 1 || cfg.ReassignTotal < 1 {
		return nil, errors.New("platform: reassignment thresholds must be >= 1")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.Default()
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Default()
	}
	if cfg.Journal == nil {
		cfg.Journal = ops.Default()
	}
	// Pre-register the rest of the pipeline's metric families (the
	// streaming assigner's; the solver's register at package init, the
	// engine's in NewEngine) so the /metrics surface is stable: one scrape
	// shows every family, zero-valued until exercised, instead of series
	// popping into existence mid-run.
	stream.NewMetrics(cfg.Metrics)
	if cfg.IdempotencyCache == 0 {
		cfg.IdempotencyCache = 4096
	}
	s := &Server{cfg: cfg, perWorker: make(map[string]int)}
	if cfg.IdempotencyCache > 0 {
		s.idem = newIdemCache(cfg.IdempotencyCache)
	}
	handlers := map[string]http.HandlerFunc{
		"POST /api/tasks":                 s.handleAddTasks,
		"POST /api/workers":               s.handleRegister,
		"GET /api/workers/{id}/tasks":     s.handleTasks,
		"POST /api/workers/{id}/complete": s.handleComplete,
		"DELETE /api/workers/{id}":        s.handleLeave,
		"GET /api/stats":                  s.handleStats,
	}
	if cfg.Shards != nil {
		// Same surface, streaming semantics — see sharded.go.
		handlers = map[string]http.HandlerFunc{
			"POST /api/tasks":                 s.handleShardAddTasks,
			"POST /api/workers":               s.handleShardRegister,
			"GET /api/workers/{id}/tasks":     s.handleShardTasks,
			"POST /api/workers/{id}/complete": s.handleShardComplete,
			"DELETE /api/workers/{id}":        s.handleShardLeave,
			"POST /api/workers/{id}/window":   s.handleShardWindow,
			"GET /api/stats":                  s.handleShardStats,
		}
		if cfg.Quality != nil {
			handlers["POST /api/answers"] = s.handleSubmitAnswer
			handlers["GET /api/answers"] = s.handleAnswers
			handlers["GET /api/workers/{id}/reputation"] = s.handleReputation
		}
	}
	mux := http.NewServeMux()
	for pattern, h := range handlers {
		if s.idem != nil && !strings.HasPrefix(pattern, "GET ") {
			// Mutations gain keyed replay for clients opting into retries.
			h = s.idempotent(h)
		}
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	s.registerObsRoutes(mux)
	s.mux = mux
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Snapshot serializes the backing engine's state; safe to call
// concurrently with request handling (e.g. from a shutdown signal
// handler). With a sharded backend the shard engine quiesces all actors
// itself, producing one globally consistent merged document.
func (s *Server) Snapshot(w io.Writer) error {
	if s.cfg.Shards != nil {
		return s.cfg.Shards.Snapshot(w)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.Engine.Snapshot(w)
}

// TaskView is the wire form of an assigned task.
type TaskView struct {
	ID        string         `json:"id"`
	Group     string         `json:"group,omitempty"`
	Reward    float64        `json:"reward"`
	Keywords  []int          `json:"keywords"`
	Done      bool           `json:"done"`
	Questions []QuestionView `json:"questions,omitempty"`
	// DeadlineMS is the task's absolute Unix-millisecond expiry (0 =
	// none); streaming mode only.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// QuestionView is a question as shown to workers — no ground truth.
type QuestionView struct {
	ID      string   `json:"id"`
	Prompt  string   `json:"prompt"`
	Options []string `json:"options"`
}

// WorkerView is the wire form of a worker's state.
type WorkerView struct {
	ID        string  `json:"id"`
	Alpha     float64 `json:"alpha"`
	Beta      float64 `json:"beta"`
	Completed int     `json:"completed"`
	Available bool    `json:"available"`
}

// StatsView is the wire form of /api/stats.
type StatsView struct {
	Iteration int          `json:"iteration"`
	PoolSize  int          `json:"pool_size"`
	Workers   []WorkerView `json:"workers"`
	// Graded/Correct accumulate over all graded answers when the platform
	// has a question bank; QualityPercent = 100·Correct/Graded.
	Graded         int     `json:"graded"`
	Correct        int     `json:"correct"`
	QualityPercent float64 `json:"quality_percent"`
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// jsonBufPool recycles the encode/decode scratch of the hot handlers
// (offer, complete, stats): responses are marshalled into a pooled buffer
// and written in one call, request bodies are slurped through a pooled
// buffer before unmarshalling — steady-state traffic allocates no fresh
// buffers per request.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getJSONBuf() *bytes.Buffer {
	b := jsonBufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putJSONBuf(b *bytes.Buffer) {
	if b.Cap() > 1<<20 { // don't pin one-off giant bodies in the pool
		return
	}
	jsonBufPool.Put(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getJSONBuf()
	defer putJSONBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}

// readJSON decodes a request body through pooled scratch.
func readJSON(r *http.Request, v any) error {
	buf := getJSONBuf()
	defer putJSONBuf(buf)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		return err
	}
	return json.Unmarshal(buf.Bytes(), v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// addTasksRequest is the body of POST /api/tasks. DeadlineMS is the
// absolute Unix-millisecond instant after which the task is worthless
// (0 = never); only the streaming backend acts on it — buffered tasks
// past their deadline are expired, journaled and counted, never silently
// dropped.
type taskUpload struct {
	ID         string  `json:"id"`
	Group      string  `json:"group"`
	Reward     float64 `json:"reward"`
	Keywords   []int   `json:"keywords"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
}

type addTasksRequest struct {
	Tasks []taskUpload `json:"tasks"`
}

func (s *Server) handleAddTasks(w http.ResponseWriter, r *http.Request) {
	var req addTasksRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: bad request: %w", err))
		return
	}
	tasks := make([]*core.Task, 0, len(req.Tasks))
	for _, t := range req.Tasks {
		for _, k := range t.Keywords {
			if k < 0 || k >= s.cfg.Universe {
				writeErr(w, http.StatusBadRequest,
					fmt.Errorf("platform: task %q keyword %d outside universe", t.ID, k))
				return
			}
		}
		tasks = append(tasks, &core.Task{
			ID: t.ID, Group: t.Group, Reward: t.Reward,
			Keywords: bitset.FromIndices(s.cfg.Universe, t.Keywords...),
		})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cfg.Engine.AddTasks(tasks...); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"pool_size": s.cfg.Engine.PoolSize()})
}

// registerRequest is the body of POST /api/workers. The paper's platform
// asks each worker to choose at least 6 keywords before entering a session.
// WindowMS optionally declares when the worker expects to leave (absolute
// Unix milliseconds); the streaming backend uses it to keep imminent
// deadlines away from departing workers.
type registerRequest struct {
	ID       string `json:"id"`
	Keywords []int  `json:"keywords"`
	WindowMS int64  `json:"window_ms,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: bad request: %w", err))
		return
	}
	if len(req.Keywords) < 6 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("platform: worker must choose at least 6 keywords, got %d", len(req.Keywords)))
		return
	}
	for _, k := range req.Keywords {
		if k < 0 || k >= s.cfg.Universe {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: keyword %d outside universe", k))
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	worker := &core.Worker{ID: req.ID, Keywords: bitset.FromIndices(s.cfg.Universe, req.Keywords...)}
	if _, err := s.cfg.Engine.AddWorker(worker); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	// A new worker notifies the assignment service, which assigns a fresh
	// T_w immediately (Figure 4).
	if _, err := s.cfg.Engine.NextIterationCtx(r.Context()); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.resetCounters()
	writeJSON(w, http.StatusCreated, s.taskViewsLocked(req.ID))
}

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.cfg.Engine.Worker(id); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, s.taskViewsLocked(id))
}

// completeRequest is the body of POST /api/workers/{id}/complete.
type completeRequest struct {
	TaskID  string   `json:"task_id"`
	Answers []Answer `json:"answers,omitempty"`
}

// Answer is one submitted response to a task question.
type Answer struct {
	QuestionID string `json:"question_id"`
	Option     int    `json:"option"`
}

// CompleteResponse reports whether the completion triggered a new
// assignment iteration, and the (possibly fresh) task set.
type CompleteResponse struct {
	Reassigned bool       `json:"reassigned"`
	Alpha      float64    `json:"alpha"`
	Beta       float64    `json:"beta"`
	Graded     int        `json:"graded"`
	Correct    int        `json:"correct"`
	Tasks      []TaskView `json:"tasks"`
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("platform: bad request: %w", err))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ws, err := s.cfg.Engine.Worker(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	// Grade submitted answers against the ground truth, if the platform
	// carries a question bank. Answers must belong to the completed task.
	var graded, correct int
	if len(req.Answers) > 0 {
		if s.cfg.Questions == nil {
			writeErr(w, http.StatusBadRequest, errors.New("platform: this deployment has no graded questions"))
			return
		}
		valid := make(map[string]bool)
		for _, q := range s.cfg.Questions.ForTask(req.TaskID) {
			valid[q.ID] = true
		}
		for _, ans := range req.Answers {
			if !valid[ans.QuestionID] {
				writeErr(w, http.StatusBadRequest,
					fmt.Errorf("platform: question %q does not belong to task %q", ans.QuestionID, req.TaskID))
				return
			}
		}
		for _, ans := range req.Answers {
			ok, err := s.cfg.Questions.Grade(ans.QuestionID, ans.Option)
			if err != nil {
				writeErr(w, http.StatusBadRequest, err)
				return
			}
			graded++
			if ok {
				correct++
			}
		}
	}
	if err := s.cfg.Engine.CompleteCtx(r.Context(), id, req.TaskID); err != nil {
		status := http.StatusConflict
		if strings.Contains(err.Error(), "not assigned") {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	s.graded += graded
	s.correct += correct
	s.sinceIteration++
	s.perWorker[id]++

	// Assignment-service policy: reassign when some worker exhausted its
	// budget or the system accumulated enough completions overall.
	reassign := s.perWorker[id] >= s.cfg.ReassignPerWorker ||
		s.sinceIteration >= s.cfg.ReassignTotal ||
		len(ws.Completed) == len(ws.Assigned)
	if reassign {
		if _, err := s.cfg.Engine.NextIterationCtx(r.Context()); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		s.resetCounters()
	}
	writeJSON(w, http.StatusOK, CompleteResponse{
		Reassigned: reassign,
		Alpha:      ws.Alpha(),
		Beta:       ws.Beta(),
		Graded:     graded,
		Correct:    correct,
		Tasks:      s.taskViewsLocked(id),
	})
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cfg.Engine.SetAvailable(id, false); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"left": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := StatsView{
		Iteration: s.cfg.Engine.Iteration(),
		PoolSize:  s.cfg.Engine.PoolSize(),
		Graded:    s.graded,
		Correct:   s.correct,
	}
	if s.graded > 0 {
		stats.QualityPercent = 100 * float64(s.correct) / float64(s.graded)
	}
	for _, ws := range s.cfg.Engine.Workers() {
		stats.Workers = append(stats.Workers, WorkerView{
			ID:        ws.Worker.ID,
			Alpha:     ws.Alpha(),
			Beta:      ws.Beta(),
			Completed: ws.TotalCompleted,
			Available: ws.Available,
		})
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) resetCounters() {
	s.sinceIteration = 0
	for k := range s.perWorker {
		s.perWorker[k] = 0
	}
}

// taskViewsLocked renders a worker's current display set. Caller holds mu.
func (s *Server) taskViewsLocked(id string) []TaskView {
	ws, err := s.cfg.Engine.Worker(id)
	if err != nil {
		return nil
	}
	done := make(map[string]bool, len(ws.Completed))
	for _, t := range ws.Completed {
		done[t.ID] = true
	}
	out := make([]TaskView, 0, len(ws.Assigned))
	for _, t := range ws.Assigned {
		view := TaskView{
			ID: t.ID, Group: t.Group, Reward: t.Reward,
			Keywords: t.Keywords.Indices(), Done: done[t.ID],
		}
		if s.cfg.Questions != nil {
			for _, q := range s.cfg.Questions.ForTask(t.ID) {
				view.Questions = append(view.Questions, QuestionView{
					ID: q.ID, Prompt: q.Prompt, Options: q.Options,
				})
			}
		}
		out = append(out, view)
	}
	return out
}

// Client is a typed HTTP client for the assignment service.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	idemState
}

// NewClient targets a server base URL, e.g. "http://127.0.0.1:8080".
func NewClient(baseURL string, hc *http.Client, opts ...ClientOption) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: hc}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

func (c *Client) do(method, path string, body, out any) error {
	return c.doCtx(context.Background(), method, path, body, out)
}

// doCtx issues one API request. Idempotent GETs are retried per the
// client's RetryPolicy (see retry.go); mutations get exactly one attempt
// unless the client was built WithIdempotency — then each carries a
// fresh idempotency key and retries under the same policy, with the
// server deduplicating by key (see idempotency.go).
func (c *Client) doCtx(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("platform: encoding request: %w", err)
		}
	}
	attempts := 1
	var idemKey string
	if method == http.MethodGet {
		attempts = c.retry.attempts()
	} else if c.idempotent {
		attempts = c.retry.attempts()
		idemKey = c.newIdempotencyKey()
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := c.retry.backoff(ctx, attempt); err != nil {
				return lastErr
			}
		}
		retryable, err := c.attempt(ctx, method, path, payload, idemKey, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// attempt runs a single HTTP round trip. retryable reports whether the
// failure is transient (network error or 5xx) — the only class a retry
// can help with; 4xx responses are the caller's bug and returned at once.
func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, idemKey string, out any) (retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		req.Header.Set(idempotencyHeader, idemKey)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Transport-level failure: connection refused/reset, timeout. Not
		// retryable when the context itself is done.
		return ctx.Err() == nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return resp.StatusCode >= 500, fmt.Errorf("platform: %s %s: %s (HTTP %d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return resp.StatusCode >= 500, fmt.Errorf("platform: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return false, fmt.Errorf("platform: decoding response: %w", err)
	}
	return false, nil
}

// AddTasks uploads tasks to the pool.
func (c *Client) AddTasks(tasks []*core.Task) error {
	var req addTasksRequest
	for _, t := range tasks {
		req.Tasks = append(req.Tasks, taskUpload{
			ID: t.ID, Group: t.Group, Reward: t.Reward,
			Keywords:   t.Keywords.Indices(),
			DeadlineMS: t.Deadline / int64(time.Millisecond),
		})
	}
	return c.do(http.MethodPost, "/api/tasks", req, nil)
}

// Register enrolls a worker (≥ 6 keywords) and returns the first task set.
func (c *Client) Register(id string, keywords []int) ([]TaskView, error) {
	var out []TaskView
	err := c.do(http.MethodPost, "/api/workers", registerRequest{ID: id, Keywords: keywords}, &out)
	return out, err
}

// Tasks fetches the worker's current display set.
func (c *Client) Tasks(id string) ([]TaskView, error) {
	var out []TaskView
	err := c.do(http.MethodGet, "/api/workers/"+id+"/tasks", nil, &out)
	return out, err
}

// Complete reports a finished task; the response carries the refreshed
// weight estimates and (possibly re-assigned) task set.
func (c *Client) Complete(id, taskID string) (*CompleteResponse, error) {
	return c.CompleteWithAnswers(id, taskID, nil)
}

// CompleteWithAnswers reports a finished task together with the worker's
// answers to its graded questions.
func (c *Client) CompleteWithAnswers(id, taskID string, answers []Answer) (*CompleteResponse, error) {
	var out CompleteResponse
	err := c.do(http.MethodPost, "/api/workers/"+id+"/complete",
		completeRequest{TaskID: taskID, Answers: answers}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Leave marks the worker unavailable for future iterations.
func (c *Client) Leave(id string) error {
	return c.do(http.MethodDelete, "/api/workers/"+id, nil, nil)
}

// Stats fetches platform statistics.
func (c *Client) Stats() (*StatsView, error) {
	var out StatsView
	if err := c.do(http.MethodGet, "/api/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
