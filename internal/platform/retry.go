package platform

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ClientOption configures a Client at construction.
type ClientOption func(*Client)

// RetryPolicy bounds the retries the client applies to idempotent GET
// requests (Tasks, Stats) that fail transiently — a network error or a
// 5xx response. Mutating requests (register, complete, leave, upload)
// are never retried: the first attempt may have been applied even though
// the response was lost, and replaying it would double-count the event.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first attempt included.
	// Values < 2 disable retrying.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: before retry n the client
	// sleeps in [BaseDelay·2ⁿ⁻¹/2, BaseDelay·2ⁿ⁻¹) — exponential growth
	// with half-interval jitter so a fleet of clients retrying a blipped
	// server does not re-arrive in lockstep. Default 50ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Default 2s.
	MaxDelay time.Duration
}

// WithRetry enables bounded retries on idempotent GETs.
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 2 {
		return 1
	}
	return p.MaxAttempts
}

// jitterRand is shared across clients; rand.Rand is not goroutine-safe.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// backoff sleeps before retry number attempt (1-based), honouring ctx
// cancellation — a cancelled wait returns the context error immediately
// instead of burning the remaining delay.
func (p RetryPolicy) backoff(ctx context.Context, attempt int) error {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base << (attempt - 1)
	if d > maxd || d <= 0 { // d <= 0 guards shift overflow
		d = maxd
	}
	jitterMu.Lock()
	sleep := d/2 + time.Duration(jitterRand.Int63n(int64(d/2)+1))
	jitterMu.Unlock()
	timer := time.NewTimer(sleep)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// TasksCtx is Tasks with a caller-supplied context governing the whole
// request including retries.
func (c *Client) TasksCtx(ctx context.Context, id string) ([]TaskView, error) {
	var out []TaskView
	err := c.doCtx(ctx, http.MethodGet, "/api/workers/"+id+"/tasks", nil, &out)
	return out, err
}

// StatsCtx is Stats with a caller-supplied context governing the whole
// request including retries.
func (c *Client) StatsCtx(ctx context.Context) (*StatsView, error) {
	var out StatsView
	if err := c.doCtx(ctx, http.MethodGet, "/api/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
