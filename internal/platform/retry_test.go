package platform

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler fails the first n requests with 500, then delegates.
func flakyHandler(n int64, h http.Handler) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}), &calls
}

func fastRetry(attempts int) ClientOption {
	return WithRetry(RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})
}

func TestRetryRecoversFromTransient5xx(t *testing.T) {
	ts, _ := newTestServer(t, 10)
	flaky, calls := flakyHandler(2, ts.Config.Handler)
	fs := httptest.NewServer(flaky)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client(), fastRetry(4))
	if _, err := client.Stats(); err != nil {
		t.Fatalf("Stats through 2 transient 500s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 failures + success)", got)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	flaky, calls := flakyHandler(100, ts.Config.Handler)
	fs := httptest.NewServer(flaky)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client(), fastRetry(3))
	_, err := client.Stats()
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("want HTTP 500 error after exhausting retries, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want exactly MaxAttempts=3", got)
	}
}

func TestRetryNeverReplaysMutations(t *testing.T) {
	ts, _ := newTestServer(t, 10)
	flaky, calls := flakyHandler(100, ts.Config.Handler)
	fs := httptest.NewServer(flaky)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client(), fastRetry(5))
	if _, err := client.Register("w1", sixKeywords(0)); err == nil {
		t.Fatal("Register through a 500 unexpectedly succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("POST was attempted %d times — mutations must never retry", got)
	}
}

func TestRetryStopsOn4xx(t *testing.T) {
	ts, _ := newTestServer(t, 10)
	var calls atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		ts.Config.Handler.ServeHTTP(w, r)
	})
	fs := httptest.NewServer(counted)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client(), fastRetry(5))
	if _, err := client.Tasks("nobody"); err == nil {
		t.Fatal("Tasks for unknown worker succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("404 was retried %d times — only transient failures retry", got)
	}
}

func TestRetryRespectsContextCancellation(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	flaky, calls := flakyHandler(100, ts.Config.Handler)
	fs := httptest.NewServer(flaky)
	t.Cleanup(fs.Close)
	// Long backoff, short context: the wait must abort promptly.
	client := NewClient(fs.URL, fs.Client(), WithRetry(RetryPolicy{
		MaxAttempts: 10, BaseDelay: time.Minute, MaxDelay: time.Minute,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.StatsCtx(ctx)
	if err == nil {
		t.Fatal("StatsCtx succeeded against a permanently failing server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled retry still took %v", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts; the backoff wait should have been cancelled before attempt 2", got)
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	flaky, calls := flakyHandler(100, ts.Config.Handler)
	fs := httptest.NewServer(flaky)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client())
	if _, err := client.Stats(); err == nil {
		t.Fatal("Stats against a failing server succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("default client attempted %d times, want 1", got)
	}
}
