package platform

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/htacs/ata/internal/adaptive"
)

// lostResponseHandler applies the inner handler normally but replaces the
// first n responses with a 500 AFTER the application — the
// "applied-but-reply-lost" failure that makes naive mutation retries
// double-count.
func lostResponseHandler(n int64, h http.Handler) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			http.Error(w, `{"error":"response lost in transit"}`, http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}), &calls
}

func TestIdempotentRetryAppliesMutationOnce(t *testing.T) {
	ts, _ := newTestServer(t, 10)
	lossy, calls := lostResponseHandler(1, ts.Config.Handler)
	fs := httptest.NewServer(lossy)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client(), fastRetry(4), WithIdempotency())

	// The first attempt registers the worker but its response is lost.
	// The keyed retry must succeed by replay, not by re-registering —
	// re-registering would 409 on the duplicate worker.
	views, err := client.Register("w-idem", sixKeywords(0))
	if err != nil {
		t.Fatalf("keyed Register through a lost response: %v", err)
	}
	if views == nil {
		t.Fatal("replayed response carried no task views")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (apply + replay)", got)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Workers) != 1 {
		t.Fatalf("worker registered %d times, want exactly 1", len(stats.Workers))
	}
}

func TestIdempotentKeysAreUniquePerRequest(t *testing.T) {
	ts, _ := newTestServer(t, 10)
	var keys sync.Map
	var dup atomic.Bool
	spy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if k := r.Header.Get(idempotencyHeader); k != "" {
			if _, seen := keys.LoadOrStore(k, true); seen {
				dup.Store(true)
			}
		} else if r.Method != http.MethodGet {
			t.Errorf("keyed client sent unkeyed %s %s", r.Method, r.URL.Path)
		}
		ts.Config.Handler.ServeHTTP(w, r)
	})
	fs := httptest.NewServer(spy)
	t.Cleanup(fs.Close)
	client := NewClient(fs.URL, fs.Client(), WithIdempotency())
	for i := 0; i < 5; i++ {
		if _, err := client.Register("w"+string(rune('a'+i)), sixKeywords(i)); err != nil {
			t.Fatal(err)
		}
	}
	if dup.Load() {
		t.Fatal("two distinct requests carried the same idempotency key")
	}
}

func TestIdempotentSameKeyReplaysInsteadOfReapplying(t *testing.T) {
	ts, _ := newTestServer(t, 10)
	post := func(key, body string) int {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/workers", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(idempotencyHeader, key)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// The same key twice with a valid registration: re-executing the
	// handler would 409 on the duplicate worker, a replay answers 201
	// both times.
	valid := `{"id":"w-replay","keywords":[0,1,2,3,4,5]}`
	if got := post("key-valid", valid); got != http.StatusCreated {
		t.Fatalf("first keyed register: HTTP %d", got)
	}
	if got := post("key-valid", valid); got != http.StatusCreated {
		t.Fatalf("replayed register: HTTP %d, want 201 (409 means it re-applied)", got)
	}
	// 4xx outcomes are cached too: a key that produced a 400 keeps
	// answering 400 even when the retried body would have been valid —
	// the key identifies the logical request, not its payload.
	if got := post("key-bad", `{"id":"w2","keywords":[0,1,2]}`); got != http.StatusBadRequest {
		t.Fatalf("short keyword list: HTTP %d, want 400", got)
	}
	if got := post("key-bad", `{"id":"w2","keywords":[0,1,2,3,4,5]}`); got != http.StatusBadRequest {
		t.Fatalf("replay of failed key: HTTP %d, want the cached 400", got)
	}
}

func TestIdempotencyDisabledServerSide(t *testing.T) {
	// A server with the cache disabled ignores the header: the pinned
	// exactly-once server contract is then the client's problem again.
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax: 5, Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Engine: engine, Universe: universe, IdempotencyCache: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			calls.Add(1)
		}
		srv.ServeHTTP(w, r)
	})
	fs := httptest.NewServer(counted)
	t.Cleanup(fs.Close)
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodPost, fs.URL+"/api/workers",
			strings.NewReader(`{"id":"w-dup","keywords":[0,1,2,3,4,5]}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(idempotencyHeader, "ignored-key")
		resp, err := fs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("disabled cache still deduped: handler ran %d times, want 2", got)
	}
}

func TestIdemCacheEvictsFIFO(t *testing.T) {
	c := newIdemCache(2)
	for _, k := range []string{"a", "b", "c"} {
		if e, in := c.begin(k); e != nil || in != nil {
			t.Fatalf("fresh key %s: %v %v", k, e, in)
		}
		c.commit(k, &idemEntry{status: 200})
	}
	if e, _ := c.begin("a"); e != nil {
		t.Fatal("oldest key survived past capacity")
	}
	if e, _ := c.begin("c"); e == nil {
		t.Fatal("newest key evicted")
	}
}
