package platform

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/workload"
)

const universe = 100

func newTestServer(t *testing.T, numTasks int) (*httptest.Server, *Client) {
	t.Helper()
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:             5,
		ExtraRandomTasks: 2,
		Rand:             rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Engine:            engine,
		Universe:          universe,
		ReassignPerWorker: 3,
		ReassignTotal:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	if numTasks > 0 {
		g, err := workload.NewGenerator(workload.Config{Seed: 3, Universe: universe})
		if err != nil {
			t.Fatal(err)
		}
		if err := client.AddTasks(g.Tasks(numTasks/5+1, 5)[:numTasks]); err != nil {
			t.Fatal(err)
		}
	}
	return ts, client
}

func sixKeywords(start int) []int {
	return []int{start, start + 1, start + 2, start + 3, start + 4, start + 5}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Universe: 10}); err == nil {
		t.Error("nil engine accepted")
	}
	engine, _ := adaptive.NewEngine(adaptive.Config{Xmax: 3})
	if _, err := NewServer(ServerConfig{Engine: engine}); err == nil {
		t.Error("zero universe accepted")
	}
	if _, err := NewServer(ServerConfig{Engine: engine, Universe: 10, ReassignTotal: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestRegisterAssignsTasks(t *testing.T) {
	_, client := newTestServer(t, 40)
	tasks, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 7 { // Xmax 5 + 2 extras
		t.Fatalf("registered worker got %d tasks, want 7", len(tasks))
	}
	for _, task := range tasks {
		if task.Done {
			t.Fatalf("fresh task marked done: %+v", task)
		}
		if task.ID == "" || len(task.Keywords) == 0 {
			t.Fatalf("malformed task view: %+v", task)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	_, client := newTestServer(t, 20)
	if _, err := client.Register("w1", []int{1, 2, 3}); err == nil ||
		!strings.Contains(err.Error(), "at least 6 keywords") {
		t.Fatalf("short keyword list: err = %v", err)
	}
	if _, err := client.Register("w1", []int{1, 2, 3, 4, 5, universe}); err == nil ||
		!strings.Contains(err.Error(), "outside universe") {
		t.Fatalf("out-of-universe keyword: err = %v", err)
	}
	if _, err := client.Register("w1", sixKeywords(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Register("w1", sixKeywords(6)); err == nil ||
		!strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate worker: err = %v", err)
	}
}

func TestCompleteFlowAndReassignment(t *testing.T) {
	_, client := newTestServer(t, 60)
	tasks, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	// ReassignPerWorker = 3: the first two completions keep the set, the
	// third triggers a new iteration.
	var lastResp *CompleteResponse
	for i := 0; i < 3; i++ {
		lastResp, err = client.Complete("w1", tasks[i].ID)
		if err != nil {
			t.Fatalf("complete %d: %v", i, err)
		}
		if i < 2 && lastResp.Reassigned {
			t.Fatalf("premature reassignment at completion %d", i)
		}
	}
	if !lastResp.Reassigned {
		t.Fatal("no reassignment after ReassignPerWorker completions")
	}
	if lastResp.Alpha+lastResp.Beta < 0.99 || lastResp.Alpha+lastResp.Beta > 1.01 {
		t.Fatalf("weights not normalized: %g + %g", lastResp.Alpha, lastResp.Beta)
	}
	// Fresh tasks must all be un-done.
	for _, task := range lastResp.Tasks {
		if task.Done {
			t.Fatalf("reassigned set contains done task %+v", task)
		}
	}
}

func TestCompleteErrors(t *testing.T) {
	_, client := newTestServer(t, 30)
	if _, err := client.Complete("ghost", "t"); err == nil {
		t.Error("unknown worker accepted")
	}
	tasks, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Complete("w1", "not-assigned"); err == nil {
		t.Error("unassigned task accepted")
	}
	if _, err := client.Complete("w1", tasks[0].ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Complete("w1", tasks[0].ID); err == nil {
		t.Error("double completion accepted")
	}
}

func TestTasksEndpointMarksDone(t *testing.T) {
	_, client := newTestServer(t, 30)
	assigned, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Complete("w1", assigned[0].ID); err != nil {
		t.Fatal(err)
	}
	tasks, err := client.Tasks("w1")
	if err != nil {
		t.Fatal(err)
	}
	var doneCount int
	for _, task := range tasks {
		if task.Done {
			doneCount++
			if task.ID != assigned[0].ID {
				t.Fatalf("wrong task marked done: %s", task.ID)
			}
		}
	}
	if doneCount != 1 {
		t.Fatalf("done count = %d, want 1", doneCount)
	}
	if _, err := client.Tasks("ghost"); err == nil {
		t.Error("unknown worker lookup succeeded")
	}
}

func TestLeaveAndStats(t *testing.T) {
	_, client := newTestServer(t, 30)
	if _, err := client.Register("w1", sixKeywords(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Register("w2", sixKeywords(10)); err != nil {
		t.Fatal(err)
	}
	if err := client.Leave("w2"); err != nil {
		t.Fatal(err)
	}
	if err := client.Leave("ghost"); err == nil {
		t.Error("unknown worker leave succeeded")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.PoolSize <= 0 || stats.Iteration < 2 {
		t.Fatalf("stats = %+v", stats)
	}
	byID := map[string]WorkerView{}
	for _, w := range stats.Workers {
		byID[w.ID] = w
	}
	if byID["w2"].Available {
		t.Error("w2 still available after Leave")
	}
	if !byID["w1"].Available {
		t.Error("w1 not available")
	}
}

func TestAddTasksRejectsDuplicates(t *testing.T) {
	_, client := newTestServer(t, 0)
	g, err := workload.NewGenerator(workload.Config{Seed: 4, Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	tasks := g.Tasks(2, 3)
	if err := client.AddTasks(tasks); err != nil {
		t.Fatal(err)
	}
	if err := client.AddTasks(tasks); err == nil {
		t.Error("duplicate task upload accepted")
	}
}

func TestAddTasksRejectsOutOfUniverseKeywords(t *testing.T) {
	ts, _ := newTestServer(t, 0)
	body := `{"tasks":[{"id":"t1","keywords":[` + "999" + `]}]}`
	resp, err := http.Post(ts.URL+"/api/tasks", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestBadJSONRejected(t *testing.T) {
	ts, _ := newTestServer(t, 10)
	resp, err := http.Post(ts.URL+"/api/workers", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestServerSnapshot(t *testing.T) {
	ts, client := newTestServer(t, 30)
	if _, err := client.Register("w1", sixKeywords(0)); err != nil {
		t.Fatal(err)
	}
	// Reach into the handler to snapshot through the server mutex.
	srv := ts.Config.Handler.(*Server)
	var buf bytes.Buffer
	if err := srv.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := adaptive.Restore(&buf, adaptive.Config{Xmax: 5, ExtraRandomTasks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Worker("w1"); err != nil {
		t.Fatalf("restored engine lost the worker: %v", err)
	}
}

// TestConcurrentWorkers exercises the service with several workers racing
// registrations and completions; the mutex must keep the engine coherent.
func TestConcurrentWorkers(t *testing.T) {
	_, client := newTestServer(t, 200)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*20)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := "w" + string(rune('a'+i))
			tasks, err := client.Register(id, sixKeywords(i*7))
			if err != nil {
				errs <- err
				return
			}
			for round := 0; round < 6 && len(tasks) > 0; round++ {
				resp, err := client.Complete(id, tasks[0].ID)
				if err != nil && strings.Contains(err.Error(), "not assigned") {
					// Another worker's completion triggered a global
					// iteration and replaced our set; refetch and go on.
					fresh, ferr := client.Tasks(id)
					if ferr != nil {
						errs <- ferr
						return
					}
					tasks = fresh
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				// Work on whatever is not done in the (possibly new) set.
				tasks = tasks[:0]
				for _, task := range resp.Tasks {
					if !task.Done {
						tasks = append(tasks, task)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, w := range stats.Workers {
		total += w.Completed
	}
	if total == 0 {
		t.Fatal("no completions recorded")
	}
}
