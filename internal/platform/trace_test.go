package platform

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/trace"
	"github.com/htacs/ata/internal/workload"
)

// newTracedServer builds a platform server with a private 1/1 tracer, a
// private metrics registry, and a JSON logger writing into logBuf.
func newTracedServer(t *testing.T, rec *trace.Recorder, logBuf *bytes.Buffer) (*httptest.Server, *Client) {
	t.Helper()
	engine, err := adaptive.NewEngine(adaptive.Config{
		Xmax:    4,
		Rand:    rand.New(rand.NewSource(1)),
		Metrics: adaptive.NewMetrics(obs.NewRegistry()),
	})
	if err != nil {
		t.Fatal(err)
	}
	var logger *slog.Logger
	if logBuf != nil {
		logger, err = trace.NewLogger(logBuf, "debug", "json")
		if err != nil {
			t.Fatal(err)
		}
	}
	srv, err := NewServer(ServerConfig{
		Engine:            engine,
		Universe:          universe,
		ReassignPerWorker: 2,
		ReassignTotal:     4,
		Metrics:           obs.NewRegistry(),
		Tracer:            rec,
		Logger:            logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL, ts.Client())
	g, err := workload.NewGenerator(workload.Config{Seed: 3, Universe: universe})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.AddTasks(g.Tasks(12, 5)); err != nil {
		t.Fatal(err)
	}
	return ts, client
}

// TestEndToEndTrace is the acceptance path: drive the platform until a
// completion triggers a warm re-assignment, then assert the final trace
// shows the endpoint root span, the adaptive iteration under it, and all
// four solver phases — one trace ID throughout — and that the same trace
// is retrievable from GET /debug/trace as Perfetto-loadable JSON.
func TestEndToEndTrace(t *testing.T) {
	rec := trace.NewRecorder(64, 1)
	var logBuf bytes.Buffer
	ts, client := newTracedServer(t, rec, &logBuf)

	tasks, err := client.Register("w1", sixKeywords(0))
	if err != nil {
		t.Fatal(err)
	}
	// Complete tasks until the platform re-assigns: the worker is warm by
	// then, so the iteration inside that request runs the full solver.
	var resp *CompleteResponse
	for i := 0; i < len(tasks) && (resp == nil || !resp.Reassigned); i++ {
		resp, err = client.Complete("w1", tasks[i].ID)
		if err != nil {
			t.Fatal(err)
		}
	}
	if resp == nil || !resp.Reassigned {
		t.Fatal("no completion triggered a re-assignment")
	}

	traces := rec.Snapshot(0)
	if len(traces) == 0 {
		t.Fatal("no traces recorded")
	}
	last := traces[len(traces)-1]
	spans := last.Spans()
	byName := map[string]int{}
	for _, sd := range spans {
		byName[sd.Name]++
	}
	if spans[0].Name != "POST /api/workers/{id}/complete" {
		t.Fatalf("root span = %q, want the complete endpoint", spans[0].Name)
	}
	for _, want := range []string{
		"adaptive.reestimate", "adaptive.iteration", "solver.run",
		"solver.precompute", "solver.matching", "solver.lsap", "solver.flip",
	} {
		if byName[want] == 0 {
			t.Fatalf("trace missing span %q; got %v", want, byName)
		}
	}

	// Every span of the trace shares the root's trace ID by construction;
	// the exported form must agree.
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, []*trace.Trace{last}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Args struct {
				TraceID string `json:"trace_id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.TraceEvents) != len(spans) {
		t.Fatalf("exported %d events for %d spans", len(out.TraceEvents), len(spans))
	}
	for _, ev := range out.TraceEvents {
		if ev.Args.TraceID != last.ID.String() {
			t.Fatalf("event %q trace_id = %s, want %s", ev.Name, ev.Args.TraceID, last.ID)
		}
	}

	// The same trace is served over HTTP from the debug mux.
	httpResp, err := http.Get(ts.URL + "/debug/trace?n=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	if httpResp.StatusCode != 200 || !json.Valid(body) {
		t.Fatalf("GET /debug/trace: %d, valid JSON %v", httpResp.StatusCode, json.Valid(body))
	}
	if !strings.Contains(string(body), "solver.lsap") {
		t.Fatal("served trace lacks solver phases")
	}

	// pprof rides on the same mux.
	pp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("GET /debug/pprof/cmdline: %d", pp.StatusCode)
	}

	// The request log is trace-correlated: the complete request's line
	// carries the trace ID of the recorded trace.
	if !strings.Contains(logBuf.String(), last.ID.String()) {
		t.Fatalf("request log lacks trace id %s:\n%s", last.ID, logBuf.String())
	}
}

// TestTraceHeaderAndSampling: sampled responses carry X-Trace-Id matching
// a retained trace; an all-off tracer adds no header and records nothing.
func TestTraceHeaderAndSampling(t *testing.T) {
	rec := trace.NewRecorder(8, 1)
	ts, _ := newTracedServer(t, rec, nil)
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hdr := resp.Header.Get("X-Trace-Id")
	if len(hdr) != 16 {
		t.Fatalf("X-Trace-Id = %q, want 16 hex chars", hdr)
	}
	found := false
	for _, tr := range rec.Snapshot(0) {
		if tr.ID.String() == hdr {
			found = true
		}
	}
	if !found {
		t.Fatalf("header trace %s not among retained traces", hdr)
	}

	off := trace.NewRecorder(8, 0)
	ts2, _ := newTracedServer(t, off, nil)
	resp2, err := http.Get(ts2.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("disabled tracer set X-Trace-Id = %q", got)
	}
	if len(off.Snapshot(0)) != 0 {
		t.Fatal("disabled tracer recorded traces")
	}
}
