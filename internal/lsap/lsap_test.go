package lsap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(r *rand.Rand, n int) *Dense {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		for j := range rows[i] {
			rows[i][j] = r.Float64() * 10
		}
	}
	return NewDense(rows)
}

func TestHungarianKnown(t *testing.T) {
	// Max assignment: (0→1)=9 + (1→0)=8 + (2→2)=7 = 24.
	c := NewDense([][]float64{
		{1, 9, 2},
		{8, 6, 3},
		{4, 5, 7},
	})
	sol := Hungarian(c)
	if sol.Value != 24 {
		t.Fatalf("Hungarian value = %g, want 24 (assignment %v)", sol.Value, sol.RowToCol)
	}
	want := []int{1, 0, 2}
	for i, j := range sol.RowToCol {
		if j != want[i] {
			t.Fatalf("assignment = %v, want %v", sol.RowToCol, want)
		}
	}
}

func TestHungarianEmptyAndSingle(t *testing.T) {
	if sol := Hungarian(NewDense(nil)); sol.Value != 0 || len(sol.RowToCol) != 0 {
		t.Fatalf("empty: %+v", sol)
	}
	sol := Hungarian(NewDense([][]float64{{3.5}}))
	if sol.Value != 3.5 || sol.RowToCol[0] != 0 {
		t.Fatalf("single: %+v", sol)
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + r.Intn(7)
		c := randDense(r, n)
		h, b := Hungarian(c), BruteForce(c)
		if math.Abs(h.Value-b.Value) > 1e-9 {
			t.Fatalf("trial %d n=%d: Hungarian %g != optimum %g", trial, n, h.Value, b.Value)
		}
		assertPermutation(t, h.RowToCol)
	}
}

func TestHungarianWithTiesAndZeros(t *testing.T) {
	c := NewDense([][]float64{
		{0, 0, 0},
		{0, 0, 0},
		{0, 0, 5},
	})
	sol := Hungarian(c)
	if sol.Value != 5 {
		t.Fatalf("value = %g, want 5", sol.Value)
	}
	assertPermutation(t, sol.RowToCol)
}

func TestGreedyIsPerfectMatching(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + r.Intn(12)
		sol := Greedy(randDense(r, n))
		assertPermutation(t, sol.RowToCol)
	}
}

func TestGreedyHalfApprox(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		n := 1 + r.Intn(7)
		c := randDense(r, n)
		g, opt := Greedy(c), BruteForce(c)
		if g.Value < opt.Value/2-1e-9 {
			t.Fatalf("trial %d: greedy %g < 1/2 * optimum %g", trial, g.Value, opt.Value)
		}
		if g.Value > opt.Value+1e-9 {
			t.Fatalf("trial %d: greedy %g exceeds optimum %g", trial, g.Value, opt.Value)
		}
	}
}

func TestGreedyTakesHeaviestFirst(t *testing.T) {
	// Greedy picks 10 first and is then forced into 1+1 = total 12;
	// optimum is 9+9+... — classic greedy-vs-opt gap instance.
	c := NewDense([][]float64{
		{10, 9, 0},
		{9, 0, 1},
		{0, 1, 5},
	})
	sol := Greedy(c)
	if sol.RowToCol[0] != 0 {
		t.Fatalf("greedy should take the heaviest edge (0,0) first, got %v", sol.RowToCol)
	}
}

// blockCosts is a ColumnClassed test double mirroring the HTA auxiliary
// problem: profit depends only on (row, column class).
type blockCosts struct {
	n       int
	classOf []int
	profit  [][]float64 // profit[row][class]
}

func (b *blockCosts) N() int                   { return b.n }
func (b *blockCosts) At(i, j int) float64      { return b.profit[i][b.classOf[j]] }
func (b *blockCosts) NumClasses() int          { return len(b.profit[0]) }
func (b *blockCosts) Class(j int) int          { return b.classOf[j] }
func (b *blockCosts) AtClass(i, c int) float64 { return b.profit[i][c] }

func randBlock(r *rand.Rand, n, nc int) *blockCosts {
	b := &blockCosts{n: n, classOf: make([]int, n), profit: make([][]float64, n)}
	for j := range b.classOf {
		b.classOf[j] = j % nc
	}
	for i := range b.profit {
		b.profit[i] = make([]float64, nc)
		for c := range b.profit[i] {
			b.profit[i][c] = r.Float64() * 5
		}
	}
	return b
}

func TestGreedyClassedMatchesDenseValue(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(10)
		nc := 1 + r.Intn(n)
		b := randBlock(r, n, nc)
		classed := Greedy(b)
		// Same matrix as a plain Costs (no ColumnClassed fast path).
		dense := Greedy(denseView{b})
		if math.Abs(classed.Value-dense.Value) > 1e-9 {
			t.Fatalf("trial %d: classed greedy %g != dense greedy %g", trial, classed.Value, dense.Value)
		}
		assertPermutation(t, classed.RowToCol)
	}
}

func TestHungarianOnClassedMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(6)
		b := randBlock(r, n, 1+r.Intn(n))
		h, opt := Hungarian(b), BruteForce(b)
		if math.Abs(h.Value-opt.Value) > 1e-9 {
			t.Fatalf("trial %d: %g != %g", trial, h.Value, opt.Value)
		}
	}
}

// denseView strips the ColumnClassed methods from a blockCosts.
type denseView struct{ c Costs }

func (d denseView) N() int              { return d.c.N() }
func (d denseView) At(i, j int) float64 { return d.c.At(i, j) }

func TestBruteForcePanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BruteForce(randDense(rand.New(rand.NewSource(1)), 11))
}

func TestDenseRowLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense([][]float64{{1, 2}, {3}})
}

func TestDenseSet(t *testing.T) {
	d := NewDense([][]float64{{1, 2}, {3, 4}})
	d.Set(0, 1, 9)
	if d.At(0, 1) != 9 {
		t.Fatalf("Set/At = %g", d.At(0, 1))
	}
}

func TestQuickHungarianAtLeastGreedy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(9)
		c := randDense(r, n)
		return Hungarian(c).Value >= Greedy(c).Value-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func assertPermutation(t *testing.T, p []int) {
	t.Helper()
	seen := make([]bool, len(p))
	for _, j := range p {
		if j < 0 || j >= len(p) || seen[j] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[j] = true
	}
}

func BenchmarkHungarian(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(itoa(n), func(b *testing.B) {
			c := randDense(rand.New(rand.NewSource(1)), n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Hungarian(c)
			}
		})
	}
}

func BenchmarkGreedy(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(itoa(n), func(b *testing.B) {
			c := randDense(rand.New(rand.NewSource(1)), n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Greedy(c)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
