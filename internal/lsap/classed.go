// Class-collapsed exact LSAP (the PR-2 tentpole). The HTA auxiliary matrix
// f[k][l] = bM(t_k)·degA(l) + c[k][l] has only |W|+1 distinct column
// classes, so the n×n assignment problem collapses to a capacitated
// assignment on an n×(|W|+1) profit matrix: class l may receive at most
// cap[l] rows (Xmax per worker clique, n−|W|·Xmax for the isolated class).
// HungarianClassed solves that collapsed problem exactly by successive
// shortest augmenting paths over class nodes carrying multiplicity,
// dropping HTA-APP's Line-11 cost from O(|T|³) to O(|T|²·|W|); Auto
// dispatches between it and the dense Hungarian.
package lsap

import (
	"errors"
	"fmt"
	"math"
)

// Workspace holds the reusable scratch buffers of every solver in this
// package (Hungarian, HungarianClassed, Greedy and the Auto dispatcher).
// Passing the same Workspace to successive solves of same-sized problems
// eliminates all per-call allocations — the adaptive engine holds one
// across iterations for exactly that reason.
//
// A Workspace is not safe for concurrent use, and the RowToCol slice of a
// Solution returned by a *WS solver aliases workspace memory: it is valid
// only until the next solve through the same Workspace (copy it to retain).
// The zero value is ready to use.
type Workspace struct {
	// Shared float scratch: dual potentials and shortest-path labels.
	u, v, minv []float64
	// Dense Hungarian state.
	p, way []int
	used   []bool
	// Classed Hungarian state.
	wayClass, wayRow             []int
	occ, bucketStart, bucketRows []int
	rowSlot, rowClass, usedSeq   []int
	// Column-class census shared by greedyClassed, HungarianClassed and Auto.
	caps, colStart, colNext, cols []int
	autoCaps                      []int
	// Greedy state.
	edges   []greedyEdge
	colUsed []bool
	// Result buffer returned (aliased) as Solution.RowToCol.
	rowToCol []int
}

// NewWorkspace returns an empty Workspace. Equivalent to &Workspace{};
// provided for discoverability.
func NewWorkspace() *Workspace { return &Workspace{} }

// growFloats returns *buf resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified; callers initialize.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growEdges(buf *[]greedyEdge, n int) []greedyEdge {
	if cap(*buf) < n {
		*buf = make([]greedyEdge, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Block is an explicit ColumnClassed Costs: column j carries class
// classOf[j] and the profit of (row i, class c) is profit[i][c]. It is the
// reference implementation of the interface for tests and benchmarks; the
// solver package's auxiliary HTA costs implement the same shape implicitly.
type Block struct {
	n, nc   int
	classOf []int
	profit  []float64 // row-major n×nc
}

// NewBlock builds a Block over len(classOf) columns. Every class in
// classOf must lie in [0, nc) where nc = len(profits[0]), and profits must
// be an n×nc matrix.
func NewBlock(classOf []int, profits [][]float64) *Block {
	n := len(classOf)
	if len(profits) != n {
		panic(fmt.Sprintf("lsap: %d profit rows for %d columns", len(profits), n))
	}
	nc := 0
	if n > 0 {
		nc = len(profits[0])
	}
	b := &Block{n: n, nc: nc, classOf: append([]int(nil), classOf...), profit: make([]float64, n*nc)}
	for j, cl := range classOf {
		if cl < 0 || cl >= nc {
			panic(fmt.Sprintf("lsap: column %d has class %d, want [0,%d)", j, cl, nc))
		}
	}
	for i, row := range profits {
		if len(row) != nc {
			panic(fmt.Sprintf("lsap: profit row %d has %d entries, want %d", i, len(row), nc))
		}
		copy(b.profit[i*nc:(i+1)*nc], row)
	}
	return b
}

// N implements Costs.
func (b *Block) N() int { return b.n }

// At implements Costs.
func (b *Block) At(i, j int) float64 { return b.profit[i*b.nc+b.classOf[j]] }

// NumClasses implements ColumnClassed.
func (b *Block) NumClasses() int { return b.nc }

// Class implements ColumnClassed.
func (b *Block) Class(j int) int { return b.classOf[j] }

// AtClass implements ColumnClassed.
func (b *Block) AtClass(i, c int) float64 { return b.profit[i*b.nc+c] }

var _ ColumnClassed = (*Block)(nil)

// ErrBadCapacities wraps every capacity-vector validation failure returned
// by HungarianClassed: wrong length, negative entries, a class capacity
// exceeding its column count, or capacities not summing to N().
var ErrBadCapacities = errors.New("lsap: invalid class capacities")

// HungarianClassed solves the column-class-collapsed LSAP exactly
// (maximization): row i assigned to class Class(j) earns AtClass(i, Class(j)),
// and class l accepts at most capacities[l] rows. Capacities must match the
// column structure — capacities[l] ≤ #{j : Class(j) = l} with Σ capacities =
// N() (zero-capacity classes are fine) — or ErrBadCapacities is returned.
//
// The solver is the successive-shortest-augmenting-path Kuhn–Munkres of
// Hungarian run over class nodes carrying multiplicity: one dual per class,
// augmenting paths relax through every row matched to a saturated class.
// Each of the n row insertions costs O(n·numClasses), for O(n²·numClasses)
// total — at HTA's |W|+1 classes, an |T|/|W| speedup over the dense O(n³).
//
// The class-level optimum is expanded to concrete columns deterministically:
// rows in increasing index take the lowest unused column of their class, so
// equal inputs yield equal Solutions. The expansion never changes the value
// — all columns of a class are interchangeable by definition.
func HungarianClassed(c ColumnClassed, capacities []int) (Solution, error) {
	return HungarianClassedWS(c, capacities, nil)
}

// HungarianClassedWS is HungarianClassed drawing scratch (and the returned
// RowToCol) from ws; steady-state solves of same-shaped problems allocate
// nothing. A nil ws uses a private workspace. capacities is read-only.
func HungarianClassedWS(c ColumnClassed, capacities []int, ws *Workspace) (Solution, error) {
	n, nc := c.N(), c.NumClasses()
	if len(capacities) != nc {
		return Solution{}, fmt.Errorf("%w: %d entries for %d classes", ErrBadCapacities, len(capacities), nc)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	// Census the columns per class and validate the capacity vector.
	count := growInts(&ws.colNext, nc)
	for cl := range count {
		count[cl] = 0
	}
	for j := 0; j < n; j++ {
		cl := c.Class(j)
		if cl < 0 || cl >= nc {
			return Solution{}, fmt.Errorf("lsap: column %d has class %d, want [0,%d)", j, cl, nc)
		}
		count[cl]++
	}
	sum := 0
	for cl, cp := range capacities {
		switch {
		case cp < 0:
			return Solution{}, fmt.Errorf("%w: class %d capacity %d < 0", ErrBadCapacities, cl, cp)
		case cp > count[cl]:
			return Solution{}, fmt.Errorf("%w: class %d capacity %d exceeds its %d columns",
				ErrBadCapacities, cl, cp, count[cl])
		}
		sum += cp
	}
	if sum != n {
		return Solution{}, fmt.Errorf("%w: capacities sum to %d, want %d", ErrBadCapacities, sum, n)
	}
	if n == 0 {
		return Solution{RowToCol: nil, Value: 0}, nil
	}

	// Minimize negated profits with dual potentials u (rows) and v (classes);
	// matched edges stay tight (cost − u − v = 0), unmatched stay ≥ 0.
	const inf = math.MaxFloat64
	u := growFloats(&ws.u, n)
	v := growFloats(&ws.v, nc)
	minv := growFloats(&ws.minv, nc)
	used := growBools(&ws.used, nc)
	wayClass := growInts(&ws.wayClass, nc) // previous class on the shortest alternating path (−1: the inserted row)
	wayRow := growInts(&ws.wayRow, nc)     // row traversed on the final edge into the class
	occ := growInts(&ws.occ, nc)           // rows currently matched to each class
	bucketStart := growInts(&ws.bucketStart, nc+1)
	bucketRows := growInts(&ws.bucketRows, n) // matched rows, bucketed per class
	rowSlot := growInts(&ws.rowSlot, n)       // index of each matched row inside bucketRows
	rowClass := growInts(&ws.rowClass, n)     // class each row is matched to
	usedSeq := growInts(&ws.usedSeq, nc)      // classes finalized this insertion, in order

	for i := 0; i < n; i++ {
		u[i] = 0
	}
	bucketStart[0] = 0
	for l := 0; l < nc; l++ {
		v[l], occ[l] = 0, 0
		bucketStart[l+1] = bucketStart[l] + capacities[l]
	}

	for r := 0; r < n; r++ {
		for l := 0; l < nc; l++ {
			minv[l] = inf
			used[l] = false
		}
		nUsed := 0
		j0 := -1 // −1 is the virtual source holding row r
		for {
			// Scan: relax the edges leaving the rows attached to j0. A used
			// class contributes all its matched rows; matched edges are tight
			// under the current duals, so traversing them backwards is free.
			if j0 < 0 {
				for l := 0; l < nc; l++ {
					if used[l] {
						continue
					}
					if cur := -c.AtClass(r, l) - u[r] - v[l]; cur < minv[l] {
						minv[l] = cur
						wayClass[l] = j0
						wayRow[l] = r
					}
				}
			} else {
				used[j0] = true
				usedSeq[nUsed] = j0
				nUsed++
				for s := bucketStart[j0]; s < bucketStart[j0]+occ[j0]; s++ {
					i := bucketRows[s]
					for l := 0; l < nc; l++ {
						if used[l] {
							continue
						}
						if cur := -c.AtClass(i, l) - u[i] - v[l]; cur < minv[l] {
							minv[l] = cur
							wayClass[l] = j0
							wayRow[l] = i
						}
					}
				}
			}
			delta := inf
			j1 := -1
			for l := 0; l < nc; l++ {
				if !used[l] && minv[l] < delta {
					delta = minv[l]
					j1 = l
				}
			}
			if j1 < 0 {
				// Unreachable once capacities validate: the used classes are
				// all saturated, so Σ capacities would undercount the rows.
				return Solution{}, errors.New("lsap: no augmenting path (inconsistent ColumnClassed)")
			}
			// Dual update keeping matched edges tight and shifting the
			// pending labels into the new dual frame.
			u[r] += delta
			for s := 0; s < nUsed; s++ {
				l := usedSeq[s]
				v[l] -= delta
				for t := bucketStart[l]; t < bucketStart[l]+occ[l]; t++ {
					u[bucketRows[t]] += delta
				}
			}
			for l := 0; l < nc; l++ {
				if !used[l] {
					minv[l] -= delta
				}
			}
			j0 = j1
			if occ[j0] < capacities[j0] {
				break
			}
		}
		// Augment along the way links: each traversed row leaves its class
		// for the next one on the path; the inserted row takes the first.
		for {
			i, prev := wayRow[j0], wayClass[j0]
			if prev >= 0 {
				s := rowSlot[i]
				last := bucketStart[prev] + occ[prev] - 1
				bucketRows[s] = bucketRows[last]
				rowSlot[bucketRows[s]] = s
				occ[prev]--
			}
			slot := bucketStart[j0] + occ[j0]
			bucketRows[slot] = i
			rowSlot[i] = slot
			rowClass[i] = j0
			occ[j0]++
			if prev < 0 {
				break
			}
			j0 = prev
		}
	}

	// Expand the class-level matching to concrete columns: rows in
	// increasing index take the lowest unused column of their class.
	colStart := growInts(&ws.colStart, nc+1)
	cols := growInts(&ws.cols, n)
	colStart[0] = 0
	for l := 0; l < nc; l++ {
		colStart[l+1] = colStart[l] + count[l]
	}
	cursor := count // count is no longer needed; reuse as the fill cursor
	copy(cursor, colStart[:nc])
	for j := 0; j < n; j++ {
		cl := c.Class(j)
		cols[cursor[cl]] = j
		cursor[cl]++
	}
	copy(cursor, colStart[:nc])
	rowToCol := growInts(&ws.rowToCol, n)
	for i := 0; i < n; i++ {
		cl := rowClass[i]
		rowToCol[i] = cols[cursor[cl]]
		cursor[cl]++
	}
	return Solution{RowToCol: rowToCol, Value: value(c, rowToCol)}, nil
}

// Auto solves LSAP exactly, dispatching on structure: costs exposing
// ColumnClassed with enough column duplication to pay off (2·NumClasses ≤ N)
// go through HungarianClassed on the collapsed n×NumClasses matrix with
// capacities derived from the column census; everything else falls back to
// the dense Hungarian. Both paths are exact, so the returned Value is the
// LSAP optimum either way — only tie-breaking among equal-value optima may
// differ. p is accepted for signature parity with GreedyP (the exact
// solvers are sequential; pipeline parallelism applies around them).
func Auto(c Costs, p int) Solution {
	return AutoWS(c, p, nil)
}

// AutoWS is Auto drawing scratch from ws (see HungarianClassedWS and
// HungarianWS for the aliasing contract). A nil ws uses a private workspace.
func AutoWS(c Costs, p int, ws *Workspace) Solution {
	_ = p
	if cc, ok := c.(ColumnClassed); ok {
		if n, nc := cc.N(), cc.NumClasses(); nc > 0 && 2*nc <= n {
			if ws == nil {
				ws = &Workspace{}
			}
			caps := growInts(&ws.autoCaps, nc)
			for l := range caps {
				caps[l] = 0
			}
			valid := true
			for j := 0; j < n; j++ {
				cl := cc.Class(j)
				if cl < 0 || cl >= nc {
					valid = false
					break
				}
				caps[cl]++
			}
			if valid {
				if sol, err := HungarianClassedWS(cc, caps, ws); err == nil {
					return sol
				}
			}
		}
	}
	return HungarianWS(c, ws)
}
