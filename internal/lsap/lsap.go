// Package lsap solves the Linear Sum Assignment Problem (LSAP), the
// auxiliary problem at the heart of both HTA algorithms (Section IV of the
// paper, Line 11 of Algorithms 1 and 2).
//
// Given an n×n cost matrix f, LSAP asks for a permutation σ maximizing
// Σ_k f[k][σ(k)]. HTA-APP solves it exactly with the Hungarian algorithm
// (O(n³)); HTA-GRE replaces that step with a ½-approximate greedy matching
// on the complete bipartite graph (O(n² log n)), trading a factor 2 in the
// guarantee for an order of magnitude in running time — the paper's central
// engineering contribution.
//
// Costs are abstracted behind an interface because the HTA auxiliary matrix
// f[k][l] = bM(t_k)·degA(l) + c[k][l] has only |W|+1 distinct column
// classes; representing it implicitly keeps memory at O(|T|·|W|) instead of
// O(|T|²) (800 MB at the paper's 10k-task scale). The solvers in this
// package work on any Costs; Greedy additionally exploits ColumnClassed
// structure when available.
package lsap

import (
	"fmt"
	"math"
	"slices"

	"github.com/htacs/ata/internal/par"
)

// Costs is a square matrix of assignment profits. Implementations must be
// safe for concurrent reads.
type Costs interface {
	// N is the dimension of the square matrix.
	N() int
	// At returns the profit of assigning row i to column j.
	At(i, j int) float64
}

// ColumnClassed is implemented by cost structures whose columns partition
// into classes with identical entries: At(i, j) depends only on
// (i, Class(j)). Greedy exploits this to sort n·numClasses candidates
// instead of n² edges.
type ColumnClassed interface {
	Costs
	// NumClasses is the number of distinct column classes.
	NumClasses() int
	// Class returns the class of column j, in [0, NumClasses()).
	Class(j int) int
	// AtClass returns the profit of assigning row i to any column of class c.
	AtClass(i, c int) float64
}

// Dense is a Costs backed by a flat row-major float64 slice.
type Dense struct {
	n int
	a []float64
}

// NewDense builds a Dense matrix from rows. All rows must have length
// len(rows).
func NewDense(rows [][]float64) *Dense {
	n := len(rows)
	d := &Dense{n: n, a: make([]float64, n*n)}
	for i, r := range rows {
		if len(r) != n {
			panic(fmt.Sprintf("lsap: row %d has %d entries, want %d", i, len(r), n))
		}
		copy(d.a[i*n:(i+1)*n], r)
	}
	return d
}

// N implements Costs.
func (d *Dense) N() int { return d.n }

// At implements Costs.
func (d *Dense) At(i, j int) float64 { return d.a[i*d.n+j] }

// Set updates one entry.
func (d *Dense) Set(i, j int, v float64) { d.a[i*d.n+j] = v }

// Solution is an assignment of rows to columns.
type Solution struct {
	// RowToCol[i] is the column assigned to row i.
	RowToCol []int
	// Value is Σ_i At(i, RowToCol[i]).
	Value float64
}

// value recomputes the objective of a row→col assignment.
func value(c Costs, rowToCol []int) float64 {
	var v float64
	for i, j := range rowToCol {
		v += c.At(i, j)
	}
	return v
}

// Hungarian solves LSAP exactly, maximizing total profit, in O(n³) time and
// O(n) extra memory beyond the cost structure. It is the shortest
// augmenting path formulation of the Kuhn–Munkres algorithm (the same
// family as the Carpaneto–Toth code the paper adapted).
func Hungarian(c Costs) Solution {
	return HungarianWS(c, nil)
}

// HungarianWS is Hungarian drawing every scratch slice (and the returned
// RowToCol) from ws, so steady-state solves of same-sized problems allocate
// nothing. A nil ws uses a private workspace, which is exactly Hungarian.
func HungarianWS(c Costs, ws *Workspace) Solution {
	n := c.N()
	if n == 0 {
		return Solution{RowToCol: nil, Value: 0}
	}
	if ws == nil {
		ws = &Workspace{}
	}
	// The classic formulation minimizes; negate profits.
	const inf = math.MaxFloat64
	u := growFloats(&ws.u, n+1)
	v := growFloats(&ws.v, n+1)
	p := growInts(&ws.p, n+1)     // p[j]: row (1-based) matched to column j; p[0] is the row being inserted
	way := growInts(&ws.way, n+1) // way[j]: previous column on the shortest alternating path
	minv := growFloats(&ws.minv, n+1)
	used := growBools(&ws.used, n+1)
	for j := 0; j <= n; j++ {
		u[j], v[j], p[j] = 0, 0, 0
	}
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := -c.At(i0-1, j-1) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	rowToCol := growInts(&ws.rowToCol, n)
	for j := 1; j <= n; j++ {
		rowToCol[p[j]-1] = j - 1
	}
	return Solution{RowToCol: rowToCol, Value: value(c, rowToCol)}
}

// greedyEdge is one candidate assignment considered by Greedy.
type greedyEdge struct {
	w   float64
	row int32
	col int32 // column index, or column class when classed
}

// Greedy computes a ½-approximate solution to LSAP (maximization) by the
// GreedyMatching algorithm of the paper (Section IV-C): repeatedly take the
// heaviest remaining edge of the complete bipartite graph whose endpoints
// are both free. Because the graph is complete with an even number of
// vertices, the result is a perfect matching (Lemma 4), so every row is
// assigned. Profits must be non-negative for the guarantee to be
// meaningful.
//
// When c implements ColumnClassed, only n·NumClasses candidates are sorted
// and class capacities are respected, which is equivalent to greedy over
// the full edge set under a tie-break that prefers lower column indices
// within a class.
func Greedy(c Costs) Solution {
	return GreedyWS(c, 1, nil)
}

// GreedyP is Greedy with the candidate profit list built by p goroutines
// (p >= 1 literal, p <= 0 → runtime.NumCPU()) — the parallel construction
// of the auxiliary LSAP profit matrix in the HTA-GRE hot path. Each
// candidate is written to its position-determined slot, so the sorted order
// (sortEdges is a strict total order on (w, row, col)) and the returned
// solution are identical to Greedy's for any p. c must be safe for
// concurrent reads, as the Costs contract already requires.
func GreedyP(c Costs, p int) Solution {
	return GreedyWS(c, p, nil)
}

// GreedyWS is GreedyP drawing scratch (and the returned RowToCol) from ws;
// with p == 1 and a warm workspace it allocates nothing. A nil ws uses a
// private workspace.
func GreedyWS(c Costs, p int, ws *Workspace) Solution {
	if ws == nil {
		ws = &Workspace{}
	}
	if cc, ok := c.(ColumnClassed); ok {
		return greedyClassed(cc, p, ws)
	}
	return greedyDense(c, p, ws)
}

func greedyDense(c Costs, p int, ws *Workspace) Solution {
	n := c.N()
	edges := growEdges(&ws.edges, n*n)
	if p <= 1 {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				edges[i*n+j] = greedyEdge{w: c.At(i, j), row: int32(i), col: int32(j)}
			}
		}
	} else {
		par.Do(n, p, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					edges[i*n+j] = greedyEdge{w: c.At(i, j), row: int32(i), col: int32(j)}
				}
			}
		})
	}
	sortEdges(edges)
	rowToCol := growInts(&ws.rowToCol, n)
	for i := range rowToCol {
		rowToCol[i] = -1
	}
	colUsed := growBools(&ws.colUsed, n)
	for j := range colUsed {
		colUsed[j] = false
	}
	assigned := 0
	for _, e := range edges {
		if assigned == n {
			break
		}
		if rowToCol[e.row] != -1 || colUsed[e.col] {
			continue
		}
		rowToCol[e.row] = int(e.col)
		colUsed[e.col] = true
		assigned++
	}
	return Solution{RowToCol: rowToCol, Value: value(c, rowToCol)}
}

func greedyClassed(c ColumnClassed, p int, ws *Workspace) Solution {
	n := c.N()
	nc := c.NumClasses()
	// Remaining capacity and, in cols, the columns of each class in
	// increasing index (class cl owns cols[colStart[cl]:colStart[cl+1]]).
	capacity := growInts(&ws.caps, nc)
	for cl := range capacity {
		capacity[cl] = 0
	}
	for j := 0; j < n; j++ {
		capacity[c.Class(j)]++
	}
	colStart := growInts(&ws.colStart, nc+1)
	colStart[0] = 0
	for cl := 0; cl < nc; cl++ {
		colStart[cl+1] = colStart[cl] + capacity[cl]
	}
	cols := growInts(&ws.cols, n)
	cursor := growInts(&ws.colNext, nc)
	copy(cursor, colStart[:nc])
	for j := 0; j < n; j++ {
		cl := c.Class(j)
		cols[cursor[cl]] = j
		cursor[cl]++
	}
	edges := growEdges(&ws.edges, n*nc)
	if p <= 1 {
		for i := 0; i < n; i++ {
			for cl := 0; cl < nc; cl++ {
				edges[i*nc+cl] = greedyEdge{w: c.AtClass(i, cl), row: int32(i), col: int32(cl)}
			}
		}
	} else {
		par.Do(n, p, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for cl := 0; cl < nc; cl++ {
					edges[i*nc+cl] = greedyEdge{w: c.AtClass(i, cl), row: int32(i), col: int32(cl)}
				}
			}
		})
	}
	sortEdges(edges)
	rowToCol := growInts(&ws.rowToCol, n)
	for i := range rowToCol {
		rowToCol[i] = -1
	}
	assigned := 0
	for _, e := range edges {
		if assigned == n {
			break
		}
		cl := int(e.col)
		if rowToCol[e.row] != -1 || capacity[cl] == 0 {
			continue
		}
		rowToCol[e.row] = cols[colStart[cl]+capacity[cl]-1]
		capacity[cl]--
		assigned++
	}
	return Solution{RowToCol: rowToCol, Value: value(c, rowToCol)}
}

// sortEdges orders candidates by decreasing weight, breaking ties by
// (row, col) so runs are deterministic.
func sortEdges(edges []greedyEdge) {
	slices.SortFunc(edges, func(a, b greedyEdge) int {
		switch {
		case a.w > b.w:
			return -1
		case a.w < b.w:
			return 1
		case a.row != b.row:
			return int(a.row) - int(b.row)
		default:
			return int(a.col) - int(b.col)
		}
	})
}

// BruteForce solves LSAP exactly by enumerating all n! permutations.
// It is only intended for cross-checking the other solvers in tests and
// panics for n > 10.
func BruteForce(c Costs) Solution {
	n := c.N()
	if n > 10 {
		panic(fmt.Sprintf("lsap: BruteForce limited to n <= 10, got %d", n))
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := Solution{RowToCol: append([]int(nil), perm...), Value: value(c, perm)}
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			if v := value(c, perm); v > best.Value {
				best.Value = v
				copy(best.RowToCol, perm)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}
