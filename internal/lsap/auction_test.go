package lsap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAuctionMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(7)
		c := randDense(r, n)
		a, opt := Auction(c), BruteForce(c)
		if math.Abs(a.Value-opt.Value) > 1e-6*math.Max(1, opt.Value) {
			t.Fatalf("trial %d n=%d: auction %g != optimum %g", trial, n, a.Value, opt.Value)
		}
		assertPermutation(t, a.RowToCol)
	}
}

func TestAuctionMatchesHungarianLarger(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	for _, n := range []int{20, 60, 120} {
		c := randDense(r, n)
		a, h := Auction(c), Hungarian(c)
		if math.Abs(a.Value-h.Value) > 1e-6*math.Max(1, h.Value) {
			t.Fatalf("n=%d: auction %g != hungarian %g", n, a.Value, h.Value)
		}
	}
}

func TestAuctionIntegerCosts(t *testing.T) {
	// With integer profits the ε-scaled auction is exactly optimal.
	c := NewDense([][]float64{
		{7, 2, 1},
		{2, 7, 2},
		{1, 2, 7},
	})
	a := Auction(c)
	if a.Value != 21 {
		t.Fatalf("auction value = %g, want 21", a.Value)
	}
}

func TestAuctionDegenerate(t *testing.T) {
	if sol := Auction(NewDense(nil)); len(sol.RowToCol) != 0 {
		t.Fatalf("empty: %+v", sol)
	}
	sol := Auction(NewDense([][]float64{{4}}))
	if sol.Value != 4 || sol.RowToCol[0] != 0 {
		t.Fatalf("single: %+v", sol)
	}
	// All-zero profits: must still return a valid permutation.
	zero := Auction(NewDense([][]float64{{0, 0}, {0, 0}}))
	assertPermutation(t, zero.RowToCol)
	if zero.Value != 0 {
		t.Fatalf("zero value = %g", zero.Value)
	}
}

func TestAuctionOnColumnClassed(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(6)
		b := randBlock(r, n, 1+r.Intn(n))
		a, opt := Auction(b), BruteForce(b)
		if math.Abs(a.Value-opt.Value) > 1e-6 {
			t.Fatalf("trial %d: auction %g != optimum %g", trial, a.Value, opt.Value)
		}
	}
}

func TestQuickAuctionNeverExceedsHungarian(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		c := randDense(r, n)
		a, h := Auction(c), Hungarian(c)
		return a.Value <= h.Value+1e-6 && a.Value >= h.Value-1e-6*math.Max(1, h.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAuction(b *testing.B) {
	for _, n := range []int{50, 200} {
		b.Run(itoa(n), func(b *testing.B) {
			c := randDense(rand.New(rand.NewSource(1)), n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Auction(c)
			}
		})
	}
}
