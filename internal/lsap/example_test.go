package lsap_test

import (
	"fmt"

	"github.com/htacs/ata/internal/lsap"
)

// ExampleHungarian solves a 3×3 profit matrix exactly.
func ExampleHungarian() {
	profits := lsap.NewDense([][]float64{
		{1, 9, 2},
		{8, 6, 3},
		{4, 5, 7},
	})
	sol := lsap.Hungarian(profits)
	fmt.Printf("value %.0f, rows → cols %v\n", sol.Value, sol.RowToCol)
	// Output:
	// value 24, rows → cols [1 0 2]
}

// ExampleGreedy shows the ½-approximate greedy assignment HTA-GRE uses in
// place of the Hungarian algorithm.
func ExampleGreedy() {
	profits := lsap.NewDense([][]float64{
		{10, 9, 0},
		{9, 0, 1},
		{0, 1, 5},
	})
	greedy := lsap.Greedy(profits)
	exact := lsap.Hungarian(profits)
	fmt.Printf("greedy %.0f vs exact %.0f\n", greedy.Value, exact.Value)
	// Output:
	// greedy 15 vs exact 23
}
