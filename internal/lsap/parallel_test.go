package lsap

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestGreedyPParityDense: the parallel candidate fill must reproduce Greedy's
// solution exactly on dense cost matrices.
func TestGreedyPParityDense(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(30)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, n)
			for j := range rows[i] {
				rows[i][j] = r.Float64()
			}
		}
		c := NewDense(rows)
		serial := Greedy(c)
		for _, p := range []int{2, 4, n + 2} {
			got := GreedyP(c, p)
			if !reflect.DeepEqual(got.RowToCol, serial.RowToCol) || got.Value != serial.Value {
				t.Fatalf("trial %d n=%d p=%d: GreedyP diverges from Greedy", trial, n, p)
			}
		}
	}
}

// classedCosts is a minimal ColumnClassed for the parity test: columns fall
// into nc classes round-robin and the profit depends only on (row, class).
type classedCosts struct {
	n, nc int
	a     []float64 // n × nc
}

func (c *classedCosts) N() int                    { return c.n }
func (c *classedCosts) NumClasses() int           { return c.nc }
func (c *classedCosts) Class(j int) int           { return j % c.nc }
func (c *classedCosts) AtClass(i, cl int) float64 { return c.a[i*c.nc+cl] }
func (c *classedCosts) At(i, j int) float64       { return c.AtClass(i, c.Class(j)) }

// TestGreedyPParityClassed: same contract on the column-classed fast path,
// the shape the HTA auxiliary LSAP actually uses.
func TestGreedyPParityClassed(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(40)
		nc := 1 + r.Intn(6)
		c := &classedCosts{n: n, nc: nc, a: make([]float64, n*nc)}
		for i := range c.a {
			c.a[i] = r.Float64()
		}
		serial := Greedy(c)
		for _, p := range []int{2, 5, n + 1} {
			got := GreedyP(c, p)
			if !reflect.DeepEqual(got.RowToCol, serial.RowToCol) || got.Value != serial.Value {
				t.Fatalf("trial %d n=%d nc=%d p=%d: GreedyP diverges from Greedy", trial, n, nc, p)
			}
		}
	}
}
