package lsap

import (
	"math"
)

// Auction solves LSAP (maximization) with Bertsekas' auction algorithm
// with ε-scaling. The paper's Section IV-C surveys the LSAP solver design
// space — Hungarian O(n³) vs pseudo-polynomial cost-scaling methods — and
// dismisses the latter for its guarantee analysis; we include an auction
// solver so the trade-off can actually be measured (BenchmarkAblationLSAP
// in the repository root).
//
// For integer-valued profits the result is exactly optimal once ε < 1/n;
// for real-valued profits the result is optimal within n·εMin of the
// optimum. Profits are internally scaled to keep the default tolerance
// negligible relative to typical HTA objective magnitudes.
func Auction(c Costs) Solution {
	n := c.N()
	if n == 0 {
		return Solution{}
	}
	// Find the profit range to pick scaling constants.
	maxAbs := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := math.Abs(c.At(i, j)); v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs == 0 {
		// All profits zero: identity assignment is optimal.
		rowToCol := make([]int, n)
		for i := range rowToCol {
			rowToCol[i] = i
		}
		return Solution{RowToCol: rowToCol, Value: 0}
	}

	price := make([]float64, n)
	rowToCol := make([]int, n)
	colToRow := make([]int, n)

	// ε-scaling: start coarse, refine. Final ε gives value within n·εMin
	// of optimal; with εMin = maxAbs·1e-9/n the error is ~1e-9·maxAbs.
	epsMin := maxAbs * 1e-9 / float64(n)
	for eps := maxAbs / 2; ; eps /= 4 {
		if eps < epsMin {
			eps = epsMin
		}
		for i := range rowToCol {
			rowToCol[i] = -1
			colToRow[i] = -1
		}
		auctionRound(c, price, rowToCol, colToRow, eps)
		if eps == epsMin {
			break
		}
	}
	return Solution{RowToCol: rowToCol, Value: value(c, rowToCol)}
}

// auctionRound runs the forward auction until all rows are assigned.
func auctionRound(c Costs, price []float64, rowToCol, colToRow []int, eps float64) {
	n := c.N()
	// Simple FIFO queue of unassigned rows.
	queue := make([]int, n)
	for i := range queue {
		queue[i] = i
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		// Find the best and second-best net value for row i.
		bestJ, bestV, secondV := -1, math.Inf(-1), math.Inf(-1)
		for j := 0; j < n; j++ {
			v := c.At(i, j) - price[j]
			if v > bestV {
				secondV = bestV
				bestV, bestJ = v, j
			} else if v > secondV {
				secondV = v
			}
		}
		if math.IsInf(secondV, -1) {
			secondV = bestV // n == 1
		}
		// Bid: raise the price by the value margin plus ε.
		price[bestJ] += bestV - secondV + eps
		if prev := colToRow[bestJ]; prev != -1 {
			rowToCol[prev] = -1
			queue = append(queue, prev)
		}
		rowToCol[i] = bestJ
		colToRow[bestJ] = i
	}
}
