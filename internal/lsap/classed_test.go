package lsap

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// cliqueBlock builds a ColumnClassed instance with HTA's clique structure:
// numWorkers classes of xmax columns each plus one isolated class holding
// the remaining n − numWorkers·xmax columns (requires n ≥ numWorkers·xmax).
func cliqueBlock(r *rand.Rand, n, numWorkers, xmax int) *blockCosts {
	nc := numWorkers + 1
	b := &blockCosts{n: n, classOf: make([]int, n), profit: make([][]float64, n)}
	for j := 0; j < n; j++ {
		if w := j / xmax; w < numWorkers {
			b.classOf[j] = w
		} else {
			b.classOf[j] = numWorkers
		}
	}
	for i := range b.profit {
		b.profit[i] = make([]float64, nc)
		for c := range b.profit[i] {
			b.profit[i][c] = r.Float64() * 5
		}
	}
	return b
}

func classCounts(c ColumnClassed) []int {
	caps := make([]int, c.NumClasses())
	for j := 0; j < c.N(); j++ {
		caps[c.Class(j)]++
	}
	return caps
}

func TestHungarianClassedMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(8)
		nc := 1 + r.Intn(n)
		c := randBlock(r, n, nc)
		sol, err := HungarianClassed(c, classCounts(c))
		if err != nil {
			t.Fatalf("n=%d nc=%d: %v", n, nc, err)
		}
		assertPermutation(t, sol.RowToCol)
		want := BruteForce(denseView{c})
		if math.Abs(sol.Value-want.Value) > 1e-9 {
			t.Fatalf("n=%d nc=%d: classed value %.12f, brute force %.12f", n, nc, sol.Value, want.Value)
		}
		if got := value(c, sol.RowToCol); math.Abs(got-sol.Value) > 1e-12 {
			t.Fatalf("reported Value %.12f disagrees with its own assignment %.12f", sol.Value, got)
		}
	}
}

func TestHungarianClassedParityWithDense(t *testing.T) {
	shapes := []struct{ n, numWorkers, xmax int }{
		{60, 2, 5},
		{120, 10, 4},
		{200, 5, 20},
		{300, 25, 8},
		{300, 1, 40},
	}
	for _, s := range shapes {
		r := rand.New(rand.NewSource(int64(s.n*31 + s.numWorkers)))
		c := cliqueBlock(r, s.n, s.numWorkers, s.xmax)
		classed, err := HungarianClassed(c, classCounts(c))
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		assertPermutation(t, classed.RowToCol)
		dense := Hungarian(c)
		if math.Abs(classed.Value-dense.Value) > 1e-9 {
			t.Fatalf("%+v: classed %.12f vs dense Hungarian %.12f", s, classed.Value, dense.Value)
		}
	}
}

func TestHungarianClassedZeroCapacityClass(t *testing.T) {
	// A class with zero columns (and zero capacity) must be skippable.
	c := &blockCosts{
		n:       3,
		classOf: []int{0, 0, 2},
		profit:  [][]float64{{1, 9, 2}, {3, 9, 4}, {5, 9, 6}},
	}
	sol, err := HungarianClassed(c, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	assertPermutation(t, sol.RowToCol)
	if want := BruteForce(denseView{c}); math.Abs(sol.Value-want.Value) > 1e-9 {
		t.Fatalf("value %.12f, want %.12f", sol.Value, want.Value)
	}
}

func TestHungarianClassedCapacityErrors(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := randBlock(r, 6, 3) // classes 0,1,2 with 2 columns each
	cases := []struct {
		name string
		caps []int
	}{
		{"wrong length", []int{2, 2, 1, 1}},
		{"negative", []int{-1, 4, 3}},
		{"exceeds columns", []int{3, 2, 1}},
		{"sum short", []int{2, 2, 1}},
		{"sum mismatch via zero class", []int{2, 2, 0}},
	}
	for _, tc := range cases {
		if _, err := HungarianClassed(c, tc.caps); !errors.Is(err, ErrBadCapacities) {
			t.Errorf("%s: got %v, want ErrBadCapacities", tc.name, err)
		}
	}
	if _, err := HungarianClassed(c, nil); !errors.Is(err, ErrBadCapacities) {
		t.Errorf("nil capacities: got %v, want ErrBadCapacities", err)
	}
}

func TestHungarianClassedEmpty(t *testing.T) {
	sol, err := HungarianClassed(NewBlock(nil, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.RowToCol) != 0 || sol.Value != 0 {
		t.Fatalf("empty instance: got %+v", sol)
	}
}

func TestHungarianClassedDeterministicExpansion(t *testing.T) {
	// Identical inputs must give identical assignments, and within a class
	// earlier rows must receive lower column indices.
	r := rand.New(rand.NewSource(9))
	c := cliqueBlock(r, 80, 4, 10)
	caps := classCounts(c)
	first, err := HungarianClassed(c, caps)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]int(nil), first.RowToCol...)
	for trial := 0; trial < 3; trial++ {
		again, err := HungarianClassed(c, caps)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != again.RowToCol[i] {
				t.Fatalf("trial %d: row %d assigned %d then %d", trial, i, got[i], again.RowToCol[i])
			}
		}
	}
	lastCol := make(map[int]int) // class → last column handed out, per increasing row
	for i, j := range got {
		cl := c.Class(j)
		if prev, ok := lastCol[cl]; ok && j < prev {
			t.Fatalf("row %d got column %d of class %d after a later row got %d: not lowest-free-first", i, j, cl, prev)
		}
		lastCol[cl] = j
	}
}

func TestAutoDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(21))

	// Classed costs with 2·nc ≤ n: Auto must still return the exact optimum.
	c := cliqueBlock(r, 90, 3, 15)
	if got, want := Auto(c, 1), Hungarian(c); math.Abs(got.Value-want.Value) > 1e-9 {
		t.Fatalf("Auto on classed costs: %.12f, dense %.12f", got.Value, want.Value)
	}

	// Dense costs (no ColumnClassed): falls back to Hungarian exactly.
	d := randDense(r, 40)
	got, want := Auto(d, 1), Hungarian(d)
	if got.Value != want.Value {
		t.Fatalf("Auto on dense costs: %.12f, dense %.12f", got.Value, want.Value)
	}
	for i := range want.RowToCol {
		if got.RowToCol[i] != want.RowToCol[i] {
			t.Fatalf("Auto on dense costs diverged from Hungarian at row %d", i)
		}
	}

	// Too many classes to pay off (2·nc > n): dense path, still optimal.
	small := randBlock(r, 7, 5)
	if got, want := Auto(small, 1), BruteForce(denseView{small}); math.Abs(got.Value-want.Value) > 1e-9 {
		t.Fatalf("Auto below profitability cutoff: %.12f, want %.12f", got.Value, want.Value)
	}
}

// badClass reports an out-of-range class for one column; Auto must fall
// back to the dense solver instead of erroring.
type badClass struct{ *blockCosts }

func (b badClass) Class(j int) int {
	if j == 0 {
		return -1
	}
	return b.blockCosts.Class(j)
}

func TestAutoFallsBackOnBadMetadata(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := badClass{randBlock(r, 30, 3)}
	got := Auto(c, 1)
	want := Hungarian(denseView{c.blockCosts})
	if math.Abs(got.Value-want.Value) > 1e-9 {
		t.Fatalf("Auto with bad class metadata: %.12f, want dense %.12f", got.Value, want.Value)
	}
}

func TestWorkspaceReuseParity(t *testing.T) {
	// The WS variants must produce results identical to the nil-workspace
	// path across solves of varying shapes through one shared workspace.
	r := rand.New(rand.NewSource(13))
	ws := NewWorkspace()
	for trial := 0; trial < 40; trial++ {
		n := 4 + r.Intn(60)
		seed := r.Int63()

		dr := rand.New(rand.NewSource(seed))
		d := randDense(dr, n)
		fresh := Hungarian(d)
		reused := HungarianWS(d, ws)
		if fresh.Value != reused.Value {
			t.Fatalf("HungarianWS value drift: %.12f vs %.12f", reused.Value, fresh.Value)
		}
		for i := range fresh.RowToCol {
			if fresh.RowToCol[i] != reused.RowToCol[i] {
				t.Fatalf("HungarianWS assignment drift at row %d", i)
			}
		}

		nc := 1 + r.Intn(6)
		c := randBlock(rand.New(rand.NewSource(seed+1)), n, nc)
		caps := classCounts(c)
		freshC, err := HungarianClassed(c, caps)
		if err != nil {
			t.Fatal(err)
		}
		reusedC, err := HungarianClassedWS(c, caps, ws)
		if err != nil {
			t.Fatal(err)
		}
		if freshC.Value != reusedC.Value {
			t.Fatalf("HungarianClassedWS value drift: %.12f vs %.12f", reusedC.Value, freshC.Value)
		}
		for i := range freshC.RowToCol {
			if freshC.RowToCol[i] != reusedC.RowToCol[i] {
				t.Fatalf("HungarianClassedWS assignment drift at row %d", i)
			}
		}

		freshG := Greedy(c)
		reusedG := GreedyWS(c, 1, ws)
		if freshG.Value != reusedG.Value {
			t.Fatalf("GreedyWS value drift: %.12f vs %.12f", reusedG.Value, freshG.Value)
		}
	}
}

func TestWorkspaceZeroAllocSteadyState(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := 120
	d := randDense(r, n)
	c := cliqueBlock(r, n, 5, 12)
	caps := classCounts(c)
	ws := NewWorkspace()

	// Warm up each solver so every scratch buffer reaches full size.
	HungarianWS(d, ws)
	if _, err := HungarianClassedWS(c, caps, ws); err != nil {
		t.Fatal(err)
	}
	GreedyWS(c, 1, ws)
	GreedyWS(d, 1, ws)
	AutoWS(c, 1, ws)

	checks := []struct {
		name string
		fn   func()
	}{
		{"HungarianWS", func() { HungarianWS(d, ws) }},
		{"HungarianClassedWS", func() {
			if _, err := HungarianClassedWS(c, caps, ws); err != nil {
				t.Fatal(err)
			}
		}},
		{"GreedyWS/classed", func() { GreedyWS(c, 1, ws) }},
		{"GreedyWS/dense", func() { GreedyWS(d, 1, ws) }},
		{"AutoWS/classed", func() { AutoWS(c, 1, ws) }},
	}
	for _, check := range checks {
		if allocs := testing.AllocsPerRun(20, check.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op steady-state, want 0", check.name, allocs)
		}
	}
}

func FuzzHungarianClassedCapacities(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(3), uint8(2), uint8(2), uint8(2))
	f.Add(int64(2), uint8(5), uint8(2), uint8(0), uint8(5), uint8(0))
	f.Add(int64(3), uint8(8), uint8(4), uint8(9), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, rn, rnc, c0, c1, c2 uint8) {
		n := 1 + int(rn)%10
		nc := 1 + int(rnc)%5
		r := rand.New(rand.NewSource(seed))
		c := randBlock(r, n, nc)
		caps := make([]int, nc)
		for l, raw := range []uint8{c0, c1, c2} {
			if l < nc {
				caps[l] = int(raw) % (n + 2)
			}
		}
		counts := classCounts(c)
		sum, valid := 0, true
		for l, cp := range caps {
			if cp > counts[l] {
				valid = false
			}
			sum += cp
		}
		if sum != n {
			valid = false
		}
		sol, err := HungarianClassed(c, caps)
		if valid {
			if err != nil {
				t.Fatalf("valid capacities %v (counts %v) rejected: %v", caps, counts, err)
			}
			assertPermutation(t, sol.RowToCol)
			for i, j := range sol.RowToCol {
				_ = i
				// Respect per-class capacities by construction of the permutation;
				// spot-check class membership is in range.
				if cl := c.Class(j); cl < 0 || cl >= nc {
					t.Fatalf("column %d mapped to class %d", j, cl)
				}
			}
			if n <= 8 {
				want := BruteForce(denseView{c})
				if math.Abs(sol.Value-want.Value) > 1e-9 {
					t.Fatalf("value %.12f, brute force %.12f", sol.Value, want.Value)
				}
			}
		} else if !errors.Is(err, ErrBadCapacities) {
			t.Fatalf("invalid capacities %v (counts %v, n=%d): got %v, want ErrBadCapacities", caps, counts, n, err)
		}
	})
}

func FuzzHungarianClassedParity(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(3))
	f.Add(int64(42), uint8(12), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, rn, rnc uint8) {
		n := 1 + int(rn)%16
		nc := 1 + int(rnc)%6
		r := rand.New(rand.NewSource(seed))
		c := randBlock(r, n, nc)
		sol, err := HungarianClassed(c, classCounts(c))
		if err != nil {
			t.Fatal(err)
		}
		assertPermutation(t, sol.RowToCol)
		dense := Hungarian(c)
		if math.Abs(sol.Value-dense.Value) > 1e-9 {
			t.Fatalf("n=%d nc=%d: classed %.12f vs dense %.12f", n, nc, sol.Value, dense.Value)
		}
	})
}
