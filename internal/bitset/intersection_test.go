package bitset

import (
	"math/rand"
	"testing"
)

// TestIntersectionUnionCount checks the single-pass counts against the
// two-call reference on random sets, including mismatched universe sizes.
func TestIntersectionUnionCount(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	for trial := 0; trial < 200; trial++ {
		na, nb := 1+r.Intn(200), 1+r.Intn(200)
		a, b := New(na), New(nb)
		for i := 0; i < na; i++ {
			if r.Intn(3) == 0 {
				a.Add(i)
			}
		}
		for i := 0; i < nb; i++ {
			if r.Intn(3) == 0 {
				b.Add(i)
			}
		}
		inter, union := a.IntersectionUnionCount(b)
		if want := a.IntersectionCount(b); inter != want {
			t.Fatalf("trial %d: intersection %d, want %d", trial, inter, want)
		}
		if want := a.UnionCount(b); union != want {
			t.Fatalf("trial %d: union %d, want %d", trial, union, want)
		}
		// Symmetry.
		ri, ru := b.IntersectionUnionCount(a)
		if ri != inter || ru != union {
			t.Fatalf("trial %d: asymmetric counts (%d,%d) vs (%d,%d)", trial, ri, ru, inter, union)
		}
	}
}
