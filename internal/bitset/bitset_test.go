package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	s := New(100)
	if s.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", s.Count())
	}
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
	for i := 0; i < 100; i++ {
		if s.Contains(i) {
			t.Fatalf("empty set contains %d", i)
		}
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() = %d, want 8", got)
	}
	s.Add(63) // idempotent
	if got := s.Count(); got != 8 {
		t.Fatalf("Count() after duplicate Add = %d, want 8", got)
	}
	s.Remove(63)
	if s.Contains(63) {
		t.Fatal("Contains(63) = true after Remove")
	}
	s.Remove(63) // idempotent
	if got := s.Count(); got != 7 {
		t.Fatalf("Count() = %d, want 7", got)
	}
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(10, 1, 3, 5)
	want := []int{1, 3, 5}
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices() = %v, want %v", got, want)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Add":      func() { New(4).Add(4) },
		"Negative": func() { New(4).Contains(-1) },
		"Remove":   func() { New(4).Remove(100) },
		"NewNeg":   func() { New(-1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		})
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(200, 0, 5, 70, 199)
	b := FromIndices(200, 5, 6, 70, 150)
	if got := a.IntersectionCount(b); got != 2 {
		t.Errorf("IntersectionCount = %d, want 2", got)
	}
	if got := a.UnionCount(b); got != 6 {
		t.Errorf("UnionCount = %d, want 6", got)
	}
	if got := a.SymmetricDifferenceCount(b); got != 4 {
		t.Errorf("SymmetricDifferenceCount = %d, want 4", got)
	}
}

func TestMixedCapacities(t *testing.T) {
	a := FromIndices(64, 0, 63)
	b := FromIndices(256, 0, 200)
	if got := a.IntersectionCount(b); got != 1 {
		t.Errorf("IntersectionCount = %d, want 1", got)
	}
	if got := a.UnionCount(b); got != 3 {
		t.Errorf("UnionCount = %d, want 3", got)
	}
	if got := b.UnionCount(a); got != 3 {
		t.Errorf("UnionCount (swapped) = %d, want 3", got)
	}
	if got := a.SymmetricDifferenceCount(b); got != 2 {
		t.Errorf("SymmetricDifferenceCount = %d, want 2", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(64, 1, 2, 3)
	c := a.Clone()
	c.Add(10)
	if a.Contains(10) {
		t.Fatal("Clone is not independent")
	}
	if !c.Contains(1) || c.Count() != 4 {
		t.Fatal("Clone missing original bits")
	}
}

func TestUnionWith(t *testing.T) {
	a := FromIndices(128, 1)
	b := FromIndices(64, 2, 63)
	a.UnionWith(b)
	if a.Count() != 3 || !a.Contains(63) {
		t.Fatalf("UnionWith result %v", a)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for larger-capacity argument")
		}
	}()
	b.UnionWith(a)
}

func TestClear(t *testing.T) {
	a := FromIndices(64, 1, 2, 3)
	a.Clear()
	if a.Count() != 0 {
		t.Fatalf("Count after Clear = %d", a.Count())
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(64, 1, 2)
	b := FromIndices(256, 1, 2)
	if !a.Equal(b) {
		t.Error("sets with same elements, different capacity should be Equal")
	}
	b.Add(200)
	if a.Equal(b) {
		t.Error("different sets reported Equal")
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(64, 3, 1).String(); got != "{1,3}" {
		t.Errorf("String() = %q, want {1,3}", got)
	}
	if got := New(8).String(); got != "{}" {
		t.Errorf("String() = %q, want {}", got)
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			s.Add(i)
		}
	}
	return s
}

func TestQuickCountsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a, b := randomSet(r, n), randomSet(r, n)
		inter, union, sym := a.IntersectionCount(b), a.UnionCount(b), a.SymmetricDifferenceCount(b)
		// Inclusion-exclusion identities.
		return union == a.Count()+b.Count()-inter &&
			sym == union-inter &&
			inter == b.IntersectionCount(a) &&
			union == b.UnionCount(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(300)
		a := randomSet(r, n)
		b := FromIndices(n, a.Indices()...)
		return a.Equal(b) && a.Count() == len(a.Indices())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectionCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomSet(r, 4096), randomSet(r, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.IntersectionCount(y)
	}
}
