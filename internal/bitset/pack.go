package bitset

import "math/bits"

// Pack is a dense row-store of many Sets: every member's words live in one
// contiguous backing slice at a fixed stride, so kernels that score one set
// against a whole collection (the streaming gain cache, the scatter phase)
// walk flat memory with no per-element pointer chase.
//
// Members keep their individual capacities (Len), so capacity-checked
// distances (Hamming, Euclidean) behave exactly as they do on *Set values.
// A member wider than the current stride triggers a repack; bits beyond a
// narrower member's capacity are zero, which leaves every popcount
// aggregate identical to the *Set path — the bit-identical contract the
// cached and direct gain computations both rely on.
//
// Pack mirrors a slice: Append grows it, SwapRemove and DropFront mirror
// the two buffer-eviction moves the streaming assigner uses. The zero
// value is an empty pack.
type Pack struct {
	words  []uint64
	ns     []int // per-member capacity in bits
	ones   []int // per-member popcount, cached at Append
	stride int   // words per member
}

// Len returns the number of member sets.
func (p *Pack) Len() int { return len(p.ns) }

// LenAt returns member i's capacity in bits (Set.Len of the appended set).
func (p *Pack) LenAt(i int) int { return p.ns[i] }

// OnesAt returns member i's popcount, cached at Append. Together with
// IntersectionCountsRow it lets a kernel derive unions and symmetric
// differences from set identities (|a∪b| = |a|+|b|−|a∩b|, |a△b| =
// |a|+|b|−2|a∩b|) — exact integer arithmetic, so the derived aggregates
// are the same integers the two-pass counts produce.
func (p *Pack) OnesAt(i int) int { return p.ones[i] }

// Append adds s as the last member, repacking to a wider stride when s
// needs more words than any member so far.
func (p *Pack) Append(s *Set) {
	need := len(s.words)
	if need > p.stride {
		p.restride(need)
	}
	p.ns = append(p.ns, s.n)
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	p.ones = append(p.ones, c)
	old := len(p.words)
	// Grow without an intermediate allocation: steady-state appends after a
	// removal reuse capacity, which keeps the assigner's offer path
	// allocation-free.
	if old+p.stride <= cap(p.words) {
		p.words = p.words[:old+p.stride]
	} else {
		grown := make([]uint64, old+p.stride, 2*(old+p.stride))
		copy(grown, p.words)
		p.words = grown
	}
	row := p.words[old : old+p.stride]
	n := copy(row, s.words)
	for i := n; i < len(row); i++ {
		row[i] = 0
	}
}

// restride rewrites the store at a wider stride. Amortized by doubling-style
// growth of the backing slice; existing members keep their zero padding.
func (p *Pack) restride(stride int) {
	n := len(p.ns)
	fresh := make([]uint64, n*stride)
	for i := 0; i < n; i++ {
		copy(fresh[i*stride:(i+1)*stride], p.words[i*p.stride:(i+1)*p.stride])
	}
	p.words, p.stride = fresh, stride
}

// SwapRemove removes member i by moving the last member into its slot —
// the same O(1) eviction the streaming buffer uses when a task is pulled.
func (p *Pack) SwapRemove(i int) {
	last := len(p.ns) - 1
	if i != last {
		copy(p.words[i*p.stride:(i+1)*p.stride], p.words[last*p.stride:(last+1)*p.stride])
		p.ns[i] = p.ns[last]
		p.ones[i] = p.ones[last]
	}
	p.words = p.words[:last*p.stride]
	p.ns = p.ns[:last]
	p.ones = p.ones[:last]
}

// DropFront removes the first k members, preserving the order of the rest —
// the donor-side move behind TakeBuffered.
func (p *Pack) DropFront(k int) {
	if k <= 0 {
		return
	}
	if k > len(p.ns) {
		k = len(p.ns)
	}
	rest := len(p.ns) - k
	copy(p.words, p.words[k*p.stride:])
	copy(p.ns, p.ns[k:])
	copy(p.ones, p.ones[k:])
	p.words = p.words[:rest*p.stride]
	p.ns = p.ns[:rest]
	p.ones = p.ones[:rest]
}

// Slice returns a read-only view of members [lo, hi) sharing this pack's
// backing storage — no copy. Views exist so row kernels can be chunked
// across goroutines (each chunk prices one sub-range into its own slice
// of the output); mutating either pack while a view is alive is the
// caller's race to lose.
func (p *Pack) Slice(lo, hi int) Pack {
	return Pack{
		words:  p.words[lo*p.stride : hi*p.stride],
		ns:     p.ns[lo:hi],
		ones:   p.ones[lo:hi],
		stride: p.stride,
	}
}

// Clear removes every member, keeping the backing storage for reuse.
func (p *Pack) Clear() {
	p.words = p.words[:0]
	p.ns = p.ns[:0]
	p.ones = p.ones[:0]
}

// RemoveAt removes member i, preserving the order of the members after it
// (the order-preserving analogue of SwapRemove, matching how a worker's
// active slice drops a completed task).
func (p *Pack) RemoveAt(i int) {
	last := len(p.ns) - 1
	copy(p.words[i*p.stride:], p.words[(i+1)*p.stride:])
	copy(p.ns[i:], p.ns[i+1:])
	copy(p.ones[i:], p.ones[i+1:])
	p.words = p.words[:last*p.stride]
	p.ns = p.ns[:last]
	p.ones = p.ones[:last]
}

// IntersectionCountsRow stores |s ∩ p[i]| into out[i] (as float64, the
// element type downstream distance kernels aggregate into) for every
// member in one flat walk over the backing array — no per-member call,
// no per-member slicing. Combined with OnesAt this is the whole-row
// primitive behind the pack distance kernels: intersection is the only
// aggregate that needs the bits; unions and symmetric differences follow
// from the cached popcounts by exact integer identities.
//
// The common small strides are unrolled: the streaming workloads keep
// keyword universes of a few hundred bits, so members span one or two
// words and the row walk reduces to one fused popcount per member.
func (p *Pack) IntersectionCountsRow(s *Set, out []float64) {
	sw := s.words
	w := p.words
	switch {
	case p.stride == 1 && len(sw) >= 1:
		s0 := sw[0]
		for i := range p.ns {
			out[i] = float64(bits.OnesCount64(w[i] & s0))
		}
	case p.stride == 2 && len(sw) >= 2:
		s0, s1 := sw[0], sw[1]
		k := 0
		for i := 0; i+1 < len(w); i += 2 {
			out[k] = float64(bits.OnesCount64(w[i]&s0) + bits.OnesCount64(w[i+1]&s1))
			k++
		}
	case len(sw) >= p.stride:
		for i := range p.ns {
			base := i * p.stride
			c := 0
			for k := 0; k < p.stride; k++ {
				c += bits.OnesCount64(w[base+k] & sw[k])
			}
			out[i] = float64(c)
		}
	default:
		// s is narrower than the stride: words beyond len(sw) cannot
		// intersect.
		for i := range p.ns {
			base := i * p.stride
			c := 0
			for k := range sw {
				c += bits.OnesCount64(w[base+k] & sw[k])
			}
			out[i] = float64(c)
		}
	}
}

// IntersectionUnionCountAt returns |s ∩ p[i]| and |s ∪ p[i]| — the Jaccard
// aggregates — in one pass, bit-identical to Set.IntersectionUnionCount on
// the member it mirrors.
func (p *Pack) IntersectionUnionCountAt(i int, s *Set) (inter, union int) {
	row := p.words[i*p.stride : (i+1)*p.stride]
	sw := s.words
	n := len(sw)
	if len(row) < n {
		n = len(row)
	}
	for k := 0; k < n; k++ {
		inter += bits.OnesCount64(row[k] & sw[k])
		union += bits.OnesCount64(row[k] | sw[k])
	}
	for _, w := range row[n:] {
		union += bits.OnesCount64(w)
	}
	for _, w := range sw[n:] {
		union += bits.OnesCount64(w)
	}
	return inter, union
}

// SymmetricDifferenceCountAt returns |s △ p[i]|, bit-identical to
// Set.SymmetricDifferenceCount on the member it mirrors.
func (p *Pack) SymmetricDifferenceCountAt(i int, s *Set) int {
	row := p.words[i*p.stride : (i+1)*p.stride]
	sw := s.words
	n := len(sw)
	if len(row) < n {
		n = len(row)
	}
	c := 0
	for k := 0; k < n; k++ {
		c += bits.OnesCount64(row[k] ^ sw[k])
	}
	for _, w := range row[n:] {
		c += bits.OnesCount64(w)
	}
	for _, w := range sw[n:] {
		c += bits.OnesCount64(w)
	}
	return c
}
