// Package bitset provides compact, fixed-capacity bit vectors used to
// represent task and worker keyword sets.
//
// The paper models a task t as a Boolean vector ⟨t(s1),…,t(sR)⟩ over a
// keyword universe S and a worker the same way (Section II). All distance
// computations in the system reduce to set operations over these vectors
// (intersection and union cardinalities for Jaccard, symmetric difference
// for Hamming), so Set is optimized for cheap popcount-based aggregates.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit vector over the universe {0, …, n-1} where n was the capacity
// it was created with. The zero value is an empty set of capacity 0; use New
// to create a set with room for keywords.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty Set with capacity for n bits. n must be >= 0.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a Set of capacity n with the given bits set.
// Indices outside [0, n) panic.
func FromIndices(n int, indices ...int) *Set {
	s := New(n)
	for _, i := range indices {
		s.Add(i)
	}
	return s
}

// Len returns the capacity (universe size) of the set.
func (s *Set) Len() int { return s.n }

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits (|s|).
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectionCount returns |s ∩ t|. Sets of different capacities are
// compared over the shorter word prefix; bits beyond either capacity are
// zero by construction.
func (s *Set) IntersectionCount(t *Set) int {
	a, b := s.words, t.words
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w & b[i])
	}
	return c
}

// IntersectionUnionCount returns |s ∩ t| and |s ∪ t| in a single pass over
// the words — the two aggregates Jaccard needs, at half the memory traffic
// of calling IntersectionCount and UnionCount separately. It is the batch
// primitive behind the precomputed diversity kernel.
func (s *Set) IntersectionUnionCount(t *Set) (inter, union int) {
	a, b := s.words, t.words
	if len(b) < len(a) {
		a, b = b, a
	}
	for i, w := range a {
		inter += bits.OnesCount64(w & b[i])
		union += bits.OnesCount64(w | b[i])
	}
	for _, w := range b[len(a):] {
		union += bits.OnesCount64(w)
	}
	return inter, union
}

// UnionCount returns |s ∪ t|.
func (s *Set) UnionCount(t *Set) int {
	a, b := s.words, t.words
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w | b[i])
	}
	for _, w := range b[len(a):] {
		c += bits.OnesCount64(w)
	}
	return c
}

// SymmetricDifferenceCount returns |s △ t|, the Hamming distance between the
// two indicator vectors.
func (s *Set) SymmetricDifferenceCount(t *Set) int {
	a, b := s.words, t.words
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	for i, w := range a {
		c += bits.OnesCount64(w ^ b[i])
	}
	for _, w := range b[len(a):] {
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether the two sets contain exactly the same elements.
// Capacity is not part of equality.
func (s *Set) Equal(t *Set) bool {
	return s.SymmetricDifferenceCount(t) == 0
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// UnionWith sets s to s ∪ t in place. t's capacity must not exceed s's.
func (s *Set) UnionWith(t *Set) {
	if t.n > s.n {
		panic(fmt.Sprintf("bitset: UnionWith capacity %d exceeds receiver capacity %d", t.n, s.n))
	}
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Indices returns the sorted list of set bit positions.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// String renders the set as a compact index list, e.g. "{1,5,9}".
func (s *Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, idx := range s.Indices() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", idx)
	}
	sb.WriteByte('}')
	return sb.String()
}
