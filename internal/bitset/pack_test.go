package bitset

import (
	"math/rand"
	"testing"
)

func randSet(rng *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			s.Add(i)
		}
	}
	return s
}

// The pack's aggregates must be bit-identical to the *Set path for every
// member, including mixed capacities (zero padding) after repacks.
func TestPackCountsMatchSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var p Pack
	var members []*Set
	for _, n := range []int{8, 64, 65, 130, 1, 200, 64} {
		s := randSet(rng, n)
		members = append(members, s)
		p.Append(s)
	}
	if p.Len() != len(members) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(members))
	}
	probe := randSet(rng, 100)
	for i, m := range members {
		if p.LenAt(i) != m.Len() {
			t.Fatalf("LenAt(%d) = %d, want %d", i, p.LenAt(i), m.Len())
		}
		gi, gu := p.IntersectionUnionCountAt(i, probe)
		wi, wu := m.IntersectionUnionCount(probe)
		if gi != wi || gu != wu {
			t.Fatalf("member %d: inter/union (%d,%d), want (%d,%d)", i, gi, gu, wi, wu)
		}
		if gs, ws := p.SymmetricDifferenceCountAt(i, probe), m.SymmetricDifferenceCount(probe); gs != ws {
			t.Fatalf("member %d: symdiff %d, want %d", i, gs, ws)
		}
	}
}

// SwapRemove, RemoveAt and DropFront must mirror the equivalent slice moves.
func TestPackRemovalMirrorsSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var p Pack
	var ref []*Set
	add := func(k int) {
		for i := 0; i < k; i++ {
			s := randSet(rng, 48+rng.Intn(80))
			ref = append(ref, s)
			p.Append(s)
		}
	}
	verify := func(what string) {
		t.Helper()
		if p.Len() != len(ref) {
			t.Fatalf("%s: Len %d, want %d", what, p.Len(), len(ref))
		}
		probe := randSet(rng, 96)
		for i, m := range ref {
			gi, gu := p.IntersectionUnionCountAt(i, probe)
			wi, wu := m.IntersectionUnionCount(probe)
			if gi != wi || gu != wu {
				t.Fatalf("%s: member %d diverged", what, i)
			}
		}
	}
	add(9)
	// Swap-remove from the middle: last member moves into the hole.
	p.SwapRemove(3)
	ref[3] = ref[len(ref)-1]
	ref = ref[:len(ref)-1]
	verify("SwapRemove(3)")
	p.SwapRemove(p.Len() - 1)
	ref = ref[:len(ref)-1]
	verify("SwapRemove(last)")
	// Order-preserving removal.
	p.RemoveAt(1)
	ref = append(ref[:1], ref[2:]...)
	verify("RemoveAt(1)")
	// Prefix drop.
	p.DropFront(2)
	ref = ref[2:]
	verify("DropFront(2)")
	p.DropFront(0)
	verify("DropFront(0)")
	add(3)
	verify("append after removals")
	p.DropFront(100)
	ref = ref[:0]
	verify("DropFront(all)")
	p.Clear()
	add(2)
	verify("append after Clear")
}

// Slice views must expose exactly the members of their range, and row
// kernels over a view must produce the same values as the matching
// segment of a full-pack row — the property RowP's chunking relies on.
func TestPackSliceViews(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var p Pack
	var members []*Set
	for i := 0; i < 50; i++ {
		s := randSet(rng, 96)
		members = append(members, s)
		p.Append(s)
	}
	probe := randSet(rng, 96)
	full := make([]float64, p.Len())
	p.IntersectionCountsRow(probe, full)
	for _, r := range [][2]int{{0, 50}, {0, 0}, {17, 17}, {0, 13}, {13, 37}, {37, 50}} {
		lo, hi := r[0], r[1]
		v := p.Slice(lo, hi)
		if v.Len() != hi-lo {
			t.Fatalf("Slice(%d,%d).Len = %d", lo, hi, v.Len())
		}
		part := make([]float64, v.Len())
		v.IntersectionCountsRow(probe, part)
		for i := range part {
			if v.LenAt(i) != p.LenAt(lo+i) || v.OnesAt(i) != p.OnesAt(lo+i) {
				t.Fatalf("Slice(%d,%d) member %d metadata mismatch", lo, hi, i)
			}
			if part[i] != full[lo+i] {
				t.Fatalf("Slice(%d,%d) member %d: row %v, full %v", lo, hi, i, part[i], full[lo+i])
			}
		}
	}
}
