package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	var buf bytes.Buffer
	x := []float64{0, 1, 2, 3, 4}
	err := Lines(&buf, "demo", x, []Series{
		{Name: "up", Y: []float64{0, 1, 2, 3, 4}},
		{Name: "down", Y: []float64{4, 3, 2, 1, 0}},
	}, Config{Width: 20, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "* up", "o down", "+--------------------"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The rising series must hit the top-right area, the falling one the
	// top-left.
	lines := strings.Split(out, "\n")
	top := lines[1] // first grid row after the title
	if !strings.Contains(top, "*") || !strings.Contains(top, "o") {
		t.Fatalf("top row should contain both extremes:\n%s", out)
	}
}

func TestLinesValidation(t *testing.T) {
	var buf bytes.Buffer
	x := []float64{0, 1}
	ok := []Series{{Name: "s", Y: []float64{1, 2}}}
	cases := []struct {
		name string
		fn   func() error
	}{
		{"short x", func() error { return Lines(&buf, "", []float64{0}, ok, Config{}) }},
		{"no series", func() error { return Lines(&buf, "", x, nil, Config{}) }},
		{"length mismatch", func() error {
			return Lines(&buf, "", x, []Series{{Name: "s", Y: []float64{1}}}, Config{})
		}},
		{"tiny area", func() error { return Lines(&buf, "", x, ok, Config{Width: 2, Height: 1}) }},
		{"bad y range", func() error { return Lines(&buf, "", x, ok, Config{YMin: 5, YMax: 1}) }},
		{"non-increasing x", func() error {
			return Lines(&buf, "", []float64{1, 1}, ok, Config{})
		}},
	}
	for _, c := range cases {
		if err := c.fn(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestLinesConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	x := []float64{0, 1, 2}
	err := Lines(&buf, "", x, []Series{{Name: "flat", Y: []float64{5, 5, 5}}}, Config{})
	if err != nil {
		t.Fatalf("constant series: %v", err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("no markers drawn")
	}
}

func TestLinesFixedRangeClips(t *testing.T) {
	var buf bytes.Buffer
	x := []float64{0, 1, 2}
	err := Lines(&buf, "", x, []Series{{Name: "s", Y: []float64{-10, 0.5, 10}}},
		Config{YMin: 0, YMax: 1, Width: 10, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range points are clipped silently; the in-range one drawn.
	// Count markers in grid rows only (the legend also shows the glyph).
	drawn := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, " |") {
			drawn += strings.Count(line, "*")
		}
	}
	if drawn != 1 {
		t.Fatalf("expected exactly one drawn point, got %d:\n%s", drawn, buf.String())
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	err := Bars(&buf, "totals", []string{"gre", "rel", "div"}, []float64{734, 666, 636}, 30)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "totals") || !strings.Contains(out, "gre") {
		t.Fatalf("missing labels:\n%s", out)
	}
	// The largest bar must be the widest.
	var greBar, divBar int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "=")
		if strings.HasPrefix(line, "gre") {
			greBar = n
		}
		if strings.HasPrefix(line, "div") {
			divBar = n
		}
	}
	if greBar <= divBar {
		t.Fatalf("bar widths wrong: gre %d, div %d\n%s", greBar, divBar, out)
	}
}

func TestBarsValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, "", []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Bars(&buf, "", nil, nil, 10); err == nil {
		t.Error("empty input accepted")
	}
	if err := Bars(&buf, "", []string{"a"}, []float64{-1}, 10); err == nil {
		t.Error("negative value accepted")
	}
	if err := Bars(&buf, "", []string{"a"}, []float64{0}, 0); err != nil {
		t.Errorf("zero width (defaulted) rejected: %v", err)
	}
}
