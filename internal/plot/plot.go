// Package plot renders numeric series as fixed-width ASCII charts. The
// experiment CLIs use it to show the shape of the paper's figures directly
// in the terminal — the repository has no plotting dependency, and shapes
// (who wins, where curves cross) are exactly what the reproduction is
// about.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	Y    []float64
}

// markers assigns one glyph per series, cycling if there are many.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Config sizes a chart.
type Config struct {
	// Width and Height are the plot-area dimensions in characters.
	// Defaults: 60×12.
	Width, Height int
	// YMin/YMax fix the vertical range; when both are zero the range is
	// computed from the data with a small margin.
	YMin, YMax float64
}

func (c *Config) applyDefaults() {
	if c.Width == 0 {
		c.Width = 60
	}
	if c.Height == 0 {
		c.Height = 12
	}
}

// Lines renders the series over a shared x grid as an ASCII line chart
// with a y-axis, x-range footer and a legend.
func Lines(w io.Writer, title string, x []float64, series []Series, cfg Config) error {
	cfg.applyDefaults()
	if cfg.Width < 8 || cfg.Height < 3 {
		return fmt.Errorf("plot: area %dx%d too small", cfg.Width, cfg.Height)
	}
	if len(x) < 2 {
		return errors.New("plot: need at least two x points")
	}
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	for _, s := range series {
		if len(s.Y) != len(x) {
			return fmt.Errorf("plot: series %q has %d points for %d x values", s.Name, len(s.Y), len(x))
		}
	}

	yMin, yMax := cfg.YMin, cfg.YMax
	if yMin == 0 && yMax == 0 {
		yMin, yMax = math.Inf(1), math.Inf(-1)
		for _, s := range series {
			for _, v := range s.Y {
				yMin = math.Min(yMin, v)
				yMax = math.Max(yMax, v)
			}
		}
		if yMin == yMax {
			yMin, yMax = yMin-1, yMax+1
		}
		margin := (yMax - yMin) * 0.05
		yMin -= margin
		yMax += margin
	}
	if yMax <= yMin {
		return fmt.Errorf("plot: empty y range [%g, %g]", yMin, yMax)
	}

	grid := make([][]byte, cfg.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cfg.Width))
	}
	xMin, xMax := x[0], x[len(x)-1]
	if xMax <= xMin {
		return errors.New("plot: x values must increase")
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i, v := range s.Y {
			col := int(math.Round((x[i] - xMin) / (xMax - xMin) * float64(cfg.Width-1)))
			rowF := (v - yMin) / (yMax - yMin) * float64(cfg.Height-1)
			row := cfg.Height - 1 - int(math.Round(rowF))
			if col < 0 || col >= cfg.Width || row < 0 || row >= cfg.Height {
				continue // out-of-range points are clipped
			}
			grid[row][col] = mark
		}
	}

	if title != "" {
		fmt.Fprintln(w, title)
	}
	for r, line := range grid {
		yVal := yMax - (yMax-yMin)*float64(r)/float64(cfg.Height-1)
		fmt.Fprintf(w, "%8.1f |%s\n", yVal, string(line))
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", cfg.Width))
	fmt.Fprintf(w, "%8s  %-*.1f%*.1f\n", "", cfg.Width/2, xMin, cfg.Width-cfg.Width/2, xMax)
	legend := make([]string, len(series))
	for si, s := range series {
		legend[si] = fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name)
	}
	fmt.Fprintf(w, "%8s  %s\n", "", strings.Join(legend, "   "))
	return nil
}

// Bars renders a labeled horizontal bar chart, used for totals
// comparisons (e.g. completed tasks per strategy).
func Bars(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("plot: %d labels for %d values", len(labels), len(values))
	}
	if len(values) == 0 {
		return errors.New("plot: no bars")
	}
	if width <= 0 {
		width = 40
	}
	maxV := math.Inf(-1)
	maxLabel := 0
	for i, v := range values {
		if v < 0 {
			return fmt.Errorf("plot: negative bar value %g", v)
		}
		maxV = math.Max(maxV, v)
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(w, "%-*s |%s %.1f\n", maxLabel, labels[i], strings.Repeat("=", n), v)
	}
	return nil
}
