package teams_test

import (
	"fmt"
	"log"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/teams"
)

// ExampleGreedy staffs one collaborative task needing two complementary
// skills from a pool of three workers.
func ExampleGreedy() {
	const universe = 8
	task := &teams.CollabTask{
		Task:     &core.Task{ID: "bilingual-review", Keywords: bitset.FromIndices(universe, 0, 1)},
		TeamSize: 2,
	}
	workers := []*core.Worker{
		{ID: "skill-0", Alpha: 0.5, Beta: 0.5, Keywords: bitset.FromIndices(universe, 0)},
		{ID: "skill-1", Alpha: 0.5, Beta: 0.5, Keywords: bitset.FromIndices(universe, 1)},
		{ID: "neither", Alpha: 0.5, Beta: 0.5, Keywords: bitset.FromIndices(universe, 7)},
	}
	p, err := teams.NewProblem([]*teams.CollabTask{task}, workers, metric.Jaccard{}, teams.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	a := teams.Greedy(p)
	team := a.Teams[0]
	fmt.Printf("coverage %.2f with %d members\n", p.Coverage(0, team), len(team))
	for _, m := range team {
		fmt.Println("-", workers[m].ID)
	}
	// Output:
	// coverage 1.00 with 2 members
	// - skill-0
	// - skill-1
}
