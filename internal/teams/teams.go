// Package teams implements the paper's stated future-work extension
// (Section VII): motivation-aware assignment for *collaborative* tasks,
// where a task needs a whole team and "task assignment would have to
// account for the presence of other workers in forming the most motivated
// team to complete a task", with complementary skills and social signaling
// as additional motivation factors.
//
// The model follows the paper's sketch. A collaborative task t requires
// TeamSize workers; the motivation of team G for t combines
//
//   - coverage: how much of t's keyword requirements the union of member
//     skills covers (complementary skills — members contributing the same
//     keywords do not add coverage);
//   - relevance: the mean member↔task relevance (as in the core model);
//   - affinity: social signaling, measured as the mean pairwise keyword
//     similarity between members (teams sharing vocabulary work better).
//
// score(t, G) = γc·coverage + γr·relevance + γa·affinity, with the γ
// weights summing to 1.
//
// Team formation is NP-hard already for coverage alone (it embeds set
// cover), so the package ships a greedy former with local-search
// improvement and an exact enumerator for small instances used to test
// the greedy's quality.
package teams

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
)

// CollabTask is a task needing a team.
type CollabTask struct {
	Task *core.Task
	// TeamSize is the exact number of workers the task needs.
	TeamSize int
}

// Weights are the γ coefficients of the team score. They must be
// non-negative and sum to 1.
type Weights struct {
	Coverage  float64
	Relevance float64
	Affinity  float64
}

// DefaultWeights balance the three factors.
func DefaultWeights() Weights { return Weights{Coverage: 0.4, Relevance: 0.3, Affinity: 0.3} }

func (w Weights) validate() error {
	if w.Coverage < 0 || w.Relevance < 0 || w.Affinity < 0 {
		return errors.New("teams: negative weight")
	}
	if math.Abs(w.Coverage+w.Relevance+w.Affinity-1) > 1e-9 {
		return fmt.Errorf("teams: weights sum to %g, want 1", w.Coverage+w.Relevance+w.Affinity)
	}
	return nil
}

// Problem is one team-formation instance.
type Problem struct {
	Tasks   []*CollabTask
	Workers []*core.Worker
	Dist    metric.Distance
	Weights Weights
}

// NewProblem validates inputs. Every task needs keywords and a positive
// team size; the total demand may exceed the worker supply (some tasks
// then stay unstaffed).
func NewProblem(tasks []*CollabTask, workers []*core.Worker, dist metric.Distance, w Weights) (*Problem, error) {
	if dist == nil {
		return nil, errors.New("teams: nil distance")
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	for i, t := range tasks {
		if t == nil || t.Task == nil || t.Task.Keywords == nil {
			return nil, fmt.Errorf("teams: task %d is nil or lacks keywords", i)
		}
		if t.TeamSize < 1 {
			return nil, fmt.Errorf("teams: task %d has team size %d", i, t.TeamSize)
		}
	}
	for i, wk := range workers {
		if wk == nil || wk.Keywords == nil {
			return nil, fmt.Errorf("teams: worker %d is nil or lacks keywords", i)
		}
	}
	return &Problem{Tasks: tasks, Workers: workers, Dist: dist, Weights: w}, nil
}

// Coverage returns the fraction of the task's keywords covered by the
// union of the members' keywords; 1 for tasks with no keywords.
func (p *Problem) Coverage(task int, members []int) float64 {
	req := p.Tasks[task].Task.Keywords
	total := req.Count()
	if total == 0 {
		return 1
	}
	covered := 0
	for _, k := range req.Indices() {
		for _, m := range members {
			w := p.Workers[m].Keywords
			if k < w.Len() && w.Contains(k) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(total)
}

// Relevance returns the mean member↔task relevance.
func (p *Problem) Relevance(task int, members []int) float64 {
	if len(members) == 0 {
		return 0
	}
	var sum float64
	for _, m := range members {
		sum += metric.Relevance(p.Dist, p.Tasks[task].Task.Keywords, p.Workers[m].Keywords)
	}
	return sum / float64(len(members))
}

// Affinity returns the mean pairwise keyword similarity between members
// (1 − distance); 1 for singleton teams.
func (p *Problem) Affinity(members []int) float64 {
	if len(members) < 2 {
		return 1
	}
	var sum float64
	var n int
	for i := 1; i < len(members); i++ {
		for j := 0; j < i; j++ {
			sum += 1 - p.Dist.Distance(p.Workers[members[i]].Keywords, p.Workers[members[j]].Keywords)
			n++
		}
	}
	return sum / float64(n)
}

// Score returns the team score for assigning the members to the task.
// Incomplete teams (fewer members than TeamSize) score 0: the task cannot
// run without a full team.
func (p *Problem) Score(task int, members []int) float64 {
	if len(members) != p.Tasks[task].TeamSize {
		return 0
	}
	w := p.Weights
	return w.Coverage*p.Coverage(task, members) +
		w.Relevance*p.Relevance(task, members) +
		w.Affinity*p.Affinity(members)
}

// Assignment maps task index → member worker indices (empty = unstaffed).
type Assignment struct {
	Teams [][]int
}

// Validate checks team sizes (full or empty) and worker disjointness.
func (a *Assignment) Validate(p *Problem) error {
	if len(a.Teams) != len(p.Tasks) {
		return fmt.Errorf("teams: %d teams for %d tasks", len(a.Teams), len(p.Tasks))
	}
	used := make(map[int]int)
	for t, team := range a.Teams {
		if len(team) != 0 && len(team) != p.Tasks[t].TeamSize {
			return fmt.Errorf("teams: task %d staffed with %d of %d members", t, len(team), p.Tasks[t].TeamSize)
		}
		for _, m := range team {
			if m < 0 || m >= len(p.Workers) {
				return fmt.Errorf("teams: member %d out of range", m)
			}
			if prev, dup := used[m]; dup {
				return fmt.Errorf("teams: worker %d on tasks %d and %d", m, prev, t)
			}
			used[m] = t
		}
	}
	return nil
}

// Objective returns the total score of an assignment.
func (p *Problem) Objective(a *Assignment) float64 {
	var total float64
	for t, team := range a.Teams {
		if len(team) == p.Tasks[t].TeamSize {
			total += p.Score(t, team)
		}
	}
	return total
}

// Greedy forms teams task by task (largest teams first): each task
// repeatedly recruits the free worker with the best marginal score
// contribution, then a pairwise local search swaps members between teams
// while the objective improves.
func Greedy(p *Problem) *Assignment {
	a := &Assignment{Teams: make([][]int, len(p.Tasks))}
	free := make([]bool, len(p.Workers))
	for i := range free {
		free[i] = true
	}
	// Staff big teams first: they are hardest to fill well.
	order := make([]int, len(p.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return p.Tasks[order[i]].TeamSize > p.Tasks[order[j]].TeamSize
	})
	for _, t := range order {
		size := p.Tasks[t].TeamSize
		if countFree(free) < size {
			continue
		}
		team := make([]int, 0, size)
		for len(team) < size {
			best, bestGain := -1, math.Inf(-1)
			for w, ok := range free {
				if !ok {
					continue
				}
				cand := append(team, w)
				// Marginal proxy: score the partial team as if complete.
				gain := p.partialScore(t, cand)
				if gain > bestGain {
					best, bestGain = w, gain
				}
			}
			free[best] = false
			team = append(team, best)
		}
		a.Teams[t] = team
	}
	localSearch(p, a)
	return a
}

// partialScore scores a possibly incomplete team (used only inside the
// greedy recruitment loop).
func (p *Problem) partialScore(task int, members []int) float64 {
	w := p.Weights
	return w.Coverage*p.Coverage(task, members) +
		w.Relevance*p.Relevance(task, members) +
		w.Affinity*p.Affinity(members)
}

func countFree(free []bool) int {
	n := 0
	for _, ok := range free {
		if ok {
			n++
		}
	}
	return n
}

// localSearch swaps pairs of members across teams while improving.
func localSearch(p *Problem, a *Assignment) {
	improved := true
	for rounds := 0; improved && rounds < 20; rounds++ {
		improved = false
		for t1 := range a.Teams {
			for t2 := t1 + 1; t2 < len(a.Teams); t2++ {
				if len(a.Teams[t1]) == 0 || len(a.Teams[t2]) == 0 {
					continue
				}
				base := p.Score(t1, a.Teams[t1]) + p.Score(t2, a.Teams[t2])
				for i := range a.Teams[t1] {
					for j := range a.Teams[t2] {
						a.Teams[t1][i], a.Teams[t2][j] = a.Teams[t2][j], a.Teams[t1][i]
						if p.Score(t1, a.Teams[t1])+p.Score(t2, a.Teams[t2]) > base+1e-12 {
							improved = true
							base = p.Score(t1, a.Teams[t1]) + p.Score(t2, a.Teams[t2])
						} else {
							a.Teams[t1][i], a.Teams[t2][j] = a.Teams[t2][j], a.Teams[t1][i]
						}
					}
				}
			}
		}
	}
}

// ErrTooLarge is returned by Exact beyond its enumeration budget.
var ErrTooLarge = errors.New("teams: instance too large for exact enumeration")

// Exact enumerates all assignments of workers to team slots and returns an
// optimal one. Budget-limited to tiny instances; used to validate Greedy.
func Exact(p *Problem) (*Assignment, error) {
	slots := 0
	for _, t := range p.Tasks {
		slots += t.TeamSize
	}
	states := math.Pow(float64(len(p.Tasks)+1), float64(len(p.Workers)))
	if states > 5e6 {
		return nil, fmt.Errorf("%w: (%d+1)^%d states", ErrTooLarge, len(p.Tasks), len(p.Workers))
	}
	choice := make([]int, len(p.Workers)) // task index or len(tasks) = idle
	best := &Assignment{Teams: make([][]int, len(p.Tasks))}
	bestVal := math.Inf(-1)
	var recurse func(w int)
	recurse = func(w int) {
		if w == len(p.Workers) {
			a := &Assignment{Teams: make([][]int, len(p.Tasks))}
			for worker, t := range choice {
				if t < len(p.Tasks) {
					a.Teams[t] = append(a.Teams[t], worker)
				}
			}
			// Only full teams count; discard overfull states early.
			for t, team := range a.Teams {
				if len(team) > p.Tasks[t].TeamSize {
					return
				}
				if len(team) < p.Tasks[t].TeamSize {
					a.Teams[t] = nil
				}
			}
			if v := p.Objective(a); v > bestVal {
				bestVal = v
				best = a
			}
			return
		}
		for t := 0; t <= len(p.Tasks); t++ {
			choice[w] = t
			recurse(w + 1)
		}
	}
	recurse(0)
	return best, nil
}
