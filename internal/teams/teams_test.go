package teams

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
)

const universe = 24

func collabTask(size int, kw ...int) *CollabTask {
	return &CollabTask{
		Task:     &core.Task{ID: "t", Keywords: bitset.FromIndices(universe, kw...)},
		TeamSize: size,
	}
}

func worker(kw ...int) *core.Worker {
	return &core.Worker{Alpha: 0.5, Beta: 0.5, Keywords: bitset.FromIndices(universe, kw...)}
}

func mustProblem(t *testing.T, tasks []*CollabTask, workers []*core.Worker) *Problem {
	t.Helper()
	p, err := NewProblem(tasks, workers, metric.Jaccard{}, DefaultWeights())
	if err != nil {
		t.Fatalf("NewProblem: %v", err)
	}
	return p
}

func randProblem(r *rand.Rand, numTasks, numWorkers int) *Problem {
	tasks := make([]*CollabTask, numTasks)
	for i := range tasks {
		kw := []int{}
		for k := 0; k < universe; k++ {
			if r.Intn(5) == 0 {
				kw = append(kw, k)
			}
		}
		if len(kw) == 0 {
			kw = []int{r.Intn(universe)}
		}
		tasks[i] = collabTask(1+r.Intn(3), kw...)
	}
	workers := make([]*core.Worker, numWorkers)
	for i := range workers {
		kw := []int{}
		for k := 0; k < universe; k++ {
			if r.Intn(4) == 0 {
				kw = append(kw, k)
			}
		}
		if len(kw) == 0 {
			kw = []int{r.Intn(universe)}
		}
		workers[i] = worker(kw...)
	}
	p, err := NewProblem(tasks, workers, metric.Jaccard{}, DefaultWeights())
	if err != nil {
		panic(err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	good := []*CollabTask{collabTask(2, 0, 1)}
	ws := []*core.Worker{worker(0)}
	if _, err := NewProblem(good, ws, nil, DefaultWeights()); err == nil {
		t.Error("nil distance accepted")
	}
	if _, err := NewProblem(good, ws, metric.Jaccard{}, Weights{Coverage: 0.9, Relevance: 0.9}); err == nil {
		t.Error("weights not summing to 1 accepted")
	}
	if _, err := NewProblem(good, ws, metric.Jaccard{}, Weights{Coverage: -1, Relevance: 1, Affinity: 1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewProblem([]*CollabTask{collabTask(0, 1)}, ws, metric.Jaccard{}, DefaultWeights()); err == nil {
		t.Error("zero team size accepted")
	}
	if _, err := NewProblem([]*CollabTask{nil}, ws, metric.Jaccard{}, DefaultWeights()); err == nil {
		t.Error("nil task accepted")
	}
	if _, err := NewProblem(good, []*core.Worker{nil}, metric.Jaccard{}, DefaultWeights()); err == nil {
		t.Error("nil worker accepted")
	}
}

func TestCoverage(t *testing.T) {
	p := mustProblem(t,
		[]*CollabTask{collabTask(2, 0, 1, 2, 3)},
		[]*core.Worker{worker(0, 1), worker(2), worker(10)},
	)
	if got := p.Coverage(0, []int{0, 1}); got != 0.75 {
		t.Errorf("Coverage = %g, want 0.75 (3 of 4 keywords)", got)
	}
	if got := p.Coverage(0, []int{2}); got != 0 {
		t.Errorf("Coverage with irrelevant member = %g, want 0", got)
	}
	// Complementarity: duplicated skills add nothing.
	if got := p.Coverage(0, []int{0, 0}); got != 0.5 {
		t.Errorf("Coverage with duplicate skills = %g, want 0.5", got)
	}
}

func TestAffinityAndRelevance(t *testing.T) {
	p := mustProblem(t,
		[]*CollabTask{collabTask(2, 0, 1)},
		[]*core.Worker{worker(0, 1), worker(0, 1), worker(5, 6)},
	)
	if got := p.Affinity([]int{0, 1}); got != 1 {
		t.Errorf("Affinity of twins = %g, want 1", got)
	}
	if got := p.Affinity([]int{0, 2}); got != 0 {
		t.Errorf("Affinity of disjoint = %g, want 0", got)
	}
	if got := p.Affinity([]int{0}); got != 1 {
		t.Errorf("Affinity of singleton = %g, want 1", got)
	}
	if got := p.Relevance(0, []int{0}); got != 1 {
		t.Errorf("Relevance = %g, want 1", got)
	}
}

func TestScoreRequiresFullTeam(t *testing.T) {
	p := mustProblem(t,
		[]*CollabTask{collabTask(2, 0, 1)},
		[]*core.Worker{worker(0), worker(1)},
	)
	if got := p.Score(0, []int{0}); got != 0 {
		t.Errorf("incomplete team scored %g, want 0", got)
	}
	if got := p.Score(0, []int{0, 1}); got <= 0 {
		t.Errorf("full team scored %g, want > 0", got)
	}
}

func TestValidate(t *testing.T) {
	p := mustProblem(t,
		[]*CollabTask{collabTask(2, 0, 1), collabTask(1, 2)},
		[]*core.Worker{worker(0), worker(1), worker(2)},
	)
	ok := &Assignment{Teams: [][]int{{0, 1}, {2}}}
	if err := ok.Validate(p); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	empty := &Assignment{Teams: [][]int{nil, {2}}}
	if err := empty.Validate(p); err != nil {
		t.Fatalf("unstaffed task rejected: %v", err)
	}
	cases := []*Assignment{
		{Teams: [][]int{{0}}},         // wrong count
		{Teams: [][]int{{0}, {2}}},    // partial team
		{Teams: [][]int{{0, 1}, {1}}}, // reused worker
		{Teams: [][]int{{0, 9}, {2}}}, // out of range
	}
	for i, a := range cases {
		if err := a.Validate(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, a)
		}
	}
}

func TestGreedyFeasibleAndPositive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		p := randProblem(r, 1+r.Intn(4), 2+r.Intn(8))
		a := Greedy(p)
		if err := a.Validate(p); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if p.Objective(a) < 0 {
			t.Fatalf("trial %d: negative objective", trial)
		}
	}
}

func TestGreedyStaffsWhenPossible(t *testing.T) {
	p := mustProblem(t,
		[]*CollabTask{collabTask(2, 0, 1), collabTask(2, 2, 3)},
		[]*core.Worker{worker(0), worker(1), worker(2), worker(3)},
	)
	a := Greedy(p)
	for tsk, team := range a.Teams {
		if len(team) != 2 {
			t.Fatalf("task %d staffed with %d members: %v", tsk, len(team), a.Teams)
		}
	}
}

func TestGreedySkipsWhenShortOfWorkers(t *testing.T) {
	p := mustProblem(t,
		[]*CollabTask{collabTask(3, 0, 1), collabTask(1, 2)},
		[]*core.Worker{worker(0), worker(2)},
	)
	a := Greedy(p)
	if err := a.Validate(p); err != nil {
		t.Fatal(err)
	}
	if len(a.Teams[0]) != 0 {
		t.Fatalf("task needing 3 workers staffed with %d", len(a.Teams[0]))
	}
	if len(a.Teams[1]) != 1 {
		t.Fatalf("singleton task not staffed: %v", a.Teams)
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var greedySum, optSum float64
	for trial := 0; trial < 20; trial++ {
		p := randProblem(r, 1+r.Intn(2), 2+r.Intn(4))
		opt, err := Exact(p)
		if err != nil {
			t.Fatal(err)
		}
		g := Greedy(p)
		if p.Objective(g) > p.Objective(opt)+1e-9 {
			t.Fatalf("trial %d: greedy %g beats exact %g", trial, p.Objective(g), p.Objective(opt))
		}
		greedySum += p.Objective(g)
		optSum += p.Objective(opt)
	}
	if greedySum < 0.8*optSum {
		t.Errorf("greedy aggregate %g below 80%% of optimal %g", greedySum, optSum)
	}
}

func TestExactTooLarge(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	p := randProblem(r, 6, 18)
	if _, err := Exact(p); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestQuickScoreBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randProblem(r, 1+r.Intn(3), 2+r.Intn(6))
		a := Greedy(p)
		for tsk, team := range a.Teams {
			if len(team) == 0 {
				continue
			}
			s := p.Score(tsk, team)
			if s < 0 || s > 1+1e-9 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
