package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func newTestRequest(target string) (*http.Request, *httptest.ResponseRecorder) {
	return httptest.NewRequest(http.MethodGet, target, nil), httptest.NewRecorder()
}

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClock makes span timestamps and durations deterministic: every
// timeNow call advances one millisecond from a fixed base.
func fixedClock(t *testing.T) {
	t.Helper()
	prev := timeNow
	prevID := idState.Load()
	base := time.Unix(1700000000, 0).UTC()
	step := 0
	timeNow = func() time.Time {
		step++
		return base.Add(time.Duration(step) * time.Millisecond)
	}
	idState.Store(0)
	t.Cleanup(func() {
		timeNow = prev
		idState.Store(prevID)
	})
}

// buildSampleTrace records the span tree the golden file pins: an
// endpoint root, an adaptive iteration, and a solver phase, with typed
// attributes of every kind.
func buildSampleTrace(rec *Recorder) {
	ctx, root := rec.Start(context.Background(), "POST /api/workers/{id}/complete",
		Str("method", "POST"))
	ictx, iter := rec.Start(ctx, "adaptive.iteration", Int("iteration", 2), Int("pool", 85))
	_, lsap := rec.Start(ictx, "solver.lsap", Float("xmax_frac", 0.75), Bool("greedy", true))
	lsap.End()
	iter.End()
	root.SetAttrs(Int("code", 200))
	root.End()
}

// TestChromeGolden pins the exact exported bytes for a fixed span tree,
// so accidental format drift (field renames, unit changes) fails loudly.
func TestChromeGolden(t *testing.T) {
	fixedClock(t)
	rec := NewRecorder(4, 1)
	buildSampleTrace(rec)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec.Snapshot(0)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -run TestChromeGolden -update` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file.\n-- got --\n%s\n-- want --\n%s",
			buf.Bytes(), want)
	}
}

// TestChromePerfettoRequiredFields verifies every exported event carries
// the fields Perfetto requires to render it — ph, ts, dur, pid, tid,
// name — and that the hierarchy args are consistent.
func TestChromePerfettoRequiredFields(t *testing.T) {
	rec := NewRecorder(4, 1)
	buildSampleTrace(rec)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec.Snapshot(0)); err != nil {
		t.Fatal(err)
	}
	events := parseChromeEvents(t, buf.Bytes())
	if len(events) != 3 {
		t.Fatalf("%d events, want 3", len(events))
	}
	var traceID string
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("ph = %v, want X", ev["ph"])
		}
		if ev["name"] == "" || ev["name"] == nil {
			t.Fatal("event with empty name")
		}
		for _, k := range []string{"ts", "dur", "pid", "tid"} {
			if _, ok := ev[k].(float64); !ok {
				t.Fatalf("event %v: field %q missing or non-numeric", ev["name"], k)
			}
		}
		args, ok := ev["args"].(map[string]any)
		if !ok {
			t.Fatalf("event %v has no args", ev["name"])
		}
		id, _ := args["trace_id"].(string)
		if len(id) != 16 {
			t.Fatalf("event %v trace_id = %q", ev["name"], id)
		}
		if traceID == "" {
			traceID = id
		} else if id != traceID {
			t.Fatalf("trace_id mismatch within one trace: %s vs %s", id, traceID)
		}
	}
	// The root has no parent_id; children do.
	if _, ok := events[0]["args"].(map[string]any)["parent_id"]; ok {
		t.Fatal("root event carries parent_id")
	}
	if _, ok := events[1]["args"].(map[string]any)["parent_id"]; !ok {
		t.Fatal("child event missing parent_id")
	}
}

// parseChromeEvents decodes the traceEvents array of an export.
func parseChromeEvents(t *testing.T, b []byte) []map[string]any {
	t.Helper()
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	return out.TraceEvents
}

// TestHandlerServesChromeAndTree exercises GET /debug/trace end to end
// against the recorder handler.
func TestHandlerServesChromeAndTree(t *testing.T) {
	rec := NewRecorder(4, 1)
	buildSampleTrace(rec)
	buildSampleTrace(rec)

	get := func(query string) (int, string, string) {
		req, w := newTestRequest("/debug/trace" + query)
		rec.Handler().ServeHTTP(w, req)
		return w.Code, w.Header().Get("Content-Type"), w.Body.String()
	}

	code, ct, body := get("?n=1")
	if code != 200 || ct != "application/json" {
		t.Fatalf("chrome form: code %d, content-type %s", code, ct)
	}
	if events := parseChromeEvents(t, []byte(body)); len(events) != 3 {
		t.Fatalf("n=1 returned %d events, want 3 (one trace)", len(events))
	}
	_, _, body = get("?n=0")
	if events := parseChromeEvents(t, []byte(body)); len(events) != 6 {
		t.Fatalf("n=0 returned %d events, want 6 (both traces)", len(events))
	}
	code, ct, body = get("?n=1&format=tree")
	if code != 200 || ct != "text/plain; charset=utf-8" {
		t.Fatalf("tree form: code %d, content-type %s", code, ct)
	}
	if body == "" || body[:6] != "trace " {
		t.Fatalf("tree body = %q", body)
	}
	if code, _, _ = get("?n=bogus"); code != 400 {
		t.Fatalf("bad n: code %d, want 400", code)
	}
}
