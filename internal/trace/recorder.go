package trace

import (
	"context"
	"sync/atomic"
)

// Recorder retains the last-N completed traces in a lock-free ring and
// decides, per root span, whether a request is traced at all
// (head-sampling: every Nth root is kept, the rest are suppressed for
// their whole lifetime).
//
// push is one atomic add (slot claim) plus one atomic pointer store;
// concurrent pushes never block each other, and a push racing a Snapshot
// is safe — the reader loads either the old or the new trace pointer,
// both of which are complete traces. At capacity the ring overwrites
// oldest-first; every slot always holds a distinct trace, so a Snapshot
// taken after k ≤ capacity pushes returns exactly k traces.
type Recorder struct {
	every   atomic.Uint64 // sample 1 root in every; 0 = disabled
	ctr     atomic.Uint64 // roots seen, for the sampling decision
	head    atomic.Uint64 // next ring slot (monotone; slot = head & mask)
	sampled atomic.Uint64 // roots sampled (recorded traces, incl. overwritten)
	ring    []atomic.Pointer[Trace]
	mask    uint64
}

// NewRecorder builds a recorder retaining up to capacity traces (rounded
// up to a power of two, minimum 1) with 1/every head-sampling (0
// disables, 1 records every root).
func NewRecorder(capacity, every int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	r := &Recorder{ring: make([]atomic.Pointer[Trace], c), mask: uint64(c - 1)}
	r.SetSampling(every)
	return r
}

// std is the process-wide recorder, disabled by default — tracing is
// opt-in per binary (hta-server enables it behind -trace-sample).
var std = NewRecorder(256, 0)

// Default returns the process-wide recorder.
func Default() *Recorder { return std }

// SetSampling sets head-sampling to 1 root in every; 0 disables tracing
// entirely (Start on an untraced context reduces to one atomic load).
func (r *Recorder) SetSampling(every int) {
	if every < 0 {
		every = 0
	}
	r.every.Store(uint64(every))
}

// Sampling returns the current 1/N sampling denominator (0 = disabled).
func (r *Recorder) Sampling() int { return int(r.every.Load()) }

// Enabled reports whether any root can currently be sampled.
func (r *Recorder) Enabled() bool { return r.every.Load() != 0 }

// Capacity returns the ring size.
func (r *Recorder) Capacity() int { return len(r.ring) }

// Sampled returns how many roots were sampled since creation, including
// traces since overwritten by the ring.
func (r *Recorder) Sampled() uint64 { return r.sampled.Load() }

// Start opens a span. If ctx already carries a span, the new span joins
// that trace as a child regardless of which recorder it came from. On an
// untraced context, Start consults the sampler: the first root and every
// every-th after it begin a new trace rooted here; unsampled roots mark
// the context so the entire request stays untraced.
//
// The returned context carries the new span for further nesting; the
// returned *Span is nil when the request is not sampled (all Span methods
// are nil-safe).
func (r *Recorder) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if parent := fromContext(ctx); parent != nil {
		if parent.tr == nil {
			return ctx, nil // suppressed trace: stay suppressed
		}
		sp := parent.tr.startChild(parent.id, name, attrs)
		return ContextWithSpan(ctx, sp), sp
	}
	every := r.every.Load()
	if every == 0 {
		return ctx, nil
	}
	if every > 1 && (r.ctr.Add(1)-1)%every != 0 {
		return ContextWithSpan(ctx, suppressed), nil
	}
	r.sampled.Add(1)
	tr := &Trace{ID: TraceID(nextID()), rec: r}
	sp := tr.startChild(0, name, attrs)
	return ContextWithSpan(ctx, sp), sp
}

// push publishes a completed trace into the ring.
func (r *Recorder) push(t *Trace) {
	r.ring[(r.head.Add(1)-1)&r.mask].Store(t)
}

// Snapshot returns up to n of the most recently completed traces, oldest
// first (n <= 0 or n > capacity returns everything retained). The traces
// are live — a span still open keeps updating them — but Spans() copies
// under the trace lock, so readers always see consistent records.
func (r *Recorder) Snapshot(n int) []*Trace {
	if n <= 0 || n > len(r.ring) {
		n = len(r.ring)
	}
	h := r.head.Load()
	out := make([]*Trace, 0, n)
	for i := 0; i < len(r.ring) && len(out) < n; i++ {
		if uint64(i) >= h {
			break // ring never filled this far back
		}
		if t := r.ring[(h-1-uint64(i))&r.mask].Load(); t != nil {
			out = append(out, t)
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
