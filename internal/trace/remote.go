package trace

import (
	"context"
	"fmt"
)

// Cross-process trace propagation. A SpanContext is the portable identity
// of one sampled span — trace ID, span ID — in the 16-hex-digit form the
// cluster RPC frames and heartbeat headers carry. The head-sampling
// decision travels by presence: only sampled requests serialize a
// SpanContext at all, so a remote joiner never consults its own sampler
// (the decision was made once, at the root).

// SpanContext is the wire identity of a live span.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether the context names a real span (both IDs nonzero).
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// SpanContextFromContext extracts the propagation identity of the sampled
// span in ctx. ok is false for unsampled and untraced contexts — callers
// serialize nothing, which is exactly how the negative sampling decision
// propagates.
func SpanContextFromContext(ctx context.Context) (sc SpanContext, ok bool) {
	sp := FromContext(ctx)
	if sp == nil {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: sp.TraceID(), SpanID: sp.SpanID()}, true
}

// ParseID parses a 16-hex-digit trace or span ID (the String form).
func ParseID(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("trace: ID %q: want 16 hex digits", s)
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, fmt.Errorf("trace: ID %q: bad digit %q", s, c)
		}
		v = v<<4 | d
	}
	return v, nil
}

// ParseSpanContext parses the wire form of a span context (two 16-digit
// hex IDs). Either empty string yields an invalid context and no error —
// absence is the unsampled case, not a failure.
func ParseSpanContext(traceID, spanID string) (SpanContext, error) {
	if traceID == "" || spanID == "" {
		return SpanContext{}, nil
	}
	t, err := ParseID(traceID)
	if err != nil {
		return SpanContext{}, err
	}
	s, err := ParseID(spanID)
	if err != nil {
		return SpanContext{}, err
	}
	return SpanContext{TraceID: TraceID(t), SpanID: SpanID(s)}, nil
}

// StartRemote opens a span that continues a trace begun in another
// process: the new span's trace ID is sc.TraceID and its parent is
// sc.SpanID, so when the originating process stitches the retention rings
// together the remote spans nest under the RPC span that carried them.
// The sampler is bypassed — a valid sc is the affirmative head decision.
// The local Trace (holding this span and its descendants) is pushed into
// r's ring when the span ends, exactly like a local root.
//
// An invalid sc returns (ctx, nil): the root was not sampled, so the
// remote side records nothing (every Span method is nil-safe).
func (r *Recorder) StartRemote(ctx context.Context, sc SpanContext, name string, attrs ...Attr) (context.Context, *Span) {
	if !sc.Valid() {
		return ctx, nil
	}
	r.sampled.Add(1)
	tr := &Trace{ID: sc.TraceID, rec: r}
	sp := tr.startChild(sc.SpanID, name, attrs)
	return ContextWithSpan(ctx, sp), sp
}
