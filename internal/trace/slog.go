package trace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// logHandler decorates an slog.Handler with trace correlation: records
// logged with a context carrying a sampled span gain trace_id and
// span_id attributes, so one grep joins a log line to its full trace.
type logHandler struct {
	inner slog.Handler
}

// WithTraceIDs wraps h so every record logged through a traced context
// carries trace_id/span_id attributes.
func WithTraceIDs(h slog.Handler) slog.Handler { return logHandler{inner: h} }

func (h logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := FromContext(ctx); sp != nil {
		rec.AddAttrs(
			slog.String("trace_id", sp.TraceID().String()),
			slog.String("span_id", sp.SpanID().String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h logHandler) WithGroup(name string) slog.Handler {
	return logHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds the standard CLI logger behind the -log-level and
// -log-format flags: level one of debug/info/warn/error, format text or
// json, always trace-correlated via WithTraceIDs.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("trace: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("trace: unknown log format %q (want text or json)", format)
	}
	return slog.New(WithTraceIDs(h)), nil
}
