// Package trace is the repository's request-scoped tracing subsystem:
// context-propagated trace/span IDs, hierarchical spans with typed
// attributes, a lock-free fixed-capacity ring-buffer recorder with
// head-sampling, and export as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing) or a compact text tree.
//
// Where package obs answers "how fast is the solver on average?", trace
// answers "why was *this* assignment iteration slow?": one request is
// followed end to end — platform endpoint → adaptive iteration → solver
// phases — and every span carries the attributes needed to attribute a
// p99 spike to a specific instance shape (|T|, |W|, Xmax, objective,
// solver variant).
//
// Design constraints, in order:
//
//  1. Stdlib only, like obs.
//  2. The untraced path is near-free. A disabled recorder reduces
//     Start to a context lookup plus one atomic load — no allocation, no
//     time.Now. Head-sampling decides at the root: an unsampled request
//     allocates one context value (a shared sentinel) and nothing else,
//     and every descendant Start is an early return.
//  3. The recorder is a lock-free ring of completed traces: push is one
//     atomic add plus one atomic pointer store, so a burst of finishing
//     requests never contends. Within one sampled trace, span start/end
//     take a per-trace mutex — uncontended in the request-per-goroutine
//     pattern the platform serves.
//  4. Reads (Snapshot, export) may allocate; they are debug-endpoint
//     rare.
package trace

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// timeNow is swapped by tests for deterministic golden exports.
var timeNow = time.Now

// TraceID identifies one end-to-end trace; SpanID one span within it.
// Both are non-zero for recorded spans.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as 16 lowercase hex digits (the form logged and
// returned in X-Trace-Id).
func (id TraceID) String() string { return hex16(uint64(id)) }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex16(uint64(id)) }

func hex16(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// idState seeds the ID sequence; nextID runs it through the splitmix64
// finalizer so concurrent traces get well-spread 64-bit IDs from one
// atomic add.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

func nextID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// attrKind tags the value stored in an Attr.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one typed key/value attribute on a span. Construct with Str,
// Int, Float or Bool; the union representation keeps attribute slices
// free of per-value boxing allocations.
type Attr struct {
	Key  string
	kind attrKind
	num  uint64
	str  string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, kind: kindString, str: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, kind: kindInt, num: uint64(int64(v))} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, kind: kindFloat, num: math.Float64bits(v)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, kind: kindBool}
	if v {
		a.num = 1
	}
	return a
}

// Value returns the attribute's value as the Go type it was built from.
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return int64(a.num)
	case kindFloat:
		return math.Float64frombits(a.num)
	case kindBool:
		return a.num != 0
	default:
		return a.str
	}
}

// SpanData is the recorded form of one span, exposed by Trace.Spans for
// export and tests. Spans appear in start order; index 0 is the root.
type SpanData struct {
	ID     SpanID
	Parent SpanID // 0 for the root span
	Name   string
	Start  time.Time
	// Dur is zero until the span ends; a span still open when the trace
	// is exported shows Dur 0.
	Dur   time.Duration
	Attrs []Attr

	ended bool
}

// Trace collects every span of one sampled request. It is pushed into the
// recorder's ring when its root span ends; children that end later still
// update it (Snapshot copies under the same lock).
type Trace struct {
	ID  TraceID
	rec *Recorder // destination ring, set on the root

	mu    sync.Mutex
	spans []SpanData
}

// Spans returns a copy of the recorded spans, in start order (root
// first; every span's parent precedes it).
func (t *Trace) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// startChild appends a new span record. The start timestamp is taken
// under the trace lock, so the span slice is monotone in Start even under
// concurrent starts.
func (t *Trace) startChild(parent SpanID, name string, attrs []Attr) *Span {
	id := SpanID(nextID())
	t.mu.Lock()
	now := timeNow()
	idx := len(t.spans)
	t.spans = append(t.spans, SpanData{ID: id, Parent: parent, Name: name, Start: now, Attrs: attrs})
	t.mu.Unlock()
	return &Span{tr: t, id: id, idx: idx, start: now}
}

// Span is a handle on one live span. The nil *Span is inert: every method
// is a no-op returning zero values, so call sites never branch on whether
// the request was sampled.
type Span struct {
	tr    *Trace
	id    SpanID
	idx   int
	start time.Time
}

// suppressed marks a context whose root was seen by the sampler but not
// chosen: descendants must not start fresh roots of their own (that would
// distort 1/N head-sampling into per-layer sampling).
var suppressed = &Span{}

// Recorded reports whether the span is live (sampled and recording).
func (s *Span) Recorded() bool { return s != nil && s.tr != nil }

// TraceID returns the owning trace's ID, 0 for inert spans.
func (s *Span) TraceID() TraceID {
	if !s.Recorded() {
		return 0
	}
	return s.tr.ID
}

// SpanID returns the span's ID, 0 for inert spans.
func (s *Span) SpanID() SpanID {
	if !s.Recorded() {
		return 0
	}
	return s.id
}

// SetAttrs appends attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if !s.Recorded() || len(attrs) == 0 {
		return
	}
	s.tr.mu.Lock()
	sd := &s.tr.spans[s.idx]
	sd.Attrs = append(sd.Attrs, attrs...)
	s.tr.mu.Unlock()
}

// End closes the span and returns its duration. Ending a root span
// publishes the whole trace into the recorder's ring. End is idempotent:
// later calls return the first duration without re-publishing.
func (s *Span) End() time.Duration {
	if !s.Recorded() {
		return 0
	}
	d := timeNow().Sub(s.start)
	s.tr.mu.Lock()
	sd := &s.tr.spans[s.idx]
	if sd.ended {
		d = sd.Dur
		s.tr.mu.Unlock()
		return d
	}
	sd.ended = true
	sd.Dur = d
	s.tr.mu.Unlock()
	if s.idx == 0 && s.tr.rec != nil {
		s.tr.rec.push(s.tr)
	}
	return d
}

// spanKey carries the current span through a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp; Start uses it to build
// the span hierarchy.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// fromContext returns the raw span in ctx, including the suppressed
// sentinel; nil when the context is untraced.
func fromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// FromContext returns the live span carried by ctx, or nil — unsampled
// and untraced contexts both read as nil. The slog handler uses it to
// stamp trace_id/span_id onto log records.
func FromContext(ctx context.Context) *Span {
	if sp := fromContext(ctx); sp.Recorded() {
		return sp
	}
	return nil
}

// Event records an instantaneous child span (started and ended in place)
// when ctx carries a sampled span, and does nothing otherwise — the
// cheap annotation hook the streaming assigner uses for enqueue/dequeue
// decisions. Unlike Start it never opens a new root.
func Event(ctx context.Context, name string, attrs ...Attr) {
	parent := fromContext(ctx)
	if !parent.Recorded() {
		return
	}
	parent.tr.startChild(parent.id, name, attrs).End()
}

// Start opens a span on the default recorder: a child of the span in ctx
// when there is one, a new sampled root otherwise. See Recorder.Start.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	return std.Start(ctx, name, attrs...)
}
