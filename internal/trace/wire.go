package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Wire form: the serializable shape of retained traces, used to ship one
// node's retention ring to the gateway for cluster-wide stitching. Unlike
// the Chrome export (which is layout, not data — pid/tid rows), the wire
// form is lossless enough to merge: spans keep their real IDs, parents,
// microsecond timestamps and attributes, and traces keep their trace ID so
// fragments of one distributed request recorded on different nodes can be
// reunited by ID.

// WireSpan is one recorded span in serializable form. IDs are the
// 16-hex-digit String rendering; timestamps are microseconds since the
// Unix epoch (the same unit the Chrome export uses).
type WireSpan struct {
	ID      string         `json:"id"`
	Parent  string         `json:"parent,omitempty"` // empty for the trace root
	Name    string         `json:"name"`
	StartUs int64          `json:"start_us"`
	DurUs   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// WireTrace is one trace fragment: every span recorded for trace_id by a
// single recorder. A distributed request yields one fragment per process
// until MergeWire joins them.
type WireTrace struct {
	TraceID string     `json:"trace_id"`
	Spans   []WireSpan `json:"spans"`
}

// wireFile is the JSON envelope of /debug/trace?format=wire.
type wireFile struct {
	Traces []WireTrace `json:"traces"`
}

// Wire converts a trace to its serializable form.
func (t *Trace) Wire() WireTrace {
	spans := t.Spans()
	wt := WireTrace{TraceID: t.ID.String(), Spans: make([]WireSpan, 0, len(spans))}
	for _, sd := range spans {
		ws := WireSpan{
			ID:      sd.ID.String(),
			Name:    sd.Name,
			StartUs: sd.Start.UnixMicro(),
			DurUs:   sd.Dur.Microseconds(),
		}
		if sd.Parent != 0 {
			ws.Parent = sd.Parent.String()
		}
		if len(sd.Attrs) > 0 {
			ws.Attrs = make(map[string]any, len(sd.Attrs))
			for _, a := range sd.Attrs {
				ws.Attrs[a.Key] = a.Value()
			}
		}
		wt.Spans = append(wt.Spans, ws)
	}
	return wt
}

// WireSnapshot returns up to n of the most recently completed traces in
// wire form, oldest first (n <= 0 returns everything retained).
func (r *Recorder) WireSnapshot(n int) []WireTrace {
	traces := r.Snapshot(n)
	out := make([]WireTrace, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.Wire())
	}
	return out
}

// WriteWire serializes trace fragments as the wire JSON envelope.
func WriteWire(w io.Writer, traces []WireTrace) error {
	if traces == nil {
		traces = []WireTrace{}
	}
	return json.NewEncoder(w).Encode(wireFile{Traces: traces})
}

// ReadWire parses the wire JSON envelope.
func ReadWire(r io.Reader) ([]WireTrace, error) {
	var f wireFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decode wire traces: %w", err)
	}
	return f.Traces, nil
}

// AnnotateWire stamps key=value onto every span in the fragments that does
// not already carry the key — the gateway uses it to label each node's
// spans with the node name before stitching.
func AnnotateWire(traces []WireTrace, key, value string) {
	for ti := range traces {
		for si := range traces[ti].Spans {
			sp := &traces[ti].Spans[si]
			if sp.Attrs == nil {
				sp.Attrs = map[string]any{key: value}
			} else if _, ok := sp.Attrs[key]; !ok {
				sp.Attrs[key] = value
			}
		}
	}
}

// MergeWire stitches trace fragments from any number of recorders into one
// fragment per trace ID: spans are concatenated and sorted by start time
// (ties broken by span ID for determinism), and the merged traces are
// ordered by earliest span start. A distributed request traced on the
// gateway and two nodes comes back as a single WireTrace whose gateway RPC
// spans and node apply spans share the trace ID.
func MergeWire(groups ...[]WireTrace) []WireTrace {
	byID := make(map[string]*WireTrace)
	var order []string
	for _, g := range groups {
		for _, wt := range g {
			m, ok := byID[wt.TraceID]
			if !ok {
				cp := WireTrace{TraceID: wt.TraceID}
				byID[wt.TraceID] = &cp
				order = append(order, wt.TraceID)
				m = &cp
			}
			m.Spans = append(m.Spans, wt.Spans...)
		}
	}
	out := make([]WireTrace, 0, len(order))
	for _, id := range order {
		wt := byID[id]
		sort.SliceStable(wt.Spans, func(i, j int) bool {
			if wt.Spans[i].StartUs != wt.Spans[j].StartUs {
				return wt.Spans[i].StartUs < wt.Spans[j].StartUs
			}
			return wt.Spans[i].ID < wt.Spans[j].ID
		})
		out = append(out, *wt)
	}
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := int64(0), int64(0)
		if len(out[i].Spans) > 0 {
			si = out[i].Spans[0].StartUs
		}
		if len(out[j].Spans) > 0 {
			sj = out[j].Spans[0].StartUs
		}
		return si < sj
	})
	return out
}

// WriteChromeWire renders wire-form traces as Chrome trace-event JSON,
// one tid per (merged) trace so Perfetto draws each distributed request
// as a single row with spans nested by ts/dur. This is the stitched view
// served at the gateway's /debug/trace?cluster=1.
func WriteChromeWire(w io.Writer, traces []WireTrace) error {
	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for ti, wt := range traces {
		for _, sp := range wt.Spans {
			ev := chromeEvent{
				Name: sp.Name,
				Cat:  "hta",
				Ph:   "X",
				Ts:   sp.StartUs,
				Dur:  sp.DurUs,
				Pid:  1,
				Tid:  ti + 1,
				Args: map[string]any{
					"trace_id": wt.TraceID,
					"span_id":  sp.ID,
				},
			}
			if sp.Parent != "" {
				ev.Args["parent_id"] = sp.Parent
			}
			for k, v := range sp.Attrs {
				ev.Args[k] = v
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
