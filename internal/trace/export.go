package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// chromeEvent is one complete ("ph":"X") event in the Chrome trace-event
// format. The field set is exactly what Perfetto requires to lay a span
// out on the timeline: ph, ts, dur, pid, tid, name.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`  // microseconds since the Unix epoch
	Dur  int64          `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object envelope Perfetto and chrome://tracing
// accept (the bare-array form is also legal, but the object form lets us
// pin the display unit).
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders traces as Chrome trace-event JSON. Each trace gets
// its own tid so Perfetto draws one request per row; span hierarchy is
// conveyed both by ts/dur nesting and by the span_id/parent_id args.
func WriteChrome(w io.Writer, traces []*Trace) error {
	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for ti, tr := range traces {
		for _, sd := range tr.Spans() {
			ev := chromeEvent{
				Name: sd.Name,
				Cat:  "hta",
				Ph:   "X",
				Ts:   sd.Start.UnixMicro(),
				Dur:  sd.Dur.Microseconds(),
				Pid:  1,
				Tid:  ti + 1,
				Args: map[string]any{
					"trace_id": tr.ID.String(),
					"span_id":  sd.ID.String(),
				},
			}
			if sd.Parent != 0 {
				ev.Args["parent_id"] = sd.Parent.String()
			}
			for _, a := range sd.Attrs {
				ev.Args[a.Key] = a.Value()
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteTree renders one trace as a compact indented text tree — the
// terminal-friendly view of /debug/trace?format=tree.
func WriteTree(w io.Writer, tr *Trace) error {
	spans := tr.Spans()
	if len(spans) == 0 {
		_, err := fmt.Fprintf(w, "trace %s (empty)\n", tr.ID)
		return err
	}
	children := make(map[SpanID][]int, len(spans))
	for i, sd := range spans {
		if i > 0 {
			children[sd.Parent] = append(children[sd.Parent], i)
		}
	}
	if _, err := fmt.Fprintf(w, "trace %s (%d spans, %s)\n",
		tr.ID, len(spans), fmtDur(spans[0].Dur)); err != nil {
		return err
	}
	var walk func(idx int, prefix string) error
	walk = func(idx int, prefix string) error {
		sd := spans[idx]
		if _, err := fmt.Fprintf(w, "%s%s  %s%s\n",
			prefix, sd.Name, fmtDur(sd.Dur), fmtAttrs(sd.Attrs)); err != nil {
			return err
		}
		for _, c := range children[sd.ID] {
			if err := walk(c, prefix+"  "); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0, "")
}

// fmtDur rounds durations to a readable precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// fmtAttrs renders attributes as " {k=v k=v}", sorted by key.
func fmtAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		switch v := a.Value().(type) {
		case string:
			parts[i] = a.Key + "=" + strconv.Quote(v)
		case float64:
			parts[i] = a.Key + "=" + strconv.FormatFloat(v, 'g', 6, 64)
		default:
			parts[i] = fmt.Sprintf("%s=%v", a.Key, v)
		}
	}
	sort.Strings(parts)
	return " {" + strings.Join(parts, " ") + "}"
}

// Handler serves the recorder's retained traces:
//
//	GET /debug/trace?n=K              last K traces as Chrome trace-event JSON
//	GET /debug/trace?n=K&format=tree  the same as a text tree
//	GET /debug/trace?n=K&format=wire  lossless wire form (for stitching)
//
// n defaults to 1 (the most recent trace); n=0 returns everything
// retained. The JSON form loads directly in Perfetto (ui.perfetto.dev)
// or chrome://tracing. The wire form is what the gateway pulls from each
// node to assemble cluster-wide traces.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 1
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "trace: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		if req.URL.Query().Get("format") == "wire" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteWire(w, r.WireSnapshot(n))
			return
		}
		traces := r.Snapshot(n)
		if req.URL.Query().Get("format") == "tree" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if len(traces) == 0 {
				fmt.Fprintln(w, "no traces recorded (is sampling enabled?)")
				return
			}
			for _, tr := range traces {
				_ = WriteTree(w, tr)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChrome(w, traces)
	})
}
