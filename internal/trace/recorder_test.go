package trace

import (
	"context"
	"io"
	"sync"
	"testing"
)

// TestRecorderNoLostRootsAtCapacity pins the ring's claim: after exactly
// capacity concurrent root-span completions, a snapshot returns capacity
// distinct traces — concurrent pushes claim distinct slots, so none is
// lost.
func TestRecorderNoLostRootsAtCapacity(t *testing.T) {
	const capacity = 32
	rec := NewRecorder(capacity, 1)
	var wg sync.WaitGroup
	for i := 0; i < capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, root := rec.Start(context.Background(), "root")
			_, child := rec.Start(ctx, "child")
			child.End()
			root.End()
		}()
	}
	wg.Wait()

	traces := rec.Snapshot(0)
	if len(traces) != capacity {
		t.Fatalf("Snapshot = %d traces, want %d", len(traces), capacity)
	}
	seen := make(map[TraceID]bool)
	for _, tr := range traces {
		if seen[tr.ID] {
			t.Fatalf("duplicate trace %s in snapshot", tr.ID)
		}
		seen[tr.ID] = true
		if spans := tr.Spans(); len(spans) != 2 || spans[0].Parent != 0 {
			t.Fatalf("trace %s has spans %+v, want root+child", tr.ID, spans)
		}
	}
}

// TestRecorderOverwriteKeepsNewest: past capacity the ring overwrites
// oldest-first, and the retained set is the most recent capacity traces.
func TestRecorderOverwriteKeepsNewest(t *testing.T) {
	rec := NewRecorder(8, 1)
	var ids []TraceID
	for i := 0; i < 50; i++ {
		_, sp := rec.Start(context.Background(), "root")
		ids = append(ids, sp.TraceID())
		sp.End()
	}
	traces := rec.Snapshot(0)
	if len(traces) != rec.Capacity() {
		t.Fatalf("Snapshot = %d, want capacity %d", len(traces), rec.Capacity())
	}
	want := ids[len(ids)-rec.Capacity():]
	for i, tr := range traces {
		if tr.ID != want[i] {
			t.Fatalf("slot %d = %s, want %s (oldest-first of the newest %d)",
				i, tr.ID, want[i], rec.Capacity())
		}
	}
	if rec.Sampled() != 50 {
		t.Fatalf("Sampled = %d, want 50", rec.Sampled())
	}
}

// TestRecorderConcurrentSpansAndExport runs writers (nested span
// start/end), within-trace concurrent children, and readers (Snapshot +
// Chrome export) at once; under -race this is the memory-safety proof
// for the lock-free ring and the per-trace records. It then verifies the
// structural invariants on every exported trace: timestamps are monotone
// in record order, and every span's parent precedes it.
func TestRecorderConcurrentSpansAndExport(t *testing.T) {
	rec := NewRecorder(16, 1)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 2; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				traces := rec.Snapshot(0)
				_ = WriteChrome(io.Discard, traces)
				for _, tr := range traces {
					_ = WriteTree(io.Discard, tr)
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for g := 0; g < 8; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				ctx, root := rec.Start(context.Background(), "root")
				// Concurrent children of the same trace.
				var kids sync.WaitGroup
				for c := 0; c < 3; c++ {
					kids.Add(1)
					go func() {
						defer kids.Done()
						cctx, child := rec.Start(ctx, "child")
						_, grand := rec.Start(cctx, "grand", Int("i", i))
						grand.End()
						child.End()
					}()
				}
				kids.Wait()
				root.SetAttrs(Int("iter", i))
				root.End()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	for _, tr := range rec.Snapshot(0) {
		spans := tr.Spans()
		if len(spans) == 0 || spans[0].Parent != 0 {
			t.Fatalf("trace %s: malformed root: %+v", tr.ID, spans)
		}
		index := make(map[SpanID]int, len(spans))
		for i, sd := range spans {
			index[sd.ID] = i
			if i > 0 {
				if sd.Start.Before(spans[i-1].Start) {
					t.Fatalf("trace %s: span %d starts before span %d", tr.ID, i, i-1)
				}
				p, ok := index[sd.Parent]
				if !ok {
					t.Fatalf("trace %s: span %s has unknown parent %s", tr.ID, sd.ID, sd.Parent)
				}
				if p >= i {
					t.Fatalf("trace %s: parent at %d does not precede child at %d", tr.ID, p, i)
				}
			}
		}
	}
}

// TestSnapshotLimit: n selects the most recent n, still oldest-first.
func TestSnapshotLimit(t *testing.T) {
	rec := NewRecorder(8, 1)
	var last TraceID
	for i := 0; i < 5; i++ {
		_, sp := rec.Start(context.Background(), "root")
		last = sp.TraceID()
		sp.End()
	}
	got := rec.Snapshot(2)
	if len(got) != 2 {
		t.Fatalf("Snapshot(2) = %d traces", len(got))
	}
	if got[1].ID != last {
		t.Fatalf("Snapshot(2) newest = %s, want %s", got[1].ID, last)
	}
}
