package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestStartPropagatesHierarchy(t *testing.T) {
	rec := NewRecorder(8, 1)
	ctx, root := rec.Start(context.Background(), "root", Str("k", "v"))
	if !root.Recorded() {
		t.Fatal("root not sampled at 1/1")
	}
	cctx, child := rec.Start(ctx, "child")
	_, grand := rec.Start(cctx, "grandchild", Int("n", 7))
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatal("children did not join the root's trace")
	}
	grand.End()
	child.End()
	root.End()

	traces := rec.Snapshot(0)
	if len(traces) != 1 {
		t.Fatalf("Snapshot = %d traces, want 1", len(traces))
	}
	spans := traces[0].Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	if spans[0].Name != "root" || spans[0].Parent != 0 {
		t.Fatalf("span 0 = %+v, want root with no parent", spans[0])
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatal("child's parent is not root")
	}
	if spans[2].Parent != spans[1].ID {
		t.Fatal("grandchild's parent is not child")
	}
	for _, sd := range spans {
		if sd.Dur <= 0 {
			t.Fatalf("span %s has non-positive duration %v", sd.Name, sd.Dur)
		}
	}
}

func TestHeadSampling(t *testing.T) {
	rec := NewRecorder(256, 4)
	kept := 0
	for i := 0; i < 100; i++ {
		ctx, sp := rec.Start(context.Background(), "root")
		// Descendants of an unsampled root must not become fresh roots.
		_, child := rec.Start(ctx, "child")
		if child.Recorded() != sp.Recorded() {
			t.Fatal("child sampling disagrees with root")
		}
		child.End()
		sp.End()
		if sp.Recorded() {
			kept++
		}
	}
	if kept != 25 {
		t.Fatalf("kept %d of 100 at 1/4 sampling, want 25", kept)
	}
	if got := len(rec.Snapshot(0)); got != 25 {
		t.Fatalf("Snapshot holds %d traces, want 25", got)
	}
}

func TestDisabledRecorderIsInert(t *testing.T) {
	rec := NewRecorder(8, 0)
	ctx, sp := rec.Start(context.Background(), "root")
	if sp.Recorded() {
		t.Fatal("disabled recorder sampled a root")
	}
	if ctx != context.Background() {
		t.Fatal("disabled recorder allocated a context value")
	}
	// All nil-span methods are no-ops.
	sp.SetAttrs(Int("n", 1))
	if d := sp.End(); d != 0 {
		t.Fatalf("inert End = %v, want 0", d)
	}
	if sp.TraceID() != 0 || sp.SpanID() != 0 {
		t.Fatal("inert span has non-zero IDs")
	}
	if len(rec.Snapshot(0)) != 0 {
		t.Fatal("disabled recorder recorded a trace")
	}
}

func TestEndIdempotent(t *testing.T) {
	rec := NewRecorder(8, 1)
	_, sp := rec.Start(context.Background(), "root")
	d1 := sp.End()
	d2 := sp.End()
	if d1 != d2 {
		t.Fatalf("second End returned %v, first %v", d2, d1)
	}
	if got := len(rec.Snapshot(0)); got != 1 {
		t.Fatalf("double End pushed %d traces, want 1", got)
	}
}

func TestEventRequiresSampledContext(t *testing.T) {
	rec := NewRecorder(8, 1)
	Event(context.Background(), "orphan") // must not panic or record anywhere
	ctx, sp := rec.Start(context.Background(), "root")
	Event(ctx, "queued", Int("depth", 3))
	sp.End()
	spans := rec.Snapshot(0)[0].Spans()
	if len(spans) != 2 || spans[1].Name != "queued" {
		t.Fatalf("spans = %+v, want root + queued event", spans)
	}
	if spans[1].Parent != spans[0].ID {
		t.Fatal("event is not a child of the context span")
	}
	if v := spans[1].Attrs[0].Value(); v != int64(3) {
		t.Fatalf("event attr = %v (%T), want 3", v, v)
	}
}

func TestAttrValues(t *testing.T) {
	cases := []struct {
		attr Attr
		want any
	}{
		{Str("s", "x"), "x"},
		{Int("i", -5), int64(-5)},
		{Float("f", 2.5), 2.5},
		{Bool("b", true), true},
		{Bool("b", false), false},
	}
	for _, c := range cases {
		if got := c.attr.Value(); got != c.want {
			t.Fatalf("Attr %q Value = %v (%T), want %v", c.attr.Key, got, got, c.want)
		}
	}
}

func TestIDStrings(t *testing.T) {
	if s := TraceID(0xabc).String(); s != "0000000000000abc" {
		t.Fatalf("TraceID string = %q", s)
	}
	if len(SpanID(nextID()).String()) != 16 {
		t.Fatal("SpanID string is not 16 hex digits")
	}
}

func TestLoggerTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(8, 1)
	ctx, sp := rec.Start(context.Background(), "root")
	logger.LogAttrs(ctx, slog.LevelInfo, "hello", slog.Int("n", 1))
	sp.End()

	var rec2 map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec2); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec2["trace_id"] != sp.TraceID().String() {
		t.Fatalf("trace_id = %v, want %s", rec2["trace_id"], sp.TraceID())
	}
	if rec2["span_id"] != sp.SpanID().String() {
		t.Fatalf("span_id = %v, want %s", rec2["span_id"], sp.SpanID())
	}

	// Untraced context: no correlation attrs.
	buf.Reset()
	logger.LogAttrs(context.Background(), slog.LevelInfo, "plain")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("untraced log line carries trace_id: %s", buf.String())
	}
}

func TestLoggerFlagValidation(t *testing.T) {
	if _, err := NewLogger(io.Discard, "nope", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(io.Discard, "info", "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
	for _, lvl := range []string{"debug", "info", "warn", "error"} {
		for _, f := range []string{"text", "json"} {
			if _, err := NewLogger(io.Discard, lvl, f); err != nil {
				t.Fatalf("NewLogger(%s, %s): %v", lvl, f, err)
			}
		}
	}
}

func TestTreeRendering(t *testing.T) {
	rec := NewRecorder(8, 1)
	ctx, root := rec.Start(context.Background(), "endpoint", Str("method", "POST"))
	_, child := rec.Start(ctx, "solver.lsap")
	time.Sleep(time.Microsecond)
	child.End()
	root.End()
	var buf bytes.Buffer
	if err := WriteTree(&buf, rec.Snapshot(1)[0]); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace ", "endpoint", "solver.lsap", `method="POST"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree output missing %q:\n%s", want, out)
		}
	}
}
