package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

// FuzzWriteChrome drives the exporter with fuzz-shaped span trees —
// arbitrary nesting, names and attribute payloads including invalid
// UTF-8 — and requires the output to always be parseable JSON whose
// events carry the Perfetto-required fields.
func FuzzWriteChrome(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 5, 0, 'a', 1, 'b', 2, 2, 0})
	f.Add([]byte{3, 9, 0xff, 0xfe, '"', '\\', '\n', 0, 1, 2, 0, 1, 2, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		nextStr := func() string {
			n := int(next()) % 8
			if n > len(data) {
				n = len(data)
			}
			s := string(data[:n])
			data = data[n:]
			return s
		}

		rec := NewRecorder(8, 1)
		roots := int(next())%3 + 1
		for r := 0; r < roots; r++ {
			ctx, root := rec.Start(context.Background(), nextStr(), Str(nextStr(), nextStr()))
			ctxs := []context.Context{ctx}
			stack := []*Span{root}
			for ops := int(next()) % 24; ops > 0; ops-- {
				switch next() % 4 {
				case 0: // push a child span
					cctx, sp := rec.Start(ctxs[len(ctxs)-1], nextStr())
					ctxs = append(ctxs, cctx)
					stack = append(stack, sp)
				case 1: // pop (keep the root open until the end)
					if len(stack) > 1 {
						stack[len(stack)-1].End()
						stack = stack[:len(stack)-1]
						ctxs = ctxs[:len(ctxs)-1]
					}
				case 2: // attach attrs of every kind
					stack[len(stack)-1].SetAttrs(
						Int(nextStr(), int(int8(next()))),
						Float(nextStr(), float64(next())/3),
						Bool(nextStr(), next()%2 == 0),
					)
				case 3: // instantaneous event
					Event(ctxs[len(ctxs)-1], nextStr(), Str(nextStr(), nextStr()))
				}
			}
			for i := len(stack) - 1; i >= 0; i-- {
				stack[i].End()
			}
		}

		var buf bytes.Buffer
		if err := WriteChrome(&buf, rec.Snapshot(0)); err != nil {
			t.Fatalf("WriteChrome: %v", err)
		}
		if !json.Valid(buf.Bytes()) {
			t.Fatalf("export is not valid JSON:\n%s", buf.String())
		}
		var out struct {
			TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("export does not decode: %v", err)
		}
		for _, ev := range out.TraceEvents {
			for _, k := range []string{"ph", "ts", "dur", "pid", "tid", "name"} {
				if _, ok := ev[k]; !ok {
					t.Fatalf("event missing required field %q: %v", k, ev)
				}
			}
		}
		// The tree renderer must hold up under the same inputs.
		for _, tr := range rec.Snapshot(0) {
			if err := WriteTree(&buf, tr); err != nil {
				t.Fatalf("WriteTree: %v", err)
			}
		}
	})
}
