package trace

import (
	"net/http"
	"net/http/pprof"
)

// RegisterDebug mounts the debug surface on mux: GET /debug/trace (the
// recorder's retained traces, see Recorder.Handler) and the full
// net/http/pprof suite under /debug/pprof/. hta-server attaches this to
// its serving mux; hta-bench and hta-live attach it to their -metrics
// side listener so a long sweep can be profiled and traced live.
func RegisterDebug(mux *http.ServeMux, rec *Recorder) {
	if rec == nil {
		rec = Default()
	}
	mux.Handle("/debug/trace", rec.Handler())
	RegisterPprof(mux)
}

// RegisterPprof mounts only the net/http/pprof suite. Backends that serve
// a custom /debug/trace (the gateway's cluster-stitched view) use this to
// keep profiling without double-registering the trace route.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
