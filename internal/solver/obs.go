package solver

import (
	"context"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/trace"
)

// Solver telemetry, registered on the process-wide obs registry. The
// instruments are always on — every write is a few atomic operations, and
// hta-bench -fig pr3 holds the total under 2% of a full solve — with
// obs.SetEnabled(false) as the global kill switch.
var (
	phasePrecompute = phaseHist("precompute")
	phaseMatching   = phaseHist("matching")
	phaseLSAP       = phaseHist("lsap")
	phaseFlip       = phaseHist("flip")
	phaseTotal      = phaseHist("total")

	lastObjective = func(algo string) *obs.Gauge {
		return obs.Default().Gauge("hta_solver_last_objective",
			"objective value of the most recent run, by algorithm", obs.L("algorithm", algo))
	}

	// approxSanity is objective / (Σ_w (α_w+β_w)·Xmax·(Xmax−1)) — the
	// trivial upper bound with every pairwise distance and relevance at
	// 1.0. For bounded metrics (Jaccard) the ratio lives in [0, 1]; a
	// value near 0 on a large instance, or above 1 on a supposedly bounded
	// metric, is the operational smell the gauge exists to surface.
	approxSanity = obs.Default().Gauge("hta_solver_approx_sanity",
		"objective of the last run as a fraction of the all-ones upper bound")

	objectiveNegative = obs.Default().Counter("hta_solver_objective_negative_total",
		"runs whose objective came out negative (motivation is a sum of nonnegative terms; this must stay 0)")
)

func solverRuns(algo string) *obs.Counter {
	return obs.Default().Counter("hta_solver_runs_total",
		"solver runs completed, by algorithm", obs.L("algorithm", algo))
}

func phaseHist(phase string) *obs.Histogram {
	return obs.Default().Histogram("hta_solver_phase_seconds",
		"time per solver phase", obs.DurationBuckets(), obs.L("phase", phase))
}

// startPhase couples one pipeline phase to both telemetry sinks: a trace
// span joining the caller's context (inert when the context carries no
// sampled trace — one nil check) and the phase-latency histogram. The
// returned func ends the phase, optionally attaching result attributes,
// and returns the measured wall-clock duration for Result bookkeeping.
func startPhase(ctx context.Context, name string, h *obs.Histogram, attrs ...trace.Attr) func(extra ...trace.Attr) time.Duration {
	_, sp := trace.Start(ctx, name, attrs...)
	start := time.Now()
	return func(extra ...trace.Attr) time.Duration {
		if len(extra) > 0 {
			sp.SetAttrs(extra...)
		}
		sp.End()
		d := time.Since(start)
		obs.ObserveDuration(h, d)
		return d
	}
}

// recordRunMetrics publishes one finished run into the registry. Phase
// histograms (precompute/matching/lsap/flip) are fed by startPhase at
// each call site; this records the run-level totals and sanity gauges.
func recordRunMetrics(in *core.Instance, res *Result) {
	if !obs.Enabled() {
		return
	}
	solverRuns(res.Algorithm).Inc()
	obs.ObserveDuration(phaseTotal, res.TotalTime)
	lastObjective(res.Algorithm).Set(res.Objective)
	if res.Objective < 0 {
		objectiveNegative.Inc()
	}
	if ub := trivialUpperBound(in); ub > 0 {
		approxSanity.Set(res.Objective / ub)
	}
}

// trivialUpperBound bounds the HTA objective from above assuming every
// distance and relevance equals 1: each worker contributes at most
// α·Xmax·(Xmax−1) diversity (2·C(Xmax,2) ordered pairs) plus
// β·(Xmax−1)·Xmax relevance.
func trivialUpperBound(in *core.Instance) float64 {
	x := float64(in.Xmax)
	var ub float64
	for _, w := range in.Workers {
		ub += (w.Alpha + w.Beta) * x * (x - 1)
	}
	return ub
}
