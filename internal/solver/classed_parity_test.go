package solver

import (
	"math"
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/lsap"
	"github.com/htacs/ata/internal/metric"
)

// genericInstance builds an instance whose auxiliary LSAP optimum is
// generically unique: every worker shares keyword 0 with every task, so all
// relevances are strictly positive and no task ties several workers at
// profit zero. On such instances the dense and class-collapsed LSAP paths
// must select the same assignment bit for bit.
func genericInstance(t testing.TB, r *rand.Rand, numTasks, numWorkers, xmax, universe int) *core.Instance {
	t.Helper()
	tasks := make([]*core.Task, numTasks)
	for i := range tasks {
		kw := bitset.New(universe)
		kw.Add(0)
		for k := 1; k < universe; k++ {
			if r.Intn(3) == 0 {
				kw.Add(k)
			}
		}
		tasks[i] = &core.Task{ID: "t", Keywords: kw}
	}
	workers := make([]*core.Worker, numWorkers)
	for q := range workers {
		kw := bitset.New(universe)
		kw.Add(0)
		for k := 1; k < universe; k++ {
			if r.Intn(3) == 0 {
				kw.Add(k)
			}
		}
		alpha := r.Float64()
		workers[q] = &core.Worker{Alpha: alpha, Beta: 1 - alpha, Keywords: kw}
	}
	in, err := core.NewInstance(tasks, workers, xmax, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestClassedDenseObjectiveParity: on unique-optimum instances the default
// (class-collapsed) HTAAPP path and the WithDenseLSAP escape hatch produce
// bit-identical objectives under WithoutFlip, across instance seeds and
// shuffle seeds.
func TestClassedDenseObjectiveParity(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		r := rand.New(rand.NewSource(seed))
		in := genericInstance(t, r, 120, 5, 12, 40)
		for _, rs := range []int64{1, 99} {
			dense, err := HTAAPP(in, WithoutFlip(), WithDenseLSAP(), WithRand(rand.New(rand.NewSource(rs))))
			if err != nil {
				t.Fatal(err)
			}
			classed, err := HTAAPP(in, WithoutFlip(), WithRand(rand.New(rand.NewSource(rs))))
			if err != nil {
				t.Fatal(err)
			}
			if dense.Objective != classed.Objective {
				t.Errorf("seed=%d rs=%d: dense %.17g != classed %.17g", seed, rs, dense.Objective, classed.Objective)
			}
			if err := classed.Assignment.Validate(in); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestClassedDenseLSAPValueParity: on arbitrary instances (including
// degenerate ones, where tie-breaking may legitimately pick different
// equally-optimal assignments) the auxiliary LSAP optimum found by the
// class-collapsed solver equals the dense Hungarian's within 1e-9. The
// solvers see the real auxCosts matrix via the HTAWith hook.
func TestClassedDenseLSAPValueParity(t *testing.T) {
	shapes := []struct{ numTasks, numWorkers, xmax, universe int }{
		{16, 2, 4, 12},
		{60, 4, 10, 20},
		{150, 6, 12, 30},
		{200, 3, 40, 16},
	}
	for _, s := range shapes {
		r := rand.New(rand.NewSource(int64(s.numTasks)))
		in := randInstance(t, r, s.numTasks, s.numWorkers, s.xmax, s.universe)
		var denseVal, classedVal float64
		_, err := HTAWith(in, "dense-probe", func(c lsap.Costs) lsap.Solution {
			sol := lsap.Hungarian(c)
			denseVal = sol.Value
			return sol
		}, WithoutFlip(), WithRand(rand.New(rand.NewSource(7))))
		if err != nil {
			t.Fatal(err)
		}
		_, err = HTAWith(in, "classed-probe", func(c lsap.Costs) lsap.Solution {
			sol := lsap.Auto(c, 1)
			classedVal = sol.Value
			return sol
		}, WithoutFlip(), WithRand(rand.New(rand.NewSource(7))))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(denseVal-classedVal) > 1e-9 {
			t.Errorf("%+v: dense LSAP value %.12f, classed %.12f", s, denseVal, classedVal)
		}
	}
}

// TestWorkspaceOptionParity: threading a reusable workspace through
// repeated solves changes nothing about the results.
func TestWorkspaceOptionParity(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	in := randInstance(t, r, 60, 4, 10, 20)
	ws := lsap.NewWorkspace()
	for trial := 0; trial < 5; trial++ {
		base, err := HTAAPP(in, WithoutFlip(), WithRand(rand.New(rand.NewSource(int64(trial)))))
		if err != nil {
			t.Fatal(err)
		}
		reused, err := HTAAPP(in, WithoutFlip(), WithWorkspace(ws), WithRand(rand.New(rand.NewSource(int64(trial)))))
		if err != nil {
			t.Fatal(err)
		}
		if base.Objective != reused.Objective {
			t.Fatalf("trial %d: workspace run objective %.17g != %.17g", trial, reused.Objective, base.Objective)
		}
		gBase, err := HTAGRE(in, WithoutFlip(), WithRand(rand.New(rand.NewSource(int64(trial)))))
		if err != nil {
			t.Fatal(err)
		}
		gReused, err := HTAGRE(in, WithoutFlip(), WithWorkspace(ws), WithRand(rand.New(rand.NewSource(int64(trial)))))
		if err != nil {
			t.Fatal(err)
		}
		if gBase.Objective != gReused.Objective {
			t.Fatalf("trial %d: GRE workspace objective %.17g != %.17g", trial, gReused.Objective, gBase.Objective)
		}
	}
}
