package solver_test

import (
	"fmt"
	"log"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
)

// ExampleHTAGRE assigns four tasks of two topics to a diversity-seeker and
// a relevance-seeker.
func ExampleHTAGRE() {
	const universe = 8
	tasks := []*core.Task{
		{ID: "audio-1", Keywords: bitset.FromIndices(universe, 0, 1)},
		{ID: "audio-2", Keywords: bitset.FromIndices(universe, 0, 1)},
		{ID: "image-1", Keywords: bitset.FromIndices(universe, 2, 3)},
		{ID: "image-2", Keywords: bitset.FromIndices(universe, 2, 3)},
	}
	workers := []*core.Worker{
		{ID: "explorer", Alpha: 1, Beta: 0, Keywords: bitset.FromIndices(universe, 5)},
		{ID: "audiophile", Alpha: 0, Beta: 1, Keywords: bitset.FromIndices(universe, 0, 1)},
	}
	in, err := core.NewInstance(tasks, workers, 2, metric.Jaccard{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.HTAGRE(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("algorithm:", res.Algorithm)
	fmt.Println("feasible:", res.Assignment.Validate(in) == nil)
	fmt.Printf("assigned %d of %d tasks\n", res.Assignment.AssignedCount(), in.NumTasks())
	// Output:
	// algorithm: hta-gre
	// feasible: true
	// assigned 4 of 4 tasks
}
