package solver

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/htacs/ata/internal/core"
)

// TestParallelParity is the tentpole determinism guarantee: enabling the
// cached diversity kernel at any parallelism level must leave Result
// bit-identical to the serial path — same Objective (==, not within-epsilon)
// and the same per-worker task sets — because parallelism only changes when
// distances are computed, never what the solver sees.
func TestParallelParity(t *testing.T) {
	solvers := map[string]func(*core.Instance, ...Option) (*Result, error){
		"hta-app":     HTAAPP,
		"hta-gre":     HTAGRE,
		"hta-gre-div": HTAGREDiv,
		"hta-gre-rel": HTAGRERel,
	}
	r := rand.New(rand.NewSource(99))
	for _, seed := range []int64{1, 7, 42} {
		numWorkers := 2 + r.Intn(3)
		xmax := 2 + r.Intn(3)
		numTasks := numWorkers*xmax + r.Intn(10)
		for name, solve := range solvers {
			// Fresh instances per parallelism level: the first kernel run
			// caches on the instance, which would mask a divergence in the
			// fill itself if later runs read the same cache.
			results := make([]*Result, 0, 3)
			for _, opts := range [][]Option{
				nil,
				{WithParallelism(1)},
				{WithParallelism(4)},
			} {
				ir := rand.New(rand.NewSource(seed))
				in := randInstance(t, ir, numTasks, numWorkers, xmax, 24)
				res, err := solve(in, append(opts, WithRand(rand.New(rand.NewSource(seed))))...)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, name, err)
				}
				results = append(results, res)
			}
			serial := results[0]
			for i, res := range results[1:] {
				if res.Objective != serial.Objective {
					t.Errorf("seed %d %s: parallel variant %d objective %v != serial %v",
						seed, name, i+1, res.Objective, serial.Objective)
				}
				if !reflect.DeepEqual(res.Assignment.Sets, serial.Assignment.Sets) {
					t.Errorf("seed %d %s: parallel variant %d assignment diverges from serial",
						seed, name, i+1)
				}
			}
		}
	}
}

// TestPrecomputeTimeReporting checks the phase-timing contract under the
// precomputeMinTasks gate: a small-instance GRE kernel run skips the eager
// fill (no cache, no reported phase) yet stays bit-identical through the
// lazy distance path; WithEagerPrecompute forces the fill; an instance that
// already carries a cache skips the phase.
func TestPrecomputeTimeReporting(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	in := randInstance(t, r, 30, 3, 4, 24)

	serial, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	if serial.PrecomputeTime != 0 {
		t.Errorf("serial run reported PrecomputeTime %v, want 0", serial.PrecomputeTime)
	}
	if in.HasDiversityCache() {
		t.Fatal("serial run populated the diversity cache")
	}

	// GRE-family below the size threshold: the gate skips the O(n²) fill
	// the solver would never amortize (the BENCH_PR1 serial regression).
	gated, err := HTAGRE(in, WithParallelism(2), WithRand(rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	if in.HasDiversityCache() {
		t.Fatal("gated kernel run populated the diversity cache below the threshold")
	}
	if gated.PrecomputeTime != 0 {
		t.Errorf("gated run reported PrecomputeTime %v, want 0", gated.PrecomputeTime)
	}
	if gated.Objective != serial.Objective {
		t.Errorf("gated kernel objective %v != serial %v", gated.Objective, serial.Objective)
	}

	first, err := HTAGRE(in, WithParallelism(2), WithEagerPrecompute(), WithRand(rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	if !in.HasDiversityCache() {
		t.Fatal("eager kernel run did not populate the diversity cache")
	}
	if first.Objective != serial.Objective {
		t.Errorf("kernel objective %v != serial %v", first.Objective, serial.Objective)
	}

	second, err := HTAGRE(in, WithParallelism(2), WithRand(rand.New(rand.NewSource(5))))
	if err != nil {
		t.Fatal(err)
	}
	if second.PrecomputeTime != 0 {
		t.Errorf("cached instance reported PrecomputeTime %v, want 0", second.PrecomputeTime)
	}
	if second.Objective != first.Objective {
		t.Errorf("second kernel run objective %v != first %v", second.Objective, first.Objective)
	}
}
