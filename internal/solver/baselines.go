package solver

import (
	"time"

	"github.com/htacs/ata/internal/core"
)

// GreedyMotiv is the natural hill-climbing baseline the paper's
// approximation algorithms should be measured against: repeatedly assign
// the (worker, task) pair with the largest marginal motivation gain
//
//	Δ(q, k) = motiv(T_q ∪ {k}, w_q) − motiv(T_q, w_q)
//	        = 2·α_q·Σ_{t∈T_q} d(k, t) + β_q·(TR(T_q) + |T_q|·rel(q, k))
//
// until every worker is full or tasks run out. It carries no approximation
// guarantee (a bad early pick can lock in a poor clique), runs in
// O(|W|·|T|·Xmax) per step, and in practice lands close to HTA-GRE — the
// comparison the objective-value experiments include.
func GreedyMotiv(in *core.Instance) *Result {
	start := time.Now()
	numWorkers, numTasks := in.NumWorkers(), in.NumTasks()
	a := core.NewAssignment(numWorkers)
	assigned := make([]bool, numTasks)
	sumRel := make([]float64, numWorkers) // TR(T_q, w_q)
	remaining := numTasks

	for remaining > 0 {
		bestQ, bestK, bestGain := -1, -1, -1.0
		for q := 0; q < numWorkers; q++ {
			if len(a.Sets[q]) >= in.Xmax {
				continue
			}
			w := in.Workers[q]
			setSize := float64(len(a.Sets[q]))
			for k := 0; k < numTasks; k++ {
				if assigned[k] {
					continue
				}
				var sumDiv float64
				for _, t := range a.Sets[q] {
					sumDiv += in.Diversity(k, t)
				}
				gain := 2*w.Alpha*sumDiv + w.Beta*(sumRel[q]+setSize*in.Relevance(q, k))
				if gain > bestGain {
					bestQ, bestK, bestGain = q, k, gain
				}
			}
		}
		if bestQ == -1 {
			break // all workers full
		}
		a.Sets[bestQ] = append(a.Sets[bestQ], bestK)
		sumRel[bestQ] += in.Relevance(bestQ, bestK)
		assigned[bestK] = true
		remaining--
	}
	return &Result{
		Assignment: a,
		Objective:  in.Objective(a),
		Algorithm:  "greedy-motiv",
		TotalTime:  time.Since(start),
	}
}

// LocalSearch improves an assignment in place by first-improvement moves
// until a local optimum or maxRounds sweeps: swapping two assigned tasks
// between workers, replacing an assigned task with an unassigned one, and
// filling free slots with unassigned tasks. It returns the improved
// objective. Used as an ablation: how much headroom the approximation
// algorithms leave on the table.
func LocalSearch(in *core.Instance, a *core.Assignment, maxRounds int) float64 {
	numTasks := in.NumTasks()
	assignedTo := make([]int, numTasks) // worker index or -1
	for k := range assignedTo {
		assignedTo[k] = -1
	}
	for q, set := range a.Sets {
		for _, k := range set {
			assignedTo[k] = q
		}
	}
	motiv := make([]float64, in.NumWorkers())
	for q := range a.Sets {
		motiv[q] = in.Motiv(q, a.Sets[q])
	}

	tryReplace := func(q, pos, k int) bool {
		old := a.Sets[q][pos]
		a.Sets[q][pos] = k
		newMotiv := in.Motiv(q, a.Sets[q])
		if newMotiv > motiv[q]+1e-12 {
			motiv[q] = newMotiv
			assignedTo[old] = -1
			assignedTo[k] = q
			return true
		}
		a.Sets[q][pos] = old
		return false
	}

	for round := 0; round < maxRounds; round++ {
		improved := false

		// Fill free slots with the best unassigned task.
		for q := range a.Sets {
			for len(a.Sets[q]) < in.Xmax {
				bestK, bestMotiv := -1, motiv[q]
				for k := 0; k < numTasks; k++ {
					if assignedTo[k] != -1 {
						continue
					}
					a.Sets[q] = append(a.Sets[q], k)
					if m := in.Motiv(q, a.Sets[q]); m > bestMotiv+1e-12 {
						bestK, bestMotiv = k, m
					}
					a.Sets[q] = a.Sets[q][:len(a.Sets[q])-1]
				}
				if bestK == -1 {
					break
				}
				a.Sets[q] = append(a.Sets[q], bestK)
				assignedTo[bestK] = q
				motiv[q] = bestMotiv
				improved = true
			}
		}

		// Replace an assigned task with an unassigned one.
		for q := range a.Sets {
			for pos := 0; pos < len(a.Sets[q]); pos++ {
				for k := 0; k < numTasks; k++ {
					if assignedTo[k] == -1 && tryReplace(q, pos, k) {
						improved = true
					}
				}
			}
		}

		// Swap tasks across workers.
		for q1 := range a.Sets {
			for q2 := q1 + 1; q2 < len(a.Sets); q2++ {
				for i := 0; i < len(a.Sets[q1]); i++ {
					for j := 0; j < len(a.Sets[q2]); j++ {
						k1, k2 := a.Sets[q1][i], a.Sets[q2][j]
						a.Sets[q1][i], a.Sets[q2][j] = k2, k1
						m1, m2 := in.Motiv(q1, a.Sets[q1]), in.Motiv(q2, a.Sets[q2])
						if m1+m2 > motiv[q1]+motiv[q2]+1e-12 {
							motiv[q1], motiv[q2] = m1, m2
							assignedTo[k1], assignedTo[k2] = q2, q1
							improved = true
						} else {
							a.Sets[q1][i], a.Sets[q2][j] = k1, k2
						}
					}
				}
			}
		}

		if !improved {
			break
		}
	}
	var total float64
	for q := range motiv {
		total += motiv[q]
	}
	return total
}

// HTAGREPlus runs HTA-GRE followed by a bounded local search — a practical
// "polish" variant showing how much of the approximation gap cheap moves
// recover.
func HTAGREPlus(in *core.Instance, opts ...Option) (*Result, error) {
	res, err := HTAGRE(in, opts...)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res.Objective = LocalSearch(in, res.Assignment, 3)
	res.Algorithm = "hta-gre+ls"
	res.TotalTime += time.Since(start)
	return res, nil
}
