package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/lsap"
	"github.com/htacs/ata/internal/matching"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/qap"
)

func randInstance(t testing.TB, r *rand.Rand, numTasks, numWorkers, xmax, universe int) *core.Instance {
	t.Helper()
	tasks := make([]*core.Task, numTasks)
	for i := range tasks {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(4) == 0 {
				kw.Add(k)
			}
		}
		tasks[i] = &core.Task{ID: "t", Keywords: kw}
	}
	workers := make([]*core.Worker, numWorkers)
	for q := range workers {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(4) == 0 {
				kw.Add(k)
			}
		}
		alpha := r.Float64()
		workers[q] = &core.Worker{Alpha: alpha, Beta: 1 - alpha, Keywords: kw}
	}
	in, err := core.NewInstance(tasks, workers, xmax, metric.Jaccard{})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

func TestSolversProduceFeasibleAssignments(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	solvers := map[string]func(*core.Instance, ...Option) (*Result, error){
		"app": HTAAPP, "gre": HTAGRE, "div": HTAGREDiv, "rel": HTAGRERel,
	}
	for trial := 0; trial < 20; trial++ {
		numWorkers := 1 + r.Intn(4)
		xmax := 1 + r.Intn(4)
		numTasks := 1 + r.Intn(numWorkers*xmax+6)
		in := randInstance(t, r, numTasks, numWorkers, xmax, 16)
		for name, solve := range solvers {
			res, err := solve(in, WithRand(rand.New(rand.NewSource(int64(trial)))))
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if err := res.Assignment.Validate(in); err != nil {
				t.Fatalf("trial %d %s: infeasible: %v", trial, name, err)
			}
			if math.Abs(res.Objective-in.Objective(res.Assignment)) > 1e-9 {
				t.Fatalf("trial %d %s: recorded objective %g != recomputed %g",
					trial, name, res.Objective, in.Objective(res.Assignment))
			}
		}
		res := Random(in, r)
		if err := res.Assignment.Validate(in); err != nil {
			t.Fatalf("trial %d random: %v", trial, err)
		}
	}
}

func TestSolversFillAllSlotsWhenEnoughTasks(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in := randInstance(t, r, 20, 3, 4, 16) // 20 tasks, 12 slots
	for _, solve := range []func(*core.Instance, ...Option) (*Result, error){HTAAPP, HTAGRE} {
		res, err := solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Assignment.AssignedCount(); got != 12 {
			t.Fatalf("%s assigned %d tasks, want 12 (all slots)", res.Algorithm, got)
		}
	}
}

func TestNonMetricRejected(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	tasks := make([]*core.Task, 6)
	for i := range tasks {
		tasks[i] = &core.Task{Keywords: bitset.FromIndices(8, r.Intn(8))}
	}
	workers := []*core.Worker{{Alpha: 0.5, Beta: 0.5, Keywords: bitset.FromIndices(8, 1)}}
	in, err := core.NewInstance(tasks, workers, 2, metric.Dice{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HTAGRE(in); !errors.Is(err, core.ErrNonMetric) {
		t.Fatalf("err = %v, want ErrNonMetric", err)
	}
	if _, err := HTAGRE(in, AllowNonMetric()); err != nil {
		t.Fatalf("AllowNonMetric: %v", err)
	}
}

// TestApproximationFactors checks the expected-value guarantees of
// Theorems 3 and 4 on exhaustively solved instances: averaging over flip
// coins, HTA-APP must reach ¼·OPT and HTA-GRE ⅛·OPT. Both typically do far
// better; the test also records that neither exceeds OPT.
func TestApproximationFactors(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		numWorkers := 1 + r.Intn(2)
		xmax := 2 + r.Intn(2)
		numTasks := numWorkers*xmax + r.Intn(3)
		in := randInstance(t, r, numTasks, numWorkers, xmax, 10)
		opt, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Objective <= 0 {
			continue // degenerate: nothing to approximate
		}
		const seeds = 40
		var sumAPP, sumGRE float64
		for s := 0; s < seeds; s++ {
			app, err := HTAAPP(in, WithRand(rand.New(rand.NewSource(int64(s)))))
			if err != nil {
				t.Fatal(err)
			}
			gre, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(int64(s)))))
			if err != nil {
				t.Fatal(err)
			}
			if app.Objective > opt.Objective+1e-9 || gre.Objective > opt.Objective+1e-9 {
				t.Fatalf("trial %d: solver exceeded optimum %g (app %g, gre %g)",
					trial, opt.Objective, app.Objective, gre.Objective)
			}
			sumAPP += app.Objective
			sumGRE += gre.Objective
		}
		meanAPP, meanGRE := sumAPP/seeds, sumGRE/seeds
		if meanAPP < opt.Objective/4-1e-9 {
			t.Errorf("trial %d: E[HTA-APP] = %g < OPT/4 = %g", trial, meanAPP, opt.Objective/4)
		}
		if meanGRE < opt.Objective/8-1e-9 {
			t.Errorf("trial %d: E[HTA-GRE] = %g < OPT/8 = %g", trial, meanGRE, opt.Objective/8)
		}
	}
}

// TestGREObjectiveCloseToAPP reproduces the Figure 2b finding: the greedy
// LSAP does not hurt the objective much. We require GRE to reach at least
// 70% of APP on average across random instances (the paper observes
// near-identical values).
func TestGREObjectiveCloseToAPP(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	var sumAPP, sumGRE float64
	for trial := 0; trial < 15; trial++ {
		in := randInstance(t, r, 30, 3, 5, 20)
		app, err := HTAAPP(in, WithRand(rand.New(rand.NewSource(7))))
		if err != nil {
			t.Fatal(err)
		}
		gre, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(7))))
		if err != nil {
			t.Fatal(err)
		}
		sumAPP += app.Objective
		sumGRE += gre.Objective
	}
	if sumGRE < 0.7*sumAPP {
		t.Errorf("aggregate GRE objective %g below 70%% of APP %g", sumGRE, sumAPP)
	}
}

func TestDivAndRelVariantsBiasTheAssignment(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var divTD, relTD, divTR, relTR float64
	for trial := 0; trial < 10; trial++ {
		in := randInstance(t, r, 24, 2, 6, 16)
		div, err := HTAGREDiv(in)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := HTAGRERel(in)
		if err != nil {
			t.Fatal(err)
		}
		for q := range in.Workers {
			divTD += in.SetDiversity(div.Assignment.Sets[q])
			relTD += in.SetDiversity(rel.Assignment.Sets[q])
			divTR += in.SetRelevance(q, div.Assignment.Sets[q])
			relTR += in.SetRelevance(q, rel.Assignment.Sets[q])
		}
	}
	if divTD <= relTD {
		t.Errorf("diversity-only TD %g not above relevance-only TD %g", divTD, relTD)
	}
	if relTR <= divTR {
		t.Errorf("relevance-only TR %g not above diversity-only TR %g", relTR, divTR)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	in := randInstance(t, r, 18, 2, 4, 12)
	a, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(42))))
	if err != nil {
		t.Fatal(err)
	}
	b, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(42))))
	if err != nil {
		t.Fatal(err)
	}
	if a.Objective != b.Objective {
		t.Fatalf("same seed, different objectives: %g vs %g", a.Objective, b.Objective)
	}
	for q := range a.Assignment.Sets {
		if len(a.Assignment.Sets[q]) != len(b.Assignment.Sets[q]) {
			t.Fatalf("same seed, different assignments")
		}
		for i := range a.Assignment.Sets[q] {
			if a.Assignment.Sets[q][i] != b.Assignment.Sets[q][i] {
				t.Fatalf("same seed, different assignments")
			}
		}
	}
}

func TestWithoutFlipStillFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := randInstance(t, r, 16, 2, 4, 12)
	res, err := HTAAPP(in, WithoutFlip())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Without the flip the run is fully deterministic for a fixed seed. (It
	// is NOT seed-invariant: the task shuffle still picks among equally
	// optimal LSAP solutions, and on degenerate instances — zero-relevance
	// tasks tie several workers at profit 0 — different optima have
	// different true objectives.)
	res2, err := HTAAPP(in, WithoutFlip())
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != res2.Objective {
		t.Fatalf("flipless runs differ: %g vs %g", res.Objective, res2.Objective)
	}
}

func TestWithMatcherOverride(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	in := randInstance(t, r, 14, 2, 3, 12)
	a, err := HTAGRE(in, WithMatcher(matching.GreedySort), WithoutFlip())
	if err != nil {
		t.Fatal(err)
	}
	b, err := HTAGRE(in, WithMatcher(matching.Suitor), WithoutFlip())
	if err != nil {
		t.Fatal(err)
	}
	// Suitor computes the same greedy matching, so the whole pipeline agrees.
	if a.Objective != b.Objective {
		t.Fatalf("matcher override changed result: %g vs %g", a.Objective, b.Objective)
	}
}

// TestWithExactMatcher runs the pipeline with the blossom matcher — the
// literal "maximum weight matching" of Algorithm 1, Line 2 — and checks
// the output stays feasible with a sane objective.
func TestWithExactMatcher(t *testing.T) {
	r := rand.New(rand.NewSource(39))
	for trial := 0; trial < 6; trial++ {
		in := randInstance(t, r, 16, 2, 4, 12)
		res, err := HTAAPP(in, WithMatcher(matching.Blossom))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Assignment.Validate(in); err != nil {
			t.Fatal(err)
		}
		if res.Objective <= 0 {
			t.Fatalf("trial %d: objective %g", trial, res.Objective)
		}
	}
}

func TestRandomBaselineWithFewTasks(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	in := randInstance(t, r, 3, 2, 5, 8)
	res := Random(in, r)
	if err := res.Assignment.Validate(in); err != nil {
		t.Fatal(err)
	}
	if res.Assignment.AssignedCount() != 3 {
		t.Fatalf("assigned %d, want all 3", res.Assignment.AssignedCount())
	}
}

func TestExactTooLarge(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	in := randInstance(t, r, 30, 5, 3, 8)
	if _, err := Exact(in); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestExactBeatsHeuristicsOnTinyInstances(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(t, r, 6, 2, 2, 8)
		opt, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := opt.Assignment.Validate(in); err != nil {
			t.Fatal(err)
		}
		gre, err := HTAGRE(in)
		if err != nil {
			t.Fatal(err)
		}
		if gre.Objective > opt.Objective+1e-9 {
			t.Fatalf("trial %d: GRE %g beat exact %g", trial, gre.Objective, opt.Objective)
		}
	}
}

// TestAuxCostsConsistency: the implicit column-classed profits must agree
// with the literal formula f[k][l] = bM(t_k)·degA(l) + c[k][l].
func TestAuxCostsConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	in := randInstance(t, r, 10, 2, 3, 10)
	m := qap.NewMapping(in)
	mb := matching.GreedySort(m.NumReal(), in.Diversity)
	costs := newAuxCosts(m, mb, 1)
	if costs.NumClasses() != 3 {
		t.Fatalf("NumClasses = %d, want 3", costs.NumClasses())
	}
	for k := 0; k < costs.N(); k++ {
		var bM float64
		if k < m.NumReal() && mb.Mate[k] != -1 {
			bM = in.Diversity(k, mb.Mate[k])
		}
		for l := 0; l < costs.N(); l++ {
			want := bM*m.DegA(l) + m.C(k, l)
			if got := costs.At(k, l); math.Abs(got-want) > 1e-12 {
				t.Fatalf("f[%d][%d] = %g, want %g", k, l, got, want)
			}
			if got := costs.AtClass(k, costs.Class(l)); math.Abs(got-want) > 1e-12 {
				t.Fatalf("AtClass(%d,%d) = %g, want %g", k, costs.Class(l), got, want)
			}
		}
	}
}

// TestExample3Trace replays Example 3 of the paper on the Table I instance:
// the prescribed diversity oracle makes greedy matching produce exactly
// M_B = {(t4,t8),(t1,t6),(t3,t2),(t7,t5)}, the auxiliary profit
// f[t1][vertex1] is 1·0.4 + 0.448 = 0.848, and the permutation the paper
// reports, π = (4,7,1,6,3,8,2,5), attains the LSAP optimum.
func TestExample3Trace(t *testing.T) {
	rel := [][]float64{
		{0.28, 0.25, 0.2, 0.43, 0.67, 0.4, 0, 0.4},
		{0.3, 0, 0.2, 0.25, 0.25, 0, 0, 0.4},
	}
	workers := []*core.Worker{
		{ID: "w1", Alpha: 0.2, Beta: 0.8},
		{ID: "w2", Alpha: 0.6, Beta: 0.3},
	}
	// Diversities given in Example 3 (0-based pairs), all other pairs 0.
	pairs := map[[2]int]float64{
		{3, 7}: 1, {0, 5}: 1, {1, 2}: 0.86, {4, 6}: 0.8,
	}
	div := func(k, l int) float64 {
		if k > l {
			k, l = l, k
		}
		return pairs[[2]int{k, l}]
	}
	in, err := core.NewCustomInstance(8, workers, 3, rel, div, true)
	if err != nil {
		t.Fatal(err)
	}
	m := qap.NewMapping(in)
	mb := matching.GreedySort(8, in.Diversity)
	for pair, w := range pairs {
		if w == 0 {
			continue
		}
		if mb.Mate[pair[0]] != pair[1] {
			t.Fatalf("M_B mate of t%d = %d, want %d", pair[0]+1, mb.Mate[pair[0]], pair[1])
		}
	}
	costs := newAuxCosts(m, mb, 1)
	if got := costs.At(0, 0); math.Abs(got-0.848) > 1e-12 {
		t.Fatalf("f[1][1] = %g, want 0.848", got)
	}
	// The paper reports π = (4,7,1,6,3,8,2,5) (1-based). Example 3 omits
	// the diversities of all other task pairs (we fill them with 0), so the
	// paper's π need not be the optimum of our zero-filled oracle — but the
	// Hungarian optimum must dominate it, and the translation of the
	// paper's π must match the paper's stated worker sets.
	paperPerm := []int{3, 6, 0, 5, 2, 7, 1, 4}
	var paperVal float64
	for k, l := range paperPerm {
		paperVal += costs.At(k, l)
	}
	hung := lsap.Hungarian(costs)
	if hung.Value < paperVal-1e-9 {
		t.Fatalf("Hungarian value %g below paper permutation value %g", hung.Value, paperVal)
	}
	// The paper's permutation yields w1 ← {t3,t5,t7}, w2 ← {t1,t4,t8}.
	a := m.AssignmentFromPerm(paperPerm)
	want := [][]int{{2, 4, 6}, {0, 3, 7}}
	for q := range want {
		if !sameSet(a.Sets[q], want[q]) {
			t.Fatalf("worker %d gets %v, want %v", q, a.Sets[q], want[q])
		}
	}
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// TestHTAWithAuction: the ε-scaled auction solves the auxiliary LSAP
// near-exactly, so the pipeline behaves like HTA-APP.
func TestHTAWithAuction(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	for trial := 0; trial < 6; trial++ {
		in := randInstance(t, r, 18, 2, 4, 12)
		auc, err := HTAWith(in, "hta-auction", lsap.Auction, WithRand(rand.New(rand.NewSource(3))))
		if err != nil {
			t.Fatal(err)
		}
		if err := auc.Assignment.Validate(in); err != nil {
			t.Fatal(err)
		}
		if auc.Algorithm != "hta-auction" {
			t.Fatalf("algorithm = %q", auc.Algorithm)
		}
		app, err := HTAAPP(in, WithRand(rand.New(rand.NewSource(3))))
		if err != nil {
			t.Fatal(err)
		}
		// Both solve the same LSAP optimally (up to tie choices), so the
		// objectives should be in the same range.
		if auc.Objective < 0.5*app.Objective {
			t.Fatalf("trial %d: auction pipeline %g far below APP %g", trial, auc.Objective, app.Objective)
		}
	}
	if _, err := HTAWith(nil, "x", nil); err == nil {
		t.Fatal("nil assigner accepted")
	}
}

// TestShuffleBeatsDeterministicTiesOnGroupedTasks reproduces the failure
// mode that motivates the task shuffle: with runs of identical tasks (AMT
// task groups) and deterministic indexing, LSAP ties pack clones into one
// worker and collapse diversity. The shuffled default must clearly beat
// the unshuffled run on such corpora.
func TestShuffleBeatsDeterministicTiesOnGroupedTasks(t *testing.T) {
	// 4 groups × 10 identical tasks; 2 workers × 10 slots.
	const universeSize = 16
	tasks := make([]*core.Task, 0, 40)
	for g := 0; g < 4; g++ {
		kw := bitset.FromIndices(universeSize, 4*g, 4*g+1, 4*g+2)
		for i := 0; i < 10; i++ {
			tasks = append(tasks, &core.Task{ID: "t", Keywords: kw})
		}
	}
	workers := []*core.Worker{
		{ID: "a", Alpha: 0.9, Beta: 0.1, Keywords: bitset.FromIndices(universeSize, 0)},
		{ID: "b", Alpha: 0.9, Beta: 0.1, Keywords: bitset.FromIndices(universeSize, 4)},
	}
	in, err := core.NewInstance(tasks, workers, 10, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	var withShuffle, withoutShuffle float64
	for seed := int64(0); seed < 10; seed++ {
		s, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(seed))))
		if err != nil {
			t.Fatal(err)
		}
		n, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(seed))), WithoutTaskShuffle())
		if err != nil {
			t.Fatal(err)
		}
		withShuffle += s.Objective
		withoutShuffle += n.Objective
	}
	if withShuffle < 1.3*withoutShuffle {
		t.Errorf("shuffle %g not clearly above deterministic ties %g", withShuffle, withoutShuffle)
	}
}

func TestTimingsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	in := randInstance(t, r, 40, 3, 5, 16)
	res, err := HTAAPP(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.TotalTime < res.LSAPTime {
		t.Fatalf("timings inconsistent: total %v lsap %v matching %v",
			res.TotalTime, res.LSAPTime, res.MatchingTime)
	}
}

func BenchmarkHTAAPP(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	in := randInstance(b, r, 300, 10, 10, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HTAAPP(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHTAGRE(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	in := randInstance(b, r, 300, 10, 10, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HTAGRE(in); err != nil {
			b.Fatal(err)
		}
	}
}
