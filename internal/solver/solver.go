// Package solver implements the paper's task assignment algorithms:
//
//   - HTAAPP — Algorithm 1, a ¼-approximation adapted from Arkin et al.'s
//     MAXQAP algorithm: a matching M_B on the diversity graph, an exact
//     Hungarian solution of an auxiliary LSAP, and a random flip of matched
//     pairs.
//   - HTAGRE — Algorithm 2, a ⅛-approximation that replaces the Hungarian
//     step with the ½-approximate greedy bipartite matching, lowering the
//     time complexity from O(|T|³) to O(|T|² log |T|).
//   - Variants HTA-GRE-DIV and HTA-GRE-REL (Section V-C), the Random
//     baseline, and an exact brute-force solver for small instances.
//
// All solvers return a Result carrying the assignment, its objective value
// and the phase timings the paper reports in Figure 2a (matching vs LSAP).
package solver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/lsap"
	"github.com/htacs/ata/internal/matching"
	"github.com/htacs/ata/internal/par"
	"github.com/htacs/ata/internal/qap"
	"github.com/htacs/ata/internal/trace"
)

// Result is the outcome of one solver run.
type Result struct {
	Assignment *core.Assignment
	// Objective is Σ_w motiv(T_w, w) for Assignment.
	Objective float64
	// Algorithm identifies the solver ("hta-app", "hta-gre", …).
	Algorithm string
	// MatchingTime is the time spent computing M_B (Line 2); LSAPTime the
	// time in the auxiliary assignment step (Line 11); TotalTime the whole
	// run. Figure 2a plots exactly this split.
	MatchingTime time.Duration
	LSAPTime     time.Duration
	TotalTime    time.Duration
	// PrecomputeTime is the time spent materializing the pairwise distance
	// matrix when WithParallelism enabled the diversity kernel. Zero when
	// the kernel is off, when the instance already carried a cache (e.g.
	// the adaptive engine precomputed it across iterations), or when the
	// precomputeMinTasks gate decided the fill would not amortize (small
	// instances and GRE-family solvers; see WithEagerPrecompute).
	PrecomputeTime time.Duration
}

type config struct {
	ctx             context.Context
	rng             *rand.Rand
	skipFlip        bool
	skipShuffle     bool
	allowNonMetric  bool
	matcher         func(n int, w matching.WeightFunc) matching.Matching
	parallel        int // 0 = serial legacy path; >= 1 = diversity kernel with that many goroutines
	denseLSAP       bool
	eagerPrecompute bool
	ws              *lsap.Workspace
}

// Option customizes a solver run.
type Option func(*config)

// WithContext propagates ctx into the run so the pipeline's phase spans
// join the caller's trace (see internal/trace). A context without a
// sampled span — or no WithContext at all — costs one nil check per
// phase; the solver never starts a fresh trace root on its own.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// WithRand supplies the random source for the pairwise flip step (Lines
// 12–14 of Algorithm 1). Runs are deterministic for a fixed seed. The
// default uses a fixed seed of 1.
func WithRand(r *rand.Rand) Option { return func(c *config) { c.rng = r } }

// WithoutFlip disables the random flip of matched endpoints. The flip is
// what makes the ¼ (resp. ⅛) bound hold in expectation; disabling it is
// used by the ablation benches.
func WithoutFlip() Option { return func(c *config) { c.skipFlip = true } }

// WithoutTaskShuffle disables the random task reindexing applied before
// solving. The shuffle is an implementation choice beyond the paper's
// pseudocode: AMT-style corpora contain runs of identical tasks (task
// groups), and with deterministic indexing the auxiliary LSAP's tied
// profits assign whole runs to one worker, collapsing that worker's
// diversity — to the point where random assignment can beat the
// approximation algorithms. Randomizing the tie-break restores the
// expected diversity at no cost to the guarantee. Disable only for
// ablation or to replay the paper's literal pseudocode.
func WithoutTaskShuffle() Option { return func(c *config) { c.skipShuffle = true } }

// AllowNonMetric lets the solver run on instances whose distance is not a
// metric. The output remains feasible but the approximation factors of
// Theorems 3 and 4 no longer hold (the paper notes MAXQAP is largely
// inapproximable without the metric assumption).
func AllowNonMetric() Option { return func(c *config) { c.allowNonMetric = true } }

// WithMatcher overrides the algorithm used for the diversity matching M_B.
// The default is matching.AutoP (sort-greedy below the edge-list memory
// threshold, suitor above; both are the same ½-approximate greedy) at the
// run's parallelism level. An explicit matcher wins over WithParallelism for
// the matching phase.
func WithMatcher(m func(n int, w matching.WeightFunc) matching.Matching) Option {
	return func(c *config) { c.matcher = m }
}

// WithParallelism enables the cached diversity kernel: before solving, the
// instance's full pairwise distance matrix is materialized with p goroutines
// (p >= 1 literal, p <= 0 → runtime.NumCPU()), and the matching, profit and
// LSAP construction phases shard their loops across the same p. Results are
// bit-identical to the serial path for every p — parallelism only changes
// when distances are computed, never what the solver sees — so this is a
// pure time/memory trade: the cache costs O(|T|²/2) float64s (~400 MB at
// the paper's 10k-task scale). The precompute cost is reported in
// Result.PrecomputeTime; instances that already carry a cache (e.g. from
// adaptive's cross-iteration kernel) skip it, and run skips the eager fill
// when it would not amortize (see precomputeMinTasks / WithEagerPrecompute)
// while still sharding the remaining phases across p.
func WithParallelism(p int) Option {
	return func(c *config) { c.parallel = par.N(p) }
}

// WithDenseLSAP forces HTAAPP's auxiliary LSAP through the dense O(|T|³)
// Hungarian instead of the class-collapsed O(|T|²·|W|) solver the lsap.Auto
// dispatcher picks by default. Both are exact — this is the escape hatch
// for parity testing and before/after benchmarking, not a quality knob.
func WithDenseLSAP() Option { return func(c *config) { c.denseLSAP = true } }

// WithWorkspace supplies a reusable lsap.Workspace for the auxiliary LSAP
// step, so repeated solves (e.g. the adaptive loop, one per iteration)
// reuse scratch buffers instead of re-allocating O(|T|) slices every run.
// The workspace is not safe for concurrent use: callers running solvers
// concurrently need one workspace per goroutine (or none — a nil workspace
// allocates privately, which is the default).
func WithWorkspace(ws *lsap.Workspace) Option { return func(c *config) { c.ws = ws } }

// WithEagerPrecompute forces the diversity-kernel precompute (full pairwise
// distance materialization) whenever WithParallelism is active, regardless
// of the instance-size/solver-family gate that run applies by default. See
// the precomputeMinTasks commentary; DESIGN.md documents the threshold.
func WithEagerPrecompute() Option { return func(c *config) { c.eagerPrecompute = true } }

func newConfig(opts []Option) *config {
	c := &config{
		ctx: context.Background(),
		rng: rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// HTAAPP runs Algorithm 1 (HTA-APP), the ¼-approximation that solves the
// auxiliary LSAP exactly. The LSAP goes through lsap.Auto: the auxiliary
// matrix exposes |W|+1 column classes, so the class-collapsed Hungarian
// solves it in O(|T|²·|W|) instead of the dense O(|T|³) — same optimum,
// same guarantee. WithDenseLSAP forces the dense path.
func HTAAPP(in *core.Instance, opts ...Option) (*Result, error) {
	return run(in, "hta-app", false, func(c lsap.Costs, p int, cfg *config) lsap.Solution {
		if cfg.denseLSAP {
			return lsap.HungarianWS(c, cfg.ws)
		}
		return lsap.AutoWS(c, p, cfg.ws)
	}, opts)
}

// HTAGRE runs Algorithm 2 (HTA-GRE), the ⅛-approximation that solves the
// auxiliary LSAP with the ½-approximate greedy matching. O(|T|² log |T|).
func HTAGRE(in *core.Instance, opts ...Option) (*Result, error) {
	return run(in, "hta-gre", true, greedyAssign, opts)
}

// greedyAssign is the Line-11 step of every GRE-family solver.
func greedyAssign(c lsap.Costs, p int, cfg *config) lsap.Solution {
	return lsap.GreedyWS(c, p, cfg.ws)
}

// HTAWith runs the shared Algorithm 1/2 pipeline with a caller-supplied
// LSAP solver for Line 11 — e.g. lsap.Auction to measure the
// cost-scaling-family alternative the paper's Section IV-C discusses. The
// approximation analysis only covers exact (¼) and ½-approximate greedy
// (⅛) assignment steps; other solvers inherit whatever guarantee their
// LSAP quality implies.
func HTAWith(in *core.Instance, name string, assign func(lsap.Costs) lsap.Solution, opts ...Option) (*Result, error) {
	if assign == nil {
		return nil, errors.New("solver: nil LSAP solver")
	}
	if name == "" {
		name = "hta-custom"
	}
	return run(in, name, false, func(c lsap.Costs, _ int, _ *config) lsap.Solution { return assign(c) }, opts)
}

// HTAGREDiv runs HTA-GRE with every worker's weights forced to α=1, β=0 —
// the diversity-only, non-adaptive strategy of Section V-C.
func HTAGREDiv(in *core.Instance, opts ...Option) (*Result, error) {
	div, err := in.WithUniformWeights(1, 0)
	if err != nil {
		return nil, err
	}
	res, err := run(div, "hta-gre-div", true, greedyAssign, opts)
	if err != nil {
		return nil, err
	}
	// Report the objective under the original weights.
	res.Objective = in.Objective(res.Assignment)
	return res, nil
}

// HTAGRERel runs HTA-GRE with every worker's weights forced to α=0, β=1 —
// the relevance-only, non-adaptive strategy of Section V-C.
func HTAGRERel(in *core.Instance, opts ...Option) (*Result, error) {
	rel, err := in.WithUniformWeights(0, 1)
	if err != nil {
		return nil, err
	}
	res, err := run(rel, "hta-gre-rel", true, greedyAssign, opts)
	if err != nil {
		return nil, err
	}
	res.Objective = in.Objective(res.Assignment)
	return res, nil
}

// precomputeMinTasks gates the eager diversity precompute inside run: with
// WithParallelism on, the full O(|T|²) distance materialization only pays
// for itself when the downstream solver re-reads enough pairs. GRE-family
// solvers read each pair at most a handful of times and small instances
// finish before the cache fill amortizes — BENCH_PR1.json recorded exactly
// that serial regression (GRE slower WITH the kernel at every size). So run
// precomputes eagerly only for non-greedy solvers on instances of at least
// this many tasks; everything else computes distances on demand (the lazy
// path is pure and thread-safe, so parallel phases stay correct without the
// cache). WithEagerPrecompute restores the old unconditional behavior, and
// instances already carrying a cache (adaptive's cross-iteration kernel)
// are unaffected. The threshold is documented in DESIGN.md.
const precomputeMinTasks = 512

// run is the shared pipeline of Algorithms 1 and 2; assign solves the
// auxiliary LSAP (Line 11), the only step in which they differ, with the
// run's parallelism level (1 when the kernel is off) and the run config.
// greFamily marks the greedy solvers for the precompute gate above.
func run(in *core.Instance, name string, greFamily bool, assign func(lsap.Costs, int, *config) lsap.Solution, opts []Option) (*Result, error) {
	cfg := newConfig(opts)
	if !in.Dist.Metric() && !cfg.allowNonMetric {
		return nil, fmt.Errorf("solver: %s on %q distance: %w", name, in.Dist.Name(), core.ErrNonMetric)
	}
	start := time.Now()
	ctx, runSpan := trace.Start(cfg.ctx, "solver.run",
		trace.Str("algorithm", name),
		trace.Int("tasks", in.NumTasks()),
		trace.Int("workers", in.NumWorkers()),
		trace.Int("xmax", in.Xmax))
	defer runSpan.End()

	// Kernel phase: materialize the pairwise distance matrix once, before
	// the permuted view is taken so the view reads through the base cache.
	// Every later Diversity read — matching weights, bM profits, the flip's
	// objective — becomes an O(1) lookup of the exact float64 the serial
	// path would have computed. The span is emitted even when the
	// precomputeMinTasks gate skips the fill, so every trace shows all four
	// pipeline phases.
	p := cfg.parallel
	doPrecompute := p > 0 && !in.HasDiversityCache() &&
		(cfg.eagerPrecompute || (!greFamily && in.NumTasks() >= precomputeMinTasks))
	var precomputeTime time.Duration
	endPrecompute := startPhase(ctx, "solver.precompute", phasePrecompute,
		trace.Bool("skipped", !doPrecompute))
	if doPrecompute {
		in.Precompute(p)
		precomputeTime = endPrecompute()
	} else {
		endPrecompute()
	}
	if p < 1 {
		p = 1
	}

	// Randomize task indexing so that ties in the auxiliary LSAP (identical
	// tasks from the same group have identical profits) break uniformly
	// instead of packing runs of clones into one worker's set. See
	// WithoutTaskShuffle.
	solveIn := in
	var taskPerm []int
	if !cfg.skipShuffle && in.NumTasks() > 1 {
		taskPerm = cfg.rng.Perm(in.NumTasks())
		var err error
		solveIn, err = in.Permuted(taskPerm)
		if err != nil {
			return nil, fmt.Errorf("solver: %s: %w", name, err)
		}
	}
	m := qap.NewMapping(solveIn)

	// Line 2: matching M_B on the diversity graph over the real tasks.
	// Virtual padding tasks have zero diversity to everything, so excluding
	// them from the matching changes no weight.
	matcher := cfg.matcher
	if matcher == nil {
		matcher = func(n int, w matching.WeightFunc) matching.Matching {
			return matching.AutoP(n, w, p)
		}
	}
	endMatching := startPhase(ctx, "solver.matching", phaseMatching)
	mb := matcher(m.NumReal(), solveIn.Diversity)
	matchingTime := endMatching(trace.Int("edges", len(mb.Edges())))

	// Lines 3–10: auxiliary LSAP profits
	// f[k][l] = bM(t_k)·degA(l) + c[k][l].
	costs := newAuxCosts(m, mb, p)

	// Line 11: solve the LSAP (class-collapsed Hungarian for APP, greedy
	// for GRE).
	endLSAP := startPhase(ctx, "solver.lsap", phaseLSAP)
	sol := assign(costs, p, cfg)
	lsapTime := endLSAP()
	perm := sol.RowToCol

	// Lines 12–16: for each matched pair, flip the two assigned vertices
	// with probability ½. The flip is the randomized rounding that yields
	// the expected approximation factor.
	endFlip := startPhase(ctx, "solver.flip", phaseFlip,
		trace.Bool("skipped", cfg.skipFlip))
	if !cfg.skipFlip {
		for _, e := range mb.Edges() {
			if cfg.rng.Intn(2) == 0 {
				perm[e[0]], perm[e[1]] = perm[e[1]], perm[e[0]]
			}
		}
	}
	endFlip()

	// Lines 17–18: translate the permutation into per-worker task sets,
	// mapping shuffled task indices back to the caller's.
	a := m.AssignmentFromPerm(perm)
	if taskPerm != nil {
		for q, set := range a.Sets {
			for i, k := range set {
				a.Sets[q][i] = taskPerm[k]
			}
		}
	}
	res := &Result{
		Assignment:     a,
		Objective:      in.Objective(a),
		Algorithm:      name,
		MatchingTime:   matchingTime,
		LSAPTime:       lsapTime,
		TotalTime:      time.Since(start),
		PrecomputeTime: precomputeTime,
	}
	runSpan.SetAttrs(trace.Float("objective", res.Objective))
	recordRunMetrics(in, res)
	return res, nil
}

// auxCosts is the auxiliary LSAP profit matrix of Algorithm 1, Lines 3–10:
// f[k][l] = bM(t_k)·degA(l) + c[k][l]. Columns of the same worker clique
// have identical profiles and columns beyond the cliques are all zero, so
// the matrix is exposed to the LSAP solvers as |W|+1 column classes.
type auxCosts struct {
	m          *qap.Mapping
	bM         []float64 // weight of the M_B edge incident to each task, 0 if unmatched/virtual
	n          int
	numWorkers int
	xmax       int
}

func newAuxCosts(m *qap.Mapping, mb matching.Matching, p int) *auxCosts {
	in := m.Instance()
	bM := m.MatchedEdgeWeights(mb.Mate, p)
	return &auxCosts{m: m, bM: bM, n: m.N(), numWorkers: in.NumWorkers(), xmax: in.Xmax}
}

func (a *auxCosts) N() int { return a.n }

func (a *auxCosts) At(k, l int) float64 { return a.AtClass(k, a.Class(l)) }

// NumClasses returns |W|+1: one class per worker clique plus the isolated
// (zero-profit) class. Delegates to the mapping's class metadata.
func (a *auxCosts) NumClasses() int { return a.m.NumClasses() }

func (a *auxCosts) Class(l int) int { return a.m.ClassOf(l) }

func (a *auxCosts) AtClass(k, class int) float64 {
	if class == a.numWorkers {
		return 0
	}
	in := a.m.Instance()
	w := in.Workers[class]
	degA := float64(a.xmax-1) * w.Alpha
	profit := a.bM[k] * degA
	if k < a.m.NumReal() {
		profit += w.Beta * in.Relevance(class, k) * float64(a.xmax-1)
	}
	return profit
}

var _ lsap.ColumnClassed = (*auxCosts)(nil)

// Random assigns Xmax uniformly random tasks to each worker (the cold-start
// strategy of Section V-C and a baseline for the objective value). It never
// fails: with fewer tasks than slots, later workers receive fewer tasks.
func Random(in *core.Instance, r *rand.Rand) *Result {
	start := time.Now()
	perm := r.Perm(in.NumTasks())
	a := core.NewAssignment(in.NumWorkers())
	idx := 0
	for q := 0; q < in.NumWorkers() && idx < len(perm); q++ {
		take := in.Xmax
		if rest := len(perm) - idx; take > rest {
			take = rest
		}
		a.Sets[q] = append(a.Sets[q], perm[idx:idx+take]...)
		idx += take
	}
	return &Result{
		Assignment: a,
		Objective:  in.Objective(a),
		Algorithm:  "random",
		TotalTime:  time.Since(start),
	}
}

// ErrTooLarge is returned by Exact when the search space exceeds its
// enumeration budget.
var ErrTooLarge = errors.New("solver: instance too large for exact enumeration")

// Exact computes an optimal HTA assignment by exhaustive enumeration over
// all ways to assign each task to a worker or leave it unassigned,
// respecting C1. Intended for approximation-factor tests; returns
// ErrTooLarge when (|W|+1)^|T| exceeds ~10⁷ states.
func Exact(in *core.Instance) (*Result, error) {
	start := time.Now()
	numTasks, numWorkers := in.NumTasks(), in.NumWorkers()
	if math.Pow(float64(numWorkers+1), float64(numTasks)) > 1e7 {
		return nil, fmt.Errorf("%w: (%d+1)^%d states", ErrTooLarge, numWorkers, numTasks)
	}
	choice := make([]int, numTasks) // worker index, or numWorkers for unassigned
	load := make([]int, numWorkers)
	best := core.NewAssignment(numWorkers)
	bestVal := math.Inf(-1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == numTasks {
			a := core.NewAssignment(numWorkers)
			for t, q := range choice {
				if q < numWorkers {
					a.Sets[q] = append(a.Sets[q], t)
				}
			}
			if v := in.Objective(a); v > bestVal {
				bestVal = v
				best = a
			}
			return
		}
		for q := 0; q <= numWorkers; q++ {
			if q < numWorkers {
				if load[q] == in.Xmax {
					continue
				}
				load[q]++
			}
			choice[k] = q
			recurse(k + 1)
			if q < numWorkers {
				load[q]--
			}
		}
	}
	recurse(0)
	return &Result{
		Assignment: best,
		Objective:  bestVal,
		Algorithm:  "exact",
		TotalTime:  time.Since(start),
	}, nil
}
