package solver

import (
	"math"
	"math/rand"
	"testing"
)

func TestGreedyMotivFeasible(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		numWorkers := 1 + r.Intn(4)
		xmax := 1 + r.Intn(4)
		numTasks := 1 + r.Intn(numWorkers*xmax+5)
		in := randInstance(t, r, numTasks, numWorkers, xmax, 12)
		res := GreedyMotiv(in)
		if err := res.Assignment.Validate(in); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(res.Objective-in.Objective(res.Assignment)) > 1e-9 {
			t.Fatalf("trial %d: objective mismatch", trial)
		}
	}
}

func TestGreedyMotivFillsSlots(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	in := randInstance(t, r, 20, 2, 4, 12)
	res := GreedyMotiv(in)
	if res.Assignment.AssignedCount() != 8 {
		t.Fatalf("assigned %d, want 8", res.Assignment.AssignedCount())
	}
}

func TestGreedyMotivNeverExceedsExact(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		in := randInstance(t, r, 6, 2, 2, 8)
		opt, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		g := GreedyMotiv(in)
		if g.Objective > opt.Objective+1e-9 {
			t.Fatalf("trial %d: greedy-motiv %g beats exact %g", trial, g.Objective, opt.Objective)
		}
	}
}

func TestLocalSearchNeverWorsens(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 15; trial++ {
		in := randInstance(t, r, 16, 2, 4, 12)
		res, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(int64(trial)))))
		if err != nil {
			t.Fatal(err)
		}
		before := res.Objective
		after := LocalSearch(in, res.Assignment, 3)
		if after < before-1e-9 {
			t.Fatalf("trial %d: local search worsened %g -> %g", trial, before, after)
		}
		if err := res.Assignment.Validate(in); err != nil {
			t.Fatalf("trial %d: local search broke feasibility: %v", trial, err)
		}
		if math.Abs(after-in.Objective(res.Assignment)) > 1e-9 {
			t.Fatalf("trial %d: reported %g != recomputed %g", trial, after, in.Objective(res.Assignment))
		}
	}
}

func TestLocalSearchReachesExactOnTiny(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	matched := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		in := randInstance(t, r, 5, 1, 3, 8)
		opt, err := Exact(in)
		if err != nil {
			t.Fatal(err)
		}
		res, err := HTAGRE(in)
		if err != nil {
			t.Fatal(err)
		}
		after := LocalSearch(in, res.Assignment, 10)
		if after > opt.Objective+1e-9 {
			t.Fatalf("trial %d: local search %g beats exact %g", trial, after, opt.Objective)
		}
		if math.Abs(after-opt.Objective) < 1e-9 {
			matched++
		}
	}
	// Single-worker instances: replace+fill moves explore enough that most
	// runs should reach the optimum.
	if matched < trials/2 {
		t.Errorf("local search matched the optimum in only %d/%d single-worker trials", matched, trials)
	}
}

func TestHTAGREPlusImprovesOrEquals(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 8; trial++ {
		in := randInstance(t, r, 24, 3, 4, 16)
		base, err := HTAGRE(in, WithRand(rand.New(rand.NewSource(9))))
		if err != nil {
			t.Fatal(err)
		}
		plus, err := HTAGREPlus(in, WithRand(rand.New(rand.NewSource(9))))
		if err != nil {
			t.Fatal(err)
		}
		if plus.Objective < base.Objective-1e-9 {
			t.Fatalf("trial %d: gre+ls %g below gre %g", trial, plus.Objective, base.Objective)
		}
		if plus.Algorithm != "hta-gre+ls" {
			t.Fatalf("algorithm = %q", plus.Algorithm)
		}
		if err := plus.Assignment.Validate(in); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGreedyMotivComparableToGRE(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	var greedySum, greSum float64
	for trial := 0; trial < 10; trial++ {
		in := randInstance(t, r, 30, 3, 5, 16)
		greedySum += GreedyMotiv(in).Objective
		res, err := HTAGRE(in)
		if err != nil {
			t.Fatal(err)
		}
		greSum += res.Objective
	}
	// Neither should collapse relative to the other.
	if greedySum < 0.5*greSum || greSum < 0.5*greedySum {
		t.Errorf("baseline balance off: greedy-motiv %g vs gre %g", greedySum, greSum)
	}
}
