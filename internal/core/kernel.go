// The distance kernel: reusing pairwise diversities across the instances
// of an adaptive session. Each iteration of the adaptive engine solves a
// fresh Instance over a task pool that overlaps heavily with the previous
// iteration's (completed tasks drop out, occasionally new tasks arrive), so
// recomputing the full pairwise distance matrix every iteration throws away
// almost all of the previous iteration's work. DistKernel carries the
// packed matrix forward: surviving pairs are copied, only pairs touching
// new tasks are computed.
package core

import (
	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/par"
)

// DistKernel retains the precomputed pairwise diversity matrix of the most
// recent instance and seeds the next instance's matrix from it. Pairs whose
// tasks both survive are never recomputed; pairs involving tasks that left
// the pool are dropped with the superseded snapshot (incremental
// invalidation by omission — no scan, no tombstones).
//
// Tasks are identified by Task.ID, which must be unique within an instance
// and stable across instances (the adaptive engine enforces both). The
// kernel is meant for keyword-backed instances; for oracle-backed instances
// (NewCustomInstance) it degrades to a plain Precompute without reuse,
// since the synthetic task IDs of unrelated custom instances collide.
//
// A DistKernel is owned by one assignment loop and is not safe for
// concurrent use.
type DistKernel struct {
	idx  map[string]int // task ID → index into the retained snapshot
	vals []float64      // packed lower triangle of the retained snapshot
}

// NewDistKernel returns an empty kernel.
func NewDistKernel() *DistKernel {
	return &DistKernel{idx: make(map[string]int)}
}

// Tasks returns how many tasks the retained snapshot covers.
func (dk *DistKernel) Tasks() int { return len(dk.idx) }

// Pairs returns how many pairwise distances the retained snapshot holds.
func (dk *DistKernel) Pairs() int { return len(dk.vals) }

// Reset drops the retained snapshot.
func (dk *DistKernel) Reset() {
	dk.idx = make(map[string]int)
	dk.vals = nil
}

// Precompute fills in's diversity cache like Instance.Precompute — same
// packed layout, same values, p goroutines (p >= 1 literal, p <= 0 →
// runtime.NumCPU()) — but copies every pair already known to the kernel
// instead of recomputing it, then retains in's matrix as the snapshot for
// the next call. It reports how many pairs were reused from the snapshot
// and how many were freshly computed.
//
// If in already has a diversity cache, the kernel adopts it as the new
// snapshot without any work (reused = 0, computed = 0).
func (dk *DistKernel) Precompute(in *Instance, p int) (reused, computed int) {
	if in.div == nil {
		return 0, 0
	}
	if vals := in.cachedDiv(); vals != nil {
		dk.retain(in, vals)
		return 0, 0
	}
	n := in.NumTasks()
	totalPairs := n * (n - 1) / 2
	if in.divFn != nil {
		// Oracle-backed instance: IDs are synthetic, reuse would be unsound.
		in.Precompute(p)
		dk.retain(in, in.cachedDiv())
		return 0, totalPairs
	}

	vals := make([]float64, totalPairs)
	survivors := 0
	if n >= 2 {
		// prev[k] is the snapshot index of task k, or -1 when unseen.
		prev := make([]int, n)
		keys := make([]*bitset.Set, n)
		for k, t := range in.Tasks {
			keys[k] = t.Keywords
			if oldIdx, ok := dk.idx[t.ID]; ok {
				prev[k] = oldIdx
				survivors++
			} else {
				prev[k] = -1
			}
		}
		old := dk.vals
		rd, hasRow := in.Dist.(metric.RowDistancer)
		par.DoWeighted(n, p, func(k int) int { return k }, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				row := vals[triIndex(k, 0) : triIndex(k, 0)+k]
				pk := prev[k]
				if pk < 0 {
					// Entirely new task: the whole row is fresh.
					if hasRow {
						rd.DistanceRow(keys[k], keys[:k], row)
					} else {
						for l := 0; l < k; l++ {
							row[l] = in.Dist.Distance(keys[k], keys[l])
						}
					}
					continue
				}
				for l := 0; l < k; l++ {
					if pl := prev[l]; pl >= 0 {
						a, b := pk, pl
						if a < b {
							a, b = b, a
						}
						row[l] = old[triIndex(a, b)]
					} else {
						row[l] = in.Dist.Distance(keys[k], keys[l])
					}
				}
			}
		})
	}
	in.div.once.Do(func() { in.div.vals.Store(&vals) })
	// Adopt whatever the instance actually published (a concurrent
	// Instance.Precompute could have won the once) so the snapshot always
	// matches what future reads of this instance return.
	dk.retain(in, in.cachedDiv())
	reused = survivors * (survivors - 1) / 2
	return reused, totalPairs - reused
}

// retain snapshots the instance's published matrix for the next call.
func (dk *DistKernel) retain(in *Instance, vals []float64) {
	idx := make(map[string]int, len(in.Tasks))
	for k, t := range in.Tasks {
		idx[t.ID] = k
	}
	dk.idx = idx
	dk.vals = vals
}
