package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/metric"
)

func randKeywordInstance(t *testing.T, r *rand.Rand, numTasks, universe int) *Instance {
	t.Helper()
	tasks := make([]*Task, numTasks)
	for i := range tasks {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(3) == 0 {
				kw.Add(k)
			}
		}
		tasks[i] = &Task{Keywords: kw}
	}
	workers := []*Worker{mkWorker("w0", 0.5, universe, 0)}
	in, err := NewInstance(tasks, workers, 2, metric.Jaccard{})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

// TestPrecomputeBitIdentical is the kernel's core contract: every cached
// entry equals the exact float64 Dist.Distance returns for that pair, at
// every parallelism level, and Diversity keeps returning it.
func TestPrecomputeBitIdentical(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		r := rand.New(rand.NewSource(11))
		in := randKeywordInstance(t, r, 40, 32)
		want := make([][]float64, 40)
		for k := range want {
			want[k] = make([]float64, 40)
			for l := 0; l < 40; l++ {
				if k != l {
					want[k][l] = in.Dist.Distance(in.Tasks[k].Keywords, in.Tasks[l].Keywords)
				}
			}
		}
		in.Precompute(p)
		if !in.HasDiversityCache() {
			t.Fatalf("p=%d: Precompute left no cache", p)
		}
		for k := 0; k < 40; k++ {
			for l := 0; l < 40; l++ {
				if got := in.Diversity(k, l); got != want[k][l] {
					t.Fatalf("p=%d: Diversity(%d,%d) = %v, want %v", p, k, l, got, want[k][l])
				}
			}
		}
	}
}

// TestPrecomputePropertyRandomSizes fuzzes sizes and densities: for any
// instance the cached triangle must agree bit-for-bit with the direct
// per-pair distance.
func TestPrecomputePropertyRandomSizes(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		numTasks := 1 + r.Intn(25)
		universe := 1 + r.Intn(90)
		in := randKeywordInstance(t, r, numTasks, universe)
		in.Precompute(1 + r.Intn(4))
		for k := 0; k < numTasks; k++ {
			for l := 0; l < k; l++ {
				want := in.Dist.Distance(in.Tasks[k].Keywords, in.Tasks[l].Keywords)
				if got := in.Diversity(k, l); got != want {
					t.Fatalf("trial %d: Diversity(%d,%d) = %v, want %v", trial, k, l, got, want)
				}
				if got := in.Diversity(l, k); got != want {
					t.Fatalf("trial %d: Diversity(%d,%d) = %v, want %v (symmetry)", trial, l, k, got, want)
				}
			}
			if got := in.Diversity(k, k); got != 0 {
				t.Fatalf("trial %d: Diversity(%d,%d) = %v, want 0", trial, k, k, got)
			}
		}
	}
}

// TestPermutedReadsThroughCache: a permuted view of a precomputed instance
// must serve cached values through the permutation without re-deriving them.
func TestPermutedReadsThroughCache(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	in := randKeywordInstance(t, r, 20, 24)
	in.Precompute(2)
	perm := r.Perm(20)
	view, err := in.Permuted(perm)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		for l := 0; l < 20; l++ {
			if got, want := view.Diversity(k, l), in.Diversity(perm[k], perm[l]); got != want {
				t.Fatalf("view.Diversity(%d,%d) = %v, want base(%d,%d) = %v",
					k, l, got, perm[k], perm[l], want)
			}
		}
	}
}

// TestSetDiversityCachedMatchesUncached: the cached SetDiversity fast path
// must sum the same values in the same order as the uncached path.
func TestSetDiversityCachedMatchesUncached(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	in := randKeywordInstance(t, r, 30, 24)
	sets := make([][]int, 10)
	for i := range sets {
		set := r.Perm(30)[:2+r.Intn(6)]
		sets[i] = set
	}
	before := make([]float64, len(sets))
	for i, set := range sets {
		before[i] = in.SetDiversity(set)
	}
	in.Precompute(4)
	for i, set := range sets {
		if got := in.SetDiversity(set); got != before[i] {
			t.Fatalf("set %v: cached SetDiversity %v != uncached %v", set, got, before[i])
		}
	}
}

// TestPrecomputeOracleInstance: custom (oracle-backed) instances cache their
// divFn values too.
func TestPrecomputeOracleInstance(t *testing.T) {
	div := func(k, l int) float64 {
		if k == l {
			return 0
		}
		return float64(k+l) / 10
	}
	workers := []*Worker{mkWorker("w0", 0.5, 4, 0)}
	in, err := NewCustomInstance(6, workers, 2, [][]float64{{0, 0, 0, 0, 0, 0}}, div, false)
	if err != nil {
		t.Fatal(err)
	}
	in.Precompute(2)
	if !in.HasDiversityCache() {
		t.Fatal("no cache after Precompute")
	}
	for k := 0; k < 6; k++ {
		for l := 0; l < 6; l++ {
			want := div(k, l)
			if k == l {
				want = 0
			}
			if got := in.Diversity(k, l); got != want {
				t.Fatalf("Diversity(%d,%d) = %v, want %v", k, l, got, want)
			}
		}
	}
}

// TestUniformWeightsSharesCache: the WithUniformWeights copy used by the
// DIV/REL strategies must see (and lazily share) the base instance's cache.
func TestUniformWeightsSharesCache(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	in := randKeywordInstance(t, r, 15, 24)
	out, err := in.WithUniformWeights(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	in.Precompute(2)
	if !out.HasDiversityCache() {
		t.Fatal("uniform-weights copy does not see the base cache")
	}
	for k := 0; k < 15; k++ {
		for l := 0; l < 15; l++ {
			if got, want := out.Diversity(k, l), in.Diversity(k, l); got != want {
				t.Fatalf("copy.Diversity(%d,%d) = %v, want %v", k, l, got, want)
			}
		}
	}
}

// TestConcurrentPrecompute: concurrent first Precomputes must publish exactly
// one matrix; run under -race this also proves the publication is sound.
func TestConcurrentPrecompute(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	in := randKeywordInstance(t, r, 30, 24)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			in.Precompute(1 + p%3)
		}(i)
	}
	wg.Wait()
	for k := 0; k < 30; k++ {
		for l := 0; l < k; l++ {
			want := in.Dist.Distance(in.Tasks[k].Keywords, in.Tasks[l].Keywords)
			if got := in.Diversity(k, l); got != want {
				t.Fatalf("Diversity(%d,%d) = %v, want %v", k, l, got, want)
			}
		}
	}
}

// TestDistKernelReuse drives the cross-iteration path: iteration 2 keeps a
// survivor subset and adds new tasks; the kernel must report exactly the
// survivor-pair count as reused and every value must equal the direct
// distance (carried-forward floats included).
func TestDistKernelReuse(t *testing.T) {
	universe := 24
	mk := func(id string, r *rand.Rand) *Task {
		kw := bitset.New(universe)
		for k := 0; k < universe; k++ {
			if r.Intn(3) == 0 {
				kw.Add(k)
			}
		}
		return &Task{ID: id, Keywords: kw}
	}
	r := rand.New(rand.NewSource(47))
	pool := make([]*Task, 12)
	for i := range pool {
		pool[i] = mk(string(rune('a'+i)), r)
	}
	workers := []*Worker{mkWorker("w0", 0.5, universe, 0)}

	dk := NewDistKernel()
	in1, err := NewInstance(pool, workers, 2, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	reused, computed := dk.Precompute(in1, 2)
	if reused != 0 || computed != 12*11/2 {
		t.Fatalf("iteration 1: reused %d computed %d, want 0 and %d", reused, computed, 12*11/2)
	}
	if dk.Tasks() != 12 {
		t.Fatalf("snapshot covers %d tasks, want 12", dk.Tasks())
	}

	// Iteration 2: 7 survivors (tasks 3..9), 4 new tasks — dropped tasks are
	// invalidated by omission.
	next := append(append([]*Task(nil), pool[3:10]...),
		mk("n0", r), mk("n1", r), mk("n2", r), mk("n3", r))
	in2, err := NewInstance(next, workers, 2, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	reused, computed = dk.Precompute(in2, 3)
	wantReused := 7 * 6 / 2
	wantComputed := 11*10/2 - wantReused
	if reused != wantReused || computed != wantComputed {
		t.Fatalf("iteration 2: reused %d computed %d, want %d and %d",
			reused, computed, wantReused, wantComputed)
	}
	for k := 0; k < len(next); k++ {
		for l := 0; l < k; l++ {
			want := in2.Dist.Distance(next[k].Keywords, next[l].Keywords)
			if got := in2.Diversity(k, l); got != want {
				t.Fatalf("iteration 2: Diversity(%d,%d) = %v, want %v", k, l, got, want)
			}
		}
	}
	if dk.Tasks() != 11 {
		t.Fatalf("snapshot covers %d tasks, want 11 (dropped tasks invalidated)", dk.Tasks())
	}

	// Already-cached instances are adopted without work.
	reused, computed = dk.Precompute(in2, 1)
	if reused != 0 || computed != 0 {
		t.Fatalf("cached instance: reused %d computed %d, want 0 and 0", reused, computed)
	}

	dk.Reset()
	if dk.Tasks() != 0 || dk.Pairs() != 0 {
		t.Fatal("Reset left snapshot state behind")
	}
}

// TestDistKernelMatchesPlainPrecompute: an instance filled through the kernel
// must be indistinguishable from one filled by Instance.Precompute.
func TestDistKernelMatchesPlainPrecompute(t *testing.T) {
	mkPool := func() []*Task {
		r := rand.New(rand.NewSource(53))
		pool := make([]*Task, 18)
		for i := range pool {
			kw := bitset.New(30)
			for k := 0; k < 30; k++ {
				if r.Intn(3) == 0 {
					kw.Add(k)
				}
			}
			pool[i] = &Task{ID: string(rune('A' + i)), Keywords: kw}
		}
		return pool
	}
	workers := []*Worker{mkWorker("w0", 0.5, 30, 0)}
	plain, err := NewInstance(mkPool(), workers, 2, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	plain.Precompute(1)

	dk := NewDistKernel()
	// Warm the kernel with a prefix pool so the second call exercises reuse.
	warm, err := NewInstance(mkPool()[:10], workers, 2, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	dk.Precompute(warm, 2)
	viaKernel, err := NewInstance(mkPool(), workers, 2, metric.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	if reused, _ := dk.Precompute(viaKernel, 2); reused != 10*9/2 {
		t.Fatalf("reused %d pairs, want %d", reused, 10*9/2)
	}
	for k := 0; k < 18; k++ {
		for l := 0; l < 18; l++ {
			if got, want := viaKernel.Diversity(k, l), plain.Diversity(k, l); got != want {
				t.Fatalf("Diversity(%d,%d) = %v via kernel, want %v", k, l, got, want)
			}
		}
	}
}
