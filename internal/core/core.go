// Package core defines the data model of motivation-aware task assignment:
// tasks, workers, HTA problem instances, the motivation objective of
// Equation 3, and assignments with the paper's feasibility constraints
// C1 (per-worker capacity Xmax) and C2 (disjointness).
//
// An Instance is immutable once built; solvers read it concurrently.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/par"
)

// Task is a unit of crowd work described by a Boolean keyword vector
// (Section II). Group links tasks crawled/generated from the same task
// group; Reward is the micro-payment in dollars. Deadline, when non-zero,
// is the absolute UnixNano instant after which the task is worthless:
// streaming buffers expire it rather than assign it. Zero means the task
// never expires (every pre-deadline workload). The engine only ever
// compares deadlines against a caller-supplied clock, so deterministic
// replays can drive time explicitly.
type Task struct {
	ID       string
	Group    string
	Reward   float64
	Keywords *bitset.Set
	Deadline int64
}

// Worker is a crowd worker with expressed keyword interests and motivation
// weights α (task diversity) and β (task relevance), α+β = 1 (Equation 3).
type Worker struct {
	ID       string
	Keywords *bitset.Set
	Alpha    float64
	Beta     float64
}

// NormalizeWeights clamps Alpha and Beta to [0,1] and rescales them to sum
// to 1. If both are zero it splits evenly, matching the neutral prior used
// by the adaptive engine before any observation.
func (w *Worker) NormalizeWeights() {
	a := math.Max(0, w.Alpha)
	b := math.Max(0, w.Beta)
	if a+b == 0 {
		w.Alpha, w.Beta = 0.5, 0.5
		return
	}
	w.Alpha, w.Beta = a/(a+b), b/(a+b)
}

// Instance is one HTA problem: the tasks and workers available at an
// iteration, the capacity Xmax, and the diversity distance.
type Instance struct {
	Tasks   []*Task
	Workers []*Worker
	Xmax    int
	Dist    metric.Distance

	rel   [][]float64            // rel[q][k] = rel(t_k, w_q), precomputed
	divFn func(k, l int) float64 // nil → compute from keyword bitsets
	div   *divCache              // optional packed pairwise-distance matrix
}

// divCache holds the precomputed pairwise diversity matrix in packed
// lower-triangular form: vals[k*(k-1)/2 + l] = d(t_k, t_l) for k > l.
// It lives behind a pointer so Instance copies (WithUniformWeights) share
// one cache, and behind an atomic so concurrent solvers can race a first
// Precompute against cache reads safely: readers either see the finished
// matrix or fall back to on-demand computation of the very same values.
type divCache struct {
	once sync.Once
	vals atomic.Pointer[[]float64]
}

// cachedDiv returns the packed matrix, or nil when not (yet) precomputed.
func (in *Instance) cachedDiv() []float64 {
	if in.div == nil {
		return nil
	}
	if p := in.div.vals.Load(); p != nil {
		return *p
	}
	return nil
}

// triIndex is the packed lower-triangular offset of pair (k, l), k > l.
func triIndex(k, l int) int { return k*(k-1)/2 + l }

// Precompute materializes the pairwise diversity matrix once, sharding
// triangular row blocks across p goroutines (p >= 1 is literal, p <= 0
// means runtime.NumCPU()). After it returns, Diversity/SetDiversity/Motiv
// read the cache in O(1) instead of recomputing keyword distances.
//
// The cache stores exactly the values the on-demand path would produce, so
// precomputing never changes solver output — only when distances are
// computed. Memory is |T|·(|T|−1)/2 float64s (≈400 MB at the paper's
// 10,000-task scale), which is why it is opt-in rather than part of
// NewInstance. Idempotent and safe for concurrent use; the first caller
// computes, later callers return once the matrix is published.
func (in *Instance) Precompute(p int) {
	if in.div == nil || in.cachedDiv() != nil {
		return
	}
	in.div.once.Do(func() {
		vals := in.computeTriangle(par.N(p))
		in.div.vals.Store(&vals)
	})
}

// HasDiversityCache reports whether the pairwise diversity matrix has been
// precomputed (by Precompute or a DistKernel).
func (in *Instance) HasDiversityCache() bool { return in.cachedDiv() != nil }

// computeTriangle fills the packed lower triangle with p goroutines. Row k
// holds k entries, so chunks are weight-balanced by row index.
func (in *Instance) computeTriangle(p int) []float64 {
	n := in.NumTasks()
	vals := make([]float64, n*(n-1)/2)
	if n < 2 {
		return vals
	}
	fillRows := in.rowFiller()
	par.DoWeighted(n, p, func(k int) int { return k }, fillRows(vals))
	return vals
}

// rowFiller returns a constructor of chunk workers that fill triangular
// rows [lo, hi) of a packed matrix, choosing the fastest available path:
// explicit oracle, batch row distance, or per-pair distance.
func (in *Instance) rowFiller() func(vals []float64) func(lo, hi int) {
	if in.divFn != nil {
		return func(vals []float64) func(lo, hi int) {
			return func(lo, hi int) {
				for k := lo; k < hi; k++ {
					base := triIndex(k, 0)
					for l := 0; l < k; l++ {
						vals[base+l] = in.divFn(k, l)
					}
				}
			}
		}
	}
	keys := make([]*bitset.Set, len(in.Tasks))
	for k, t := range in.Tasks {
		keys[k] = t.Keywords
	}
	if rd, ok := in.Dist.(metric.RowDistancer); ok {
		return func(vals []float64) func(lo, hi int) {
			return func(lo, hi int) {
				for k := lo; k < hi; k++ {
					base := triIndex(k, 0)
					rd.DistanceRow(keys[k], keys[:k], vals[base:base+k])
				}
			}
		}
	}
	return func(vals []float64) func(lo, hi int) {
		return func(lo, hi int) {
			for k := lo; k < hi; k++ {
				base := triIndex(k, 0)
				for l := 0; l < k; l++ {
					vals[base+l] = in.Dist.Distance(keys[k], keys[l])
				}
			}
		}
	}
}

// ErrNonMetric is wrapped into errors returned when a caller requests an
// approximation guarantee but the configured distance is not a metric.
var ErrNonMetric = errors.New("distance is not a metric; approximation factors do not hold")

// NewInstance validates and builds an Instance, precomputing the
// |W|×|T| relevance matrix (diversities stay on-demand: the |T|² matrix
// would not fit for the paper's 10k-task experiments).
func NewInstance(tasks []*Task, workers []*Worker, xmax int, dist metric.Distance) (*Instance, error) {
	if xmax < 1 {
		return nil, fmt.Errorf("core: Xmax = %d, must be >= 1", xmax)
	}
	if dist == nil {
		return nil, errors.New("core: nil distance")
	}
	for i, t := range tasks {
		if t == nil || t.Keywords == nil {
			return nil, fmt.Errorf("core: task %d is nil or has nil keywords", i)
		}
	}
	seen := make(map[string]bool, len(workers))
	for i, w := range workers {
		if w == nil || w.Keywords == nil {
			return nil, fmt.Errorf("core: worker %d is nil or has nil keywords", i)
		}
		if w.ID != "" && seen[w.ID] {
			return nil, fmt.Errorf("core: duplicate worker id %q", w.ID)
		}
		seen[w.ID] = true
		if err := checkWeights(w); err != nil {
			return nil, err
		}
	}
	inst := &Instance{Tasks: tasks, Workers: workers, Xmax: xmax, Dist: dist, div: &divCache{}}
	inst.rel = make([][]float64, len(workers))
	for q, w := range workers {
		row := make([]float64, len(tasks))
		for k, t := range tasks {
			row[k] = metric.Relevance(dist, t.Keywords, w.Keywords)
		}
		inst.rel[q] = row
	}
	return inst, nil
}

// checkWeights validates a worker's motivation weights. The paper's model
// fixes α+β = 1 (Equation 3), but its own worked example (Example 1 uses
// α=0.6, β=0.3 for w2) relaxes that, and nothing in the algorithms needs
// the equality — so we accept α, β ≥ 0 with α+β ∈ (0, 1].
func checkWeights(w *Worker) error {
	if w.Alpha < -1e-9 || w.Beta < -1e-9 || w.Alpha+w.Beta > 1+1e-6 || w.Alpha+w.Beta <= 0 {
		return fmt.Errorf("core: worker %q has invalid weights α=%g β=%g (need α,β ≥ 0, 0 < α+β ≤ 1)",
			w.ID, w.Alpha, w.Beta)
	}
	return nil
}

// NewCustomInstance builds an instance whose relevance and diversity come
// from explicit oracles instead of keyword vectors: rel[q][k] gives
// rel(t_k, w_q) and div(k, l) the pairwise diversity. It serves worked
// examples from the paper (Table I prescribes relevances directly) and
// platforms where these quantities are measured externally. div must be
// symmetric with div(k,k) = 0; if metricDiv is false the instance reports a
// non-metric distance and solvers lose their approximation guarantees.
func NewCustomInstance(numTasks int, workers []*Worker, xmax int, rel [][]float64, div func(k, l int) float64, metricDiv bool) (*Instance, error) {
	if xmax < 1 {
		return nil, fmt.Errorf("core: Xmax = %d, must be >= 1", xmax)
	}
	if numTasks < 0 {
		return nil, fmt.Errorf("core: numTasks = %d", numTasks)
	}
	if div == nil {
		return nil, errors.New("core: nil diversity oracle")
	}
	if len(rel) != len(workers) {
		return nil, fmt.Errorf("core: relevance table has %d rows for %d workers", len(rel), len(workers))
	}
	for q, w := range workers {
		if w == nil {
			return nil, fmt.Errorf("core: worker %d is nil", q)
		}
		if err := checkWeights(w); err != nil {
			return nil, err
		}
		if len(rel[q]) != numTasks {
			return nil, fmt.Errorf("core: relevance row %d has %d entries for %d tasks", q, len(rel[q]), numTasks)
		}
	}
	tasks := make([]*Task, numTasks)
	for k := range tasks {
		tasks[k] = &Task{ID: fmt.Sprintf("t%d", k)}
	}
	relCopy := make([][]float64, len(rel))
	for q := range rel {
		relCopy[q] = append([]float64(nil), rel[q]...)
	}
	return &Instance{
		Tasks:   tasks,
		Workers: workers,
		Xmax:    xmax,
		Dist:    oracleDistance{metric: metricDiv},
		rel:     relCopy,
		divFn:   div,
		div:     &divCache{},
	}, nil
}

// oracleDistance stands in for Instance.Dist when diversity comes from an
// explicit oracle; it only answers Metric() and Name().
type oracleDistance struct{ metric bool }

func (oracleDistance) Distance(a, b *bitset.Set) float64 {
	panic("core: oracle-backed instance has no keyword distance")
}
func (d oracleDistance) Metric() bool { return d.metric }
func (oracleDistance) Name() string   { return "oracle" }

// WithUniformWeights returns a copy of the instance whose workers all carry
// weights (alpha, beta), sharing the precomputed relevance matrix. It backs
// the paper's non-adaptive baselines HTA-GRE-DIV (α=1, β=0) and
// HTA-GRE-REL (α=0, β=1) from Section V-C.
func (in *Instance) WithUniformWeights(alpha, beta float64) (*Instance, error) {
	probe := &Worker{ID: "probe", Alpha: alpha, Beta: beta}
	if err := checkWeights(probe); err != nil {
		return nil, err
	}
	workers := make([]*Worker, len(in.Workers))
	for q, w := range in.Workers {
		clone := *w
		clone.Alpha, clone.Beta = alpha, beta
		workers[q] = &clone
	}
	out := *in
	out.Workers = workers
	return &out, nil
}

// Permuted returns a view of the instance whose task index i refers to the
// receiver's task perm[i]; workers, weights and Xmax are shared. Solvers
// use a random permutation to break ties: corpora contain many tasks with
// identical keyword vectors (AMT task groups), and with a deterministic
// index order the LSAP's tied profits pack same-group tasks into a single
// worker's clique, collapsing its diversity.
func (in *Instance) Permuted(perm []int) (*Instance, error) {
	n := in.NumTasks()
	if len(perm) != n {
		return nil, fmt.Errorf("core: permutation of length %d for %d tasks", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("core: invalid permutation")
		}
		seen[p] = true
	}
	tasks := make([]*Task, n)
	for i, p := range perm {
		tasks[i] = in.Tasks[p]
	}
	rel := make([][]float64, len(in.rel))
	for q, row := range in.rel {
		newRow := make([]float64, n)
		for i, p := range perm {
			newRow[i] = row[p]
		}
		rel[q] = newRow
	}
	out := &Instance{
		Tasks:   tasks,
		Workers: in.Workers,
		Xmax:    in.Xmax,
		Dist:    in.Dist,
		rel:     rel,
		div:     &divCache{},
	}
	if vals := in.cachedDiv(); vals != nil {
		// Read through the receiver's precomputed matrix instead of
		// recomputing distances for the permuted view. Same float64s,
		// just found at permuted offsets.
		out.divFn = func(k, l int) float64 {
			pk, pl := perm[k], perm[l]
			if pk == pl {
				return 0
			}
			if pk < pl {
				pk, pl = pl, pk
			}
			return vals[triIndex(pk, pl)]
		}
	} else if in.divFn != nil {
		inner := in.divFn
		out.divFn = func(k, l int) float64 { return inner(perm[k], perm[l]) }
	}
	return out, nil
}

// NumTasks returns |T^i|.
func (in *Instance) NumTasks() int { return len(in.Tasks) }

// NumWorkers returns |W^i|.
func (in *Instance) NumWorkers() int { return len(in.Workers) }

// Diversity returns the pairwise task diversity d(t_k, t_l): from the
// precomputed matrix when Precompute has run, otherwise computed on demand
// from the diversity oracle or the keyword bitsets.
func (in *Instance) Diversity(k, l int) float64 {
	if k == l {
		return 0
	}
	if vals := in.cachedDiv(); vals != nil {
		if k < l {
			k, l = l, k
		}
		return vals[triIndex(k, l)]
	}
	if in.divFn != nil {
		return in.divFn(k, l)
	}
	return in.Dist.Distance(in.Tasks[k].Keywords, in.Tasks[l].Keywords)
}

// Relevance returns rel(t_k, w_q) from the precomputed matrix.
func (in *Instance) Relevance(q, k int) float64 { return in.rel[q][k] }

// RelevanceRow returns the precomputed relevance row of worker q. The
// returned slice is shared; callers must not modify it.
func (in *Instance) RelevanceRow(q int) []float64 { return in.rel[q] }

// SetDiversity returns TD(T') = Σ_{k>l} d(t_k, t_l) over the given task
// indices (Equation 1).
func (in *Instance) SetDiversity(taskIdx []int) float64 {
	var td float64
	if vals := in.cachedDiv(); vals != nil {
		for i := 1; i < len(taskIdx); i++ {
			for j := 0; j < i; j++ {
				k, l := taskIdx[i], taskIdx[j]
				if k == l {
					continue
				}
				if k < l {
					k, l = l, k
				}
				td += vals[triIndex(k, l)]
			}
		}
		return td
	}
	for i := 1; i < len(taskIdx); i++ {
		for j := 0; j < i; j++ {
			td += in.Diversity(taskIdx[i], taskIdx[j])
		}
	}
	return td
}

// SetRelevance returns TR(T', w_q) = Σ_{t∈T'} rel(t, w_q) (Equation 2).
func (in *Instance) SetRelevance(q int, taskIdx []int) float64 {
	var tr float64
	for _, k := range taskIdx {
		tr += in.rel[q][k]
	}
	return tr
}

// Motiv returns the expected motivation of worker q for the task set
// (Equation 3):
//
//	motiv(T', w) = 2·α_w·TD(T') + β_w·(|T'|−1)·TR(T', w)
//
// The factors 2 and (|T'|−1) normalize the quadratic and linear parts so
// that neither dominates purely by the number of terms.
func (in *Instance) Motiv(q int, taskIdx []int) float64 {
	if len(taskIdx) == 0 {
		return 0
	}
	w := in.Workers[q]
	return 2*w.Alpha*in.SetDiversity(taskIdx) +
		w.Beta*float64(len(taskIdx)-1)*in.SetRelevance(q, taskIdx)
}

// Assignment maps each worker index to the task indices assigned to it.
// Sets[q] lists the tasks of worker q; tasks absent from every set are
// unassigned (the problem allows |T| > |W|·Xmax).
type Assignment struct {
	Sets [][]int
}

// NewAssignment returns an Assignment with one empty set per worker.
func NewAssignment(numWorkers int) *Assignment {
	return &Assignment{Sets: make([][]int, numWorkers)}
}

// Validate checks the structural constraints of Problem 1 against the
// instance: one set per worker, task indices in range, C1 (|T_w| ≤ Xmax)
// and C2 (pairwise disjointness, each task at most once overall).
func (a *Assignment) Validate(in *Instance) error {
	if len(a.Sets) != in.NumWorkers() {
		return fmt.Errorf("core: assignment has %d sets for %d workers", len(a.Sets), in.NumWorkers())
	}
	used := make(map[int]int, in.NumTasks()) // task -> worker
	for q, set := range a.Sets {
		if len(set) > in.Xmax {
			return fmt.Errorf("core: C1 violated: worker %d has %d tasks > Xmax=%d", q, len(set), in.Xmax)
		}
		for _, k := range set {
			if k < 0 || k >= in.NumTasks() {
				return fmt.Errorf("core: task index %d out of range [0,%d)", k, in.NumTasks())
			}
			if prev, dup := used[k]; dup {
				return fmt.Errorf("core: C2 violated: task %d assigned to workers %d and %d", k, prev, q)
			}
			used[k] = q
		}
	}
	return nil
}

// Objective returns Σ_w motiv(T_w, w), the HTA objective (Problem 1).
func (in *Instance) Objective(a *Assignment) float64 {
	var total float64
	for q, set := range a.Sets {
		total += in.Motiv(q, set)
	}
	return total
}

// AssignedCount returns the total number of assigned tasks.
func (a *Assignment) AssignedCount() int {
	n := 0
	for _, s := range a.Sets {
		n += len(s)
	}
	return n
}

// Unassigned returns the indices of tasks not assigned to any worker,
// in increasing order.
func (a *Assignment) Unassigned(numTasks int) []int {
	used := make([]bool, numTasks)
	for _, s := range a.Sets {
		for _, k := range s {
			if k >= 0 && k < numTasks {
				used[k] = true
			}
		}
	}
	var out []int
	for k, u := range used {
		if !u {
			out = append(out, k)
		}
	}
	return out
}

// Clone returns a deep copy of the assignment.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{Sets: make([][]int, len(a.Sets))}
	for q, s := range a.Sets {
		c.Sets[q] = append([]int(nil), s...)
	}
	return c
}
