package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/metric"
)

func mkTask(id string, n int, kw ...int) *Task {
	return &Task{ID: id, Keywords: bitset.FromIndices(n, kw...)}
}

func mkWorker(id string, alpha float64, n int, kw ...int) *Worker {
	return &Worker{ID: id, Alpha: alpha, Beta: 1 - alpha, Keywords: bitset.FromIndices(n, kw...)}
}

func testInstance(t *testing.T) *Instance {
	t.Helper()
	tasks := []*Task{
		mkTask("t0", 8, 0, 1),
		mkTask("t1", 8, 2, 3),
		mkTask("t2", 8, 0, 2),
		mkTask("t3", 8, 4, 5),
	}
	workers := []*Worker{
		mkWorker("w0", 0.5, 8, 0, 1),
		mkWorker("w1", 1.0, 8, 4),
	}
	in, err := NewInstance(tasks, workers, 2, metric.Jaccard{})
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	task := mkTask("t", 4, 0)
	worker := mkWorker("w", 0.3, 4, 0)
	cases := []struct {
		name    string
		tasks   []*Task
		workers []*Worker
		xmax    int
		dist    metric.Distance
		wantSub string
	}{
		{"zero xmax", []*Task{task}, []*Worker{worker}, 0, metric.Jaccard{}, "Xmax"},
		{"nil dist", []*Task{task}, []*Worker{worker}, 1, nil, "nil distance"},
		{"nil task", []*Task{nil}, []*Worker{worker}, 1, metric.Jaccard{}, "task 0"},
		{"nil worker kw", []*Task{task}, []*Worker{{ID: "x", Alpha: 0.5, Beta: 0.5}}, 1, metric.Jaccard{}, "worker 0"},
		{"bad weights", []*Task{task}, []*Worker{{ID: "x", Alpha: 0.9, Beta: 0.9, Keywords: bitset.New(4)}}, 1, metric.Jaccard{}, "invalid weights"},
		{"dup ids", []*Task{task}, []*Worker{worker, mkWorker("w", 0.3, 4, 1)}, 1, metric.Jaccard{}, "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NewInstance(c.tasks, c.workers, c.xmax, c.dist)
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("err = %v, want substring %q", err, c.wantSub)
			}
		})
	}
}

func TestNormalizeWeights(t *testing.T) {
	w := &Worker{Alpha: 3, Beta: 1}
	w.NormalizeWeights()
	if math.Abs(w.Alpha-0.75) > 1e-12 || math.Abs(w.Beta-0.25) > 1e-12 {
		t.Errorf("weights = (%g,%g), want (0.75,0.25)", w.Alpha, w.Beta)
	}
	w = &Worker{Alpha: 0, Beta: 0}
	w.NormalizeWeights()
	if w.Alpha != 0.5 || w.Beta != 0.5 {
		t.Errorf("zero weights normalize to (%g,%g), want (0.5,0.5)", w.Alpha, w.Beta)
	}
	w = &Worker{Alpha: -0.2, Beta: 0.4}
	w.NormalizeWeights()
	if w.Alpha != 0 || w.Beta != 1 {
		t.Errorf("negative alpha normalizes to (%g,%g), want (0,1)", w.Alpha, w.Beta)
	}
}

func TestDiversityAndRelevance(t *testing.T) {
	in := testInstance(t)
	// t0={0,1}, t2={0,2}: |∩|=1, |∪|=3 → d = 2/3.
	if got := in.Diversity(0, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Diversity(0,2) = %g, want 2/3", got)
	}
	if got := in.Diversity(1, 1); got != 0 {
		t.Errorf("Diversity(k,k) = %g, want 0", got)
	}
	// w0={0,1} vs t0={0,1}: rel = 1.
	if got := in.Relevance(0, 0); got != 1 {
		t.Errorf("Relevance(w0,t0) = %g, want 1", got)
	}
	// w1={4} vs t3={4,5}: Jaccard = 1 - 1/2 → rel = 0.5.
	if got := in.Relevance(1, 3); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Relevance(w1,t3) = %g, want 0.5", got)
	}
	if got := in.RelevanceRow(1)[3]; got != in.Relevance(1, 3) {
		t.Errorf("RelevanceRow mismatch: %g", got)
	}
}

func TestSetAggregates(t *testing.T) {
	in := testInstance(t)
	set := []int{0, 1, 2}
	wantTD := in.Diversity(0, 1) + in.Diversity(0, 2) + in.Diversity(1, 2)
	if got := in.SetDiversity(set); math.Abs(got-wantTD) > 1e-12 {
		t.Errorf("SetDiversity = %g, want %g", got, wantTD)
	}
	wantTR := in.Relevance(0, 0) + in.Relevance(0, 1) + in.Relevance(0, 2)
	if got := in.SetRelevance(0, set); math.Abs(got-wantTR) > 1e-12 {
		t.Errorf("SetRelevance = %g, want %g", got, wantTR)
	}
}

func TestMotivEquation3(t *testing.T) {
	in := testInstance(t)
	set := []int{0, 1}
	w := in.Workers[0]
	want := 2*w.Alpha*in.SetDiversity(set) + w.Beta*float64(len(set)-1)*in.SetRelevance(0, set)
	if got := in.Motiv(0, set); math.Abs(got-want) > 1e-12 {
		t.Errorf("Motiv = %g, want %g", got, want)
	}
	if got := in.Motiv(0, nil); got != 0 {
		t.Errorf("Motiv(empty) = %g, want 0", got)
	}
	// Singleton: TD = 0 and |T'|−1 = 0 → motiv = 0.
	if got := in.Motiv(0, []int{0}); got != 0 {
		t.Errorf("Motiv(singleton) = %g, want 0", got)
	}
}

func TestAssignmentValidate(t *testing.T) {
	in := testInstance(t)
	ok := &Assignment{Sets: [][]int{{0, 1}, {2, 3}}}
	if err := ok.Validate(in); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	cases := []struct {
		name string
		a    *Assignment
		sub  string
	}{
		{"wrong set count", &Assignment{Sets: [][]int{{0}}}, "sets for"},
		{"over capacity", &Assignment{Sets: [][]int{{0, 1, 2}, nil}}, "C1"},
		{"duplicate across workers", &Assignment{Sets: [][]int{{0, 1}, {1}}}, "C2"},
		{"duplicate same worker", &Assignment{Sets: [][]int{{0, 0}, nil}}, "C2"},
		{"out of range", &Assignment{Sets: [][]int{{9}, nil}}, "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.a.Validate(in)
			if err == nil || !strings.Contains(err.Error(), c.sub) {
				t.Fatalf("err = %v, want substring %q", err, c.sub)
			}
		})
	}
}

func TestObjectiveSumsPerWorkerMotiv(t *testing.T) {
	in := testInstance(t)
	a := &Assignment{Sets: [][]int{{0, 2}, {1, 3}}}
	want := in.Motiv(0, []int{0, 2}) + in.Motiv(1, []int{1, 3})
	if got := in.Objective(a); math.Abs(got-want) > 1e-12 {
		t.Errorf("Objective = %g, want %g", got, want)
	}
}

func TestUnassignedAndCounts(t *testing.T) {
	a := &Assignment{Sets: [][]int{{0, 2}, {3}}}
	if got := a.AssignedCount(); got != 3 {
		t.Errorf("AssignedCount = %d, want 3", got)
	}
	un := a.Unassigned(5)
	if len(un) != 2 || un[0] != 1 || un[1] != 4 {
		t.Errorf("Unassigned = %v, want [1 4]", un)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := &Assignment{Sets: [][]int{{0, 1}, {2}}}
	c := a.Clone()
	c.Sets[0][0] = 9
	if a.Sets[0][0] == 9 {
		t.Fatal("Clone shares backing arrays")
	}
}

func TestNewAssignment(t *testing.T) {
	a := NewAssignment(3)
	if len(a.Sets) != 3 || a.AssignedCount() != 0 {
		t.Fatalf("NewAssignment = %+v", a)
	}
}

func TestNewCustomInstanceValidation(t *testing.T) {
	div := func(k, l int) float64 { return 0 }
	w := &Worker{ID: "w", Alpha: 0.5, Beta: 0.5}
	cases := []struct {
		name string
		call func() error
	}{
		{"zero xmax", func() error {
			_, err := NewCustomInstance(2, []*Worker{w}, 0, [][]float64{{0, 0}}, div, true)
			return err
		}},
		{"negative tasks", func() error {
			_, err := NewCustomInstance(-1, []*Worker{w}, 1, [][]float64{{}}, div, true)
			return err
		}},
		{"nil div", func() error {
			_, err := NewCustomInstance(2, []*Worker{w}, 1, [][]float64{{0, 0}}, nil, true)
			return err
		}},
		{"row count", func() error {
			_, err := NewCustomInstance(2, []*Worker{w}, 1, nil, div, true)
			return err
		}},
		{"row length", func() error {
			_, err := NewCustomInstance(2, []*Worker{w}, 1, [][]float64{{0}}, div, true)
			return err
		}},
		{"nil worker", func() error {
			_, err := NewCustomInstance(2, []*Worker{nil}, 1, [][]float64{{0, 0}}, div, true)
			return err
		}},
		{"bad weights", func() error {
			bad := &Worker{ID: "b", Alpha: 2, Beta: 2}
			_, err := NewCustomInstance(2, []*Worker{bad}, 1, [][]float64{{0, 0}}, div, true)
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.call() == nil {
				t.Fatal("invalid input accepted")
			}
		})
	}
}

func TestOracleDistanceBehaviour(t *testing.T) {
	in, err := NewCustomInstance(2, []*Worker{{ID: "w", Alpha: 0.5, Beta: 0.5}}, 1,
		[][]float64{{0.1, 0.2}}, func(k, l int) float64 { return 0.5 }, false)
	if err != nil {
		t.Fatal(err)
	}
	if in.Dist.Metric() {
		t.Error("non-metric oracle reported as metric")
	}
	if in.Dist.Name() != "oracle" {
		t.Errorf("Name = %q", in.Dist.Name())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oracle Distance should panic")
		}
	}()
	in.Dist.Distance(nil, nil)
}

func TestWithUniformWeights(t *testing.T) {
	in := testInstance(t)
	div, err := in.WithUniformWeights(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for q, w := range div.Workers {
		if w.Alpha != 1 || w.Beta != 0 {
			t.Fatalf("worker %d weights (%g,%g)", q, w.Alpha, w.Beta)
		}
		// Relevance matrix is shared; values unchanged.
		if div.Relevance(q, 0) != in.Relevance(q, 0) {
			t.Fatal("relevance not shared")
		}
	}
	// The original workers are untouched.
	if in.Workers[0].Alpha == 1 && in.Workers[1].Alpha == 1 {
		t.Fatal("WithUniformWeights mutated the original")
	}
	if _, err := in.WithUniformWeights(3, 3); err == nil {
		t.Error("invalid uniform weights accepted")
	}
}

func TestPermutedValidation(t *testing.T) {
	in := testInstance(t)
	if _, err := in.Permuted([]int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := in.Permuted([]int{0, 0, 1, 2}); err == nil {
		t.Error("repeated index accepted")
	}
	if _, err := in.Permuted([]int{0, 1, 2, 9}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestPermutedPreservesSemantics: diversity, relevance and objectives on
// the permuted view must equal the originals under index translation.
func TestPermutedPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		in := testInstance(t)
		perm := r.Perm(in.NumTasks())
		view, err := in.Permuted(perm)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < in.NumTasks(); k++ {
			for l := 0; l < in.NumTasks(); l++ {
				if got, want := view.Diversity(k, l), in.Diversity(perm[k], perm[l]); math.Abs(got-want) > 1e-12 {
					t.Fatalf("Diversity(%d,%d) = %g, want %g", k, l, got, want)
				}
			}
			for q := range in.Workers {
				if got, want := view.Relevance(q, k), in.Relevance(q, perm[k]); got != want {
					t.Fatalf("Relevance(%d,%d) = %g, want %g", q, k, got, want)
				}
			}
		}
		// An assignment in view-coordinates maps to the same objective in
		// original coordinates.
		a := &Assignment{Sets: [][]int{{0, 1}, {2, 3}}}
		mapped := &Assignment{Sets: [][]int{
			{perm[0], perm[1]}, {perm[2], perm[3]},
		}}
		if got, want := view.Objective(a), in.Objective(mapped); math.Abs(got-want) > 1e-12 {
			t.Fatalf("objective %g != %g", got, want)
		}
	}
}

// TestPermutedOracleInstance: the permuted view of a custom-oracle
// instance must remap the diversity oracle too.
func TestPermutedOracleInstance(t *testing.T) {
	rel := [][]float64{{0.1, 0.2, 0.3}}
	div := func(k, l int) float64 {
		if k == l {
			return 0
		}
		return float64(k+l) / 10
	}
	in, err := NewCustomInstance(3, []*Worker{{ID: "w", Alpha: 0.5, Beta: 0.5}}, 2, rel, div, true)
	if err != nil {
		t.Fatal(err)
	}
	view, err := in.Permuted([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := view.Diversity(0, 1); got != div(2, 0) {
		t.Fatalf("oracle diversity = %g, want %g", got, div(2, 0))
	}
	if got := view.Relevance(0, 0); got != 0.3 {
		t.Fatalf("oracle relevance = %g, want 0.3", got)
	}
}

// Property: motivation is monotone under adding a task for an α=1 worker
// when every pairwise distance is positive.
func TestQuickMotivMonotoneDiversity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		tasks := make([]*Task, n)
		for i := range tasks {
			// Unique singleton keyword per task → all pairwise distances 1.
			tasks[i] = mkTask("t", n, i)
		}
		w := mkWorker("w", 1, n)
		in, err := NewInstance(tasks, []*Worker{w}, n, metric.Jaccard{})
		if err != nil {
			return false
		}
		var prev float64
		for size := 1; size <= n; size++ {
			set := make([]int, size)
			for i := range set {
				set[i] = i
			}
			m := in.Motiv(0, set)
			if m < prev {
				return false
			}
			prev = m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the objective is invariant to permuting tasks inside a set.
func TestQuickMotivOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(6)
		tasks := make([]*Task, n)
		for i := range tasks {
			kw := []int{}
			for k := 0; k < n; k++ {
				if r.Intn(2) == 0 {
					kw = append(kw, k)
				}
			}
			tasks[i] = mkTask("t", n, kw...)
		}
		w := mkWorker("w", r.Float64(), n, 0)
		in, err := NewInstance(tasks, []*Worker{w}, n, metric.Jaccard{})
		if err != nil {
			return false
		}
		set := r.Perm(n)[:2+r.Intn(n-2)]
		m1 := in.Motiv(0, set)
		shuffled := append([]int(nil), set...)
		r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		m2 := in.Motiv(0, shuffled)
		return math.Abs(m1-m2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
