// Package ops is the operational event journal: a bounded, lock-minimal
// ring of structured events recording the moments an operator needs to
// reconstruct after the fact — failovers, ring re-partitions, work
// steals, watermark breaches, quarantine transitions, snapshot cuts.
//
// Where obs answers "how much / how fast" and trace answers "why was
// this request slow", ops answers "what happened to the fleet at 14:03".
// Events carry timestamps and (when the triggering request was sampled)
// trace IDs, so a failover in the journal links to the stitched trace
// that observed it.
//
// The design follows the trace recorder: append is one atomic add (slot
// claim) plus one atomic pointer store, so emitting an event from the
// failover path or the steal loop never contends; reads (Snapshot, the
// HTTP handler) copy and may allocate. A package-wide enabled gate turns
// every append into a single atomic load for overhead benchmarks.
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Event types recorded by the system. The set is open — Record accepts
// any string — but these constants name the transitions the cluster
// emits today.
const (
	EventFailover    = "failover"         // a node was dropped from the ring
	EventRepartition = "ring_repartition" // the hash ring changed shape
	EventNodeJoin    = "node_join"        // a node was added to the ring
	EventSteal       = "steal"            // the work-stealing pass moved tasks
	EventWatermark   = "watermark_breach" // a shard backlog crossed the steal watermark
	EventQuarantine  = "quarantine"       // a worker's gold accuracy fell below the floor
	EventSnapshot    = "snapshot_cut"     // a state snapshot was cut
	EventExpire      = "deadline_expire"  // buffered tasks expired past their deadline
	EventForecast    = "forecast_breach"  // a shard's projected backlog crossed the watermark
)

// Event is one journal entry. Attrs hold small, flat detail (counts,
// names, reasons) — the journal is a flight recorder, not a log sink.
type Event struct {
	Seq     uint64            `json:"seq"`
	Time    time.Time         `json:"time"`
	Type    string            `json:"type"`
	Node    string            `json:"node,omitempty"`
	TraceID string            `json:"trace_id,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// enabled gates every append. Default on; the pr9 overhead benchmark
// flips it to measure the journal's own cost.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns journal appends on or off globally.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether appends are currently recorded.
func Enabled() bool { return enabled.Load() }

// timeNow is swapped by tests for deterministic timestamps.
var timeNow = time.Now

// defaultNode is the process-wide node identity, stamped onto events
// recorded without one — hta-server sets it once at startup so
// engine-level emitters (shard steals, quality quarantines) need no
// name plumbing.
var defaultNode atomic.Pointer[string]

// SetDefaultNode sets the identity stamped onto events whose Node is
// empty.
func SetDefaultNode(name string) { defaultNode.Store(&name) }

// DefaultNode returns the process-wide node identity ("" unset).
func DefaultNode() string {
	if p := defaultNode.Load(); p != nil {
		return *p
	}
	return ""
}

// Journal is the bounded event ring. The nil *Journal is inert — every
// method is a no-op — so components can hold an optional journal without
// branching.
type Journal struct {
	head atomic.Uint64 // next ring slot (monotone; slot = head & mask)
	seq  atomic.Uint64 // global event sequence
	ring []atomic.Pointer[Event]
	mask uint64
}

// NewJournal builds a journal retaining up to capacity events (rounded up
// to a power of two, minimum 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &Journal{ring: make([]atomic.Pointer[Event], c), mask: uint64(c - 1)}
}

// std is the process-wide journal every backend records into by default.
var std = NewJournal(1024)

// Default returns the process-wide journal.
func Default() *Journal { return std }

// Capacity returns the ring size.
func (j *Journal) Capacity() int {
	if j == nil {
		return 0
	}
	return len(j.ring)
}

// Record appends one event. Seq and Time are filled in here (a zero
// ev.Time is stamped with the current time); the caller provides Type,
// Node, TraceID and Attrs. Safe for concurrent use; never blocks.
func (j *Journal) Record(ev Event) {
	if j == nil || !enabled.Load() {
		return
	}
	ev.Seq = j.seq.Add(1)
	if ev.Time.IsZero() {
		ev.Time = timeNow()
	}
	if ev.Node == "" {
		ev.Node = DefaultNode()
	}
	j.ring[(j.head.Add(1)-1)&j.mask].Store(&ev)
}

// Emit is the convenience form of Record for call sites without a
// pre-built Event: attrs are flat key/value pairs ("k1", "v1", "k2",
// "v2", …; a trailing odd key is dropped). The trace ID, when the
// context carries a sampled span, should be passed via RecordCtx instead.
func (j *Journal) Emit(typ, node string, attrs ...string) {
	if j == nil || !enabled.Load() {
		return
	}
	j.Record(Event{Type: typ, Node: node, Attrs: attrMap(attrs)})
}

// RecordCtx is Emit plus trace correlation: when ctx carries a sampled
// span (detected via the IDFromContext hook), the event records its trace
// ID so the journal entry links to the stitched trace.
func (j *Journal) RecordCtx(ctx context.Context, typ, node string, attrs ...string) {
	if j == nil || !enabled.Load() {
		return
	}
	ev := Event{Type: typ, Node: node, Attrs: attrMap(attrs)}
	if IDFromContext != nil {
		ev.TraceID = IDFromContext(ctx)
	}
	j.Record(ev)
}

// IDFromContext extracts the sampled trace ID (16-hex-digit form) from a
// context, or "" when untraced. It is a package hook rather than a direct
// dependency so ops stays import-free of trace; internal/platform wires
// it at init.
var IDFromContext func(ctx context.Context) string

func attrMap(kv []string) map[string]string {
	if len(kv) < 2 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// Snapshot returns up to n of the most recent events, oldest first
// (n <= 0 or n > capacity returns everything retained).
func (j *Journal) Snapshot(n int) []Event {
	if j == nil {
		return nil
	}
	if n <= 0 || n > len(j.ring) {
		n = len(j.ring)
	}
	h := j.head.Load()
	out := make([]Event, 0, n)
	for i := 0; i < len(j.ring) && len(out) < n; i++ {
		if uint64(i) >= h {
			break // ring never filled this far back
		}
		if ev := j.ring[(h-1-uint64(i))&j.mask].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	for i, k := 0, len(out)-1; i < k; i, k = i+1, k-1 {
		out[i], out[k] = out[k], out[i]
	}
	return out
}

// Merge joins event lists from several journals (gateway + nodes) into
// one timeline ordered by timestamp, ties broken by (node, seq) so the
// merged view is deterministic for same-clock events.
func Merge(lists ...[]Event) []Event {
	var total int
	for _, l := range lists {
		total += len(l)
	}
	out := make([]Event, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(i, k int) bool {
		if !out[i].Time.Equal(out[k].Time) {
			return out[i].Time.Before(out[k].Time)
		}
		if out[i].Node != out[k].Node {
			return out[i].Node < out[k].Node
		}
		return out[i].Seq < out[k].Seq
	})
	return out
}

// eventsFile is the JSON envelope of /api/events.
type eventsFile struct {
	Events []Event `json:"events"`
}

// WriteEvents serializes events as the /api/events JSON envelope.
func WriteEvents(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{}
	}
	return json.NewEncoder(w).Encode(eventsFile{Events: events})
}

// ReadEvents parses the /api/events JSON envelope.
func ReadEvents(r io.Reader) ([]Event, error) {
	var f eventsFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("ops: decode events: %w", err)
	}
	return f.Events, nil
}

// Handler serves the journal's retained events as JSON, newest-complete
// oldest-first: GET /api/events?n=K (n defaults to everything retained).
func (j *Journal) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 0
		if q := req.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "ops: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteEvents(w, j.Snapshot(n))
	})
}
