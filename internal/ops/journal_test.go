package ops

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

func TestJournalRingRetention(t *testing.T) {
	j := NewJournal(8)
	if j.Capacity() != 8 {
		t.Fatalf("capacity = %d", j.Capacity())
	}
	for i := 0; i < 20; i++ {
		j.Record(Event{Type: EventSteal, Node: "n0"})
	}
	evs := j.Snapshot(0)
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot not oldest-first contiguous: seq %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	if evs[len(evs)-1].Seq != 20 {
		t.Fatalf("newest seq = %d, want 20", evs[len(evs)-1].Seq)
	}
	if got := j.Snapshot(3); len(got) != 3 || got[2].Seq != 20 {
		t.Fatalf("Snapshot(3) = %d events ending at seq %d", len(got), got[len(got)-1].Seq)
	}
}

// TestJournalConcurrent hammers Record from many goroutines while a
// reader snapshots continuously — the -race run of this test is the
// lock-freedom proof for the append path.
func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	const writers, each = 8, 500
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range j.Snapshot(0) {
				if ev.Type == "" || ev.Seq == 0 {
					panic("torn event escaped the ring")
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Emit(EventWatermark, "n0", "writer", "x")
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerDone.Wait()
	evs := j.Snapshot(0)
	if len(evs) != 64 {
		t.Fatalf("retained %d, want 64", len(evs))
	}
	seen := make(map[uint64]bool)
	for _, ev := range evs {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}

func TestJournalDefaultsAndCtx(t *testing.T) {
	defer SetDefaultNode("")
	defer func() { IDFromContext = nil }()

	SetDefaultNode("n7")
	j := NewJournal(4)
	j.Emit(EventQuarantine, "", "worker", "w1")
	evs := j.Snapshot(0)
	if len(evs) != 1 || evs[0].Node != "n7" || evs[0].Attrs["worker"] != "w1" {
		t.Fatalf("default node / attrs: %+v", evs)
	}

	IDFromContext = func(ctx context.Context) string { return "00000000000000ab" }
	j.RecordCtx(context.Background(), EventFailover, "n1", "live", "2")
	evs = j.Snapshot(1)
	if evs[0].TraceID != "00000000000000ab" {
		t.Fatalf("trace correlation: %+v", evs[0])
	}

	// The nil journal and a disabled journal are inert.
	var nilJ *Journal
	nilJ.Emit(EventSteal, "n0")
	if nilJ.Snapshot(0) != nil {
		t.Fatal("nil journal snapshot")
	}
	SetEnabled(false)
	j.Emit(EventSteal, "n0")
	SetEnabled(true)
	if got := j.Snapshot(0); len(got) != 2 {
		t.Fatalf("disabled append recorded: %d events", len(got))
	}
}

func TestMergeOrdering(t *testing.T) {
	t0 := time.Unix(100, 0)
	a := []Event{
		{Seq: 1, Time: t0.Add(2 * time.Second), Type: EventSteal, Node: "a"},
		{Seq: 2, Time: t0.Add(4 * time.Second), Type: EventSteal, Node: "a"},
	}
	b := []Event{
		{Seq: 1, Time: t0.Add(1 * time.Second), Type: EventFailover, Node: "b"},
		{Seq: 2, Time: t0.Add(2 * time.Second), Type: EventSteal, Node: "b"},
	}
	m := Merge(a, b)
	if len(m) != 4 {
		t.Fatalf("merged %d", len(m))
	}
	if m[0].Node != "b" || m[1].Node != "a" || m[2].Node != "b" || m[3].Node != "a" {
		t.Fatalf("merge order: %+v", m)
	}
}

func TestEventsJSONRoundtrip(t *testing.T) {
	in := []Event{{Seq: 1, Time: time.Unix(5, 0).UTC(), Type: EventFailover, Node: "n2",
		TraceID: "00000000000000cd", Attrs: map[string]string{"live": "2"}}}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Node != "n2" || out[0].Attrs["live"] != "2" || !out[0].Time.Equal(in[0].Time) {
		t.Fatalf("roundtrip: %+v", out)
	}
}

func TestHealthScore(t *testing.T) {
	now := time.Unix(1000, 0)
	evs := []Event{
		{Time: now.Add(-time.Minute), Type: EventFailover, Node: "n2"},
		{Time: now.Add(-time.Minute), Type: EventRepartition, Node: "n2"},
		{Time: now.Add(-30 * time.Second), Type: EventSteal, Node: "n0"}, // free
		{Time: now.Add(-time.Hour), Type: EventFailover, Node: "n1"},     // outside window
	}
	h := Score(evs, now, 5*time.Minute)
	if h.Events != 3 {
		t.Fatalf("events in window = %d, want 3", h.Events)
	}
	want := 1.0 - 0.30 - 0.10
	if h.Score < want-1e-9 || h.Score > want+1e-9 {
		t.Fatalf("score = %g, want %g", h.Score, want)
	}
	if h.Status != "degraded" {
		t.Fatalf("status = %s", h.Status)
	}
	if h.Counts[EventFailover] != 1 || h.Counts[EventSteal] != 1 {
		t.Fatalf("counts: %+v", h.Counts)
	}

	if q := Score(nil, now, 0); q.Score != 1 || q.Status != "ok" {
		t.Fatalf("quiet: %+v", q)
	}
	many := make([]Event, 10)
	for i := range many {
		many[i] = Event{Time: now, Type: EventFailover}
	}
	if c := Score(many, now, time.Minute); c.Score != 0 || c.Status != "critical" {
		t.Fatalf("clamp: %+v", c)
	}
}

func TestHealthScoreWithConfig(t *testing.T) {
	now := time.Unix(2000, 0)
	evs := []Event{
		{Time: now.Add(-time.Minute), Type: EventFailover},
		{Time: now.Add(-10 * time.Minute), Type: EventFailover},
		{Time: now.Add(-30 * time.Second), Type: EventExpire},
		{Time: now.Add(-30 * time.Second), Type: EventForecast},
	}

	// Zero config scores exactly like Score with the defaults.
	want := Score(evs, now, DefaultHealthWindow)
	if got := ScoreWith(evs, now, HealthConfig{}); got.Score != want.Score || got.Events != want.Events {
		t.Fatalf("zero config diverged: %+v vs %+v", got, want)
	}
	if want.Events != 3 {
		t.Fatalf("default window admitted %d events, want 3", want.Events)
	}

	// A wider window pulls the old failover back into scope.
	if h := ScoreWith(evs, now, HealthConfig{Window: time.Hour}); h.Events != 4 {
		t.Fatalf("1h window admitted %d events, want 4", h.Events)
	}

	// Weight overrides merge over the defaults: an explicit 0 silences a
	// type, an unmentioned type keeps its built-in cost.
	h := ScoreWith(evs, now, HealthConfig{Weights: map[string]float64{EventFailover: 0}})
	want2 := 1.0 - 0.05 - 0.01 // expire + forecast only
	if h.Score < want2-1e-9 || h.Score > want2+1e-9 {
		t.Fatalf("score = %g, want %g", h.Score, want2)
	}

	// A type the defaults ignore can be given a cost.
	h = ScoreWith([]Event{{Time: now, Type: EventSteal}}, now, HealthConfig{
		Weights: map[string]float64{EventSteal: 0.5},
	})
	if h.Score != 0.5 {
		t.Fatalf("custom-weighted steal: score = %g, want 0.5", h.Score)
	}
}
