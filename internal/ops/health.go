package ops

import "time"

// Cluster health scoring: a recent-window read over the journal that
// turns discrete incidents into one number a dashboard can alarm on.
// The score starts at 1.0 and pays a penalty per event inside the
// window, weighted by severity; it is a smell detector (how rough has
// the last few minutes been?), not an SLO.

// Penalty weights per event type inside the scoring window. Types not
// listed cost nothing (steals and snapshot cuts are routine operations,
// not incidents). Deadline expiries are missed work — a real incident;
// forecast breaches are early warnings and cost almost nothing.
var healthPenalty = map[string]float64{
	EventFailover:    0.30,
	EventRepartition: 0.10,
	EventQuarantine:  0.05,
	EventExpire:      0.05,
	EventWatermark:   0.02,
	EventForecast:    0.01,
}

// DefaultHealthWindow is the scoring window verbose healthz uses.
const DefaultHealthWindow = 5 * time.Minute

// HealthConfig tunes the journal health scoring. The zero value scores
// exactly like Score: the default window and the built-in penalty table.
type HealthConfig struct {
	// Window is the scoring window (DefaultHealthWindow when <= 0).
	Window time.Duration
	// Weights overrides penalty weights per event type. Entries merge
	// over the built-in table — set a type to 0 to silence it, or add a
	// weight for a type the defaults ignore; absent types keep their
	// default cost.
	Weights map[string]float64
}

func (c HealthConfig) penalty(typ string) float64 {
	if w, ok := c.Weights[typ]; ok {
		return w
	}
	return healthPenalty[typ]
}

// Health is the verbose healthz payload: the score, its inputs, and a
// coarse status bucket.
type Health struct {
	Score  float64        `json:"score"`  // 1.0 = quiet, 0.0 = on fire
	Status string         `json:"status"` // ok | degraded | critical
	Window string         `json:"window"` // scoring window, e.g. "5m0s"
	Events int            `json:"events"` // events inside the window
	Counts map[string]int `json:"counts,omitempty"`
}

// Score computes the cluster health over events within window of now.
// Events outside the window (or from the future, clock skew aside) still
// appear in Counts totals only if inside; the score is clamped to [0, 1].
func Score(events []Event, now time.Time, window time.Duration) Health {
	return ScoreWith(events, now, HealthConfig{Window: window})
}

// ScoreWith is Score with a configurable window and penalty table —
// deployments alarm on different things (hta-server -health-window, or a
// weights file), and the scoring should follow the deployment, not the
// code.
func ScoreWith(events []Event, now time.Time, cfg HealthConfig) Health {
	window := cfg.Window
	if window <= 0 {
		window = DefaultHealthWindow
	}
	cutoff := now.Add(-window)
	h := Health{Score: 1.0, Window: window.String(), Counts: map[string]int{}}
	for _, ev := range events {
		if ev.Time.Before(cutoff) {
			continue
		}
		h.Events++
		h.Counts[ev.Type]++
		h.Score -= cfg.penalty(ev.Type)
	}
	if h.Score < 0 {
		h.Score = 0
	}
	switch {
	case h.Score >= 0.8:
		h.Status = "ok"
	case h.Score >= 0.5:
		h.Status = "degraded"
	default:
		h.Status = "critical"
	}
	if len(h.Counts) == 0 {
		h.Counts = nil
	}
	return h
}
