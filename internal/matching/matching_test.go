package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// tableWeights builds a WeightFunc from a symmetric upper-triangular map.
func tableWeights(n int, entries map[[2]int]float64) WeightFunc {
	return func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		return entries[[2]int{i, j}]
	}
}

func randWeights(r *rand.Rand, n int) WeightFunc {
	w := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := r.Float64()
			w[i*n+j], w[j*n+i] = v, v
		}
	}
	return func(i, j int) float64 { return w[i*n+j] }
}

// discreteWeights creates many ties to stress tie-breaking.
func discreteWeights(r *rand.Rand, n, levels int) WeightFunc {
	w := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float64(r.Intn(levels)) / float64(levels)
			w[i*n+j], w[j*n+i] = v, v
		}
	}
	return func(i, j int) float64 { return w[i*n+j] }
}

func TestGreedySortKnown(t *testing.T) {
	// Path graph weights: 0-1: 3, 1-2: 4, 2-3: 3. Greedy takes (1,2) then
	// nothing else with positive weight except... (0,3)=0. Max matching is
	// {0-1, 2-3} = 6; greedy gets 4 + w(0,3).
	w := tableWeights(4, map[[2]int]float64{{0, 1}: 3, {1, 2}: 4, {2, 3}: 3})
	g := GreedySort(4, w)
	if g.Mate[1] != 2 || g.Mate[2] != 1 {
		t.Fatalf("greedy should match heaviest edge (1,2): %v", g.Mate)
	}
	opt := ExactSmall(4, w)
	if opt.Weight != 6 {
		t.Fatalf("exact weight = %g, want 6", opt.Weight)
	}
	if g.Weight < opt.Weight/2 {
		t.Fatalf("greedy %g below half of optimum %g", g.Weight, opt.Weight)
	}
}

func TestGreedySortCompleteLeavesAtMostOneUnmatched(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 4, 7, 10, 15} {
		m := GreedySort(n, randWeights(r, n))
		unmatched := 0
		for _, mate := range m.Mate {
			if mate == -1 {
				unmatched++
			}
		}
		if unmatched != n%2 {
			t.Fatalf("n=%d: %d unmatched vertices, want %d", n, unmatched, n%2)
		}
	}
}

func TestGreedyHalfApproximation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(11)
		w := randWeights(r, n)
		g, opt := GreedySort(n, w), ExactSmall(n, w)
		if g.Weight < opt.Weight/2-1e-9 {
			t.Fatalf("trial %d n=%d: greedy %g < half of optimum %g", trial, n, g.Weight, opt.Weight)
		}
		if g.Weight > opt.Weight+1e-9 {
			t.Fatalf("trial %d: greedy %g exceeds optimum %g", trial, g.Weight, opt.Weight)
		}
		if err := g.Validate(w); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSuitorEqualsGreedySort(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(14)
		var w WeightFunc
		if trial%2 == 0 {
			w = randWeights(r, n)
		} else {
			w = discreteWeights(r, n, 3) // heavy ties
		}
		g, s := GreedySort(n, w), Suitor(n, w)
		if math.Abs(g.Weight-s.Weight) > 1e-9 {
			t.Fatalf("trial %d n=%d: greedy %g != suitor %g", trial, n, g.Weight, s.Weight)
		}
		for v := range g.Mate {
			if g.Mate[v] != s.Mate[v] {
				t.Fatalf("trial %d n=%d: mate mismatch at %d: greedy %v suitor %v",
					trial, n, v, g.Mate, s.Mate)
			}
		}
		if err := s.Validate(w); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSuitorAllZeroWeights(t *testing.T) {
	w := func(i, j int) float64 { return 0 }
	m := Suitor(6, w)
	if err := m.Validate(w); err != nil {
		t.Fatal(err)
	}
	// Zero-weight edges are still edges; greedy matches them maximally.
	if m.Size() != 3 {
		t.Fatalf("size = %d, want 3", m.Size())
	}
}

func TestExactSmallKnown(t *testing.T) {
	// Triangle with weights 5, 4, 3: matching can take only one edge → 5.
	w := tableWeights(3, map[[2]int]float64{{0, 1}: 5, {1, 2}: 4, {0, 2}: 3})
	m := ExactSmall(3, w)
	if m.Weight != 5 || m.Mate[0] != 1 {
		t.Fatalf("exact = %+v, want edge (0,1) of weight 5", m)
	}
}

func TestExactSmallPanicsOnLargeN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExactSmall(19, func(i, j int) float64 { return 1 })
}

func TestAutoDispatch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 9
	w := randWeights(r, n)
	a, g := Auto(n, w), GreedySort(n, w)
	if math.Abs(a.Weight-g.Weight) > 1e-12 {
		t.Fatalf("Auto %g != GreedySort %g", a.Weight, g.Weight)
	}
}

func TestEdgesAndSize(t *testing.T) {
	w := tableWeights(4, map[[2]int]float64{{0, 1}: 3, {2, 3}: 2})
	m := GreedySort(4, w)
	if m.Size() != 2 {
		t.Fatalf("Size = %d, want 2", m.Size())
	}
	edges := m.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges = %v", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered", e)
		}
	}
}

func TestValidateRejectsCorrupt(t *testing.T) {
	w := func(i, j int) float64 { return 1 }
	m := Matching{Mate: []int{1, 0, -1}, Weight: 1}
	if err := m.Validate(w); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
	bad := Matching{Mate: []int{1, 2, 0}, Weight: 1}
	if err := bad.Validate(w); err == nil {
		t.Fatal("non-involution accepted")
	}
	badW := Matching{Mate: []int{1, 0, -1}, Weight: 7}
	if err := badW.Validate(w); err == nil {
		t.Fatal("wrong weight accepted")
	}
}

func TestQuickGreedyLocalDomination(t *testing.T) {
	// Property behind the paper's Equations 9–10: for any non-matching edge
	// (u,v) whose endpoints are matched, w(u,v) <= w(u,mate(u)) + w(v,mate(v)).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		w := randWeights(r, n)
		m := GreedySort(n, w)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if m.Mate[u] == v {
					continue
				}
				var bound float64
				if m.Mate[u] != -1 {
					bound += w(u, m.Mate[u])
				}
				if m.Mate[v] != -1 {
					bound += w(v, m.Mate[v])
				}
				if m.Mate[u] == -1 && m.Mate[v] == -1 {
					continue // cannot happen on complete graphs except odd leftover
				}
				if w(u, v) > bound+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedySort(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	n := 400
	w := randWeights(r, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedySort(n, w)
	}
}

func BenchmarkSuitor(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	n := 400
	w := randWeights(r, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Suitor(n, w)
	}
}
