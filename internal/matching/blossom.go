package matching

// Exact maximum-weight matching on general graphs via the blossom
// algorithm (Edmonds), in the O(n³) primal-dual formulation of Galil,
// "Efficient algorithms for finding maximum matching in graphs" (1986).
// This Go implementation is a port of the well-known reference
// implementation structure by Van Rantwijk (mwmatching), adapted to
// float64 weights.
//
// Line 2 of the paper's Algorithms 1 and 2 asks for a maximum-weight
// matching M_B on the diversity graph; the approximation analysis only
// needs a greedy matching, but the exact matcher lets the repository
// measure how much the greedy M_B costs (BenchmarkAblationMatching) and
// gives the tests a ground truth beyond the O(2ⁿ) subset DP.

import (
	"math"

	"github.com/htacs/ata/internal/par"
)

// blossomEdge is one positive-weight edge of the graph Blossom runs on.
type blossomEdge struct {
	i, j int
	wt   float64
}

// blossomEdges builds the positive-weight edge list in row-major order
// with p goroutines: each row's edges are collected into that row's own
// bucket (disjoint writes, no locks) and the buckets are concatenated in
// row order, so the list — and therefore every tie-dependent choice of the
// primal-dual algorithm — is identical to the serial construction.
func blossomEdges(n int, w WeightFunc, p int) []blossomEdge {
	rows := make([][]blossomEdge, n)
	par.DoWeighted(n, p, func(i int) int { return n - 1 - i }, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var local []blossomEdge
			for j := i + 1; j < n; j++ {
				if wt := w(i, j); wt > 0 {
					local = append(local, blossomEdge{i, j, wt})
				}
			}
			rows[i] = local
		}
	})
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	edges := make([]blossomEdge, 0, total)
	for _, r := range rows {
		edges = append(edges, r...)
	}
	return edges
}

// Blossom computes a maximum-weight matching on the complete graph over n
// vertices with the given weight function. Edges with non-positive weight
// are ignored (they can never improve a maximum-weight matching).
func Blossom(n int, w WeightFunc) Matching {
	return BlossomP(n, w, 1)
}

// BlossomP is Blossom with the edge-weight evaluation sharded across p
// goroutines (p >= 1 literal, p <= 0 → runtime.NumCPU()); the matching is
// identical to Blossom's. w must be safe for concurrent calls.
func BlossomP(n int, w WeightFunc, p int) Matching {
	type edge = blossomEdge
	edges := blossomEdges(n, w, p)
	nedge := len(edges)
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	if nedge == 0 {
		return Matching{Mate: mate, Weight: 0}
	}

	maxweight := 0.0
	for _, e := range edges {
		if e.wt > maxweight {
			maxweight = e.wt
		}
	}

	// Vertices are 0..n-1; blossoms n..2n-1.
	const maxIter = 1 << 30
	endpoint := make([]int, 2*nedge) // endpoint[p] = vertex at endpoint p (p = 2k or 2k+1 for edge k)
	for k, e := range edges {
		endpoint[2*k] = e.i
		endpoint[2*k+1] = e.j
	}
	neighbend := make([][]int, n) // incident endpoint list per vertex
	for k, e := range edges {
		neighbend[e.i] = append(neighbend[e.i], 2*k+1)
		neighbend[e.j] = append(neighbend[e.j], 2*k)
	}

	matepnt := make([]int, n) // matched endpoint, -1 if single
	for i := range matepnt {
		matepnt[i] = -1
	}
	label := make([]int, 2*n)    // 0 free, 1 S, 2 T
	labelend := make([]int, 2*n) // endpoint through which the label was assigned
	inblossom := make([]int, n)  // top-level blossom containing vertex
	for i := range inblossom {
		inblossom[i] = i
	}
	blossomparent := make([]int, 2*n)
	for i := range blossomparent {
		blossomparent[i] = -1
	}
	blossomchilds := make([][]int, 2*n)
	blossombase := make([]int, 2*n)
	for i := 0; i < n; i++ {
		blossombase[i] = i
	}
	for i := n; i < 2*n; i++ {
		blossombase[i] = -1
	}
	blossomendps := make([][]int, 2*n)
	bestedge := make([]int, 2*n)
	blossombestedges := make([][]int, 2*n)
	unusedblossoms := make([]int, 0, n)
	for i := n; i < 2*n; i++ {
		unusedblossoms = append(unusedblossoms, i)
	}
	dualvar := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		dualvar[i] = maxweight / 2
	}
	allowedge := make([]bool, nedge)
	var queue []int

	slack := func(k int) float64 {
		return dualvar[edges[k].i] + dualvar[edges[k].j] - edges[k].wt
	}

	var blossomLeaves func(b int, out *[]int)
	blossomLeaves = func(b int, out *[]int) {
		if b < n {
			*out = append(*out, b)
			return
		}
		for _, t := range blossomchilds[b] {
			blossomLeaves(t, out)
		}
	}

	assignLabel := func(v, t, p int) {
		var rec func(v, t, p int)
		rec = func(v, t, p int) {
			b := inblossom[v]
			label[v] = t
			label[b] = t
			labelend[v] = p
			labelend[b] = p
			bestedge[v] = -1
			bestedge[b] = -1
			if t == 1 {
				var leaves []int
				blossomLeaves(b, &leaves)
				queue = append(queue, leaves...)
			} else if t == 2 {
				base := blossombase[b]
				rec(endpoint[matepnt[base]], 1, matepnt[base]^1)
			}
		}
		rec(v, t, p)
	}

	scanBlossom := func(v, w int) int {
		var path []int
		base := -1
		for v != -1 || w != -1 {
			b := inblossom[v]
			if label[b]&4 != 0 {
				base = blossombase[b]
				break
			}
			path = append(path, b)
			label[b] |= 4
			if labelend[b] == -1 {
				v = -1
			} else {
				v = endpoint[labelend[b]]
				b = inblossom[v]
				v = endpoint[labelend[b]]
			}
			if w != -1 {
				v, w = w, v
			}
		}
		for _, b := range path {
			label[b] &^= 4
		}
		return base
	}

	var expandBlossom func(b int, endstage bool)
	var augmentBlossom func(b, v int)

	addBlossom := func(base, k int) {
		v, w := edges[k].i, edges[k].j
		bb := inblossom[base]
		bv := inblossom[v]
		bw := inblossom[w]
		b := unusedblossoms[len(unusedblossoms)-1]
		unusedblossoms = unusedblossoms[:len(unusedblossoms)-1]
		blossombase[b] = base
		blossomparent[b] = -1
		blossomparent[bb] = b
		var path []int
		var endps []int
		for bv != bb {
			blossomparent[bv] = b
			path = append(path, bv)
			endps = append(endps, labelend[bv])
			v = endpoint[labelend[bv]]
			bv = inblossom[v]
		}
		path = append(path, bb)
		// reverse
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		for i, j := 0, len(endps)-1; i < j; i, j = i+1, j-1 {
			endps[i], endps[j] = endps[j], endps[i]
		}
		endps = append(endps, 2*k)
		for bw != bb {
			blossomparent[bw] = b
			path = append(path, bw)
			endps = append(endps, labelend[bw]^1)
			w = endpoint[labelend[bw]]
			bw = inblossom[w]
		}
		blossomchilds[b] = path
		blossomendps[b] = endps
		label[b] = 1
		labelend[b] = labelend[bb]
		dualvar[b] = 0
		var leaves []int
		blossomLeaves(b, &leaves)
		for _, leaf := range leaves {
			if label[inblossom[leaf]] == 2 {
				queue = append(queue, leaf)
			}
			inblossom[leaf] = b
		}
		bestedgeto := make([]int, 2*n)
		for i := range bestedgeto {
			bestedgeto[i] = -1
		}
		for _, bv := range path {
			var nblists [][]int
			if blossombestedges[bv] == nil {
				var leaves2 []int
				blossomLeaves(bv, &leaves2)
				for _, leaf := range leaves2 {
					lst := make([]int, 0, len(neighbend[leaf]))
					for _, p := range neighbend[leaf] {
						lst = append(lst, p/2)
					}
					nblists = append(nblists, lst)
				}
			} else {
				nblists = [][]int{blossombestedges[bv]}
			}
			for _, nblist := range nblists {
				for _, kk := range nblist {
					i, j := edges[kk].i, edges[kk].j
					if inblossom[j] == b {
						i, j = j, i
					}
					bj := inblossom[j]
					if bj != b && label[bj] == 1 &&
						(bestedgeto[bj] == -1 || slack(kk) < slack(bestedgeto[bj])) {
						bestedgeto[bj] = kk
					}
					_ = i
				}
			}
			blossombestedges[bv] = nil
			bestedge[bv] = -1
		}
		be := make([]int, 0)
		for _, kk := range bestedgeto {
			if kk != -1 {
				be = append(be, kk)
			}
		}
		blossombestedges[b] = be
		bestedge[b] = -1
		for _, kk := range blossombestedges[b] {
			if bestedge[b] == -1 || slack(kk) < slack(bestedge[b]) {
				bestedge[b] = kk
			}
		}
	}

	expandBlossom = func(b int, endstage bool) {
		for _, s := range blossomchilds[b] {
			blossomparent[s] = -1
			if s < n {
				inblossom[s] = s
			} else if endstage && dualvar[s] == 0 {
				expandBlossom(s, endstage)
			} else {
				var leaves []int
				blossomLeaves(s, &leaves)
				for _, leaf := range leaves {
					inblossom[leaf] = s
				}
			}
		}
		if !endstage && label[b] == 2 {
			// The expanding blossom was reached through labelend[b];
			// relabel the even-length half of the cycle path and clear the
			// other half, exactly as in the reference implementation.
			entrychild := inblossom[endpoint[labelend[b]^1]]
			j := 0
			for i, s := range blossomchilds[b] {
				if s == entrychild {
					j = i
					break
				}
			}
			var jstep, endptrick int
			if j&1 != 0 {
				j -= len(blossomchilds[b])
				jstep = 1
				endptrick = 0
			} else {
				jstep = -1
				endptrick = 1
			}
			nEndps := len(blossomendps[b])
			p := labelend[b]
			for j != 0 {
				label[endpoint[p^1]] = 0
				q := blossomendps[b][mod(j-endptrick, nEndps)]
				label[endpoint[q^endptrick^1]] = 0
				assignLabel(endpoint[p^1], 2, p)
				allowedge[q/2] = true
				j += jstep
				p = blossomendps[b][mod(j-endptrick, nEndps)] ^ endptrick
				allowedge[p/2] = true
				j += jstep
			}
			bv := blossomchilds[b][0]
			label[endpoint[p^1]] = 2
			label[bv] = 2
			labelend[endpoint[p^1]] = p
			labelend[bv] = p
			bestedge[bv] = -1
			j += jstep
			nChilds := len(blossomchilds[b])
			for blossomchilds[b][mod(j, nChilds)] != entrychild {
				bv = blossomchilds[b][mod(j, nChilds)]
				if label[bv] == 1 {
					j += jstep
					continue
				}
				var leaves []int
				blossomLeaves(bv, &leaves)
				v := -1
				for _, leaf := range leaves {
					if label[leaf] != 0 {
						v = leaf
						break
					}
				}
				if v != -1 {
					label[v] = 0
					label[endpoint[matepnt[blossombase[bv]]]] = 0
					assignLabel(v, 2, labelend[v])
				}
				j += jstep
			}
		}
		label[b] = -1
		labelend[b] = -1
		blossomchilds[b] = nil
		blossomendps[b] = nil
		blossombase[b] = -1
		blossombestedges[b] = nil
		bestedge[b] = -1
		unusedblossoms = append(unusedblossoms, b)
	}

	augmentBlossom = func(b, v int) {
		t := v
		for blossomparent[t] != b {
			t = blossomparent[t]
		}
		if t >= n {
			augmentBlossom(t, v)
		}
		i := 0
		for idx, s := range blossomchilds[b] {
			if s == t {
				i = idx
				break
			}
		}
		j := i
		var jstep, endptrick int
		if i&1 != 0 {
			j -= len(blossomchilds[b])
			jstep = 1
			endptrick = 0
		} else {
			jstep = -1
			endptrick = 1
		}
		nChilds := len(blossomchilds[b])
		nEndps := len(blossomendps[b])
		for j != 0 {
			j += jstep
			t = blossomchilds[b][mod(j, nChilds)]
			p := blossomendps[b][mod(j-endptrick, nEndps)] ^ endptrick
			if t >= n {
				augmentBlossom(t, endpoint[p])
			}
			j += jstep
			t = blossomchilds[b][mod(j, nChilds)]
			if t >= n {
				augmentBlossom(t, endpoint[p^1])
			}
			matepnt[endpoint[p]] = p ^ 1
			matepnt[endpoint[p^1]] = p
		}
		// Rotate so the entry child comes first (fresh slices: the old
		// backing arrays must not be aliased mid-copy).
		rotatedChilds := make([]int, 0, nChilds)
		rotatedChilds = append(rotatedChilds, blossomchilds[b][i:]...)
		rotatedChilds = append(rotatedChilds, blossomchilds[b][:i]...)
		blossomchilds[b] = rotatedChilds
		rotatedEndps := make([]int, 0, nEndps)
		rotatedEndps = append(rotatedEndps, blossomendps[b][i:]...)
		rotatedEndps = append(rotatedEndps, blossomendps[b][:i]...)
		blossomendps[b] = rotatedEndps
		blossombase[b] = blossombase[blossomchilds[b][0]]
	}

	augmentMatching := func(k int) {
		// Match each endpoint to the edge's remote endpoint, then retrace
		// the alternating tree down to its root, flipping matched edges.
		for _, se := range [][2]int{{edges[k].i, 2*k + 1}, {edges[k].j, 2 * k}} {
			v, p := se[0], se[1]
			for {
				bs := inblossom[v]
				if bs >= n {
					augmentBlossom(bs, v)
				}
				matepnt[v] = p
				if labelend[bs] == -1 {
					break
				}
				t := endpoint[labelend[bs]]
				bt := inblossom[t]
				v = endpoint[labelend[bt]]
				w2 := endpoint[labelend[bt]^1]
				if bt >= n {
					augmentBlossom(bt, w2)
				}
				matepnt[w2] = labelend[bt]
				p = labelend[bt] ^ 1
			}
		}
	}

	// Main loop: at most n stages.
	for iter := 0; iter < n; iter++ {
		for i := range label {
			label[i] = 0
		}
		for i := range bestedge {
			bestedge[i] = -1
		}
		for i := n; i < 2*n; i++ {
			blossombestedges[i] = nil
		}
		for i := range allowedge {
			allowedge[i] = false
		}
		queue = queue[:0]
		for v := 0; v < n; v++ {
			if matepnt[v] == -1 && label[inblossom[v]] == 0 {
				assignLabel(v, 1, -1)
			}
		}
		augmented := false
		for guard := 0; guard < maxIter; guard++ {
			for len(queue) > 0 && !augmented {
				v := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				for _, p := range neighbend[v] {
					k := p / 2
					wv := endpoint[p]
					if inblossom[v] == inblossom[wv] {
						continue
					}
					if !allowedge[k] {
						kslack := slack(k)
						if kslack <= 1e-12 {
							allowedge[k] = true
						}
					}
					if allowedge[k] {
						if label[inblossom[wv]] == 0 {
							assignLabel(wv, 2, p^1)
						} else if label[inblossom[wv]] == 1 {
							base := scanBlossom(v, wv)
							if base >= 0 {
								addBlossom(base, k)
							} else {
								augmentMatching(k)
								augmented = true
								break
							}
						} else if label[wv] == 0 {
							label[wv] = 2
							labelend[wv] = p ^ 1
						}
					} else if label[inblossom[wv]] == 1 {
						b := inblossom[v]
						if bestedge[b] == -1 || slack(k) < slack(bestedge[b]) {
							bestedge[b] = k
						}
					} else if label[wv] == 0 {
						if bestedge[wv] == -1 || slack(k) < slack(bestedge[wv]) {
							bestedge[wv] = k
						}
					}
				}
			}
			if augmented {
				break
			}
			// Dual update.
			deltatype := -1
			delta := math.Inf(1)
			var deltaedge, deltablossom int
			// delta1: minimum dual of a free S-vertex.
			for v := 0; v < n; v++ {
				if label[inblossom[v]] == 1 && dualvar[v] < delta {
					delta = dualvar[v]
					deltatype = 1
				}
			}
			// delta2: minimum slack of an edge from S-vertex to free vertex.
			for v := 0; v < n; v++ {
				if label[inblossom[v]] == 0 && bestedge[v] != -1 {
					d := slack(bestedge[v])
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 2
						deltaedge = bestedge[v]
					}
				}
			}
			// delta3: half minimum slack of an edge between S-blossoms.
			for b := 0; b < 2*n; b++ {
				if blossomparent[b] == -1 && label[b] == 1 && bestedge[b] != -1 {
					d := slack(bestedge[b]) / 2
					if deltatype == -1 || d < delta {
						delta = d
						deltatype = 3
						deltaedge = bestedge[b]
					}
				}
			}
			// delta4: minimum dual of a T-blossom.
			for b := n; b < 2*n; b++ {
				if blossombase[b] >= 0 && blossomparent[b] == -1 && label[b] == 2 &&
					(deltatype == -1 || dualvar[b] < delta) {
					delta = dualvar[b]
					deltatype = 4
					deltablossom = b
				}
			}
			if deltatype == -1 {
				// No progress possible: optimum reached for this stage.
				deltatype = 1
				minAll := math.Inf(1)
				for v := 0; v < n; v++ {
					if dualvar[v] < minAll {
						minAll = dualvar[v]
					}
				}
				delta = math.Max(0, minAll)
			}
			for v := 0; v < n; v++ {
				switch label[inblossom[v]] {
				case 1:
					dualvar[v] -= delta
				case 2:
					dualvar[v] += delta
				}
			}
			for b := n; b < 2*n; b++ {
				if blossombase[b] >= 0 && blossomparent[b] == -1 {
					switch label[b] {
					case 1:
						dualvar[b] += delta
					case 2:
						dualvar[b] -= delta
					}
				}
			}
			switch deltatype {
			case 1:
				// End of this stage.
				guard = maxIter // force exit
			case 2:
				allowedge[deltaedge] = true
				i := edges[deltaedge].i
				if label[inblossom[i]] == 0 {
					i = edges[deltaedge].j
				}
				queue = append(queue, i)
			case 3:
				allowedge[deltaedge] = true
				queue = append(queue, edges[deltaedge].i)
			case 4:
				expandBlossom(deltablossom, false)
			}
			if guard == maxIter {
				break
			}
		}
		if !augmented {
			break
		}
		// Expand all zero-dual top-level blossoms at end of stage.
		for b := n; b < 2*n; b++ {
			if blossomparent[b] == -1 && blossombase[b] >= 0 && label[b] == 1 && dualvar[b] == 0 {
				expandBlossom(b, true)
			}
		}
	}

	var total float64
	for v := 0; v < n; v++ {
		if matepnt[v] >= 0 {
			mate[v] = endpoint[matepnt[v]]
		}
	}
	for v := 0; v < n; v++ {
		if mate[v] > v {
			total += w(v, mate[v])
		}
	}
	return Matching{Mate: mate, Weight: total}
}

func mod(a, b int) int {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
