package matching

import (
	"math"
	"math/rand"
	"testing"
)

func TestBlossomTrivial(t *testing.T) {
	zero := func(i, j int) float64 { return 0 }
	m := Blossom(0, zero)
	if len(m.Mate) != 0 || m.Weight != 0 {
		t.Fatalf("empty graph: %+v", m)
	}
	m = Blossom(1, zero)
	if m.Mate[0] != -1 {
		t.Fatalf("single vertex matched")
	}
	m = Blossom(2, func(i, j int) float64 { return 5 })
	if m.Weight != 5 || m.Mate[0] != 1 {
		t.Fatalf("single edge: %+v", m)
	}
}

func TestBlossomTriangle(t *testing.T) {
	// Odd cycle: only one edge can be matched; the heaviest must win.
	w := tableWeights(3, map[[2]int]float64{{0, 1}: 5, {1, 2}: 4, {0, 2}: 3})
	m := Blossom(3, w)
	if math.Abs(m.Weight-5) > 1e-9 {
		t.Fatalf("triangle weight = %g, want 5", m.Weight)
	}
	if err := m.Validate(w); err != nil {
		t.Fatal(err)
	}
}

func TestBlossomBeatsGreedyGap(t *testing.T) {
	// The classic greedy trap: path with weights 3, 4, 3. Greedy takes the
	// middle edge (4); the optimum takes the outer two (6).
	w := tableWeights(4, map[[2]int]float64{{0, 1}: 3, {1, 2}: 4, {2, 3}: 3})
	m := Blossom(4, w)
	if math.Abs(m.Weight-6) > 1e-9 {
		t.Fatalf("blossom weight = %g, want 6 (mate %v)", m.Weight, m.Mate)
	}
}

func TestBlossomRequiresOddCycleReasoning(t *testing.T) {
	// A 5-cycle with a pendant: maximum weight matching must reason about
	// the odd cycle (the "blossom").
	w := tableWeights(6, map[[2]int]float64{
		{0, 1}: 8, {1, 2}: 9, {2, 3}: 10, {3, 4}: 7, {4, 0}: 8, // 5-cycle
		{2, 5}: 6, // pendant off the cycle
	})
	got := Blossom(6, w)
	want := ExactSmall(6, w)
	if math.Abs(got.Weight-want.Weight) > 1e-9 {
		t.Fatalf("blossom %g != exact %g", got.Weight, want.Weight)
	}
	if err := got.Validate(w); err != nil {
		t.Fatal(err)
	}
}

func TestBlossomMatchesExactDP(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		n := 2 + r.Intn(11)
		var w WeightFunc
		switch trial % 3 {
		case 0:
			w = randWeights(r, n)
		case 1:
			w = discreteWeights(r, n, 4) // tie-heavy
		default:
			// Sparse-ish: zero out ~half the edges.
			dense := randWeights(r, n)
			mask := make([]bool, n*n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					keep := r.Intn(2) == 0
					mask[i*n+j], mask[j*n+i] = keep, keep
				}
			}
			w = func(i, j int) float64 {
				if mask[i*n+j] {
					return dense(i, j)
				}
				return 0
			}
		}
		got := Blossom(n, w)
		want := ExactSmall(n, w)
		if math.Abs(got.Weight-want.Weight) > 1e-6 {
			t.Fatalf("trial %d n=%d: blossom %g != exact %g (mate %v)",
				trial, n, got.Weight, want.Weight, got.Mate)
		}
		if err := got.Validate(w); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBlossomDominatesGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(20)
		w := randWeights(r, n)
		exact := Blossom(n, w)
		greedy := GreedySort(n, w)
		if exact.Weight < greedy.Weight-1e-9 {
			t.Fatalf("trial %d: blossom %g below greedy %g", trial, exact.Weight, greedy.Weight)
		}
		if greedy.Weight < exact.Weight/2-1e-9 {
			t.Fatalf("trial %d: greedy %g below half of blossom %g", trial, greedy.Weight, exact.Weight)
		}
	}
}

func BenchmarkBlossom(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	n := 100
	w := randWeights(r, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Blossom(n, w)
	}
}
