package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPathGrowingHalfApprox(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		n := 2 + r.Intn(11)
		w := randWeights(r, n)
		pg, opt := PathGrowing(n, w), ExactSmall(n, w)
		if pg.Weight < opt.Weight/2-1e-9 {
			t.Fatalf("trial %d n=%d: path-growing %g < half of optimum %g", trial, n, pg.Weight, opt.Weight)
		}
		if pg.Weight > opt.Weight+1e-9 {
			t.Fatalf("trial %d: path-growing %g exceeds optimum %g", trial, pg.Weight, opt.Weight)
		}
		if err := pg.Validate(w); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPathGrowingKnown(t *testing.T) {
	// Path 0-1-2-3 with weights 1, 10, 1: the two color classes are
	// {(0,1),(2,3)} = 2 and {(1,2)} = 10; path-growing keeps the heavier.
	w := tableWeights(4, map[[2]int]float64{{0, 1}: 1, {1, 2}: 10, {2, 3}: 1})
	m := PathGrowing(4, w)
	if m.Weight < 10 {
		t.Fatalf("weight = %g, want >= 10", m.Weight)
	}
}

func TestPathGrowingDegenerate(t *testing.T) {
	zero := func(i, j int) float64 { return 0 }
	m := PathGrowing(1, zero)
	if m.Mate[0] != -1 {
		t.Fatal("single vertex matched")
	}
	m = PathGrowing(0, zero)
	if len(m.Mate) != 0 {
		t.Fatal("empty graph produced mates")
	}
	m = PathGrowing(4, zero)
	if err := m.Validate(zero); err != nil {
		t.Fatal(err)
	}
}

func TestPathGrowingWithTies(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(10)
		w := discreteWeights(r, n, 2)
		m := PathGrowing(n, w)
		if err := m.Validate(w); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestQuickPathGrowingDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(14)
		w := randWeights(r, n)
		m := PathGrowing(n, w)
		return m.Validate(w) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPathGrowing(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	n := 400
	w := randWeights(r, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PathGrowing(n, w)
	}
}
