// Package matching computes maximum-weight matchings on complete weighted
// graphs. Both HTA algorithms first compute a matching M_B on the diversity
// graph B — vertices are tasks, edge weights are pairwise diversities
// d(t_k, t_l) — to identify high-diversity task pairs (Line 2 of Algorithms
// 1 and 2). Arkin et al.'s analysis, which the paper's proofs adapt, only
// needs M_B to satisfy the local-domination inequalities of a greedy
// matching (Equations 9–10 in the appendix), so a ½-approximation suffices.
//
// Two ½-approximate algorithms are provided:
//
//   - GreedySort: the textbook greedy — sort all edges by weight, take an
//     edge when both endpoints are free. O(n² log n) time but Θ(n²) memory
//     for the edge list.
//   - Suitor: the suitor algorithm of Manne & Halappanavar, which computes
//     exactly the same matching as greedy under a fixed total order on
//     edges but needs only O(n) memory, at O(n²) expected time on complete
//     graphs. Used above the edge-list memory threshold.
//
// ExactSmall computes a true maximum-weight matching by bitmask DP for
// cross-checking the approximation guarantee in tests.
package matching

import (
	"fmt"
	"math"
	"sort"

	"github.com/htacs/ata/internal/par"
)

// WeightFunc returns the weight of edge {i, j}, i ≠ j. It must be symmetric
// and non-negative; callers in this repository pass metric distances.
type WeightFunc func(i, j int) float64

// Matching is a set of vertex-disjoint edges.
type Matching struct {
	// Mate[v] is the vertex matched to v, or -1 if v is unmatched.
	Mate []int
	// Weight is the total weight of matched edges.
	Weight float64
}

// Edges returns the matched pairs (i, j) with i < j.
func (m Matching) Edges() [][2]int {
	var out [][2]int
	for i, j := range m.Mate {
		if j > i {
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// Size returns the number of matched edges.
func (m Matching) Size() int {
	n := 0
	for i, j := range m.Mate {
		if j > i {
			n++
		}
	}
	return n
}

// Validate checks that Mate is an involution without fixed points and that
// Weight equals the sum of matched edge weights.
func (m Matching) Validate(w WeightFunc) error {
	var total float64
	for i, j := range m.Mate {
		if j == -1 {
			continue
		}
		if j < 0 || j >= len(m.Mate) || j == i {
			return fmt.Errorf("matching: Mate[%d] = %d invalid", i, j)
		}
		if m.Mate[j] != i {
			return fmt.Errorf("matching: Mate[%d]=%d but Mate[%d]=%d", i, j, j, m.Mate[j])
		}
		if j > i {
			total += w(i, j)
		}
	}
	if math.Abs(total-m.Weight) > 1e-6 {
		return fmt.Errorf("matching: recorded weight %g != recomputed %g", m.Weight, total)
	}
	return nil
}

// DefaultEdgeListLimit is the number of edges above which Auto switches
// from GreedySort to the memory-light Suitor algorithm (~48 MB of edges).
const DefaultEdgeListLimit = 3_000_000

// Auto picks GreedySort when the complete graph's edge list fits in
// DefaultEdgeListLimit entries, Suitor otherwise. Both produce the same
// matching (greedy under the (weight, lower-index) total order).
func Auto(n int, w WeightFunc) Matching {
	return AutoP(n, w, 1)
}

// AutoP is Auto with the edge-list construction sharded across p goroutines
// (p >= 1 literal, p <= 0 → runtime.NumCPU()). The matching returned is
// identical to Auto's for any p: parallelism only changes when edge weights
// are evaluated, never the edge order the greedy pass consumes. w must
// therefore be safe for concurrent calls (all weight functions in this
// repository are: they read immutable instances).
func AutoP(n int, w WeightFunc, p int) Matching {
	if n*(n-1)/2 <= DefaultEdgeListLimit {
		return GreedySortP(n, w, p)
	}
	return Suitor(n, w)
}

type edge struct {
	w    float64
	i, j int32
}

// GreedySort runs the classic greedy matching: consider edges in decreasing
// weight (ties broken by lower endpoint indices), taking an edge when both
// endpoints are still free. It is a ½-approximation of the maximum-weight
// matching and, on a complete graph, leaves at most one vertex unmatched.
func GreedySort(n int, w WeightFunc) Matching {
	return GreedySortP(n, w, 1)
}

// rowBase is the edge-list offset of row i in the row-major upper-triangle
// layout GreedySort uses: edge (i, j), j > i, lives at rowBase(n, i)+j-i-1.
func rowBase(n, i int) int { return i * (2*n - i - 1) / 2 }

// GreedySortP is GreedySort with the edge list filled by p goroutines
// (p >= 1 literal, p <= 0 → runtime.NumCPU()). Each edge is written to its
// position-determined slot, so the list — and with edgeLess being a strict
// total order, the sorted order and the matching — is identical to the
// serial one. w must be safe for concurrent calls.
func GreedySortP(n int, w WeightFunc, p int) Matching {
	edges := make([]edge, n*(n-1)/2)
	// Row i contributes n-1-i edges; weight the chunks accordingly.
	par.DoWeighted(n, p, func(i int) int { return n - 1 - i }, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := rowBase(n, i)
			for j := i + 1; j < n; j++ {
				edges[base+j-i-1] = edge{w: w(i, j), i: int32(i), j: int32(j)}
			}
		}
	})
	sort.Slice(edges, func(a, b int) bool { return edgeLess(edges[b], edges[a]) })
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	var total float64
	matched := 0
	for _, e := range edges {
		if matched >= n-1 {
			break
		}
		if mate[e.i] == -1 && mate[e.j] == -1 {
			mate[e.i], mate[e.j] = int(e.j), int(e.i)
			total += e.w
			matched += 2
		}
	}
	return Matching{Mate: mate, Weight: total}
}

// edgeLess is the strict total order on edges used by both greedy variants:
// lighter first, ties broken by higher endpoint indices, so that the
// *reverse* order is "heavier first, then lower (i, j)".
func edgeLess(a, b edge) bool {
	if a.w != b.w {
		return a.w < b.w
	}
	if a.i != b.i {
		return a.i > b.i
	}
	return a.j > b.j
}

// prefer reports whether, for vertex u, the offer from vertex a with weight
// wa beats the offer from vertex b with weight wb under the same total
// order used by GreedySort.
func prefer(u int, wa float64, a int, wb float64, b int) bool {
	if wa != wb {
		return wa > wb
	}
	// Tie: the edge with the lexicographically smaller (min, max) endpoint
	// pair wins, mirroring edgeLess.
	ai, aj := u, a
	if ai > aj {
		ai, aj = aj, ai
	}
	bi, bj := u, b
	if bi > bj {
		bi, bj = bj, bi
	}
	if ai != bi {
		return ai < bi
	}
	return aj < bj
}

// Suitor computes the greedy matching with O(n) memory using the suitor
// algorithm: every vertex proposes to the best neighbour that would accept
// it, displacing weaker suitors, until proposals stabilize. With a strict
// total order on edges the fixed point is exactly the greedy matching.
func Suitor(n int, w WeightFunc) Matching {
	suitor := make([]int, n) // current best proposer for each vertex, -1 if none
	for i := range suitor {
		suitor[i] = -1
	}
	offer := make([]float64, n) // weight of the suitor's edge
	for u := 0; u < n; u++ {
		current := u
		for current != -1 {
			bestV, bestW := -1, 0.0
			for v := 0; v < n; v++ {
				if v == current {
					continue
				}
				wv := w(current, v)
				// The offer must beat v's current suitor's offer.
				if suitor[v] != -1 && !prefer(v, wv, current, offer[v], suitor[v]) {
					continue
				}
				if bestV == -1 || prefer(current, wv, v, bestW, bestV) {
					bestV, bestW = v, wv
				}
			}
			if bestV == -1 {
				break
			}
			displaced := suitor[bestV]
			suitor[bestV] = current
			offer[bestV] = bestW
			current = displaced
		}
	}
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	var total float64
	for v := 0; v < n; v++ {
		u := suitor[v]
		if u != -1 && suitor[u] == v && mate[v] == -1 && mate[u] == -1 {
			mate[v], mate[u] = u, v
			total += w(u, v)
		}
	}
	return Matching{Mate: mate, Weight: total}
}

// ExactSmall computes a maximum-weight matching by dynamic programming over
// vertex subsets in O(n·2ⁿ) time. It panics for n > 18 and exists to
// cross-check the ½-approximation guarantee in tests.
func ExactSmall(n int, w WeightFunc) Matching {
	if n > 18 {
		panic(fmt.Sprintf("matching: ExactSmall limited to n <= 18, got %d", n))
	}
	size := 1 << uint(n)
	dp := make([]float64, size)
	choice := make([]int32, size) // packed (i<<8)|j of the matched pair, or -1 for "skip lowest"
	for s := range choice {
		choice[s] = -1
	}
	for s := 1; s < size; s++ {
		// Lowest set bit is vertex i.
		i := 0
		for s&(1<<uint(i)) == 0 {
			i++
		}
		rest := s &^ (1 << uint(i))
		// Option 1: leave i unmatched.
		dp[s] = dp[rest]
		choice[s] = -1
		// Option 2: match i with some j in rest.
		for j := i + 1; j < n; j++ {
			if rest&(1<<uint(j)) == 0 {
				continue
			}
			cand := w(i, j) + dp[rest&^(1<<uint(j))]
			if cand > dp[s] {
				dp[s] = cand
				choice[s] = int32(i<<8 | j)
			}
		}
	}
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	s := size - 1
	for s != 0 {
		c := choice[s]
		i := 0
		for s&(1<<uint(i)) == 0 {
			i++
		}
		if c == -1 {
			s &^= 1 << uint(i)
			continue
		}
		pi, pj := int(c>>8), int(c&0xff)
		mate[pi], mate[pj] = pj, pi
		s &^= (1 << uint(pi)) | (1 << uint(pj))
	}
	return Matching{Mate: mate, Weight: dp[size-1]}
}
