package matching

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestGreedySortPParity: the parallel edge-list fill must yield exactly the
// serial matching for any p, including p > n.
func TestGreedySortPParity(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		n := r.Intn(40)
		w := randWeights(r, n)
		serial := GreedySort(n, w)
		for _, p := range []int{2, 4, 9, n + 3} {
			got := GreedySortP(n, w, p)
			if !reflect.DeepEqual(got.Mate, serial.Mate) || got.Weight != serial.Weight {
				t.Fatalf("trial %d n=%d p=%d: parallel matching diverges from serial", trial, n, p)
			}
		}
	}
}

// TestBlossomPParity: the parallel sparse-edge construction must preserve
// Blossom's edge order and therefore its matching.
func TestBlossomPParity(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(24)
		w := randWeights(r, n)
		serial := Blossom(n, w)
		for _, p := range []int{2, 5, n + 1} {
			got := BlossomP(n, w, p)
			if !reflect.DeepEqual(got.Mate, serial.Mate) || got.Weight != serial.Weight {
				t.Fatalf("trial %d n=%d p=%d: parallel blossom diverges from serial", trial, n, p)
			}
		}
	}
}

// TestAutoPParity: AutoP must agree with Auto at every parallelism level.
func TestAutoPParity(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	n := 60
	w := randWeights(r, n)
	serial := Auto(n, w)
	for _, p := range []int{1, 3, 8} {
		got := AutoP(n, w, p)
		if !reflect.DeepEqual(got.Mate, serial.Mate) || got.Weight != serial.Weight {
			t.Fatalf("p=%d: AutoP diverges from Auto", p)
		}
	}
}
