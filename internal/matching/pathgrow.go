package matching

// PathGrowing implements the Drake–Hougardy path-growing algorithm — the
// paper's citation [23] for the ½-approximation quality of simple matching
// heuristics. It grows vertex-disjoint paths by always extending along the
// heaviest incident edge, alternately coloring edges into two candidate
// matchings, and keeps the heavier of the two. Like GreedySort and Suitor
// it guarantees weight ≥ ½·OPT, but in O(n²) time with no edge sorting at
// all, making it the cheapest of the three on dense graphs. The matchings
// it produces generally differ from greedy's; the solvers accept it via
// solver.WithMatcher for ablation runs.
func PathGrowing(n int, w WeightFunc) Matching {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	// Two alternating color classes of edges.
	colors := [2][][2]int{}
	weights := [2]float64{}

	for start := 0; start < n; start++ {
		if !alive[start] {
			continue
		}
		v := start
		color := 0
		for {
			alive[v] = false
			// Heaviest edge from v to an alive vertex with positive weight;
			// zero-weight edges neither help nor hurt the matching weight,
			// but taking them preserves maximality on complete graphs.
			best, bestW := -1, -1.0
			for u := 0; u < n; u++ {
				if !alive[u] {
					continue
				}
				if uw := w(v, u); uw > bestW {
					best, bestW = u, uw
				}
			}
			if best == -1 {
				break
			}
			colors[color] = append(colors[color], [2]int{v, best})
			weights[color] += bestW
			color = 1 - color
			v = best
		}
	}

	pick := 0
	if weights[1] > weights[0] {
		pick = 1
	}
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	var total float64
	for _, e := range colors[pick] {
		// Path edges of one color class are vertex-disjoint by
		// construction, but guard anyway.
		if mate[e[0]] == -1 && mate[e[1]] == -1 {
			mate[e[0]], mate[e[1]] = e[1], e[0]
			total += w(e[0], e[1])
		}
	}
	return Matching{Mate: mate, Weight: total}
}
