package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("w%06d", i)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 64); err == nil {
		t.Error("empty member name accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 64); err == nil {
		t.Error("duplicate member accepted")
	}
	r, err := NewRing([]string{"b", "a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VirtualNodes() != 64 {
		t.Errorf("default vnodes = %d", r.VirtualNodes())
	}
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Members() = %v", got)
	}
	if _, err := r.Without("ghost"); err == nil {
		t.Error("Without(ghost) accepted")
	}
	if _, err := r.With("a"); err == nil {
		t.Error("With(existing) accepted")
	}
}

// TestRingOwnershipBalanced is the balance property: at every cluster
// size, the busiest member owns at most a bounded multiple of the
// quietest member's keys. With 64 vnodes the fmix64-mixed ring keeps the
// max/min ratio modest; a blowup here means the vnode hashing regressed
// into the banding problem the finalizer exists to fix.
func TestRingOwnershipBalanced(t *testing.T) {
	keys := ringKeys(20000)
	for _, n := range []int{2, 3, 4, 8} {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("node-%d", i)
		}
		r, err := NewRing(members, 64)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Lookup(k)]++
		}
		min, max := len(keys), 0
		for _, m := range members {
			c := counts[m]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if min == 0 {
			t.Fatalf("n=%d: a member owns zero keys: %v", n, counts)
		}
		ratio := float64(max) / float64(min)
		if ratio > 2.5 {
			t.Errorf("n=%d: ownership ratio max/min = %.2f (%v)", n, ratio, counts)
		}
		t.Logf("n=%d: max/min = %.2f", n, ratio)
	}
}

// TestRingLeaveMovesOnlyDepartedKeys: removing a member must reassign
// exactly the keys it owned — every key owned by a survivor keeps its
// owner. This is the property that makes failover requeue bounded: only
// the dead node's tasks move.
func TestRingLeaveMovesOnlyDepartedKeys(t *testing.T) {
	keys := ringKeys(10000)
	members := []string{"n0", "n1", "n2", "n3"}
	r, err := NewRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	smaller, err := r.Without("n2")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		after := smaller.Lookup(k)
		if before[k] == "n2" {
			if after == "n2" {
				t.Fatalf("key %s still owned by departed member", k)
			}
			moved++
			continue
		}
		if after != before[k] {
			t.Fatalf("key %s moved %s -> %s though its owner survived", k, before[k], after)
		}
	}
	if moved == 0 {
		t.Fatal("departed member owned no keys")
	}
}

// TestRingJoinMovesMinimalFraction: adding a member must steal roughly
// 1/n of the keys (its fair share) and nothing may move between two
// surviving members.
func TestRingJoinMovesMinimalFraction(t *testing.T) {
	keys := ringKeys(20000)
	members := []string{"n0", "n1", "n2"}
	r, err := NewRing(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}
	bigger, err := r.With("n3")
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		after := bigger.Lookup(k)
		if after == before[k] {
			continue
		}
		if after != "n3" {
			t.Fatalf("key %s moved %s -> %s, not to the joiner", k, before[k], after)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	// Fair share is 1/4; allow generous slack for vnode placement noise,
	// but reject both a no-op join and a mass reshuffle.
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("join moved %.1f%% of keys, want ~25%%", 100*frac)
	}
	t.Logf("join moved %.1f%% of keys", 100*frac)
}

// TestRingLookupDeterministic: the ring is a pure function of its member
// set — two independently built rings agree on every key, regardless of
// construction order.
func TestRingLookupDeterministic(t *testing.T) {
	a, err := NewRing([]string{"x", "y", "z"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"z", "x", "y"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(2000) {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("order-dependent ownership for %s: %s vs %s", k, a.Lookup(k), b.Lookup(k))
		}
	}
}
