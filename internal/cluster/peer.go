package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/trace"
)

// ErrPeerDown is returned for operations addressed to a node the gateway
// has marked unhealthy (or that failed every frame retry).
var ErrPeerDown = errors.New("cluster: peer down")

// call is one op's journey through a peer: enqueued, coalesced into a
// frame, resolved when the frame's response lands. Calls are pooled —
// the done channel is used strictly once per trip (one send, one
// receive), so it returns to the pool empty.
type call struct {
	op   Op
	res  OpResult
	err  error
	span *trace.Span // RPC span, ended when the call resolves (nil unsampled)
	done chan struct{}
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

func getCall(op Op) *call {
	c := callPool.Get().(*call)
	c.op = op
	c.res = OpResult{}
	c.err = nil
	return c
}

func putCall(c *call) {
	c.op = Op{}
	c.res = OpResult{}
	c.span = nil
	callPool.Put(c)
}

// peer is the client half of the batched RPC protocol for one node:
// concurrent ops enqueue into a pending queue; senders drain the queue
// into frames of up to maxBatch ops, with up to window frames in flight
// at once (pipelining). The drain is the shard actor's mailbox-batching
// idiom applied to the wire — under load, frames fill and per-op HTTP
// overhead amortizes away; when traffic is light a frame carries one op
// and latency matches unbatched RPC.
type peer struct {
	name string
	base string // e.g. http://127.0.0.1:9001
	hc   *http.Client

	maxBatch int
	window   int
	retries  int           // attempts per frame, first included
	backoff  time.Duration // base backoff between frame retries

	mu       sync.Mutex
	pending  []*call
	inflight int
	closed   bool

	// telemetry: frames sent and ops carried, so benches can report the
	// realized coalescing factor.
	frames atomic.Int64
	ops    atomic.Int64

	// RPC-internal instruments (per peer, labeled peer="name"): realized
	// frame coalescing, pipelining-window occupancy, and retry pressure —
	// the previously invisible internals the federated /metrics surfaces.
	batchSize  *obs.Histogram
	windowOcc  *obs.Gauge
	retriesCtr *obs.Counter

	// health state, owned by the gateway's heartbeat loop.
	down  atomic.Bool
	fails atomic.Int32

	// frame ID source: a random 8-byte prefix per peer plus a counter —
	// unique across gateway restarts without per-frame crypto/rand reads.
	idPrefix [8]byte
	idSeq    atomic.Uint64
}

func newPeer(name, base string, hc *http.Client, reg *obs.Registry, maxBatch, window, retries int, backoff time.Duration) *peer {
	if reg == nil {
		reg = obs.Default()
	}
	p := &peer{
		name: name, base: base, hc: hc,
		maxBatch: maxBatch, window: window, retries: retries, backoff: backoff,
		batchSize: reg.Histogram("hta_cluster_frame_batch_size",
			"ops coalesced into each RPC frame", obs.SizeBuckets(), obs.L("peer", name)),
		windowOcc: reg.Gauge("hta_cluster_window_inflight",
			"frames currently in flight in the pipelining window", obs.L("peer", name)),
		retriesCtr: reg.Counter("hta_cluster_frame_retries_total",
			"frame retry attempts (same frame ID, replay-deduplicated node-side)", obs.L("peer", name)),
	}
	binary.LittleEndian.PutUint64(p.idPrefix[:], rand.Uint64())
	return p
}

// frameID mints a unique frame identifier.
func (p *peer) frameID() string {
	var raw [16]byte
	copy(raw[:8], p.idPrefix[:])
	binary.LittleEndian.PutUint64(raw[8:], p.idSeq.Add(1))
	return hex.EncodeToString(raw[:])
}

// do enqueues op and waits for its result — the synchronous surface the
// gateway routes through. Concurrent do calls to the same peer coalesce
// into shared frames.
func (p *peer) do(op Op) (OpResult, error) {
	c := p.doAsync(op)
	return p.wait(c)
}

// doCtx is do with trace propagation (see doAsyncCtx).
func (p *peer) doCtx(ctx context.Context, op Op) (OpResult, error) {
	c := p.doAsyncCtx(ctx, op)
	return p.wait(c)
}

// doAsyncCtx is doAsync plus cross-node trace propagation: when ctx
// carries a sampled span, a "cluster.rpc" child opens here — covering
// coalesce wait, wire time, and the node-side apply — and its identity
// rides inside the op so the node joins the same trace. Unsampled
// contexts take the plain path untouched.
func (p *peer) doAsyncCtx(ctx context.Context, op Op) *call {
	if sp := trace.FromContext(ctx); sp != nil {
		_, rpc := trace.Start(ctx, "cluster.rpc",
			trace.Str("peer", p.name), trace.Str("op", op.Op))
		op.Span = &SpanRef{TraceID: rpc.TraceID().String(), SpanID: rpc.SpanID().String()}
		c := p.doAsync(op)
		c.span = rpc
		return c
	}
	return p.doAsync(op)
}

// doAsync enqueues op and returns the pending call; the caller must
// resolve it with wait. Scatter paths enqueue on every peer first, then
// wait, so frames to different nodes travel concurrently.
func (p *peer) doAsync(op Op) *call {
	c := getCall(op)
	if p.down.Load() {
		c.err = fmt.Errorf("%w: %s", ErrPeerDown, p.name)
		c.done <- struct{}{}
		return c
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.err = fmt.Errorf("%w: %s (closed)", ErrPeerDown, p.name)
		c.done <- struct{}{}
		return c
	}
	p.pending = append(p.pending, c)
	p.maybeSendLocked()
	p.mu.Unlock()
	return c
}

// wait blocks until the call resolves, recycles it, and returns the
// outcome. The RPC span (if any) ends here — its duration is the full
// client-observed trip: queue wait, wire, node apply, decode.
func (p *peer) wait(c *call) (OpResult, error) {
	<-c.done
	res, err := c.res, c.err
	if c.span != nil {
		if err != nil {
			c.span.SetAttrs(trace.Str("error", err.Error()))
		}
		c.span.End()
	}
	putCall(c)
	return res, err
}

// maybeSendLocked launches senders while there is pending work and a free
// in-flight slot. Caller holds p.mu.
func (p *peer) maybeSendLocked() {
	for p.inflight < p.window && len(p.pending) > 0 {
		n := len(p.pending)
		if n > p.maxBatch {
			n = p.maxBatch
		}
		batch := make([]*call, n)
		copy(batch, p.pending)
		rest := copy(p.pending, p.pending[n:])
		for i := rest; i < len(p.pending); i++ {
			p.pending[i] = nil
		}
		p.pending = p.pending[:rest]
		p.inflight++
		p.windowOcc.Set(float64(p.inflight))
		go p.send(batch)
	}
}

// send ships one frame and resolves its calls. Transient failures (transport
// errors, 5xx) retry the same frame ID with backoff — the node's replay
// cache makes the retry idempotent even if the previous attempt was
// applied and only the response was lost.
func (p *peer) send(batch []*call) {
	defer func() {
		p.mu.Lock()
		p.inflight--
		p.windowOcc.Set(float64(p.inflight))
		if !p.closed {
			p.maybeSendLocked()
		}
		p.mu.Unlock()
	}()
	p.batchSize.Observe(float64(len(batch)))
	frame := Frame{ID: p.frameID(), Ops: make([]Op, len(batch))}
	for i, c := range batch {
		frame.Ops[i] = c.op
	}
	res, err := p.roundTrip(&frame)
	if err == nil && len(res.Results) != len(batch) {
		err = fmt.Errorf("cluster: node %s answered %d results for %d ops", p.name, len(res.Results), len(batch))
	}
	if err != nil {
		p.fails.Add(1)
		for _, c := range batch {
			c.err = fmt.Errorf("cluster: node %s: %w", p.name, err)
			c.done <- struct{}{}
		}
		return
	}
	p.fails.Store(0)
	p.frames.Add(1)
	p.ops.Add(int64(len(batch)))
	for i, c := range batch {
		c.res = res.Results[i]
		c.done <- struct{}{}
	}
}

// roundTrip POSTs the frame, retrying transient failures with the same
// frame ID. The encoded request body lives in a pooled buffer reused
// across attempts.
func (p *peer) roundTrip(frame *Frame) (*FrameResult, error) {
	body, err := encodeJSON(frame)
	if err != nil {
		return nil, err
	}
	defer putBuf(body)
	var lastErr error
	for attempt := 0; attempt < p.retries; attempt++ {
		if attempt > 0 {
			p.retriesCtr.Inc()
			d := p.backoff << (attempt - 1)
			if d <= 0 || d > time.Second {
				d = time.Second
			}
			time.Sleep(d)
			if p.down.Load() {
				return nil, ErrPeerDown
			}
		}
		req, err := http.NewRequest(http.MethodPost, p.base+"/cluster/batch", bytes.NewReader(body.Bytes()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := p.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode >= 500 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("HTTP %d", resp.StatusCode)
			continue
		}
		if resp.StatusCode >= 400 {
			defer resp.Body.Close()
			return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
		}
		var out FrameResult
		err = decodeBody(resp.Body, &out)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return &out, nil
	}
	return nil, lastErr
}

// decodeBody reads the full response through a pooled buffer before
// unmarshalling — the decode scratch is reused frame to frame.
func decodeBody(r io.Reader, v any) error {
	b := getBuf()
	defer putBuf(b)
	if _, err := b.ReadFrom(r); err != nil {
		return err
	}
	return json.Unmarshal(b.Bytes(), v)
}

// markDown flips the peer unhealthy: queued and future ops fail fast with
// ErrPeerDown so the gateway can requeue instead of stalling.
func (p *peer) markDown() {
	if p.down.Swap(true) {
		return
	}
	p.mu.Lock()
	pending := p.pending
	p.pending = nil
	p.mu.Unlock()
	for _, c := range pending {
		c.err = fmt.Errorf("%w: %s", ErrPeerDown, p.name)
		c.done <- struct{}{}
	}
}

// markUp clears the unhealthy flag (rejoin).
func (p *peer) markUp() {
	p.fails.Store(0)
	p.down.Store(false)
}

// close fails all pending ops and stops accepting new ones.
func (p *peer) close() {
	p.mu.Lock()
	p.closed = true
	pending := p.pending
	p.pending = nil
	p.mu.Unlock()
	for _, c := range pending {
		c.err = fmt.Errorf("%w: %s (closed)", ErrPeerDown, p.name)
		c.done <- struct{}{}
	}
}

// snapshot fetches GET /cluster/snapshot — the node's quiesced engine
// snapshot, raw bytes for the gateway's merge.
func (p *peer) snapshot(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/cluster/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot %s: HTTP %d", p.name, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// health probes GET /cluster/health once. A sampled context propagates
// its trace identity in headers so the node's handling joins the
// heartbeat's trace.
func (p *peer) health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/cluster/health", nil)
	if err != nil {
		return nil, err
	}
	if sc, ok := trace.SpanContextFromContext(ctx); ok {
		req.Header.Set("X-Trace-Id", sc.TraceID.String())
		req.Header.Set("X-Span-Id", sc.SpanID.String())
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: health %s: HTTP %d", p.name, resp.StatusCode)
	}
	var h Health
	if err := decodeBody(resp.Body, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
