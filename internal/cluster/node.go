package cluster

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/trace"
)

// Node is the server half of the cluster RPC protocol: an http.Handler
// that applies batched op frames to the local shard.Engine. Mount it
// alongside the public API (hta-server -node does this under /cluster/).
//
// Routes:
//
//	POST /cluster/batch    apply a frame of ops; returns index-aligned results
//	GET  /cluster/health   liveness + load picture (the heartbeat target)
//	GET  /cluster/snapshot the node's quiesced engine snapshot (merge input)
type Node struct {
	Name    string
	eng     *shard.Engine
	mux     *http.ServeMux
	frames  *frameCache
	tracer  *trace.Recorder
	journal *ops.Journal

	dedupHits *obs.Counter
}

// NodeConfig parameterizes a Node.
type NodeConfig struct {
	// Name is this node's cluster member name (must match the gateway's
	// -peers entry).
	Name string
	// Engine is the local sharded streaming engine the ops apply to.
	Engine *shard.Engine
	// FrameCache bounds the replay-dedup cache: the last N frame
	// responses are kept so a retried frame replays instead of
	// re-applying. Default 1024.
	FrameCache int
	// Tracer records node-side apply spans for ops that carry a sampled
	// trace context (trace.Default() when nil). The gateway pulls this
	// ring's wire form when stitching cluster traces.
	Tracer *trace.Recorder
	// Registry receives the node's RPC instruments (obs.Default() when
	// nil).
	Registry *obs.Registry
	// Journal receives node-side operational events, e.g. snapshot cuts
	// (ops.Default() when nil).
	Journal *ops.Journal
}

// NewNode validates the configuration and builds the handler.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("cluster: node needs a name")
	}
	if cfg.Engine == nil {
		return nil, errors.New("cluster: node needs an engine")
	}
	if cfg.FrameCache == 0 {
		cfg.FrameCache = 1024
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Default()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Journal == nil {
		cfg.Journal = ops.Default()
	}
	n := &Node{
		Name: cfg.Name, eng: cfg.Engine, frames: newFrameCache(cfg.FrameCache),
		tracer: cfg.Tracer, journal: cfg.Journal,
		dedupHits: cfg.Registry.Counter("hta_cluster_replay_dedup_hits_total",
			"retried frames answered from the replay cache instead of re-applying"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/batch", n.handleBatch)
	mux.HandleFunc("GET /cluster/health", n.handleHealth)
	mux.HandleFunc("GET /cluster/snapshot", n.handleSnapshot)
	n.mux = mux
	return n, nil
}

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) { n.mux.ServeHTTP(w, r) }

// Health is the body of GET /cluster/health: enough of the node's load
// picture for the gateway to track membership and fold the node's
// internal drop count into the global accounting.
type Health struct {
	Node      string `json:"node"`
	Shards    int    `json:"shards"`
	Workers   int    `json:"workers"`
	Active    int    `json:"active"`
	Backlog   int    `json:"backlog"`
	Free      int    `json:"free"`
	Dropped   int64  `json:"dropped"`
	Completed int64  `json:"completed"`
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Heartbeats propagate trace context in headers (there is no frame to
	// carry it); a sampled probe records its node-side handling.
	if sc, err := trace.ParseSpanContext(r.Header.Get("X-Trace-Id"), r.Header.Get("X-Span-Id")); err == nil && sc.Valid() {
		_, sp := n.tracer.StartRemote(r.Context(), sc, "node.health", trace.Str("node", n.Name))
		defer sp.End()
	}
	st := n.eng.Stats()
	h := Health{
		Node: n.Name, Shards: st.Shards, Workers: st.Workers,
		Active: st.Active, Backlog: st.Buffered,
		Free: n.eng.FreeCapacity(), Dropped: st.Dropped, Completed: st.Completed,
	}
	buf, err := encodeJSON(h)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer putBuf(buf)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(buf.Bytes())
}

func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	n.journal.Emit(ops.EventSnapshot, n.Name)
	w.Header().Set("Content-Type", "application/json")
	if err := n.eng.Snapshot(w); err != nil {
		// Headers are gone; the gateway detects the truncated document.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
	}
}

func (n *Node) handleBatch(w http.ResponseWriter, r *http.Request) {
	var frame Frame
	if err := json.NewDecoder(r.Body).Decode(&frame); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")

	// Replay dedup: a frame ID seen before returns the cached response
	// bytes; an in-progress duplicate waits for the first application to
	// finish rather than racing it.
	if frame.ID != "" {
		if cached, inflight := n.frames.begin(frame.ID); cached != nil {
			n.dedupHits.Inc()
			_, _ = w.Write(cached)
			return
		} else if inflight != nil {
			<-inflight
			if cached, _ := n.frames.begin(frame.ID); cached != nil {
				n.dedupHits.Inc()
				_, _ = w.Write(cached)
				return
			}
			// The first application failed to record (encode error);
			// fall through and apply — ops are then at-least-once.
		}
	}

	res := FrameResult{Results: make([]OpResult, len(frame.Ops))}
	for i := range frame.Ops {
		res.Results[i] = n.apply(r.Context(), &frame.Ops[i])
	}
	buf, err := encodeJSON(&res)
	if err != nil {
		n.frames.abort(frame.ID)
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	defer putBuf(buf)
	if frame.ID != "" {
		n.frames.commit(frame.ID, buf.Bytes())
	}
	_, _ = w.Write(buf.Bytes())
}

// apply runs one op against the engine. An op carrying a sampled trace
// context (propagated from the gateway's RPC span) joins that trace: a
// "node.apply" span wraps decode + engine work, and ctx-aware engine
// paths nest their own spans beneath it, so the stitched cluster trace
// shows gateway coalescing, wire time, and shard apply in one tree.
func (n *Node) apply(ctx context.Context, op *Op) OpResult {
	if op.Span != nil {
		if sc, err := trace.ParseSpanContext(op.Span.TraceID, op.Span.SpanID); err == nil && sc.Valid() {
			var sp *trace.Span
			ctx, sp = n.tracer.StartRemote(ctx, sc, "node.apply",
				trace.Str("node", n.Name), trace.Str("op", op.Op))
			defer sp.End()
		}
	}
	return n.applyOp(ctx, op)
}

func (n *Node) applyOp(ctx context.Context, op *Op) OpResult {
	fail := func(err error) OpResult {
		r := OpResult{Err: err.Error()}
		switch {
		case errors.Is(err, stream.ErrBufferFull):
			r.Code = codeFull
		case errors.Is(err, shard.ErrClosed):
			r.Code = codeClosed
		}
		return r
	}
	switch op.Op {
	case opScore:
		if op.Task == nil {
			return fail(errors.New("cluster: score without task"))
		}
		t, err := wireToTask(*op.Task)
		if err != nil {
			return fail(err)
		}
		trace.Event(ctx, "node.decode", trace.Str("task", t.ID))
		gain, rel, free := n.eng.BestGain(t)
		trace.Event(ctx, "node.score", trace.Float("gain", gain), trace.Bool("free", free))
		return OpResult{OK: true, Gain: gain, Rel: rel, Free: free, Backlog: n.eng.BufferLen()}
	case opCommit:
		if op.Task == nil {
			return fail(errors.New("cluster: commit without task"))
		}
		t, err := wireToTask(*op.Task)
		if err != nil {
			return fail(err)
		}
		trace.Event(ctx, "node.decode", trace.Str("task", t.ID))
		wid, ok := n.eng.TryAssign(t)
		trace.Event(ctx, "node.commit", trace.Str("worker", wid), trace.Bool("ok", ok))
		return OpResult{OK: ok, WorkerID: wid}
	case opBuffer:
		if op.Task == nil {
			return fail(errors.New("cluster: buffer without task"))
		}
		t, err := wireToTask(*op.Task)
		if err != nil {
			return fail(err)
		}
		trace.Event(ctx, "node.decode", trace.Str("task", t.ID))
		if err := n.eng.BufferAny(t); err != nil {
			return fail(err)
		}
		return OpResult{OK: true}
	case opComplete:
		next, err := n.eng.CompleteCtx(ctx, op.WorkerID, op.TaskID)
		if err != nil {
			return fail(err)
		}
		r := OpResult{OK: true}
		if next != nil {
			tw := taskToWire(next)
			r.Next = &tw
		}
		return r
	case opAddWorker:
		if op.Worker == nil {
			return fail(errors.New("cluster: add_worker without worker"))
		}
		wk, err := wireToWorker(*op.Worker)
		if err != nil {
			return fail(err)
		}
		trace.Event(ctx, "node.decode", trace.Str("worker", wk.ID))
		drained, err := n.eng.AddWorkerCtx(ctx, wk)
		if err != nil {
			return fail(err)
		}
		return OpResult{OK: true, Tasks: tasksToWire(drained)}
	case opRemoveWorker:
		dropped, err := n.eng.RemoveWorkerCtx(ctx, op.WorkerID)
		if err != nil {
			return fail(err)
		}
		return OpResult{OK: true, Tasks: tasksToWire(dropped)}
	case opActiveTasks:
		tasks, err := n.eng.ActiveTasks(op.WorkerID)
		if err != nil {
			return fail(err)
		}
		return OpResult{OK: true, Tasks: tasksToWire(tasks)}
	case opWorker:
		wk, err := n.eng.Worker(op.WorkerID)
		if err != nil {
			return fail(err)
		}
		ww := workerToWire(wk)
		return OpResult{OK: true, Worker: &ww}
	case opCompleted:
		c, err := n.eng.Completed(op.WorkerID)
		if err != nil {
			return fail(err)
		}
		return OpResult{OK: true, Count: c}
	case opSetTrust:
		if op.Trust == nil {
			return fail(errors.New("cluster: set_trust without value"))
		}
		drained, err := n.eng.SetTrust(op.WorkerID, *op.Trust)
		if err != nil {
			return fail(err)
		}
		return OpResult{OK: true, Tasks: tasksToWire(drained)}
	case opTrust:
		v, err := n.eng.Trust(op.WorkerID)
		if err != nil {
			return fail(err)
		}
		return OpResult{OK: true, Value: v}
	case opSetWindow:
		if op.Window == nil {
			return fail(errors.New("cluster: set_window without value"))
		}
		if err := n.eng.SetWindow(op.WorkerID, *op.Window); err != nil {
			return fail(err)
		}
		return OpResult{OK: true}
	case opWindow:
		until, err := n.eng.Window(op.WorkerID)
		if err != nil {
			return fail(err)
		}
		return OpResult{OK: true, Until: until}
	case opWorkers:
		return OpResult{OK: true, IDs: n.eng.WorkerIDs()}
	case opStats:
		st := n.eng.Stats()
		return OpResult{OK: true, Stats: &st}
	case opObjective:
		return OpResult{OK: true, Value: n.eng.Objective()}
	default:
		return fail(fmt.Errorf("cluster: unknown op %q", op.Op))
	}
}

func tasksToWire(ts []*core.Task) []taskWire {
	if len(ts) == 0 {
		return nil
	}
	out := make([]taskWire, 0, len(ts))
	for _, t := range ts {
		out = append(out, taskToWire(t))
	}
	return out
}

// frameCache is the bounded replay-dedup store: frame ID → encoded
// response, FIFO-evicted. begin returns either the cached bytes, or a
// channel to wait on when the same frame is being applied right now, or
// (nil, nil) when the caller should apply the frame itself.
type frameCache struct {
	mu    sync.Mutex
	cap   int
	done  map[string][]byte
	infly map[string]chan struct{}
	order *list.List // frame IDs in completion order
}

func newFrameCache(capacity int) *frameCache {
	return &frameCache{
		cap:   capacity,
		done:  make(map[string][]byte, capacity),
		infly: make(map[string]chan struct{}),
		order: list.New(),
	}
}

func (c *frameCache) begin(id string) (cached []byte, inflight <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.done[id]; ok {
		return b, nil
	}
	if ch, ok := c.infly[id]; ok {
		return nil, ch
	}
	c.infly[id] = make(chan struct{})
	return nil, nil
}

func (c *frameCache) commit(id string, response []byte) {
	cp := append([]byte(nil), response...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.infly[id]; ok {
		close(ch)
		delete(c.infly, id)
	}
	if _, ok := c.done[id]; !ok {
		c.done[id] = cp
		c.order.PushBack(id)
		for c.order.Len() > c.cap {
			old := c.order.Remove(c.order.Front()).(string)
			delete(c.done, old)
		}
	}
}

func (c *frameCache) abort(id string) {
	if id == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.infly[id]; ok {
		close(ch)
		delete(c.infly, id)
	}
}
