package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/trace"
)

// ErrNoNodes is returned when every cluster member has been removed from
// the ring — there is nowhere left to route.
var ErrNoNodes = errors.New("cluster: no live nodes")

// PeerSpec names one cluster member and its base URL.
type PeerSpec struct {
	Name string
	URL  string // e.g. http://127.0.0.1:9001
}

// GatewayConfig parameterizes a Gateway.
type GatewayConfig struct {
	// Peers is the initial membership. Names must be unique; URLs are the
	// nodes' base addresses (the /cluster/ routes hang off them).
	Peers []PeerSpec
	// HTTPClient carries all RPC traffic. Defaults to a client with a
	// pooled keep-alive transport sized for the pipelining window, so
	// frames reuse persistent connections instead of dialing per request.
	HTTPClient *http.Client
	// MaxBatch caps the ops coalesced into one frame (default 64).
	MaxBatch int
	// Window caps the frames in flight per peer (default 4) — pipelining,
	// so one slow response does not stall the queue behind it.
	Window int
	// FrameRetries is the attempts per frame including the first (default
	// 3). Retries reuse the frame ID; the node's replay cache makes them
	// idempotent.
	FrameRetries int
	// RetryBackoff is the base delay between frame retries (default 25ms,
	// doubling per attempt, capped at 1s).
	RetryBackoff time.Duration
	// VirtualNodes is the ring points per member (default 64).
	VirtualNodes int
	// HeartbeatInterval is the health-probe period (default 500ms).
	// Negative disables the background loop — tests drive CheckHealth
	// directly for determinism.
	HeartbeatInterval time.Duration
	// FailAfter is the consecutive failures (health probes or frames)
	// before a node is declared dead and its tasks requeued (default 3).
	FailAfter int
	// Registry receives the gateway instruments (obs.Default() when nil),
	// including the per-peer RPC internals, and is merged into the
	// federated snapshot as node "gateway".
	Registry *obs.Registry
	// Logger receives membership events (slog.Default() when nil).
	Logger *slog.Logger
	// Tracer records the gateway's RPC and heartbeat spans and is the
	// local ring cluster-trace stitching merges with the nodes' rings
	// (trace.Default() when nil).
	Tracer *trace.Recorder
	// Journal records membership events — failovers, re-partitions, joins,
	// snapshot cuts (ops.Default() when nil).
	Journal *ops.Journal
	// FederationInterval bounds the staleness of the cached federated
	// metrics snapshot (default 2s; negative = refetch on every read).
	FederationInterval time.Duration
}

// ledgerEntry records where a pending (active or buffered) task lives, so
// a node death can requeue exactly the tasks it held.
type ledgerEntry struct {
	node string
	task *core.Task
}

// gwMetrics are the gateway instruments.
type gwMetrics struct {
	Nodes     *obs.Gauge   // current live member count
	NodeDrops *obs.Counter // members declared dead
	Requeued  *obs.Counter // tasks requeued off dead nodes
	Lost      *obs.Counter // tasks dropped because requeue failed
}

func newGwMetrics(r *obs.Registry) *gwMetrics {
	if r == nil {
		r = obs.Default()
	}
	return &gwMetrics{
		Nodes: r.Gauge("hta_cluster_nodes",
			"live members on the cluster ring"),
		NodeDrops: r.Counter("hta_cluster_node_drops_total",
			"cluster members declared dead by the heartbeat loop"),
		Requeued: r.Counter("hta_cluster_requeued_total",
			"pending tasks requeued onto survivors after a node death"),
		Lost: r.Counter("hta_cluster_lost_total",
			"pending tasks dropped because no survivor could take them"),
	}
}

// Gateway routes the scatter-gather marginal-gain protocol across a ring
// of cluster nodes, presenting the same surface as a local *shard.Engine
// (it satisfies platform.StreamBackend). One gateway fronts N hta-server
// -node processes; all public traffic flows through it, which is what
// makes the global accounting below exact.
//
// Accounting: the gateway owns Submitted (offers it accepted), Completed
// (completions it routed), and its own Dropped (offers rejected
// everywhere plus failed requeues); nodes own their internal drops
// (worker-removal overflow), gathered live and absorbed at death. At
// quiescence the global conservation law Submitted = Active + Completed +
// Buffered + Dropped holds across the whole cluster, including after node
// failures. Two documented caveats: node-internal steal drops are
// invisible to the ledger (run cluster nodes with the steal loop off),
// and drops a node suffers between its last heartbeat and its death are
// lost from the global count.
type Gateway struct {
	cfg     GatewayConfig
	log     *slog.Logger
	met     *gwMetrics
	reg     *obs.Registry
	tracer  *trace.Recorder
	journal *ops.Journal

	// fedMu serializes federation scrapes and guards the TTL cache — a
	// burst of /metrics reads coalesces into one fan-out per interval.
	fedMu   sync.Mutex
	fedAt   time.Time
	fedSnap obs.Snapshot
	fedOK   bool

	// opGate is the snapshot barrier: every op holds it for read, a
	// merged snapshot holds it for write — a cluster-wide quiesce point,
	// the RPC analogue of the engine's per-shard quiesce barrier.
	opGate sync.RWMutex

	// mu guards membership: the ring (nil once every member is dead), the
	// peer table, and the per-node drop counters the death accounting
	// absorbs.
	mu          sync.Mutex
	ring        *Ring
	peers       map[string]*peer
	order       []string // live member names, sorted — deterministic scatter order
	lastDropped map[string]int64
	deadDropped int64

	// locMu guards the worker→node pin map. Workers are placed by ring
	// lookup at registration and pinned, so membership changes never
	// reroute an existing worker's calls to a node that has never heard
	// of it — the ring decides placement, the pin decides routing.
	locMu     sync.RWMutex
	workerLoc map[string]string

	ledgerMu sync.Mutex
	ledger   map[string]ledgerEntry

	seenMu sync.Mutex
	seen   map[string]struct{}

	submitted atomic.Int64
	completed atomic.Int64
	dropped   atomic.Int64 // gateway-level: total rejects + failed requeues

	closed atomic.Bool
	hbStop chan struct{}
	hbDone chan struct{}
}

// NewGateway validates the configuration, builds the ring and peer table,
// and starts the heartbeat loop (unless disabled).
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: gateway needs >= 1 peer")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.FrameRetries <= 0 {
		cfg.FrameRetries = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 2 * cfg.Window,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.Default()
	}
	if cfg.Journal == nil {
		cfg.Journal = ops.Default()
	}
	if cfg.FederationInterval == 0 {
		cfg.FederationInterval = 2 * time.Second
	}
	names := make([]string, 0, len(cfg.Peers))
	peers := make(map[string]*peer, len(cfg.Peers))
	for _, ps := range cfg.Peers {
		if ps.Name == "" || ps.URL == "" {
			return nil, fmt.Errorf("cluster: peer needs name and URL (got %q, %q)", ps.Name, ps.URL)
		}
		if _, dup := peers[ps.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer %q", ps.Name)
		}
		names = append(names, ps.Name)
		peers[ps.Name] = newPeer(ps.Name, strings.TrimRight(ps.URL, "/"), cfg.HTTPClient,
			cfg.Registry, cfg.MaxBatch, cfg.Window, cfg.FrameRetries, cfg.RetryBackoff)
	}
	ring, err := NewRing(names, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	g := &Gateway{
		cfg:         cfg,
		log:         cfg.Logger,
		met:         newGwMetrics(cfg.Registry),
		reg:         cfg.Registry,
		tracer:      cfg.Tracer,
		journal:     cfg.Journal,
		ring:        ring,
		peers:       peers,
		order:       names,
		lastDropped: make(map[string]int64, len(peers)),
		workerLoc:   make(map[string]string),
		ledger:      make(map[string]ledgerEntry),
		seen:        make(map[string]struct{}),
		hbStop:      make(chan struct{}),
		hbDone:      make(chan struct{}),
	}
	g.met.Nodes.Set(float64(len(names)))
	if cfg.HeartbeatInterval > 0 {
		go g.heartbeat()
	} else {
		close(g.hbDone)
	}
	return g, nil
}

// Close stops the heartbeat loop and fails all queued RPC. Idempotent.
func (g *Gateway) Close() error {
	if g.closed.Swap(true) {
		return nil
	}
	close(g.hbStop)
	<-g.hbDone
	g.mu.Lock()
	peers := make([]*peer, 0, len(g.peers))
	for _, p := range g.peers {
		peers = append(peers, p)
	}
	g.mu.Unlock()
	for _, p := range peers {
		p.close()
	}
	return nil
}

// livePeers snapshots the live members in deterministic (sorted-name)
// order.
func (g *Gateway) livePeers() []*peer {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*peer, 0, len(g.order))
	for _, name := range g.order {
		if p := g.peers[name]; p != nil && !p.down.Load() {
			out = append(out, p)
		}
	}
	return out
}

// owner resolves the node responsible for a worker: the registration pin
// when one exists, the ring otherwise.
func (g *Gateway) owner(workerID string) (*peer, error) {
	g.locMu.RLock()
	name, pinned := g.workerLoc[workerID]
	g.locMu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if !pinned {
		if g.ring == nil {
			return nil, ErrNoNodes
		}
		name = g.ring.Lookup(workerID)
	}
	p := g.peers[name]
	if p == nil || p.down.Load() {
		return nil, fmt.Errorf("%w: %s", ErrPeerDown, name)
	}
	return p, nil
}

// resultErr maps a node-side failure back onto the sentinel errors the
// platform layer understands; plain messages keep the node's wording, so
// "unknown worker" / "not active" matching still works across the wire.
func resultErr(res OpResult) error {
	switch res.Code {
	case codeFull:
		return stream.ErrBufferFull
	case codeClosed:
		return shard.ErrClosed
	}
	if res.Err != "" {
		return errors.New(res.Err)
	}
	return errors.New("cluster: op failed")
}

// OfferTask is OfferTaskCtx with a background context.
func (g *Gateway) OfferTask(t *core.Task) (string, error) {
	return g.OfferTaskCtx(context.Background(), t)
}

// OfferTaskCtx routes an arriving task across the cluster: scatter a
// score op to every live node (one batched frame each, traveling
// concurrently), rank the answers exactly as the shard engine ranks its
// shards, commit to the winner, fall back down the ranking, and finally
// buffer on the least backlogged node. Returns the assigned worker's ID
// ("" if buffered), or stream.ErrBufferFull when every node is full.
func (g *Gateway) OfferTaskCtx(ctx context.Context, t *core.Task) (string, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	if g.closed.Load() {
		return "", shard.ErrClosed
	}
	if t == nil || t.Keywords == nil || t.ID == "" {
		return "", errors.New("cluster: nil task or empty ID")
	}
	g.seenMu.Lock()
	if _, dup := g.seen[t.ID]; dup {
		g.seenMu.Unlock()
		return "", fmt.Errorf("cluster: duplicate task %q", t.ID)
	}
	g.seen[t.ID] = struct{}{}
	g.seenMu.Unlock()
	g.submitted.Add(1)
	wid, node, err := g.routeTask(ctx, t)
	if err != nil {
		// Rejected everywhere: the task may be re-offered later, so it
		// leaves the duplicate filter (mirroring the engine), and the
		// gateway counts the drop.
		g.seenMu.Lock()
		delete(g.seen, t.ID)
		g.seenMu.Unlock()
		g.dropped.Add(1)
		return "", err
	}
	g.ledgerMu.Lock()
	g.ledger[t.ID] = ledgerEntry{node: node, task: t}
	g.ledgerMu.Unlock()
	return wid, nil
}

// routeTask is the scatter/commit/buffer core, shared by offers and
// failover requeues (which must not re-count Submitted). A sampled ctx
// opens one RPC span per scatter/commit/buffer leg, each propagated to
// its node, so the stitched trace shows the whole routing fan-out.
func (g *Gateway) routeTask(ctx context.Context, t *core.Task) (wid, node string, err error) {
	peers := g.livePeers()
	if len(peers) == 0 {
		return "", "", ErrNoNodes
	}
	tw := taskToWire(t)
	scoreOp := Op{Op: opScore, Task: &tw}
	calls := make([]*call, len(peers))
	for i, p := range peers {
		calls[i] = p.doAsyncCtx(ctx, scoreOp)
	}
	type scored struct {
		p       *peer
		gain    float64
		rel     float64
		free    bool
		backlog int
	}
	answers := make([]scored, 0, len(peers))
	for i, p := range peers {
		res, err := p.wait(calls[i])
		if err != nil || !res.OK {
			continue // node failing mid-scatter: route around it
		}
		answers = append(answers, scored{p: p, gain: res.Gain, rel: res.Rel, free: res.Free, backlog: res.Backlog})
	}
	if len(answers) == 0 {
		return "", "", ErrNoNodes
	}
	// Rank free nodes first by (gain, relevance, name) — the same ordering
	// the engine applies to its shards, with the same float epsilon.
	sort.Slice(answers, func(i, j int) bool {
		a, b := answers[i], answers[j]
		if a.free != b.free {
			return a.free
		}
		if a.free {
			if a.gain > b.gain+1e-12 {
				return true
			}
			if b.gain > a.gain+1e-12 {
				return false
			}
			if a.rel != b.rel {
				return a.rel > b.rel
			}
		}
		return a.p.name < b.p.name
	})
	commitOp := Op{Op: opCommit, Task: &tw}
	for _, s := range answers {
		if !s.free {
			break
		}
		res, err := s.p.doCtx(ctx, commitOp)
		if err == nil && res.OK {
			return res.WorkerID, s.p.name, nil
		}
	}
	// No node committed: buffer on the least backlogged, walking up.
	sort.Slice(answers, func(i, j int) bool {
		a, b := answers[i], answers[j]
		if a.backlog != b.backlog {
			return a.backlog < b.backlog
		}
		return a.p.name < b.p.name
	})
	bufferOp := Op{Op: opBuffer, Task: &tw}
	for _, s := range answers {
		res, err := s.p.doCtx(ctx, bufferOp)
		if err == nil && res.OK {
			return "", s.p.name, nil
		}
	}
	return "", "", stream.ErrBufferFull
}

// AddWorker is AddWorkerCtx with a background context.
func (g *Gateway) AddWorker(w *core.Worker) ([]*core.Task, error) {
	return g.AddWorkerCtx(context.Background(), w)
}

// AddWorkerCtx places the worker on its ring owner, pins it there, and
// returns any buffered tasks the arrival drained into assignment.
func (g *Gateway) AddWorkerCtx(ctx context.Context, w *core.Worker) ([]*core.Task, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	if g.closed.Load() {
		return nil, shard.ErrClosed
	}
	if w == nil || w.ID == "" {
		return nil, errors.New("cluster: nil worker or empty ID")
	}
	g.mu.Lock()
	if g.ring == nil {
		g.mu.Unlock()
		return nil, ErrNoNodes
	}
	name := g.ring.Lookup(w.ID)
	p := g.peers[name]
	g.mu.Unlock()
	if p == nil || p.down.Load() {
		return nil, fmt.Errorf("%w: %s", ErrPeerDown, name)
	}
	ww := workerToWire(w)
	res, err := p.doCtx(ctx, Op{Op: opAddWorker, Worker: &ww})
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return nil, resultErr(res)
	}
	g.locMu.Lock()
	g.workerLoc[w.ID] = p.name
	g.locMu.Unlock()
	drained := make([]*core.Task, 0, len(res.Tasks))
	for _, twr := range res.Tasks {
		t, err := wireToTask(twr)
		if err != nil {
			return nil, err
		}
		drained = append(drained, t)
	}
	return drained, nil
}

// RemoveWorker is RemoveWorkerCtx with a background context.
func (g *Gateway) RemoveWorker(id string) ([]*core.Task, error) {
	return g.RemoveWorkerCtx(context.Background(), id)
}

// RemoveWorkerCtx deregisters the worker from its node. Tasks the node
// could not rebuffer come back dropped — the node counted them in its own
// drop counter, so the gateway only prunes its ledger (counting them here
// too would double them in the global accounting).
func (g *Gateway) RemoveWorkerCtx(ctx context.Context, id string) ([]*core.Task, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	if g.closed.Load() {
		return nil, shard.ErrClosed
	}
	p, err := g.owner(id)
	if err != nil {
		return nil, err
	}
	res, err := p.doCtx(ctx, Op{Op: opRemoveWorker, WorkerID: id})
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return nil, resultErr(res)
	}
	g.locMu.Lock()
	delete(g.workerLoc, id)
	g.locMu.Unlock()
	dropped := make([]*core.Task, 0, len(res.Tasks))
	g.ledgerMu.Lock()
	for _, twr := range res.Tasks {
		delete(g.ledger, twr.ID)
	}
	g.ledgerMu.Unlock()
	for _, twr := range res.Tasks {
		t, err := wireToTask(twr)
		if err != nil {
			return nil, err
		}
		dropped = append(dropped, t)
	}
	return dropped, nil
}

// Complete is CompleteCtx with a background context.
func (g *Gateway) Complete(workerID, taskID string) (*core.Task, error) {
	return g.CompleteCtx(context.Background(), workerID, taskID)
}

// CompleteCtx marks the task finished on the worker's node and returns
// the buffered task (if any) the completion pulled into the freed slot.
func (g *Gateway) CompleteCtx(ctx context.Context, workerID, taskID string) (*core.Task, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	if g.closed.Load() {
		return nil, shard.ErrClosed
	}
	p, err := g.owner(workerID)
	if err != nil {
		return nil, err
	}
	res, err := p.doCtx(ctx, Op{Op: opComplete, WorkerID: workerID, TaskID: taskID})
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return nil, resultErr(res)
	}
	g.completed.Add(1)
	g.ledgerMu.Lock()
	delete(g.ledger, taskID)
	g.ledgerMu.Unlock()
	if res.Next == nil {
		return nil, nil
	}
	// The pulled task moved buffer→active on the same node; its ledger
	// entry already points there.
	return wireToTask(*res.Next)
}

// ActiveTasks returns the worker's assigned tasks.
func (g *Gateway) ActiveTasks(workerID string) ([]*core.Task, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	p, err := g.owner(workerID)
	if err != nil {
		return nil, err
	}
	res, err := p.do(Op{Op: opActiveTasks, WorkerID: workerID})
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return nil, resultErr(res)
	}
	out := make([]*core.Task, 0, len(res.Tasks))
	for _, twr := range res.Tasks {
		t, err := wireToTask(twr)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Worker returns the registered worker record.
func (g *Gateway) Worker(workerID string) (*core.Worker, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	p, err := g.owner(workerID)
	if err != nil {
		return nil, err
	}
	res, err := p.do(Op{Op: opWorker, WorkerID: workerID})
	if err != nil {
		return nil, err
	}
	if !res.OK || res.Worker == nil {
		return nil, resultErr(res)
	}
	return wireToWorker(*res.Worker)
}

// Trust returns the worker's trust multiplier from its owning node.
func (g *Gateway) Trust(workerID string) (float64, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	p, err := g.owner(workerID)
	if err != nil {
		return 0, err
	}
	res, err := p.do(Op{Op: opTrust, WorkerID: workerID})
	if err != nil {
		return 0, err
	}
	if !res.OK {
		return 0, resultErr(res)
	}
	return res.Value, nil
}

// SetTrust updates the worker's trust multiplier on its owning node
// (stream.Assigner.SetTrust semantics). Tasks drained by a lifted
// quarantine are returned.
func (g *Gateway) SetTrust(workerID string, trust float64) ([]*core.Task, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	p, err := g.owner(workerID)
	if err != nil {
		return nil, err
	}
	res, err := p.do(Op{Op: opSetTrust, WorkerID: workerID, Trust: &trust})
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return nil, resultErr(res)
	}
	out := make([]*core.Task, 0, len(res.Tasks))
	for _, twr := range res.Tasks {
		t, err := wireToTask(twr)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// SetWindow records the worker's availability-window end on its owning
// node (0 clears it).
func (g *Gateway) SetWindow(workerID string, until int64) error {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	p, err := g.owner(workerID)
	if err != nil {
		return err
	}
	res, err := p.do(Op{Op: opSetWindow, WorkerID: workerID, Window: &until})
	if err != nil {
		return err
	}
	if !res.OK {
		return resultErr(res)
	}
	return nil
}

// Window returns the worker's recorded availability-window end (0 =
// unknown) from its owning node.
func (g *Gateway) Window(workerID string) (int64, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	p, err := g.owner(workerID)
	if err != nil {
		return 0, err
	}
	res, err := p.do(Op{Op: opWindow, WorkerID: workerID})
	if err != nil {
		return 0, err
	}
	if !res.OK {
		return 0, resultErr(res)
	}
	return res.Until, nil
}

// Completed returns how many tasks the worker finished.
func (g *Gateway) Completed(workerID string) (int, error) {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	p, err := g.owner(workerID)
	if err != nil {
		return 0, err
	}
	res, err := p.do(Op{Op: opCompleted, WorkerID: workerID})
	if err != nil {
		return 0, err
	}
	if !res.OK {
		return 0, resultErr(res)
	}
	return res.Count, nil
}

// WorkerIDs gathers all registered worker IDs, grouped by node in sorted
// node order.
func (g *Gateway) WorkerIDs() []string {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	peers := g.livePeers()
	calls := make([]*call, len(peers))
	op := Op{Op: opWorkers}
	for i, p := range peers {
		calls[i] = p.doAsync(op)
	}
	var out []string
	for i, p := range peers {
		res, err := p.wait(calls[i])
		if err != nil || !res.OK {
			continue
		}
		out = append(out, res.IDs...)
	}
	return out
}

// Objective sums every node's streaming objective. Exact at quiescence.
func (g *Gateway) Objective() float64 {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	peers := g.livePeers()
	calls := make([]*call, len(peers))
	op := Op{Op: opObjective}
	for i, p := range peers {
		calls[i] = p.doAsync(op)
	}
	var total float64
	for i, p := range peers {
		res, err := p.wait(calls[i])
		if err != nil || !res.OK {
			continue
		}
		total += res.Value
	}
	return total
}

// Stats merges every live node's load picture into one cluster-wide
// accounting, renumbering per-shard entries into a global sequence.
// Submitted/Completed come from the gateway's own counters; Dropped folds
// the gateway's rejects, live nodes' internal drops, and the absorbed
// counts of dead nodes.
func (g *Gateway) Stats() shard.Stats {
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	return g.statsLocked()
}

func (g *Gateway) statsLocked() shard.Stats {
	st := shard.Stats{}
	peers := g.livePeers()
	calls := make([]*call, len(peers))
	op := Op{Op: opStats}
	for i, p := range peers {
		calls[i] = p.doAsync(op)
	}
	var liveDropped int64
	offset := 0
	for i, p := range peers {
		res, err := p.wait(calls[i])
		if err != nil || !res.OK || res.Stats == nil {
			continue // a failing node's drops are covered by its lastDropped cache
		}
		ns := *res.Stats
		for _, ps := range ns.PerShard {
			ps.Shard += offset
			st.PerShard = append(st.PerShard, ps)
		}
		offset += ns.Shards
		st.Shards += ns.Shards
		st.Workers += ns.Workers
		st.Active += ns.Active
		st.Buffered += ns.Buffered
		st.Expired += ns.Expired
		liveDropped += ns.Dropped
		g.noteNodeDropped(p.name, ns.Dropped)
	}
	g.mu.Lock()
	dead := g.deadDropped
	g.mu.Unlock()
	st.Submitted = g.submitted.Load()
	st.Completed = g.completed.Load()
	st.Dropped = g.dropped.Load() + dead + liveDropped
	return st
}

// noteNodeDropped records the freshest view of a node's internal drop
// counter — the value absorbed into the global count if the node dies.
func (g *Gateway) noteNodeDropped(name string, dropped int64) {
	g.mu.Lock()
	if dropped > g.lastDropped[name] {
		g.lastDropped[name] = dropped
	}
	g.mu.Unlock()
}

// mergedSnapshot is the cluster snapshot document: one consistent cut of
// every live node's engine snapshot plus the gateway's own counters.
type mergedSnapshot struct {
	Version   int            `json:"version"`
	Submitted int64          `json:"submitted"`
	Completed int64          `json:"completed"`
	Dropped   int64          `json:"dropped"` // gateway rejects + absorbed dead-node drops
	Nodes     []nodeSnapshot `json:"nodes"`
}

type nodeSnapshot struct {
	Name   string          `json:"name"`
	Engine json.RawMessage `json:"engine"`
}

// Snapshot writes a merged cluster snapshot. It holds the op gate for
// write — no operation is in flight anywhere while the per-node cuts are
// taken, so the merged document is a consistent global view (each node's
// own snapshot additionally quiesces its shards).
func (g *Gateway) Snapshot(w io.Writer) error {
	g.opGate.Lock()
	defer g.opGate.Unlock()
	if g.closed.Load() {
		return shard.ErrClosed
	}
	doc := mergedSnapshot{Version: 1}
	for _, p := range g.livePeers() {
		raw, err := p.snapshot(context.Background())
		if err != nil {
			return fmt.Errorf("cluster: snapshot of %s: %w", p.name, err)
		}
		if !json.Valid(raw) {
			return fmt.Errorf("cluster: snapshot of %s: truncated document", p.name)
		}
		doc.Nodes = append(doc.Nodes, nodeSnapshot{Name: p.name, Engine: raw})
	}
	g.mu.Lock()
	dead := g.deadDropped
	g.mu.Unlock()
	doc.Submitted = g.submitted.Load()
	doc.Completed = g.completed.Load()
	doc.Dropped = g.dropped.Load() + dead
	g.journal.Emit(ops.EventSnapshot, "gateway", "nodes", strconv.Itoa(len(doc.Nodes)))
	buf, err := encodeJSON(&doc)
	if err != nil {
		return err
	}
	defer putBuf(buf)
	_, err = w.Write(buf.Bytes())
	return err
}

// heartbeat is the background health loop.
func (g *Gateway) heartbeat() {
	defer close(g.hbDone)
	tick := time.NewTicker(g.cfg.HeartbeatInterval)
	defer tick.Stop()
	for {
		select {
		case <-g.hbStop:
			return
		case <-tick.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.HeartbeatInterval)
		g.CheckHealth(ctx)
		cancel()
	}
}

// CheckHealth probes every live member once and applies the failure
// policy: FailAfter consecutive failures (probes or frames) remove the
// node from the ring and requeue its pending tasks. Exported so tests can
// drive membership deterministically with the background loop disabled.
func (g *Gateway) CheckHealth(ctx context.Context) {
	for _, p := range g.livePeers() {
		hctx, sp := g.tracer.Start(ctx, "cluster.heartbeat", trace.Str("peer", p.name))
		h, err := p.health(hctx)
		sp.End()
		if err != nil {
			if int(p.fails.Add(1)) >= g.cfg.FailAfter {
				g.dropNode(p.name)
			}
			continue
		}
		p.fails.Store(0)
		g.noteNodeDropped(p.name, h.Dropped)
	}
}

// dropNode declares a member dead: removes it from the ring, absorbs its
// last known internal drop count, fails its queued RPC, unpins its
// workers, and requeues its pending tasks onto the survivors. Requeued
// tasks do not re-count Submitted — they were counted when first
// accepted; requeues that fail everywhere count Dropped.
func (g *Gateway) dropNode(name string) {
	// Heartbeat-only caller: safe to take the op gate for read (requeue
	// routes ops), which also serializes failover against snapshots.
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	g.mu.Lock()
	p := g.peers[name]
	if p == nil || p.down.Load() || g.ring == nil || !g.ring.Has(name) {
		g.mu.Unlock()
		return
	}
	if g.ring.Size() == 1 {
		g.ring = nil
	} else if nr, err := g.ring.Without(name); err == nil {
		g.ring = nr
	}
	for i, n := range g.order {
		if n == name {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	g.deadDropped += g.lastDropped[name]
	live := len(g.order)
	g.mu.Unlock()
	p.markDown()
	g.met.Nodes.Set(float64(live))
	g.met.NodeDrops.Inc()

	g.locMu.Lock()
	for id, n := range g.workerLoc {
		if n == name {
			delete(g.workerLoc, id)
		}
	}
	g.locMu.Unlock()

	g.ledgerMu.Lock()
	var orphans []*core.Task
	for id, e := range g.ledger {
		if e.node == name {
			orphans = append(orphans, e.task)
			delete(g.ledger, id)
		}
	}
	g.ledgerMu.Unlock()
	requeued, lost := 0, 0
	for _, t := range orphans {
		_, node, err := g.routeTask(context.Background(), t)
		if err != nil {
			g.seenMu.Lock()
			delete(g.seen, t.ID)
			g.seenMu.Unlock()
			g.dropped.Add(1)
			lost++
			continue
		}
		g.ledgerMu.Lock()
		g.ledger[t.ID] = ledgerEntry{node: node, task: t}
		g.ledgerMu.Unlock()
		requeued++
	}
	g.met.Requeued.Add(float64(requeued))
	g.met.Lost.Add(float64(lost))
	g.journal.Emit(ops.EventFailover, name,
		"live", strconv.Itoa(live),
		"requeued", strconv.Itoa(requeued),
		"lost", strconv.Itoa(lost))
	g.journal.Emit(ops.EventRepartition, name,
		"reason", "failover", "live", strconv.Itoa(live))
	g.log.Warn("cluster node dropped",
		"node", name, "live", live, "requeued", requeued, "lost", lost)
}

// AddNode joins a fresh member to the ring. The node is probed once
// before joining; only keys landing on its arcs move, and existing
// workers stay pinned to their original nodes, so in-flight traffic is
// unaffected. Rejoining a previously removed name is refused — its
// pre-death state would double-count against the requeued tasks.
func (g *Gateway) AddNode(name, url string) error {
	if g.closed.Load() {
		return shard.ErrClosed
	}
	if name == "" || url == "" {
		return errors.New("cluster: AddNode needs name and URL")
	}
	g.opGate.RLock()
	defer g.opGate.RUnlock()
	g.mu.Lock()
	if _, exists := g.peers[name]; exists {
		g.mu.Unlock()
		return fmt.Errorf("cluster: member %q already known (rejoin under a fresh name)", name)
	}
	g.mu.Unlock()
	p := newPeer(name, strings.TrimRight(url, "/"), g.cfg.HTTPClient,
		g.reg, g.cfg.MaxBatch, g.cfg.Window, g.cfg.FrameRetries, g.cfg.RetryBackoff)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	h, err := p.health(ctx)
	cancel()
	if err != nil {
		return fmt.Errorf("cluster: join probe of %q: %w", name, err)
	}
	g.mu.Lock()
	if _, exists := g.peers[name]; exists {
		g.mu.Unlock()
		return fmt.Errorf("cluster: member %q already known (rejoin under a fresh name)", name)
	}
	if g.ring == nil {
		nr, err := NewRing([]string{name}, g.cfg.VirtualNodes)
		if err != nil {
			g.mu.Unlock()
			return err
		}
		g.ring = nr
	} else {
		nr, err := g.ring.With(name)
		if err != nil {
			g.mu.Unlock()
			return err
		}
		g.ring = nr
	}
	g.peers[name] = p
	g.order = append(g.order, name)
	sort.Strings(g.order)
	g.lastDropped[name] = h.Dropped
	live := len(g.order)
	g.mu.Unlock()
	g.met.Nodes.Set(float64(live))
	g.journal.Emit(ops.EventNodeJoin, name, "live", strconv.Itoa(live))
	g.journal.Emit(ops.EventRepartition, name,
		"reason", "join", "live", strconv.Itoa(live))
	g.log.Info("cluster node joined", "node", name, "live", live)
	return nil
}

// Members returns the live member names in sorted order.
func (g *Gateway) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.order...)
}

// FramesSent and OpsSent aggregate the RPC telemetry across all peers
// (including dead ones): total frames shipped and ops they carried. The
// ratio is the realized coalescing factor the batching layer achieved.
func (g *Gateway) FramesSent() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n int64
	for _, p := range g.peers {
		n += p.frames.Load()
	}
	return n
}

// OpsSent is documented with FramesSent.
func (g *Gateway) OpsSent() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n int64
	for _, p := range g.peers {
		n += p.ops.Load()
	}
	return n
}
