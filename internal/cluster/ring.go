// Package cluster promotes the sharded streaming engine past the
// single-process ceiling: N hta-server nodes each own a segment of a
// consistent-hash ring over worker IDs, and a thin gateway routes the
// same scatter-gather marginal-gain protocol the shard engine runs
// in-process — over stdlib HTTP RPC instead of goroutine mailboxes.
//
// The comms layer is built so the network never dominates:
//
//   - batching: concurrent operations destined for the same node coalesce
//     into one framed RPC (the mailbox-drain idiom of the shard actor,
//     applied to the wire);
//   - pipelining: up to Window frames per peer are in flight at once, so
//     a slow response never stalls the queue behind it;
//   - pooled persistent connections (http.Transport keep-alives) and
//     pooled encode/decode buffers keep the per-frame overhead flat;
//   - frames carry IDs and nodes deduplicate replays, so a frame whose
//     response was lost can be retried without double-applying writes —
//     the RPC analogue of the platform client's idempotency keys.
//
// Membership is heartbeat-driven: the gateway probes each node and
// removes unresponsive ones from the ring. The gateway keeps a ledger of
// every in-flight task's owning node; when a node dies, its pending
// tasks requeue onto the survivors, and the gateway's global accounting
// (submitted = active + completed + buffered + dropped) keeps holding.
package cluster

import (
	"fmt"
	"sort"

	"github.com/htacs/ata/internal/shard"
)

// Ring is a consistent-hash ring over named cluster members — the
// node-level analogue of the shard ring, using the same fmix64-finished
// FNV-1a key hash (shard.HashKey) so the banding fix for short worker IDs
// carries over. Immutable after construction; With/Without build new
// rings for membership changes, moving only the keys on the changed
// member's arcs.
type Ring struct {
	members []string
	vnodes  int
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring over the given member names with vnodes points
// per member (default 64 when vnodes <= 0). Member names must be unique
// and non-empty.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs >= 1 member")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{members: append([]string(nil), members...), vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(members)*vnodes)
	for _, m := range r.members {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
		seen[m] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   shard.HashKey(fmt.Sprintf("node-%s#%d", m, v)),
				member: m,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	sort.Strings(r.members)
	return r, nil
}

// Members returns the member names in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// VirtualNodes returns the per-member point count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Has reports whether the member is on the ring.
func (r *Ring) Has(member string) bool {
	for _, m := range r.members {
		if m == member {
			return true
		}
	}
	return false
}

// Lookup maps a key (worker ID) to its owning member: the first ring
// point clockwise of the key's hash.
func (r *Ring) Lookup(key string) string {
	h := shard.HashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Without returns a new ring with the member removed — the leave
// re-partition. Only keys on the removed member's arcs change owner.
func (r *Ring) Without(member string) (*Ring, error) {
	out := make([]string, 0, len(r.members))
	for _, m := range r.members {
		if m != member {
			out = append(out, m)
		}
	}
	if len(out) == len(r.members) {
		return nil, fmt.Errorf("cluster: member %q not on the ring", member)
	}
	return NewRing(out, r.vnodes)
}

// With returns a new ring with the member added — the join re-partition.
// Only keys landing on the new member's arcs change owner.
func (r *Ring) With(member string) (*Ring, error) {
	if r.Has(member) {
		return nil, fmt.Errorf("cluster: member %q already on the ring", member)
	}
	return NewRing(append(append([]string(nil), r.members...), member), r.vnodes)
}
