package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/trace"
)

// Federation: the gateway-side pull half of cluster-wide observability.
// Each node already serves its local telemetry on its public mux
// (/metrics?format=snapshot, /debug/trace?format=wire, /api/events);
// the gateway fans out over the live members, merges, and re-serves the
// cluster view. These methods satisfy platform.ClusterObserver, which is
// how the platform layer mounts them without importing this package.

// fetch GETs base+path and hands the body to decode.
func (p *peer) fetch(ctx context.Context, path string, decode func(io.Reader) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("cluster: %s%s: HTTP %d", p.name, path, resp.StatusCode)
	}
	return decode(resp.Body)
}

// wireTraces pulls up to n retained traces from the node's recorder in
// wire form.
func (p *peer) wireTraces(ctx context.Context, n int) ([]trace.WireTrace, error) {
	var out []trace.WireTrace
	err := p.fetch(ctx, "/debug/trace?format=wire&n="+strconv.Itoa(n), func(r io.Reader) error {
		var err error
		out, err = trace.ReadWire(r)
		return err
	})
	return out, err
}

// metricsSnapshot pulls the node's full-fidelity registry snapshot.
func (p *peer) metricsSnapshot(ctx context.Context) (obs.Snapshot, error) {
	var out obs.Snapshot
	err := p.fetch(ctx, "/metrics?format=snapshot", func(r io.Reader) error {
		var err error
		out, err = obs.ReadSnapshot(r)
		return err
	})
	return out, err
}

// apiEvents pulls the node's local journal. local=1 keeps a gateway
// fronting gateways (not supported today, but harmless) from recursing.
func (p *peer) apiEvents(ctx context.Context) ([]ops.Event, error) {
	var out []ops.Event
	err := p.fetch(ctx, "/api/events?local=1", func(r io.Reader) error {
		var err error
		out, err = ops.ReadEvents(r)
		return err
	})
	return out, err
}

// ClusterTraces stitches the gateway's retention ring with every live
// node's ring: fragments are labeled with their origin (attr "node"),
// merged by trace ID, and returned as whole distributed traces — the
// gateway RPC spans and the node-side apply spans of one request under
// one trace ID. Nodes that fail to answer are skipped; the stitched
// view degrades to the fragments that arrived.
func (g *Gateway) ClusterTraces(ctx context.Context, n int) []trace.WireTrace {
	local := g.tracer.WireSnapshot(n)
	trace.AnnotateWire(local, "node", "gateway")
	groups := [][]trace.WireTrace{local}
	for _, p := range g.livePeers() {
		wt, err := p.wireTraces(ctx, n)
		if err != nil {
			continue
		}
		trace.AnnotateWire(wt, "node", p.name)
		groups = append(groups, wt)
	}
	return trace.MergeWire(groups...)
}

// ClusterEvents merges the gateway's journal with every live node's into
// one timeline. A dead node's events are unreachable, but the incidents
// that matter about it (the failover, the re-partition) live in the
// gateway's own journal.
func (g *Gateway) ClusterEvents(ctx context.Context) []ops.Event {
	lists := [][]ops.Event{g.journal.Snapshot(0)}
	for _, p := range g.livePeers() {
		evs, err := p.apiEvents(ctx)
		if err != nil {
			continue
		}
		lists = append(lists, evs)
	}
	return ops.Merge(lists...)
}

// FederatedSnapshot returns the merged cluster metrics snapshot: every
// live node's registry plus the gateway's own (as node "gateway"),
// counters summed into rollups, gauges and histograms labeled per node
// (histograms also merged bucket-wise into rollups). Reads within
// FederationInterval of each other share one cached fan-out; concurrent
// reads coalesce behind the same scrape.
func (g *Gateway) FederatedSnapshot(ctx context.Context) obs.Snapshot {
	g.fedMu.Lock()
	defer g.fedMu.Unlock()
	if g.fedOK && g.cfg.FederationInterval > 0 && time.Since(g.fedAt) < g.cfg.FederationInterval {
		return g.fedSnap
	}
	per := map[string]obs.Snapshot{"gateway": g.reg.Snapshot()}
	for _, p := range g.livePeers() {
		snap, err := p.metricsSnapshot(ctx)
		if err != nil {
			continue
		}
		per[p.name] = snap
	}
	g.fedSnap, g.fedAt, g.fedOK = obs.MergeSnapshots(per), time.Now(), true
	return g.fedSnap
}
