package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"github.com/htacs/ata/internal/bitset"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/shard"
)

// Wire format of the batched RPC protocol. A Frame is one POST
// /cluster/batch request: an ordered list of operations coalesced from
// concurrent gateway calls; the FrameResult aligns results by index.
// Frames carry IDs so a retried frame (response lost in flight) is
// deduplicated node-side and the cached response replayed instead of the
// ops double-applying.

// Op kinds. Mutating ops mirror the shard engine's cluster-support
// surface; read ops serve the gateway's gather paths.
const (
	opScore        = "score"         // BestGain: the scatter half of an offer
	opCommit       = "commit"        // TryAssign: commit the offer to this node
	opBuffer       = "buffer"        // BufferAny: park on the least backlogged shard
	opComplete     = "complete"      // Complete(worker, task); returns the pulled task
	opAddWorker    = "add_worker"    // AddWorker; returns drained tasks
	opRemoveWorker = "remove_worker" // RemoveWorker; returns dropped tasks
	opActiveTasks  = "active_tasks"  // ActiveTasks(worker)
	opWorker       = "worker"        // Worker(worker)
	opCompleted    = "completed"     // Completed(worker)
	opWorkers      = "workers"       // WorkerIDs()
	opStats        = "stats"         // Stats()
	opObjective    = "objective"     // Objective()
	opSetTrust     = "set_trust"     // SetTrust(worker, value); returns drained tasks
	opTrust        = "trust"         // Trust(worker)
	opSetWindow    = "set_window"    // SetWindow(worker, until): availability-window end
	opWindow       = "window"        // Window(worker)
)

// Error codes carried in OpResult.Code so the gateway can map node-side
// failures back onto the sentinel errors the platform layer knows.
const (
	codeFull   = "buffer_full" // stream.ErrBufferFull
	codeClosed = "closed"      // shard.ErrClosed
)

// taskWire is a task on the wire: (universe, indices) keyword pairs, the
// same representation the workload files and shard snapshots use.
type taskWire struct {
	ID       string  `json:"id"`
	Group    string  `json:"group,omitempty"`
	Reward   float64 `json:"reward,omitempty"`
	Universe int     `json:"universe"`
	Keywords []int   `json:"keywords"`
	// Deadline is the absolute UnixNano expiry (0 = never); omitted for
	// undeadlined tasks so pre-deadline peers parse the frame unchanged.
	Deadline int64 `json:"deadline,omitempty"`
}

func taskToWire(t *core.Task) taskWire {
	return taskWire{ID: t.ID, Group: t.Group, Reward: t.Reward,
		Universe: t.Keywords.Len(), Keywords: t.Keywords.Indices(),
		Deadline: t.Deadline}
}

func wireToTask(s taskWire) (*core.Task, error) {
	if s.Universe < 1 {
		return nil, fmt.Errorf("cluster: task %q: universe %d", s.ID, s.Universe)
	}
	for _, k := range s.Keywords {
		if k < 0 || k >= s.Universe {
			return nil, fmt.Errorf("cluster: task %q: keyword %d outside universe %d", s.ID, k, s.Universe)
		}
	}
	return &core.Task{ID: s.ID, Group: s.Group, Reward: s.Reward,
		Keywords: bitset.FromIndices(s.Universe, s.Keywords...),
		Deadline: s.Deadline}, nil
}

// workerWire is a worker on the wire.
type workerWire struct {
	ID       string  `json:"id"`
	Alpha    float64 `json:"alpha"`
	Beta     float64 `json:"beta"`
	Universe int     `json:"universe"`
	Keywords []int   `json:"keywords"`
}

func workerToWire(w *core.Worker) workerWire {
	return workerWire{ID: w.ID, Alpha: w.Alpha, Beta: w.Beta,
		Universe: w.Keywords.Len(), Keywords: w.Keywords.Indices()}
}

func wireToWorker(s workerWire) (*core.Worker, error) {
	if s.Universe < 1 {
		return nil, fmt.Errorf("cluster: worker %q: universe %d", s.ID, s.Universe)
	}
	for _, k := range s.Keywords {
		if k < 0 || k >= s.Universe {
			return nil, fmt.Errorf("cluster: worker %q: keyword %d outside universe %d", s.ID, k, s.Universe)
		}
	}
	return &core.Worker{ID: s.ID, Alpha: s.Alpha, Beta: s.Beta,
		Keywords: bitset.FromIndices(s.Universe, s.Keywords...)}, nil
}

// SpanRef is the trace context one op carries across the wire: the
// originating request's trace ID and the RPC span opened for this op,
// both in 16-hex-digit form. Trace context rides per op, not per frame,
// because a frame coalesces ops from unrelated requests. Absence is the
// negative head-sampling decision — an unsampled request serializes
// nothing and the node records nothing.
type SpanRef struct {
	TraceID string `json:"t"`
	SpanID  string `json:"s"`
}

// Op is one operation inside a frame.
type Op struct {
	Op       string      `json:"op"`
	Task     *taskWire   `json:"task,omitempty"`
	TaskID   string      `json:"task_id,omitempty"`
	Worker   *workerWire `json:"worker,omitempty"`
	WorkerID string      `json:"worker_id,omitempty"`
	// Trust carries the value of a set_trust op (pointer so 0 — quarantine
	// — survives omitempty semantics).
	Trust *float64 `json:"trust,omitempty"`
	// Window carries the availability-window end of a set_window op
	// (pointer so 0 — clear — survives omitempty semantics).
	Window *int64 `json:"window,omitempty"`
	// Span propagates the sampled trace context (nil when unsampled).
	Span *SpanRef `json:"span,omitempty"`
}

// OpResult is the outcome of one op, index-aligned with its frame.
type OpResult struct {
	OK   bool   `json:"ok"`
	Err  string `json:"err,omitempty"`
	Code string `json:"code,omitempty"`

	// score
	Gain    float64 `json:"gain,omitempty"`
	Rel     float64 `json:"rel,omitempty"`
	Free    bool    `json:"free,omitempty"`
	Backlog int     `json:"backlog,omitempty"`

	// commit / complete / worker reads
	WorkerID string       `json:"worker_id,omitempty"`
	Next     *taskWire    `json:"next,omitempty"`
	Tasks    []taskWire   `json:"tasks,omitempty"`
	Worker   *workerWire  `json:"worker,omitempty"`
	Count    int          `json:"count,omitempty"`
	IDs      []string     `json:"ids,omitempty"`
	Stats    *shard.Stats `json:"stats,omitempty"`
	Value    float64      `json:"value,omitempty"`
	// Until answers a window read. Its own int64 field, not Value: a
	// UnixNano does not fit float64 exactly.
	Until int64 `json:"until,omitempty"`
}

// Frame is the body of POST /cluster/batch.
type Frame struct {
	ID  string `json:"id"`
	Ops []Op   `json:"ops"`
}

// FrameResult is the response: Results[i] answers Ops[i].
type FrameResult struct {
	Results []OpResult `json:"results"`
}

// bufPool recycles the encode buffers on the RPC hot path — frames are
// encoded into a pooled bytes.Buffer (and node responses likewise), so
// steady-state traffic allocates no fresh buffers per frame.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putBuf(b *bytes.Buffer) {
	// Oversized one-off frames (e.g. a giant stats gather) should not pin
	// their backing arrays in the pool forever.
	if b.Cap() > 1<<20 {
		return
	}
	bufPool.Put(b)
}

// encodeJSON marshals v into a pooled buffer. The caller must putBuf it.
func encodeJSON(v any) (*bytes.Buffer, error) {
	b := getBuf()
	if err := json.NewEncoder(b).Encode(v); err != nil {
		putBuf(b)
		return nil, err
	}
	return b, nil
}
