package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

// testCluster is an in-process cluster: N node engines behind httptest
// servers, fronted by one gateway with the heartbeat loop disabled (tests
// drive CheckHealth for determinism).
type testCluster struct {
	gw      *Gateway
	nodes   []*Node
	engines []*shard.Engine
	servers []*httptest.Server
}

func newTestCluster(t *testing.T, n, shardsPer, bufferPer, xmax int) *testCluster {
	t.Helper()
	tc := &testCluster{}
	specs := make([]PeerSpec, 0, n)
	for i := 0; i < n; i++ {
		eng, err := shard.New(shard.Config{
			Shards:        shardsPer,
			StealInterval: -1, // see the steal caveat in the Gateway doc
			Stream:        stream.Config{Xmax: xmax, BufferLimit: bufferPer},
			Registry:      obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("node %d engine: %v", i, err)
		}
		name := fmt.Sprintf("n%d", i)
		node, err := NewNode(NodeConfig{Name: name, Engine: eng})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		srv := httptest.NewServer(node)
		tc.engines = append(tc.engines, eng)
		tc.nodes = append(tc.nodes, node)
		tc.servers = append(tc.servers, srv)
		specs = append(specs, PeerSpec{Name: name, URL: srv.URL})
	}
	gw, err := NewGateway(GatewayConfig{
		Peers:             specs,
		HeartbeatInterval: -1,
		FailAfter:         1,
		RetryBackoff:      time.Millisecond,
		Registry:          obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("gateway: %v", err)
	}
	tc.gw = gw
	t.Cleanup(func() {
		gw.Close()
		for i, srv := range tc.servers {
			srv.Close()
			tc.engines[i].Close()
		}
	})
	return tc
}

func testWorkload(t *testing.T, seed int64, workers, tasks int) ([]*core.Worker, []*core.Task) {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{Universe: 64, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Workers(workers), gen.Tasks(tasks/4+1, 4)[:tasks]
}

// checkConserved asserts the cluster-wide conservation law.
func checkConserved(t *testing.T, gw *Gateway, when string) shard.Stats {
	t.Helper()
	st := gw.Stats()
	if !st.Conserved() {
		t.Fatalf("%s: conservation broken: submitted=%d active=%d completed=%d buffered=%d dropped=%d",
			when, st.Submitted, st.Active, st.Completed, st.Buffered, st.Dropped)
	}
	return st
}

func TestClusterBasicFlow(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 64, 2)
	gw := tc.gw
	workers, tasks := testWorkload(t, 1, 12, 40)
	for _, w := range workers {
		if _, err := gw.AddWorker(w); err != nil {
			t.Fatalf("AddWorker(%s): %v", w.ID, err)
		}
	}
	if got := len(gw.WorkerIDs()); got != len(workers) {
		t.Fatalf("WorkerIDs: %d, want %d", got, len(workers))
	}
	assigned, buffered := 0, 0
	for _, task := range tasks {
		wid, err := gw.OfferTask(task)
		if err != nil {
			t.Fatalf("OfferTask(%s): %v", task.ID, err)
		}
		if wid != "" {
			assigned++
		} else {
			buffered++
		}
	}
	if assigned == 0 {
		t.Fatal("no task assigned")
	}
	st := checkConserved(t, gw, "after offers")
	if st.Submitted != int64(len(tasks)) {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, len(tasks))
	}
	if st.Active != assigned || st.Buffered != buffered {
		t.Fatalf("Active/Buffered = %d/%d, want %d/%d", st.Active, st.Buffered, assigned, buffered)
	}
	if st.Workers != len(workers) {
		t.Fatalf("Workers = %d, want %d", st.Workers, len(workers))
	}

	// Duplicate offers are rejected without counting Submitted.
	if _, err := gw.OfferTask(tasks[0]); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate offer: err = %v", err)
	}
	if got := gw.Stats().Submitted; got != int64(len(tasks)) {
		t.Fatalf("duplicate counted: Submitted = %d", got)
	}

	// Complete every active task via the gateway. Completions pull
	// buffered tasks back into freed slots — possibly onto a worker
	// drained earlier in the pass — so keep sweeping until a full pass
	// completes nothing.
	completed := 0
	for progress := true; progress; {
		progress = false
		for _, w := range workers {
			for {
				active, err := gw.ActiveTasks(w.ID)
				if err != nil {
					t.Fatalf("ActiveTasks(%s): %v", w.ID, err)
				}
				if len(active) == 0 {
					break
				}
				if _, err := gw.Complete(w.ID, active[0].ID); err != nil {
					t.Fatalf("Complete(%s, %s): %v", w.ID, active[0].ID, err)
				}
				completed++
				progress = true
			}
		}
	}
	st = checkConserved(t, gw, "after completions")
	if st.Active != 0 {
		t.Fatalf("drained cluster: Active=%d", st.Active)
	}
	// Tasks may legitimately remain buffered on a shard that never had a
	// worker (stealing is off in cluster tests); everything else is done.
	if st.Completed != int64(completed) || st.Completed != int64(len(tasks))-int64(st.Buffered) {
		t.Fatalf("Completed = %d (loop counted %d), want %d tasks - %d buffered",
			st.Completed, completed, len(tasks), st.Buffered)
	}
	if obj := gw.Objective(); obj != 0 {
		t.Fatalf("Objective of drained cluster = %g", obj)
	}
}

func TestClusterErrorMapping(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 2, 1)
	gw := tc.gw
	if _, err := gw.Complete("ghost", "t"); err == nil || !strings.Contains(err.Error(), "unknown worker") {
		t.Fatalf("unknown worker error lost in transit: %v", err)
	}
	if _, err := gw.ActiveTasks("ghost"); err == nil || !strings.Contains(err.Error(), "unknown worker") {
		t.Fatalf("ActiveTasks ghost: %v", err)
	}
	workers, tasks := testWorkload(t, 2, 1, 30)
	if _, err := gw.AddWorker(workers[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Complete(workers[0].ID, "never-offered"); err == nil || !strings.Contains(err.Error(), "not active") {
		t.Fatalf("not-active error lost in transit: %v", err)
	}
	// Fill the single worker (Xmax=1) and both nodes' buffers (2 each):
	// the sixth task must be rejected with the sentinel, and the
	// rejection counted by the gateway so conservation still holds.
	accepted := 0
	var sawFull bool
	for _, task := range tasks {
		_, err := gw.OfferTask(task)
		switch {
		case err == nil:
			accepted++
		case err == stream.ErrBufferFull:
			sawFull = true
		default:
			t.Fatalf("OfferTask: %v", err)
		}
		if sawFull {
			break
		}
	}
	if !sawFull {
		t.Fatal("never saw ErrBufferFull with tiny buffers")
	}
	if accepted != 1+2*2 {
		t.Fatalf("accepted %d tasks, want %d (1 active + 2 nodes x 2 buffer)", accepted, 5)
	}
	st := checkConserved(t, gw, "after overflow")
	if st.Dropped == 0 {
		t.Fatal("gateway did not count the rejected offer")
	}
}

func TestClusterConcurrentLoadConserves(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 128, 4)
	gw := tc.gw
	workers, tasks := testWorkload(t, 3, 24, 600)
	for _, w := range workers {
		if _, err := gw.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	// G concurrent drivers interleave offers and completions — the batching
	// layer must coalesce them without losing or duplicating any op.
	const G = 8
	var wg sync.WaitGroup
	perDriver := len(tasks) / G
	for d := 0; d < G; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			for _, task := range tasks[d*perDriver : (d+1)*perDriver] {
				if _, err := gw.OfferTask(task); err != nil && err != stream.ErrBufferFull {
					t.Errorf("offer %s: %v", task.ID, err)
					return
				}
				w := workers[(d*7)%len(workers)]
				if active, err := gw.ActiveTasks(w.ID); err == nil && len(active) > 0 {
					// Completing a task another driver already completed is a
					// legal race; only transport errors are failures.
					if _, err := gw.Complete(w.ID, active[0].ID); err != nil &&
						!strings.Contains(err.Error(), "not active") {
						t.Errorf("complete: %v", err)
						return
					}
				}
			}
		}(d)
	}
	wg.Wait()
	st := checkConserved(t, gw, "after concurrent load")
	if st.Submitted != int64(G*perDriver) {
		t.Fatalf("Submitted = %d, want %d", st.Submitted, G*perDriver)
	}
	// The realized coalescing factor must show batching actually engaged.
	frames, ops := gw.FramesSent(), gw.OpsSent()
	if frames == 0 || ops <= frames {
		t.Fatalf("no coalescing: %d frames for %d ops", frames, ops)
	}
	t.Logf("coalescing: %d ops over %d frames (%.2f ops/frame)", ops, frames, float64(ops)/float64(frames))
}

func TestClusterFailoverRequeuesAndConserves(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 256, 2)
	gw := tc.gw
	workers, tasks := testWorkload(t, 4, 18, 300)
	for _, w := range workers {
		if _, err := gw.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		if _, err := gw.OfferTask(task); err != nil && err != stream.ErrBufferFull {
			t.Fatalf("offer: %v", err)
		}
	}
	before := checkConserved(t, gw, "before failover")

	// Kill node n1 mid-run: its HTTP server vanishes; the next health
	// check (FailAfter=1) must remove it from the ring and requeue its
	// pending tasks onto the survivors.
	victim := tc.engines[1].Stats()
	tc.servers[1].Close()
	gw.CheckHealth(context.Background())
	if got := gw.Members(); len(got) != 2 {
		t.Fatalf("members after failover = %v", got)
	}

	after := checkConserved(t, gw, "after failover")
	if after.Submitted != before.Submitted {
		t.Fatalf("Submitted changed across failover: %d -> %d", before.Submitted, after.Submitted)
	}
	if after.Workers != before.Workers-victim.Workers {
		t.Fatalf("Workers = %d, want %d - %d", after.Workers, before.Workers, victim.Workers)
	}
	// The victim's pending tasks are requeued (now active or buffered on
	// survivors) or counted dropped — none simply vanish.
	pendingVictim := victim.Active + victim.Buffered
	accountedAfter := after.Active + after.Buffered + int(after.Dropped-before.Dropped)
	accountedBefore := before.Active + before.Buffered
	if accountedAfter != accountedBefore {
		t.Fatalf("failover lost tasks: active+buffered+newdrops %d, want %d (victim held %d)",
			accountedAfter, accountedBefore, pendingVictim)
	}

	// Ops against the dead node's workers now fail cleanly; the survivors
	// keep serving, and completing everything still balances the books.
	for _, w := range workers {
		active, err := gw.ActiveTasks(w.ID)
		if err != nil {
			continue // worker lived on the dead node
		}
		for len(active) > 0 {
			if _, err := gw.Complete(w.ID, active[0].ID); err != nil {
				t.Fatalf("post-failover complete: %v", err)
			}
			active, err = gw.ActiveTasks(w.ID)
			if err != nil {
				t.Fatalf("post-failover active: %v", err)
			}
		}
	}
	final := checkConserved(t, gw, "after draining survivors")
	if final.Active != 0 {
		t.Fatalf("Active = %d after drain", final.Active)
	}
}

func TestClusterAllNodesDead(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 16, 2)
	gw := tc.gw
	workers, tasks := testWorkload(t, 5, 4, 20)
	for _, w := range workers {
		if _, err := gw.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks[:10] {
		if _, err := gw.OfferTask(task); err != nil {
			t.Fatalf("offer: %v", err)
		}
	}
	tc.servers[0].Close()
	tc.servers[1].Close()
	gw.CheckHealth(context.Background())
	if got := gw.Members(); len(got) != 0 {
		t.Fatalf("members = %v, want none", got)
	}
	if _, err := gw.OfferTask(tasks[10]); err == nil {
		t.Fatal("offer succeeded with no live nodes")
	}
	if _, err := gw.AddWorker(workers[0]); err == nil {
		t.Fatal("register succeeded with no live nodes")
	}
	// Everything pending died with the nodes: all non-completed submitted
	// tasks are dropped, and the books still balance.
	st := checkConserved(t, gw, "after total failure")
	if st.Active != 0 || st.Buffered != 0 {
		t.Fatalf("ghost state: Active=%d Buffered=%d", st.Active, st.Buffered)
	}
}

func TestClusterJoinTakesNewWorkers(t *testing.T) {
	tc := newTestCluster(t, 2, 1, 64, 2)
	gw := tc.gw
	workers, tasks := testWorkload(t, 6, 16, 60)
	half := workers[:8]
	for _, w := range half {
		if _, err := gw.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks[:30] {
		if _, err := gw.OfferTask(task); err != nil && err != stream.ErrBufferFull {
			t.Fatal(err)
		}
	}
	before := checkConserved(t, gw, "before join")

	// Join a fresh third node.
	eng, err := shard.New(shard.Config{
		Shards: 1, StealInterval: -1,
		Stream:   stream.Config{Xmax: 2, BufferLimit: 64},
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(NodeConfig{Name: "n2", Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(node)
	t.Cleanup(func() { srv.Close(); eng.Close() })
	if err := gw.AddNode("n2", srv.URL); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if got := gw.Members(); len(got) != 3 {
		t.Fatalf("members after join = %v", got)
	}
	if err := gw.AddNode("n2", srv.URL); err == nil {
		t.Fatal("duplicate join accepted")
	}

	// Existing workers stay pinned: every pre-join worker still answers.
	for _, w := range half {
		if _, err := gw.ActiveTasks(w.ID); err != nil {
			t.Fatalf("pre-join worker %s broken by join: %v", w.ID, err)
		}
	}
	// New workers spread over three nodes; some land on the joiner.
	for _, w := range workers[8:] {
		if _, err := gw.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Stats().Workers == 0 {
		t.Fatal("joined node received no new workers (16 post-join registrations)")
	}
	for _, task := range tasks[30:] {
		if _, err := gw.OfferTask(task); err != nil && err != stream.ErrBufferFull {
			t.Fatal(err)
		}
	}
	after := checkConserved(t, gw, "after join")
	if after.Workers != len(workers) {
		t.Fatalf("Workers = %d, want %d", after.Workers, len(workers))
	}
	if after.Submitted <= before.Submitted {
		t.Fatalf("Submitted did not grow: %d -> %d", before.Submitted, after.Submitted)
	}
}

func TestClusterSnapshotMergedCut(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 64, 2)
	gw := tc.gw
	workers, tasks := testWorkload(t, 7, 9, 50)
	for _, w := range workers {
		if _, err := gw.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		if _, err := gw.OfferTask(task); err != nil && err != stream.ErrBufferFull {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := gw.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	var doc mergedSnapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged snapshot does not parse: %v", err)
	}
	if doc.Version != 1 || len(doc.Nodes) != 3 {
		t.Fatalf("doc: version=%d nodes=%d", doc.Version, len(doc.Nodes))
	}
	st := gw.Stats()
	if doc.Submitted != st.Submitted || doc.Completed != st.Completed {
		t.Fatalf("doc counters (%d, %d) != stats (%d, %d)",
			doc.Submitted, doc.Completed, st.Submitted, st.Completed)
	}
	// Each per-node cut restores into a fresh engine, and the restored
	// populations sum to the cluster's totals — the cut is consistent.
	var active, buffered int
	for _, ns := range doc.Nodes {
		eng, err := shard.Restore(bytes.NewReader(ns.Engine), shard.Config{
			Shards: 2, StealInterval: -1,
			Stream:   stream.Config{Xmax: 2, BufferLimit: 64},
			Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("restore of %s's cut: %v", ns.Name, err)
		}
		rst := eng.Stats()
		active += rst.Active
		buffered += rst.Buffered
		eng.Close()
	}
	if active != st.Active || buffered != st.Buffered {
		t.Fatalf("restored totals %d/%d != live stats %d/%d", active, buffered, st.Active, st.Buffered)
	}
}

func TestNodeFrameReplayDedup(t *testing.T) {
	eng, err := shard.New(shard.Config{
		Shards: 1, StealInterval: -1,
		Stream:   stream.Config{Xmax: 2, BufferLimit: 16},
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	node, err := NewNode(NodeConfig{Name: "n0", Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(node)
	defer srv.Close()

	workers, tasks := testWorkload(t, 8, 1, 2)
	if _, err := eng.AddWorker(workers[0]); err != nil {
		t.Fatal(err)
	}
	tw := taskToWire(tasks[0])
	frame := Frame{ID: "frame-replay-1", Ops: []Op{{Op: opCommit, Task: &tw}}}
	post := func() FrameResult {
		t.Helper()
		body, _ := json.Marshal(frame)
		resp, err := http.Post(srv.URL+"/cluster/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out FrameResult
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := post()
	if len(first.Results) != 1 || !first.Results[0].OK {
		t.Fatalf("first application: %+v", first)
	}
	// The same frame again: replayed from cache, not re-applied — the
	// engine must still count exactly one submission.
	second := post()
	if len(second.Results) != 1 || !second.Results[0].OK ||
		second.Results[0].WorkerID != first.Results[0].WorkerID {
		t.Fatalf("replay mismatch: %+v vs %+v", second, first)
	}
	if st := eng.Stats(); st.Submitted != 1 {
		t.Fatalf("retried frame double-applied: Submitted = %d", st.Submitted)
	}
	// A different frame ID with the same op is a genuine duplicate task
	// and must be refused by the engine's own filter... but commit has no
	// filter — the gateway owns global dedup. What must hold: a fresh
	// frame re-applies (at-least-once only when IDs differ).
	frame.ID = "frame-replay-2"
	third := post()
	if third.Results[0].OK {
		// Same task committed twice under distinct frame IDs — allowed at
		// node level (gateway's seen-filter prevents it in practice), but
		// it must be visible in the books.
		if st := eng.Stats(); st.Submitted != 2 {
			t.Fatalf("second commit invisible: Submitted = %d", st.Submitted)
		}
	}
}

func TestPeerPipelineWindowRecoversAfterErrors(t *testing.T) {
	// A node that 500s every request: the peer must resolve every call
	// with an error (no hangs, no leaked window slots), and keep working
	// after the node recovers.
	var failing sync.Map
	failing.Store("on", true)
	eng, err := shard.New(shard.Config{
		Shards: 1, StealInterval: -1,
		Stream:   stream.Config{Xmax: 2, BufferLimit: 16},
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	node, _ := NewNode(NodeConfig{Name: "n0", Engine: eng})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if on, _ := failing.Load("on"); on.(bool) {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		node.ServeHTTP(w, r)
	}))
	defer srv.Close()
	p := newPeer("n0", srv.URL, srv.Client(), obs.NewRegistry(), 8, 2, 2, time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.do(Op{Op: opWorkers}); err == nil {
				t.Error("op succeeded against a 500ing node")
			}
		}()
	}
	wg.Wait()
	failing.Store("on", false)
	// Window slots must all be free again: window+1 concurrent ops succeed.
	for i := 0; i < 3; i++ {
		if _, err := p.do(Op{Op: opWorkers}); err != nil {
			t.Fatalf("op after recovery: %v", err)
		}
	}
}

// TestClusterTrustRoundTrip: trust set through the gateway RPC lands on
// the owning node, reads back, and survives a merged snapshot restored
// node by node at a *different* shard count — the same path a rolling
// re-shard takes.
func TestClusterTrustRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 64, 2)
	gw := tc.gw
	workers, tasks := testWorkload(t, 13, 9, 30)
	for _, w := range workers {
		if _, err := gw.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		if _, err := gw.OfferTask(task); err != nil && err != stream.ErrBufferFull {
			t.Fatal(err)
		}
	}
	// A spread of values, including an exact 0 (quarantine) — the wire
	// encoding must not drop the zero.
	want := map[string]float64{}
	for i, w := range workers {
		v := []float64{0.9, 0.35, 0, 0.7}[i%4]
		if _, err := gw.SetTrust(w.ID, v); err != nil {
			t.Fatalf("SetTrust(%s): %v", w.ID, err)
		}
		want[w.ID] = v
	}
	for id, v := range want {
		got, err := gw.Trust(id)
		if err != nil {
			t.Fatalf("Trust(%s): %v", id, err)
		}
		if got != v {
			t.Fatalf("worker %s: trust %v over RPC, want %v", id, got, v)
		}
	}
	if _, err := gw.SetTrust("ghost", 1); err == nil {
		t.Fatal("SetTrust on unknown worker accepted")
	}

	var buf bytes.Buffer
	if err := gw.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var doc mergedSnapshot
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, ns := range doc.Nodes {
		eng, err := shard.Restore(bytes.NewReader(ns.Engine), shard.Config{
			Shards: 5, StealInterval: -1, // re-shard 2 → 5 on restore
			Stream:   stream.Config{Xmax: 2, BufferLimit: 64},
			Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("restore of %s's cut: %v", ns.Name, err)
		}
		for id, v := range want {
			got, err := eng.Trust(id)
			if err != nil {
				continue // worker lives on another node
			}
			if got != v {
				t.Fatalf("worker %s on %s: trust %v after restore, want %v", id, ns.Name, got, v)
			}
			seen++
		}
		eng.Close()
	}
	if seen != len(want) {
		t.Fatalf("restored cuts cover %d workers, want %d", seen, len(want))
	}
}
