package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"

	"github.com/htacs/ata/internal/crowd"
)

func TestWriteRowsCSV(t *testing.T) {
	rows, err := SweepGroups(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRowsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != len(rows)+1 {
		t.Fatalf("%d records for %d rows", len(records), len(rows))
	}
	if records[0][0] != "tasks" || records[0][4] != "precompute_seconds" || records[0][8] != "objective" {
		t.Fatalf("header = %v", records[0])
	}
	for i, r := range rows {
		rec := records[i+1]
		if rec[3] != r.Algorithm {
			t.Fatalf("row %d algorithm %q != %q", i, rec[3], r.Algorithm)
		}
		v, err := strconv.ParseFloat(rec[7], 64)
		if err != nil || v < r.TotalSeconds-1e-6 || v > r.TotalSeconds+1e-6 {
			t.Fatalf("row %d total %q != %g", i, rec[7], r.TotalSeconds)
		}
	}
}

func TestWriteFig5CSV(t *testing.T) {
	params := crowd.DefaultParams()
	params.SessionMinutes = 6
	params.PoolPerSession = 150
	res, err := Fig5(Fig5Options{SessionsPerStrategy: 2, Seed: 5, Params: &params})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteFig5CSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != len(res.Grid)+1 {
		t.Fatalf("%d records for %d grid points", len(records), len(res.Grid))
	}
	// 1 minute column + 3 columns per strategy.
	wantCols := 1 + 3*len(crowd.Strategies)
	for i, rec := range records {
		if len(rec) != wantCols {
			t.Fatalf("record %d has %d columns, want %d", i, len(rec), wantCols)
		}
	}
}
