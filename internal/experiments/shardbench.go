package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

// PR5Point is one shard-count measurement of the streaming event loop:
// a complete-dominated steady state (full workers, deep backlog) where
// every Complete pays a pullBest scan over its shard's buffer. Total
// buffer capacity is fixed across shard counts (per-shard limit =
// TotalBuffer/Shards), so the contrast isolates the backlog-partitioning
// win rather than handing more memory to larger configurations.
type PR5Point struct {
	Shards      int `json:"shards"`
	Workers     int `json:"workers"`
	Churners    int `json:"churn_workers"`
	TotalBuffer int `json:"total_buffer"`
	Events      int `json:"events"`

	PerEventNs   int64   `json:"per_event_ns"` // median over runs
	EventsPerSec float64 `json:"events_per_sec"`

	Completed int64 `json:"completed"`
	Dropped   int64 `json:"dropped"`
	Conserved bool  `json:"conserved"`
}

// PR5Report is the payload of BENCH_PR5.json: event throughput of the
// sharded engine at 1/2/4/8 shards on one churn-laden streaming workload,
// with the acceptance target of >= 2.5x at 8 shards over 1.
type PR5Report struct {
	Note          string     `json:"note"`
	Points        []PR5Point `json:"points"`
	SpeedupAt8    float64    `json:"speedup_at_8"`
	TargetSpeedup float64    `json:"target_speedup"`
	MeetsTarget   bool       `json:"meets_target"`
}

// pr5Shape fixes the workload the shard sweep replays at every shard
// count: enough buffered backlog that pullBest dominates, a worker pool
// saturated at Xmax so offers stream into the buffer, and a churn trace
// (workload.Churn) arriving/departing extra workers mid-run.
type pr5Shape struct {
	workers     int
	churners    int
	xmax        int
	totalBuffer int
	events      int // loop iterations; each is one Complete + one Offer
	departFrac  float64
}

var defaultPR5Shape = pr5Shape{
	workers:     40,
	churners:    16,
	xmax:        4,
	totalBuffer: 2048,
	events:      1500,
	departFrac:  0.6,
}

// SweepPR5 measures event throughput at 1, 2, 4 and 8 shards on the
// fixed-capacity churn workload. Each shard count is measured o.Runs
// times with per-run seeds and the median per-event time is reported;
// conservation (submitted = active + completed + buffered + dropped) is
// asserted on every run's final Stats.
func SweepPR5(o Options) (*PR5Report, error) {
	o.applyDefaults()
	report := &PR5Report{
		Note: "sharded engine event throughput: complete-dominated steady state (workers full at Xmax, deep backlog) with worker churn; total buffer capacity fixed across shard counts, background stealing replaced by one StealOnce per 100 events for deterministic accounting.",
		// Acceptance bar from the PR issue: 8 shards must clear 2.5x the
		// single-shard event rate on the same workload.
		TargetSpeedup: 2.5,
	}
	shape := defaultPR5Shape
	var oneShard int64
	for _, shards := range []int{1, 2, 4, 8} {
		point, err := measurePR5(o, shards, shape)
		if err != nil {
			return nil, fmt.Errorf("experiments: pr5 shards=%d: %w", shards, err)
		}
		report.Points = append(report.Points, point)
		if shards == 1 {
			oneShard = point.PerEventNs
		}
		if shards == 8 && oneShard > 0 && point.PerEventNs > 0 {
			report.SpeedupAt8 = float64(oneShard) / float64(point.PerEventNs)
		}
	}
	report.MeetsTarget = report.SpeedupAt8 >= report.TargetSpeedup
	return report, nil
}

// measurePR5 times the event loop at one shard count, o.Runs times.
func measurePR5(o Options, shards int, shape pr5Shape) (PR5Point, error) {
	point := PR5Point{
		Shards:      shards,
		Workers:     shape.workers,
		Churners:    shape.churners,
		TotalBuffer: shape.totalBuffer,
		Events:      shape.events,
	}
	var samples []time.Duration
	for run := 0; run < o.Runs; run++ {
		d, completed, dropped, conserved, err := runPR5(o.Seed+int64(run), shards, shape)
		if err != nil {
			return point, err
		}
		if !conserved {
			return point, fmt.Errorf("conservation violated on run %d", run)
		}
		samples = append(samples, d)
		point.Completed, point.Dropped, point.Conserved = completed, dropped, conserved
	}
	totalEvents := 2 * shape.events
	point.PerEventNs = medianNs(samples) / int64(totalEvents)
	if point.PerEventNs > 0 {
		point.EventsPerSec = 1e9 / float64(point.PerEventNs)
	}
	return point, nil
}

// runPR5 executes one seeded run: fill to steady state (untimed), then
// drive the timed loop of Complete+Offer pairs with churn arrivals and
// departures interleaved by logical step.
func runPR5(seed int64, shards int, shape pr5Shape) (elapsed time.Duration, completed, dropped int64, conserved bool, err error) {
	gen, err := workload.NewGenerator(workload.Config{Seed: seed})
	if err != nil {
		return 0, 0, 0, false, err
	}
	pool := gen.Workers(shape.workers + shape.churners)
	base, churners := pool[:shape.workers], pool[shape.workers:]
	byID := make(map[string]*core.Worker, len(churners))
	for _, w := range churners {
		byID[w.ID] = w
	}
	churn, err := gen.Churn(churners, shape.events, shape.departFrac)
	if err != nil {
		return 0, 0, 0, false, err
	}

	// Task supply: initial fill (every slot + every buffer space) plus one
	// fresh task per loop iteration, with slack for requeue-induced drops.
	need := shape.workers*shape.xmax + shape.totalBuffer + shape.events + 64
	tasks := gen.Tasks(need/8+1, 8)[:need]

	eng, err := shard.New(shard.Config{
		Shards:        shards,
		StealInterval: -1, // stolen mid-flight tasks would escape Stats; steal explicitly below
		Registry:      obs.NewRegistry(),
		Stream: stream.Config{
			Xmax:        shape.xmax,
			BufferLimit: shape.totalBuffer / shards,
		},
	})
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer eng.Close()

	// active tracks each base worker's assignments so the loop can issue
	// Complete calls without querying the engine on the hot path.
	active := make(map[string][]string, len(base))
	for _, w := range base {
		drained, err := eng.AddWorker(w)
		if err != nil {
			return 0, 0, 0, false, err
		}
		active[w.ID] = []string{}
		for _, t := range drained {
			active[w.ID] = append(active[w.ID], t.ID)
		}
	}
	record := func(wid, tid string) {
		if _, ok := active[wid]; ok {
			active[wid] = append(active[wid], tid)
		}
	}

	// Fill phase (untimed): saturate every worker slot, then the buffers.
	next := 0
	for ; next < shape.workers*shape.xmax+shape.totalBuffer; next++ {
		wid, err := eng.OfferTask(tasks[next])
		if err != nil {
			if errors.Is(err, stream.ErrBufferFull) {
				continue
			}
			return 0, 0, 0, false, err
		}
		if wid != "" {
			record(wid, tasks[next].ID)
		}
	}

	churnIdx := 0
	start := time.Now()
	for step := 0; step < shape.events; step++ {
		for churnIdx < len(churn) && churn[churnIdx].At <= step {
			ev := churn[churnIdx]
			churnIdx++
			if ev.Arrive {
				if _, err := eng.AddWorker(byID[ev.Worker]); err != nil {
					return 0, 0, 0, false, err
				}
			} else if _, err := eng.RemoveWorker(ev.Worker); err != nil {
				return 0, 0, 0, false, err
			}
		}

		// Complete: round-robin over base workers; pullBest refills the
		// freed slot from the worker's shard buffer.
		w := base[step%len(base)]
		if ids := active[w.ID]; len(ids) > 0 {
			tid := ids[0]
			nextTask, err := eng.Complete(w.ID, tid)
			if err != nil {
				return 0, 0, 0, false, err
			}
			active[w.ID] = ids[1:]
			if nextTask != nil {
				active[w.ID] = append(active[w.ID], nextTask.ID)
			}
		}

		// Offer: with workers saturated this lands in a buffer, keeping
		// the backlog deep; after churn departures it may assign directly.
		wid, err := eng.OfferTask(tasks[next])
		next++
		if err != nil && !errors.Is(err, stream.ErrBufferFull) {
			return 0, 0, 0, false, err
		}
		if err == nil && wid != "" {
			record(wid, tasks[next-1].ID)
		}

		if step%100 == 99 {
			eng.StealOnce()
		}
	}
	elapsed = time.Since(start)

	st := eng.Stats()
	return elapsed, st.Completed, st.Dropped, st.Conserved(), nil
}

// RenderPR5 prints the report as an aligned table.
func (r *PR5Report) RenderPR5(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%7s %8s %7s %8s %13s %12s %10s %9s\n",
		"shards", "workers", "buffer", "events", "per-event", "events/s", "completed", "dropped"); err != nil {
		return err
	}
	base := int64(0)
	if len(r.Points) > 0 {
		base = r.Points[0].PerEventNs
	}
	for _, p := range r.Points {
		speed := ""
		if base > 0 && p.PerEventNs > 0 {
			speed = fmt.Sprintf("  (%.2fx)", float64(base)/float64(p.PerEventNs))
		}
		if _, err := fmt.Fprintf(w, "%7d %8d %7d %8d %11dns %12.0f %10d %9d%s\n",
			p.Shards, p.Workers+p.Churners, p.TotalBuffer, 2*p.Events,
			p.PerEventNs, p.EventsPerSec, p.Completed, p.Dropped, speed); err != nil {
			return err
		}
	}
	verdict := "meets"
	if !r.MeetsTarget {
		verdict = "MISSES"
	}
	_, err := fmt.Fprintf(w, "\n8-shard speedup %.2fx — %s the %.1fx target (total buffer fixed, conservation checked per run)\n",
		r.SpeedupAt8, verdict, r.TargetSpeedup)
	return err
}

// WritePR5JSON writes the BENCH_PR5.json payload.
func (r *PR5Report) WritePR5JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
