package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPR5BaselineFromJSON pins the baseline extraction the pr6 gate feeds
// on: the shards=1 point of a BENCH_PR5.json payload, and a clear error
// when it is absent.
func TestPR5BaselineFromJSON(t *testing.T) {
	old := &PR5Report{
		Points: []PR5Point{
			{Shards: 1, PerEventNs: 52738, EventsPerSec: 18961.66},
			{Shards: 8, PerEventNs: 20000, EventsPerSec: 50000},
		},
	}
	data, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	base, err := PR5BaselineFromJSON(data, "BENCH_PR5.json")
	if err != nil {
		t.Fatal(err)
	}
	if base.PerEventNs != 52738 || base.EventsPerSec != 18961.66 {
		t.Fatalf("baseline mangled: %+v", base)
	}
	if !strings.Contains(base.Source, "shards=1") {
		t.Fatalf("source %q does not name the point", base.Source)
	}
	if _, err := PR5BaselineFromJSON([]byte(`{"points":[{"shards":8,"per_event_ns":1}]}`), "x.json"); err == nil {
		t.Fatal("missing shards=1 point must error")
	}
	if _, err := PR5BaselineFromJSON([]byte(`not json`), "x.json"); err == nil {
		t.Fatal("malformed JSON must error")
	}
}

func TestPR6ReportJSONAndRender(t *testing.T) {
	report := &PR6Report{
		Note:     "test",
		Baseline: PR6Baseline{Source: "BENCH_PR5.json shards=1", PerEventNs: 50000, EventsPerSec: 20000},
		Points: []PR5Point{
			{Shards: 1, Workers: 40, Churners: 16, TotalBuffer: 2048, Events: 1500,
				PerEventNs: 10000, EventsPerSec: 100000, Completed: 1500, Conserved: true},
		},
		SpeedupAt1: 5.0, TargetSpeedup: 5.0, MeetsTarget: true,
	}
	var buf bytes.Buffer
	if err := report.WritePR6JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back PR6Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.SpeedupAt1 != 5.0 || back.Baseline.PerEventNs != 50000 || len(back.Points) != 1 {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
	var out bytes.Buffer
	if err := report.RenderPR6(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline:", "5.00x", "meets"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, out.String())
		}
	}
}
