package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunPR10Small drives one run per mode at a toy size: both modes must
// conserve (submitted = active + completed + buffered + dropped + expired
// at quiescence), the reactive baseline must strand at least one deadline
// on the capacity-starved shard, and the predictive side must steal.
func TestRunPR10Small(t *testing.T) {
	shape := defaultPR10Shape
	shape.steps = 400
	shape.drain = 800
	for _, predictive := range []bool{false, true} {
		res, err := runPR10(7, shape, predictive)
		if err != nil {
			t.Fatalf("predictive=%v: %v", predictive, err)
		}
		if !res.stats.Conserved() {
			t.Fatalf("predictive=%v: conservation violated: %+v", predictive, res.stats)
		}
		if res.stats.Completed == 0 {
			t.Fatalf("predictive=%v: no completions", predictive)
		}
		if res.stats.Active != 0 || res.stats.Buffered != 0 {
			t.Fatalf("predictive=%v: drain left active=%d buffered=%d",
				predictive, res.stats.Active, res.stats.Buffered)
		}
		if predictive && res.stolen == 0 {
			t.Fatal("predictive mode never stole — the forecast trigger is dead")
		}
		if !predictive && res.stats.Expired == 0 {
			t.Fatal("reactive baseline expired nothing — the workload no longer strands deadlines")
		}
	}
}

// TestRunPR10Deterministic pins the replay protocol: identical seeds must
// produce identical ledgers, or the reactive/predictive contrast measures
// noise instead of the rebalancing policy.
func TestRunPR10Deterministic(t *testing.T) {
	shape := defaultPR10Shape
	shape.steps = 300
	shape.drain = 600
	a, err := runPR10(11, shape, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runPR10(11, shape, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.stats.Submitted != b.stats.Submitted || a.stats.Completed != b.stats.Completed ||
		a.stats.Expired != b.stats.Expired || a.stats.Dropped != b.stats.Dropped {
		t.Fatalf("same seed, different ledgers:\n%+v\n%+v", a.stats, b.stats)
	}
}

func TestPR10ReportJSONAndRender(t *testing.T) {
	report := &PR10Report{
		Note: "test",
		Points: []PR10Point{
			{Mode: "reactive", Shards: 4, Submitted: 100, Expired: 5, MissPct: 5, PerEventNs: 900, Conserved: true},
			{Mode: "predictive", Shards: 4, Submitted: 100, Expired: 1, Stolen: 7, MissPct: 1, PerEventNs: 880, Conserved: true},
		},
		ReactiveMissPct:         5,
		PredictiveMissPct:       1,
		MissReductionPct:        80,
		PredictiveBeatsReactive: true,
	}
	var buf bytes.Buffer
	if err := report.WritePR10JSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mode": "reactive"`, `"miss_pct"`, `"per_event_ns"`, `"predictive_beats_reactive": true`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON payload missing %s", want)
		}
	}
	var table bytes.Buffer
	if err := report.RenderPR10(&table); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"predictive", "reactive", "beats", "5.00%"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("rendered table missing %q:\n%s", want, table.String())
		}
	}
}
