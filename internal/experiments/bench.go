package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/lsap"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/workload"
)

// PR2SolverPoint is one before/after measurement of a full solver run for
// the PR 2 report. "Before" is the pre-PR configuration — the dense O(|T|³)
// Hungarian for HTA-APP, the unconditional eager distance precompute for
// HTA-GRE — and "after" is the shipped default (class-collapsed LSAP,
// gated precompute). Times are averaged ns/op over the sweep's runs; both
// sides solve identical instances with identical seeds under WithoutFlip.
type PR2SolverPoint struct {
	Algorithm string `json:"algorithm"`
	NumTasks  int    `json:"tasks"`
	Workers   int    `json:"workers"`

	BeforeNs     int64 `json:"before_ns"`
	AfterNs      int64 `json:"after_ns"`
	BeforeLSAPNs int64 `json:"before_lsap_ns"`
	AfterLSAPNs  int64 `json:"after_lsap_ns"`

	LSAPSpeedup float64 `json:"lsap_speedup"`

	// ObjectiveBefore/After are the flipless objectives of the two paths on
	// the last measured run. Both paths solve the auxiliary LSAP exactly;
	// when the optimum is unique they are bit-identical, and on degenerate
	// instances (zero-relevance tasks tying several workers at profit 0)
	// they may pick different equally-optimal assignments — LSAPValueDelta
	// stays ≤ 1e-9 either way.
	ObjectiveBefore    float64 `json:"objective_before"`
	ObjectiveAfter     float64 `json:"objective_after"`
	ObjectiveIdentical bool    `json:"objective_identical"`
	LSAPValueDelta     float64 `json:"lsap_value_delta"`
}

// PR2MicroPoint is one LSAP-only microbenchmark: the dense Hungarian, the
// class-collapsed Hungarian and the greedy solver on the same synthetic
// |T|-row profit matrix with |W| worker cliques (plus the isolated class).
type PR2MicroPoint struct {
	N          int   `json:"n"`
	Workers    int   `json:"workers"`
	DenseNs    int64 `json:"dense_ns"`
	ClassedNs  int64 `json:"classed_ns"`
	GreedyNs   int64 `json:"greedy_ns"`
	ValueEqual bool  `json:"value_equal"` // |dense − classed| ≤ 1e-9
}

// PR2Report is the payload of BENCH_PR2.json.
type PR2Report struct {
	Note    string           `json:"note"`
	Solvers []PR2SolverPoint `json:"solvers"`
	Micro   []PR2MicroPoint  `json:"lsap_micro"`
}

// SweepPR2 measures the class-collapsed-LSAP change end to end: app/gre at
// tasks ∈ {400, 700, 1000} (scaled by nothing — these are the BENCH_PR1
// comparison points) plus LSAP-only microbenchmarks across |W| ∈ {10, 50,
// 200} at |T| = 1000.
func SweepPR2(o Options) (*PR2Report, error) {
	o.applyDefaults()
	report := &PR2Report{
		Note: "before = dense Hungarian (app) / eager precompute (gre); after = class-collapsed LSAP + gated precompute. Identical instances and seeds, WithoutFlip.",
	}

	for _, numTasks := range []int{400, 700, 1000} {
		const numGroups, numWorkers = 20, 20
		app, err := measurePR2Solver(o, "hta-app", numTasks, numGroups, numWorkers,
			[]solver.Option{solver.WithDenseLSAP()}, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: pr2 app |T|=%d: %w", numTasks, err)
		}
		report.Solvers = append(report.Solvers, app)

		gre, err := measurePR2Solver(o, "hta-gre", numTasks, numGroups, numWorkers,
			[]solver.Option{solver.WithParallelism(1), solver.WithEagerPrecompute()},
			[]solver.Option{solver.WithParallelism(1)})
		if err != nil {
			return nil, fmt.Errorf("experiments: pr2 gre |T|=%d: %w", numTasks, err)
		}
		report.Solvers = append(report.Solvers, gre)
	}

	for _, numWorkers := range []int{10, 50, 200} {
		point, err := measurePR2Micro(o, 1000, numWorkers)
		if err != nil {
			return nil, fmt.Errorf("experiments: pr2 micro |W|=%d: %w", numWorkers, err)
		}
		report.Micro = append(report.Micro, point)
	}
	return report, nil
}

// measurePR2Solver times one algorithm in its before and after
// configurations on identical instances. beforeOpts/afterOpts are the
// configuration deltas (afterOpts nil = shipped default).
func measurePR2Solver(o Options, algo string, numTasks, numGroups, numWorkers int, beforeOpts, afterOpts []solver.Option) (PR2SolverPoint, error) {
	point := PR2SolverPoint{Algorithm: algo, NumTasks: numTasks, Workers: numWorkers}
	solve := solver.HTAGRE
	if algo == "hta-app" {
		solve = solver.HTAAPP
	}
	perGroup := numTasks / numGroups
	if perGroup < 1 {
		perGroup = 1
	}
	var beforeTotal, afterTotal, beforeLSAP, afterLSAP time.Duration
	for run := 0; run < o.Runs; run++ {
		gen, err := workload.NewGenerator(workload.Config{Seed: o.Seed + int64(run)})
		if err != nil {
			return point, err
		}
		tasks := gen.Tasks(numGroups, perGroup)
		workers := gen.Workers(numWorkers)
		seed := o.Seed + int64(run)

		measureOne := func(extra []solver.Option) (*solver.Result, error) {
			// Fresh instance per side so neither inherits the other's
			// diversity cache.
			in, err := core.NewInstance(tasks, workers, o.Xmax, metric.Jaccard{})
			if err != nil {
				return nil, err
			}
			opts := append([]solver.Option{
				solver.WithoutFlip(),
				solver.WithRand(rand.New(rand.NewSource(seed))),
			}, extra...)
			return solve(in, opts...)
		}

		before, err := measureOne(beforeOpts)
		if err != nil {
			return point, err
		}
		after, err := measureOne(afterOpts)
		if err != nil {
			return point, err
		}
		beforeTotal += before.TotalTime // TotalTime already includes any precompute
		afterTotal += after.TotalTime
		beforeLSAP += before.LSAPTime
		afterLSAP += after.LSAPTime
		point.ObjectiveBefore = before.Objective
		point.ObjectiveAfter = after.Objective
		point.ObjectiveIdentical = before.Objective == after.Objective
	}
	n := int64(o.Runs)
	point.BeforeNs = beforeTotal.Nanoseconds() / n
	point.AfterNs = afterTotal.Nanoseconds() / n
	point.BeforeLSAPNs = beforeLSAP.Nanoseconds() / n
	point.AfterLSAPNs = afterLSAP.Nanoseconds() / n
	if point.AfterLSAPNs > 0 {
		point.LSAPSpeedup = float64(point.BeforeLSAPNs) / float64(point.AfterLSAPNs)
	}
	if algo == "hta-app" {
		delta, err := lsapValueDelta(o, numTasks, numGroups, numWorkers)
		if err != nil {
			return point, err
		}
		point.LSAPValueDelta = delta
	}
	return point, nil
}

// lsapValueDelta reruns the APP pipeline once per path, capturing the
// auxiliary LSAP optimum each finds; exactness requires the difference to
// vanish.
func lsapValueDelta(o Options, numTasks, numGroups, numWorkers int) (float64, error) {
	gen, err := workload.NewGenerator(workload.Config{Seed: o.Seed})
	if err != nil {
		return 0, err
	}
	perGroup := numTasks / numGroups
	if perGroup < 1 {
		perGroup = 1
	}
	tasks := gen.Tasks(numGroups, perGroup)
	workers := gen.Workers(numWorkers)
	var denseVal, classedVal float64
	for _, probe := range []struct {
		val    *float64
		assign func(c lsap.Costs) lsap.Solution
	}{
		{&denseVal, func(c lsap.Costs) lsap.Solution { return lsap.Hungarian(c) }},
		{&classedVal, func(c lsap.Costs) lsap.Solution { return lsap.Auto(c, 1) }},
	} {
		in, err := core.NewInstance(tasks, workers, o.Xmax, metric.Jaccard{})
		if err != nil {
			return 0, err
		}
		val := probe.val
		assign := probe.assign
		_, err = solver.HTAWith(in, "pr2-probe", func(c lsap.Costs) lsap.Solution {
			sol := assign(c)
			*val = sol.Value
			return sol
		}, solver.WithoutFlip(), solver.WithRand(rand.New(rand.NewSource(o.Seed))))
		if err != nil {
			return 0, err
		}
	}
	return math.Abs(denseVal - classedVal), nil
}

// measurePR2Micro times the three LSAP solvers on one synthetic clique-
// structured profit matrix: |W| classes of n/|W| columns each (isolated
// class empty when |W| divides n).
func measurePR2Micro(o Options, n, numWorkers int) (PR2MicroPoint, error) {
	point := PR2MicroPoint{N: n, Workers: numWorkers}
	xmax := n / numWorkers
	if xmax < 1 {
		xmax = 1
	}
	r := rand.New(rand.NewSource(o.Seed))
	nc := numWorkers + 1
	classOf := make([]int, n)
	for j := range classOf {
		if q := j / xmax; q < numWorkers {
			classOf[j] = q
		} else {
			classOf[j] = numWorkers
		}
	}
	profits := make([][]float64, n)
	for i := range profits {
		profits[i] = make([]float64, nc)
		for c := 0; c < numWorkers; c++ {
			profits[i][c] = r.Float64() * 5
		}
	}
	costs := lsap.NewBlock(classOf, profits)
	ws := lsap.NewWorkspace()
	caps := make([]int, nc)
	for _, cl := range classOf {
		caps[cl]++
	}

	var denseVal, classedVal float64
	point.DenseNs = minDuration(o.Runs, func() error {
		denseVal = lsap.HungarianWS(costs, ws).Value
		return nil
	})
	point.ClassedNs = minDuration(o.Runs, func() error {
		sol, err := lsap.HungarianClassedWS(costs, caps, ws)
		if err != nil {
			return err
		}
		classedVal = sol.Value
		return nil
	})
	point.GreedyNs = minDuration(o.Runs, func() error {
		lsap.GreedyWS(costs, 1, ws)
		return nil
	})
	point.ValueEqual = math.Abs(denseVal-classedVal) <= 1e-9
	if point.DenseNs < 0 || point.ClassedNs < 0 {
		return point, fmt.Errorf("experiments: pr2 micro solver error at n=%d |W|=%d", n, numWorkers)
	}
	return point, nil
}

// minDuration returns the fastest of runs timings of fn in nanoseconds, or
// -1 if fn errors.
func minDuration(runs int, fn func() error) int64 {
	best := int64(-1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return -1
		}
		ns := time.Since(start).Nanoseconds()
		if best < 0 || ns < best {
			best = ns
		}
	}
	return best
}

// WritePR2JSON writes the report as indented JSON (the BENCH_PR2.json
// payload).
func (r *PR2Report) WritePR2JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RenderPR2 prints the report as aligned text tables.
func (r *PR2Report) RenderPR2(w io.Writer) error {
	fmt.Fprintln(w, "solver before/after (ns/op, flipless, identical instances):")
	fmt.Fprintf(w, "  %-9s %6s %4s %14s %14s %14s %14s %8s %s\n",
		"algorithm", "|T|", "|W|", "before", "after", "lsap-before", "lsap-after", "speedup", "objective")
	for _, p := range r.Solvers {
		obj := "identical"
		if !p.ObjectiveIdentical {
			obj = fmt.Sprintf("%.6f vs %.6f (tie-degenerate, lsap Δ=%.2g)",
				p.ObjectiveBefore, p.ObjectiveAfter, p.LSAPValueDelta)
		}
		fmt.Fprintf(w, "  %-9s %6d %4d %14d %14d %14d %14d %7.1fx %s\n",
			p.Algorithm, p.NumTasks, p.Workers, p.BeforeNs, p.AfterNs,
			p.BeforeLSAPNs, p.AfterLSAPNs, p.LSAPSpeedup, obj)
	}
	fmt.Fprintln(w, "lsap micro (ns/op, n=1000):")
	fmt.Fprintf(w, "  %4s %14s %14s %14s %s\n", "|W|", "dense", "classed", "greedy", "value")
	for _, p := range r.Micro {
		val := "equal"
		if !p.ValueEqual {
			val = "DIFFERS"
		}
		fmt.Fprintf(w, "  %4d %14d %14d %14d %s\n", p.Workers, p.DenseNs, p.ClassedNs, p.GreedyNs, val)
	}
	return nil
}
