package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// FlattenNumbers decodes a JSON document and returns every numeric leaf
// keyed by its dotted path ("points.0.enabled_ns"). Booleans and strings
// are skipped — the bench comparison only cares about measurements.
func FlattenNumbers(data []byte) (map[string]float64, error) {
	var doc any
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("experiments: parsing bench JSON: %w", err)
	}
	out := make(map[string]float64)
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			for k, val := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, val)
			}
		case []any:
			for i, val := range x {
				walk(prefix+"."+strconv.Itoa(i), val)
			}
		case json.Number:
			if f, err := x.Float64(); err == nil {
				out[prefix] = f
			}
		}
	}
	walk("", doc)
	return out, nil
}

// BenchDelta is one compared measurement between two bench reports.
type BenchDelta struct {
	Key       string
	OldNs     float64
	NewNs     float64
	DeltaPct  float64 // 100·(new−old)/old; positive = slower
	Regressed bool
}

// CompareBenchJSON diffs two bench report JSON documents (any of the
// BENCH_PR*.json payloads — the format is discovered, not hard-coded):
// every numeric leaf whose path ends in "_ns" and exists in both files is
// compared, and a relative slowdown beyond threshold (e.g. 0.10 = +10%)
// counts as a regression. Returns the per-key deltas sorted by path and
// whether any key regressed. Keys present in only one file are reported
// via the missing slices, not treated as regressions — reports grow
// fields across PRs.
func CompareBenchJSON(oldData, newData []byte, threshold float64) (deltas []BenchDelta, missing []string, regressed bool, err error) {
	oldNums, err := FlattenNumbers(oldData)
	if err != nil {
		return nil, nil, false, err
	}
	newNums, err := FlattenNumbers(newData)
	if err != nil {
		return nil, nil, false, err
	}
	for k, ov := range oldNums {
		if !strings.HasSuffix(k, "_ns") {
			continue
		}
		nv, ok := newNums[k]
		if !ok {
			missing = append(missing, k)
			continue
		}
		d := BenchDelta{Key: k, OldNs: ov, NewNs: nv}
		if ov > 0 {
			d.DeltaPct = 100 * (nv - ov) / ov
			d.Regressed = (nv-ov)/ov > threshold
		}
		if d.Regressed {
			regressed = true
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Key < deltas[j].Key })
	sort.Strings(missing)
	return deltas, missing, regressed, nil
}

// RenderBenchDeltas prints the comparison as an aligned table with a
// final verdict line.
func RenderBenchDeltas(w io.Writer, deltas []BenchDelta, missing []string, threshold float64) error {
	if len(deltas) == 0 {
		if _, err := fmt.Fprintln(w, "no *_ns measurements shared between the two reports"); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "%-44s %14s %14s %9s\n", "measurement", "old (ms)", "new (ms)", "delta"); err != nil {
			return err
		}
		for _, d := range deltas {
			mark := ""
			if d.Regressed {
				mark = "  REGRESSION"
			}
			if _, err := fmt.Fprintf(w, "%-44s %14.3f %14.3f %+8.2f%%%s\n",
				d.Key, d.OldNs/1e6, d.NewNs/1e6, d.DeltaPct, mark); err != nil {
				return err
			}
		}
	}
	for _, k := range missing {
		if _, err := fmt.Fprintf(w, "%-44s (absent from new report, skipped)\n", k); err != nil {
			return err
		}
	}
	worst := 0.0
	regressions := 0
	for _, d := range deltas {
		if d.DeltaPct > worst {
			worst = d.DeltaPct
		}
		if d.Regressed {
			regressions++
		}
	}
	if regressions > 0 {
		_, err := fmt.Fprintf(w, "\n%d regression(s) beyond the +%.0f%% threshold (worst %+.2f%%)\n",
			regressions, 100*threshold, worst)
		return err
	}
	_, err := fmt.Fprintf(w, "\nno regressions beyond the +%.0f%% threshold (worst %+.2f%%)\n",
		100*threshold, worst)
	return err
}
