package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/htacs/ata/internal/crowd"
)

// WriteRowsCSV emits the offline-sweep rows as CSV with a header, ready
// for gnuplot/pandas. All measured columns are included regardless of the
// figure (consumers project what they need).
func WriteRowsCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{"tasks", "workers", "groups", "algorithm",
		"precompute_seconds", "matching_seconds", "lsap_seconds", "total_seconds", "objective"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.NumTasks),
			strconv.Itoa(r.NumWorkers),
			strconv.Itoa(r.NumGroups),
			r.Algorithm,
			strconv.FormatFloat(r.PrecomputeSeconds, 'f', 6, 64),
			strconv.FormatFloat(r.MatchingSeconds, 'f', 6, 64),
			strconv.FormatFloat(r.LSAPSeconds, 'f', 6, 64),
			strconv.FormatFloat(r.TotalSeconds, 'f', 6, 64),
			strconv.FormatFloat(r.Objective, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig5CSV emits the online-study curves as CSV: one row per minute
// with the quality, cumulative-throughput and retention series of each
// strategy (the exact series Figures 5a–5c plot).
func (f *Fig5Result) WriteFig5CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"minute"}
	for _, s := range crowd.Strategies {
		header = append(header,
			string(s)+"_quality_pct", string(s)+"_completed", string(s)+"_alive_frac")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: writing CSV header: %w", err)
	}
	type series struct {
		qual []float64
		thr  []int
		ret  []float64
	}
	bySt := map[crowd.Strategy]series{}
	for _, s := range crowd.Strategies {
		ret := f.Study.RetentionCurve(s, f.Grid)
		fr := make([]float64, len(ret))
		for i, p := range ret {
			fr[i] = p.Fraction
		}
		bySt[s] = series{
			qual: f.Study.QualityCurve(s, f.Grid),
			thr:  f.Study.ThroughputCurve(s, f.Grid),
			ret:  fr,
		}
	}
	for i, m := range f.Grid {
		rec := []string{strconv.FormatFloat(m, 'f', 1, 64)}
		for _, s := range crowd.Strategies {
			sr := bySt[s]
			rec = append(rec,
				strconv.FormatFloat(sr.qual[i], 'f', 2, 64),
				strconv.Itoa(sr.thr[i]),
				strconv.FormatFloat(sr.ret[i], 'f', 3, 64),
			)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
