package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/obs"
	"github.com/htacs/ata/internal/ops"
	"github.com/htacs/ata/internal/shard"
	"github.com/htacs/ata/internal/stream"
	"github.com/htacs/ata/internal/workload"
)

// PR10Point is one rebalancing mode measured on the deadline workload:
// bursty task arrivals (workload.BurstSchedule) over a sharded engine
// whose shard-0 worker cohort repeatedly departs and returns, requeueing
// its active tasks into a shard that has lost its service capacity.
// Reactive mode steals only after the backlog breaches the watermark —
// which the stranded requeues never do — so their deadlines lapse where
// predictive mode's forecaster (rate EWMAs + burstiness guard) projects
// the breach and moves them to shards that still have workers.
type PR10Point struct {
	Mode        string `json:"mode"` // "reactive" or "predictive"
	Shards      int    `json:"shards"`
	Workers     int    `json:"workers"`
	Xmax        int    `json:"xmax"`
	TotalBuffer int    `json:"total_buffer"`
	Watermark   int    `json:"watermark"`
	Steps       int    `json:"steps"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Expired   int64 `json:"expired"`
	Dropped   int64 `json:"dropped"`
	Stolen    int64 `json:"stolen"`
	Conserved bool  `json:"conserved"`

	// MissPct = 100·Expired/Submitted (every task carries a deadline),
	// median over runs; PerEventNs is the median per offer+complete cost
	// of the timed phase.
	MissPct    float64 `json:"miss_pct"`
	PerEventNs int64   `json:"per_event_ns"`
}

// PR10Report is the payload of BENCH_PR10.json: deadline-miss rate of
// predictive vs reactive rebalancing under bursty churn, with the
// acceptance bar that predictive strictly beats reactive.
type PR10Report struct {
	Note                    string      `json:"note"`
	Points                  []PR10Point `json:"points"`
	ReactiveMissPct         float64     `json:"reactive_miss_pct"`
	PredictiveMissPct       float64     `json:"predictive_miss_pct"`
	MissReductionPct        float64     `json:"miss_reduction_pct"`
	PredictiveBeatsReactive bool        `json:"predictive_beats_reactive"`
}

// pr10Shape fixes the deadline workload both modes replay. Time is a
// logical clock (one step = stepNs) injected through stream.Config.Now,
// so runs are deterministic and deadline arithmetic is exact.
type pr10Shape struct {
	shards    int
	workers   int // generated pool; the shard-0 subset is the churn cohort
	xmax      int
	perShard  int // buffer limit per shard
	watermark int
	batch     int

	steps     int   // timed offer/complete steps
	stepNs    int64 // logical nanoseconds per step
	tickEvery int   // forecast/steal/expire cadence, in steps

	base, burst, period, burstLen int // arrival schedule (BurstSchedule)

	leadMin, leadMax int64 // deadline leads, in steps

	departEvery, departLen int // cohort churn cycle, in steps
	completions            int // Complete calls attempted per step

	urgency int64 // urgency horizon, in steps
	drain   int   // post-workload drain budget, in steps
}

var defaultPR10Shape = pr10Shape{
	shards:    4,
	workers:   48,
	xmax:      2,
	perShard:  96,
	watermark: 32,
	batch:     16,

	steps:     1000,
	stepNs:    int64(time.Millisecond),
	tickEvery: 10,

	base:     2,
	burst:    15,
	period:   20,
	burstLen: 4,

	leadMin: 30,
	leadMax: 100,

	departEvery: 100,
	departLen:   60,
	completions: 5,

	urgency: 50,
	drain:   2000,
}

// SweepPR10 measures the deadline-miss rate of reactive and predictive
// rebalancing on the identical bursty-churn deadline workload, o.Runs
// seeded runs per mode, medians reported.
func SweepPR10(o Options) (*PR10Report, error) {
	o.applyDefaults()
	report := &PR10Report{
		Note: "deadline-miss rate under bursty churn: bursty arrivals (on/off schedule) with uniform deadline leads on every task, while the shard-0 worker cohort departs and returns on a cycle, stranding its requeued tasks on a shard with no service capacity. Reactive = watermark-only stealing; predictive = per-shard EWMA demand forecast with burstiness guard projecting the breach ahead (same deadline-aware ordering and learned windows in both). Identical seeds per run pair; miss = expired / submitted.",
	}
	shape := defaultPR10Shape
	for _, predictive := range []bool{false, true} {
		point, err := measurePR10(o, shape, predictive)
		if err != nil {
			return nil, fmt.Errorf("experiments: pr10 predictive=%v: %w", predictive, err)
		}
		report.Points = append(report.Points, point)
		if predictive {
			report.PredictiveMissPct = point.MissPct
		} else {
			report.ReactiveMissPct = point.MissPct
		}
	}
	if report.ReactiveMissPct > 0 {
		report.MissReductionPct = 100 * (report.ReactiveMissPct - report.PredictiveMissPct) / report.ReactiveMissPct
	}
	report.PredictiveBeatsReactive = report.PredictiveMissPct < report.ReactiveMissPct
	return report, nil
}

// measurePR10 runs one mode o.Runs times and reports median miss rate
// and per-event time; counters and conservation come from the last run
// (all runs are deterministic for a given seed).
func measurePR10(o Options, shape pr10Shape, predictive bool) (PR10Point, error) {
	point := PR10Point{
		Mode:        "reactive",
		Shards:      shape.shards,
		Workers:     shape.workers,
		Xmax:        shape.xmax,
		TotalBuffer: shape.perShard * shape.shards,
		Watermark:   shape.watermark,
		Steps:       shape.steps,
	}
	if predictive {
		point.Mode = "predictive"
	}
	var missSamples []float64
	var timeSamples []time.Duration
	for run := 0; run < o.Runs; run++ {
		res, err := runPR10(o.Seed+int64(run), shape, predictive)
		if err != nil {
			return point, err
		}
		if !res.stats.Conserved() {
			return point, fmt.Errorf("conservation violated on run %d: %+v", run, res.stats)
		}
		missSamples = append(missSamples, 100*float64(res.stats.Expired)/float64(res.stats.Submitted))
		timeSamples = append(timeSamples, res.elapsed)
		point.Submitted = res.stats.Submitted
		point.Completed = res.stats.Completed
		point.Expired = res.stats.Expired
		point.Dropped = res.stats.Dropped
		point.Stolen = res.stolen
		point.Conserved = true
	}
	point.MissPct = medianF(missSamples)
	point.PerEventNs = medianNs(timeSamples) / int64(res10Events(shape))
	return point, nil
}

// res10Events is the event count of the timed phase: every offer plus
// every attempted complete.
func res10Events(shape pr10Shape) int {
	arrivals := 0
	sched, _ := workload.BurstSchedule(shape.steps, shape.base, shape.burst, shape.period, shape.burstLen)
	for _, n := range sched {
		arrivals += n
	}
	return arrivals + shape.steps*shape.completions
}

type pr10Result struct {
	elapsed time.Duration
	stats   shard.Stats
	stolen  int64
}

// runPR10 executes one seeded run of the deadline workload in the given
// mode. The logical clock ticks one stepNs per loop step; every
// tickEvery steps the run folds the forecast, rebalances, and sweeps
// expiry — the deterministic stand-in for the engine's periodic loops.
func runPR10(seed int64, shape pr10Shape, predictive bool) (pr10Result, error) {
	var res pr10Result
	gen, err := workload.NewGenerator(workload.Config{Seed: seed})
	if err != nil {
		return res, err
	}
	sched, err := workload.BurstSchedule(shape.steps, shape.base, shape.burst, shape.period, shape.burstLen)
	if err != nil {
		return res, err
	}
	arrivals := 0
	for _, n := range sched {
		arrivals += n
	}
	tasks := gen.Tasks(arrivals/8+1, 8)[:arrivals]
	leads := rand.New(rand.NewSource(seed + 1))

	var clock int64 // logical ns; only the driver goroutine advances it
	now := func() int64 { return clock }
	eng, err := shard.New(shard.Config{
		Shards:         shape.shards,
		StealInterval:  -1, // ticked explicitly below, like pr5
		StealWatermark: shape.watermark,
		StealBatch:     shape.batch,
		Predictive:     predictive,
		LearnWindows:   true,
		Registry:       obs.NewRegistry(),
		Journal:        ops.NewJournal(256),
		Stream: stream.Config{
			Xmax:           shape.xmax,
			BufferLimit:    shape.perShard,
			DeadlineAware:  true,
			UrgencyHorizon: shape.urgency * shape.stepNs,
			Now:            now,
		},
	})
	if err != nil {
		return res, err
	}
	defer eng.Close()

	pool := gen.Workers(shape.workers)
	var cohort, others []*core.Worker
	for _, w := range pool {
		if eng.ShardOf(w.ID) == 0 {
			cohort = append(cohort, w)
		} else {
			others = append(others, w)
		}
	}
	if len(cohort) == 0 {
		return res, errors.New("pr10: no workers hashed to shard 0")
	}
	for _, w := range pool {
		if _, err := eng.AddWorker(w); err != nil {
			return res, err
		}
	}

	present := make(map[string]bool, len(pool))
	for _, w := range pool {
		present[w.ID] = true
	}
	cohortOut := false

	// completeSome attempts n completions round-robin over present
	// workers, querying the engine for live assignments so stolen-and-
	// assigned tasks are completed too (a private ledger would leak them
	// into permanently occupied slots).
	rr := 0
	completeSome := func(n int) error {
		for tries := 0; n > 0 && tries < len(pool); tries++ {
			w := pool[rr%len(pool)]
			rr++
			if !present[w.ID] {
				continue
			}
			ids, err := eng.Active(w.ID)
			if err != nil {
				return err
			}
			if len(ids) == 0 {
				continue
			}
			if _, err := eng.Complete(w.ID, ids[0]); err != nil {
				return err
			}
			n--
		}
		return nil
	}
	tick := func() {
		eng.ForecastTick()
		res.stolen += int64(eng.StealOnce())
		eng.ExpireOnce(clock)
	}

	next := 0
	start := time.Now()
	for step := 0; step < shape.steps; step++ {
		clock = int64(step) * shape.stepNs

		// Cohort churn: shard 0's workers leave mid-cycle and return at
		// the next cycle boundary, requeueing their active tasks into a
		// shard that just lost all its service capacity.
		phase := step % shape.departEvery
		if phase == shape.departEvery-shape.departLen && !cohortOut {
			for _, w := range cohort {
				if _, err := eng.RemoveWorker(w.ID); err != nil {
					return res, err
				}
				present[w.ID] = false
			}
			cohortOut = true
		} else if phase == 0 && cohortOut {
			for _, w := range cohort {
				if _, err := eng.AddWorker(w); err != nil {
					return res, err
				}
				present[w.ID] = true
			}
			cohortOut = false
		}

		if err := completeSome(shape.completions); err != nil {
			return res, err
		}
		for n := sched[step]; n > 0; n-- {
			t := tasks[next]
			next++
			t.Deadline = clock + (shape.leadMin+leads.Int63n(shape.leadMax-shape.leadMin+1))*shape.stepNs
			if _, err := eng.OfferTask(t); err != nil && !errors.Is(err, stream.ErrBufferFull) {
				return res, err
			}
		}
		if step%shape.tickEvery == shape.tickEvery-1 {
			tick()
		}
	}
	res.elapsed = time.Since(start)

	// Drain: no new arrivals; completions and ticks continue under the
	// advancing clock until every task is delivered or expired, so the
	// final ledger attributes every submitted task.
	for step := shape.steps; step < shape.steps+shape.drain; step++ {
		clock = int64(step) * shape.stepNs
		if err := completeSome(shape.completions); err != nil {
			return res, err
		}
		if step%shape.tickEvery == shape.tickEvery-1 {
			tick()
			st := eng.Stats()
			if st.Active == 0 && st.Buffered == 0 {
				break
			}
		}
	}
	// Anything still buffered is past rescue once the clock outruns the
	// longest lead.
	clock += shape.leadMax * shape.stepNs
	eng.ExpireOnce(clock)

	res.stats = eng.Stats()
	return res, nil
}

// medianF returns the median of a float64 sample set.
func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// RenderPR10 prints the report as an aligned table.
func (r *PR10Report) RenderPR10(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%11s %7s %9s %10s %8s %8s %7s %11s\n",
		"mode", "shards", "submitted", "completed", "expired", "stolen", "miss", "per-event"); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%11s %7d %9d %10d %8d %8d %6.2f%% %9dns\n",
			p.Mode, p.Shards, p.Submitted, p.Completed, p.Expired, p.Stolen,
			p.MissPct, p.PerEventNs); err != nil {
			return err
		}
	}
	verdict := "beats"
	if !r.PredictiveBeatsReactive {
		verdict = "DOES NOT beat"
	}
	_, err := fmt.Fprintf(w, "\npredictive %s reactive on deadline misses: %.2f%% vs %.2f%% (%.0f%% fewer; bursty arrivals, shard-0 cohort churn, conservation checked per run)\n",
		verdict, r.PredictiveMissPct, r.ReactiveMissPct, r.MissReductionPct)
	return err
}

// WritePR10JSON writes the BENCH_PR10.json payload.
func (r *PR10Report) WritePR10JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
