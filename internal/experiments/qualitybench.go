package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"github.com/htacs/ata/internal/quality"
)

// The pr8 report answers the quality layer's acceptance question: under
// a mixed honest/spammy crowd, does paying for redundancy k and smarter
// aggregation actually buy answer accuracy? One simulated crowd answers
// the same task set at k ∈ {1, 3, 5}; gold tasks are injected at the
// tracker's configured rate, grades drive the online accuracy estimates
// and quarantines exactly as the platform does, and every resolved task
// is scored against ground truth under all three aggregators.

// pr8Shape fixes the crowd. The shape is deliberately independent of
// Options.Scale — the accuracy contrast, not the wall-clock, is the
// measurement, and it needs enough tasks per worker for the estimates to
// converge.
type pr8Shape struct {
	Tasks     int     // logical tasks offered (gold included)
	Workers   int     // crowd size
	Options   int     // answer alphabet L
	SpamFrac  float64 // fraction of workers answering uniformly at random
	HonestAcc float64 // P(truth) for the rest
	GoldRate  float64 // tracker auto-gold fraction
}

var defaultPR8Shape = pr8Shape{
	Tasks: 360, Workers: 60, Options: 4,
	SpamFrac: 0.4, HonestAcc: 0.85, GoldRate: 0.2,
}

// PR8Point is one redundancy level of the sweep.
type PR8Point struct {
	K           int     `json:"k"`
	EvalTasks   int     `json:"eval_tasks"` // non-gold tasks scored
	GoldTasks   int     `json:"gold_tasks"`
	MajorityAcc float64 `json:"majority_acc"`
	WeightedAcc float64 `json:"weighted_acc"`
	EMAcc       float64 `json:"em_acc"`
	Quarantined int     `json:"quarantined"`
	Spammers    int     `json:"spammers"`
	ElapsedNs   int64   `json:"elapsed_ns"` // sim + all three aggregations
}

// PR8Report is the payload of BENCH_PR8.json.
type PR8Report struct {
	Note                      string     `json:"note"`
	Tasks                     int        `json:"tasks"`
	Workers                   int        `json:"workers"`
	Options                   int        `json:"options"`
	SpamFrac                  float64    `json:"spam_frac"`
	HonestAcc                 float64    `json:"honest_acc"`
	GoldRate                  float64    `json:"gold_rate"`
	Points                    []PR8Point `json:"points"`
	WeightedBeatsMajorityAtK3 bool       `json:"weighted_beats_majority_at_k3"`
	EMBeatsMajorityAtK3       bool       `json:"em_beats_majority_at_k3"`
	MeetsTarget               bool       `json:"meets_target"`
}

// SweepPR8 simulates the crowd at k ∈ {1, 3, 5} and scores the three
// aggregators. The acceptance figure: at k = 3 (and beyond) both the
// accuracy-weighted vote and the EM estimator must beat plain majority —
// if they don't, the trust layer is dead weight and the PR should not
// ship.
func SweepPR8(o Options) (*PR8Report, error) {
	o.applyDefaults()
	shape := defaultPR8Shape
	report := &PR8Report{
		Note:  "answer accuracy vs redundancy k under a 40% spammy crowd: gold grades drive online accuracy estimates and quarantines; weighted and EM aggregation are scored against plain majority on the identical vote sets.",
		Tasks: shape.Tasks, Workers: shape.Workers, Options: shape.Options,
		SpamFrac: shape.SpamFrac, HonestAcc: shape.HonestAcc, GoldRate: shape.GoldRate,
	}
	for _, k := range []int{1, 3, 5} {
		point, err := measurePR8(o, k, shape)
		if err != nil {
			return nil, fmt.Errorf("experiments: pr8 k=%d: %w", k, err)
		}
		report.Points = append(report.Points, point)
		if k == 3 {
			report.WeightedBeatsMajorityAtK3 = point.WeightedAcc > point.MajorityAcc
			report.EMBeatsMajorityAtK3 = point.EMAcc > point.MajorityAcc
		}
	}
	report.MeetsTarget = report.WeightedBeatsMajorityAtK3 && report.EMBeatsMajorityAtK3
	return report, nil
}

func measurePR8(o Options, k int, shape pr8Shape) (PR8Point, error) {
	start := time.Now()
	rng := rand.New(rand.NewSource(o.Seed + int64(100*k)))
	tr, err := quality.New(quality.Config{
		K: k, Options: shape.Options,
		GoldRate: shape.GoldRate, GoldSalt: uint64(o.Seed) + 1,
		QuarantineFloor: 0.35, MinGold: 4,
	})
	if err != nil {
		return PR8Point{}, err
	}

	spammers := int(float64(shape.Workers) * shape.SpamFrac)
	point := PR8Point{K: k, Spammers: spammers}

	// Ground truth: gold tasks carry the tracker's synthesized answer (so
	// grading is consistent with scoring); the rest draw uniformly.
	truth := make([]int, shape.Tasks)
	ids := make([]string, shape.Tasks)
	for i := range ids {
		ids[i] = fmt.Sprintf("t%04d", i)
		tr.ObserveTask(ids[i])
		if ans, ok := tr.GoldAnswer(ids[i]); ok {
			truth[i] = ans
			point.GoldTasks++
		} else {
			truth[i] = rng.Intn(shape.Options)
		}
	}

	answer := func(w, taskIdx int) int {
		if w < spammers || rng.Float64() >= shape.HonestAcc {
			return rng.Intn(shape.Options)
		}
		return truth[taskIdx]
	}

	// The crowd answers task by task: k accepted submissions each, from
	// distinct workers, skipping anyone the tracker has quarantined —
	// exactly what the platform's replica re-assignment converges to.
	collected := make([]quality.TaskVotes, 0, shape.Tasks)
	for i, id := range ids {
		var votes []quality.Vote
		accepted := 0
		for _, w := range rng.Perm(shape.Workers) {
			if accepted == k {
				break
			}
			wid := fmt.Sprintf("w%03d", w)
			opt := answer(w, i)
			res, err := tr.Submit(wid, id, opt)
			if err != nil {
				continue // quarantined; replacement worker takes the slot
			}
			accepted++
			if !res.Gold {
				votes = append(votes, quality.Vote{Worker: wid, Option: opt})
			}
		}
		if len(votes) > 0 {
			collected = append(collected, quality.TaskVotes{TaskID: id, Votes: votes})
		}
	}
	if !tr.Stats().Conserved() {
		return PR8Point{}, fmt.Errorf("tracker conservation broken: %+v", tr.Stats())
	}

	// Score the three aggregators on the identical vote sets. Weighted
	// uses the gold-driven online estimates; EM learns from the votes
	// alone.
	acc := map[string]float64{}
	for _, rep := range tr.Reputations() {
		acc[rep.Worker] = rep.Accuracy
		if rep.Quarantined {
			point.Quarantined++
		}
	}
	em, err := quality.Aggregate(collected, shape.Options, quality.EMConfig{})
	if err != nil {
		return PR8Point{}, err
	}
	var majOK, wOK, emOK int
	for _, tv := range collected {
		i := 0
		fmt.Sscanf(tv.TaskID, "t%04d", &i) //nolint:errcheck
		if m, _ := quality.Majority(tv.Votes, shape.Options); m == truth[i] {
			majOK++
		}
		if wgt, _ := quality.Weighted(tv.Votes, shape.Options, acc, 0.5); wgt == truth[i] {
			wOK++
		}
		if quality.ArgMax(em.Posteriors[tv.TaskID]) == truth[i] {
			emOK++
		}
	}
	point.EvalTasks = len(collected)
	n := float64(len(collected))
	point.MajorityAcc = float64(majOK) / n
	point.WeightedAcc = float64(wOK) / n
	point.EMAcc = float64(emOK) / n
	point.ElapsedNs = time.Since(start).Nanoseconds()
	return point, nil
}

// RenderPR8 prints the sweep as an aligned table with the verdict.
func (r *PR8Report) RenderPR8(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "k\teval tasks\tmajority\tweighted\tEM\tquarantined\ttime (ms)")
	for _, p := range r.Points {
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.3f\t%.3f\t%d/%d\t%.1f\n",
			p.K, p.EvalTasks, p.MajorityAcc, p.WeightedAcc, p.EMAcc,
			p.Quarantined, p.Spammers, float64(p.ElapsedNs)/1e6)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nat k=3: weighted beats majority: %v, EM beats majority: %v -> target met: %v\n",
		r.WeightedBeatsMajorityAtK3, r.EMBeatsMajorityAtK3, r.MeetsTarget)
	return err
}

// WritePR8JSON writes the report as indented JSON (BENCH_PR8.json).
func (r *PR8Report) WritePR8JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
