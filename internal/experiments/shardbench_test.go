package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunPR5Small drives one pr5 run at a toy size: the event loop must
// complete tasks (the hot path under measurement), conserve globally, and
// finish without engine errors at both ends of the shard range.
func TestRunPR5Small(t *testing.T) {
	shape := pr5Shape{
		workers:     8,
		churners:    4,
		xmax:        2,
		totalBuffer: 64,
		events:      120,
		departFrac:  0.5,
	}
	for _, shards := range []int{1, 4} {
		elapsed, completed, _, conserved, err := runPR5(7, shards, shape)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if elapsed <= 0 {
			t.Fatalf("shards=%d: elapsed %v", shards, elapsed)
		}
		if completed == 0 {
			t.Fatalf("shards=%d: no completes — the loop never hit the hot path", shards)
		}
		if !conserved {
			t.Fatalf("shards=%d: conservation violated", shards)
		}
	}
}

func TestPR5ReportJSONAndRender(t *testing.T) {
	report := &PR5Report{
		Note: "test",
		Points: []PR5Point{
			{Shards: 1, Workers: 8, Churners: 4, TotalBuffer: 64, Events: 100,
				PerEventNs: 4000, EventsPerSec: 250000, Completed: 90, Conserved: true},
			{Shards: 8, Workers: 8, Churners: 4, TotalBuffer: 64, Events: 100,
				PerEventNs: 1000, EventsPerSec: 1000000, Completed: 90, Conserved: true},
		},
		SpeedupAt8: 4.0, TargetSpeedup: 2.5, MeetsTarget: true,
	}
	var buf bytes.Buffer
	if err := report.WritePR5JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back PR5Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.SpeedupAt8 != 4.0 || len(back.Points) != 2 {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
	// The compare gate only diffs *_ns keys: the per-point measurement
	// must surface with that suffix.
	nums, err := FlattenNumbers(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := nums["points.0.per_event_ns"]; !ok {
		t.Fatalf("per_event_ns missing from flattened keys: %v", nums)
	}
	var tbl strings.Builder
	if err := report.RenderPR5(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "meets the 2.5x target") {
		t.Fatalf("render verdict missing:\n%s", tbl.String())
	}
}
