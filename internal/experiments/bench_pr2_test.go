package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPR2ReportJSONRoundTrip(t *testing.T) {
	report := &PR2Report{
		Note: "test",
		Solvers: []PR2SolverPoint{{
			Algorithm: "hta-app", NumTasks: 400, Workers: 20,
			BeforeNs: 100, AfterNs: 10, BeforeLSAPNs: 90, AfterLSAPNs: 3,
			LSAPSpeedup: 30, ObjectiveBefore: 1.5, ObjectiveAfter: 1.5,
			ObjectiveIdentical: true,
		}},
		Micro: []PR2MicroPoint{{N: 1000, Workers: 10, DenseNs: 500, ClassedNs: 5, GreedyNs: 9, ValueEqual: true}},
	}
	var buf bytes.Buffer
	if err := report.WritePR2JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back PR2Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back.Solvers) != 1 || back.Solvers[0].LSAPSpeedup != 30 || !back.Micro[0].ValueEqual {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
	var out bytes.Buffer
	if err := report.RenderPR2(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hta-app", "identical", "lsap micro"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("rendered report missing %q:\n%s", want, out.String())
		}
	}
}

// TestSweepPR2SmallRun exercises the real sweep end to end at the smallest
// possible cost — skipped in -short because the dense |T|=1000 Hungarian
// side takes a few seconds on its own.
func TestSweepPR2SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full PR2 sweep is seconds-long")
	}
	report, err := SweepPR2(Options{Runs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Solvers) != 6 || len(report.Micro) != 3 {
		t.Fatalf("report shape: %d solver points, %d micro points", len(report.Solvers), len(report.Micro))
	}
	for _, p := range report.Solvers {
		if p.Algorithm == "hta-app" {
			if p.LSAPSpeedup < 3 {
				t.Errorf("|T|=%d: APP LSAP speedup %.1fx < 3x", p.NumTasks, p.LSAPSpeedup)
			}
			if p.LSAPValueDelta > 1e-9 {
				t.Errorf("|T|=%d: LSAP value delta %g > 1e-9", p.NumTasks, p.LSAPValueDelta)
			}
		}
	}
	for _, m := range report.Micro {
		if !m.ValueEqual {
			t.Errorf("|W|=%d: dense and classed LSAP values differ", m.Workers)
		}
		if m.ClassedNs >= m.DenseNs {
			t.Errorf("|W|=%d: classed (%d ns) not faster than dense (%d ns)", m.Workers, m.ClassedNs, m.DenseNs)
		}
	}
}
