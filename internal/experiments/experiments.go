// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V):
//
//	Figure 2a — response time vs |T| with the matching/LSAP phase split
//	Figure 2b — objective function value vs |T| for HTA-APP vs HTA-GRE
//	Figure 2c — response time vs |W|
//	Figure 3  — response time vs the number of task groups (task diversity)
//	Figure 5  — the online study: quality, throughput, retention
//
// The paper's offline experiments ran on a 2×Xeon/128 GB server at
// |T| up to 10,000; the Scale option shrinks every size proportionally so
// the same sweeps finish on a laptop (Scale=1 reproduces the paper's
// sizes). Absolute times differ from the paper's Java implementation; the
// shapes — HTA-GRE ≪ HTA-APP, HTA-APP's sensitivity to worker count and
// task diversity — are what the runners demonstrate. (Since the
// class-collapsed LSAP of PR 2, the exact assignment step no longer
// dominates HTA-APP the way the paper's cubic Hungarian did; SweepPR2
// quantifies that before/after.)
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"github.com/htacs/ata/internal/adaptive"
	"github.com/htacs/ata/internal/core"
	"github.com/htacs/ata/internal/crowd"
	"github.com/htacs/ata/internal/lsap"
	"github.com/htacs/ata/internal/metric"
	"github.com/htacs/ata/internal/solver"
	"github.com/htacs/ata/internal/workload"
)

// Options tune an offline experiment run.
type Options struct {
	// Scale multiplies every size of the paper's setup (tasks, workers,
	// groups). 1.0 is the paper's scale; the default 0.1 keeps the full
	// sweep under a minute on commodity hardware.
	Scale float64
	// Runs is how many times each point is measured and averaged
	// (the paper reports the average of ten runs).
	Runs int
	// Seed drives workload generation and solver randomness.
	Seed int64
	// Xmax is the per-worker capacity (paper: 20 offline).
	Xmax int
	// SkipAPP drops the cubic HTA-APP runs (useful at large scales).
	SkipAPP bool
	// Parallelism enables the cached diversity kernel in every measured
	// solve: > 0 uses that many goroutines, < 0 all CPUs, 0 (default)
	// keeps the paper's serial path. Objectives are bit-identical.
	Parallelism int
}

func (o *Options) applyDefaults() {
	if o.Scale == 0 {
		o.Scale = 0.1
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Xmax == 0 {
		o.Xmax = 20
	}
}

func (o Options) scaled(n int) int {
	s := int(float64(n) * o.Scale)
	if s < 1 {
		s = 1
	}
	return s
}

// Row is one measured point of an offline experiment.
type Row struct {
	// Sweep coordinates.
	NumTasks   int
	NumWorkers int
	NumGroups  int
	Algorithm  string
	// Measurements, averaged over Options.Runs.
	PrecomputeSeconds float64
	MatchingSeconds   float64
	LSAPSeconds       float64
	TotalSeconds      float64
	Objective         float64
}

type solveFn func(in *core.Instance, opts ...solver.Option) (*solver.Result, error)

func algorithms(o Options) map[string]solveFn {
	algos := map[string]solveFn{"hta-gre": solver.HTAGRE}
	if !o.SkipAPP {
		algos["hta-app"] = solver.HTAAPP
	}
	return algos
}

// measure runs one algorithm Runs times on fresh instances and averages.
func measure(o Options, algo string, solve solveFn, numGroups, tasksPerGroup, numWorkers int) (Row, error) {
	row := Row{
		NumTasks:   numGroups * tasksPerGroup,
		NumWorkers: numWorkers,
		NumGroups:  numGroups,
		Algorithm:  algo,
	}
	for run := 0; run < o.Runs; run++ {
		gen, err := workload.NewGenerator(workload.Config{Seed: o.Seed + int64(run)})
		if err != nil {
			return row, err
		}
		tasks := gen.Tasks(numGroups, tasksPerGroup)
		workers := gen.Workers(numWorkers)
		in, err := core.NewInstance(tasks, workers, o.Xmax, metric.Jaccard{})
		if err != nil {
			return row, err
		}
		solveOpts := []solver.Option{solver.WithRand(rand.New(rand.NewSource(o.Seed + int64(run))))}
		if o.Parallelism != 0 {
			solveOpts = append(solveOpts, solver.WithParallelism(o.Parallelism))
		}
		res, err := solve(in, solveOpts...)
		if err != nil {
			return row, err
		}
		row.PrecomputeSeconds += res.PrecomputeTime.Seconds()
		row.MatchingSeconds += res.MatchingTime.Seconds()
		row.LSAPSeconds += res.LSAPTime.Seconds()
		row.TotalSeconds += res.TotalTime.Seconds()
		row.Objective += res.Objective
	}
	n := float64(o.Runs)
	row.PrecomputeSeconds /= n
	row.MatchingSeconds /= n
	row.LSAPSeconds /= n
	row.TotalSeconds /= n
	row.Objective /= n
	return row, nil
}

// SweepTasks runs the Figure 2a/2b sweep: |T| from 4,000 to 10,000 (scaled)
// with 200 task groups and |W| = 200, measuring both algorithms. Figure 2a
// reads the time columns, Figure 2b the objective column.
func SweepTasks(o Options) ([]Row, error) {
	o.applyDefaults()
	numWorkers := o.scaled(200)
	numGroups := o.scaled(200)
	var rows []Row
	for _, t := range []int{4000, 5000, 6000, 7000, 8000, 9000, 10000} {
		numTasks := o.scaled(t)
		perGroup := numTasks / numGroups
		if perGroup < 1 {
			perGroup = 1
		}
		for algo, solve := range algorithms(o) {
			row, err := measure(o, algo, solve, numGroups, perGroup, numWorkers)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig2 |T|=%d %s: %w", numTasks, algo, err)
			}
			rows = append(rows, row)
		}
	}
	sortRows(rows)
	return rows, nil
}

// SweepWorkers runs the Figure 2c sweep: |W| from 30 to 350 (scaled) at
// |T| = 8,000 (scaled), 200 task groups.
func SweepWorkers(o Options) ([]Row, error) {
	o.applyDefaults()
	numGroups := o.scaled(200)
	numTasks := o.scaled(8000)
	perGroup := numTasks / numGroups
	if perGroup < 1 {
		perGroup = 1
	}
	var rows []Row
	for _, w := range []int{30, 100, 150, 200, 250, 300, 350} {
		numWorkers := o.scaled(w)
		for algo, solve := range algorithms(o) {
			row, err := measure(o, algo, solve, numGroups, perGroup, numWorkers)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig2c |W|=%d %s: %w", numWorkers, algo, err)
			}
			rows = append(rows, row)
		}
	}
	sortRows(rows)
	return rows, nil
}

// SweepGroups runs the Figure 3 sweep: the number of task groups varies
// from 10 to 10,000 (scaled) at fixed |T| = 10,000 (scaled) and |W| = 300.
// More groups = more diverse tasks; the paper shows HTA-APP slowing down
// with diversity while HTA-GRE is oblivious to it.
func SweepGroups(o Options) ([]Row, error) {
	o.applyDefaults()
	numWorkers := o.scaled(300)
	numTasks := o.scaled(10000)
	var rows []Row
	for _, g := range []int{10, 100, 1000, 10000} {
		numGroups := o.scaled(g)
		if numGroups > numTasks {
			numGroups = numTasks
		}
		perGroup := numTasks / numGroups
		for algo, solve := range algorithms(o) {
			row, err := measure(o, algo, solve, numGroups, perGroup, numWorkers)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig3 groups=%d %s: %w", numGroups, algo, err)
			}
			rows = append(rows, row)
		}
	}
	sortRows(rows)
	return rows, nil
}

// SweepObjective compares the objective value (and time) of every solver
// in the repository on identical instances: the paper's two algorithms,
// the auction-based LSAP variant, the local-search-polished GRE, the
// marginal-gain greedy baseline and random assignment. It extends Figure
// 2b into a solver-quality ablation table.
func SweepObjective(o Options) ([]Row, error) {
	o.applyDefaults()
	numWorkers := o.scaled(200)
	numGroups := o.scaled(200)
	algos := []struct {
		name  string
		solve solveFn
	}{
		{"hta-app", solver.HTAAPP},
		{"hta-gre", solver.HTAGRE},
		{"hta-gre+ls", solver.HTAGREPlus},
		{"hta-auction", func(in *core.Instance, opts ...solver.Option) (*solver.Result, error) {
			return solver.HTAWith(in, "hta-auction", lsap.Auction, opts...)
		}},
		{"greedy-motiv", func(in *core.Instance, opts ...solver.Option) (*solver.Result, error) {
			return solver.GreedyMotiv(in), nil
		}},
		{"random", func(in *core.Instance, opts ...solver.Option) (*solver.Result, error) {
			return solver.Random(in, rand.New(rand.NewSource(o.Seed))), nil
		}},
	}
	if o.SkipAPP {
		algos = algos[1:]
	}
	var rows []Row
	for _, t := range []int{4000, 8000} {
		numTasks := o.scaled(t)
		perGroup := numTasks / numGroups
		if perGroup < 1 {
			perGroup = 1
		}
		for _, a := range algos {
			row, err := measure(o, a.name, a.solve, numGroups, perGroup, numWorkers)
			if err != nil {
				return nil, fmt.Errorf("experiments: objective sweep %s: %w", a.name, err)
			}
			rows = append(rows, row)
		}
	}
	sortRows(rows)
	return rows, nil
}

// LatencyRow is one point of the background-assignment check.
type LatencyRow struct {
	PoolSize   int
	NumWorkers int
	// IterationSeconds is the adaptive engine's HTA-GRE solve latency for
	// one assignment iteration over the pool.
	IterationSeconds float64
	// BatchSeconds is how long one worker takes to finish its batch at the
	// paper's pace (Xmax tasks × ~36 s/task) — the time budget an
	// in-background solver must fit into.
	BatchSeconds float64
}

// SweepIterationLatency quantifies the paper's deployment claim (Section
// V-A): "HTA-GRE has an acceptable response time and could therefore be
// executed in the background while workers complete tasks, to prepare the
// next round of assignments." For each pool size it measures one HTA-GRE
// iteration of the adaptive engine and compares it with the wall-clock a
// worker needs to complete a batch. The claim holds where
// IterationSeconds ≪ BatchSeconds.
func SweepIterationLatency(o Options) ([]LatencyRow, error) {
	o.applyDefaults()
	const secondsPerTask = 36 // the paper's observed pace (~22 min / 36.7 tasks)
	numWorkers := o.scaled(200)
	numGroups := o.scaled(200)
	var rows []LatencyRow
	for _, t := range []int{2000, 4000, 6000, 8000, 10000} {
		poolSize := o.scaled(t)
		perGroup := poolSize / numGroups
		if perGroup < 1 {
			perGroup = 1
		}
		var total float64
		for run := 0; run < o.Runs; run++ {
			gen, err := workload.NewGenerator(workload.Config{Seed: o.Seed + int64(run)})
			if err != nil {
				return nil, err
			}
			engine, err := adaptive.NewEngine(adaptive.Config{
				Xmax:                   o.Xmax,
				Rand:                   rand.New(rand.NewSource(o.Seed + int64(run))),
				DisableRandomColdStart: true,
				Parallelism:            o.Parallelism,
			})
			if err != nil {
				return nil, err
			}
			if err := engine.AddTasks(gen.Tasks(numGroups, perGroup)...); err != nil {
				return nil, err
			}
			for _, w := range gen.Workers(numWorkers) {
				if _, err := engine.AddWorker(w); err != nil {
					return nil, err
				}
			}
			start := time.Now()
			if _, err := engine.NextIteration(); err != nil {
				return nil, err
			}
			total += time.Since(start).Seconds()
		}
		rows = append(rows, LatencyRow{
			PoolSize:         poolSize,
			NumWorkers:       numWorkers,
			IterationSeconds: total / float64(o.Runs),
			BatchSeconds:     float64(o.Xmax) * secondsPerTask,
		})
	}
	return rows, nil
}

// RenderLatency prints the background-assignment table.
func RenderLatency(w io.Writer, rows []LatencyRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pool\t|W|\titeration(s)\tworker-batch(s)\tfits-in-background")
	for _, r := range rows {
		fits := "yes"
		if r.IterationSeconds >= r.BatchSeconds {
			fits = "NO"
		}
		fmt.Fprintf(tw, "%d\t%d\t%.3f\t%.0f\t%s\n",
			r.PoolSize, r.NumWorkers, r.IterationSeconds, r.BatchSeconds, fits)
	}
	return tw.Flush()
}

func sortRows(rows []Row) {
	// Stable presentation order: by sweep coordinates then algorithm.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rowLess(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func rowLess(a, b Row) bool {
	if a.NumTasks != b.NumTasks {
		return a.NumTasks < b.NumTasks
	}
	if a.NumWorkers != b.NumWorkers {
		return a.NumWorkers < b.NumWorkers
	}
	if a.NumGroups != b.NumGroups {
		return a.NumGroups < b.NumGroups
	}
	return a.Algorithm < b.Algorithm
}

// RenderRows prints rows as an aligned text table with the requested
// figure's columns: "time" (2a/2c/3) or "objective" (2b).
func RenderRows(w io.Writer, rows []Row, kind string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	switch kind {
	case "time":
		fmt.Fprintln(tw, "|T|\t|W|\tgroups\talgorithm\tprecompute(s)\tmatching(s)\tlsap(s)\ttotal(s)")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%.4f\t%.4f\t%.4f\t%.4f\n",
				r.NumTasks, r.NumWorkers, r.NumGroups, r.Algorithm,
				r.PrecomputeSeconds, r.MatchingSeconds, r.LSAPSeconds, r.TotalSeconds)
		}
	case "objective":
		fmt.Fprintln(tw, "|T|\t|W|\tgroups\talgorithm\tobjective")
		for _, r := range rows {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%.1f\n",
				r.NumTasks, r.NumWorkers, r.NumGroups, r.Algorithm, r.Objective)
		}
	default:
		return fmt.Errorf("experiments: unknown table kind %q", kind)
	}
	return tw.Flush()
}

// Fig5Options tune the online-study reproduction.
type Fig5Options struct {
	// SessionsPerStrategy matches the paper's 20 work sessions.
	SessionsPerStrategy int
	// Seed drives the simulation.
	Seed int64
	// Params overrides the behavioural constants (zero value = defaults).
	Params *crowd.Params
	// Filtered runs the paper's full selection pipeline (qualification,
	// overtime and incompleteness filters, top-N by completions) instead
	// of taking every session as-is.
	Filtered bool
}

// Fig5Result carries everything Figures 5a–5c plot plus the significance
// tests the paper reports.
type Fig5Result struct {
	Study *crowd.StudyResult
	Grid  []float64
	// Filters is non-nil when the run used the filtered pipeline.
	Filters map[crowd.Strategy]crowd.FilterCounts
}

// Fig5 runs the online study simulation: generates the 22-task-kind corpus
// (the paper's CrowdFlower set had 22 kinds of micro-tasks), simulates
// SessionsPerStrategy sessions per strategy, and returns the curves.
func Fig5(o Fig5Options) (*Fig5Result, error) {
	if o.SessionsPerStrategy == 0 {
		o.SessionsPerStrategy = 20
	}
	params := crowd.DefaultParams()
	if o.Params != nil {
		params = *o.Params
	}
	if o.Seed != 0 {
		params.Seed = o.Seed
	}
	gen, err := workload.NewGenerator(workload.Config{Seed: params.Seed})
	if err != nil {
		return nil, err
	}
	corpus := gen.Tasks(22, 40)
	sim, err := crowd.NewSimulator(params, corpus)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	if o.Filtered {
		cfg := crowd.DefaultStudyConfig()
		cfg.SessionsTarget = o.SessionsPerStrategy
		filtered, err := sim.RunFilteredStudy(crowd.Strategies, cfg)
		if err != nil {
			return nil, err
		}
		res.Study = filtered.StudyResult
		res.Filters = filtered.Filters
	} else {
		study, err := sim.RunStudy(crowd.Strategies, o.SessionsPerStrategy)
		if err != nil {
			return nil, err
		}
		res.Study = study
	}
	grid := make([]float64, 0, 30)
	for m := 1.0; m <= params.SessionMinutes; m++ {
		grid = append(grid, m)
	}
	res.Grid = grid
	return res, nil
}

// Render writes the Figure 5 tables (quality, throughput, retention per
// strategy over time) plus totals and significance tests.
func (f *Fig5Result) Render(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "minute\tgre-quality%\trel-quality%\tdiv-quality%\tgre-tasks\trel-tasks\tdiv-tasks\tgre-alive\trel-alive\tdiv-alive")
	qualGRE := f.Study.QualityCurve(crowd.StrategyGRE, f.Grid)
	qualREL := f.Study.QualityCurve(crowd.StrategyRel, f.Grid)
	qualDIV := f.Study.QualityCurve(crowd.StrategyDiv, f.Grid)
	thrGRE := f.Study.ThroughputCurve(crowd.StrategyGRE, f.Grid)
	thrREL := f.Study.ThroughputCurve(crowd.StrategyRel, f.Grid)
	thrDIV := f.Study.ThroughputCurve(crowd.StrategyDiv, f.Grid)
	retGRE := f.Study.RetentionCurve(crowd.StrategyGRE, f.Grid)
	retREL := f.Study.RetentionCurve(crowd.StrategyRel, f.Grid)
	retDIV := f.Study.RetentionCurve(crowd.StrategyDiv, f.Grid)
	for i, m := range f.Grid {
		fmt.Fprintf(tw, "%.0f\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\t%.2f\t%.2f\t%.2f\n",
			m, qualGRE[i], qualREL[i], qualDIV[i],
			thrGRE[i], thrREL[i], thrDIV[i],
			retGRE[i].Fraction, retREL[i].Fraction, retDIV[i].Fraction)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w, "\ntotals:")
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tsessions\tcompleted\tquality%\tmean-duration(min)\ttasks/session\tavg-reward($)")
	for _, s := range crowd.Strategies {
		t := f.Study.Total(s)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.3f\n",
			s, t.Sessions, t.Completed, t.QualityPercent, t.MeanDuration, t.MeanPerSession, t.MeanTaskReward)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if f.Filters != nil {
		fmt.Fprintln(w, "\nselection pipeline (as in the paper: qualification, overtime, ≥1 iteration, top-N):")
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "strategy\trecruited\tunqualified\tovertime\tincomplete\tvalid\tselected")
		for _, s := range crowd.Strategies {
			c := f.Filters[s]
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
				s, c.Recruited, c.Unqualified, c.Overtime, c.Incomplete, c.Valid, c.Selected)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	fmt.Fprintln(w, "\nsignificance tests (as in the paper):")
	if z, err := f.Study.CompareQuality(crowd.StrategyDiv, crowd.StrategyGRE); err == nil {
		fmt.Fprintf(w, "  quality DIV vs GRE: two-proportions Z = %.2f, one-sided p = %.3f\n", z.Z, z.POneSided)
	}
	if z, err := f.Study.CompareQuality(crowd.StrategyGRE, crowd.StrategyRel); err == nil {
		fmt.Fprintf(w, "  quality GRE vs REL: two-proportions Z = %.2f, one-sided p = %.3f\n", z.Z, z.POneSided)
	}
	if u, err := f.Study.CompareThroughput(crowd.StrategyGRE, crowd.StrategyDiv); err == nil {
		fmt.Fprintf(w, "  throughput GRE vs DIV: Mann-Whitney U = %.0f, one-sided p = %.3f\n", u.U, u.POneSided)
	}
	if u, err := f.Study.CompareRetention(crowd.StrategyGRE, crowd.StrategyRel); err == nil {
		fmt.Fprintf(w, "  retention GRE vs REL: Mann-Whitney U = %.0f, one-sided p = %.3f\n", u.U, u.POneSided)
	}
	return nil
}

// Elapsed is a tiny helper used by the CLIs to report wall-clock per sweep.
func Elapsed(start time.Time) string {
	return time.Since(start).Round(time.Millisecond).String()
}
